file(REMOVE_RECURSE
  "CMakeFiles/test_ghost_heap.dir/test_ghost_heap.cc.o"
  "CMakeFiles/test_ghost_heap.dir/test_ghost_heap.cc.o.d"
  "test_ghost_heap"
  "test_ghost_heap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ghost_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
