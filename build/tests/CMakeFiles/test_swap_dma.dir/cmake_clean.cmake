file(REMOVE_RECURSE
  "CMakeFiles/test_swap_dma.dir/test_swap_dma.cc.o"
  "CMakeFiles/test_swap_dma.dir/test_swap_dma.cc.o.d"
  "test_swap_dma"
  "test_swap_dma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_swap_dma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
