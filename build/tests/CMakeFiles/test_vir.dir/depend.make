# Empty dependencies file for test_vir.
# This may be replaced when dependencies are built.
