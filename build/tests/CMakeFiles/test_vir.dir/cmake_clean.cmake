file(REMOVE_RECURSE
  "CMakeFiles/test_vir.dir/test_vir.cc.o"
  "CMakeFiles/test_vir.dir/test_vir.cc.o.d"
  "test_vir"
  "test_vir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
