file(REMOVE_RECURSE
  "CMakeFiles/test_bignum_rsa.dir/test_bignum_rsa.cc.o"
  "CMakeFiles/test_bignum_rsa.dir/test_bignum_rsa.cc.o.d"
  "test_bignum_rsa"
  "test_bignum_rsa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bignum_rsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
