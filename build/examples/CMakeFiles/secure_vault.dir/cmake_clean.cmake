file(REMOVE_RECURSE
  "CMakeFiles/secure_vault.dir/secure_vault.cpp.o"
  "CMakeFiles/secure_vault.dir/secure_vault.cpp.o.d"
  "secure_vault"
  "secure_vault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_vault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
