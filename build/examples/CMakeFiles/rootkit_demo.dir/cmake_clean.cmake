file(REMOVE_RECURSE
  "CMakeFiles/rootkit_demo.dir/rootkit_demo.cpp.o"
  "CMakeFiles/rootkit_demo.dir/rootkit_demo.cpp.o.d"
  "rootkit_demo"
  "rootkit_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rootkit_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
