
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/rootkit_demo.cpp" "examples/CMakeFiles/rootkit_demo.dir/rootkit_demo.cpp.o" "gcc" "examples/CMakeFiles/rootkit_demo.dir/rootkit_demo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vg_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vg_ghost.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vg_attacks.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vg_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vg_sva.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vg_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vg_vir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vg_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vg_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vg_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
