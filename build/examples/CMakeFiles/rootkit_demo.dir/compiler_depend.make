# Empty compiler generated dependencies file for rootkit_demo.
# This may be replaced when dependencies are built.
