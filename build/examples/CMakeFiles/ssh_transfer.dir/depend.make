# Empty dependencies file for ssh_transfer.
# This may be replaced when dependencies are built.
