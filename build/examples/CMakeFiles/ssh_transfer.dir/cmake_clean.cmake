file(REMOVE_RECURSE
  "CMakeFiles/ssh_transfer.dir/ssh_transfer.cpp.o"
  "CMakeFiles/ssh_transfer.dir/ssh_transfer.cpp.o.d"
  "ssh_transfer"
  "ssh_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssh_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
