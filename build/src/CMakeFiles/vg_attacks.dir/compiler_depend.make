# Empty compiler generated dependencies file for vg_attacks.
# This may be replaced when dependencies are built.
