file(REMOVE_RECURSE
  "CMakeFiles/vg_attacks.dir/attacks/rootkit.cc.o"
  "CMakeFiles/vg_attacks.dir/attacks/rootkit.cc.o.d"
  "libvg_attacks.a"
  "libvg_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vg_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
