file(REMOVE_RECURSE
  "libvg_attacks.a"
)
