# Empty compiler generated dependencies file for vg_compiler.
# This may be replaced when dependencies are built.
