file(REMOVE_RECURSE
  "libvg_compiler.a"
)
