file(REMOVE_RECURSE
  "CMakeFiles/vg_compiler.dir/compiler/cfi_pass.cc.o"
  "CMakeFiles/vg_compiler.dir/compiler/cfi_pass.cc.o.d"
  "CMakeFiles/vg_compiler.dir/compiler/codegen.cc.o"
  "CMakeFiles/vg_compiler.dir/compiler/codegen.cc.o.d"
  "CMakeFiles/vg_compiler.dir/compiler/exec.cc.o"
  "CMakeFiles/vg_compiler.dir/compiler/exec.cc.o.d"
  "CMakeFiles/vg_compiler.dir/compiler/mcode.cc.o"
  "CMakeFiles/vg_compiler.dir/compiler/mcode.cc.o.d"
  "CMakeFiles/vg_compiler.dir/compiler/sandbox_pass.cc.o"
  "CMakeFiles/vg_compiler.dir/compiler/sandbox_pass.cc.o.d"
  "CMakeFiles/vg_compiler.dir/compiler/translator.cc.o"
  "CMakeFiles/vg_compiler.dir/compiler/translator.cc.o.d"
  "libvg_compiler.a"
  "libvg_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vg_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
