file(REMOVE_RECURSE
  "libvg_hw.a"
)
