
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/disk.cc" "src/CMakeFiles/vg_hw.dir/hw/disk.cc.o" "gcc" "src/CMakeFiles/vg_hw.dir/hw/disk.cc.o.d"
  "/root/repo/src/hw/iommu.cc" "src/CMakeFiles/vg_hw.dir/hw/iommu.cc.o" "gcc" "src/CMakeFiles/vg_hw.dir/hw/iommu.cc.o.d"
  "/root/repo/src/hw/mmu.cc" "src/CMakeFiles/vg_hw.dir/hw/mmu.cc.o" "gcc" "src/CMakeFiles/vg_hw.dir/hw/mmu.cc.o.d"
  "/root/repo/src/hw/nic.cc" "src/CMakeFiles/vg_hw.dir/hw/nic.cc.o" "gcc" "src/CMakeFiles/vg_hw.dir/hw/nic.cc.o.d"
  "/root/repo/src/hw/phys_mem.cc" "src/CMakeFiles/vg_hw.dir/hw/phys_mem.cc.o" "gcc" "src/CMakeFiles/vg_hw.dir/hw/phys_mem.cc.o.d"
  "/root/repo/src/hw/tpm.cc" "src/CMakeFiles/vg_hw.dir/hw/tpm.cc.o" "gcc" "src/CMakeFiles/vg_hw.dir/hw/tpm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vg_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vg_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
