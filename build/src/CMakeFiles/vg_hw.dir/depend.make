# Empty dependencies file for vg_hw.
# This may be replaced when dependencies are built.
