file(REMOVE_RECURSE
  "CMakeFiles/vg_hw.dir/hw/disk.cc.o"
  "CMakeFiles/vg_hw.dir/hw/disk.cc.o.d"
  "CMakeFiles/vg_hw.dir/hw/iommu.cc.o"
  "CMakeFiles/vg_hw.dir/hw/iommu.cc.o.d"
  "CMakeFiles/vg_hw.dir/hw/mmu.cc.o"
  "CMakeFiles/vg_hw.dir/hw/mmu.cc.o.d"
  "CMakeFiles/vg_hw.dir/hw/nic.cc.o"
  "CMakeFiles/vg_hw.dir/hw/nic.cc.o.d"
  "CMakeFiles/vg_hw.dir/hw/phys_mem.cc.o"
  "CMakeFiles/vg_hw.dir/hw/phys_mem.cc.o.d"
  "CMakeFiles/vg_hw.dir/hw/tpm.cc.o"
  "CMakeFiles/vg_hw.dir/hw/tpm.cc.o.d"
  "libvg_hw.a"
  "libvg_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vg_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
