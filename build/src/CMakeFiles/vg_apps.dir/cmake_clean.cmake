file(REMOVE_RECURSE
  "CMakeFiles/vg_apps.dir/apps/lmbench.cc.o"
  "CMakeFiles/vg_apps.dir/apps/lmbench.cc.o.d"
  "CMakeFiles/vg_apps.dir/apps/postmark.cc.o"
  "CMakeFiles/vg_apps.dir/apps/postmark.cc.o.d"
  "CMakeFiles/vg_apps.dir/apps/ssh_agent.cc.o"
  "CMakeFiles/vg_apps.dir/apps/ssh_agent.cc.o.d"
  "CMakeFiles/vg_apps.dir/apps/ssh_client.cc.o"
  "CMakeFiles/vg_apps.dir/apps/ssh_client.cc.o.d"
  "CMakeFiles/vg_apps.dir/apps/ssh_common.cc.o"
  "CMakeFiles/vg_apps.dir/apps/ssh_common.cc.o.d"
  "CMakeFiles/vg_apps.dir/apps/ssh_keygen.cc.o"
  "CMakeFiles/vg_apps.dir/apps/ssh_keygen.cc.o.d"
  "CMakeFiles/vg_apps.dir/apps/sshd.cc.o"
  "CMakeFiles/vg_apps.dir/apps/sshd.cc.o.d"
  "CMakeFiles/vg_apps.dir/apps/thttpd.cc.o"
  "CMakeFiles/vg_apps.dir/apps/thttpd.cc.o.d"
  "libvg_apps.a"
  "libvg_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vg_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
