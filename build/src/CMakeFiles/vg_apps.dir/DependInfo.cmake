
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/lmbench.cc" "src/CMakeFiles/vg_apps.dir/apps/lmbench.cc.o" "gcc" "src/CMakeFiles/vg_apps.dir/apps/lmbench.cc.o.d"
  "/root/repo/src/apps/postmark.cc" "src/CMakeFiles/vg_apps.dir/apps/postmark.cc.o" "gcc" "src/CMakeFiles/vg_apps.dir/apps/postmark.cc.o.d"
  "/root/repo/src/apps/ssh_agent.cc" "src/CMakeFiles/vg_apps.dir/apps/ssh_agent.cc.o" "gcc" "src/CMakeFiles/vg_apps.dir/apps/ssh_agent.cc.o.d"
  "/root/repo/src/apps/ssh_client.cc" "src/CMakeFiles/vg_apps.dir/apps/ssh_client.cc.o" "gcc" "src/CMakeFiles/vg_apps.dir/apps/ssh_client.cc.o.d"
  "/root/repo/src/apps/ssh_common.cc" "src/CMakeFiles/vg_apps.dir/apps/ssh_common.cc.o" "gcc" "src/CMakeFiles/vg_apps.dir/apps/ssh_common.cc.o.d"
  "/root/repo/src/apps/ssh_keygen.cc" "src/CMakeFiles/vg_apps.dir/apps/ssh_keygen.cc.o" "gcc" "src/CMakeFiles/vg_apps.dir/apps/ssh_keygen.cc.o.d"
  "/root/repo/src/apps/sshd.cc" "src/CMakeFiles/vg_apps.dir/apps/sshd.cc.o" "gcc" "src/CMakeFiles/vg_apps.dir/apps/sshd.cc.o.d"
  "/root/repo/src/apps/thttpd.cc" "src/CMakeFiles/vg_apps.dir/apps/thttpd.cc.o" "gcc" "src/CMakeFiles/vg_apps.dir/apps/thttpd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vg_ghost.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vg_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vg_sva.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vg_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vg_vir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vg_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vg_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vg_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
