file(REMOVE_RECURSE
  "libvg_apps.a"
)
