# Empty dependencies file for vg_apps.
# This may be replaced when dependencies are built.
