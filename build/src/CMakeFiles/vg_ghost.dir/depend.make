# Empty dependencies file for vg_ghost.
# This may be replaced when dependencies are built.
