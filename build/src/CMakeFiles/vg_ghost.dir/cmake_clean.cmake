file(REMOVE_RECURSE
  "CMakeFiles/vg_ghost.dir/ghost/gmalloc.cc.o"
  "CMakeFiles/vg_ghost.dir/ghost/gmalloc.cc.o.d"
  "CMakeFiles/vg_ghost.dir/ghost/runtime.cc.o"
  "CMakeFiles/vg_ghost.dir/ghost/runtime.cc.o.d"
  "libvg_ghost.a"
  "libvg_ghost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vg_ghost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
