file(REMOVE_RECURSE
  "libvg_ghost.a"
)
