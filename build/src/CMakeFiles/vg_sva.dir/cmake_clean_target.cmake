file(REMOVE_RECURSE
  "libvg_sva.a"
)
