file(REMOVE_RECURSE
  "CMakeFiles/vg_sva.dir/sva/ghost.cc.o"
  "CMakeFiles/vg_sva.dir/sva/ghost.cc.o.d"
  "CMakeFiles/vg_sva.dir/sva/mmu_ops.cc.o"
  "CMakeFiles/vg_sva.dir/sva/mmu_ops.cc.o.d"
  "CMakeFiles/vg_sva.dir/sva/vm.cc.o"
  "CMakeFiles/vg_sva.dir/sva/vm.cc.o.d"
  "libvg_sva.a"
  "libvg_sva.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vg_sva.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
