# Empty compiler generated dependencies file for vg_sva.
# This may be replaced when dependencies are built.
