file(REMOVE_RECURSE
  "CMakeFiles/vg_sim.dir/sim/log.cc.o"
  "CMakeFiles/vg_sim.dir/sim/log.cc.o.d"
  "CMakeFiles/vg_sim.dir/sim/stats.cc.o"
  "CMakeFiles/vg_sim.dir/sim/stats.cc.o.d"
  "libvg_sim.a"
  "libvg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
