# Empty compiler generated dependencies file for vg_vir.
# This may be replaced when dependencies are built.
