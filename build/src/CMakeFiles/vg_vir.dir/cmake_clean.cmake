file(REMOVE_RECURSE
  "CMakeFiles/vg_vir.dir/vir/builder.cc.o"
  "CMakeFiles/vg_vir.dir/vir/builder.cc.o.d"
  "CMakeFiles/vg_vir.dir/vir/inst.cc.o"
  "CMakeFiles/vg_vir.dir/vir/inst.cc.o.d"
  "CMakeFiles/vg_vir.dir/vir/parser.cc.o"
  "CMakeFiles/vg_vir.dir/vir/parser.cc.o.d"
  "CMakeFiles/vg_vir.dir/vir/printer.cc.o"
  "CMakeFiles/vg_vir.dir/vir/printer.cc.o.d"
  "CMakeFiles/vg_vir.dir/vir/verifier.cc.o"
  "CMakeFiles/vg_vir.dir/vir/verifier.cc.o.d"
  "libvg_vir.a"
  "libvg_vir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vg_vir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
