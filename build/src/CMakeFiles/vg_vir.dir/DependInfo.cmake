
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vir/builder.cc" "src/CMakeFiles/vg_vir.dir/vir/builder.cc.o" "gcc" "src/CMakeFiles/vg_vir.dir/vir/builder.cc.o.d"
  "/root/repo/src/vir/inst.cc" "src/CMakeFiles/vg_vir.dir/vir/inst.cc.o" "gcc" "src/CMakeFiles/vg_vir.dir/vir/inst.cc.o.d"
  "/root/repo/src/vir/parser.cc" "src/CMakeFiles/vg_vir.dir/vir/parser.cc.o" "gcc" "src/CMakeFiles/vg_vir.dir/vir/parser.cc.o.d"
  "/root/repo/src/vir/printer.cc" "src/CMakeFiles/vg_vir.dir/vir/printer.cc.o" "gcc" "src/CMakeFiles/vg_vir.dir/vir/printer.cc.o.d"
  "/root/repo/src/vir/verifier.cc" "src/CMakeFiles/vg_vir.dir/vir/verifier.cc.o" "gcc" "src/CMakeFiles/vg_vir.dir/vir/verifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vg_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
