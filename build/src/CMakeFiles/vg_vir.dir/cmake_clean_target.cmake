file(REMOVE_RECURSE
  "libvg_vir.a"
)
