file(REMOVE_RECURSE
  "CMakeFiles/vg_crypto.dir/crypto/aes.cc.o"
  "CMakeFiles/vg_crypto.dir/crypto/aes.cc.o.d"
  "CMakeFiles/vg_crypto.dir/crypto/bignum.cc.o"
  "CMakeFiles/vg_crypto.dir/crypto/bignum.cc.o.d"
  "CMakeFiles/vg_crypto.dir/crypto/drbg.cc.o"
  "CMakeFiles/vg_crypto.dir/crypto/drbg.cc.o.d"
  "CMakeFiles/vg_crypto.dir/crypto/hmac.cc.o"
  "CMakeFiles/vg_crypto.dir/crypto/hmac.cc.o.d"
  "CMakeFiles/vg_crypto.dir/crypto/rsa.cc.o"
  "CMakeFiles/vg_crypto.dir/crypto/rsa.cc.o.d"
  "CMakeFiles/vg_crypto.dir/crypto/sealed.cc.o"
  "CMakeFiles/vg_crypto.dir/crypto/sealed.cc.o.d"
  "CMakeFiles/vg_crypto.dir/crypto/sha256.cc.o"
  "CMakeFiles/vg_crypto.dir/crypto/sha256.cc.o.d"
  "libvg_crypto.a"
  "libvg_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vg_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
