
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aes.cc" "src/CMakeFiles/vg_crypto.dir/crypto/aes.cc.o" "gcc" "src/CMakeFiles/vg_crypto.dir/crypto/aes.cc.o.d"
  "/root/repo/src/crypto/bignum.cc" "src/CMakeFiles/vg_crypto.dir/crypto/bignum.cc.o" "gcc" "src/CMakeFiles/vg_crypto.dir/crypto/bignum.cc.o.d"
  "/root/repo/src/crypto/drbg.cc" "src/CMakeFiles/vg_crypto.dir/crypto/drbg.cc.o" "gcc" "src/CMakeFiles/vg_crypto.dir/crypto/drbg.cc.o.d"
  "/root/repo/src/crypto/hmac.cc" "src/CMakeFiles/vg_crypto.dir/crypto/hmac.cc.o" "gcc" "src/CMakeFiles/vg_crypto.dir/crypto/hmac.cc.o.d"
  "/root/repo/src/crypto/rsa.cc" "src/CMakeFiles/vg_crypto.dir/crypto/rsa.cc.o" "gcc" "src/CMakeFiles/vg_crypto.dir/crypto/rsa.cc.o.d"
  "/root/repo/src/crypto/sealed.cc" "src/CMakeFiles/vg_crypto.dir/crypto/sealed.cc.o" "gcc" "src/CMakeFiles/vg_crypto.dir/crypto/sealed.cc.o.d"
  "/root/repo/src/crypto/sha256.cc" "src/CMakeFiles/vg_crypto.dir/crypto/sha256.cc.o" "gcc" "src/CMakeFiles/vg_crypto.dir/crypto/sha256.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vg_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
