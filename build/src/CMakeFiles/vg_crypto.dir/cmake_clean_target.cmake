file(REMOVE_RECURSE
  "libvg_crypto.a"
)
