# Empty compiler generated dependencies file for vg_crypto.
# This may be replaced when dependencies are built.
