# Empty compiler generated dependencies file for vg_kernel.
# This may be replaced when dependencies are built.
