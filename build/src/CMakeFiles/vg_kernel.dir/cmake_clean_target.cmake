file(REMOVE_RECURSE
  "libvg_kernel.a"
)
