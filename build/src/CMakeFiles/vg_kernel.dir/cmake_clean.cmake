file(REMOVE_RECURSE
  "CMakeFiles/vg_kernel.dir/kernel/bcache.cc.o"
  "CMakeFiles/vg_kernel.dir/kernel/bcache.cc.o.d"
  "CMakeFiles/vg_kernel.dir/kernel/fs.cc.o"
  "CMakeFiles/vg_kernel.dir/kernel/fs.cc.o.d"
  "CMakeFiles/vg_kernel.dir/kernel/kernel.cc.o"
  "CMakeFiles/vg_kernel.dir/kernel/kernel.cc.o.d"
  "CMakeFiles/vg_kernel.dir/kernel/kmem.cc.o"
  "CMakeFiles/vg_kernel.dir/kernel/kmem.cc.o.d"
  "CMakeFiles/vg_kernel.dir/kernel/module_api.cc.o"
  "CMakeFiles/vg_kernel.dir/kernel/module_api.cc.o.d"
  "CMakeFiles/vg_kernel.dir/kernel/syscalls.cc.o"
  "CMakeFiles/vg_kernel.dir/kernel/syscalls.cc.o.d"
  "CMakeFiles/vg_kernel.dir/kernel/system.cc.o"
  "CMakeFiles/vg_kernel.dir/kernel/system.cc.o.d"
  "libvg_kernel.a"
  "libvg_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vg_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
