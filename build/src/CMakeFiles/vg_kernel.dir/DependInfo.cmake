
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/bcache.cc" "src/CMakeFiles/vg_kernel.dir/kernel/bcache.cc.o" "gcc" "src/CMakeFiles/vg_kernel.dir/kernel/bcache.cc.o.d"
  "/root/repo/src/kernel/fs.cc" "src/CMakeFiles/vg_kernel.dir/kernel/fs.cc.o" "gcc" "src/CMakeFiles/vg_kernel.dir/kernel/fs.cc.o.d"
  "/root/repo/src/kernel/kernel.cc" "src/CMakeFiles/vg_kernel.dir/kernel/kernel.cc.o" "gcc" "src/CMakeFiles/vg_kernel.dir/kernel/kernel.cc.o.d"
  "/root/repo/src/kernel/kmem.cc" "src/CMakeFiles/vg_kernel.dir/kernel/kmem.cc.o" "gcc" "src/CMakeFiles/vg_kernel.dir/kernel/kmem.cc.o.d"
  "/root/repo/src/kernel/module_api.cc" "src/CMakeFiles/vg_kernel.dir/kernel/module_api.cc.o" "gcc" "src/CMakeFiles/vg_kernel.dir/kernel/module_api.cc.o.d"
  "/root/repo/src/kernel/syscalls.cc" "src/CMakeFiles/vg_kernel.dir/kernel/syscalls.cc.o" "gcc" "src/CMakeFiles/vg_kernel.dir/kernel/syscalls.cc.o.d"
  "/root/repo/src/kernel/system.cc" "src/CMakeFiles/vg_kernel.dir/kernel/system.cc.o" "gcc" "src/CMakeFiles/vg_kernel.dir/kernel/system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vg_sva.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vg_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vg_vir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vg_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vg_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vg_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
