# Empty dependencies file for bench_thttpd.
# This may be replaced when dependencies are built.
