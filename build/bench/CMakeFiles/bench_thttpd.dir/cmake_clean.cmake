file(REMOVE_RECURSE
  "CMakeFiles/bench_thttpd.dir/bench_thttpd.cc.o"
  "CMakeFiles/bench_thttpd.dir/bench_thttpd.cc.o.d"
  "bench_thttpd"
  "bench_thttpd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thttpd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
