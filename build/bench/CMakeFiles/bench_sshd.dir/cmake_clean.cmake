file(REMOVE_RECURSE
  "CMakeFiles/bench_sshd.dir/bench_sshd.cc.o"
  "CMakeFiles/bench_sshd.dir/bench_sshd.cc.o.d"
  "bench_sshd"
  "bench_sshd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sshd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
