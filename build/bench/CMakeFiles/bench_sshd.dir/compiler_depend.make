# Empty compiler generated dependencies file for bench_sshd.
# This may be replaced when dependencies are built.
