file(REMOVE_RECURSE
  "CMakeFiles/bench_postmark.dir/bench_postmark.cc.o"
  "CMakeFiles/bench_postmark.dir/bench_postmark.cc.o.d"
  "bench_postmark"
  "bench_postmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_postmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
