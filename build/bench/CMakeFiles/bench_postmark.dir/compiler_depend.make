# Empty compiler generated dependencies file for bench_postmark.
# This may be replaced when dependencies are built.
