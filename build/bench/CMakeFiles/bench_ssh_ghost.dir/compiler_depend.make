# Empty compiler generated dependencies file for bench_ssh_ghost.
# This may be replaced when dependencies are built.
