file(REMOVE_RECURSE
  "CMakeFiles/bench_ssh_ghost.dir/bench_ssh_ghost.cc.o"
  "CMakeFiles/bench_ssh_ghost.dir/bench_ssh_ghost.cc.o.d"
  "bench_ssh_ghost"
  "bench_ssh_ghost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ssh_ghost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
