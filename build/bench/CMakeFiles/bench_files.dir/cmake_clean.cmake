file(REMOVE_RECURSE
  "CMakeFiles/bench_files.dir/bench_files.cc.o"
  "CMakeFiles/bench_files.dir/bench_files.cc.o.d"
  "bench_files"
  "bench_files.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_files.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
