# Empty compiler generated dependencies file for bench_files.
# This may be replaced when dependencies are built.
