/**
 * @file
 * Reusable serving-scenario driver.
 *
 * Every serving benchmark — thttpd bandwidth, sshd transfer, the
 * fleet's single-machine calibration run — is the same shape: boot a
 * machine, plant content, fork one server instance per vCPU on
 * consecutive ports, give them a few yields to reach accept(), fork
 * client workers, time the client phase on the machine clock, then
 * reap everything. runScenario() owns that skeleton; benchmarks
 * supply the server and client bodies and read the timed result.
 */

#ifndef VG_BENCH_SCENARIO_HH
#define VG_BENCH_SCENARIO_HH

#include "common.hh"

namespace vg::bench
{

/** Plant a deterministic content file directly in @p sys's fs. */
inline void
plantFile(kern::System &sys, const std::string &path, uint64_t bytes,
          uint8_t fill = 0x42)
{
    kern::Ino ino = 0;
    sys.kernel().fs().create(path, ino);
    std::vector<uint8_t> chunk(std::min<uint64_t>(bytes, 64 * 1024),
                               fill);
    for (uint64_t off = 0; off < bytes; off += chunk.size())
        sys.kernel().fs().write(
            ino, off, chunk.data(),
            std::min<uint64_t>(chunk.size(), bytes - off));
}

/** One serving scenario: per-instance servers + client workers. */
struct ServeScenario
{
    /** Server instances (one per vCPU in the standard setup); ports
     *  are instance-indexed by the bodies themselves. */
    unsigned instances = 1;

    /** Client workers forked per instance. */
    unsigned clientsPerInstance = 1;

    /** Optional setup phase (e.g. ssh keygen) run to completion in
     *  its own process before any server forks. Nonzero exit aborts
     *  the scenario. */
    std::function<int(kern::UserApi &)> setup;

    /** Server body for instance @p inst. */
    std::function<int(kern::UserApi &, unsigned inst)> server;

    /** Client body: worker @p worker of instance @p inst. Runs after
     *  the servers have had `warmupYields` yields to reach accept().
     */
    std::function<int(kern::UserApi &, unsigned inst, unsigned worker)>
        client;

    unsigned warmupYields = 4;
};

/** Scenario outcome. */
struct ScenarioResult
{
    /** Machine time the client phase took (fork of the first client
     *  to exit of the last). */
    sim::Cycles elapsed = 0;
    /** 0, or the setup phase's nonzero exit. */
    int rc = 0;

    double
    seconds() const
    {
        return sim::Clock::toSec(elapsed);
    }
};

/**
 * Run @p s on the already-booted @p sys. Client/server bodies
 * communicate results through their captures (they run in-process —
 * the simulated fork shares the host address space).
 */
inline ScenarioResult
runScenario(kern::System &sys, const ServeScenario &s)
{
    ScenarioResult out;
    sys.runProcess("scenario", [&](kern::UserApi &api) {
        int status = 0;
        if (s.setup) {
            uint64_t pid = api.fork(
                [&](kern::UserApi &capi) { return s.setup(capi); });
            api.waitpid(pid, status);
            if (status != 0) {
                out.rc = status;
                return status;
            }
        }

        std::vector<uint64_t> servers;
        for (unsigned i = 0; i < s.instances; i++)
            servers.push_back(api.fork([&, i](kern::UserApi &capi) {
                return s.server(capi, i);
            }));
        for (unsigned i = 0; i < s.warmupYields; i++)
            api.yield();

        sim::Cycles t0 = machineNow(sys);
        std::vector<uint64_t> clients;
        for (unsigned i = 0; i < s.instances; i++)
            for (unsigned j = 0; j < s.clientsPerInstance; j++)
                clients.push_back(
                    api.fork([&, i, j](kern::UserApi &capi) {
                        return s.client(capi, i, j);
                    }));
        for (uint64_t cli : clients)
            api.waitpid(cli, status);
        out.elapsed = machineNow(sys) - t0;
        for (uint64_t srv : servers)
            api.waitpid(srv, status);
        return 0;
    });
    collectVerifierStats(sys);
    return out;
}

} // namespace vg::bench

#endif // VG_BENCH_SCENARIO_HH
