/**
 * @file
 * Host-side throughput of the execution engine: interpreted
 * instructions per wall-clock second for the same workload module
 * under three configurations:
 *
 *   - native:           no instrumentation (upper bound);
 *   - vg-fused:         full Virtual Ghost instrumentation with the
 *                       fused SandboxAddr masking op (default);
 *   - vg-unfused:       full instrumentation with the 13-instruction
 *                       unfused mask sequence (pre-fusion engine).
 *
 * Each configuration is measured twice: pure interpreter and with the
 * trace tier enabled (+trace rows), so the superinstruction speedup
 * and its trace.* counters land in BENCH_exec.json per config.
 *
 * Unlike bench_micro this is a standalone harness: it prints a small
 * table and writes machine-readable results to BENCH_exec.json in the
 * current directory. Pass --smoke (or set VG_BENCH_SCALE=smoke) for a
 * fast CI run.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common.hh"
#include "compiler/exec.hh"
#include "compiler/translator.hh"
#include "sim/config.hh"
#include "sim/context.hh"

using namespace vg;

namespace
{

const char *kModuleSrc = R"(
func @work(1) {
entry:
  %1 = const 0
  %2 = const 0
  br head
head:
  %3 = icmp ult %2, %0
  condbr %3, body, done
body:
  %4 = alloca 64
  store.i64 %4, %2
  %5 = load.i64 %4
  %1 = add %1, %5
  %6 = const 1
  %2 = add %2, %6
  br head
done:
  ret %1
}
)";

class NullPort : public cc::MemPort
{
  public:
    bool
    read(uint64_t, unsigned, uint64_t &out) override
    {
        out = 0;
        return true;
    }
    bool write(uint64_t, unsigned, uint64_t) override { return true; }
    bool copy(uint64_t, uint64_t, uint64_t) override { return true; }
};

struct Result {
    std::string name;
    uint64_t instsPerCall = 0;
    double usPerCall = 0;
    double hostInstsPerSec = 0;
    // Load-time machine-code verifier work for this config's
    // translation (zero when the gate is off).
    uint64_t mverifyInsts = 0;
    uint64_t mverifyFindings = 0;
    double mverifyWallUs = 0;
    // Information-flow verifier work (zero when the gate is off).
    uint64_t iflowInsts = 0;
    uint64_t iflowFindings = 0;
    double iflowWallUs = 0;
    // Trace-tier counters (zero for interpreter-only rows).
    bool traceTier = false;
    uint64_t tracesFormed = 0;
    uint64_t traceExecuted = 0;
    uint64_t traceSideExits = 0;
    uint64_t traceRetired = 0;
};

/** Translate kModuleSrc under @p vg, then call work(N) repeatedly for
 *  at least @p minSeconds of wall clock. With @p traceTier the
 *  executor's trace tier is enabled, so hot-loop passes run as
 *  verified superinstruction blocks. */
Result
measure(const std::string &name, const sim::VgConfig &vg,
        uint64_t iters, double minSeconds, bool traceTier = false)
{
    sim::SimContext ctx(vg);
    std::vector<uint8_t> key(32, 1);
    cc::Translator tr(key, ctx);
    auto r = tr.translateText(kModuleSrc, 0xffffff9000000000ull);
    if (!r.ok) {
        std::fprintf(stderr, "translate failed: %s\n",
                     r.error.c_str());
        std::exit(1);
    }
    NullPort port;
    cc::ExternTable externs;
    cc::Executor exec(*r.image, port, externs, ctx,
                      0xffffffa000000000ull, 1 << 20);
    if (traceTier)
        exec.enableTraceTier(tr);

    // Warm up (also captures the per-call instruction count and, with
    // the tier on, crosses the hot threshold so traces are formed and
    // re-verified before timing starts).
    auto warm = exec.call("work", {iters});
    if (!warm.ok) {
        std::fprintf(stderr, "%s: workload faulted: %s\n",
                     name.c_str(), warm.detail.c_str());
        std::exit(1);
    }

    using clock = std::chrono::steady_clock;
    uint64_t calls = 0, insts = 0;
    auto start = clock::now();
    double elapsed = 0;
    do {
        auto res = exec.call("work", {iters});
        insts += res.instsExecuted;
        calls++;
        elapsed = std::chrono::duration<double>(clock::now() - start)
                      .count();
    } while (elapsed < minSeconds);

    Result out;
    out.name = name;
    out.instsPerCall = insts / calls;
    out.usPerCall = elapsed * 1e6 / double(calls);
    out.hostInstsPerSec = double(insts) / elapsed;
    out.mverifyInsts = ctx.stats().get("mverify.insts");
    out.mverifyFindings = ctx.stats().get("mverify.findings");
    out.mverifyWallUs =
        double(ctx.stats().get("mverify.wall_ns")) / 1e3;
    out.iflowInsts = ctx.stats().get("iflow.insts");
    out.iflowFindings = ctx.stats().get("iflow.findings");
    out.iflowWallUs =
        double(ctx.stats().get("iflow.wall_ns")) / 1e3;
    out.traceTier = traceTier;
    out.tracesFormed = exec.tracesFormed();
    out.traceExecuted = ctx.stats().get("trace.executed");
    out.traceSideExits = ctx.stats().get("trace.side_exits");
    out.traceRetired = ctx.stats().get("trace.retired_insts");
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = bench::parseBenchOpts(argc, argv).smoke;

    const uint64_t iters = smoke ? 200 : 2000;
    const double minSeconds = smoke ? 0.05 : 0.5;

    sim::VgConfig unfused = sim::VgConfig::full();
    unfused.fuseSandboxMasks = false;

    std::vector<Result> results;
    results.push_back(
        measure("native", sim::VgConfig::native(), iters, minSeconds));
    results.push_back(measure("native+trace", sim::VgConfig::native(),
                              iters, minSeconds, true));
    results.push_back(
        measure("vg-fused", sim::VgConfig::full(), iters, minSeconds));
    results.push_back(measure("vg-fused+trace", sim::VgConfig::full(),
                              iters, minSeconds, true));
    results.push_back(measure("vg-unfused", unfused, iters,
                              minSeconds));
    results.push_back(measure("vg-unfused+trace", unfused, iters,
                              minSeconds, true));

    std::printf("%-18s %14s %12s %18s %8s\n", "config", "insts/call",
                "us/call", "host insts/sec", "traces");
    for (const auto &r : results)
        std::printf("%-18s %14llu %12.2f %18.3e %8llu\n",
                    r.name.c_str(),
                    (unsigned long long)r.instsPerCall, r.usPerCall,
                    r.hostInstsPerSec,
                    (unsigned long long)r.tracesFormed);

    const Result &fused = results[2];
    const Result &unf = results[4];
    double speedup = unf.usPerCall / fused.usPerCall;
    std::printf("fused vs unfused host speedup: %.2fx\n", speedup);

    // Interpreter vs trace tier, per config (same insts/call by
    // construction — the tier only changes host time).
    auto traceSpeedup = [&](size_t off, size_t on) {
        return results[off].usPerCall / results[on].usPerCall;
    };
    double trNative = traceSpeedup(0, 1);
    double trFused = traceSpeedup(2, 3);
    double trUnfused = traceSpeedup(4, 5);
    std::printf("trace tier speedup: native %.2fx, vg-fused %.2fx, "
                "vg-unfused %.2fx\n",
                trNative, trFused, trUnfused);

    std::FILE *f = std::fopen("BENCH_exec.json", "w");
    if (!f) {
        std::perror("BENCH_exec.json");
        return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"exec\",\n  \"smoke\": %s,\n",
                 smoke ? "true" : "false");
    std::fprintf(f, "  \"work_iters\": %llu,\n",
                 (unsigned long long)iters);
    std::fprintf(f, "  \"configs\": [\n");
    for (size_t i = 0; i < results.size(); i++) {
        const Result &r = results[i];
        std::fprintf(f,
                     "    {\"name\": \"%s\", \"insts_per_call\": %llu,"
                     " \"us_per_call\": %.3f,"
                     " \"host_insts_per_sec\": %.1f,"
                     " \"mverify_insts\": %llu,"
                     " \"mverify_findings\": %llu,"
                     " \"mverify_wall_us\": %.3f,"
                     " \"iflow_insts\": %llu,"
                     " \"iflow_findings\": %llu,"
                     " \"iflow_wall_us\": %.3f,"
                     " \"trace_tier\": %s,"
                     " \"trace\": {\"formed\": %llu,"
                     " \"executed\": %llu, \"side_exits\": %llu,"
                     " \"retired_insts\": %llu}}%s\n",
                     r.name.c_str(),
                     (unsigned long long)r.instsPerCall, r.usPerCall,
                     r.hostInstsPerSec,
                     (unsigned long long)r.mverifyInsts,
                     (unsigned long long)r.mverifyFindings,
                     r.mverifyWallUs,
                     (unsigned long long)r.iflowInsts,
                     (unsigned long long)r.iflowFindings,
                     r.iflowWallUs,
                     r.traceTier ? "true" : "false",
                     (unsigned long long)r.tracesFormed,
                     (unsigned long long)r.traceExecuted,
                     (unsigned long long)r.traceSideExits,
                     (unsigned long long)r.traceRetired,
                     i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"fused_vs_unfused_speedup\": %.3f,\n",
                 speedup);
    std::fprintf(f,
                 "  \"trace_speedup\": %.3f,\n"
                 "  \"trace_speedup_native\": %.3f,\n"
                 "  \"trace_speedup_unfused\": %.3f\n}\n",
                 trFused, trNative, trUnfused);
    std::fclose(f);
    return 0;
}
