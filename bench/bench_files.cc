/**
 * @file
 * Tables 3 and 4: LMBench file delete/create rates (files per second)
 * for 0 KB, 1 KB, 4 KB and 10 KB files, baseline vs Virtual Ghost.
 */

#include "apps/lmbench.hh"
#include "common.hh"

using namespace vg;
using namespace vg::bench;
using namespace vg::apps;

int
main(int argc, char **argv)
{
    bool paper = paperScale();
    bool smoke = parseBenchOpts(argc, argv).smoke;
    uint64_t count = paper ? 1000 : smoke ? 60 : 300;
    int runs = paper ? 10 : smoke ? 1 : 3;

    BenchReport report("files");
    report.top().count("count", count).count("runs", uint64_t(runs));

    struct SizeRow
    {
        uint64_t size;
        double paperCreateNat, paperCreateVg;
        double paperDeleteNat, paperDeleteVg;
    };
    std::vector<SizeRow> sizes = {
        {0, 156276, 33777, 166846, 36164},
        {1024, 97839, 18796, 116668, 25817},
        {4096, 97102, 18725, 116657, 25806},
        {10240, 85319, 18095, 110842, 25042},
    };

    banner("Table 4. LMBench: files created per second");
    std::printf("%-10s %12s %12s %9s | %12s %12s %9s\n", "File Size",
                "Native", "VGhost", "Overhead", "paper-Nat",
                "paper-VG", "paper-OH");
    std::vector<double> create_nat, create_vg;
    for (const SizeRow &row : sizes) {
        double nat = meanOf(runs, sim::VgConfig::native(),
                            [&](kern::UserApi &api) {
                                double r = rateCreateFiles(api, count,
                                                           row.size);
                                rateDeleteFiles(api, count);
                                return r;
                            });
        double vgr = meanOf(runs, sim::VgConfig::full(),
                            [&](kern::UserApi &api) {
                                double r = rateCreateFiles(api, count,
                                                           row.size);
                                rateDeleteFiles(api, count);
                                return r;
                            });
        create_nat.push_back(nat);
        create_vg.push_back(vgr);
        // One pooled sample per size: VG per-file create latency.
        if (vgr > 0)
            report.latency().add(uint64_t(
                sim::Clock::cyclesPerUsec * 1e6 / vgr));
        std::printf("%-10s %12.0f %12.0f %8.2fx | %12.0f %12.0f "
                    "%8.2fx\n",
                    sizeLabel(row.size).c_str(), nat, vgr, nat / vgr,
                    row.paperCreateNat, row.paperCreateVg,
                    row.paperCreateNat / row.paperCreateVg);
        report.row()
            .str("test", "create")
            .count("file_bytes", row.size)
            .num("native_per_sec", nat)
            .num("vg_per_sec", vgr)
            .num("overhead", nat / vgr);
    }

    banner("Table 3. LMBench: files deleted per second");
    std::printf("%-10s %12s %12s %9s | %12s %12s %9s\n", "File Size",
                "Native", "VGhost", "Overhead", "paper-Nat",
                "paper-VG", "paper-OH");
    for (const SizeRow &row : sizes) {
        double nat = meanOf(runs, sim::VgConfig::native(),
                            [&](kern::UserApi &api) {
                                rateCreateFiles(api, count, row.size);
                                return rateDeleteFiles(api, count);
                            });
        double vgr = meanOf(runs, sim::VgConfig::full(),
                            [&](kern::UserApi &api) {
                                rateCreateFiles(api, count, row.size);
                                return rateDeleteFiles(api, count);
                            });
        std::printf("%-10s %12.0f %12.0f %8.2fx | %12.0f %12.0f "
                    "%8.2fx\n",
                    sizeLabel(row.size).c_str(), nat, vgr, nat / vgr,
                    row.paperDeleteNat, row.paperDeleteVg,
                    row.paperDeleteNat / row.paperDeleteVg);
        if (vgr > 0)
            report.latency().add(uint64_t(
                sim::Clock::cyclesPerUsec * 1e6 / vgr));
        report.row()
            .str("test", "delete")
            .count("file_bytes", row.size)
            .num("native_per_sec", nat)
            .num("vg_per_sec", vgr)
            .num("overhead", nat / vgr);
    }
    emitVerifierStats(report);
    return report.write() ? 0 : 1;
}
