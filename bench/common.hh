/**
 * @file
 * Shared benchmark-harness helpers.
 *
 * Every bench binary prints the table or data series of one table or
 * figure from the paper's evaluation (S 8), with the paper's reported
 * numbers alongside for shape comparison. Scale: by default the
 * harnesses run reduced iteration counts suited to CI; set
 * VG_BENCH_SCALE=paper for the paper's full parameters.
 */

#ifndef VG_BENCH_COMMON_HH
#define VG_BENCH_COMMON_HH

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "kernel/system.hh"

namespace vg::bench
{

/** True when VG_BENCH_SCALE=paper. */
inline bool
paperScale()
{
    const char *env = std::getenv("VG_BENCH_SCALE");
    return env && std::strcmp(env, "paper") == 0;
}

/** True when VG_BENCH_SCALE=smoke (CI-sized run). */
inline bool
smokeScale()
{
    const char *env = std::getenv("VG_BENCH_SCALE");
    return env && std::strcmp(env, "smoke") == 0;
}

/** The active scale's name, for labelling result files. */
inline const char *
scaleName()
{
    return paperScale() ? "paper" : smokeScale() ? "smoke" : "default";
}

/**
 * The one flag parser every bench binary shares. Recognized flags:
 *
 *   --vcpus N      simulated vCPUs (1-64, default 1)
 *   --legacy-io    synchronous device paths (VgConfig::asyncIo off;
 *                  VG_ASYNC_IO=0 in the environment does the same)
 *   --seed N       deterministic-schedule seed (default VgConfig's)
 *   --smoke        CI-sized run (same as VG_BENCH_SCALE=smoke)
 *
 * Unrecognized arguments are collected in `extra` for
 * binary-specific flags (--swap-ref, ...). apply() stamps the parsed
 * protection-independent knobs onto a VgConfig, so the
 * native-vs-full A/B pairs every harness builds stay identical in
 * everything but the protection toggles.
 */
struct BenchOpts
{
    unsigned vcpus = 1;
    bool legacyIo = false;
    uint64_t seed = sim::VgConfig{}.seed;
    bool smoke = false;
    std::vector<std::string> extra;

    bool
    has(const char *flag) const
    {
        for (const std::string &a : extra)
            if (a == flag)
                return true;
        return false;
    }

    sim::VgConfig
    apply(sim::VgConfig vg) const
    {
        vg.vcpus = vcpus;
        vg.asyncIo = !legacyIo;
        vg.seed = seed;
        return vg;
    }
};

inline BenchOpts
parseBenchOpts(int argc, char **argv)
{
    BenchOpts opts;
    opts.smoke = smokeScale();
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--vcpus") == 0 && i + 1 < argc) {
            long n = std::strtol(argv[++i], nullptr, 10);
            if (n >= 1 && n <= 64)
                opts.vcpus = unsigned(n);
        } else if (std::strcmp(argv[i], "--legacy-io") == 0) {
            opts.legacyIo = true;
        } else if (std::strcmp(argv[i], "--seed") == 0 &&
                   i + 1 < argc) {
            opts.seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--smoke") == 0) {
            opts.smoke = true;
        } else {
            opts.extra.push_back(argv[i]);
        }
    }
    const char *env = std::getenv("VG_ASYNC_IO");
    if (env && std::strcmp(env, "0") == 0)
        opts.legacyIo = true;
    return opts;
}

/** Machine-wide simulated time: the furthest-ahead vCPU clock.
 *  Identical to ctx.clock().now() on single-CPU machines. */
inline sim::Cycles
machineNow(kern::System &sys)
{
    uint64_t t = 0;
    for (unsigned c = 0; c < sys.ctx().vcpuCount(); c++)
        t = std::max<uint64_t>(t, sys.ctx().clockOf(c).now());
    return sim::Cycles(t);
}

/**
 * Per-operation latency recorder, shared by every bench binary.
 * Benchmarks feed one sample per natural unit of work (HTTP request,
 * ssh session, postmark transaction, ghost page fault); the histogram
 * turns the pool into p50/p99/p999 so tail behaviour lands in the
 * JSON next to the throughput figures. Histograms from per-phase or
 * per-mode sub-runs can be merge()d into a run-wide pool, and emit()
 * renders the standard percentile fields into any report object.
 */
class LatencyHist
{
  public:
    void add(uint64_t cycles) { _samples.push_back(cycles); }
    size_t count() const { return _samples.size(); }

    /** Percentile (0-100) in cycles over the recorded pool; 0 when
     *  the pool is empty. Nearest-rank on a sorted copy. */
    uint64_t
    percentile(double p) const
    {
        if (_samples.empty())
            return 0;
        std::vector<uint64_t> sorted(_samples);
        std::sort(sorted.begin(), sorted.end());
        double rank = p / 100.0 * double(sorted.size() - 1);
        return sorted[size_t(rank + 0.5)];
    }

    /** Mean sample in cycles (0 when empty). */
    double
    mean() const
    {
        if (_samples.empty())
            return 0;
        double sum = 0;
        for (uint64_t s : _samples)
            sum += double(s);
        return sum / double(_samples.size());
    }

    /** Fold another histogram's samples into this one. */
    void
    merge(const LatencyHist &other)
    {
        _samples.insert(_samples.end(), other._samples.begin(),
                        other._samples.end());
    }

  private:
    std::vector<uint64_t> _samples;
};

/**
 * Machine-readable results: every bench binary writes one
 * BENCH_<name>.json to the current directory so the perf trajectory
 * (native vs VG cycles, overhead ratios, host wall time) can be
 * tracked without scraping stdout. Fields keep insertion order; the
 * report stamps total host wall time at write().
 */
class BenchReport
{
  public:
    /** One JSON object: keys with pre-rendered values. */
    class Obj
    {
      public:
        Obj &
        num(const std::string &key, double v)
        {
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%.6g", v);
            return raw(key, buf);
        }

        Obj &
        count(const std::string &key, uint64_t v)
        {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%llu",
                          (unsigned long long)v);
            return raw(key, buf);
        }

        Obj &
        str(const std::string &key, const std::string &v)
        {
            return raw(key, quote(v));
        }

        Obj &
        flag(const std::string &key, bool v)
        {
            return raw(key, v ? "true" : "false");
        }

        const std::vector<std::pair<std::string, std::string>> &
        fields() const
        {
            return _fields;
        }

      private:
        Obj &
        raw(const std::string &key, const std::string &rendered)
        {
            _fields.emplace_back(key, rendered);
            return *this;
        }

        static std::string
        quote(const std::string &s)
        {
            std::string out = "\"";
            for (char c : s) {
                if (c == '"' || c == '\\') {
                    out += '\\';
                    out += c;
                } else if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
            }
            out += '"';
            return out;
        }

        std::vector<std::pair<std::string, std::string>> _fields;
    };

    explicit BenchReport(const std::string &bench, unsigned vcpus = 1)
        : _bench(bench), _start(std::chrono::steady_clock::now())
    {
        _top.str("bench", bench);
        _top.str("scale", scaleName());
        _top.count("vcpus", vcpus);
    }

    /** Top-level scalars ("speedup", "work_iters", ...). */
    Obj &top() { return _top; }

    /** Per-operation latency pool; write() renders it as a "latency"
     *  object with p50/p99/p999 in microseconds. */
    LatencyHist &latency() { return _latency; }

    /** Append one result row (shows up under "results"). */
    Obj &
    row()
    {
        _rows.emplace_back();
        return _rows.back();
    }

    /**
     * Write BENCH_<name>.json. Returns false (after perror) if the
     * file cannot be created, so main() can propagate a nonzero exit.
     */
    bool
    write()
    {
        double host = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - _start)
                          .count();
        std::string path = "BENCH_" + _bench + ".json";
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f) {
            std::perror(path.c_str());
            return false;
        }
        std::fprintf(f, "{\n");
        for (const auto &[k, v] : _top.fields())
            std::fprintf(f, "  \"%s\": %s,\n", k.c_str(), v.c_str());
        std::fprintf(f, "  \"results\": [\n");
        for (size_t i = 0; i < _rows.size(); i++) {
            std::fprintf(f, "    {");
            const auto &fields = _rows[i].fields();
            for (size_t j = 0; j < fields.size(); j++)
                std::fprintf(f, "%s\"%s\": %s", j ? ", " : "",
                             fields[j].first.c_str(),
                             fields[j].second.c_str());
            std::fprintf(f, "}%s\n", i + 1 < _rows.size() ? "," : "");
        }
        std::fprintf(f, "  ],\n");
        double cpu = sim::Clock::cyclesPerUsec;
        std::fprintf(f,
                     "  \"latency\": {\"samples\": %zu, "
                     "\"p50_us\": %.3f, \"p99_us\": %.3f, "
                     "\"p999_us\": %.3f},\n",
                     _latency.count(),
                     double(_latency.percentile(50)) / cpu,
                     double(_latency.percentile(99)) / cpu,
                     double(_latency.percentile(99.9)) / cpu);
        std::fprintf(f, "  \"host_seconds\": %.3f\n}\n", host);
        std::fclose(f);
        std::printf("wrote %s (%.2fs host)\n", path.c_str(), host);
        return true;
    }

  private:
    std::string _bench;
    std::chrono::steady_clock::time_point _start;
    Obj _top;
    std::vector<Obj> _rows;
    LatencyHist _latency;
};

/** Render @p hist's standard percentile fields (in microseconds,
 *  keyed <prefix>p50_us/p99_us/p999_us plus a sample count) into a
 *  report object — the idiom for per-row / per-mode latencies that
 *  don't belong in the report-wide pool. */
inline void
emitLatency(BenchReport::Obj &obj, const LatencyHist &hist,
            const std::string &prefix = "")
{
    double cpu = sim::Clock::cyclesPerUsec;
    obj.count(prefix + "lat_samples", hist.count())
        .num(prefix + "p50_us", double(hist.percentile(50)) / cpu)
        .num(prefix + "p99_us", double(hist.percentile(99)) / cpu)
        .num(prefix + "p999_us", double(hist.percentile(99.9)) / cpu);
}

/**
 * Process-wide accumulator for machine-code verifier work (PAPER.md
 * S 4: the load-time verifier is on the module-load path, so its cost
 * belongs in the perf trajectory). Benchmarks boot many short-lived
 * Systems; each one's mverify.* counters are folded in here via
 * collectVerifierStats() before the System dies, and the totals land
 * in the bench JSON via emitVerifierStats().
 */
inline sim::StatSet &
verifierStatAccum()
{
    static sim::StatSet accum;
    return accum;
}

/** Fold @p sys's mverify.* and iflow.* counters into the process
 *  accumulator. */
inline void
collectVerifierStats(kern::System &sys)
{
    static const char *keys[] = {"mverify.functions", "mverify.insts",
                                 "mverify.findings", "mverify.wall_ns",
                                 "iflow.functions", "iflow.insts",
                                 "iflow.findings", "iflow.wall_ns"};
    for (const char *k : keys)
        verifierStatAccum().add(k, sys.ctx().stats().get(k));
}

/** Emit accumulated verifier totals as top-level report fields. */
inline void
emitVerifierStats(BenchReport &report)
{
    sim::StatSet &s = verifierStatAccum();
    report.top()
        .count("mverify_functions", s.get("mverify.functions"))
        .count("mverify_insts", s.get("mverify.insts"))
        .count("mverify_findings", s.get("mverify.findings"))
        .num("mverify_wall_ms", double(s.get("mverify.wall_ns")) / 1e6)
        .count("iflow_functions", s.get("iflow.functions"))
        .count("iflow_insts", s.get("iflow.insts"))
        .count("iflow_findings", s.get("iflow.findings"))
        .num("iflow_wall_ms", double(s.get("iflow.wall_ns")) / 1e6);
}

/** Standard machine sizing for benchmarks. */
inline kern::SystemConfig
benchConfig(sim::VgConfig vg)
{
    kern::SystemConfig cfg;
    cfg.vg = vg;
    cfg.memFrames = 16 * 1024;  // 64 MB
    cfg.diskBlocks = 32 * 1024; // 128 MB
    cfg.rsaBits = 384;
    return cfg;
}

/** Run @p fn in a process on a freshly booted machine and return its
 *  double result. */
inline double
measureOn(sim::VgConfig vg,
          const std::function<double(kern::UserApi &)> &fn)
{
    kern::System sys(benchConfig(vg));
    sys.boot();
    double out = 0;
    sys.runProcess("bench", [&](kern::UserApi &api) {
        out = fn(api);
        return 0;
    });
    collectVerifierStats(sys);
    return out;
}

/** Mean of @p runs executions (fresh machine each run). */
inline double
meanOf(int runs, sim::VgConfig vg,
       const std::function<double(kern::UserApi &)> &fn)
{
    double sum = 0;
    for (int i = 0; i < runs; i++)
        sum += measureOn(vg, fn);
    return sum / runs;
}

/** Pretty size for labels ("4 KB", "1 MB"). */
inline std::string
sizeLabel(uint64_t bytes)
{
    char buf[32];
    if (bytes >= (1 << 20))
        std::snprintf(buf, sizeof(buf), "%lu MB",
                      (unsigned long)(bytes >> 20));
    else if (bytes >= 1024)
        std::snprintf(buf, sizeof(buf), "%lu KB",
                      (unsigned long)(bytes >> 10));
    else
        std::snprintf(buf, sizeof(buf), "%lu B", (unsigned long)bytes);
    return buf;
}

/** Section banner. */
inline void
banner(const std::string &title)
{
    std::printf("\n================================================="
                "=====================\n%s\n"
                "================================================="
                "=====================\n",
                title.c_str());
}

} // namespace vg::bench

#endif // VG_BENCH_COMMON_HH
