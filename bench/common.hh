/**
 * @file
 * Shared benchmark-harness helpers.
 *
 * Every bench binary prints the table or data series of one table or
 * figure from the paper's evaluation (S 8), with the paper's reported
 * numbers alongside for shape comparison. Scale: by default the
 * harnesses run reduced iteration counts suited to CI; set
 * VG_BENCH_SCALE=paper for the paper's full parameters.
 */

#ifndef VG_BENCH_COMMON_HH
#define VG_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "kernel/system.hh"

namespace vg::bench
{

/** True when VG_BENCH_SCALE=paper. */
inline bool
paperScale()
{
    const char *env = std::getenv("VG_BENCH_SCALE");
    return env && std::strcmp(env, "paper") == 0;
}

/** Standard machine sizing for benchmarks. */
inline kern::SystemConfig
benchConfig(sim::VgConfig vg)
{
    kern::SystemConfig cfg;
    cfg.vg = vg;
    cfg.memFrames = 16 * 1024;  // 64 MB
    cfg.diskBlocks = 32 * 1024; // 128 MB
    cfg.rsaBits = 384;
    return cfg;
}

/** Run @p fn in a process on a freshly booted machine and return its
 *  double result. */
inline double
measureOn(sim::VgConfig vg,
          const std::function<double(kern::UserApi &)> &fn)
{
    kern::System sys(benchConfig(vg));
    sys.boot();
    double out = 0;
    sys.runProcess("bench", [&](kern::UserApi &api) {
        out = fn(api);
        return 0;
    });
    return out;
}

/** Mean of @p runs executions (fresh machine each run). */
inline double
meanOf(int runs, sim::VgConfig vg,
       const std::function<double(kern::UserApi &)> &fn)
{
    double sum = 0;
    for (int i = 0; i < runs; i++)
        sum += measureOn(vg, fn);
    return sum / runs;
}

/** Pretty size for labels ("4 KB", "1 MB"). */
inline std::string
sizeLabel(uint64_t bytes)
{
    char buf[32];
    if (bytes >= (1 << 20))
        std::snprintf(buf, sizeof(buf), "%lu MB",
                      (unsigned long)(bytes >> 20));
    else if (bytes >= 1024)
        std::snprintf(buf, sizeof(buf), "%lu KB",
                      (unsigned long)(bytes >> 10));
    else
        std::snprintf(buf, sizeof(buf), "%lu B", (unsigned long)bytes);
    return buf;
}

/** Section banner. */
inline void
banner(const std::string &title)
{
    std::printf("\n================================================="
                "=====================\n%s\n"
                "================================================="
                "=====================\n",
                title.c_str());
}

} // namespace vg::bench

#endif // VG_BENCH_COMMON_HH
