/**
 * @file
 * Ablation: per-protection-feature overhead decomposition (our
 * extension; DESIGN.md S 4). Each Virtual Ghost mechanism is enabled
 * alone on top of the baseline to show where the Table 2 overheads
 * come from.
 */

#include "apps/lmbench.hh"
#include "common.hh"

using namespace vg;
using namespace vg::bench;
using namespace vg::apps;

int
main(int argc, char **argv)
{
    struct Config
    {
        const char *name;
        sim::VgConfig cfg;
    };

    auto only = [](auto setter) {
        sim::VgConfig c = sim::VgConfig::native();
        setter(c);
        return c;
    };

    std::vector<Config> configs = {
        {"baseline (native)", sim::VgConfig::native()},
        {"+ sandboxing only",
         only([](sim::VgConfig &c) { c.sandboxMemory = true; })},
        {"+ CFI only", only([](sim::VgConfig &c) { c.cfi = true; })},
        {"+ IC protection only",
         only([](sim::VgConfig &c) {
             c.protectInterruptContext = true;
         })},
        {"+ MMU checks only",
         only([](sim::VgConfig &c) { c.mmuChecks = true; })},
        {"full Virtual Ghost", sim::VgConfig::full()},
    };

    bool smoke = parseBenchOpts(argc, argv).smoke;
    uint64_t n1 = smoke ? 200 : 1000;
    uint64_t n2 = smoke ? 100 : 500;
    uint64_t nf = smoke ? 15 : 50;

    BenchReport report("ablation");

    banner("Ablation: null syscall / open+close / mmap latency "
           "(usec) by protection\nfeature");
    std::printf("%-22s %10s %10s %10s %10s\n", "Configuration",
                "null", "open/cl", "mmap", "fork+exit");

    double base_null = 0, base_oc = 0, base_mmap = 0, base_fork = 0;
    for (const Config &config : configs) {
        double null_lat =
            measureOn(config.cfg, [&](kern::UserApi &api) {
                return latNullSyscall(api, n1);
            });
        double oc = measureOn(config.cfg, [&](kern::UserApi &api) {
            return latOpenClose(api, n2);
        });
        double mm = measureOn(config.cfg, [&](kern::UserApi &api) {
            return latMmap(api, n2);
        });
        double fe = measureOn(config.cfg, [&](kern::UserApi &api) {
            return latForkExit(api, nf);
        });
        if (base_null == 0) {
            base_null = null_lat;
            base_oc = oc;
            base_mmap = mm;
            base_fork = fe;
        }
        // Pool the measured per-op latencies across configurations.
        for (double us : {null_lat, oc, mm, fe})
            report.latency().add(
                uint64_t(us * sim::Clock::cyclesPerUsec));
        std::printf("%-22s %9.3f %9.3f %9.3f %9.3f\n", config.name,
                    null_lat, oc, mm, fe);
        std::printf("%-22s %8.2fx %8.2fx %8.2fx %8.2fx\n", "",
                    null_lat / base_null, oc / base_oc, mm / base_mmap,
                    fe / base_fork);
        report.row()
            .str("config", config.name)
            .num("null_us", null_lat)
            .num("open_close_us", oc)
            .num("mmap_us", mm)
            .num("fork_exit_us", fe)
            .num("null_overhead", null_lat / base_null)
            .num("open_close_overhead", oc / base_oc)
            .num("mmap_overhead", mm / base_mmap)
            .num("fork_exit_overhead", fe / base_fork);
    }

    std::printf("\nReading: sandboxing and CFI dominate "
                "computation-bound kernel paths;\nInterrupt Context "
                "protection dominates the syscall gate (null "
                "syscall);\nMMU checks matter for mapping-heavy "
                "operations (mmap, fork).\n");
    emitVerifierStats(report);
    return report.write() ? 0 : 1;
}
