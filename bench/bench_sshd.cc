/**
 * @file
 * Figure 3: OpenSSH server transfer rate vs file size, baseline vs
 * Virtual Ghost (non-ghosting client, as with the paper's external
 * scp client). Paper: 23% mean bandwidth reduction, 45% worst case on
 * small files, negligible for large files.
 */

#include "apps/ssh_common.hh"
#include "common.hh"

using namespace vg;
using namespace vg::bench;
using namespace vg::apps;

namespace
{

/** Transfer /payload over one sshd session per vCPU (ports 22,
 *  23, ...); returns aggregate KB/s across all sessions. With
 *  vcpus == 1 this is the paper's single-session transfer. */
double
transferBandwidth(sim::VgConfig vg, uint64_t file_size, bool ghosting,
                  LatencyHist *lat = nullptr)
{
    kern::System sys(benchConfig(vg));
    sys.boot();

    crypto::AesKey app_key{};
    for (int i = 0; i < 16; i++)
        app_key[size_t(i)] = uint8_t(i);
    sva::AppBinary bin =
        sys.vm().packageApp("openssh", "ssh-code", app_key);

    kern::Ino ino = 0;
    sys.kernel().fs().create("/payload", ino);
    std::vector<uint8_t> chunk(64 * 1024, 0x7a);
    for (uint64_t off = 0; off < file_size; off += chunk.size())
        sys.kernel().fs().write(
            ino, off, chunk.data(),
            std::min<uint64_t>(chunk.size(), file_size - off));

    unsigned sessions = vg.vcpus;
    uint64_t total_bytes = 0;
    sim::Cycles elapsed = 0;
    sys.runProcess("init", [&](kern::UserApi &api) {
        uint64_t kg = api.fork([&](kern::UserApi &capi) {
            return capi.execve(&bin, [](kern::UserApi &napi) {
                return sshKeygen(napi);
            });
        });
        int status = -1;
        api.waitpid(kg, status);
        if (status != 0)
            return 1;

        std::vector<uint64_t> servers;
        for (unsigned s = 0; s < sessions; s++)
            servers.push_back(api.fork([s](kern::UserApi &capi) {
                SshdConfig cfg;
                cfg.maxConnections = 1;
                cfg.port = uint16_t(sshdPort + s);
                return sshd(capi, cfg);
            }));
        for (int i = 0; i < 4; i++)
            api.yield();

        sim::Cycles t0 = machineNow(sys);
        std::vector<uint64_t> clients;
        for (unsigned s = 0; s < sessions; s++)
            clients.push_back(api.fork([&, s](kern::UserApi &capi) {
                return capi.execve(&bin, [&, s](kern::UserApi &napi) {
                    uint64_t s0 = napi.kernel().ctx().clock().now();
                    SshResult r =
                        sshFetch(napi, "/payload", ghosting, false,
                                 uint16_t(sshdPort + s));
                    if (lat)
                        lat->add(napi.kernel().ctx().clock().now() -
                                 s0);
                    if (r.ok)
                        total_bytes += r.bytes;
                    return r.ok ? 0 : 1;
                });
            }));
        for (uint64_t cli : clients)
            api.waitpid(cli, status);
        elapsed = machineNow(sys) - t0;
        for (uint64_t srv : servers)
            api.waitpid(srv, status);
        return 0;
    });
    collectVerifierStats(sys);
    double secs = sim::Clock::toSec(elapsed);
    return secs > 0 ? double(total_bytes) / 1024.0 / secs : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool paper = paperScale();
    unsigned vcpus = parseVcpus(argc, argv);
    bool legacy_io = legacyIo(argc, argv);
    uint64_t max_size =
        paper ? (64ull << 20) : smokeScale() ? (1ull << 20) : (4ull << 20);

    std::string name = vcpus > 1 ? "sshd_smp" : "sshd";
    if (legacy_io)
        name += "_syncio";
    BenchReport report(name, vcpus);
    report.top().count("max_file_bytes", max_size);
    report.top().flag("async_io", !legacy_io);

    banner("Figure 3. SSH server average transfer rate (KB/s)\n"
           "(non-ghosting client; paper: 23% mean reduction, 45% "
           "worst on small files,\nnegligible for large files)");
    std::printf("vCPUs: %u (%u concurrent session%s)\n", vcpus, vcpus,
                vcpus > 1 ? "s" : "");
    std::printf("%-10s %12s %12s %12s\n", "File Size", "Native",
                "VGhost", "Reduction");

    double reductions = 0;
    int n = 0;
    for (uint64_t size = 1024; size <= max_size; size *= 4) {
        sim::VgConfig nat_vg = sim::VgConfig::native();
        sim::VgConfig full_vg = sim::VgConfig::full();
        nat_vg.vcpus = full_vg.vcpus = vcpus;
        nat_vg.asyncIo = full_vg.asyncIo = !legacy_io;
        double nat = transferBandwidth(nat_vg, size, false);
        double vgb =
            transferBandwidth(full_vg, size, false, &report.latency());
        double red = nat > 0 ? 100.0 * (1.0 - vgb / nat) : 0.0;
        reductions += red;
        n++;
        std::printf("%-10s %12.0f %12.0f %11.1f%%\n",
                    sizeLabel(size).c_str(), nat, vgb, red);
        report.row()
            .count("file_bytes", size)
            .num("native_kbps", nat)
            .num("vg_kbps", vgb)
            .num("reduction_pct", red);
    }
    std::printf("\nMean reduction across sizes: %.1f%% "
                "(paper: 23%% mean, 45%% worst case)\n",
                reductions / n);
    report.top().num("mean_reduction_pct", reductions / n);
    emitVerifierStats(report);
    return report.write() ? 0 : 1;
}
