/**
 * @file
 * Figure 3: OpenSSH server transfer rate vs file size, baseline vs
 * Virtual Ghost (non-ghosting client, as with the paper's external
 * scp client). Paper: 23% mean bandwidth reduction, 45% worst case on
 * small files, negligible for large files.
 */

#include "apps/ssh_common.hh"
#include "common.hh"

using namespace vg;
using namespace vg::bench;
using namespace vg::apps;

namespace
{

/** Transfer /payload once; returns client-observed KB/s. */
double
transferBandwidth(sim::VgConfig vg, uint64_t file_size, bool ghosting)
{
    kern::System sys(benchConfig(vg));
    sys.boot();

    crypto::AesKey app_key{};
    for (int i = 0; i < 16; i++)
        app_key[size_t(i)] = uint8_t(i);
    sva::AppBinary bin =
        sys.vm().packageApp("openssh", "ssh-code", app_key);

    kern::Ino ino = 0;
    sys.kernel().fs().create("/payload", ino);
    std::vector<uint8_t> chunk(64 * 1024, 0x7a);
    for (uint64_t off = 0; off < file_size; off += chunk.size())
        sys.kernel().fs().write(
            ino, off, chunk.data(),
            std::min<uint64_t>(chunk.size(), file_size - off));

    double kbps = 0;
    sys.runProcess("init", [&](kern::UserApi &api) {
        uint64_t kg = api.fork([&](kern::UserApi &capi) {
            return capi.execve(&bin, [](kern::UserApi &napi) {
                return sshKeygen(napi);
            });
        });
        int status = -1;
        api.waitpid(kg, status);
        if (status != 0)
            return 1;

        uint64_t srv = api.fork([](kern::UserApi &capi) {
            SshdConfig cfg;
            cfg.maxConnections = 1;
            return sshd(capi, cfg);
        });
        for (int i = 0; i < 4; i++)
            api.yield();

        uint64_t cli = api.fork([&](kern::UserApi &capi) {
            return capi.execve(&bin, [&](kern::UserApi &napi) {
                sim::Stopwatch sw(napi.kernel().ctx().clock());
                SshResult r = sshFetch(napi, "/payload", ghosting);
                double secs = sim::Clock::toSec(sw.elapsed());
                if (r.ok && secs > 0)
                    kbps = double(r.bytes) / 1024.0 / secs;
                return r.ok ? 0 : 1;
            });
        });
        api.waitpid(cli, status);
        api.waitpid(srv, status);
        return 0;
    });
    return kbps;
}

} // namespace

int
main()
{
    bool paper = paperScale();
    uint64_t max_size =
        paper ? (64ull << 20) : smokeScale() ? (1ull << 20) : (4ull << 20);

    BenchReport report("sshd");
    report.top().count("max_file_bytes", max_size);

    banner("Figure 3. SSH server average transfer rate (KB/s)\n"
           "(non-ghosting client; paper: 23% mean reduction, 45% "
           "worst on small files,\nnegligible for large files)");
    std::printf("%-10s %12s %12s %12s\n", "File Size", "Native",
                "VGhost", "Reduction");

    double reductions = 0;
    int n = 0;
    for (uint64_t size = 1024; size <= max_size; size *= 4) {
        double nat = transferBandwidth(sim::VgConfig::native(), size,
                                       false);
        double vgb = transferBandwidth(sim::VgConfig::full(), size,
                                       false);
        double red = nat > 0 ? 100.0 * (1.0 - vgb / nat) : 0.0;
        reductions += red;
        n++;
        std::printf("%-10s %12.0f %12.0f %11.1f%%\n",
                    sizeLabel(size).c_str(), nat, vgb, red);
        report.row()
            .count("file_bytes", size)
            .num("native_kbps", nat)
            .num("vg_kbps", vgb)
            .num("reduction_pct", red);
    }
    std::printf("\nMean reduction across sizes: %.1f%% "
                "(paper: 23%% mean, 45%% worst case)\n",
                reductions / n);
    report.top().num("mean_reduction_pct", reductions / n);
    return report.write() ? 0 : 1;
}
