/**
 * @file
 * Figure 3: OpenSSH server transfer rate vs file size, baseline vs
 * Virtual Ghost (non-ghosting client, as with the paper's external
 * scp client). Paper: 23% mean bandwidth reduction, 45% worst case on
 * small files, negligible for large files.
 */

#include "apps/ssh_common.hh"
#include "scenario.hh"

using namespace vg;
using namespace vg::bench;
using namespace vg::apps;

namespace
{

/** Transfer /payload over one sshd session per vCPU (ports 22,
 *  23, ...); returns aggregate KB/s across all sessions. With
 *  vcpus == 1 this is the paper's single-session transfer. */
double
transferBandwidth(sim::VgConfig vg, uint64_t file_size, bool ghosting,
                  LatencyHist *lat = nullptr)
{
    kern::System sys(benchConfig(vg));
    sys.boot();

    crypto::AesKey app_key{};
    for (int i = 0; i < 16; i++)
        app_key[size_t(i)] = uint8_t(i);
    sva::AppBinary bin =
        sys.vm().packageApp("openssh", "ssh-code", app_key);

    plantFile(sys, "/payload", file_size, 0x7a);

    uint64_t total_bytes = 0;
    ServeScenario scenario;
    scenario.instances = vg.vcpus; // one sshd session per vCPU
    scenario.setup = [&](kern::UserApi &capi) {
        return capi.execve(&bin, [](kern::UserApi &napi) {
            return sshKeygen(napi);
        });
    };
    scenario.server = [](kern::UserApi &capi, unsigned s) {
        SshdConfig cfg;
        cfg.maxConnections = 1;
        cfg.port = uint16_t(sshdPort + s);
        return sshd(capi, cfg);
    };
    scenario.client = [&](kern::UserApi &capi, unsigned s, unsigned) {
        return capi.execve(&bin, [&, s](kern::UserApi &napi) {
            uint64_t s0 = napi.kernel().ctx().clock().now();
            SshResult r = sshFetch(napi, "/payload", ghosting, false,
                                   uint16_t(sshdPort + s));
            if (lat)
                lat->add(napi.kernel().ctx().clock().now() - s0);
            if (r.ok)
                total_bytes += r.bytes;
            return r.ok ? 0 : 1;
        });
    };

    ScenarioResult r = runScenario(sys, scenario);
    double secs = r.seconds();
    return secs > 0 ? double(total_bytes) / 1024.0 / secs : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool paper = paperScale();
    BenchOpts opts = parseBenchOpts(argc, argv);
    unsigned vcpus = opts.vcpus;
    uint64_t max_size =
        paper ? (64ull << 20) : opts.smoke ? (1ull << 20) : (4ull << 20);

    std::string name = vcpus > 1 ? "sshd_smp" : "sshd";
    if (opts.legacyIo)
        name += "_syncio";
    BenchReport report(name, vcpus);
    report.top().count("max_file_bytes", max_size);
    report.top().flag("async_io", !opts.legacyIo);

    banner("Figure 3. SSH server average transfer rate (KB/s)\n"
           "(non-ghosting client; paper: 23% mean reduction, 45% "
           "worst on small files,\nnegligible for large files)");
    std::printf("vCPUs: %u (%u concurrent session%s)\n", vcpus, vcpus,
                vcpus > 1 ? "s" : "");
    std::printf("%-10s %12s %12s %12s\n", "File Size", "Native",
                "VGhost", "Reduction");

    double reductions = 0;
    int n = 0;
    for (uint64_t size = 1024; size <= max_size; size *= 4) {
        sim::VgConfig nat_vg = opts.apply(sim::VgConfig::native());
        sim::VgConfig full_vg = opts.apply(sim::VgConfig::full());
        double nat = transferBandwidth(nat_vg, size, false);
        double vgb =
            transferBandwidth(full_vg, size, false, &report.latency());
        double red = nat > 0 ? 100.0 * (1.0 - vgb / nat) : 0.0;
        reductions += red;
        n++;
        std::printf("%-10s %12.0f %12.0f %11.1f%%\n",
                    sizeLabel(size).c_str(), nat, vgb, red);
        report.row()
            .count("file_bytes", size)
            .num("native_kbps", nat)
            .num("vg_kbps", vgb)
            .num("reduction_pct", red);
    }
    std::printf("\nMean reduction across sizes: %.1f%% "
                "(paper: 23%% mean, 45%% worst case)\n",
                reductions / n);
    report.top().num("mean_reduction_pct", reductions / n);
    emitVerifierStats(report);
    return report.write() ? 0 : 1;
}
