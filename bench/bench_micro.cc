/**
 * @file
 * Microbenchmarks of the substrate itself (google-benchmark, real
 * wall-clock): crypto primitives, translator passes, simulated-CPU
 * execution. These measure the *implementation*, not the simulated
 * system — useful to keep the simulator fast and to size experiments.
 */

#include <benchmark/benchmark.h>

#include <cstring>
#include <deque>
#include <optional>

#include "compiler/exec.hh"
#include "compiler/translator.hh"
#include "crypto/aes.hh"
#include "crypto/drbg.hh"
#include "crypto/hmac.hh"
#include "crypto/bignum.hh"
#include "crypto/rsa.hh"
#include "crypto/sealed.hh"
#include "crypto/sha256.hh"
#include "hw/layout.hh"
#include "hw/tpm.hh"
#include "kernel/kmem.hh"
#include "vir/text.hh"

using namespace vg;
using namespace vg::crypto;

static void
BM_Sha256(benchmark::State &state)
{
    std::vector<uint8_t> data(size_t(state.range(0)), 0x5a);
    for (auto _ : state) {
        benchmark::DoNotOptimize(Sha256::hash(data.data(),
                                              data.size()));
    }
    state.SetBytesProcessed(int64_t(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096)->Arg(1 << 16);

static void
BM_AesCtr(benchmark::State &state)
{
    AesKey key{};
    Aes128 aes(key);
    AesBlock nonce{};
    std::vector<uint8_t> data(size_t(state.range(0)), 0x11);
    for (auto _ : state) {
        aes.ctrCrypt(data.data(), data.size(), nonce);
        benchmark::DoNotOptimize(data.data());
    }
    state.SetBytesProcessed(int64_t(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_AesCtr)->Arg(4096)->Arg(1 << 16);

static void
BM_HmacSha256(benchmark::State &state)
{
    std::vector<uint8_t> key(32, 0x22);
    std::vector<uint8_t> data(4096, 0x33);
    for (auto _ : state)
        benchmark::DoNotOptimize(hmacSha256(key, data));
    state.SetBytesProcessed(int64_t(state.iterations()) * 4096);
}
BENCHMARK(BM_HmacSha256);

static void
BM_RsaSign(benchmark::State &state)
{
    CtrDrbg rng({'b', 'm'});
    RsaPrivateKey key = rsaGenerate(rng, size_t(state.range(0)));
    std::vector<uint8_t> msg(128, 0x44);
    for (auto _ : state)
        benchmark::DoNotOptimize(rsaSign(key, msg));
}
BENCHMARK(BM_RsaSign)->Arg(384)->Arg(512);

static void
BM_RsaVerify(benchmark::State &state)
{
    CtrDrbg rng({'b', 'v'});
    RsaPrivateKey key = rsaGenerate(rng, 384);
    std::vector<uint8_t> msg(128, 0x44);
    auto sig = rsaSign(key, msg);
    for (auto _ : state)
        benchmark::DoNotOptimize(rsaVerify(key.publicKey(), msg, sig));
}
BENCHMARK(BM_RsaVerify);

namespace
{

const char *kModuleSrc = R"(
func @work(1) {
entry:
  %1 = const 0
  %2 = const 0
  br head
head:
  %3 = icmp ult %2, %0
  condbr %3, body, done
body:
  %4 = alloca 64
  store.i64 %4, %2
  %5 = load.i64 %4
  %1 = add %1, %5
  %6 = const 1
  %2 = add %2, %6
  br head
done:
  ret %1
}
)";

class NullPort : public cc::MemPort
{
  public:
    bool
    read(uint64_t, unsigned, uint64_t &out) override
    {
        out = 0;
        return true;
    }
    bool write(uint64_t, unsigned, uint64_t) override { return true; }
    bool copy(uint64_t, uint64_t, uint64_t) override { return true; }
};

} // namespace

static void
BM_TranslateModule(benchmark::State &state)
{
    sim::SimContext ctx;
    std::vector<uint8_t> key(32, 1);
    for (auto _ : state) {
        // Fresh translator each time so the cache doesn't shortcut.
        cc::Translator tr(key, ctx);
        auto r = tr.translateText(kModuleSrc, 0xffffff9000000000ull);
        benchmark::DoNotOptimize(r.ok);
    }
}
BENCHMARK(BM_TranslateModule);

static void
BM_ExecutorInstrumented(benchmark::State &state)
{
    sim::SimContext ctx(sim::VgConfig::full());
    std::vector<uint8_t> key(32, 1);
    cc::Translator tr(key, ctx);
    auto r = tr.translateText(kModuleSrc, 0xffffff9000000000ull);
    NullPort port;
    cc::ExternTable externs;
    cc::Executor exec(*r.image, port, externs, ctx,
                      0xffffffa000000000ull, 1 << 20);
    for (auto _ : state) {
        auto res = exec.call("work", {uint64_t(state.range(0))});
        benchmark::DoNotOptimize(res.value);
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_ExecutorInstrumented)->Arg(1000);

static void
BM_SandboxPass(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        auto parsed = vir::parse(kModuleSrc);
        state.ResumeTiming();
        benchmark::DoNotOptimize(cc::sandboxPass(parsed.module));
    }
}
BENCHMARK(BM_SandboxPass);

// --------------------------------------------------------------------
// Kmem hot path: host cost of instrumented kernel memory access,
// fast path (Arg 1, the default configuration) vs the reference
// per-access path (Arg 0, VgConfig::kmemFastPath=false). Simulated
// cycles and stats are identical between the two (see the KmemFast
// differential tests); only host wall time differs.
// --------------------------------------------------------------------

namespace
{

/** Hand-built address space with user pages, plus a Kmem on top. */
struct KmemRig
{
    sim::SimContext ctx;
    hw::PhysMem mem;
    hw::Mmu mmu;
    hw::Iommu iommu;
    hw::Tpm tpm;
    sva::SvaVm vm;
    kern::Kmem kmem;

    static constexpr hw::Vaddr userBase = 0x400000;
    static constexpr int userPages = 16;

    static sim::VgConfig
    configFor(bool fast)
    {
        sim::VgConfig cfg = sim::VgConfig::full();
        cfg.kmemFastPath = fast;
        return cfg;
    }

    explicit KmemRig(bool fast)
        : ctx(configFor(fast)), mem(64), mmu(mem, ctx),
          iommu(mem, ctx), tpm({'b', 'k'}),
          vm(ctx, mem, mmu, iommu, tpm), kmem(ctx, mem, mmu, vm)
    {
        // Page tables in frames 0..3; user pages in frames 8..23.
        using namespace hw;
        for (int i = 0; i < userPages; i++) {
            Vaddr va = userBase + uint64_t(i) * pageSize;
            mem.write64(0 * pageSize + ptIndex(va, PtLevel::L4) * 8,
                        pte::make(1, true, true, false));
            mem.write64(1 * pageSize + ptIndex(va, PtLevel::L3) * 8,
                        pte::make(2, true, true, false));
            mem.write64(2 * pageSize + ptIndex(va, PtLevel::L2) * 8,
                        pte::make(3, true, true, false));
            mem.write64(3 * pageSize + ptIndex(va, PtLevel::L1) * 8,
                        pte::make(Frame(8 + i), true, true, false));
        }
        mmu.setRoot(0);
    }
};

} // namespace

/** Module-port copy between two mapped user pages (one page). */
static void
BM_KmemCopyUserPage(benchmark::State &state)
{
    KmemRig rig(state.range(0) != 0);
    for (auto _ : state) {
        bool ok = rig.kmem.copy(KmemRig::userBase + hw::pageSize,
                                KmemRig::userBase, hw::pageSize);
        benchmark::DoNotOptimize(ok);
    }
    state.SetBytesProcessed(int64_t(state.iterations()) *
                            int64_t(hw::pageSize));
}
BENCHMARK(BM_KmemCopyUserPage)->Arg(0)->Arg(1);

/** Module-port copy through the kernel direct map (8 pages). */
static void
BM_KmemCopyKernelHalf(benchmark::State &state)
{
    KmemRig rig(state.range(0) != 0);
    const uint64_t len = 8 * hw::pageSize;
    for (auto _ : state) {
        bool ok = rig.kmem.copy(hw::kernelBase + 24 * hw::pageSize,
                                hw::kernelBase + 8 * hw::pageSize,
                                len);
        benchmark::DoNotOptimize(ok);
    }
    state.SetBytesProcessed(int64_t(state.iterations()) *
                            int64_t(len));
}
BENCHMARK(BM_KmemCopyKernelHalf)->Arg(0)->Arg(1);

/** Repeated same-page native kernel loads (the kread fast path). */
static void
BM_KmemReadSamePage(benchmark::State &state)
{
    KmemRig rig(state.range(0) != 0);
    for (auto _ : state) {
        uint64_t sum = 0;
        for (uint64_t off = 0; off < hw::pageSize; off += 8) {
            uint64_t v = 0;
            rig.kmem.kread(KmemRig::userBase + off, 8, v);
            sum += v;
        }
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(hw::pageSize / 8));
}
BENCHMARK(BM_KmemReadSamePage)->Arg(0)->Arg(1);

/** copyout+copyin of one page — the syscall file-I/O data path. */
static void
BM_KmemCopyOutIn(benchmark::State &state)
{
    KmemRig rig(state.range(0) != 0);
    std::vector<uint8_t> buf(hw::pageSize, 0x5c);
    for (auto _ : state) {
        bool ok = rig.kmem.copyOut(KmemRig::userBase, buf.data(),
                                   buf.size());
        ok = ok && rig.kmem.copyIn(KmemRig::userBase, buf.data(),
                                   buf.size());
        benchmark::DoNotOptimize(ok);
    }
    state.SetBytesProcessed(int64_t(state.iterations()) * 2 *
                            int64_t(hw::pageSize));
}
BENCHMARK(BM_KmemCopyOutIn)->Arg(0)->Arg(1);

// --------------------------------------------------------------------
// Crypto hot path: host cost of the fast implementations (Arg 1:
// T-table AES, one-shot SHA-256 finalize, precomputed HMAC states,
// Montgomery modExp, cached seal keys) vs the reference path (Arg 0).
// Outputs are bit-identical between the two (see the CryptoFastSweep
// differential tests); only host wall time differs.
// --------------------------------------------------------------------

/** AES-128-CTR over 64 KiB, bytes/sec. */
static void
BM_CryptoAesCtr(benchmark::State &state)
{
    AesKey key{};
    for (size_t i = 0; i < key.size(); i++)
        key[i] = uint8_t(0xa0 + i);
    Aes128 aes(key, state.range(0) != 0);
    AesBlock nonce{};
    std::vector<uint8_t> data(1 << 16, 0x11);
    for (auto _ : state) {
        aes.ctrCrypt(data.data(), data.size(), nonce);
        benchmark::DoNotOptimize(data.data());
    }
    state.SetBytesProcessed(int64_t(state.iterations()) *
                            int64_t(data.size()));
}
BENCHMARK(BM_CryptoAesCtr)->Arg(0)->Arg(1);

/** SHA-256 one-shot over 64 KiB, bytes/sec. */
static void
BM_CryptoSha256(benchmark::State &state)
{
    bool fast = state.range(0) != 0;
    std::vector<uint8_t> data(1 << 16, 0x5a);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            Sha256::hash(data.data(), data.size(), fast));
    }
    state.SetBytesProcessed(int64_t(state.iterations()) *
                            int64_t(data.size()));
}
BENCHMARK(BM_CryptoSha256)->Arg(0)->Arg(1);

/**
 * Short-message HMAC with a long-lived key: the fast path reuses the
 * precomputed ipad/opad states instead of rehashing the key blocks.
 */
static void
BM_CryptoHmacPerKey(benchmark::State &state)
{
    std::vector<uint8_t> key(32, 0x22);
    std::vector<uint8_t> msg(64, 0x33);
    HmacSha256 mac(key, state.range(0) != 0);
    for (auto _ : state)
        benchmark::DoNotOptimize(mac.mac(msg));
    state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_CryptoHmacPerKey)->Arg(0)->Arg(1);

/**
 * modExp with a full-width exponent over a fixed odd modulus —
 * Args are {fast, modulus bits}. 512-bit matches the simulated RSA
 * sizes; 2048-bit is the acceptance target (>= 5x).
 */
static void
BM_CryptoModExp(benchmark::State &state)
{
    bool fast = state.range(0) != 0;
    size_t bits = size_t(state.range(1));
    CtrDrbg rng({'m', 'e'});
    BigNum mod = BigNum::fromBytes(rng.generate(bits / 8));
    mod.setBit(bits - 1);
    mod.setBit(0);
    BigNum base = BigNum::fromBytes(rng.generate(bits / 8)) % mod;
    BigNum exp = BigNum::fromBytes(rng.generate(bits / 8));
    for (auto _ : state)
        benchmark::DoNotOptimize(base.modExp(exp, mod, fast));
}
BENCHMARK(BM_CryptoModExp)
    ->Args({0, 512})
    ->Args({1, 512})
    ->Args({0, 2048})
    ->Args({1, 2048});

/** Seal one page under a fixed master key (derived-key cache hit). */
static void
BM_CryptoSeal(benchmark::State &state)
{
    bool fast = state.range(0) != 0;
    AesKey master{};
    master[0] = 0x7e;
    CtrDrbg rng({'s', 'l'});
    std::vector<uint8_t> plain(hw::pageSize, 0x44);
    for (auto _ : state)
        benchmark::DoNotOptimize(seal(master, rng, plain, {}, fast));
    state.SetBytesProcessed(int64_t(state.iterations()) *
                            int64_t(plain.size()));
}
BENCHMARK(BM_CryptoSeal)->Arg(0)->Arg(1);

/** Unseal one page under a fixed master key. */
static void
BM_CryptoUnseal(benchmark::State &state)
{
    bool fast = state.range(0) != 0;
    AesKey master{};
    master[0] = 0x7f;
    CtrDrbg rng({'u', 'l'});
    std::vector<uint8_t> plain(hw::pageSize, 0x45);
    SealedBlob blob = seal(master, rng, plain, {}, fast);
    for (auto _ : state) {
        bool ok = false;
        benchmark::DoNotOptimize(unseal(master, blob, ok, {}, fast));
        benchmark::DoNotOptimize(ok);
    }
    state.SetBytesProcessed(int64_t(state.iterations()) *
                            int64_t(plain.size()));
}
BENCHMARK(BM_CryptoUnseal)->Arg(0)->Arg(1);

namespace
{

/** Booted SvaVm with one ghost page, for the swap round trip. */
struct GhostSwapRig
{
    sim::SimContext ctx;
    hw::PhysMem mem;
    hw::Mmu mmu;
    hw::Iommu iommu;
    hw::Tpm tpm;
    sva::SvaVm vm;
    std::deque<hw::Frame> freeFrames;

    static sim::VgConfig
    configFor(bool fast)
    {
        sim::VgConfig cfg = sim::VgConfig::full();
        cfg.cryptoFastPath = fast;
        return cfg;
    }

    explicit GhostSwapRig(bool fast)
        : ctx(configFor(fast)), mem(256), mmu(mem, ctx),
          iommu(mem, ctx), tpm({'b', 'g'}),
          vm(ctx, mem, mmu, iommu, tpm)
    {
        vm.install(192);
        vm.boot();
        for (hw::Frame f = 64; f < 128; f++)
            freeFrames.push_back(f);
        vm.setFrameProvider([this]() -> std::optional<hw::Frame> {
            if (freeFrames.empty())
                return std::nullopt;
            hw::Frame f = freeFrames.front();
            freeFrames.pop_front();
            return f;
        });
        vm.setFrameReceiver(
            [this](hw::Frame f) { freeFrames.push_back(f); });
        sva::SvaError err;
        vm.declarePtPage(0, 4, &err);
        vm.allocGhostMemory(1, 0, hw::ghostBase, 1, &err);
    }
};

} // namespace

/** Ghost-page swap-out + swap-in round trip (seal/unseal + MMU). */
static void
BM_CryptoGhostSwap(benchmark::State &state)
{
    GhostSwapRig rig(state.range(0) != 0);
    sva::SvaError err;
    for (auto _ : state) {
        auto blob =
            rig.vm.swapOutGhostPage(1, 0, hw::ghostBase, &err);
        bool ok = rig.vm.swapInGhostPage(1, 0, hw::ghostBase, *blob,
                                         &err);
        benchmark::DoNotOptimize(ok);
    }
    state.SetBytesProcessed(int64_t(state.iterations()) *
                            int64_t(hw::pageSize));
}
BENCHMARK(BM_CryptoGhostSwap)->Arg(0)->Arg(1);

/**
 * Like BENCHMARK_MAIN(), but defaults --benchmark_out to
 * BENCH_micro.json (JSON format) so this binary emits machine-readable
 * results like every other bench harness. An explicit --benchmark_out
 * on the command line wins.
 */
int
main(int argc, char **argv)
{
    static char out_arg[] = "--benchmark_out=BENCH_micro.json";
    static char fmt_arg[] = "--benchmark_out_format=json";

    std::vector<char *> args(argv, argv + argc);
    bool has_out = false;
    for (int i = 1; i < argc; i++)
        if (!std::strncmp(argv[i], "--benchmark_out", 15))
            has_out = true;
    if (!has_out) {
        args.push_back(out_arg);
        args.push_back(fmt_arg);
    }
    int n = int(args.size());
    benchmark::Initialize(&n, args.data());
    if (benchmark::ReportUnrecognizedArguments(n, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
