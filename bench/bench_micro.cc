/**
 * @file
 * Microbenchmarks of the substrate itself (google-benchmark, real
 * wall-clock): crypto primitives, translator passes, simulated-CPU
 * execution. These measure the *implementation*, not the simulated
 * system — useful to keep the simulator fast and to size experiments.
 */

#include <benchmark/benchmark.h>

#include "compiler/exec.hh"
#include "compiler/translator.hh"
#include "crypto/aes.hh"
#include "crypto/drbg.hh"
#include "crypto/hmac.hh"
#include "crypto/rsa.hh"
#include "crypto/sha256.hh"
#include "hw/layout.hh"
#include "vir/text.hh"

using namespace vg;
using namespace vg::crypto;

static void
BM_Sha256(benchmark::State &state)
{
    std::vector<uint8_t> data(size_t(state.range(0)), 0x5a);
    for (auto _ : state) {
        benchmark::DoNotOptimize(Sha256::hash(data.data(),
                                              data.size()));
    }
    state.SetBytesProcessed(int64_t(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096)->Arg(1 << 16);

static void
BM_AesCtr(benchmark::State &state)
{
    AesKey key{};
    Aes128 aes(key);
    AesBlock nonce{};
    std::vector<uint8_t> data(size_t(state.range(0)), 0x11);
    for (auto _ : state) {
        aes.ctrCrypt(data.data(), data.size(), nonce);
        benchmark::DoNotOptimize(data.data());
    }
    state.SetBytesProcessed(int64_t(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_AesCtr)->Arg(4096)->Arg(1 << 16);

static void
BM_HmacSha256(benchmark::State &state)
{
    std::vector<uint8_t> key(32, 0x22);
    std::vector<uint8_t> data(4096, 0x33);
    for (auto _ : state)
        benchmark::DoNotOptimize(hmacSha256(key, data));
    state.SetBytesProcessed(int64_t(state.iterations()) * 4096);
}
BENCHMARK(BM_HmacSha256);

static void
BM_RsaSign(benchmark::State &state)
{
    CtrDrbg rng({'b', 'm'});
    RsaPrivateKey key = rsaGenerate(rng, size_t(state.range(0)));
    std::vector<uint8_t> msg(128, 0x44);
    for (auto _ : state)
        benchmark::DoNotOptimize(rsaSign(key, msg));
}
BENCHMARK(BM_RsaSign)->Arg(384)->Arg(512);

static void
BM_RsaVerify(benchmark::State &state)
{
    CtrDrbg rng({'b', 'v'});
    RsaPrivateKey key = rsaGenerate(rng, 384);
    std::vector<uint8_t> msg(128, 0x44);
    auto sig = rsaSign(key, msg);
    for (auto _ : state)
        benchmark::DoNotOptimize(rsaVerify(key.publicKey(), msg, sig));
}
BENCHMARK(BM_RsaVerify);

namespace
{

const char *kModuleSrc = R"(
func @work(1) {
entry:
  %1 = const 0
  %2 = const 0
  br head
head:
  %3 = icmp ult %2, %0
  condbr %3, body, done
body:
  %4 = alloca 64
  store.i64 %4, %2
  %5 = load.i64 %4
  %1 = add %1, %5
  %6 = const 1
  %2 = add %2, %6
  br head
done:
  ret %1
}
)";

class NullPort : public cc::MemPort
{
  public:
    bool
    read(uint64_t, unsigned, uint64_t &out) override
    {
        out = 0;
        return true;
    }
    bool write(uint64_t, unsigned, uint64_t) override { return true; }
    bool copy(uint64_t, uint64_t, uint64_t) override { return true; }
};

} // namespace

static void
BM_TranslateModule(benchmark::State &state)
{
    sim::SimContext ctx;
    std::vector<uint8_t> key(32, 1);
    for (auto _ : state) {
        // Fresh translator each time so the cache doesn't shortcut.
        cc::Translator tr(key, ctx);
        auto r = tr.translateText(kModuleSrc, 0xffffff9000000000ull);
        benchmark::DoNotOptimize(r.ok);
    }
}
BENCHMARK(BM_TranslateModule);

static void
BM_ExecutorInstrumented(benchmark::State &state)
{
    sim::SimContext ctx(sim::VgConfig::full());
    std::vector<uint8_t> key(32, 1);
    cc::Translator tr(key, ctx);
    auto r = tr.translateText(kModuleSrc, 0xffffff9000000000ull);
    NullPort port;
    cc::ExternTable externs;
    cc::Executor exec(*r.image, port, externs, ctx,
                      0xffffffa000000000ull, 1 << 20);
    for (auto _ : state) {
        auto res = exec.call("work", {uint64_t(state.range(0))});
        benchmark::DoNotOptimize(res.value);
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_ExecutorInstrumented)->Arg(1000);

static void
BM_SandboxPass(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        auto parsed = vir::parse(kModuleSrc);
        state.ResumeTiming();
        benchmark::DoNotOptimize(cc::sandboxPass(parsed.module));
    }
}
BENCHMARK(BM_SandboxPass);

BENCHMARK_MAIN();
