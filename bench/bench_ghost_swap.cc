/**
 * @file
 * Ghost swap under memory pressure: the batched encrypt+MAC eviction
 * pipeline (VgConfig::swapFastPath) vs the per-page reference path,
 * with a plain demand-zero fault workload as the no-ghost baseline.
 *
 * Reported per mode: ghost faults per simulated second, swap-out
 * bandwidth (sealed bytes written back per simulated second), and
 * p50/p99/p999 fault latency. Top-level speedup_faults and
 * speedup_bandwidth compare the two pipelines; ghost_overhead is the
 * per-fault cost of a sealed swap-in relative to an ordinary
 * demand-zero page fault.
 *
 * --swap-ref measures only the reference pipeline and writes
 * BENCH_ghost_swap_ref.json (the CI A/B twin of the default report).
 */

#include "common.hh"

using namespace vg;
using namespace vg::bench;

namespace
{

struct SwapBenchResult
{
    double seconds = 0;       ///< simulated time in the measured window
    uint64_t faults = 0;      ///< ghost pages faulted back in
    uint64_t sealedBytes = 0; ///< sealed bytes written to the swap area
    LatencyHist faultLat;     ///< per-fault latency samples

    double faultsPerSec() const
    {
        return seconds > 0 ? double(faults) / seconds : 0;
    }
    double bandwidthMBs() const
    {
        return seconds > 0 ? double(sealedBytes) / (1 << 20) / seconds
                           : 0;
    }
};

double
simSeconds(uint64_t cycles)
{
    return double(cycles) / (sim::Clock::cyclesPerUsec * 1e6);
}

/** The swap churn workload: every round evicts the whole working set
 *  through the (batched or per-page) pipeline and faults it back in
 *  page by page. */
SwapBenchResult
runSwapChurn(bool swap_fast, unsigned vcpus, uint64_t pages,
             unsigned rounds)
{
    sim::VgConfig vg = sim::VgConfig::full();
    vg.swapFastPath = swap_fast;
    vg.vcpus = vcpus;
    kern::System sys(benchConfig(vg));
    sys.boot();

    SwapBenchResult r;
    sys.runProcess("swap-churn", [&](kern::UserApi &api) {
        uint64_t pid = api.pid();
        hw::Vaddr base = api.allocGhost(pages);
        if (!base)
            return 1;
        std::vector<uint8_t> page(hw::pageSize);
        for (uint64_t i = 0; i < pages; i++) {
            for (size_t b = 0; b < page.size(); b++)
                page[b] = uint8_t(i + b);
            if (!api.ghostWrite(base + i * hw::pageSize, page.data(),
                                page.size()))
                return 1;
        }

        uint64_t t0 = machineNow(sys);
        uint64_t stored0 = sys.ctx().stats().get("swap.pages_stored");
        for (unsigned round = 0; round < rounds; round++) {
            if (sys.kernel().swapOutGhost(pid, pages) != pages)
                return 1;
            uint64_t v = 0;
            for (uint64_t i = 0; i < pages; i++) {
                uint64_t f0 = machineNow(sys);
                if (!api.ghostRead(base + i * hw::pageSize, &v,
                                   sizeof(v)))
                    return 1;
                r.faultLat.add(machineNow(sys) - f0);
            }
        }
        r.seconds = simSeconds(machineNow(sys) - t0);
        r.faults = uint64_t(rounds) * pages;
        r.sealedBytes =
            (sys.ctx().stats().get("swap.pages_stored") - stored0) *
            hw::pageSize;
        return 0;
    });
    collectVerifierStats(sys);
    return r;
}

/** The no-ghost baseline: the same number of first-touch faults on
 *  ordinary anonymous memory (demand-zero materialization, no seal,
 *  no disk). */
SwapBenchResult
runBaselineFaults(unsigned vcpus, uint64_t pages, unsigned rounds)
{
    sim::VgConfig vg = sim::VgConfig::full();
    vg.vcpus = vcpus;
    kern::System sys(benchConfig(vg));
    sys.boot();

    SwapBenchResult r;
    sys.runProcess("fault-base", [&](kern::UserApi &api) {
        uint64_t t0 = machineNow(sys);
        for (unsigned round = 0; round < rounds; round++) {
            hw::Vaddr base = api.mmap(pages * hw::pageSize);
            if (!base)
                return 1;
            for (uint64_t i = 0; i < pages; i++) {
                uint64_t f0 = machineNow(sys);
                if (!api.poke(base + i * hw::pageSize, 8, i + 1))
                    return 1;
                r.faultLat.add(machineNow(sys) - f0);
            }
            api.munmap(base, pages * hw::pageSize);
        }
        r.seconds = simSeconds(machineNow(sys) - t0);
        r.faults = uint64_t(rounds) * pages;
        return 0;
    });
    collectVerifierStats(sys);
    return r;
}

void
printRow(const char *name, const SwapBenchResult &r)
{
    double cpu = sim::Clock::cyclesPerUsec;
    std::printf("%-10s %12.0f %12.1f %9.2f %9.2f %9.2f\n", name,
                r.faultsPerSec(), r.bandwidthMBs(),
                double(r.faultLat.percentile(50)) / cpu,
                double(r.faultLat.percentile(99)) / cpu,
                double(r.faultLat.percentile(99.9)) / cpu);
}

void
reportRow(BenchReport &report, const char *mode,
          const SwapBenchResult &r)
{
    BenchReport::Obj &row = report.row();
    row.str("mode", mode)
        .num("sim_seconds", r.seconds)
        .count("faults", r.faults)
        .num("faults_per_sec", r.faultsPerSec())
        .num("swap_bandwidth_mb_s", r.bandwidthMBs());
    emitLatency(row, r.faultLat, "fault_");
}

} // namespace

int
main(int argc, char **argv)
{
    bool paper = paperScale();
    BenchOpts opts = parseBenchOpts(argc, argv);
    bool smoke = opts.smoke;
    unsigned vcpus = opts.vcpus;
    bool ref_only = opts.has("--swap-ref");

    uint64_t pages = paper ? 512 : smoke ? 48 : 192;
    unsigned rounds = paper ? 8 : smoke ? 2 : 4;

    BenchReport report(ref_only ? "ghost_swap_ref" : "ghost_swap",
                       vcpus);
    report.top()
        .count("pages", pages)
        .count("rounds", rounds)
        .flag("ref_only", ref_only);

    banner("Ghost swap under memory pressure: batched eviction "
           "pipeline vs\nper-page reference, with a demand-zero "
           "no-ghost baseline");
    std::printf("Working set: %lu pages, %u eviction rounds, %u "
                "vcpu(s)\n\n",
                (unsigned long)pages, rounds, vcpus);
    std::printf("%-10s %12s %12s %9s %9s %9s\n", "", "faults/s",
                "MB/s swap", "p50 us", "p99 us", "p999 us");

    SwapBenchResult ref = runSwapChurn(false, vcpus, pages, rounds);
    printRow("per-page", ref);
    reportRow(report, "per-page", ref);

    if (!ref_only) {
        SwapBenchResult fast = runSwapChurn(true, vcpus, pages, rounds);
        SwapBenchResult base = runBaselineFaults(vcpus, pages, rounds);
        printRow("batched", fast);
        printRow("no-ghost", base);
        reportRow(report, "batched", fast);
        reportRow(report, "no-ghost", base);
        report.latency().merge(fast.faultLat);

        double sp_faults = ref.faultsPerSec() > 0
                               ? fast.faultsPerSec() / ref.faultsPerSec()
                               : 0;
        double sp_bw = ref.bandwidthMBs() > 0
                           ? fast.bandwidthMBs() / ref.bandwidthMBs()
                           : 0;
        // Per-fault cost of a sealed swap-in vs an ordinary
        // demand-zero fault (both p50, the steady-state view).
        double cpu = sim::Clock::cyclesPerUsec;
        double ghost_us = double(fast.faultLat.percentile(50)) / cpu;
        double base_us = double(base.faultLat.percentile(50)) / cpu;
        double overhead = base_us > 0 ? ghost_us / base_us : 0;

        std::printf("\nbatched vs per-page: %.2fx faults/s, %.2fx "
                    "swap bandwidth\n",
                    sp_faults, sp_bw);
        std::printf("ghost swap-in vs demand-zero fault (p50): "
                    "%.2fx\n",
                    overhead);
        report.top()
            .num("speedup_faults", sp_faults)
            .num("speedup_bandwidth", sp_bw)
            .num("ghost_overhead", overhead);
    } else {
        report.latency().merge(ref.faultLat);
    }

    emitVerifierStats(report);
    return report.write() ? 0 : 1;
}
