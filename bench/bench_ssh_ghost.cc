/**
 * @file
 * Figure 4: ghosting vs original ssh client transfer rate, both on
 * the Virtual Ghost kernel (isolates the cost of using ghost memory).
 * Paper: at most a 5% bandwidth reduction.
 */

#include "apps/ssh_common.hh"
#include "common.hh"

using namespace vg;
using namespace vg::bench;
using namespace vg::apps;

namespace
{

double
clientBandwidth(uint64_t file_size, bool ghosting,
                LatencyHist *lat = nullptr)
{
    kern::System sys(benchConfig(sim::VgConfig::full()));
    sys.boot();

    crypto::AesKey app_key{};
    for (int i = 0; i < 16; i++)
        app_key[size_t(i)] = uint8_t(i);
    sva::AppBinary bin =
        sys.vm().packageApp("openssh", "ssh-code", app_key);

    kern::Ino ino = 0;
    sys.kernel().fs().create("/payload", ino);
    std::vector<uint8_t> chunk(64 * 1024, 0x3c);
    for (uint64_t off = 0; off < file_size; off += chunk.size())
        sys.kernel().fs().write(
            ino, off, chunk.data(),
            std::min<uint64_t>(chunk.size(), file_size - off));

    double kbps = 0;
    sys.runProcess("init", [&](kern::UserApi &api) {
        uint64_t kg = api.fork([&](kern::UserApi &capi) {
            return capi.execve(&bin, [](kern::UserApi &napi) {
                return sshKeygen(napi);
            });
        });
        int status = -1;
        api.waitpid(kg, status);

        uint64_t srv = api.fork([](kern::UserApi &capi) {
            SshdConfig cfg;
            cfg.maxConnections = 1;
            return sshd(capi, cfg);
        });
        for (int i = 0; i < 4; i++)
            api.yield();

        uint64_t cli = api.fork([&](kern::UserApi &capi) {
            return capi.execve(&bin, [&](kern::UserApi &napi) {
                sim::Stopwatch sw(napi.kernel().ctx().clock());
                SshResult r = sshFetch(napi, "/payload", ghosting);
                if (lat)
                    lat->add(sw.elapsed());
                double secs = sim::Clock::toSec(sw.elapsed());
                if (r.ok && secs > 0)
                    kbps = double(r.bytes) / 1024.0 / secs;
                return r.ok ? 0 : 1;
            });
        });
        api.waitpid(cli, status);
        api.waitpid(srv, status);
        return 0;
    });
    collectVerifierStats(sys);
    return kbps;
}

} // namespace

int
main(int argc, char **argv)
{
    bool paper = paperScale();
    uint64_t max_size =
        paper ? (64ull << 20)
              : parseBenchOpts(argc, argv).smoke ? (1ull << 20)
                                                 : (4ull << 20);

    BenchReport report("ssh_ghost");
    report.top().count("max_file_bytes", max_size);

    banner("Figure 4. Ghosting SSH client average transfer rate "
           "(KB/s)\n(both clients on the Virtual Ghost kernel; "
           "paper: <= 5% reduction)");
    std::printf("%-10s %14s %14s %12s\n", "File Size", "Original ssh",
                "Ghosting ssh", "Reduction");

    double worst = 0;
    for (uint64_t size = 1024; size <= max_size; size *= 4) {
        double plain = clientBandwidth(size, false);
        double ghost =
            clientBandwidth(size, true, &report.latency());
        double red = plain > 0 ? 100.0 * (1.0 - ghost / plain) : 0.0;
        worst = std::max(worst, red);
        std::printf("%-10s %14.0f %14.0f %11.1f%%\n",
                    sizeLabel(size).c_str(), plain, ghost, red);
        report.row()
            .count("file_bytes", size)
            .num("plain_kbps", plain)
            .num("ghosting_kbps", ghost)
            .num("reduction_pct", red);
    }
    std::printf("\nWorst-case reduction: %.1f%% (paper: max 5%%)\n",
                worst);
    report.top().num("worst_reduction_pct", worst);
    emitVerifierStats(report);
    return report.write() ? 0 : 1;
}
