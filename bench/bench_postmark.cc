/**
 * @file
 * Table 5: Postmark, baseline vs Virtual Ghost.
 * Paper: 14.30 s native vs 67.50 s VG (4.72x) for 500,000
 * transactions on 500 base files.
 */

#include "apps/postmark.hh"
#include "common.hh"

using namespace vg;
using namespace vg::bench;
using namespace vg::apps;

namespace
{

double
postmarkSeconds(sim::VgConfig vg, const PostmarkConfig &cfg,
                LatencyHist *lat = nullptr)
{
    kern::System sys(benchConfig(vg));
    sys.boot();
    PostmarkResult result;
    sys.runProcess("postmark", [&](kern::UserApi &api) {
        result = postmark(api, cfg);
        return 0;
    });
    collectVerifierStats(sys);
    if (lat)
        for (uint64_t c : result.transactionCycles)
            lat->add(c);
    return result.seconds();
}

} // namespace

int
main(int argc, char **argv)
{
    bool paper = paperScale();
    BenchOpts opts = parseBenchOpts(argc, argv);
    bool smoke = opts.smoke;
    PostmarkConfig cfg; // paper parameters by default
    cfg.transactions = paper ? 500000 : smoke ? 2000 : 20000;
    cfg.baseFiles = paper ? 500 : smoke ? 50 : 200;
    int runs = paper ? 5 : smoke ? 1 : 3;

    BenchReport report("postmark");
    report.top()
        .count("transactions", cfg.transactions)
        .count("base_files", cfg.baseFiles)
        .count("runs", uint64_t(runs));

    banner("Table 5. Postmark (500 B - 9.77 KB files, 512 B blocks, "
           "biases 5,\nbuffered I/O)");
    std::printf("Transactions per run: %lu, base files: %lu, runs: "
                "%d\n\n",
                (unsigned long)cfg.transactions,
                (unsigned long)cfg.baseFiles, runs);

    double nat = 0, vgs = 0;
    for (int i = 0; i < runs; i++) {
        cfg.seed = opts.seed + uint64_t(i);
        nat += postmarkSeconds(sim::VgConfig::native(), cfg);
        vgs += postmarkSeconds(sim::VgConfig::full(), cfg,
                               &report.latency());
    }
    nat /= runs;
    vgs /= runs;

    std::printf("%-12s %12s %12s %10s\n", "", "Native (s)",
                "VGhost (s)", "Overhead");
    std::printf("%-12s %12.2f %12.2f %9.2fx\n", "measured", nat, vgs,
                vgs / nat);
    std::printf("%-12s %12.2f %12.2f %9.2fx   (500k transactions)\n",
                "paper", 14.30, 67.50, 4.72);

    report.row()
        .str("test", "postmark")
        .num("native_s", nat)
        .num("vg_s", vgs)
        .num("overhead", vgs / nat)
        .num("paper_native_s", 14.30)
        .num("paper_vg_s", 67.50)
        .num("paper_overhead", 4.72);
    emitVerifierStats(report);
    return report.write() ? 0 : 1;
}
