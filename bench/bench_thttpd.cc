/**
 * @file
 * Figure 2: thttpd web-server bandwidth vs file size (ApacheBench
 * workload), baseline vs Virtual Ghost. The paper's result: the
 * impact of Virtual Ghost on web transfer bandwidth is negligible.
 */

#include "apps/thttpd.hh"
#include "scenario.hh"

using namespace vg;
using namespace vg::bench;
using namespace vg::apps;

namespace
{

double
bandwidthFor(sim::VgConfig vg, uint64_t file_size, uint64_t requests,
             LatencyHist *lat = nullptr)
{
    kern::System sys(benchConfig(vg));
    sys.boot();

    // Plant the content file (generated from random data in the
    // paper; content doesn't affect timing here).
    plantFile(sys, "/file.bin", file_size);

    // ApacheBench-style concurrency: several client processes issue
    // requests at once, so wire time and server compute overlap (the
    // paper used 100 simultaneous connections). On SMP machines one
    // server instance runs per vCPU (ports 80, 81, ...) and the
    // clients round-robin across them; with vcpus == 1 this is
    // exactly the single-server workload.
    unsigned instances = vg.vcpus;
    unsigned per = std::max(4u, instances) / instances;

    // Per-instance request shares (clients of instance i serve share
    // i together).
    std::vector<uint64_t> srv_share(instances, 0);
    for (unsigned i = 0; i < instances; i++)
        srv_share[i] = requests / instances +
                       (i < requests % instances ? 1 : 0);
    auto client_share = [&](unsigned inst, unsigned j) {
        return srv_share[inst] / per +
               (j < srv_share[inst] % per ? 1 : 0);
    };

    uint64_t total_bytes = 0;
    ServeScenario scenario;
    scenario.instances = instances;
    scenario.clientsPerInstance = per;
    scenario.server = [&](kern::UserApi &capi, unsigned i) {
        ThttpdConfig cfg;
        cfg.port = uint16_t(80 + i);
        cfg.maxRequests = srv_share[i];
        return srv_share[i] ? thttpd(capi, cfg) : 0;
    };
    scenario.client = [&](kern::UserApi &capi, unsigned inst,
                          unsigned j) {
        uint64_t share = client_share(inst, j);
        if (share == 0)
            return 0;
        AbResult ab = apacheBench(capi, "/file.bin", share,
                                  uint16_t(80 + inst));
        total_bytes += ab.bytes;
        if (lat)
            for (uint64_t c : ab.requestCycles)
                lat->add(c);
        return 0;
    };

    ScenarioResult r = runScenario(sys, scenario);
    double secs = r.seconds();
    return secs > 0 ? double(total_bytes) / 1024.0 / secs : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool paper = paperScale();
    BenchOpts opts = parseBenchOpts(argc, argv);
    unsigned vcpus = opts.vcpus;
    uint64_t requests = paper ? 10000 : opts.smoke ? 12 : 50;
    // Keep per-server load meaningful when fanning out across vCPUs.
    requests *= vcpus;

    std::string name = vcpus > 1 ? "thttpd_smp" : "thttpd";
    if (opts.legacyIo)
        name += "_syncio";
    BenchReport report(name, vcpus);
    report.top().count("requests", requests);
    report.top().flag("async_io", !opts.legacyIo);

    banner("Figure 2. thttpd average bandwidth (KB/s) vs file size\n"
           "(ApacheBench workload; paper: VG impact negligible)");
    std::printf("vCPUs: %u (%u server instance%s)\n", vcpus, vcpus,
                vcpus > 1 ? "s" : "");
    std::printf("%-10s %12s %12s %10s\n", "File Size", "Native",
                "VGhost", "VG/Native");

    for (uint64_t size = 1024; size <= (1 << 20); size *= 4) {
        sim::VgConfig nat_vg = opts.apply(sim::VgConfig::native());
        sim::VgConfig full_vg = opts.apply(sim::VgConfig::full());
        double nat = bandwidthFor(nat_vg, size, requests);
        double vgb =
            bandwidthFor(full_vg, size, requests, &report.latency());
        std::printf("%-10s %12.0f %12.0f %9.1f%%\n",
                    sizeLabel(size).c_str(), nat, vgb,
                    100.0 * vgb / nat);
        report.row()
            .count("file_bytes", size)
            .num("native_kbps", nat)
            .num("vg_kbps", vgb)
            .num("vg_vs_native", nat > 0 ? vgb / nat : 0.0);
    }

    std::printf("\nPaper's Figure 2 shows overlapping curves from "
                "1 KB to 1 MB (y-axis 512\nto 131072 KB/s): the "
                "transfer path is wire/copy bound, so kernel\n"
                "instrumentation is hidden.\n");
    emitVerifierStats(report);
    return report.write() ? 0 : 1;
}
