/**
 * @file
 * Figure 2: thttpd web-server bandwidth vs file size (ApacheBench
 * workload), baseline vs Virtual Ghost. The paper's result: the
 * impact of Virtual Ghost on web transfer bandwidth is negligible.
 */

#include "apps/thttpd.hh"
#include "common.hh"

using namespace vg;
using namespace vg::bench;
using namespace vg::apps;

namespace
{

double
bandwidthFor(sim::VgConfig vg, uint64_t file_size, uint64_t requests)
{
    kern::System sys(benchConfig(vg));
    sys.boot();

    // Plant the content file (generated from random data in the
    // paper; content doesn't affect timing here).
    kern::Ino ino = 0;
    sys.kernel().fs().create("/file.bin", ino);
    std::vector<uint8_t> data(file_size, 0x42);
    sys.kernel().fs().write(ino, 0, data.data(), data.size());

    // ApacheBench-style concurrency: several client processes issue
    // requests at once, so wire time and server compute overlap (the
    // paper used 100 simultaneous connections).
    constexpr int concurrency = 4;
    uint64_t total_bytes = 0;
    sim::Cycles elapsed = 0;
    sys.runProcess("init", [&](kern::UserApi &api) {
        uint64_t srv = api.fork([&](kern::UserApi &capi) {
            ThttpdConfig cfg;
            cfg.maxRequests = requests;
            return thttpd(capi, cfg);
        });
        for (int i = 0; i < 4; i++)
            api.yield();

        sim::Stopwatch sw(sys.ctx().clock());
        std::vector<uint64_t> clients;
        for (int c = 0; c < concurrency; c++) {
            uint64_t share = requests / concurrency +
                             (c < int(requests % concurrency) ? 1 : 0);
            if (share == 0)
                continue;
            clients.push_back(api.fork([&, share](kern::UserApi &capi) {
                AbResult ab = apacheBench(capi, "/file.bin", share);
                total_bytes += ab.bytes;
                return 0;
            }));
        }
        int status;
        for (uint64_t cli : clients)
            api.waitpid(cli, status);
        elapsed = sw.elapsed();
        api.waitpid(srv, status);
        return 0;
    });
    double secs = sim::Clock::toSec(elapsed);
    return secs > 0 ? double(total_bytes) / 1024.0 / secs : 0.0;
}

} // namespace

int
main()
{
    bool paper = paperScale();
    uint64_t requests = paper ? 10000 : smokeScale() ? 12 : 50;

    BenchReport report("thttpd");
    report.top().count("requests", requests);

    banner("Figure 2. thttpd average bandwidth (KB/s) vs file size\n"
           "(ApacheBench workload; paper: VG impact negligible)");
    std::printf("%-10s %12s %12s %10s\n", "File Size", "Native",
                "VGhost", "VG/Native");

    for (uint64_t size = 1024; size <= (1 << 20); size *= 4) {
        double nat = bandwidthFor(sim::VgConfig::native(), size,
                                  requests);
        double vgb = bandwidthFor(sim::VgConfig::full(), size,
                                  requests);
        std::printf("%-10s %12.0f %12.0f %9.1f%%\n",
                    sizeLabel(size).c_str(), nat, vgb,
                    100.0 * vgb / nat);
        report.row()
            .count("file_bytes", size)
            .num("native_kbps", nat)
            .num("vg_kbps", vgb)
            .num("vg_vs_native", nat > 0 ? vgb / nat : 0.0);
    }

    std::printf("\nPaper's Figure 2 shows overlapping curves from "
                "1 KB to 1 MB (y-axis 512\nto 131072 KB/s): the "
                "transfer path is wire/copy bound, so kernel\n"
                "instrumentation is hidden.\n");
    return report.write() ? 0 : 1;
}
