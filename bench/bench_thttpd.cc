/**
 * @file
 * Figure 2: thttpd web-server bandwidth vs file size (ApacheBench
 * workload), baseline vs Virtual Ghost. The paper's result: the
 * impact of Virtual Ghost on web transfer bandwidth is negligible.
 */

#include "apps/thttpd.hh"
#include "common.hh"

using namespace vg;
using namespace vg::bench;
using namespace vg::apps;

namespace
{

double
bandwidthFor(sim::VgConfig vg, uint64_t file_size, uint64_t requests,
             LatencyHist *lat = nullptr)
{
    kern::System sys(benchConfig(vg));
    sys.boot();

    // Plant the content file (generated from random data in the
    // paper; content doesn't affect timing here).
    kern::Ino ino = 0;
    sys.kernel().fs().create("/file.bin", ino);
    std::vector<uint8_t> data(file_size, 0x42);
    sys.kernel().fs().write(ino, 0, data.data(), data.size());

    // ApacheBench-style concurrency: several client processes issue
    // requests at once, so wire time and server compute overlap (the
    // paper used 100 simultaneous connections). On SMP machines one
    // server instance runs per vCPU (ports 80, 81, ...) and the
    // clients round-robin across them; with vcpus == 1 this is
    // exactly the single-server workload.
    unsigned instances = vg.vcpus;
    int concurrency = std::max(4u, instances);
    uint64_t total_bytes = 0;
    sim::Cycles elapsed = 0;
    sys.runProcess("init", [&](kern::UserApi &api) {
        // Per-instance request shares (clients of instance i serve
        // share i together).
        std::vector<uint64_t> srv_share(instances, 0);
        for (unsigned i = 0; i < instances; i++)
            srv_share[i] = requests / instances +
                           (i < requests % instances ? 1 : 0);

        std::vector<uint64_t> servers;
        for (unsigned i = 0; i < instances; i++) {
            if (srv_share[i] == 0)
                continue;
            servers.push_back(api.fork([&, i](kern::UserApi &capi) {
                ThttpdConfig cfg;
                cfg.port = uint16_t(80 + i);
                cfg.maxRequests = srv_share[i];
                return thttpd(capi, cfg);
            }));
        }
        for (int i = 0; i < 4; i++)
            api.yield();

        sim::Cycles t0 = machineNow(sys);
        std::vector<uint64_t> clients;
        unsigned per = unsigned(concurrency) / instances;
        for (unsigned inst = 0; inst < instances; inst++) {
            for (unsigned j = 0; j < per; j++) {
                uint64_t share = srv_share[inst] / per +
                                 (j < srv_share[inst] % per ? 1 : 0);
                if (share == 0)
                    continue;
                clients.push_back(
                    api.fork([&, share, inst](kern::UserApi &capi) {
                        AbResult ab = apacheBench(capi, "/file.bin",
                                                  share,
                                                  uint16_t(80 + inst));
                        total_bytes += ab.bytes;
                        if (lat)
                            for (uint64_t c : ab.requestCycles)
                                lat->add(c);
                        return 0;
                    }));
            }
        }
        int status;
        for (uint64_t cli : clients)
            api.waitpid(cli, status);
        elapsed = machineNow(sys) - t0;
        for (uint64_t srv : servers)
            api.waitpid(srv, status);
        return 0;
    });
    collectVerifierStats(sys);
    double secs = sim::Clock::toSec(elapsed);
    return secs > 0 ? double(total_bytes) / 1024.0 / secs : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool paper = paperScale();
    unsigned vcpus = parseVcpus(argc, argv);
    bool legacy_io = legacyIo(argc, argv);
    uint64_t requests = paper ? 10000 : smokeScale() ? 12 : 50;
    // Keep per-server load meaningful when fanning out across vCPUs.
    requests *= vcpus;

    std::string name = vcpus > 1 ? "thttpd_smp" : "thttpd";
    if (legacy_io)
        name += "_syncio";
    BenchReport report(name, vcpus);
    report.top().count("requests", requests);
    report.top().flag("async_io", !legacy_io);

    banner("Figure 2. thttpd average bandwidth (KB/s) vs file size\n"
           "(ApacheBench workload; paper: VG impact negligible)");
    std::printf("vCPUs: %u (%u server instance%s)\n", vcpus, vcpus,
                vcpus > 1 ? "s" : "");
    std::printf("%-10s %12s %12s %10s\n", "File Size", "Native",
                "VGhost", "VG/Native");

    for (uint64_t size = 1024; size <= (1 << 20); size *= 4) {
        sim::VgConfig nat_vg = sim::VgConfig::native();
        sim::VgConfig full_vg = sim::VgConfig::full();
        nat_vg.vcpus = full_vg.vcpus = vcpus;
        nat_vg.asyncIo = full_vg.asyncIo = !legacy_io;
        double nat = bandwidthFor(nat_vg, size, requests);
        double vgb =
            bandwidthFor(full_vg, size, requests, &report.latency());
        std::printf("%-10s %12.0f %12.0f %9.1f%%\n",
                    sizeLabel(size).c_str(), nat, vgb,
                    100.0 * vgb / nat);
        report.row()
            .count("file_bytes", size)
            .num("native_kbps", nat)
            .num("vg_kbps", vgb)
            .num("vg_vs_native", nat > 0 ? vgb / nat : 0.0);
    }

    std::printf("\nPaper's Figure 2 shows overlapping curves from "
                "1 KB to 1 MB (y-axis 512\nto 131072 KB/s): the "
                "transfer path is wire/copy bound, so kernel\n"
                "instrumentation is hidden.\n");
    emitVerifierStats(report);
    return report.write() ? 0 : 1;
}
