/**
 * @file
 * Fleet-scale serving benchmark: N machines behind the simulated L4
 * balancer, a thousand-plus concurrent connections, and a
 * hundred-plus ghost tenants exercising per-tenant key chains and
 * ghost working sets on every machine they touch.
 *
 * Phases:
 *   1. calibrate  — one machine, no fabric: thttpdMulti vs the
 *                   concurrent ApacheBench driver (scenario.hh), the
 *                   single-machine baseline the fleet numbers are
 *                   read against.
 *   2. open_ch    — open-loop Poisson burst routed by consistent
 *                   hash (tenant affinity).
 *   3. closed_lc  — closed-loop user population routed least-conn.
 *   4. pressure   — small-memory fleet with fat ghost working sets:
 *                   the per-tenant churn forces the sealed swap path
 *                   (PR 8) under fleet-induced memory pressure.
 *
 * BENCH_fleet.json carries machines/tenants, fleet throughput,
 * p50/p99/p999 request latency, the measured peak of concurrent
 * established connections (sum of per-machine kernel.conn_table_peak)
 * and one rollup row per machine per phase.
 */

#include "apps/thttpd.hh"
#include "fleet/fleet.hh"
#include "scenario.hh"

using namespace vg;
using namespace vg::bench;
using namespace vg::fleet;

namespace
{

/** Per-machine sizing for fleet members. */
kern::SystemConfig
fleetMachineConfig(const BenchOpts &opts, uint64_t mem_frames)
{
    kern::SystemConfig cfg;
    cfg.vg = opts.apply(sim::VgConfig::full());
    cfg.memFrames = mem_frames;
    cfg.diskBlocks = 8 * 1024; // 32 MB swap + fs per machine
    cfg.rsaBits = 384;
    return cfg;
}

/** Sum one stat across all machines of a finished run. */
uint64_t
sumStat(const FleetResult &res, const char *key)
{
    uint64_t total = 0;
    for (const auto &stats : res.machineStats) {
        auto it = stats.find(key);
        if (it != stats.end())
            total += it->second;
    }
    return total;
}

/** Emit one rollup row per machine plus the phase summary row. */
void
reportPhase(BenchReport &report, const std::string &phase,
            const FleetConfig &cfg, const FleetResult &res)
{
    LatencyHist lat;
    for (uint64_t us : res.latencyUs)
        lat.add(uint64_t(double(us) * sim::Clock::cyclesPerUsec));

    BenchReport::Obj &sum = report.row();
    sum.str("phase", phase)
        .str("policy", lbPolicyName(cfg.policy))
        .str("mode", trafficModeName(cfg.mode))
        .count("requests", cfg.requests)
        .count("served", res.served)
        .count("failures", res.failures)
        .count("dropped", res.dropped)
        .count("tenant_failures", res.tenantFailures)
        .count("epochs", res.epochs)
        .count("fleet_time_us", res.fleetTimeUs)
        .num("throughput_rps", res.throughputRps());
    emitLatency(sum, lat, "req_");

    for (unsigned m = 0; m < cfg.machines; m++) {
        const auto &stats = res.machineStats[m];
        auto get = [&](const char *k) {
            auto it = stats.find(k);
            return it != stats.end() ? it->second : 0;
        };
        report.row()
            .str("phase", phase)
            .count("machine", m)
            .count("served", res.machineServed[m])
            .count("conn_peak", get("kernel.conn_table_peak"))
            .count("conn_inserts", get("kernel.conn_table_inserts"))
            .count("swap_pages_stored", get("swap.pages_stored"))
            .count("swap_pages_loaded", get("swap.pages_loaded"))
            .count("ghost_pages", get("sva.ghost_pages_allocated"))
            .count("ghost_swapouts", get("kernel.ghost_swapouts"))
            .count("ghost_swapins", get("kernel.ghost_swapins"));
    }

    std::printf("%-10s %-9s %7llu served %5llu drop  %9.0f req/s  "
                "p99 %llu us\n",
                phase.c_str(), lbPolicyName(cfg.policy),
                (unsigned long long)res.served,
                (unsigned long long)res.dropped, res.throughputRps(),
                (unsigned long long)(
                    double(lat.percentile(99)) /
                    sim::Clock::cyclesPerUsec));
}

/** Single-machine calibration: thttpdMulti behind the concurrent
 *  ApacheBench driver, via the shared scenario skeleton. */
double
calibrate(const BenchOpts &opts, uint64_t requests,
          unsigned concurrency, LatencyHist *lat)
{
    kern::System sys(benchConfig(opts.apply(sim::VgConfig::full())));
    sys.boot();
    plantFile(sys, "/file.bin", 4096);

    uint64_t bytes = 0;
    ServeScenario scenario;
    scenario.server = [&](kern::UserApi &capi, unsigned) {
        apps::ThttpdMultiConfig cfg;
        cfg.maxRequests = requests;
        cfg.maxConcurrent = concurrency * 2;
        return apps::thttpdMulti(capi, cfg);
    };
    scenario.client = [&](kern::UserApi &capi, unsigned, unsigned) {
        apps::AbResult ab = apps::apacheBenchConcurrent(
            capi, "/file.bin", requests, concurrency);
        bytes += ab.bytes;
        if (lat)
            for (uint64_t c : ab.requestCycles)
                lat->add(c);
        return 0;
    };
    ScenarioResult r = runScenario(sys, scenario);
    return r.seconds() > 0 ? double(requests) / r.seconds() : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOpts opts = parseBenchOpts(argc, argv);
    bool paper = paperScale();
    bool smoke = opts.smoke;

    // Default scale meets the fleet acceptance floor: >= 4 machines,
    // >= 100 ghost tenants, >= 1000 concurrent connections (4
    // machines x vcpus workers x `concurrency`-deep client
    // pipelines, verified against the measured conn-table peaks).
    const unsigned machines = paper ? 6 : 4;
    const unsigned tenants = smoke ? 16 : paper ? 250 : 120;
    const uint64_t requests = smoke ? 120 : paper ? 6000 : 2400;
    const unsigned concurrency =
        smoke ? 16
              : unsigned((1100 + machines * opts.vcpus - 1) /
                         (machines * opts.vcpus));

    BenchReport report("fleet", opts.vcpus);
    report.top()
        .count("machines", machines)
        .count("tenants", tenants)
        .count("requests", requests)
        .count("client_concurrency", concurrency)
        .str("seed", std::to_string(opts.seed));

    banner("Fleet-scale serving: multi-machine fabric, L4 balancer, "
           "thousand-tenant\ntraffic (open + closed loop), ghost "
           "key-chains per tenant");
    std::printf("machines: %u, tenants: %u, requests/phase: %llu, "
                "pipeline depth: %u\n\n",
                machines, tenants, (unsigned long long)requests,
                concurrency);

    // --- phase 1: single-machine calibration -------------------------
    LatencyHist calib_lat;
    double calib_rps = calibrate(opts, smoke ? 60 : 600,
                                 smoke ? 8 : 64, &calib_lat);
    BenchReport::Obj &crow = report.row();
    crow.str("phase", "calibrate").num("throughput_rps", calib_rps);
    emitLatency(crow, calib_lat, "req_");
    std::printf("%-10s %-9s %25.0f req/s (one machine, no fabric)\n",
                "calibrate", "-", calib_rps);

    uint64_t peak_concurrent = 0;

    // --- phase 2: open-loop burst, consistent hash -------------------
    {
        FleetConfig cfg;
        cfg.machines = machines;
        cfg.tenants = tenants;
        cfg.system = fleetMachineConfig(opts, 4096);
        cfg.system.vg.seed = opts.seed;
        cfg.policy = LbPolicy::ConsistentHash;
        cfg.mode = TrafficMode::OpenLoop;
        cfg.requests = requests;
        // Burst faster than the fleet drains: deep batches, so the
        // client pipelines actually fill.
        cfg.openLoopRps = smoke ? 100000.0 : 1200000.0;
        cfg.knobs.concurrency = concurrency;
        cfg.knobs.serverSlots = concurrency * 3;
        cfg.knobs.ghostPagesPerTenant = smoke ? 4 : 8;
        FleetResult res = Fleet(cfg).run();
        for (uint64_t us : res.latencyUs)
            report.latency().add(
                uint64_t(double(us) * sim::Clock::cyclesPerUsec));
        reportPhase(report, "open_ch", cfg, res);
        peak_concurrent = std::max(
            peak_concurrent, sumStat(res, "kernel.conn_table_peak"));
    }

    // --- phase 3: closed loop, least connections ---------------------
    {
        FleetConfig cfg;
        cfg.machines = machines;
        cfg.tenants = tenants;
        cfg.system = fleetMachineConfig(opts, 4096);
        cfg.system.vg.seed = opts.seed;
        cfg.policy = LbPolicy::LeastConn;
        cfg.mode = TrafficMode::ClosedLoop;
        cfg.requests = requests;
        cfg.closedLoopUsers = smoke ? 60 : 1200;
        cfg.thinkTimeUs = 200;
        cfg.knobs.concurrency = concurrency;
        cfg.knobs.serverSlots = concurrency * 3;
        cfg.knobs.ghostPagesPerTenant = smoke ? 4 : 8;
        FleetResult res = Fleet(cfg).run();
        for (uint64_t us : res.latencyUs)
            report.latency().add(
                uint64_t(double(us) * sim::Clock::cyclesPerUsec));
        reportPhase(report, "closed_lc", cfg, res);
        peak_concurrent = std::max(
            peak_concurrent, sumStat(res, "kernel.conn_table_peak"));
    }

    // --- phase 4: ghost swap under fleet memory pressure -------------
    uint64_t swap_stored = 0, swap_loaded = 0;
    {
        FleetConfig cfg;
        cfg.machines = machines;
        cfg.tenants = smoke ? 8 : 40;
        // Small machines + fat per-tenant ghost working sets: the
        // tenants that hash to one machine want more frames than it
        // has, so the allocator has to evict through the sealed swap
        // path (kGhostHeadroom keeps a few frames free; everything
        // beyond that is reclaimed from sibling tenants).
        cfg.system = fleetMachineConfig(opts, smoke ? 512 : 1536);
        cfg.system.vg.seed = opts.seed;
        cfg.policy = LbPolicy::ConsistentHash;
        cfg.mode = TrafficMode::OpenLoop;
        cfg.requests = smoke ? 40 : 200;
        cfg.openLoopRps = smoke ? 50000.0 : 200000.0;
        cfg.knobs.concurrency = smoke ? 8 : 32;
        cfg.knobs.ghostPagesPerTenant = smoke ? 128 : 160;
        FleetResult res = Fleet(cfg).run();
        reportPhase(report, "pressure", cfg, res);
        swap_stored = sumStat(res, "swap.pages_stored");
        swap_loaded = sumStat(res, "swap.pages_loaded");
    }

    report.top()
        .count("peak_concurrent", peak_concurrent)
        .count("swap_pages_stored", swap_stored)
        .count("swap_pages_loaded", swap_loaded)
        .num("calibrate_rps", calib_rps);

    std::printf("\npeak concurrent established connections "
                "(fleet-wide): %llu\n",
                (unsigned long long)peak_concurrent);
    std::printf("pressure phase sealed swap traffic: %llu pages out, "
                "%llu pages in\n",
                (unsigned long long)swap_stored,
                (unsigned long long)swap_loaded);
    emitVerifierStats(report);
    return report.write() ? 0 : 1;
}
