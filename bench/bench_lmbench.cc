/**
 * @file
 * Table 2: LMBench microbenchmark latencies, native FreeBSD baseline
 * vs Virtual Ghost, with the paper's reported numbers alongside.
 */

#include "apps/lmbench.hh"
#include "common.hh"

using namespace vg;
using namespace vg::bench;
using namespace vg::apps;

namespace
{

struct Row
{
    const char *name;
    std::function<double(kern::UserApi &, uint64_t)> fn;
    uint64_t iters;
    double paperNative;
    double paperVg;
    const char *paperOverhead;
};

} // namespace

int
main(int argc, char **argv)
{
    bool paper = paperScale();
    bool smoke = parseBenchOpts(argc, argv).smoke;
    int runs = paper ? 10 : smoke ? 1 : 3;
    uint64_t scale = paper ? 1 : 1;

    std::vector<Row> rows = {
        {"null syscall", latNullSyscall, 1000 * scale, 0.091, 0.355,
         "3.90x"},
        {"open/close", latOpenClose, 1000 * scale, 2.01, 9.70,
         "4.83x"},
        {"mmap", latMmap, 1000 * scale, 7.06, 33.2, "4.70x"},
        {"page fault", latPageFault, paper ? 1000 : 250, 31.8, 36.7,
         "1.15x"},
        {"signal handler install", latSignalInstall, 1000 * scale,
         0.168, 0.545, "3.24x"},
        {"signal handler delivery", latSignalDelivery, 1000 * scale,
         1.27, 2.05, "1.61x"},
        {"fork + exit",
         [](kern::UserApi &api, uint64_t n) {
             return latForkExit(api, n);
         },
         paper ? 1000 : 100, 63.7, 283, "4.40x"},
        {"fork + exec",
         [](kern::UserApi &api, uint64_t n) {
             return latForkExec(api, n);
         },
         paper ? 1000 : 100, 101, 422, "4.20x"},
        {"select",
         [](kern::UserApi &api, uint64_t n) {
             return latSelect(api, n, 100);
         },
         1000 * scale, 3.05, 10.3, "3.40x"},
    };

    if (smoke) {
        for (Row &row : rows)
            row.iters = std::max<uint64_t>(row.iters / 10, 25);
    }

    BenchReport report("lmbench");
    report.top().count("runs", uint64_t(runs));

    banner("Table 2. LMBench latencies (microseconds, simulated)");
    std::printf("%-26s %10s %10s %9s | %10s %10s %9s\n", "Test",
                "Native", "VGhost", "Overhead", "paper-Nat",
                "paper-VG", "paper-OH");

    for (const Row &row : rows) {
        double native = meanOf(runs, sim::VgConfig::native(),
                               [&](kern::UserApi &api) {
                                   return row.fn(api, row.iters);
                               });
        double vg = meanOf(runs, sim::VgConfig::full(),
                           [&](kern::UserApi &api) {
                               return row.fn(api, row.iters);
                           });
        // One pooled sample per test: the VG per-op mean, in cycles.
        report.latency().add(
            uint64_t(vg * sim::Clock::cyclesPerUsec));
        std::printf("%-26s %10.3f %10.3f %8.2fx | %10.3f %10.1f %9s\n",
                    row.name, native, vg, vg / native, row.paperNative,
                    row.paperVg, row.paperOverhead);
        report.row()
            .str("test", row.name)
            .count("iters", row.iters)
            .num("native_us", native)
            .num("vg_us", vg)
            .num("overhead", vg / native)
            .num("paper_native_us", row.paperNative)
            .num("paper_vg_us", row.paperVg)
            .str("paper_overhead", row.paperOverhead);
    }

    std::printf("\nNotes: absolute values come from the calibrated "
                "simulation cost model;\nthe comparison target is the "
                "overhead column. fork latencies depend on the\n"
                "benchmarked process's resident-set size, which is far "
                "smaller here than\nin lmbench.\n");
    emitVerifierStats(report);
    return report.write() ? 0 : 1;
}
