/**
 * @file
 * vg_lint: run the machine-code safety verifier from the command line.
 *
 * Compiles a VIR module exactly as the kernel's trusted translator
 * would (same passes, same layout) and then runs McodeVerifier over the
 * resulting image, printing each finding as
 *
 *     vg_lint: <function> @ 0x<addr>: [VG-xx-nn] <message>
 *
 * Compilation flags (--no-sandbox/--no-cfi/--no-fuse/--native) and the
 * verification policy (--require-sandbox/--require-cfi) are controlled
 * independently, so a module compiled without CFI can be linted against
 * a CFI-requiring policy — that is the CI known-bad fixture. --inject
 * applies one miscompile kind from minject.hh after layout, modelling a
 * buggy pass pipeline, and --self-test sweeps every kind x site on an
 * embedded module and demands 100% detection.
 *
 * Exit status: 0 clean, 1 findings (or failed self-test), 2 usage or
 * translation error.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "compiler/exec.hh"
#include "compiler/iflow.hh"
#include "compiler/minject.hh"
#include "compiler/mverify.hh"
#include "compiler/translator.hh"
#include "fleet/fleet.hh"
#include "kernel/system.hh"
#include "sim/context.hh"
#include "sva/iflow_meta.hh"

namespace
{

using namespace vg;

constexpr uint64_t kCodeBase = 0xffffff9000000000ull;

/** Built-in module for --self-test (same shape as the CI fixture). */
const char *kSelfTestSrc = R"(
func @checksum(2) {
entry:
  %2 = const 0
  %3 = const 0
  br head
head:
  %4 = icmp ult %3, %1
  condbr %4, body, done
body:
  %5 = add %0, %3
  %6 = load.i8 %5
  %2 = add %2, %6
  %7 = const 1
  %3 = add %3, %7
  br head
done:
  ret %2
}

func @copy8(2) {
entry:
  %2 = const 8
  memcpy %1, %0, %2
  %3 = load.i64 %1
  store.i64 %0, %3
  ret %3
}

func @dispatch(2) {
entry:
  %2 = funcaddr @checksum
  %3 = callind %2(%0, %1)
  %4 = call @copy8(%0, %1)
  %5 = add %3, %4
  ret %5
}
)";

/** Built-in ghost-handling module for the iflow leg of --self-test:
 *  sealed flows to every channel class, so all three static injection
 *  kinds (drop-seal, raw-store, stat-leak) have sites. The trace-only
 *  smuggle kind needs a spliced image and is covered by test_iflow. */
const char *kIflowSelfTestSrc = R"(
func @beacon(1) {
entry:
  %1 = call @sva_ghost_read(%0)
  %2 = call @sva_seal(%1)
  %3 = call @k_nic_tx(%2)
  ret %3
}

func @swap_out(2) {
entry:
  %2 = call @sva_ghost_read(%0)
  %3 = call @sva_seal(%2)
  %4 = call @k_swap_slot_ptr(%1)
  store.i64 %4, %3
  %5 = call @k_swap_store(%1, %3)
  %6 = call @k_stat_add(%1)
  ret %5
}
)";

void
printUsage(std::FILE *out)
{
    std::fprintf(
        out,
        "usage: vg_lint [options] <module.vir | ->\n"
        "       vg_lint --self-test\n"
        "\n"
        "Compile a VIR module with the trusted translator's passes and\n"
        "run the machine-code safety verifier over the result.\n"
        "\n"
        "compilation flags:\n"
        "  --native          compile with all instrumentation off\n"
        "  --no-sandbox      disable the sandboxing pass\n"
        "  --no-cfi          disable the CFI pass\n"
        "  --no-fuse         keep the unfused 13-inst mask sequence\n"
        "\n"
        "verification policy (defaults follow the compilation flags):\n"
        "  --require-sandbox enforce VG-SB rules regardless of flags\n"
        "  --require-cfi     enforce VG-CFI rules regardless of flags\n"
        "  --iflow           also run the information-flow verifier\n"
        "                    (rules VG-IF-01..05) and count its\n"
        "                    findings in the exit status\n"
        "\n"
        "fault injection:\n"
        "  --inject KIND[:SITE]  apply one miscompile after layout\n"
        "                        (drop-mask, clobber-mask,\n"
        "                        strip-entry-label, strip-return-label,\n"
        "                        raw-ret, raw-callind, bad-jump-target,\n"
        "                        forge-label, iflow-drop-seal,\n"
        "                        iflow-raw-store, iflow-stat-leak,\n"
        "                        iflow-trace-smuggle); SITE defaults\n"
        "                        to 0\n"
        "\n"
        "  --self-test       sweep every kind x site on built-in\n"
        "                    modules (mcode kinds against the safety\n"
        "                    verifier, iflow kinds against the\n"
        "                    information-flow verifier); exit 0 iff\n"
        "                    detection is 100%% and both report 0\n"
        "                    findings when clean\n"
        "\n"
        "information flow:\n"
        "  --dump-iflow      print the extern information-flow\n"
        "                    lattice (sources, declassifiers, sinks\n"
        "                    and their channels) followed by the\n"
        "                    module's iflow findings; exit 1 if any\n"
        "\n"
        "trace tier:\n"
        "  --dump-traces     execute the module's functions under the\n"
        "                    trace tier, print each formed trace\n"
        "                    (anchor PC, length, guards, fold savings)\n"
        "                    and re-verify the spliced image; exit 1\n"
        "                    on findings\n"
        "\n"
        "async I/O:\n"
        "  --dump-rings      boot a machine, run a small disk+net\n"
        "                    workload through the descriptor rings and\n"
        "                    print live ring state (head/tail,\n"
        "                    in-flight descriptors, IRQ lines, the\n"
        "                    coalescing timer); takes no module\n"
        "\n"
        "ghost swap:\n"
        "  --dump-swap       boot a machine, push a ghost working set\n"
        "                    through the batched eviction pipeline and\n"
        "                    print the swap-slot table, the clock\n"
        "                    hand, batch sizes and the seal-key\n"
        "                    generation; takes no module\n"
        "\n"
        "fleet serving:\n"
        "  --dump-fleet      run a small fleet (with one injected\n"
        "                    machine failure) and print the fabric\n"
        "                    topology, per-machine LB connection\n"
        "                    counts and per-tenant key-chain state;\n"
        "                    takes no module\n"
        "\n"
        "exit status: 0 clean, 1 findings, 2 usage/translate error\n");
}

int
usage()
{
    printUsage(stderr);
    return 2;
}

struct Options
{
    sim::VgConfig config;
    bool requireSandbox = false;
    bool requireCfi = false;
    bool haveInject = false;
    cc::Miscompile injectKind = cc::Miscompile::DropMask;
    size_t injectSite = 0;
    bool selfTest = false;
    bool iflow = false;
    bool dumpIflow = false;
    bool dumpTraces = false;
    bool dumpRings = false;
    bool dumpSwap = false;
    bool dumpFleet = false;
    std::string input;
};

cc::McodePolicy
policyFor(const Options &opt)
{
    cc::McodePolicy policy = cc::McodePolicy::fromConfig(opt.config);
    policy.requireSandbox |= opt.requireSandbox;
    policy.requireCfi |= opt.requireCfi;
    return policy;
}

/** Translate with both verifier gates off: vg_lint runs the verifiers
 *  itself so it can report findings instead of a refusal. */
cc::TranslateResult
compile(const Options &opt, const std::string &text)
{
    sim::VgConfig cfg = opt.config;
    cfg.verifyMcode = false;
    cfg.verifyIflow = false;
    sim::SimContext ctx(cfg);
    std::vector<uint8_t> key(32, 0x42);
    cc::Translator translator(key, ctx);
    return translator.translateText(text, kCodeBase);
}

int
lint(const Options &opt, const std::string &text)
{
    cc::TranslateResult tr = compile(opt, text);
    if (!tr.ok) {
        std::fprintf(stderr, "vg_lint: translation failed: %s\n",
                     tr.error.c_str());
        return 2;
    }

    cc::MachineImage image = *tr.image;
    if (opt.haveInject) {
        auto sites = cc::miscompileSites(image, opt.injectKind);
        if (!cc::injectMiscompile(image, opt.injectKind,
                                  opt.injectSite)) {
            std::fprintf(stderr,
                         "vg_lint: --inject %s: site %zu out of range "
                         "(%zu sites)\n",
                         cc::miscompileName(opt.injectKind),
                         opt.injectSite, sites.size());
            return 2;
        }
    }

    cc::McodeVerifier verifier(policyFor(opt));
    cc::McodeVerifyResult res = verifier.verify(image);
    for (const cc::McodeFinding &f : res.findings)
        std::printf("vg_lint: %s\n", f.render().c_str());
    size_t findings = res.findings.size();
    if (opt.iflow) {
        cc::IflowResult ires = cc::IflowVerifier{}.verify(image);
        for (const cc::IflowFinding &f : ires.findings)
            std::printf("vg_lint: %s\n", f.render().c_str());
        findings += ires.findings.size();
    }
    std::printf("vg_lint: %s: %llu function(s), %llu instruction(s), "
                "%zu finding(s)\n",
                image.moduleName.empty() ? "<module>"
                                         : image.moduleName.c_str(),
                (unsigned long long)res.functionsChecked,
                (unsigned long long)res.instsChecked, findings);
    return findings == 0 ? 0 : 1;
}

/**
 * --dump-iflow: print the extern information-flow lattice the verifier
 * trusts (the only policy input it has), then the module's findings.
 * The lattice dump doubles as documentation: it is generated from
 * sva/iflow_meta.hh, so it cannot drift from what is enforced.
 */
int
dumpIflow(const Options &opt, const std::string &text)
{
    std::printf("vg_lint: extern information-flow lattice:\n");
    size_t count = 0;
    const sva::IfExternEntry *table = sva::iflowExternTable(count);
    for (size_t i = 0; i < count; i++) {
        const sva::IfExternEntry &e = table[i];
        const char *role = "?";
        switch (e.info.role) {
        case sva::IfRole::SourceData:
            role = "source";
            break;
        case sva::IfRole::SourcePtr:
            role = "source-ptr";
            break;
        case sva::IfRole::Declassifier:
            role = "declassifier";
            break;
        case sva::IfRole::Sink:
            role = "sink";
            break;
        case sva::IfRole::SinkPtr:
            role = "sink-ptr";
            break;
        }
        std::printf("vg_lint:   %-16s %-12s channel=%-6s %s\n", e.name,
                    role, sva::iflowChannelName(e.info.channel),
                    e.desc);
    }
    std::printf("vg_lint:   <unknown extern>  sink         "
                "channel=extern default-deny\n");

    cc::TranslateResult tr = compile(opt, text);
    if (!tr.ok) {
        std::fprintf(stderr, "vg_lint: translation failed: %s\n",
                     tr.error.c_str());
        return 2;
    }
    cc::MachineImage image = *tr.image;
    if (opt.haveInject &&
        !cc::injectMiscompile(image, opt.injectKind, opt.injectSite)) {
        std::fprintf(stderr, "vg_lint: --inject %s: site %zu out of "
                             "range\n",
                     cc::miscompileName(opt.injectKind),
                     opt.injectSite);
        return 2;
    }
    cc::IflowResult res = cc::IflowVerifier{}.verify(image);
    for (const cc::IflowFinding &f : res.findings)
        std::printf("vg_lint: %s\n", f.render().c_str());
    std::printf("vg_lint: %s: %llu function(s), %llu instruction(s), "
                "%zu iflow finding(s)\n",
                image.moduleName.empty() ? "<module>"
                                         : image.moduleName.c_str(),
                (unsigned long long)res.functionsChecked,
                (unsigned long long)res.instsChecked,
                res.findings.size());
    return res.findings.empty() ? 0 : 1;
}

/** Memory that accepts everything: --dump-traces only needs control
 *  flow to run, not a faithful kernel address space. */
class AcceptAllPort : public cc::MemPort
{
  public:
    bool
    read(uint64_t, unsigned, uint64_t &out) override
    {
        out = 0;
        return true;
    }
    bool write(uint64_t, unsigned, uint64_t) override { return true; }
    bool copy(uint64_t, uint64_t, uint64_t) override { return true; }
};

int
dumpTraces(const Options &opt, const std::string &text)
{
    sim::VgConfig cfg = opt.config;
    cfg.traceTier = true;
    sim::SimContext ctx(cfg);
    std::vector<uint8_t> key(32, 0x42);
    cc::Translator translator(key, ctx);
    cc::TranslateResult tr = translator.translateText(text, kCodeBase);
    if (!tr.ok) {
        std::fprintf(stderr, "vg_lint: translation failed: %s\n",
                     tr.error.c_str());
        return 2;
    }

    AcceptAllPort mem;
    cc::ExternTable externs;
    cc::Executor exec(*tr.image, mem, externs, ctx,
                      0xffffffb000000000ull, 1 << 20);
    exec.enableTraceTier(translator);
    exec.setFuel(2'000'000);
    // Drive every function hot: nonzero arguments so counted loops
    // iterate, several passes so entry anchors cross the threshold.
    std::vector<uint64_t> args(8, 4096);
    for (const auto &[name, fn] : tr.image->functions) {
        (void)name;
        for (int pass = 0; pass < 3; pass++)
            exec.call(fn, args);
    }

    const cc::MachineImage &img = exec.currentImage();
    for (const cc::TraceInfo &t : img.traces)
        std::printf("vg_lint: trace %s: home %s anchor 0x%llx len %u "
                    "guards %u fold-savings %u\n",
                    t.name.c_str(), t.home.c_str(),
                    (unsigned long long)t.anchorAddr, t.length,
                    t.guards, t.foldSavings());
    std::printf("vg_lint: %s: %zu trace(s) formed\n",
                img.moduleName.empty() ? "<module>"
                                       : img.moduleName.c_str(),
                img.traces.size());

    // Exit-code contract: like plain linting, a spliced image with
    // findings exits 1 (the adoption gate should make this
    // unreachable, which is exactly why it's worth checking).
    size_t findings = 0;
    cc::McodeVerifyResult res =
        cc::McodeVerifier(policyFor(opt)).verify(img);
    for (const cc::McodeFinding &f : res.findings)
        std::printf("vg_lint: %s\n", f.render().c_str());
    findings += res.findings.size();
    if (opt.iflow) {
        cc::IflowResult ires = cc::IflowVerifier{}.verify(img);
        for (const cc::IflowFinding &f : ires.findings)
            std::printf("vg_lint: %s\n", f.render().c_str());
        findings += ires.findings.size();
    }
    return findings == 0 ? 0 : 1;
}

const char *
slotName(hw::DescRing::Slot s)
{
    switch (s) {
    case hw::DescRing::Slot::Free:
        return "free";
    case hw::DescRing::Slot::Posted:
        return "posted";
    case hw::DescRing::Slot::InFlight:
        return "in-flight";
    case hw::DescRing::Slot::Done:
        return "done";
    }
    return "?";
}

void
printRing(const char *name, const hw::DescRing &ring)
{
    std::printf("vg_lint: ring %s: size %u head %llu tail %llu "
                "in-flight %u pending-completions %llu\n",
                name, ring.size(), (unsigned long long)ring.head(),
                (unsigned long long)ring.tail(), ring.inFlight(),
                (unsigned long long)ring.pendingCompletions());
    for (uint32_t i = 0; i < ring.size(); i++) {
        const hw::DescRing::Entry &e = ring.slot(i);
        if (e.state == hw::DescRing::Slot::Free)
            continue;
        std::printf("vg_lint:   slot %u: %s gen %u len %u %s "
                    "cookie 0x%llx doneAt %llu%s\n",
                    i, slotName(e.state), e.gen, e.desc.len,
                    e.desc.useDma ? "dma"
                    : e.desc.write ? "host-write"
                                   : "host",
                    (unsigned long long)e.desc.cookie,
                    (unsigned long long)e.doneAt,
                    e.error ? " ERROR" : "");
    }
}

void
printIrq(const hw::IrqLine &irq)
{
    std::printf("vg_lint: irq %s: cpu %u pending %s at %llu "
                "raises %llu\n",
                irq.name().c_str(), irq.cpu(),
                irq.pending() ? "yes" : "no",
                (unsigned long long)irq.pendingAt(),
                (unsigned long long)irq.raises());
}

/**
 * --dump-rings: boot a machine, push a small disk + network workload
 * through the async stack, then leave a few descriptors posted so the
 * dump shows live in-flight state, not just drained rings.
 */
int
dumpRings()
{
    kern::SystemConfig cfg;
    cfg.memFrames = 4096;
    cfg.diskBlocks = 4096;
    cfg.rsaBits = 384;
    kern::System sys(cfg);
    sys.boot();

    sys.runProcess("ringdump", [&](kern::UserApi &api) {
        // Network leg: a loopback echo so both NIC rings carry
        // traffic.
        uint64_t srv = api.fork([](kern::UserApi &capi) {
            int ls = capi.socket();
            capi.bind(ls, 7);
            capi.listen(ls);
            int c = capi.accept(ls);
            char buf[2048];
            while (capi.recvHost(c, buf, sizeof(buf)) > 0) {
            }
            capi.close(c);
            capi.close(ls);
            return 0;
        });
        for (int i = 0; i < 4; i++)
            api.yield();
        int fd = api.connect(7);
        std::vector<uint8_t> msg(4096, 0x7e);
        for (int chunk = 0; chunk < 4; chunk++) {
            // Let the server block in recvHost first so delivery runs
            // the full doorbell -> IRQ -> softirq -> wake path.
            for (int i = 0; i < 4; i++)
                api.yield();
            api.sendHost(fd, msg.data(), msg.size());
        }
        api.close(fd);
        int status = -1;
        api.waitpid(srv, status);

        // Disk leg: dirty some blocks and force writeback through the
        // request queue.
        int f = api.open("/rings.dat", true);
        hw::Vaddr va = api.mmap(8 * hw::pageSize);
        std::vector<uint8_t> data(16 * 1024, 0x5d);
        api.copyToUser(va, data.data(), data.size());
        api.write(f, va, data.size());
        api.fsync(f);
        api.close(f);
        return 0;
    });

    // Post (but do not doorbell) a few descriptors so the dump shows
    // live occupancy.
    static std::vector<uint8_t> payload(600, 0xab);
    hw::RingDesc tx;
    tx.host = payload.data();
    tx.len = uint32_t(payload.size());
    tx.cookie = 1;
    sys.nicA().txPost(tx);
    tx.cookie = 2;
    sys.nicA().txPost(tx);
    static std::vector<uint8_t> block(hw::Disk::blockSize);
    hw::RingDesc rd;
    rd.block = 5;
    rd.hostOut = block.data();
    rd.len = uint32_t(block.size());
    rd.cookie = 3;
    sys.disk().submit(rd);

    const sim::VgConfig &vg = sys.ctx().config();
    std::printf("vg_lint: async I/O %s; ring size %u; coalescing "
                "window %u us (%.0f cycles)\n",
                vg.asyncIo ? "on" : "off", vg.ringSize,
                vg.irqCoalesceUs,
                vg.irqCoalesceUs * sim::Clock::cyclesPerUsec);
    printRing("nicA.tx", sys.nicA().txRing());
    printRing("nicA.rx", sys.nicA().rxRing());
    printRing("nicB.tx", sys.nicB().txRing());
    printRing("nicB.rx", sys.nicB().rxRing());
    printRing("disk.queue", sys.disk().queue());
    printIrq(sys.nicA().irq());
    printIrq(sys.nicB().irq());
    printIrq(sys.disk().irq());
    for (unsigned c = 0; c < sys.ctx().vcpuCount(); c++)
        std::printf("vg_lint: coalescing timer cpu%u: last device "
                    "irq at %llu (clock %llu)\n",
                    c, (unsigned long long)sys.kernel().lastIrqAt(c),
                    (unsigned long long)sys.ctx().clockOf(c).now());
    std::printf("vg_lint: stats: device_irqs %llu coalesced %llu "
                "softirq_wakes %llu zero_copy_sends %llu\n",
                (unsigned long long)sys.ctx().stats().get(
                    "kernel.device_irqs"),
                (unsigned long long)sys.ctx().stats().get(
                    "kernel.irqs_coalesced"),
                (unsigned long long)sys.ctx().stats().get(
                    "kernel.softirq_wakes"),
                (unsigned long long)sys.ctx().stats().get(
                    "kernel.zero_copy_sends"));
    return 0;
}

/**
 * --dump-swap: boot a machine, drive a ghost working set through the
 * eviction pipeline (swap everything eligible out in one batch, fault
 * part of it back in), then print the swap-slot table, the clock hand,
 * batch geometry and the seal-key generation — the state the paging
 * tentpole keeps, none of which lets the OS read a page.
 */
int
dumpSwap()
{
    kern::SystemConfig cfg;
    cfg.memFrames = 4096;
    cfg.diskBlocks = 4096;
    cfg.rsaBits = 384;
    kern::System sys(cfg);
    sys.boot();

    int rc = sys.runProcess("swapdump", [&](kern::UserApi &api) {
        uint64_t pid = api.pid();
        constexpr uint64_t kPages = 12;
        hw::Vaddr base = api.allocGhost(kPages);
        if (!base)
            return 1;
        std::vector<uint8_t> page(hw::pageSize, 0x6b);
        for (uint64_t i = 0; i < kPages; i++) {
            page[0] = uint8_t(i);
            if (!api.ghostWrite(base + i * hw::pageSize, page.data(),
                                page.size()))
                return 1;
        }
        // Evict eight pages through the batched pipeline, then fault
        // three back, so the dump shows used slots, a mid-ring clock
        // hand and nonzero batch/cluster counters all at once. The
        // clock evicts in ring order, so the faulted vas were swapped.
        if (sys.kernel().swapOutGhost(pid, 8) != 8)
            return 1;
        uint64_t v = 0;
        for (uint64_t i = 0; i < 3; i++)
            if (!api.ghostRead(base + i * hw::pageSize, &v, sizeof(v)))
                return 1;

        const sim::VgConfig &vg = sys.ctx().config();
        const kern::SwapArea *swap = sys.kernel().swapArea();
        std::printf("vg_lint: ghost swap: fast-path %s, eviction "
                    "batch %u page(s), read cluster %u slot(s), "
                    "seal-key gen %llu\n",
                    vg.swapFastPath ? "on" : "off", vg.swapBatchPages,
                    kern::SwapArea::readaheadSlots,
                    (unsigned long long)sys.vm().sealKeyGeneration());
        std::printf("vg_lint: swap area: %llu slot(s) x %llu blocks "
                    "at block %llu; used %llu free %llu; last batch "
                    "%llu page(s)\n",
                    (unsigned long long)swap->slotCount(),
                    (unsigned long long)kern::SwapArea::blocksPerSlot,
                    (unsigned long long)swap->firstBlock(),
                    (unsigned long long)swap->usedSlots(),
                    (unsigned long long)swap->freeSlots(),
                    (unsigned long long)swap->lastBatchPages());
        const std::vector<kern::SwapSlot> &slots = swap->slots();
        for (uint32_t i = 0; i < slots.size(); i++) {
            const kern::SwapSlot &s = slots[i];
            if (!s.used)
                continue;
            std::printf("vg_lint:   slot %u: pid %llu va 0x%llx gen "
                        "%llu len %u block %llu\n",
                        i, (unsigned long long)s.pid,
                        (unsigned long long)s.va,
                        (unsigned long long)s.gen, s.len,
                        (unsigned long long)(swap->firstBlock() +
                                             uint64_t(i) *
                                                 kern::SwapArea::
                                                     blocksPerSlot));
        }
        const kern::GhostClock &clock = sys.kernel().ghostClock();
        if (auto hand = clock.handPage())
            std::printf("vg_lint: clock: %zu resident ghost page(s); "
                        "hand at pid %llu va 0x%llx\n",
                        clock.size(), (unsigned long long)hand->first,
                        (unsigned long long)hand->second);
        else
            std::printf("vg_lint: clock: empty\n");
        const sim::StatSet &st = sys.ctx().stats();
        std::printf("vg_lint: stats: pages_stored %llu pages_loaded "
                    "%llu write_batches %llu read_clusters %llu "
                    "ghost_swapouts %llu ghost_swapins %llu\n",
                    (unsigned long long)st.get("swap.pages_stored"),
                    (unsigned long long)st.get("swap.pages_loaded"),
                    (unsigned long long)st.get("swap.write_batches"),
                    (unsigned long long)st.get("swap.read_clusters"),
                    (unsigned long long)st.get("kernel.ghost_swapouts"),
                    (unsigned long long)st.get("kernel.ghost_swapins"));
        return 0;
    });
    if (rc != 0)
        std::fprintf(stderr,
                     "vg_lint: --dump-swap workload failed (%d)\n", rc);
    return rc == 0 ? 0 : 2;
}

/**
 * --dump-fleet: run a small fleet with one injected machine failure,
 * then print the control-plane state the fleet subsystem keeps — the
 * fabric topology (link state, frame counters), the balancer's
 * per-machine health and connection accounting, and every tenant's
 * key-chain position. Keys themselves are never printed: the dump
 * shows generations, the only thing the control plane holds.
 */
int
dumpFleet()
{
    fleet::FleetConfig cfg;
    cfg.machines = 3;
    cfg.tenants = 8;
    cfg.system.memFrames = 4096;
    cfg.system.diskBlocks = 4096;
    cfg.system.rsaBits = 384;
    cfg.policy = fleet::LbPolicy::ConsistentHash;
    cfg.mode = fleet::TrafficMode::OpenLoop;
    cfg.requests = 48;
    // Slow arrivals: the run spans several epochs, so the epoch-2
    // failure injection lands mid-workload.
    cfg.openLoopRps = 4000.0;
    cfg.knobs.concurrency = 6;
    cfg.knobs.ghostPagesPerTenant = 4;

    fleet::Fleet fl(cfg);
    fl.scheduleFailure(1, 2);
    fleet::FleetResult res = fl.run();

    std::printf("vg_lint: fleet: %u machine(s), %u tenant(s), seed "
                "%llu, policy %s; %llu served %llu failed %llu "
                "dropped in %llu epoch(s)\n",
                cfg.machines, cfg.tenants,
                (unsigned long long)cfg.system.vg.seed,
                fleet::lbPolicyName(cfg.policy),
                (unsigned long long)res.served,
                (unsigned long long)res.failures,
                (unsigned long long)res.dropped,
                (unsigned long long)res.epochs);

    fleet::Fabric &fab = fl.fabric();
    fleet::LoadBalancer &lb = fl.lb();
    std::printf("vg_lint: fabric: %u point-to-point DescRing pair(s), "
                "LB node is its own clock domain\n",
                fab.machineCount());
    for (unsigned m = 0; m < fab.machineCount(); m++)
        std::printf("vg_lint:   link %u: %s, %llu frame(s) to machine, "
                    "%llu to LB; lb %s, active conns %llu, routed "
                    "%llu, served %llu\n",
                    m, fab.linkDown(m) ? "DOWN" : "up",
                    (unsigned long long)fab.framesToMachine(m),
                    (unsigned long long)fab.framesToLb(m),
                    lb.healthy(m) ? "healthy" : "EJECTED",
                    (unsigned long long)lb.activeConns(m),
                    (unsigned long long)lb.routedTotal(m),
                    (unsigned long long)res.machineServed[m]);

    for (const fleet::Tenant &t : fl.tenants().all())
        std::printf("vg_lint:   tenant %u (%s): primary %u, key gen "
                    "%llu, %llu migration(s), %llu request(s) "
                    "%llu byte(s)\n",
                    t.id, t.name.c_str(), t.primary,
                    (unsigned long long)t.keyGeneration,
                    (unsigned long long)t.migrations,
                    (unsigned long long)t.requestsServed,
                    (unsigned long long)t.bytesServed);

    bool ok = res.served > 0 && res.tenantFailures == 0 &&
              !lb.healthy(1);
    if (!ok)
        std::fprintf(stderr,
                     "vg_lint: --dump-fleet workload failed (served "
                     "%llu, tenant failures %llu, machine 1 %s)\n",
                     (unsigned long long)res.served,
                     (unsigned long long)res.tenantFailures,
                     lb.healthy(1) ? "not ejected" : "ejected");
    return ok ? 0 : 2;
}

int
selfTest()
{
    Options opt; // full instrumentation, full policy
    cc::TranslateResult tr = compile(opt, kSelfTestSrc);
    if (!tr.ok) {
        std::fprintf(stderr, "vg_lint: self-test translate failed: %s\n",
                     tr.error.c_str());
        return 1;
    }
    cc::McodeVerifier verifier(policyFor(opt));

    cc::McodeVerifyResult clean = verifier.verify(*tr.image);
    if (!clean.ok()) {
        std::fprintf(stderr,
                     "vg_lint: self-test FAILED: %zu finding(s) on the "
                     "clean compile:\n%s\n",
                     clean.findings.size(), clean.message().c_str());
        return 1;
    }

    size_t injected = 0, detected = 0;
    for (cc::Miscompile kind : cc::allMiscompiles()) {
        size_t sites =
            cc::miscompileSites(*tr.image, kind).size();
        for (size_t s = 0; s < sites; s++) {
            cc::MachineImage bad = *tr.image;
            cc::injectMiscompile(bad, kind, s);
            injected++;
            if (!verifier.verify(bad).ok())
                detected++;
            else
                std::fprintf(stderr,
                             "vg_lint: self-test MISS: %s site %zu "
                             "went undetected\n",
                             cc::miscompileName(kind), s);
        }
    }
    std::printf("vg_lint: self-test: 0 findings clean, %zu/%zu "
                "injected miscompiles detected\n",
                detected, injected);
    if (detected != injected || injected == 0)
        return 1;

    // Iflow leg: the ghost-handling module compiles clean, and every
    // information-flow miscompile site is caught by the IflowVerifier
    // while remaining invisible to the safety verifier.
    cc::TranslateResult gtr = compile(opt, kIflowSelfTestSrc);
    if (!gtr.ok) {
        std::fprintf(stderr,
                     "vg_lint: self-test translate failed: %s\n",
                     gtr.error.c_str());
        return 1;
    }
    cc::IflowVerifier iverifier;
    cc::IflowResult iclean = iverifier.verify(*gtr.image);
    if (!iclean.ok()) {
        std::fprintf(stderr,
                     "vg_lint: self-test FAILED: %zu iflow finding(s) "
                     "on the clean compile:\n%s\n",
                     iclean.findings.size(),
                     iclean.message().c_str());
        return 1;
    }
    size_t iinjected = 0, idetected = 0;
    const cc::Miscompile iflowKinds[] = {
        cc::Miscompile::IflowDropSeal,
        cc::Miscompile::IflowRawStore,
        cc::Miscompile::IflowStatLeak,
    };
    for (cc::Miscompile kind : iflowKinds) {
        size_t sites = cc::miscompileSites(*gtr.image, kind).size();
        for (size_t s = 0; s < sites; s++) {
            cc::MachineImage bad = *gtr.image;
            cc::injectMiscompile(bad, kind, s);
            iinjected++;
            bool caught = !iverifier.verify(bad).ok();
            bool invisible = verifier.verify(bad).ok();
            if (caught && invisible)
                idetected++;
            else
                std::fprintf(stderr,
                             "vg_lint: self-test MISS: %s site %zu "
                             "(%s)\n",
                             cc::miscompileName(kind), s,
                             caught ? "visible to mverify"
                                    : "undetected by iflow");
        }
    }
    std::printf("vg_lint: self-test: 0 iflow findings clean, %zu/%zu "
                "injected leaks detected\n",
                idetected, iinjected);
    return idetected == iinjected && iinjected > 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        if (arg == "--native")
            opt.config = sim::VgConfig::native();
        else if (arg == "--no-sandbox")
            opt.config.sandboxMemory = false;
        else if (arg == "--no-cfi")
            opt.config.cfi = false;
        else if (arg == "--no-fuse")
            opt.config.fuseSandboxMasks = false;
        else if (arg == "--require-sandbox")
            opt.requireSandbox = true;
        else if (arg == "--require-cfi")
            opt.requireCfi = true;
        else if (arg == "--self-test")
            opt.selfTest = true;
        else if (arg == "--iflow")
            opt.iflow = true;
        else if (arg == "--dump-iflow")
            opt.dumpIflow = true;
        else if (arg == "--dump-traces")
            opt.dumpTraces = true;
        else if (arg == "--dump-rings")
            opt.dumpRings = true;
        else if (arg == "--dump-swap")
            opt.dumpSwap = true;
        else if (arg == "--dump-fleet")
            opt.dumpFleet = true;
        else if (arg == "--inject") {
            if (++i >= argc)
                return usage();
            std::string spec = argv[i];
            size_t colon = spec.find(':');
            std::string kind = spec.substr(0, colon);
            if (!cc::parseMiscompile(kind, opt.injectKind)) {
                std::fprintf(stderr,
                             "vg_lint: unknown miscompile kind '%s'\n",
                             kind.c_str());
                return 2;
            }
            if (colon != std::string::npos)
                opt.injectSite =
                    (size_t)std::strtoull(spec.c_str() + colon + 1,
                                          nullptr, 10);
            opt.haveInject = true;
        } else if (arg == "--help" || arg == "-h") {
            printUsage(stdout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
            std::fprintf(stderr, "vg_lint: unknown option '%s'\n",
                         arg.c_str());
            return usage();
        } else if (opt.input.empty())
            opt.input = arg;
        else
            return usage();
    }

    if (opt.selfTest)
        return selfTest();
    if (opt.dumpRings)
        return dumpRings();
    if (opt.dumpSwap)
        return dumpSwap();
    if (opt.dumpFleet)
        return dumpFleet();
    if (opt.input.empty())
        return usage();

    std::string text;
    if (opt.input == "-") {
        std::ostringstream ss;
        ss << std::cin.rdbuf();
        text = ss.str();
    } else {
        std::ifstream f(opt.input);
        if (!f) {
            std::fprintf(stderr, "vg_lint: cannot open '%s'\n",
                         opt.input.c_str());
            return 2;
        }
        std::ostringstream ss;
        ss << f.rdbuf();
        text = ss.str();
    }
    if (opt.dumpIflow)
        return dumpIflow(opt, text);
    if (opt.dumpTraces)
        return dumpTraces(opt, text);
    return lint(opt, text);
}
