/**
 * @file
 * Trace-tier splicer: turn one recorded hot path into a trace block.
 *
 * The Executor's profiling counters detect hot loop heads (back-edge
 * targets) and hot function entries; when one crosses the threshold the
 * executor records the next pass over it as a sequence of instruction
 * indices plus, for every conditional branch, the direction taken. This
 * module turns that recording into machine code: a trace block appended
 * to a copy of the image in which
 *
 *  - non-control instructions are copied verbatim (so sandbox-mask
 *    sequences and CFI labels survive byte-for-byte and
 *    matchSandboxMaskSeq still recognizes them),
 *  - the recorded direction of every branch falls through to the next
 *    block slot, while the other direction becomes a side-exit jump to
 *    its original address in the home function,
 *  - a loop-closing path jumps back to the block head, and a linear
 *    (cut) path ends in a jump to the recorded continuation address.
 *
 * Side-exit stubs and closing jumps that have no counterpart in the
 * original instruction stream are recorded in TraceInfo::freeOffs; the
 * executor models them at zero cost, so a trace pass retires exactly
 * the instructions and cycles the interpreter would have. The block is
 * registered as a pseudo-function so the machine-code verifier proves
 * it with the same rules as any function (plus the VG-TR side-exit
 * rules); nothing here is trusted — Translator::spliceTraces re-runs
 * the verifier on the result before signing it.
 */

#ifndef VG_COMPILER_TRACE_HH
#define VG_COMPILER_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "compiler/mcode.hh"

namespace vg::cc
{

/** One recorded dispatch: an instruction index in the original image
 *  and, for JumpIfZero, whether the branch was taken. */
struct TraceStep
{
    uint32_t idx = 0;
    uint8_t taken = 0;
};

/** One recorded hot path, ready to splice. */
struct TraceRequest
{
    std::string home;        ///< enclosing function name
    uint64_t anchorAddr = 0; ///< loop head / entry address recorded at
    /** True when the recorded path closed back to the anchor (a loop);
     *  false for a linear trace cut at the length cap or at an
     *  untraceable instruction. */
    bool loop = false;
    /** Resume address after the last step for linear traces. */
    uint64_t contAddr = 0;
    std::vector<TraceStep> steps;
};

/** Outcome of building one spliced image. */
struct SpliceBuildResult
{
    bool ok = false;
    std::string error;
    MachineImage image;
};

/** True for ops a trace may contain (straight-line compute + memory +
 *  local control; calls and returns end or abort a recording). */
bool traceableOp(MOp op);

/**
 * Append one trace block built from @p req to a copy of @p base.
 * @p cfiHead controls whether a loop-anchored block gets a synthesized
 * (zero-cost) entry CfiLabel so the verifier's entry-label rule holds;
 * pass the compile config's cfi flag. Fails (ok = false) on malformed
 * requests — out-of-range indices, untraceable ops, empty paths.
 */
SpliceBuildResult buildSplicedImage(const MachineImage &base,
                                    const TraceRequest &req,
                                    bool cfiHead);

} // namespace vg::cc

#endif // VG_COMPILER_TRACE_HH
