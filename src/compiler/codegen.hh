/**
 * @file
 * VIR -> machine code lowering.
 */

#ifndef VG_COMPILER_CODEGEN_HH
#define VG_COMPILER_CODEGEN_HH

#include <vector>

#include "compiler/mcode.hh"
#include "vir/module.hh"

namespace vg::cc
{

/** One function lowered to machine code with *local* jump targets
 *  (instruction indices within the function). */
struct LoweredFunc
{
    std::string name;
    int numParams = 0;
    int numRegs = 0;
    uint64_t frameBytes = 0;
    std::vector<MInst> code;
};

/**
 * Lower @p fn. Jump/JumpIfZero imm fields hold local instruction
 * indices; calls are symbolic (CallExt) until layout; ConstI with a
 * non-empty callee is an address-of-function awaiting relocation.
 */
LoweredFunc lowerFunction(const vir::Function &fn);

/**
 * Lay out lowered functions into a contiguous image at @p code_base,
 * resolving local jumps to absolute addresses, intra-module calls to
 * CallDirect and address-of-function constants to entry addresses.
 */
MachineImage layoutImage(const std::string &module_name,
                         std::vector<LoweredFunc> funcs,
                         uint64_t code_base);

} // namespace vg::cc

#endif // VG_COMPILER_CODEGEN_HH
