/**
 * @file
 * Trace splicer implementation.
 *
 * Emission rules (see trace.hh for the model):
 *
 *  - non-control ops: verbatim copy; consecutive recorded steps must be
 *    physically consecutive, so the copy preserves mask sequences.
 *  - Jump: re-emitted targeting the next block slot (or the block head
 *    for the loop-closing edge, or the continuation for a linear cut);
 *    cost 1, exactly the instruction it replaces.
 *  - JumpIfZero taken: re-emitted targeting the next block slot, then a
 *    zero-cost side-exit stub Jump to the original fall-through.
 *  - JumpIfZero not taken: re-emitted verbatim — its taken target is
 *    already the side exit.
 *  - tail: paths that fell through (or branched away) after the last
 *    step get a zero-cost closing Jump to the head / continuation.
 *
 * Every target that would land on the anchor is redirected to the block
 * head: the two addresses are execution-equivalent (the head is either
 * the copy of the anchor instruction or a zero-cost label directly in
 * front of it), and staying inside the block avoids a pointless bounce
 * through the interpreter.
 */

#include "compiler/trace.hh"

#include "sim/log.hh"

namespace vg::cc
{

bool
traceableOp(MOp op)
{
    switch (op) {
      case MOp::ConstI:
      case MOp::Mov:
      case MOp::Add:
      case MOp::Sub:
      case MOp::Mul:
      case MOp::UDiv:
      case MOp::URem:
      case MOp::And:
      case MOp::Or:
      case MOp::Xor:
      case MOp::Shl:
      case MOp::LShr:
      case MOp::AShr:
      case MOp::ICmp:
      case MOp::SandboxAddr:
      case MOp::Load:
      case MOp::Store:
      case MOp::Memcpy:
      case MOp::FrameAddr:
      case MOp::Jump:
      case MOp::JumpIfZero:
      case MOp::CfiLabel:
        return true;
      default:
        return false;
    }
}

namespace
{

SpliceBuildResult
fail(std::string msg)
{
    SpliceBuildResult r;
    r.error = std::move(msg);
    return r;
}

MInst
jumpTo(uint64_t addr)
{
    MInst j;
    j.op = MOp::Jump;
    j.imm = addr;
    return j;
}

} // namespace

SpliceBuildResult
buildSplicedImage(const MachineImage &base, const TraceRequest &req,
                  bool cfiHead)
{
    const size_t n = req.steps.size();
    if (n == 0)
        return fail("empty trace path");
    auto homeIt = base.functions.find(req.home);
    if (homeIt == base.functions.end())
        return fail("trace home '" + req.home + "' not in image");
    if (!base.contains(req.anchorAddr))
        return fail("trace anchor is not an instruction boundary");
    if (!req.loop && !base.contains(req.contAddr))
        return fail("trace continuation is not an instruction "
                    "boundary");

    auto byteAddr = [&](uint64_t idx) {
        return base.codeBase + idx * mInstBytes;
    };
    const uint32_t anchorIdx =
        uint32_t((req.anchorAddr - base.codeBase) / mInstBytes);
    if (req.steps[0].idx != anchorIdx)
        return fail("trace path does not start at its anchor");

    // Validate the path: every step in range and traceable, every
    // consecutive pair connected by the recorded control flow.
    for (size_t i = 0; i < n; i++) {
        const TraceStep &s = req.steps[i];
        if (s.idx >= base.code.size())
            return fail("trace step index out of range");
        const MInst &m = base.code[s.idx];
        if (!traceableOp(m.op))
            return fail(std::string("untraceable op in trace path"));
        uint64_t next_addr;
        if (m.op == MOp::Jump)
            next_addr = m.imm;
        else if (m.op == MOp::JumpIfZero && s.taken)
            next_addr = m.imm;
        else
            next_addr = byteAddr(s.idx + 1);
        uint64_t expect = i + 1 < n ? byteAddr(req.steps[i + 1].idx)
                          : req.loop ? req.anchorAddr
                                     : req.contAddr;
        if (next_addr != expect)
            return fail("trace path is not connected at step " +
                        std::to_string(i));
    }

    SpliceBuildResult out;
    out.image = base;
    MachineImage &img = out.image;

    const uint64_t blockBase = base.codeEnd();

    TraceInfo info;
    info.home = req.home;
    info.name =
        req.home + "$tr" + std::to_string(base.traces.size());
    info.anchorAddr = req.anchorAddr;
    info.entryAddr = blockBase;
    if (img.functions.count(info.name))
        return fail("trace name collision: " + info.name);

    // Pass 1: slot layout. A synthesized head label is needed when CFI
    // is on and the path does not already start with the home's entry
    // label (i.e. for loop-head anchors).
    const bool synthHead =
        cfiHead && !(base.code[req.steps[0].idx].op == MOp::CfiLabel &&
                     base.code[req.steps[0].idx].imm == cfiLabelValue);
    std::vector<uint32_t> firstSlot(n);
    uint32_t slots = synthHead ? 1 : 0;
    for (size_t i = 0; i < n; i++) {
        firstSlot[i] = slots;
        const MInst &m = base.code[req.steps[i].idx];
        slots += m.op == MOp::JumpIfZero && req.steps[i].taken ? 2 : 1;
    }
    const MInst &lastInst = base.code[req.steps[n - 1].idx];
    const bool needTail =
        !(lastInst.op == MOp::Jump ||
          (lastInst.op == MOp::JumpIfZero && req.steps[n - 1].taken));

    auto slotAddr = [&](uint32_t slot) {
        return blockBase + slot * mInstBytes;
    };
    // Where control continues after step i when it stays on the trace.
    auto nextOnTrace = [&](size_t i) -> uint64_t {
        if (i + 1 < n)
            return slotAddr(firstSlot[i + 1]);
        return req.loop ? info.entryAddr : req.contAddr;
    };
    // Side exits (and verbatim branch targets) that land on the anchor
    // stay inside the block instead.
    auto mapExit = [&](uint64_t addr) {
        return req.loop && addr == req.anchorAddr ? info.entryAddr
                                                  : addr;
    };

    // Pass 2: emission.
    if (synthHead) {
        MInst label;
        label.op = MOp::CfiLabel;
        label.imm = cfiLabelValue;
        info.freeOffs.push_back(uint32_t(img.code.size() -
                                         base.code.size()));
        img.code.push_back(std::move(label));
    }
    for (size_t i = 0; i < n; i++) {
        const MInst &m = base.code[req.steps[i].idx];
        const uint32_t orig = req.steps[i].idx;
        if (m.op == MOp::Jump) {
            img.code.push_back(jumpTo(nextOnTrace(i)));
        } else if (m.op == MOp::JumpIfZero) {
            MInst g = m;
            if (req.steps[i].taken) {
                g.imm = nextOnTrace(i);
                img.code.push_back(std::move(g));
                info.guards++;
                info.freeOffs.push_back(
                    uint32_t(img.code.size() - base.code.size()));
                img.code.push_back(
                    jumpTo(mapExit(byteAddr(orig + 1))));
            } else {
                g.imm = mapExit(g.imm);
                img.code.push_back(std::move(g));
                info.guards++;
            }
        } else {
            img.code.push_back(m);
        }
    }
    if (needTail) {
        info.freeOffs.push_back(uint32_t(img.code.size() -
                                         base.code.size()));
        img.code.push_back(
            jumpTo(req.loop ? info.entryAddr : req.contAddr));
    }

    info.length = uint32_t(img.code.size() - base.code.size());
    if (info.length != slots + (needTail ? 1u : 0u))
        sim::panic("trace splice: slot layout mismatch");

    const FuncInfo &home = homeIt->second;
    FuncInfo fi;
    fi.name = info.name;
    fi.entryAddr = info.entryAddr;
    fi.frameBytes = home.frameBytes;
    fi.numParams = 0;
    fi.numRegs = home.numRegs;
    img.functions[fi.name] = fi;
    img.traces.push_back(std::move(info));

    // Splicing invalidates the base signature; the caller
    // (Translator::spliceTraces) re-verifies and re-signs.
    img.signature = crypto::Digest{};

    out.ok = true;
    return out;
}

} // namespace vg::cc
