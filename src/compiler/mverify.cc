/**
 * @file
 * McodeVerifier implementation.
 *
 * Verification is per function (function extents are recovered from the
 * sorted FuncInfo entry addresses; layout packs functions contiguously)
 * and proceeds in three layers:
 *
 *  1. Structural (always): operand registers in range, jump immediates
 *     on instruction boundaries inside the same function, direct-call
 *     immediates at function entries, and no fallthrough off the end.
 *  2. CFI (policy.requireCfi): entry + return-site labels, no raw
 *     Ret/CallInd, and label-value uniqueness (cfiLabelValue must not
 *     appear as a forgeable data immediate).
 *  3. Sandbox (policy.requireSandbox): a forward dataflow analysis over
 *     the instruction-granularity CFG. The abstract state is the set of
 *     registers proven masked; the meet at join points is intersection
 *     (a register is masked only if masked on every incoming path).
 *     SandboxAddr generates its destination; so does the final Mul of a
 *     matched unfused mask sequence, but only when no jump targets the
 *     sequence interior (a mid-sequence entry would skip part of the
 *     mask). Mov propagates maskedness; every other definition kills
 *     it. At the fixpoint every reachable Load/Store/Memcpy address
 *     register must be in the masked set.
 *
 * Layer 1 runs unconditionally because layers 2 and 3 assume registers
 * are in range; a function with register errors skips the dataflow to
 * avoid indexing bitsets out of bounds.
 */

#include "compiler/mverify.hh"

#include <algorithm>
#include <cstdio>
#include <map>

#include "compiler/passes.hh"
#include "compiler/trace.hh"

namespace vg::cc
{

const char *
ruleId(MRule rule)
{
    switch (rule) {
    case MRule::UnmaskedAccess: return "VG-SB-01";
    case MRule::RawRet: return "VG-CFI-01";
    case MRule::RawIndirectCall: return "VG-CFI-02";
    case MRule::MissingEntryLabel: return "VG-CFI-03";
    case MRule::MissingReturnLabel: return "VG-CFI-04";
    case MRule::LabelForgery: return "VG-CFI-05";
    case MRule::BadBranchTarget: return "VG-ST-01";
    case MRule::BadCallTarget: return "VG-ST-02";
    case MRule::BadRegister: return "VG-ST-03";
    case MRule::FallsOffEnd: return "VG-ST-04";
    case MRule::SideExitEscape: return "VG-TR-01";
    case MRule::SideExitWeakerState: return "VG-TR-02";
    case MRule::TraceBadOp: return "VG-TR-03";
    }
    return "VG-??";
}

std::string
McodeFinding::render(uint64_t entryAddr) const
{
    char buf[96];
    if (entryAddr && addr >= entryAddr)
        std::snprintf(buf, sizeof(buf), "+0x%llx",
                      (unsigned long long)(addr - entryAddr));
    else
        std::snprintf(buf, sizeof(buf), " @ 0x%llx",
                      (unsigned long long)addr);
    std::string s = function + buf;
    s += ": [";
    s += ruleId(rule);
    s += "] ";
    s += message;
    return s;
}

std::string
McodeVerifyResult::message() const
{
    std::string s;
    for (const McodeFinding &f : findings) {
        if (!s.empty())
            s += '\n';
        s += f.render();
    }
    return s;
}

namespace
{

/** Dense bitset over a function's registers. */
class RegSet
{
  public:
    RegSet() = default;
    RegSet(int numRegs, bool all)
        : _words((size_t)(numRegs + 63) / 64, all ? ~0ull : 0ull)
    {
    }

    void set(int r) { _words[(size_t)r >> 6] |= 1ull << (r & 63); }
    void clear(int r) { _words[(size_t)r >> 6] &= ~(1ull << (r & 63)); }
    bool
    test(int r) const
    {
        return (_words[(size_t)r >> 6] >> (r & 63)) & 1;
    }

    /** this &= other; returns true when this changed. */
    bool
    intersect(const RegSet &other)
    {
        bool changed = false;
        for (size_t i = 0; i < _words.size(); i++) {
            uint64_t w = _words[i] & other._words[i];
            changed |= w != _words[i];
            _words[i] = w;
        }
        return changed;
    }

    /** True when every register set in @p other is also set here. */
    bool
    covers(const RegSet &other) const
    {
        for (size_t i = 0; i < _words.size(); i++)
            if (other._words[i] & ~_words[i])
                return false;
        return true;
    }

  private:
    std::vector<uint64_t> _words;
};

/** A function's extent as instruction indices into image.code. */
struct FuncRange
{
    const FuncInfo *info = nullptr;
    size_t begin = 0;
    size_t end = 0;
};

/** The destination register an instruction writes, or -1. */
int
defReg(const MInst &m)
{
    switch (m.op) {
    case MOp::Store:
    case MOp::Memcpy:
    case MOp::Jump:
    case MOp::JumpIfZero:
    case MOp::Ret:
    case MOp::CheckRet:
    case MOp::CfiLabel: return -1;
    default: return m.dst;
    }
}

struct RegUse
{
    int reg;
    const char *role;
};

/** Registers an instruction reads, with their role names. */
void
forEachUse(const MInst &m, std::vector<RegUse> &out)
{
    out.clear();
    switch (m.op) {
    case MOp::ConstI:
    case MOp::FrameAddr:
    case MOp::Jump:
    case MOp::CfiLabel: break;
    case MOp::Mov:
    case MOp::SandboxAddr: out.push_back({m.a, "src"}); break;
    case MOp::Add:
    case MOp::Sub:
    case MOp::Mul:
    case MOp::UDiv:
    case MOp::URem:
    case MOp::And:
    case MOp::Or:
    case MOp::Xor:
    case MOp::Shl:
    case MOp::LShr:
    case MOp::AShr:
    case MOp::ICmp:
        out.push_back({m.a, "lhs"});
        out.push_back({m.b, "rhs"});
        break;
    case MOp::Load: out.push_back({m.a, "addr"}); break;
    case MOp::Store:
        out.push_back({m.a, "addr"});
        out.push_back({m.b, "value"});
        break;
    case MOp::Memcpy:
        out.push_back({m.a, "dst addr"});
        out.push_back({m.b, "src addr"});
        out.push_back({m.c, "len"});
        break;
    case MOp::JumpIfZero: out.push_back({m.a, "cond"}); break;
    case MOp::CallDirect:
    case MOp::CallExt: break;
    case MOp::CallInd:
    case MOp::CallIndChecked: out.push_back({m.a, "target"}); break;
    case MOp::Ret:
    case MOp::CheckRet:
        if (m.a >= 0)
            out.push_back({m.a, "retval"});
        break;
    }
    for (int arg : m.args)
        out.push_back({arg, "arg"});
}

bool
isCallOp(MOp op)
{
    return op == MOp::CallDirect || op == MOp::CallExt ||
           op == MOp::CallInd || op == MOp::CallIndChecked;
}

/** Fixpoint of the forward masked-register dataflow over one function
 *  extent (see file header), from a given entry state. */
struct MaskFlow
{
    std::vector<RegSet> in;
    std::vector<bool> reached;
};

MaskFlow
maskFlow(const MachineImage &img, const FuncRange &r, int numRegs,
         const RegSet &entry)
{
    const size_t n = r.end - r.begin;
    MaskFlow out;
    out.in.assign(n, RegSet());
    out.reached.assign(n, false);
    if (n == 0)
        return out;

    auto targetIdx = [&](const MInst &m) -> size_t {
        if (!img.contains(m.imm))
            return SIZE_MAX;
        size_t idx = (size_t)((m.imm - img.codeBase) / mInstBytes);
        if (idx < r.begin || idx >= r.end)
            return SIZE_MAX;
        return idx;
    };

    std::vector<bool> isJumpTarget(n, false);
    for (size_t i = r.begin; i < r.end; i++) {
        const MInst &m = img.code[i];
        if (m.op != MOp::Jump && m.op != MOp::JumpIfZero)
            continue;
        size_t t = targetIdx(m);
        if (t != SIZE_MAX)
            isJumpTarget[t - r.begin] = true;
    }

    // Mask generators: SandboxAddr, and the final Mul of a matched
    // unfused sequence whose interior no jump can enter.
    std::vector<int> maskGen(n, -1);
    for (size_t i = 0; i < n; i++) {
        const MInst &m = img.code[r.begin + i];
        if (m.op == MOp::SandboxAddr) {
            maskGen[i] = m.dst;
            continue;
        }
        int dst = -1;
        if (i + sandboxMaskSeqLen <= n &&
            matchSandboxMaskSeq(img.code, r.begin + i, dst) >= 0) {
            bool enterable = false;
            for (size_t k = 1; k < sandboxMaskSeqLen; k++)
                enterable |= isJumpTarget[i + k];
            if (!enterable)
                maskGen[i + sandboxMaskSeqLen - 1] = dst;
        }
    }

    out.in[0] = entry;
    out.reached[0] = true;

    // Register bounds are re-checked here (not just in layer 1) because
    // a trace checker runs this over its home function regardless of
    // the home's own layer-1 outcome.
    auto transfer = [&](size_t i, RegSet &state) {
        const MInst &m = img.code[r.begin + i];
        bool movMasked = m.op == MOp::Mov && m.a >= 0 && m.a < numRegs &&
                         state.test(m.a);
        int d = defReg(m);
        if (d >= 0 && d < numRegs)
            state.clear(d);
        if (maskGen[i] >= 0 && maskGen[i] < numRegs)
            state.set(maskGen[i]);
        else if (movMasked && m.dst >= 0 && m.dst < numRegs)
            state.set(m.dst);
    };

    auto successors = [&](size_t i, size_t succ[2]) -> int {
        const MInst &m = img.code[r.begin + i];
        int cnt = 0;
        if (m.op == MOp::Ret || m.op == MOp::CheckRet)
            return 0;
        if (m.op == MOp::Jump || m.op == MOp::JumpIfZero) {
            size_t t = targetIdx(m);
            if (t != SIZE_MAX)
                succ[cnt++] = t - r.begin;
            if (m.op == MOp::Jump)
                return cnt;
        }
        if (i + 1 < n)
            succ[cnt++] = i + 1;
        return cnt;
    };

    std::vector<size_t> work{0};
    std::vector<bool> inWork(n, false);
    inWork[0] = true;
    while (!work.empty()) {
        size_t i = work.back();
        work.pop_back();
        inWork[i] = false;
        RegSet state = out.in[i];
        transfer(i, state);
        size_t succ[2];
        int cnt = successors(i, succ);
        for (int k = 0; k < cnt; k++) {
            size_t s = succ[k];
            bool changed;
            if (!out.reached[s]) {
                out.in[s] = state;
                out.reached[s] = true;
                changed = true;
            } else {
                changed = out.in[s].intersect(state);
            }
            if (changed && !inWork[s]) {
                inWork[s] = true;
                work.push_back(s);
            }
        }
    }
    return out;
}

/** Per-function verification context. */
class FuncChecker
{
  public:
    /**
     * @param trace non-null when @p range is a spliced trace block;
     *              enables the VG-TR rules and relaxes VG-ST-01 for
     *              side exits into @p home.
     * @param home  extent of the trace's home function (trace mode).
     */
    FuncChecker(const MachineImage &image, const FuncRange &range,
                const McodePolicy &policy,
                const std::vector<uint64_t> &entryAddrs,
                std::vector<McodeFinding> &findings,
                const TraceInfo *trace = nullptr,
                const FuncRange *home = nullptr)
        : _img(image), _r(range), _policy(policy),
          _entryAddrs(entryAddrs), _findings(findings), _trace(trace),
          _home(home)
    {
    }

    void
    run()
    {
        bool regsOk = checkRegisters();
        checkStructure();
        if (_policy.requireCfi)
            checkCfi();
        if (_policy.requireSandbox && regsOk)
            checkSandbox();
    }

  private:
    uint64_t addrOf(size_t idx) const
    {
        return _img.codeBase + idx * mInstBytes;
    }

    void
    report(MRule rule, size_t idx, std::string msg)
    {
        McodeFinding f;
        f.rule = rule;
        f.severity = MSeverity::Error;
        f.function = _r.info->name;
        f.addr = addrOf(idx);
        f.message = std::move(msg);
        _findings.push_back(std::move(f));
    }

    /** Layer 1a: every operand register inside [0, numRegs). */
    bool
    checkRegisters()
    {
        const int numRegs = _r.info->numRegs;
        bool ok = true;
        std::vector<RegUse> uses;
        for (size_t i = _r.begin; i < _r.end; i++) {
            const MInst &m = _img.code[i];
            int d = defReg(m);
            if (d >= numRegs) {
                report(MRule::BadRegister, i,
                       "destination register %" + std::to_string(d) +
                           " out of range (function has " +
                           std::to_string(numRegs) + ")");
                ok = false;
            }
            forEachUse(m, uses);
            for (const RegUse &u : uses) {
                if (u.reg < 0 || u.reg >= numRegs) {
                    report(MRule::BadRegister, i,
                           std::string(u.role) + " register " +
                               std::to_string(u.reg) +
                               " out of range (function has " +
                               std::to_string(numRegs) + ")");
                    ok = false;
                }
            }
        }
        return ok;
    }

    /** Resolve a local jump immediate to an index, or SIZE_MAX. */
    size_t
    jumpTargetIdx(const MInst &m) const
    {
        if (!_img.contains(m.imm))
            return SIZE_MAX;
        size_t idx = (size_t)((m.imm - _img.codeBase) / mInstBytes);
        if (idx < _r.begin || idx >= _r.end)
            return SIZE_MAX;
        return idx;
    }

    /** Resolve a jump immediate into the home function, or SIZE_MAX
     *  (trace mode only). */
    size_t
    homeTargetIdx(const MInst &m) const
    {
        if (!_home || !_img.contains(m.imm))
            return SIZE_MAX;
        size_t idx = (size_t)((m.imm - _img.codeBase) / mInstBytes);
        if (idx < _home->begin || idx >= _home->end)
            return SIZE_MAX;
        return idx;
    }

    /** Layer 1b: branch/call targets and function termination. In
     *  trace mode, jumps may also side-exit into the home function
     *  (VG-TR-01 otherwise) and call/return ops are banned outright
     *  (VG-TR-03). */
    void
    checkStructure()
    {
        if (_r.begin >= _r.end) {
            report(MRule::FallsOffEnd, _r.begin, "function has no code");
            return;
        }
        for (size_t i = _r.begin; i < _r.end; i++) {
            const MInst &m = _img.code[i];
            char hex[32];
            std::snprintf(hex, sizeof(hex), "0x%llx",
                          (unsigned long long)m.imm);
            if (_trace && !traceableOp(m.op)) {
                report(MRule::TraceBadOp, i,
                       "trace block contains a call or return "
                       "(traces may only leave through side exits)");
                continue;
            }
            if (m.op == MOp::Jump || m.op == MOp::JumpIfZero) {
                if (_trace) {
                    if (!_img.contains(m.imm))
                        report(MRule::SideExitEscape, i,
                               std::string("side exit target ") + hex +
                                   " is not an instruction boundary "
                                   "in the code region");
                    else if (jumpTargetIdx(m) == SIZE_MAX &&
                             homeTargetIdx(m) == SIZE_MAX)
                        report(MRule::SideExitEscape, i,
                               std::string("side exit target ") + hex +
                                   " lands outside the trace and its "
                                   "home function");
                    continue;
                }
                if (!_img.contains(m.imm))
                    report(MRule::BadBranchTarget, i,
                           std::string("jump target ") + hex +
                               " is not an instruction boundary in "
                               "the code region");
                else if (jumpTargetIdx(m) == SIZE_MAX)
                    report(MRule::BadBranchTarget, i,
                           std::string("jump target ") + hex +
                               " escapes the enclosing function");
            } else if (m.op == MOp::CallDirect) {
                if (!_img.contains(m.imm) ||
                    !std::binary_search(_entryAddrs.begin(),
                                        _entryAddrs.end(), m.imm))
                    report(MRule::BadCallTarget, i,
                           std::string("call target ") + hex +
                               " is not a function entry");
            }
        }
        const MInst &last = _img.code[_r.end - 1];
        if (last.op != MOp::Jump && last.op != MOp::Ret &&
            last.op != MOp::CheckRet)
            report(MRule::FallsOffEnd, _r.end - 1,
                   "control can fall past the end of the function");
    }

    /** Layer 2: CFI labels, checked returns/calls, label uniqueness. */
    void
    checkCfi()
    {
        if (_r.begin >= _r.end)
            return;
        const MInst &entry = _img.code[_r.begin];
        if (entry.op != MOp::CfiLabel || entry.imm != cfiLabelValue)
            report(MRule::MissingEntryLabel, _r.begin,
                   "function entry is not a CfiLabel");
        for (size_t i = _r.begin; i < _r.end; i++) {
            const MInst &m = _img.code[i];
            if (m.op == MOp::Ret)
                report(MRule::RawRet, i,
                       "uninstrumented Ret (expected CheckRet)");
            if (m.op == MOp::CallInd)
                report(MRule::RawIndirectCall, i,
                       "uninstrumented CallInd (expected "
                       "CallIndChecked)");
            if (isCallOp(m.op)) {
                bool labeled = i + 1 < _r.end &&
                               _img.code[i + 1].op == MOp::CfiLabel &&
                               _img.code[i + 1].imm == cfiLabelValue;
                if (!labeled)
                    report(MRule::MissingReturnLabel, i,
                           "call is not followed by a return-site "
                           "CfiLabel");
            }
            // Label uniqueness: the label value must never be
            // constructible as ordinary data, or a hostile kernel could
            // manufacture valid-looking control-flow targets.
            if ((m.op == MOp::ConstI || m.op == MOp::FrameAddr) &&
                m.imm == cfiLabelValue)
                report(MRule::LabelForgery, i,
                       "cfiLabelValue appears as a non-label "
                       "immediate");
            if (m.op == MOp::CfiLabel && m.imm != cfiLabelValue)
                report(MRule::LabelForgery, i,
                       "CfiLabel carries a non-standard label value");
        }
    }

    /** Layer 3: forward masked-register dataflow (see file header).
     *
     * Trace mode differs in two ways. First, the entry state is the
     * home function's fixpoint state at the anchor — exactly what the
     * interpreter can rely on at the moment the trace is entered —
     * instead of the empty set. Second, VG-TR-02: at every side exit
     * the trace's state must cover the home's fixpoint state at the
     * landing point, so code downstream of the landing keeps every
     * masking fact it was verified under. An honest splice satisfies
     * this by construction (it replays the very instructions the home
     * path executes); a splice that drops or clobbers a mask does not.
     */
    void
    checkSandbox()
    {
        const size_t n = _r.end - _r.begin;
        if (n == 0)
            return;
        const int numRegs = _r.info->numRegs;

        RegSet entry(numRegs, false);
        MaskFlow homeFlow;
        bool haveHome = false;
        if (_trace && _home && _home->info &&
            _home->info->numRegs == numRegs) {
            homeFlow = maskFlow(_img, *_home, numRegs,
                                RegSet(numRegs, false));
            haveHome = true;
            if (_img.contains(_trace->anchorAddr)) {
                size_t a = (size_t)((_trace->anchorAddr -
                                     _img.codeBase) /
                                    mInstBytes);
                if (a >= _home->begin && a < _home->end &&
                    homeFlow.reached[a - _home->begin])
                    entry = homeFlow.in[a - _home->begin];
            }
        }

        MaskFlow flow = maskFlow(_img, _r, numRegs, entry);

        // Report at the fixpoint, in address order, so diagnostics are
        // deterministic and never reflect a transient optimistic state.
        for (size_t i = 0; i < n; i++) {
            if (!flow.reached[i])
                continue;
            const MInst &m = _img.code[_r.begin + i];
            auto flag = [&](int reg, const char *role) {
                if (!flow.in[i].test(reg))
                    report(MRule::UnmaskedAccess, _r.begin + i,
                           std::string(role) + " register %" +
                               std::to_string(reg) +
                               " is not provably sandbox-masked");
            };
            if (m.op == MOp::Load)
                flag(m.a, "load address");
            else if (m.op == MOp::Store)
                flag(m.a, "store address");
            else if (m.op == MOp::Memcpy) {
                flag(m.a, "memcpy destination");
                flag(m.b, "memcpy source");
            }
        }

        if (!_trace || !haveHome)
            return;
        for (size_t i = 0; i < n; i++) {
            if (!flow.reached[i])
                continue;
            const MInst &m = _img.code[_r.begin + i];
            if (m.op != MOp::Jump && m.op != MOp::JumpIfZero)
                continue;
            if (jumpTargetIdx(m) != SIZE_MAX)
                continue; // stays inside the trace
            size_t t = homeTargetIdx(m);
            if (t == SIZE_MAX || !homeFlow.reached[t - _home->begin])
                continue;
            const RegSet &needed = homeFlow.in[t - _home->begin];
            if (flow.in[i].covers(needed))
                continue;
            int missing = -1;
            for (int reg = 0; reg < numRegs; reg++) {
                if (needed.test(reg) && !flow.in[i].test(reg)) {
                    missing = reg;
                    break;
                }
            }
            report(MRule::SideExitWeakerState, i + _r.begin,
                   "side exit masked-register state is weaker than "
                   "the interpreter path at the landing (register %" +
                       std::to_string(missing) + " unproven)");
        }
    }

    const MachineImage &_img;
    const FuncRange &_r;
    const McodePolicy &_policy;
    const std::vector<uint64_t> &_entryAddrs;
    std::vector<McodeFinding> &_findings;
    const TraceInfo *_trace = nullptr;
    const FuncRange *_home = nullptr;
};

} // namespace

McodeVerifyResult
McodeVerifier::verify(const MachineImage &image) const
{
    McodeVerifyResult result;

    std::vector<FuncRange> ranges;
    ranges.reserve(image.functions.size());
    for (const auto &[name, fi] : image.functions) {
        (void)name;
        FuncRange r;
        r.info = &fi;
        ranges.push_back(r);
    }
    std::sort(ranges.begin(), ranges.end(),
              [](const FuncRange &a, const FuncRange &b) {
                  return a.info->entryAddr < b.info->entryAddr;
              });

    std::vector<uint64_t> entryAddrs;
    entryAddrs.reserve(ranges.size());
    for (const FuncRange &r : ranges)
        entryAddrs.push_back(r.info->entryAddr);

    for (size_t i = 0; i < ranges.size(); i++) {
        FuncRange &r = ranges[i];
        if (!image.contains(r.info->entryAddr)) {
            McodeFinding f;
            f.rule = MRule::BadCallTarget;
            f.function = r.info->name;
            f.addr = r.info->entryAddr;
            f.message = "function entry is not an instruction "
                        "boundary in the code region";
            result.findings.push_back(std::move(f));
            r.info = nullptr;
            continue;
        }
        r.begin =
            (size_t)((r.info->entryAddr - image.codeBase) / mInstBytes);
        r.end = i + 1 < ranges.size() &&
                        image.contains(ranges[i + 1].info->entryAddr)
                    ? (size_t)((ranges[i + 1].info->entryAddr -
                                image.codeBase) /
                               mInstBytes)
                    : image.code.size();
    }

    // Trace blocks are registered as pseudo-functions; match each range
    // to its TraceInfo by entry address so the checker can apply the
    // VG-TR rules against the trace's home function extent.
    std::map<uint64_t, const TraceInfo *> traceAt;
    for (const TraceInfo &t : image.traces)
        traceAt[t.entryAddr] = &t;
    std::map<std::string, const FuncRange *> rangeByName;
    for (const FuncRange &r : ranges)
        if (r.info)
            rangeByName[r.info->name] = &r;

    for (const FuncRange &r : ranges) {
        if (!r.info)
            continue;
        const TraceInfo *trace = nullptr;
        const FuncRange *home = nullptr;
        auto tIt = traceAt.find(r.info->entryAddr);
        if (tIt != traceAt.end()) {
            trace = tIt->second;
            auto hIt = rangeByName.find(trace->home);
            if (hIt == rangeByName.end()) {
                McodeFinding f;
                f.rule = MRule::SideExitEscape;
                f.function = r.info->name;
                f.addr = r.info->entryAddr;
                f.message = "trace block's home function '" +
                            trace->home + "' is not in the image";
                result.findings.push_back(std::move(f));
                continue;
            }
            home = hIt->second;
        }
        FuncChecker checker(image, r, _policy, entryAddrs,
                            result.findings, trace, home);
        checker.run();
        result.functionsChecked++;
        result.instsChecked += r.end - r.begin;
    }
    return result;
}

} // namespace vg::cc
