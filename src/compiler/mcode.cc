#include "compiler/mcode.hh"

namespace vg::cc
{

namespace
{

void
put64(std::vector<uint8_t> &out, uint64_t v)
{
    for (int i = 0; i < 8; i++)
        out.push_back(uint8_t(v >> (8 * i)));
}

void
putStr(std::vector<uint8_t> &out, const std::string &s)
{
    put64(out, s.size());
    out.insert(out.end(), s.begin(), s.end());
}

} // namespace

std::vector<uint8_t>
MachineImage::serializeForSigning() const
{
    std::vector<uint8_t> out;
    putStr(out, moduleName);
    put64(out, codeBase);
    put64(out, code.size());
    for (const MInst &m : code) {
        out.push_back(uint8_t(m.op));
        out.push_back(uint8_t(m.width));
        out.push_back(uint8_t(m.pred));
        put64(out, uint64_t(int64_t(m.dst)));
        put64(out, uint64_t(int64_t(m.a)));
        put64(out, uint64_t(int64_t(m.b)));
        put64(out, uint64_t(int64_t(m.c)));
        put64(out, m.imm);
        putStr(out, m.callee);
        put64(out, m.args.size());
        for (int arg : m.args)
            put64(out, uint64_t(int64_t(arg)));
    }
    put64(out, functions.size());
    for (const auto &[name, info] : functions) {
        putStr(out, name);
        put64(out, info.entryAddr);
        put64(out, info.frameBytes);
        put64(out, uint64_t(info.numParams));
        put64(out, uint64_t(info.numRegs));
    }
    put64(out, traces.size());
    for (const TraceInfo &t : traces) {
        putStr(out, t.name);
        putStr(out, t.home);
        put64(out, t.anchorAddr);
        put64(out, t.entryAddr);
        put64(out, t.length);
        put64(out, t.guards);
        put64(out, t.freeOffs.size());
        for (uint32_t off : t.freeOffs)
            put64(out, off);
    }
    out.push_back(instrumented ? 1 : 0);
    return out;
}

} // namespace vg::cc
