/**
 * @file
 * Adversarial miscompile injection (test tooling).
 *
 * To prove the machine-code verifier has teeth, this header models a
 * buggy (or hostile) instrumentation pipeline: each Miscompile kind
 * describes one way the sandbox/CFI passes could silently emit unsafe
 * code, and injectMiscompile() applies it to a laid-out MachineImage at
 * an enumerable site. The McodeVerifySweep property test asserts that
 * the verifier flags every kind at every site, and vg_lint exposes the
 * same kinds via --inject so CI can exercise a known-bad fixture.
 *
 * Injection happens post-layout (via Translator::setPostLayoutHook or
 * directly on an image) so it models exactly what the verifier sees:
 * the signed bytes, not the pass pipeline's intermediate state.
 */

#ifndef VG_COMPILER_MINJECT_HH
#define VG_COMPILER_MINJECT_HH

#include <cstddef>
#include <string>
#include <vector>

#include "compiler/mcode.hh"

namespace vg::cc
{

/** Ways the instrumentation could miscompile. */
enum class Miscompile : uint8_t
{
    DropMask,         ///< masking op degraded to a plain Mov
    ClobberMask,      ///< masked register clobbered between mask and use
    StripEntryLabel,  ///< function-entry CfiLabel removed
    StripReturnLabel, ///< return-site CfiLabel removed
    RawRet,           ///< CheckRet un-fused back to a raw Ret
    RawIndirectCall,  ///< CallIndChecked degraded to raw CallInd
    BadJumpTarget,    ///< jump immediate knocked off the inst boundary
    ForgeLabel,       ///< a data constant rewritten to cfiLabelValue

    // Trace-splice miscompiles: ways a buggy (or hostile) trace builder
    // could corrupt a superinstruction block. Sites exist only on
    // images that carry spliced traces.
    TraceExitHijack,    ///< side exit retargeted outside trace + home
    TraceDropMask,      ///< mask inside a trace degraded to a plain Mov
    TraceStripHeadLabel,///< trace head CfiLabel removed

    // Information-flow miscompiles: ways a buggy pipeline could leak
    // ghost data while still emitting perfectly sandboxed, CFI-clean
    // code (invisible to the McodeVerifier; caught by IflowVerifier).
    // Sites exist only on images that actually carry ghost taint.
    IflowDropSeal,     ///< a seal/HMAC call degraded to a plain Mov
    IflowRawStore,     ///< sealed store redirected to the raw payload
    IflowStatLeak,     ///< ghost bytes copied into a stat-counter sink
    IflowTraceSmuggle, ///< taint smuggled through a superinstruction
};

/** All kinds, for sweeping. */
const std::vector<Miscompile> &allMiscompiles();

/** Stable CLI-friendly name, e.g. "drop-mask". */
const char *miscompileName(Miscompile kind);

/** Parse a name from miscompileName(); false if unknown. */
bool parseMiscompile(const std::string &name, Miscompile &kind);

/**
 * Instruction indices in @p image where @p kind can be applied. Empty
 * when the image contains no susceptible site (e.g. RawIndirectCall on
 * a module with no indirect calls).
 */
std::vector<size_t> miscompileSites(const MachineImage &image,
                                    Miscompile kind);

/**
 * Apply @p kind at miscompileSites(image, kind)[siteIdx], mutating the
 * image in place (the signature is left stale; callers re-sign or only
 * verify). Returns false when siteIdx is out of range.
 */
bool injectMiscompile(MachineImage &image, Miscompile kind,
                      size_t siteIdx);

} // namespace vg::cc

#endif // VG_COMPILER_MINJECT_HH
