/**
 * @file
 * Machine-level peephole: fuse the sandbox masking sequence.
 *
 * sandboxPass emits, per memory operand, a fixed straight-line
 * 13-instruction ghost/SVA masking sequence (see sandbox_pass.cc). The
 * paper's point is that this compiles to a handful of native machine
 * instructions; interpreting it one opcode at a time makes it the
 * dominant cost of instrumented execution. This pass recognizes the
 * exact sequence in lowered machine code and folds it into a single
 * SandboxAddr instruction that the executor dispatches once.
 *
 * Semantics are byte-identical by construction: SandboxAddr computes
 *
 *   masked = a | (uint64(a >= ghostBase) << 39)
 *   dst    = masked * uint64(!(svaBase <= masked < svaEnd))
 *
 * which is exactly what the unfused sequence computes, and it charges
 * the same simulated instruction count and cycles (sandboxMaskSeqLen)
 * so fuel, stats and clock behaviour do not change. Only the host-side
 * dispatch count drops. The VIR-level pass — and therefore the
 * verifier's view of the module — is untouched.
 *
 * The pass runs on pre-layout code whose Jump/JumpIfZero targets are
 * local instruction indices; targets are remapped exactly as cfiPass
 * remaps them. A jump can only ever target the *start* of a masking
 * sequence (block boundaries never fall inside one, because sandboxPass
 * emits the sequence contiguously within a block), and every index of a
 * fused region remaps to the fused instruction.
 */

#include "compiler/passes.hh"
#include "hw/layout.hh"
#include "sim/log.hh"

namespace vg::cc
{

int
matchSandboxMaskSeq(const std::vector<MInst> &code, size_t i, int &dst)
{
    if (i + sandboxMaskSeqLen > code.size())
        return -1;
    const MInst *m = &code[i];

    auto isConst = [](const MInst &x, uint64_t imm) {
        return x.op == MOp::ConstI && x.imm == imm;
    };
    auto isCmp = [](const MInst &x, vir::CmpPred pred, int a, int b) {
        return x.op == MOp::ICmp && x.pred == pred && x.a == a &&
               x.b == b;
    };
    auto isBin = [](const MInst &x, MOp op, int a, int b) {
        return x.op == op && x.a == a && x.b == b;
    };

    if (!isConst(m[0], hw::ghostBase))
        return -1;
    int g = m[0].dst;
    if (m[1].op != MOp::ICmp || m[1].pred != vir::CmpPred::Uge ||
        m[1].b != g)
        return -1;
    int addr = m[1].a;
    int c1 = m[1].dst;
    if (!isConst(m[2], 39))
        return -1;
    int s = m[2].dst;
    if (!isBin(m[3], MOp::Shl, c1, s))
        return -1;
    int or_mask = m[3].dst;
    if (!isBin(m[4], MOp::Or, addr, or_mask))
        return -1;
    int masked = m[4].dst;
    if (!isConst(m[5], hw::svaBase) || !isConst(m[6], hw::svaEnd))
        return -1;
    int sb = m[5].dst, se = m[6].dst;
    if (!isCmp(m[7], vir::CmpPred::Uge, masked, sb) ||
        !isCmp(m[8], vir::CmpPred::Ult, masked, se))
        return -1;
    if (!isBin(m[9], MOp::And, m[7].dst, m[8].dst))
        return -1;
    int in_sva = m[9].dst;
    if (!isConst(m[10], 1))
        return -1;
    int one = m[10].dst;
    if (!isBin(m[11], MOp::Xor, in_sva, one))
        return -1;
    int keep = m[11].dst;
    if (!isBin(m[12], MOp::Mul, masked, keep))
        return -1;
    dst = m[12].dst;
    return addr;
}

PassStats
fuseSandboxPass(std::vector<MInst> &code)
{
    PassStats stats;
    std::vector<MInst> out;
    out.reserve(code.size());
    std::vector<uint64_t> remap(code.size(), 0);

    for (size_t i = 0; i < code.size();) {
        int dst = -1;
        int addr = matchSandboxMaskSeq(code, i, dst);
        if (addr >= 0) {
            for (size_t k = 0; k < sandboxMaskSeqLen; k++)
                remap[i + k] = out.size();
            MInst fused;
            fused.op = MOp::SandboxAddr;
            fused.dst = dst;
            fused.a = addr;
            out.push_back(fused);
            i += sandboxMaskSeqLen;
            stats.sitesInstrumented++;
            stats.instsRemoved += sandboxMaskSeqLen - 1;
        } else {
            remap[i] = out.size();
            out.push_back(std::move(code[i]));
            i++;
        }
    }

    for (MInst &m : out) {
        if (m.op == MOp::Jump || m.op == MOp::JumpIfZero) {
            if (m.imm >= remap.size())
                sim::panic("fuseSandboxPass: jump target %lu out of "
                           "range",
                           (unsigned long)m.imm);
            m.imm = remap[m.imm];
        }
    }

    code = std::move(out);
    return stats;
}

} // namespace vg::cc
