/**
 * @file
 * The Virtual Ghost compiler passes (S 5).
 *
 *  - sandboxPass: IR-level load/store/memcpy masking. Any kernel memory
 *    operand >= ghostBase is ORed with 2^39 so it cannot address ghost
 *    memory; operands inside SVA internal memory are rewritten to 0.
 *  - cfiPass: machine-level control-flow-integrity instrumentation
 *    (labels at function entries and return sites; checked returns and
 *    indirect calls). Ported from the Zeng et al. style pass the paper
 *    reuses.
 *  - mmapMaskPass: IR-level masking of mmap() return values in
 *    *application* code, defeating Iago attacks that return pointers
 *    into ghost memory (S 5).
 */

#ifndef VG_COMPILER_PASSES_HH
#define VG_COMPILER_PASSES_HH

#include <string>
#include <vector>

#include "compiler/mcode.hh"
#include "vir/module.hh"

namespace vg::cc
{

/** Statistics a pass reports (for tests and the micro bench). */
struct PassStats
{
    uint64_t sitesInstrumented = 0;
    uint64_t instsAdded = 0;
    uint64_t instsRemoved = 0;
};

/** Run the load/store sandboxing pass over every function in @p mod. */
PassStats sandboxPass(vir::Module &mod);

/**
 * Run the mmap-return masking pass: after every call to a function
 * whose name is in @p mmap_like, the returned pointer is masked out of
 * the ghost region exactly like a kernel memory operand.
 */
PassStats mmapMaskPass(vir::Module &mod,
                       const std::vector<std::string> &mmap_like);

/**
 * Machine-level CFI pass over one function's code. Rewrites the
 * instruction list in place:
 *  - inserts a CfiLabel at the entry,
 *  - inserts a CfiLabel after every call (the return site),
 *  - converts Ret -> CheckRet and CallInd -> CallIndChecked,
 *  - remaps intra-function jump targets (which are instruction indices
 *    until final layout).
 */
PassStats cfiPass(std::vector<MInst> &code);

/**
 * Machine-level peephole over one function's code (pre-layout, local
 * jump targets). Recognizes the sandboxMaskSeqLen-instruction ghost/SVA
 * masking sequence emitted by sandboxPass and folds each occurrence
 * into a single SandboxAddr instruction with byte-identical semantics.
 * Intra-function jump targets are remapped; runs before cfiPass.
 */
PassStats fuseSandboxPass(std::vector<MInst> &code);

/**
 * If the sandboxMaskSeqLen-instruction unfused masking sequence emitted
 * by sandboxPass starts at code[i], return the source address register
 * and set @p dst to the final (masked) register; return -1 otherwise.
 * Shared between the fusing peephole and the load-time machine-code
 * verifier (mverify.cc), which must recognize exactly the same shape.
 */
int matchSandboxMaskSeq(const std::vector<MInst> &code, size_t i,
                        int &dst);

} // namespace vg::cc

#endif // VG_COMPILER_PASSES_HH
