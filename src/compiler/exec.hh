/**
 * @file
 * The simulated processor executing compiled machine images.
 *
 * Models native execution of translated kernel-module code. Memory
 * accesses go through a MemPort (implemented by the kernel over the
 * simulated MMU), external symbols resolve through an ExternTable (the
 * kernel API exported to modules), and the CFI-checked instructions
 * enforce label semantics — a violation terminates the run, exactly as
 * Virtual Ghost terminates a kernel thread whose control flow goes
 * astray (S 4.5).
 */

#ifndef VG_COMPILER_EXEC_HH
#define VG_COMPILER_EXEC_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "compiler/mcode.hh"
#include "sim/context.hh"

namespace vg::cc
{

/** Data-memory access interface for executing code. */
class MemPort
{
  public:
    virtual ~MemPort() = default;

    /** Read @p bytes (1/2/4/8) at @p va; false on fault. */
    virtual bool read(uint64_t va, unsigned bytes, uint64_t &out) = 0;

    /** Write @p bytes at @p va; false on fault. */
    virtual bool write(uint64_t va, unsigned bytes, uint64_t val) = 0;

    /** Bulk copy; false on fault. */
    virtual bool copy(uint64_t dst, uint64_t src, uint64_t len) = 0;
};

/** External (kernel API) function: args in, return value out. */
using ExternFn = std::function<uint64_t(const std::vector<uint64_t> &)>;

/** Symbol table the kernel exports to loaded modules. */
struct ExternTable
{
    std::map<std::string, ExternFn> fns;
};

/** Why execution stopped abnormally. */
enum class ExecFault
{
    None,
    CfiViolation,
    MemFault,
    BadInstruction,
    DivideByZero,
    FuelExhausted,
    UnknownExtern,
    StackOverflow,
    BadCallTarget,
};

/** Outcome of running a function. */
struct ExecResult
{
    bool ok = false;
    uint64_t value = 0;
    ExecFault fault = ExecFault::None;
    std::string detail;
    uint64_t instsExecuted = 0;
};

/** Human-readable fault name. */
const char *faultName(ExecFault fault);

/** Executes one image's code. */
class Executor
{
  public:
    /**
     * @param stack_base  lowest address of the module stack region
     * @param stack_size  bytes available for frames
     */
    Executor(const MachineImage &image, MemPort &mem,
             const ExternTable &externs, sim::SimContext &ctx,
             uint64_t stack_base, uint64_t stack_size);

    /** Invoke @p name with @p args; returns when it returns/faults. */
    ExecResult call(const std::string &name,
                    const std::vector<uint64_t> &args);

    /** Invoke by entry address (SVA uses this for checked dispatch). */
    ExecResult callAddr(uint64_t entry_addr,
                        const std::vector<uint64_t> &args);

    /** Maximum instructions per invocation (default 50M). */
    void setFuel(uint64_t fuel) { _fuel = fuel; }

  private:
    struct Frame
    {
        std::vector<uint64_t> regs;
        uint64_t framePtr = 0;
        uint64_t returnAddr = 0;
        int callerDst = -1;
    };

    const FuncInfo *funcAt(uint64_t entry_addr) const;
    ExecResult run(const FuncInfo &entry_fn,
                   const std::vector<uint64_t> &args);

    const MachineImage &_image;
    MemPort &_mem;
    const ExternTable &_externs;
    sim::SimContext &_ctx;
    uint64_t _stackBase;
    uint64_t _stackSize;
    uint64_t _fuel = 50'000'000;
    std::map<uint64_t, const FuncInfo *> _byAddr;
};

} // namespace vg::cc

#endif // VG_COMPILER_EXEC_HH
