/**
 * @file
 * The simulated processor executing compiled machine images.
 *
 * Models native execution of translated kernel-module code. Memory
 * accesses go through a MemPort (implemented by the kernel over the
 * simulated MMU), external symbols resolve through an ExternTable (the
 * kernel API exported to modules), and the CFI-checked instructions
 * enforce label semantics — a violation terminates the run, exactly as
 * Virtual Ghost terminates a kernel thread whose control flow goes
 * astray (S 4.5).
 *
 * Fast-path engine: the Executor predecodes the image once at
 * construction into a dense index-addressed instruction array —
 * branch targets become array indices, direct-call targets become
 * FuncInfo pointers, extern callees and hot stat counters are interned
 * — so the per-instruction loop does no address arithmetic beyond one
 * bounds check, no string-keyed map lookup, and no per-frame heap
 * allocation (call frames are spans of one flat register stack that is
 * reused across runs).
 */

#ifndef VG_COMPILER_EXEC_HH
#define VG_COMPILER_EXEC_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "compiler/mcode.hh"
#include "sim/context.hh"

namespace vg::cc
{

/** Data-memory access interface for executing code. */
class MemPort
{
  public:
    virtual ~MemPort() = default;

    /** Read @p bytes (1/2/4/8) at @p va; false on fault. */
    virtual bool read(uint64_t va, unsigned bytes, uint64_t &out) = 0;

    /** Write @p bytes at @p va; false on fault. */
    virtual bool write(uint64_t va, unsigned bytes, uint64_t val) = 0;

    /** Bulk copy; false on fault. */
    virtual bool copy(uint64_t dst, uint64_t src, uint64_t len) = 0;
};

/** External (kernel API) function: args in, return value out. */
using ExternFn = std::function<uint64_t(const std::vector<uint64_t> &)>;

/** Symbol table the kernel exports to loaded modules. */
struct ExternTable
{
    std::map<std::string, ExternFn> fns;
};

/** Why execution stopped abnormally. */
enum class ExecFault
{
    None,
    CfiViolation,
    MemFault,
    BadInstruction,
    DivideByZero,
    FuelExhausted,
    UnknownExtern,
    StackOverflow,
    BadCallTarget,
};

/** Outcome of running a function. */
struct ExecResult
{
    bool ok = false;
    uint64_t value = 0;
    ExecFault fault = ExecFault::None;
    std::string detail;
    uint64_t instsExecuted = 0;
};

/** Human-readable fault name. */
const char *faultName(ExecFault fault);

/** Executes one image's code. */
class Executor
{
  public:
    /**
     * @param stack_base  lowest address of the module stack region
     * @param stack_size  bytes available for frames
     *
     * Predecodes the image and resolves extern callees against
     * @p externs; both must outlive the Executor, and extern entries
     * the image references must already be present.
     */
    Executor(const MachineImage &image, MemPort &mem,
             const ExternTable &externs, sim::SimContext &ctx,
             uint64_t stack_base, uint64_t stack_size);

    /** Invoke @p name with @p args; returns when it returns/faults. */
    ExecResult call(const std::string &name,
                    const std::vector<uint64_t> &args);

    /** Invoke a pre-resolved function of this image (hot dispatch
     *  path: no name lookup). */
    ExecResult call(const FuncInfo &fn,
                    const std::vector<uint64_t> &args);

    /** Invoke by entry address (SVA uses this for checked dispatch). */
    ExecResult callAddr(uint64_t entry_addr,
                        const std::vector<uint64_t> &args);

    /** Maximum instructions per invocation (default 50M). */
    void setFuel(uint64_t fuel) { _fuel = fuel; }

  private:
    /** One predecoded instruction: operands by value, control-flow
     *  targets as array indices, callees as resolved pointers. */
    struct DInst
    {
        MOp op = MOp::ConstI;
        vir::Width width = vir::Width::I64;
        vir::CmpPred pred = vir::CmpPred::Eq;
        /** Machine instructions this dispatch models (fused ops >1). */
        uint8_t cost = 1;
        int32_t dst = -1;
        int32_t a = -1;
        int32_t b = -1;
        int32_t c = -1;
        uint64_t imm = 0;
        /** Decoded index: jump target / direct-callee entry. */
        uint32_t target = 0;
        /** Call argument registers: span of _argPool. */
        uint32_t argsOff = 0;
        uint32_t argsCnt = 0;
        /** Resolved direct callee (null = not a function entry). */
        const FuncInfo *fn = nullptr;
        /** Resolved extern (null = unresolved symbol). */
        const ExternFn *ext = nullptr;
    };

    /** One call frame: a span of the flat register stack. */
    struct FrameRec
    {
        const FuncInfo *fn = nullptr; ///< enclosing function
        uint32_t regBase = 0;         ///< first register in _regStack
        uint32_t retIdx = 0;          ///< decoded resume index
        int32_t callerDst = -1;
        uint64_t framePtr = 0;
    };

    const FuncInfo *funcAt(uint64_t entry_addr) const;
    ExecResult run(const FuncInfo &entry_fn,
                   const std::vector<uint64_t> &args);
    static ExecResult badTarget(std::string detail);

    const MachineImage &_image;
    MemPort &_mem;
    const ExternTable &_externs;
    sim::SimContext &_ctx;
    uint64_t _stackBase;
    uint64_t _stackSize;
    uint64_t _fuel = 50'000'000;

    std::vector<DInst> _decoded;
    std::vector<int32_t> _argPool;
    /** Per-instruction-index FuncInfo for entry addresses (O(1)
     *  function lookup for indirect calls), null elsewhere. */
    std::vector<const FuncInfo *> _entryOf;

    /** Flat register stack + frame records, reused across runs (and
     *  used with stack discipline, so reentrant extern calls nest). */
    std::vector<uint64_t> _regStack;
    std::vector<FrameRec> _frames;

    sim::StatHandle _hInsts;
};

} // namespace vg::cc

#endif // VG_COMPILER_EXEC_HH
