/**
 * @file
 * The simulated processor executing compiled machine images.
 *
 * Models native execution of translated kernel-module code. Memory
 * accesses go through a MemPort (implemented by the kernel over the
 * simulated MMU), external symbols resolve through an ExternTable (the
 * kernel API exported to modules), and the CFI-checked instructions
 * enforce label semantics — a violation terminates the run, exactly as
 * Virtual Ghost terminates a kernel thread whose control flow goes
 * astray (S 4.5).
 *
 * Fast-path engine: the Executor predecodes the image once at
 * construction into a dense index-addressed instruction array —
 * branch targets become array indices, direct-call targets become
 * FuncInfo pointers, extern callees and hot stat counters are interned
 * — so the per-instruction loop does no address arithmetic beyond one
 * bounds check, no string-keyed map lookup, and no per-frame heap
 * allocation (call frames are spans of one flat register stack that is
 * reused across runs).
 *
 * Trace tier (VgConfig::traceTier): above the predecoded interpreter,
 * lightweight profiling counters on taken backward jumps and function
 * entries detect hot anchors. A hot anchor's next pass is recorded and
 * handed to Translator::spliceTrace, which lays the path out as a
 * superinstruction block appended to the image, re-proves the whole
 * spliced image with the machine-code verifier and re-signs it. The
 * Executor then redirects dispatch at the anchor into a threaded-code
 * runner. At adoption the verified block is compiled once more, into
 * a private micro-op array: adjacent instructions fuse into single
 * dispatches (mask+access, const+arith, compare+branch, trailing
 * jumps) and per-instruction cost bookkeeping becomes precomputed
 * prefix sums, so the hot loop does no accounting at all — counts and
 * cycles are reconstructed exactly at side exits and faults.
 * Architectural state, instruction counts, cycle counts and exec.*
 * stats are bit-identical with the tier off: fused micro-ops perform
 * every architectural write of their constituent instructions, blocks
 * are verbatim copies of the recorded path (glue instructions carry
 * cost 0) and clock/stat updates are commutative sums.
 */

#ifndef VG_COMPILER_EXEC_HH
#define VG_COMPILER_EXEC_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "compiler/mcode.hh"
#include "compiler/trace.hh"
#include "sim/context.hh"

namespace vg::cc
{

class Translator;

/** Data-memory access interface for executing code. */
class MemPort
{
  public:
    virtual ~MemPort() = default;

    /** Read @p bytes (1/2/4/8) at @p va; false on fault. */
    virtual bool read(uint64_t va, unsigned bytes, uint64_t &out) = 0;

    /** Write @p bytes at @p va; false on fault. */
    virtual bool write(uint64_t va, unsigned bytes, uint64_t val) = 0;

    /** Bulk copy; false on fault. */
    virtual bool copy(uint64_t dst, uint64_t src, uint64_t len) = 0;
};

/** External (kernel API) function: args in, return value out. */
using ExternFn = std::function<uint64_t(const std::vector<uint64_t> &)>;

/** Symbol table the kernel exports to loaded modules. */
struct ExternTable
{
    std::map<std::string, ExternFn> fns;
};

/** Why execution stopped abnormally. */
enum class ExecFault
{
    None,
    CfiViolation,
    MemFault,
    BadInstruction,
    DivideByZero,
    FuelExhausted,
    UnknownExtern,
    StackOverflow,
    BadCallTarget,
};

/** Outcome of running a function. */
struct ExecResult
{
    bool ok = false;
    uint64_t value = 0;
    ExecFault fault = ExecFault::None;
    std::string detail;
    uint64_t instsExecuted = 0;
};

/** Human-readable fault name. */
const char *faultName(ExecFault fault);

/** Executes one image's code. */
class Executor
{
  public:
    /**
     * @param stack_base  lowest address of the module stack region
     * @param stack_size  bytes available for frames
     *
     * Predecodes the image and resolves extern callees against
     * @p externs; both must outlive the Executor, and extern entries
     * the image references must already be present.
     */
    Executor(const MachineImage &image, MemPort &mem,
             const ExternTable &externs, sim::SimContext &ctx,
             uint64_t stack_base, uint64_t stack_size);

    /** Invoke @p name with @p args; returns when it returns/faults. */
    ExecResult call(const std::string &name,
                    const std::vector<uint64_t> &args);

    /** Invoke a pre-resolved function of this image (hot dispatch
     *  path: no name lookup). */
    ExecResult call(const FuncInfo &fn,
                    const std::vector<uint64_t> &args);

    /** Invoke by entry address (SVA uses this for checked dispatch). */
    ExecResult callAddr(uint64_t entry_addr,
                        const std::vector<uint64_t> &args);

    /** Maximum instructions per invocation (default 50M). The budget
     *  counts modeled machine instructions (DInst cost, i.e. fused
     *  width / trace retired count), not dispatch iterations, and is
     *  never overshot: a dispatch whose cost would exceed the budget
     *  faults FuelExhausted before executing. */
    void setFuel(uint64_t fuel) { _fuel = fuel; }

    /**
     * Turn on the trace tier, forming superinstruction blocks through
     * @p translator (which re-verifies and re-signs every spliced
     * image; must outlive the Executor). No-op when
     * VgConfig::traceTier is off or the VG_DISABLE_TRACE_TIER
     * environment variable is set — execution then stays purely
     * interpreted.
     */
    void enableTraceTier(Translator &translator);

    /** Image currently executed: the base image, or the newest
     *  verified + re-signed spliced generation. */
    const MachineImage &currentImage() const { return *_img; }

    /** Number of superinstruction traces formed so far. */
    uint64_t tracesFormed() const { return _traces.size(); }

  private:
    /** One predecoded instruction: operands by value, control-flow
     *  targets as array indices, callees as resolved pointers. */
    struct DInst
    {
        MOp op = MOp::ConstI;
        vir::Width width = vir::Width::I64;
        vir::CmpPred pred = vir::CmpPred::Eq;
        /** Machine instructions this dispatch models (fused ops >1). */
        uint8_t cost = 1;
        int32_t dst = -1;
        int32_t a = -1;
        int32_t b = -1;
        int32_t c = -1;
        uint64_t imm = 0;
        /** Decoded index: jump target / direct-callee entry. */
        uint32_t target = 0;
        /** Call argument registers: span of _argPool. */
        uint32_t argsOff = 0;
        uint32_t argsCnt = 0;
        /** Resolved direct callee (null = not a function entry). */
        const FuncInfo *fn = nullptr;
        /** Resolved extern (null = unresolved symbol). */
        const ExternFn *ext = nullptr;
    };

    /** One call frame: a span of the flat register stack. */
    struct FrameRec
    {
        const FuncInfo *fn = nullptr; ///< enclosing function
        uint32_t regBase = 0;         ///< first register in _regStack
        uint32_t retIdx = 0;          ///< decoded resume index
        int32_t callerDst = -1;
        uint64_t framePtr = 0;
    };

    /**
     * One superinstruction micro-op: one or more adjacent trace
     * instructions fused into a single dispatch. Fused micro-ops
     * perform every architectural register write of their constituent
     * instructions, and carry precomputed per-iteration cost/cycle
     * prefixes so the hot loop does no per-instruction bookkeeping —
     * exact totals are reconstructed at exits and faults.
     */
    struct UOp
    {
        enum class K : uint8_t
        {
            Nop,        ///< CfiLabel
            Bad,        ///< op a verified trace can never contain
            Const, Mov, Arith, ICmp, Sandbox, FrameAddr,
            Load, Store, Memcpy, Jump, JumpIfZero,
            // Fused pairs.
            ArithImm,   ///< ConstI + arith reading it
            CmpBranch,  ///< ICmp + JumpIfZero on its result
            MaskLoad,   ///< SandboxAddr + Load through the mask
            MaskStore,  ///< SandboxAddr + Store through the mask
            FrameMask,  ///< FrameAddr + SandboxAddr of it
            FrameLoad,  ///< FrameAddr + Load from it
            FrameStore, ///< FrameAddr + Store to it
            StoreLoad,  ///< adjacent Store then Load
            // Unfused masking sequence (fuseSandboxMasks = false):
            // the 13-instruction ghost/SVA sequence emulated in one
            // dispatch, every architectural register write performed
            // in order so side exits observe identical state.
            SandboxSeq, ///< the bare 13-inst sequence
            SeqLoad,    ///< sequence + Load through its result
            SeqStore,   ///< sequence + Store through its result
        };
        K kind = K::Nop;
        MOp op2 = MOp::ConstI; ///< sub-op selector for Arith/ArithImm
        vir::CmpPred pred = vir::CmpPred::Eq;
        uint8_t w1 = 8, w2 = 8; ///< access widths in bytes
        uint8_t c1 = 0, c2 = 0, cj = 0; ///< sub-op + fused-jump costs
        uint8_t e1 = 0; ///< success cycle extra of the first access
        bool nextExits = false;   ///< next is a decoded index (exit)
        bool targetExits = false; ///< target is a decoded index (exit)
        int32_t dst = -1, a = -1, b = -1, c = -1;
        int32_t dst2 = -1, a2 = -1, b2 = -1; ///< second sub-op operands
        uint64_t imm = 0;
        uint32_t next = 0;   ///< fallthrough / fused-jump successor
        uint32_t target = 0; ///< branch-taken successor
        uint32_t seq = 0;    ///< MaskSeq index (SandboxSeq/SeqLoad/
                             ///< SeqStore only)
        /** Per-iteration prefixes (exclusive / inclusive of this µop;
         *  inclusive cycles count success extras). */
        uint32_t instsBefore = 0, instsAfter = 0;
        uint64_t cyclesBefore = 0, cyclesAfter = 0;
    };

    /** Register wiring of one recognized unfused masking sequence:
     *  the address operand plus the thirteen destination registers in
     *  program order. The runner replays the writes sequentially, so
     *  behaviour is bit-identical even when registers alias. */
    struct MaskSeq
    {
        int32_t addr = -1;
        int32_t d[13] = {};
    };

    /** Runtime descriptor of one formed superinstruction block. */
    struct TraceRt
    {
        uint32_t head = 0;    ///< decoded index of the block's first inst
        uint32_t len = 0;     ///< block length in instructions
        uint32_t contIdx = UINT32_MAX; ///< linear continuation (side-exit
                                       ///< stat: exits elsewhere count)
        uint64_t iterCost = 0; ///< cost sum of the whole block (fuel
                               ///< pre-check bound per iteration)
        uint64_t iterCycles = 0; ///< static cycle sum per iteration
        std::vector<UOp> uops; ///< compiled superinstruction form
        std::vector<MaskSeq> seqs; ///< unfused-mask sequence wirings
    };

    /** In-flight hot-path recording. */
    struct RecState
    {
        bool active = false;
        uint32_t anchorIdx = 0;
        const FuncInfo *fn = nullptr;
        std::vector<TraceStep> steps;
    };

    const FuncInfo *funcAt(uint64_t entry_addr) const;
    ExecResult run(const FuncInfo &entry_fn,
                   const std::vector<uint64_t> &args);
    static ExecResult badTarget(std::string detail);

    /** Predecode image instructions [from, end) into _decoded. */
    void predecode(size_t from);

    /** Bump the profiling counter at @p anchor; may start recording. */
    void profileAnchor(uint32_t anchor);

    /** Close the active recording: splice (loop trace, or linear trace
     *  continuing at @p contIdx) or blacklist. True when a new spliced
     *  generation was adopted (callers must refresh decoded-array
     *  pointers). */
    bool endRecording(bool loop, uint32_t contIdx);

    /** Adopt a freshly verified spliced image as the current
     *  generation and register its newest trace block. */
    void adoptSpliced(std::shared_ptr<const MachineImage> image,
                      uint32_t anchorIdx, bool loop, uint32_t contIdx);

    /** Compile trace @p t's decoded block into its micro-op form
     *  (operand resolution, pair fusion, cost prefix sums). */
    void compileTrace(TraceRt &t);

    /** Superinstruction runner: execute block @p ti from its head until
     *  a side exit, fuel bailout or fault. Returns the decoded index to
     *  resume interpretation at, or SIZE_MAX when the run must stop
     *  (result.fault is set). */
    size_t runTraceBlock(uint32_t ti, ExecResult &result);

    const MachineImage &_image;
    MemPort &_mem;
    const ExternTable &_externs;
    sim::SimContext &_ctx;
    uint64_t _stackBase;
    uint64_t _stackSize;
    uint64_t _fuel = 50'000'000;

    std::vector<DInst> _decoded;
    std::vector<int32_t> _argPool;
    /** Per-instruction-index FuncInfo for entry addresses (O(1)
     *  function lookup for indirect calls), null elsewhere. */
    std::vector<const FuncInfo *> _entryOf;

    /** Flat register stack + frame records, reused across runs (and
     *  used with stack discipline, so reentrant extern calls nest). */
    std::vector<uint64_t> _regStack;
    std::vector<FrameRec> _frames;

    sim::StatHandle _hInsts;

    /** Current image: &_image until a splice is adopted. */
    const MachineImage *_img;
    /** Spliced generations, retained so FuncInfo/extern pointers into
     *  earlier images stay valid. */
    std::vector<std::shared_ptr<const MachineImage>> _gens;

    // Trace tier (all inert until enableTraceTier()).
    bool _tier = false;
    Translator *_traceTr = nullptr;
    uint32_t _origLen = 0;          ///< base-image instruction count
    uint32_t _hotThreshold = 50;
    size_t _traceMaxInsts = 512;
    size_t _traceMaxPerImage = 64;
    std::vector<uint32_t> _hotCount;  ///< per-anchor profiling counters
    std::vector<uint8_t> _blacklist;  ///< anchors that failed to splice
    std::vector<int32_t> _traceIdx;   ///< anchor idx -> _traces index
    std::vector<TraceRt> _traces;
    RecState _rec;
    sim::StatHandle _hTrExec = nullptr;
    sim::StatHandle _hTrSide = nullptr;
    sim::StatHandle _hTrInsts = nullptr;
};

} // namespace vg::cc

#endif // VG_COMPILER_EXEC_HH
