#include "compiler/exec.hh"

#include "hw/layout.hh"
#include "sim/log.hh"

namespace vg::cc
{

const char *
faultName(ExecFault fault)
{
    switch (fault) {
      case ExecFault::None:
        return "none";
      case ExecFault::CfiViolation:
        return "cfi-violation";
      case ExecFault::MemFault:
        return "memory-fault";
      case ExecFault::BadInstruction:
        return "bad-instruction";
      case ExecFault::DivideByZero:
        return "divide-by-zero";
      case ExecFault::FuelExhausted:
        return "fuel-exhausted";
      case ExecFault::UnknownExtern:
        return "unknown-extern";
      case ExecFault::StackOverflow:
        return "stack-overflow";
      case ExecFault::BadCallTarget:
        return "bad-call-target";
    }
    return "?";
}

Executor::Executor(const MachineImage &image, MemPort &mem,
                   const ExternTable &externs, sim::SimContext &ctx,
                   uint64_t stack_base, uint64_t stack_size)
    : _image(image), _mem(mem), _externs(externs), _ctx(ctx),
      _stackBase(stack_base), _stackSize(stack_size),
      _hInsts(ctx.stats().handle("exec.insts"))
{
    const size_t n = image.code.size();
    _entryOf.assign(n, nullptr);
    for (const auto &[name, info] : image.functions) {
        size_t idx = size_t((info.entryAddr - image.codeBase) /
                            mInstBytes);
        if (idx < n)
            _entryOf[idx] = &info;
    }

    // Predecode: one pass over the image, resolving everything that
    // does not depend on run-time values.
    _decoded.reserve(n);
    for (size_t i = 0; i < n; i++) {
        const MInst &m = image.code[i];
        DInst d;
        d.op = m.op;
        d.width = m.width;
        d.pred = m.pred;
        d.dst = m.dst;
        d.a = m.a;
        d.b = m.b;
        d.c = m.c;
        d.imm = m.imm;
        if (m.op == MOp::SandboxAddr)
            d.cost = uint8_t(sandboxMaskSeqLen);
        if (!m.args.empty()) {
            d.argsOff = uint32_t(_argPool.size());
            d.argsCnt = uint32_t(m.args.size());
            for (int r : m.args)
                _argPool.push_back(r);
        }
        switch (m.op) {
          case MOp::Jump:
          case MOp::JumpIfZero:
            // Codegen only emits in-image aligned targets; anything
            // else decodes to an out-of-range index that faults as
            // BadInstruction, matching the old at(pc) == null path.
            d.target = image.contains(m.imm)
                           ? uint32_t((m.imm - image.codeBase) /
                                      mInstBytes)
                           : uint32_t(n);
            break;
          case MOp::CallDirect:
            d.fn = image.contains(m.imm)
                       ? _entryOf[size_t((m.imm - image.codeBase) /
                                         mInstBytes)]
                       : nullptr;
            if (d.fn)
                d.target = uint32_t((d.fn->entryAddr - image.codeBase) /
                                    mInstBytes);
            break;
          case MOp::CallExt: {
            auto it = externs.fns.find(m.callee);
            if (it != externs.fns.end())
                d.ext = &it->second;
            break;
          }
          default:
            break;
        }
        _decoded.push_back(d);
    }
}

const FuncInfo *
Executor::funcAt(uint64_t entry_addr) const
{
    if (!_image.contains(entry_addr))
        return nullptr;
    return _entryOf[size_t((entry_addr - _image.codeBase) / mInstBytes)];
}

ExecResult
Executor::badTarget(std::string detail)
{
    ExecResult r;
    r.fault = ExecFault::BadCallTarget;
    r.detail = std::move(detail);
    return r;
}

ExecResult
Executor::call(const std::string &name, const std::vector<uint64_t> &args)
{
    auto it = _image.functions.find(name);
    if (it == _image.functions.end())
        return badTarget("no such function " + name);
    return run(it->second, args);
}

ExecResult
Executor::call(const FuncInfo &fn, const std::vector<uint64_t> &args)
{
    return run(fn, args);
}

ExecResult
Executor::callAddr(uint64_t entry_addr, const std::vector<uint64_t> &args)
{
    const FuncInfo *info = funcAt(entry_addr);
    if (!info)
        return badTarget(sim::strprintf("no function at %#lx",
                                        (unsigned long)entry_addr));
    return run(*info, args);
}

ExecResult
Executor::run(const FuncInfo &entry_fn, const std::vector<uint64_t> &args)
{
    ExecResult result;
    const DInst *code = _decoded.data();
    const size_t code_len = _decoded.size();
    sim::Clock &clock = _ctx.clock();

    // Stack discipline over the shared frame/register pools makes the
    // engine reentrant (an extern may call back into this Executor).
    const size_t frame_floor = _frames.size();
    const size_t reg_floor = _regStack.size();
    uint64_t sp = _stackBase + _stackSize;
    std::vector<uint64_t> ext_args; // reused for every CallExt this run

    auto byte_addr = [&](size_t idx) {
        return _image.codeBase + idx * mInstBytes;
    };

    auto push_frame = [&](const FuncInfo &fn, uint32_t ret_idx,
                          int32_t caller_dst) -> bool {
        if (fn.frameBytes + 4096 > sp - _stackBase)
            return false;
        sp -= fn.frameBytes;
        FrameRec fr;
        fr.fn = &fn;
        fr.regBase = uint32_t(_regStack.size());
        fr.retIdx = ret_idx;
        fr.callerDst = caller_dst;
        fr.framePtr = sp;
        // resize() value-initializes the new elements, so a recycled
        // span starts zeroed exactly like a fresh register file.
        _regStack.resize(_regStack.size() +
                             size_t(std::max(fn.numRegs, 1)),
                         0);
        _frames.push_back(fr);
        return true;
    };

    if (!push_frame(entry_fn, 0, -1)) {
        result.fault = ExecFault::StackOverflow;
        return result;
    }
    for (size_t i = 0;
         i < args.size() && i < size_t(entry_fn.numParams); i++)
        _regStack[_frames.back().regBase + i] = args[i];

    size_t pc = size_t((entry_fn.entryAddr - _image.codeBase) /
                       mInstBytes);

    auto fault = [&](ExecFault kind, const std::string &detail) {
        result.fault = kind;
        result.detail = detail;
        _ctx.stats().add(std::string("exec.fault.") + faultName(kind));
    };

    // Return from the current frame; true if the whole run finished.
    auto do_return = [&](uint64_t value, bool checked) -> bool {
        FrameRec done = _frames.back();
        _frames.pop_back();
        _regStack.resize(done.regBase);
        sp += done.fn->frameBytes;
        if (_frames.size() == frame_floor) {
            result.ok = true;
            result.value = value;
            return true;
        }
        if (checked) {
            // Validate the CFI label at the return site.
            clock.advance(_ctx.costs().cfiPerTransfer);
            if (done.retIdx >= code_len ||
                code[done.retIdx].op != MOp::CfiLabel ||
                code[done.retIdx].imm != cfiLabelValue) {
                fault(ExecFault::CfiViolation,
                      "return to unlabeled site");
                return true;
            }
        }
        if (done.callerDst >= 0)
            _regStack[_frames.back().regBase +
                      uint32_t(done.callerDst)] = value;
        pc = done.retIdx;
        return false;
    };

    // Enter a resolved callee, copying argument registers from the
    // caller's frame straight into the callee's (no temporary vector).
    auto enter_call = [&](const FuncInfo *callee, uint64_t target_addr,
                          uint32_t args_off, uint32_t args_cnt,
                          uint32_t ret_idx, int32_t dst) -> bool {
        if (!callee) {
            fault(ExecFault::BadCallTarget,
                  sim::strprintf("call to %#lx which is not a function "
                                 "entry",
                                 (unsigned long)target_addr));
            return false;
        }
        uint32_t caller_base = _frames.back().regBase;
        if (!push_frame(*callee, ret_idx, dst)) {
            fault(ExecFault::StackOverflow, "module stack exhausted");
            return false;
        }
        uint32_t callee_base = _frames.back().regBase;
        uint32_t n = std::min(args_cnt, uint32_t(callee->numParams));
        for (uint32_t i = 0; i < n; i++) {
            int32_t r = _argPool[args_off + i];
            _regStack[callee_base + i] =
                r < 0 ? 0 : _regStack[caller_base + uint32_t(r)];
        }
        pc = size_t((callee->entryAddr - _image.codeBase) / mInstBytes);
        return true;
    };

    while (true) {
        if (result.instsExecuted >= _fuel) {
            fault(ExecFault::FuelExhausted, "instruction budget spent");
            break;
        }
        if (pc >= code_len) {
            fault(ExecFault::BadInstruction,
                  sim::strprintf("pc %#lx outside code",
                                 (unsigned long)byte_addr(pc)));
            break;
        }
        const DInst &m = code[pc];
        result.instsExecuted += m.cost;
        clock.advance(m.cost);

        uint64_t *regs = _regStack.data() + _frames.back().regBase;
        auto reg = [&](int32_t r) -> uint64_t {
            return r < 0 ? 0 : regs[uint32_t(r)];
        };
        auto set = [&](int32_t r, uint64_t v) {
            if (r >= 0)
                regs[uint32_t(r)] = v;
        };

        size_t next_pc = pc + 1;
        bool stop = false;

        switch (m.op) {
          case MOp::ConstI:
            set(m.dst, m.imm);
            break;
          case MOp::Mov:
            set(m.dst, reg(m.a));
            break;
          case MOp::Add:
            set(m.dst, reg(m.a) + reg(m.b));
            break;
          case MOp::Sub:
            set(m.dst, reg(m.a) - reg(m.b));
            break;
          case MOp::Mul:
            set(m.dst, reg(m.a) * reg(m.b));
            break;
          case MOp::UDiv:
          case MOp::URem: {
            uint64_t d = reg(m.b);
            if (d == 0) {
                fault(ExecFault::DivideByZero, "division by zero");
                stop = true;
                break;
            }
            set(m.dst, m.op == MOp::UDiv ? reg(m.a) / d
                                         : reg(m.a) % d);
            break;
          }
          case MOp::And:
            set(m.dst, reg(m.a) & reg(m.b));
            break;
          case MOp::Or:
            set(m.dst, reg(m.a) | reg(m.b));
            break;
          case MOp::Xor:
            set(m.dst, reg(m.a) ^ reg(m.b));
            break;
          case MOp::Shl:
            set(m.dst, reg(m.a) << (reg(m.b) & 63));
            break;
          case MOp::LShr:
            set(m.dst, reg(m.a) >> (reg(m.b) & 63));
            break;
          case MOp::AShr:
            set(m.dst,
                uint64_t(int64_t(reg(m.a)) >> (reg(m.b) & 63)));
            break;
          case MOp::ICmp: {
            uint64_t a = reg(m.a), b = reg(m.b);
            int64_t sa = int64_t(a), sb = int64_t(b);
            bool v = false;
            switch (m.pred) {
              case vir::CmpPred::Eq:
                v = a == b;
                break;
              case vir::CmpPred::Ne:
                v = a != b;
                break;
              case vir::CmpPred::Ult:
                v = a < b;
                break;
              case vir::CmpPred::Ule:
                v = a <= b;
                break;
              case vir::CmpPred::Ugt:
                v = a > b;
                break;
              case vir::CmpPred::Uge:
                v = a >= b;
                break;
              case vir::CmpPred::Slt:
                v = sa < sb;
                break;
              case vir::CmpPred::Sle:
                v = sa <= sb;
                break;
              case vir::CmpPred::Sgt:
                v = sa > sb;
                break;
              case vir::CmpPred::Sge:
                v = sa >= sb;
                break;
            }
            set(m.dst, v ? 1 : 0);
            break;
          }
          case MOp::SandboxAddr: {
            // Fused ghost/SVA masking sequence; bit-identical to the
            // unfused 13-instruction form (see peephole.cc).
            uint64_t a = reg(m.a);
            uint64_t masked =
                a | (uint64_t(a >= hw::ghostBase) << 39);
            uint64_t keep = uint64_t(
                !(masked >= hw::svaBase && masked < hw::svaEnd));
            set(m.dst, masked * keep);
            break;
          }
          case MOp::Load: {
            uint64_t v = 0;
            if (!_mem.read(reg(m.a), unsigned(widthBytes(m.width)),
                           v)) {
                fault(ExecFault::MemFault,
                      sim::strprintf("load fault at %#lx",
                                     (unsigned long)reg(m.a)));
                stop = true;
                break;
            }
            clock.advance(1);
            set(m.dst, v);
            break;
          }
          case MOp::Store:
            if (!_mem.write(reg(m.a), unsigned(widthBytes(m.width)),
                            reg(m.b))) {
                fault(ExecFault::MemFault,
                      sim::strprintf("store fault at %#lx",
                                     (unsigned long)reg(m.a)));
                stop = true;
                break;
            }
            clock.advance(1);
            break;
          case MOp::Memcpy: {
            uint64_t len = reg(m.c);
            if (!_mem.copy(reg(m.a), reg(m.b), len)) {
                fault(ExecFault::MemFault, "memcpy fault");
                stop = true;
                break;
            }
            clock.advance(len / _ctx.costs().bulkBytesPerCycle + 1);
            break;
          }
          case MOp::FrameAddr:
            set(m.dst, _frames.back().framePtr + m.imm);
            break;
          case MOp::Jump:
            next_pc = m.target;
            break;
          case MOp::JumpIfZero:
            if (reg(m.a) == 0)
                next_pc = m.target;
            break;
          case MOp::CallDirect:
            if (!enter_call(m.fn, m.imm, m.argsOff, m.argsCnt,
                            uint32_t(next_pc), m.dst))
                stop = true;
            if (!stop)
                continue;
            break;
          case MOp::CallInd:
          case MOp::CallIndChecked: {
            uint64_t target = reg(m.a);
            if (m.op == MOp::CallIndChecked) {
                clock.advance(_ctx.costs().cfiPerTransfer);
                // Mask the target out of user space (paper: the CFI
                // check "masks the target address to ensure that it is
                // not a user-space address").
                target |= hw::kernelBase;
                const DInst *at_target =
                    _image.contains(target)
                        ? &code[size_t((target - _image.codeBase) /
                                       mInstBytes)]
                        : nullptr;
                if (!at_target || at_target->op != MOp::CfiLabel ||
                    at_target->imm != cfiLabelValue) {
                    fault(ExecFault::CfiViolation,
                          sim::strprintf("indirect call to %#lx "
                                         "without label",
                                         (unsigned long)target));
                    stop = true;
                    break;
                }
            }
            if (!enter_call(funcAt(target), target, m.argsOff,
                            m.argsCnt, uint32_t(next_pc), m.dst))
                stop = true;
            if (!stop)
                continue;
            break;
          }
          case MOp::CallExt: {
            if (!m.ext) {
                fault(ExecFault::UnknownExtern,
                      "unresolved symbol " + _image.code[pc].callee);
                stop = true;
                break;
            }
            ext_args.clear();
            ext_args.reserve(m.argsCnt);
            for (uint32_t i = 0; i < m.argsCnt; i++)
                ext_args.push_back(reg(_argPool[m.argsOff + i]));
            clock.advance(2);
            uint64_t v = (*m.ext)(ext_args);
            // The extern may have re-entered this Executor and grown
            // the register stack; refresh the frame pointer.
            regs = _regStack.data() + _frames.back().regBase;
            set(m.dst, v);
            break;
          }
          case MOp::Ret:
          case MOp::CheckRet: {
            uint64_t value = m.a >= 0 ? reg(m.a) : 0;
            if (do_return(value, m.op == MOp::CheckRet))
                stop = true;
            if (!stop)
                continue;
            break;
          }
          case MOp::CfiLabel:
            // Executes as a no-op (an x86 prefetch-style label).
            break;
        }

        if (stop)
            break;
        pc = next_pc;
    }

    _frames.resize(frame_floor);
    _regStack.resize(reg_floor);
    sim::StatSet::add(_hInsts, result.instsExecuted);
    return result;
}

} // namespace vg::cc
