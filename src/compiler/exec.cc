#include "compiler/exec.hh"

#include <cstdlib>

#include "compiler/passes.hh"
#include "compiler/translator.hh"
#include "hw/layout.hh"
#include "sim/log.hh"

namespace vg::cc
{

const char *
faultName(ExecFault fault)
{
    switch (fault) {
      case ExecFault::None:
        return "none";
      case ExecFault::CfiViolation:
        return "cfi-violation";
      case ExecFault::MemFault:
        return "memory-fault";
      case ExecFault::BadInstruction:
        return "bad-instruction";
      case ExecFault::DivideByZero:
        return "divide-by-zero";
      case ExecFault::FuelExhausted:
        return "fuel-exhausted";
      case ExecFault::UnknownExtern:
        return "unknown-extern";
      case ExecFault::StackOverflow:
        return "stack-overflow";
      case ExecFault::BadCallTarget:
        return "bad-call-target";
    }
    return "?";
}

Executor::Executor(const MachineImage &image, MemPort &mem,
                   const ExternTable &externs, sim::SimContext &ctx,
                   uint64_t stack_base, uint64_t stack_size)
    : _image(image), _mem(mem), _externs(externs), _ctx(ctx),
      _stackBase(stack_base), _stackSize(stack_size),
      _hInsts(ctx.stats().handle("exec.insts")), _img(&image)
{
    const size_t n = image.code.size();
    _entryOf.assign(n, nullptr);
    for (const auto &[name, info] : image.functions) {
        size_t idx = size_t((info.entryAddr - image.codeBase) /
                            mInstBytes);
        if (idx < n)
            _entryOf[idx] = &info;
    }
    _decoded.reserve(n);
    predecode(0);
}

void
Executor::predecode(size_t from)
{
    // One pass over the image, resolving everything that does not
    // depend on run-time values. Also run incrementally over the tail
    // of a freshly adopted spliced generation: earlier indices are
    // untouched, so existing decoded state stays valid.
    const MachineImage &image = *_img;
    const size_t n = image.code.size();
    for (size_t i = from; i < n; i++) {
        const MInst &m = image.code[i];
        DInst d;
        d.op = m.op;
        d.width = m.width;
        d.pred = m.pred;
        d.dst = m.dst;
        d.a = m.a;
        d.b = m.b;
        d.c = m.c;
        d.imm = m.imm;
        if (m.op == MOp::SandboxAddr)
            d.cost = uint8_t(sandboxMaskSeqLen);
        if (!m.args.empty()) {
            d.argsOff = uint32_t(_argPool.size());
            d.argsCnt = uint32_t(m.args.size());
            for (int r : m.args)
                _argPool.push_back(r);
        }
        switch (m.op) {
          case MOp::Jump:
          case MOp::JumpIfZero:
            // Codegen only emits in-image aligned targets; anything
            // else decodes to an index that always fails the bounds
            // check and faults as BadInstruction (UINT32_MAX rather
            // than the current size, which a later splice would turn
            // into a valid index).
            d.target = image.contains(m.imm)
                           ? uint32_t((m.imm - image.codeBase) /
                                      mInstBytes)
                           : UINT32_MAX;
            break;
          case MOp::CallDirect:
            d.fn = image.contains(m.imm)
                       ? _entryOf[size_t((m.imm - image.codeBase) /
                                         mInstBytes)]
                       : nullptr;
            if (d.fn)
                d.target = uint32_t((d.fn->entryAddr - image.codeBase) /
                                    mInstBytes);
            break;
          case MOp::CallExt: {
            auto it = _externs.fns.find(m.callee);
            if (it != _externs.fns.end())
                d.ext = &it->second;
            break;
          }
          default:
            break;
        }
        _decoded.push_back(d);
    }
}

const FuncInfo *
Executor::funcAt(uint64_t entry_addr) const
{
    if (!_img->contains(entry_addr))
        return nullptr;
    return _entryOf[size_t((entry_addr - _img->codeBase) / mInstBytes)];
}

void
Executor::enableTraceTier(Translator &translator)
{
    const sim::VgConfig &cfg = _ctx.config();
    if (!cfg.traceTier)
        return;
    if (const char *env = std::getenv("VG_DISABLE_TRACE_TIER");
        env && *env)
        return;
    _traceTr = &translator;
    _tier = true;
    _hotThreshold = cfg.traceHotThreshold;
    _traceMaxInsts = cfg.traceMaxInsts;
    _traceMaxPerImage = cfg.traceMaxPerImage;
    _origLen = uint32_t(_image.code.size());
    _hotCount.assign(_origLen, 0);
    _blacklist.assign(_origLen, 0);
    _traceIdx.assign(_origLen, -1);
    sim::StatSet &stats = _ctx.stats();
    _hTrExec = stats.handle("trace.executed");
    _hTrSide = stats.handle("trace.side_exits");
    _hTrInsts = stats.handle("trace.retired_insts");
}

void
Executor::profileAnchor(uint32_t anchor)
{
    if (_rec.active || anchor >= _origLen)
        return;
    if (_traceIdx[anchor] >= 0 || _blacklist[anchor])
        return;
    if (_traces.size() >= _traceMaxPerImage)
        return;
    if (++_hotCount[anchor] < _hotThreshold)
        return;
    _rec.active = true;
    _rec.anchorIdx = anchor;
    _rec.fn = _frames.empty() ? nullptr : _frames.back().fn;
    _rec.steps.clear();
}

bool
Executor::endRecording(bool loop, uint32_t contIdx)
{
    _rec.active = false;
    const uint32_t anchor = _rec.anchorIdx;
    if (anchor >= _origLen)
        return false;
    // Loop traces of any length pay for themselves every iteration;
    // linear cuts need a few instructions to be worth the redirect.
    if (!_rec.fn || _rec.steps.empty() ||
        (!loop && _rec.steps.size() < 4)) {
        _blacklist[anchor] = 1;
        return false;
    }
    TraceRequest req;
    req.home = _rec.fn->name;
    req.anchorAddr = _img->codeBase + uint64_t(anchor) * mInstBytes;
    req.loop = loop;
    req.contAddr =
        loop ? 0 : _img->codeBase + uint64_t(contIdx) * mInstBytes;
    req.steps = std::move(_rec.steps);
    TranslateResult r = _traceTr->spliceTrace(*_img, req);
    if (!r.ok) {
        _blacklist[anchor] = 1;
        _ctx.stats().add("trace.rejected");
        return false;
    }
    adoptSpliced(r.image, anchor, loop, contIdx);
    return true;
}

void
Executor::adoptSpliced(std::shared_ptr<const MachineImage> image,
                       uint32_t anchorIdx, bool loop, uint32_t contIdx)
{
    const size_t oldN = _decoded.size();
    _gens.push_back(std::move(image));
    _img = _gens.back().get();
    const TraceInfo &t = _img->traces.back();
    const size_t head =
        size_t((t.entryAddr - _img->codeBase) / mInstBytes);

    _entryOf.resize(_img->code.size(), nullptr);
    auto fit = _img->functions.find(t.name);
    if (fit != _img->functions.end() && head < _entryOf.size())
        _entryOf[head] = &fit->second;
    predecode(oldN);
    // Dispatch glue (synthesized head label, side-exit stubs, closing
    // jump) models zero machine work, keeping retired-instruction and
    // cycle counts bit-identical with the interpreter.
    for (uint32_t off : t.freeOffs)
        if (head + off < _decoded.size())
            _decoded[head + off].cost = 0;

    TraceRt rt;
    rt.head = uint32_t(head);
    rt.len = t.length;
    rt.contIdx = loop ? UINT32_MAX : contIdx;
    for (size_t i = head; i < head + t.length && i < _decoded.size();
         i++)
        rt.iterCost += _decoded[i].cost;
    compileTrace(rt);
    _traces.push_back(std::move(rt));
    _traceIdx[anchorIdx] = int32_t(_traces.size() - 1);
    _ctx.stats().add("trace.formed");
}

namespace
{

/** ICmp semantics, shared by the micro-op runner. */
uint64_t
cmpEval(vir::CmpPred pred, uint64_t a, uint64_t b)
{
    int64_t sa = int64_t(a), sb = int64_t(b);
    switch (pred) {
      case vir::CmpPred::Eq:
        return a == b;
      case vir::CmpPred::Ne:
        return a != b;
      case vir::CmpPred::Ult:
        return a < b;
      case vir::CmpPred::Ule:
        return a <= b;
      case vir::CmpPred::Ugt:
        return a > b;
      case vir::CmpPred::Uge:
        return a >= b;
      case vir::CmpPred::Slt:
        return sa < sb;
      case vir::CmpPred::Sle:
        return sa <= sb;
      case vir::CmpPred::Sgt:
        return sa > sb;
      case vir::CmpPred::Sge:
        return sa >= sb;
    }
    return 0;
}

/** SandboxAddr semantics (identical to the interpreter case). */
uint64_t
sandboxVal(uint64_t a)
{
    uint64_t masked = a | (uint64_t(a >= hw::ghostBase) << 39);
    uint64_t keep =
        uint64_t(!(masked >= hw::svaBase && masked < hw::svaEnd));
    return masked * keep;
}

} // namespace

void
Executor::compileTrace(TraceRt &t)
{
    // Lower the verified block into superinstruction micro-ops. The
    // recorded path is straight-line: in-block control flow is either
    // a transfer to the head (iteration close) or a short forward skip
    // over a zero-cost side-exit stub, so per-iteration cost/cycle
    // prefix sums are exact on every path through the block.
    const size_t head = t.head;
    const size_t end = head + t.len;
    std::vector<uint8_t> isTarget(t.len, 0);
    for (size_t i = head; i < end; i++) {
        const DInst &m = _decoded[i];
        if ((m.op == MOp::Jump || m.op == MOp::JumpIfZero) &&
            m.target >= head && m.target < end)
            isTarget[m.target - head] = 1;
    }

    auto isArith = [](MOp op) {
        switch (op) {
          case MOp::Add:
          case MOp::Sub:
          case MOp::Mul:
          case MOp::UDiv:
          case MOp::URem:
          case MOp::And:
          case MOp::Or:
          case MOp::Xor:
          case MOp::Shl:
          case MOp::LShr:
          case MOp::AShr:
            return true;
          default:
            return false;
        }
    };

    // µop start index for each block instruction (fusion seconds stay
    // UINT32_MAX; they are never branch targets by construction).
    std::vector<uint32_t> uidx(t.len, UINT32_MAX);
    std::vector<uint8_t> hasFusedJump;

    size_t i = head;
    while (i < end) {
        const DInst &m = _decoded[i];
        UOp u;
        u.pred = m.pred;
        u.w1 = uint8_t(vir::widthBytes(m.width));
        u.c1 = m.cost;
        u.dst = m.dst;
        u.a = m.a;
        u.b = m.b;
        u.c = m.c;
        u.imm = m.imm;
        size_t used = 1;
        // Unfused masking sequence (fuseSandboxMasks = false): collapse
        // the recognized 13-instruction ghost/SVA sequence into one
        // dispatch. The runner replays every architectural register
        // write in program order, so side exits — and any register
        // aliasing — observe state identical to the interpreter's. The
        // whole sequence must sit inside the block with no in-block
        // branch landing past its head.
        bool seqFused = false;
        if (m.op == MOp::ConstI &&
            i + size_t(sandboxMaskSeqLen) <= end) {
            int seqDst = -1;
            int seqAddr = matchSandboxMaskSeq(_img->code, i, seqDst);
            bool clear = seqAddr >= 0;
            uint32_t csum = 0;
            for (size_t k = 0; clear && k < size_t(sandboxMaskSeqLen);
                 k++) {
                if (k && isTarget[i + k - head])
                    clear = false;
                csum += _decoded[i + k].cost;
            }
            if (clear && csum <= 255) {
                MaskSeq s;
                s.addr = seqAddr;
                for (size_t k = 0; k < size_t(sandboxMaskSeqLen); k++)
                    s.d[k] = _decoded[i + k].dst;
                u.kind = UOp::K::SandboxSeq;
                u.seq = uint32_t(t.seqs.size());
                t.seqs.push_back(s);
                u.c1 = uint8_t(csum);
                used = size_t(sandboxMaskSeqLen);
                const DInst *p =
                    (i + used < end && !isTarget[i + used - head])
                        ? &_decoded[i + used]
                        : nullptr;
                if (p && p->op == MOp::Load && p->a == seqDst) {
                    u.kind = UOp::K::SeqLoad;
                    u.dst2 = p->dst;
                    u.w2 = uint8_t(vir::widthBytes(p->width));
                    u.c2 = p->cost;
                    used++;
                } else if (p && p->op == MOp::Store &&
                           p->a == seqDst) {
                    u.kind = UOp::K::SeqStore;
                    u.b2 = p->b;
                    u.w2 = uint8_t(vir::widthBytes(p->width));
                    u.c2 = p->cost;
                    used++;
                }
                seqFused = true;
            }
        }
        // Candidate fusion partner: the next instruction, unless some
        // in-block branch can land on it.
        const DInst *n = (i + 1 < end && !isTarget[i + 1 - head])
                             ? &_decoded[i + 1]
                             : nullptr;
        if (!seqFused)
        switch (m.op) {
          case MOp::ConstI:
            u.kind = UOp::K::Const;
            if (n && isArith(n->op) && n->b == m.dst &&
                n->a != m.dst &&
                !((n->op == MOp::UDiv || n->op == MOp::URem) &&
                  m.imm == 0)) {
                u.kind = UOp::K::ArithImm;
                u.op2 = n->op;
                u.dst2 = n->dst;
                u.a2 = n->a;
                u.c2 = n->cost;
                used = 2;
            }
            break;
          case MOp::Mov:
            u.kind = UOp::K::Mov;
            break;
          case MOp::Add:
          case MOp::Sub:
          case MOp::Mul:
          case MOp::UDiv:
          case MOp::URem:
          case MOp::And:
          case MOp::Or:
          case MOp::Xor:
          case MOp::Shl:
          case MOp::LShr:
          case MOp::AShr:
            u.kind = UOp::K::Arith;
            u.op2 = m.op;
            break;
          case MOp::ICmp:
            u.kind = UOp::K::ICmp;
            if (n && n->op == MOp::JumpIfZero && n->a == m.dst) {
                u.kind = UOp::K::CmpBranch;
                u.c2 = n->cost;
                u.target = n->target;
                used = 2;
            }
            break;
          case MOp::SandboxAddr:
            u.kind = UOp::K::Sandbox;
            if (n && n->op == MOp::Load && n->a == m.dst) {
                u.kind = UOp::K::MaskLoad;
                u.dst2 = n->dst;
                u.w2 = uint8_t(vir::widthBytes(n->width));
                u.c2 = n->cost;
                used = 2;
            } else if (n && n->op == MOp::Store && n->a == m.dst) {
                u.kind = UOp::K::MaskStore;
                u.b2 = n->b;
                u.w2 = uint8_t(vir::widthBytes(n->width));
                u.c2 = n->cost;
                used = 2;
            }
            break;
          case MOp::FrameAddr:
            u.kind = UOp::K::FrameAddr;
            if (n && n->op == MOp::SandboxAddr && n->a == m.dst) {
                u.kind = UOp::K::FrameMask;
                u.dst2 = n->dst;
                u.c2 = n->cost;
                used = 2;
            } else if (n && n->op == MOp::Load && n->a == m.dst) {
                u.kind = UOp::K::FrameLoad;
                u.dst2 = n->dst;
                u.w2 = uint8_t(vir::widthBytes(n->width));
                u.c2 = n->cost;
                used = 2;
            } else if (n && n->op == MOp::Store && n->a == m.dst) {
                u.kind = UOp::K::FrameStore;
                u.b2 = n->b;
                u.w2 = uint8_t(vir::widthBytes(n->width));
                u.c2 = n->cost;
                used = 2;
            }
            break;
          case MOp::Load:
            u.kind = UOp::K::Load;
            break;
          case MOp::Store:
            u.kind = UOp::K::Store;
            if (n && n->op == MOp::Load) {
                u.kind = UOp::K::StoreLoad;
                u.dst2 = n->dst;
                u.a2 = n->a;
                u.w2 = uint8_t(vir::widthBytes(n->width));
                u.c2 = n->cost;
                u.e1 = 1; // store's success cycle, charged pre-load
                used = 2;
            }
            break;
          case MOp::Memcpy:
            u.kind = UOp::K::Memcpy;
            break;
          case MOp::Jump:
            u.kind = UOp::K::Jump;
            u.target = m.target;
            break;
          case MOp::JumpIfZero:
            u.kind = UOp::K::JumpIfZero;
            u.target = m.target;
            break;
          case MOp::CfiLabel:
            u.kind = UOp::K::Nop;
            break;
          default:
            // The verifier proves traces are call-free (VG-TR-03);
            // anything else here means the image was not re-proved —
            // the runner faults on it.
            u.kind = UOp::K::Bad;
            break;
        }

        // Fold a trailing unconditional jump into any non-branching
        // micro-op: the common back-edge costs no extra dispatch.
        bool fusedJump = false;
        if (u.kind != UOp::K::Jump && u.kind != UOp::K::JumpIfZero &&
            u.kind != UOp::K::CmpBranch && i + used < end &&
            !isTarget[i + used - head] &&
            _decoded[i + used].op == MOp::Jump) {
            u.next = _decoded[i + used].target;
            u.cj = _decoded[i + used].cost;
            fusedJump = true;
            used++;
        }

        uidx[i - head] = uint32_t(t.uops.size());
        t.uops.push_back(u);
        hasFusedJump.push_back(fusedJump ? 1 : 0);
        i += used;
    }

    // Resolve successors: in-block targets become µop indices, others
    // stay decoded indices with the exit flag set (the interpreter's
    // bounds check handles even a corrupt UINT32_MAX sentinel).
    auto resolve = [&](uint32_t dec, uint32_t &outIdx, bool &exits) {
        if (dec >= head && dec < end && uidx[dec - head] != UINT32_MAX) {
            outIdx = uidx[dec - head];
            exits = false;
        } else {
            outIdx = dec;
            exits = true;
        }
    };
    for (size_t j = 0; j < t.uops.size(); j++) {
        UOp &u = t.uops[j];
        if (hasFusedJump[j]) {
            resolve(u.next, u.next, u.nextExits);
        } else if (u.kind == UOp::K::Jump) {
            resolve(u.target, u.target, u.targetExits);
        } else {
            u.next = uint32_t(j + 1);
            u.nextExits = j + 1 == t.uops.size();
            if (u.nextExits)
                u.next = uint32_t(end); // verified blocks end in a jump
        }
        if (u.kind == UOp::K::JumpIfZero || u.kind == UOp::K::CmpBranch)
            resolve(u.target, u.target, u.targetExits);
    }

    // Per-iteration prefix sums: modeled instructions and static
    // cycles (dispatch costs plus the fixed success cycle of each
    // load/store; memcpy's length term stays dynamic).
    auto staticExtra = [](const UOp &u) -> uint64_t {
        switch (u.kind) {
          case UOp::K::Load:
          case UOp::K::Store:
          case UOp::K::MaskLoad:
          case UOp::K::MaskStore:
          case UOp::K::FrameLoad:
          case UOp::K::FrameStore:
          case UOp::K::SeqLoad:
          case UOp::K::SeqStore:
            return 1;
          case UOp::K::StoreLoad:
            return 2;
          default:
            return 0;
        }
    };
    uint32_t insts = 0;
    uint64_t cycles = 0;
    for (UOp &u : t.uops) {
        u.instsBefore = insts;
        u.cyclesBefore = cycles;
        insts += uint32_t(u.c1) + u.c2 + u.cj;
        cycles += uint64_t(u.c1) + u.c2 + u.cj + staticExtra(u);
        u.instsAfter = insts;
        u.cyclesAfter = cycles;
    }
    t.iterCycles = cycles;
}

size_t
Executor::runTraceBlock(uint32_t ti, ExecResult &result)
{
    // Threaded execution of one superinstruction block over its
    // compiled micro-ops. Traces contain no calls (VG-TR-03), so the
    // frame, register window and frame pointer are loop invariants
    // hoisted out of the dispatch. The hot loop does no bookkeeping:
    // retired instructions and cycles are reconstructed at the exit
    // from the iteration count and the exit micro-op's prefix sums
    // (commutative sums, so totals are bit-identical with
    // per-instruction accounting).
    const TraceRt &t = _traces[ti];
    const UOp *ops = t.uops.data();
    sim::Clock &clock = _ctx.clock();
    uint64_t *regs = _regStack.data() + _frames.back().regBase;
    const uint64_t framePtr = _frames.back().framePtr;
    const uint64_t bulk = _ctx.costs().bulkBytesPerCycle;
    const uint64_t budget = _fuel - result.instsExecuted;
    uint64_t iters = 0; ///< completed iterations (head re-entries)
    uint64_t dyn = 0;   ///< dynamic (memcpy length) cycles
    sim::StatSet::add(_hTrExec, 1);

    auto reg = [&](int32_t r) -> uint64_t {
        return r < 0 ? 0 : regs[uint32_t(r)];
    };
    auto set = [&](int32_t r, uint64_t v) {
        if (r >= 0)
            regs[uint32_t(r)] = v;
    };
    auto flush = [&](uint64_t insts, uint64_t cycles) {
        result.instsExecuted += insts;
        clock.advance(cycles + dyn);
        sim::StatSet::add(_hTrInsts, insts);
    };
    auto fault = [&](ExecFault kind, const std::string &detail,
                     uint32_t insts, uint64_t cycles) {
        result.fault = kind;
        result.detail = detail;
        _ctx.stats().add(std::string("exec.fault.") + faultName(kind));
        flush(iters * t.iterCost + insts, iters * t.iterCycles + cycles);
    };
    auto leave = [&](const UOp &u, uint32_t dec) -> size_t {
        flush(iters * t.iterCost + u.instsAfter,
              iters * t.iterCycles + u.cyclesAfter);
        if (dec != t.contIdx)
            sim::StatSet::add(_hTrSide, 1);
        return dec;
    };
    // Per-iteration fuel pre-check: every in-block transfer is forward
    // or to the head, so checking once per head entry can never admit
    // an unfueled pass. When the remaining budget cannot cover a full
    // pass, bail to the interpreter, which retires the block
    // instruction by instruction and faults at exactly the right
    // count.
    auto bail = [&]() -> size_t {
        flush(iters * t.iterCost, iters * t.iterCycles);
        return t.head;
    };

    if ((iters + 1) * t.iterCost > budget)
        return bail();
    size_t pc = 0;
    for (;;) {
        const UOp &u = ops[pc];
        switch (u.kind) {
          case UOp::K::Nop:
            break;
          case UOp::K::Const:
            set(u.dst, u.imm);
            break;
          case UOp::K::Mov:
            set(u.dst, reg(u.a));
            break;
          case UOp::K::Arith: {
            uint64_t a = reg(u.a), b = reg(u.b), v = 0;
            switch (u.op2) {
              case MOp::Add:
                v = a + b;
                break;
              case MOp::Sub:
                v = a - b;
                break;
              case MOp::Mul:
                v = a * b;
                break;
              case MOp::UDiv:
              case MOp::URem:
                if (b == 0) {
                    fault(ExecFault::DivideByZero, "division by zero",
                          u.instsBefore + u.c1, u.cyclesBefore + u.c1);
                    return SIZE_MAX;
                }
                v = u.op2 == MOp::UDiv ? a / b : a % b;
                break;
              case MOp::And:
                v = a & b;
                break;
              case MOp::Or:
                v = a | b;
                break;
              case MOp::Xor:
                v = a ^ b;
                break;
              case MOp::Shl:
                v = a << (b & 63);
                break;
              case MOp::LShr:
                v = a >> (b & 63);
                break;
              case MOp::AShr:
                v = uint64_t(int64_t(a) >> (b & 63));
                break;
              default:
                break;
            }
            set(u.dst, v);
            break;
          }
          case UOp::K::ArithImm: {
            // ConstI + arith consuming it: both architectural writes
            // happen, one dispatch. Fusion excluded zero divisors.
            set(u.dst, u.imm);
            uint64_t a = reg(u.a2), v = 0;
            switch (u.op2) {
              case MOp::Add:
                v = a + u.imm;
                break;
              case MOp::Sub:
                v = a - u.imm;
                break;
              case MOp::Mul:
                v = a * u.imm;
                break;
              case MOp::UDiv:
                v = a / u.imm;
                break;
              case MOp::URem:
                v = a % u.imm;
                break;
              case MOp::And:
                v = a & u.imm;
                break;
              case MOp::Or:
                v = a | u.imm;
                break;
              case MOp::Xor:
                v = a ^ u.imm;
                break;
              case MOp::Shl:
                v = a << (u.imm & 63);
                break;
              case MOp::LShr:
                v = a >> (u.imm & 63);
                break;
              case MOp::AShr:
                v = uint64_t(int64_t(a) >> (u.imm & 63));
                break;
              default:
                break;
            }
            set(u.dst2, v);
            break;
          }
          case UOp::K::ICmp:
            set(u.dst, cmpEval(u.pred, reg(u.a), reg(u.b)));
            break;
          case UOp::K::CmpBranch: {
            uint64_t v = cmpEval(u.pred, reg(u.a), reg(u.b));
            set(u.dst, v);
            if (v == 0) {
                if (u.targetExits)
                    return leave(u, u.target);
                pc = u.target;
                if (pc == 0) {
                    iters++;
                    if ((iters + 1) * t.iterCost > budget)
                        return bail();
                }
                continue;
            }
            break;
          }
          case UOp::K::Sandbox:
            set(u.dst, sandboxVal(reg(u.a)));
            break;
          case UOp::K::FrameAddr:
            set(u.dst, framePtr + u.imm);
            break;
          case UOp::K::FrameMask: {
            uint64_t fa = framePtr + u.imm;
            set(u.dst, fa);
            set(u.dst2, sandboxVal(fa));
            break;
          }
          case UOp::K::Load: {
            uint64_t v = 0;
            if (!_mem.read(reg(u.a), u.w1, v)) {
                fault(ExecFault::MemFault,
                      sim::strprintf("load fault at %#lx",
                                     (unsigned long)reg(u.a)),
                      u.instsBefore + u.c1, u.cyclesBefore + u.c1);
                return SIZE_MAX;
            }
            set(u.dst, v);
            break;
          }
          case UOp::K::Store:
            if (!_mem.write(reg(u.a), u.w1, reg(u.b))) {
                fault(ExecFault::MemFault,
                      sim::strprintf("store fault at %#lx",
                                     (unsigned long)reg(u.a)),
                      u.instsBefore + u.c1, u.cyclesBefore + u.c1);
                return SIZE_MAX;
            }
            break;
          case UOp::K::MaskLoad: {
            uint64_t addr = sandboxVal(reg(u.a));
            set(u.dst, addr);
            uint64_t v = 0;
            if (!_mem.read(addr, u.w2, v)) {
                fault(ExecFault::MemFault,
                      sim::strprintf("load fault at %#lx",
                                     (unsigned long)addr),
                      u.instsBefore + u.c1 + u.c2,
                      u.cyclesBefore + u.c1 + u.c2);
                return SIZE_MAX;
            }
            set(u.dst2, v);
            break;
          }
          case UOp::K::MaskStore: {
            uint64_t addr = sandboxVal(reg(u.a));
            set(u.dst, addr);
            if (!_mem.write(addr, u.w2, reg(u.b2))) {
                fault(ExecFault::MemFault,
                      sim::strprintf("store fault at %#lx",
                                     (unsigned long)addr),
                      u.instsBefore + u.c1 + u.c2,
                      u.cyclesBefore + u.c1 + u.c2);
                return SIZE_MAX;
            }
            break;
          }
          case UOp::K::FrameLoad: {
            uint64_t fa = framePtr + u.imm;
            set(u.dst, fa);
            uint64_t v = 0;
            if (!_mem.read(fa, u.w2, v)) {
                fault(ExecFault::MemFault,
                      sim::strprintf("load fault at %#lx",
                                     (unsigned long)fa),
                      u.instsBefore + u.c1 + u.c2,
                      u.cyclesBefore + u.c1 + u.c2);
                return SIZE_MAX;
            }
            set(u.dst2, v);
            break;
          }
          case UOp::K::FrameStore: {
            uint64_t fa = framePtr + u.imm;
            set(u.dst, fa);
            if (!_mem.write(fa, u.w2, reg(u.b2))) {
                fault(ExecFault::MemFault,
                      sim::strprintf("store fault at %#lx",
                                     (unsigned long)fa),
                      u.instsBefore + u.c1 + u.c2,
                      u.cyclesBefore + u.c1 + u.c2);
                return SIZE_MAX;
            }
            break;
          }
          case UOp::K::SandboxSeq:
          case UOp::K::SeqLoad:
          case UOp::K::SeqStore: {
            // Replay of the unfused masking sequence: one dispatch,
            // all thirteen architectural writes in program order, each
            // operand read back from the register file exactly when
            // the interpreter would read it.
            const MaskSeq &S = t.seqs[u.seq];
            set(S.d[0], hw::ghostBase);
            set(S.d[1], reg(S.addr) >= reg(S.d[0]) ? 1 : 0);
            set(S.d[2], 39);
            set(S.d[3], reg(S.d[1]) << (reg(S.d[2]) & 63));
            set(S.d[4], reg(S.addr) | reg(S.d[3]));
            set(S.d[5], hw::svaBase);
            set(S.d[6], hw::svaEnd);
            set(S.d[7], reg(S.d[4]) >= reg(S.d[5]) ? 1 : 0);
            set(S.d[8], reg(S.d[4]) < reg(S.d[6]) ? 1 : 0);
            set(S.d[9], reg(S.d[7]) & reg(S.d[8]));
            set(S.d[10], 1);
            set(S.d[11], reg(S.d[9]) ^ reg(S.d[10]));
            set(S.d[12], reg(S.d[4]) * reg(S.d[11]));
            if (u.kind == UOp::K::SeqLoad) {
                uint64_t addr = reg(S.d[12]);
                uint64_t v = 0;
                if (!_mem.read(addr, u.w2, v)) {
                    fault(ExecFault::MemFault,
                          sim::strprintf("load fault at %#lx",
                                         (unsigned long)addr),
                          u.instsBefore + u.c1 + u.c2,
                          u.cyclesBefore + u.c1 + u.c2);
                    return SIZE_MAX;
                }
                set(u.dst2, v);
            } else if (u.kind == UOp::K::SeqStore) {
                uint64_t addr = reg(S.d[12]);
                if (!_mem.write(addr, u.w2, reg(u.b2))) {
                    fault(ExecFault::MemFault,
                          sim::strprintf("store fault at %#lx",
                                         (unsigned long)addr),
                          u.instsBefore + u.c1 + u.c2,
                          u.cyclesBefore + u.c1 + u.c2);
                    return SIZE_MAX;
                }
            }
            break;
          }
          case UOp::K::StoreLoad:
            if (!_mem.write(reg(u.a), u.w1, reg(u.b))) {
                fault(ExecFault::MemFault,
                      sim::strprintf("store fault at %#lx",
                                     (unsigned long)reg(u.a)),
                      u.instsBefore + u.c1, u.cyclesBefore + u.c1);
                return SIZE_MAX;
            }
            {
                uint64_t v = 0;
                if (!_mem.read(reg(u.a2), u.w2, v)) {
                    fault(ExecFault::MemFault,
                          sim::strprintf("load fault at %#lx",
                                         (unsigned long)reg(u.a2)),
                          u.instsBefore + u.c1 + u.c2,
                          u.cyclesBefore + u.c1 + u.c2 + u.e1);
                    return SIZE_MAX;
                }
                set(u.dst2, v);
            }
            break;
          case UOp::K::Memcpy: {
            uint64_t len = reg(u.c);
            if (!_mem.copy(reg(u.a), reg(u.b), len)) {
                fault(ExecFault::MemFault, "memcpy fault",
                      u.instsBefore + u.c1, u.cyclesBefore + u.c1);
                return SIZE_MAX;
            }
            dyn += len / bulk + 1;
            break;
          }
          case UOp::K::Jump:
            if (u.targetExits)
                return leave(u, u.target);
            pc = u.target;
            if (pc == 0) {
                iters++;
                if ((iters + 1) * t.iterCost > budget)
                    return bail();
            }
            continue;
          case UOp::K::JumpIfZero:
            if (reg(u.a) == 0) {
                if (u.targetExits)
                    return leave(u, u.target);
                pc = u.target;
                if (pc == 0) {
                    iters++;
                    if ((iters + 1) * t.iterCost > budget)
                        return bail();
                }
                continue;
            }
            break;
          case UOp::K::Bad:
            fault(ExecFault::BadInstruction,
                  "op not allowed in a trace block", u.instsBefore,
                  u.cyclesBefore);
            return SIZE_MAX;
        }
        if (u.nextExits)
            return leave(u, u.next);
        pc = u.next;
        if (pc == 0) {
            iters++;
            if ((iters + 1) * t.iterCost > budget)
                return bail();
        }
    }
}

ExecResult
Executor::badTarget(std::string detail)
{
    ExecResult r;
    r.fault = ExecFault::BadCallTarget;
    r.detail = std::move(detail);
    return r;
}

ExecResult
Executor::call(const std::string &name, const std::vector<uint64_t> &args)
{
    auto it = _image.functions.find(name);
    if (it == _image.functions.end())
        return badTarget("no such function " + name);
    return run(it->second, args);
}

ExecResult
Executor::call(const FuncInfo &fn, const std::vector<uint64_t> &args)
{
    return run(fn, args);
}

ExecResult
Executor::callAddr(uint64_t entry_addr, const std::vector<uint64_t> &args)
{
    const FuncInfo *info = funcAt(entry_addr);
    if (!info)
        return badTarget(sim::strprintf("no function at %#lx",
                                        (unsigned long)entry_addr));
    return run(*info, args);
}

ExecResult
Executor::run(const FuncInfo &entry_fn, const std::vector<uint64_t> &args)
{
    ExecResult result;
    // Not const: adopting a spliced trace generation mid-run (directly
    // or through a reentrant extern) reallocates _decoded.
    const DInst *code = _decoded.data();
    size_t code_len = _decoded.size();
    sim::Clock &clock = _ctx.clock();

    // Stack discipline over the shared frame/register pools makes the
    // engine reentrant (an extern may call back into this Executor).
    const size_t frame_floor = _frames.size();
    const size_t reg_floor = _regStack.size();
    uint64_t sp = _stackBase + _stackSize;
    std::vector<uint64_t> ext_args; // reused for every CallExt this run

    auto byte_addr = [&](size_t idx) {
        return _img->codeBase + idx * mInstBytes;
    };

    auto push_frame = [&](const FuncInfo &fn, uint32_t ret_idx,
                          int32_t caller_dst) -> bool {
        if (fn.frameBytes + 4096 > sp - _stackBase)
            return false;
        sp -= fn.frameBytes;
        FrameRec fr;
        fr.fn = &fn;
        fr.regBase = uint32_t(_regStack.size());
        fr.retIdx = ret_idx;
        fr.callerDst = caller_dst;
        fr.framePtr = sp;
        // resize() value-initializes the new elements, so a recycled
        // span starts zeroed exactly like a fresh register file.
        _regStack.resize(_regStack.size() +
                             size_t(std::max(fn.numRegs, 1)),
                         0);
        _frames.push_back(fr);
        return true;
    };

    if (!push_frame(entry_fn, 0, -1)) {
        result.fault = ExecFault::StackOverflow;
        return result;
    }
    for (size_t i = 0;
         i < args.size() && i < size_t(entry_fn.numParams); i++)
        _regStack[_frames.back().regBase + i] = args[i];

    size_t pc = size_t((entry_fn.entryAddr - _img->codeBase) /
                       mInstBytes);
    if (_tier)
        profileAnchor(uint32_t(pc));

    auto fault = [&](ExecFault kind, const std::string &detail) {
        result.fault = kind;
        result.detail = detail;
        _ctx.stats().add(std::string("exec.fault.") + faultName(kind));
    };

    // Return from the current frame; true if the whole run finished.
    auto do_return = [&](uint64_t value, bool checked) -> bool {
        FrameRec done = _frames.back();
        _frames.pop_back();
        _regStack.resize(done.regBase);
        sp += done.fn->frameBytes;
        if (_frames.size() == frame_floor) {
            result.ok = true;
            result.value = value;
            return true;
        }
        if (checked) {
            // Validate the CFI label at the return site.
            clock.advance(_ctx.costs().cfiPerTransfer);
            if (done.retIdx >= code_len ||
                code[done.retIdx].op != MOp::CfiLabel ||
                code[done.retIdx].imm != cfiLabelValue) {
                fault(ExecFault::CfiViolation,
                      "return to unlabeled site");
                return true;
            }
        }
        if (done.callerDst >= 0)
            _regStack[_frames.back().regBase +
                      uint32_t(done.callerDst)] = value;
        pc = done.retIdx;
        return false;
    };

    // Enter a resolved callee, copying argument registers from the
    // caller's frame straight into the callee's (no temporary vector).
    auto enter_call = [&](const FuncInfo *callee, uint64_t target_addr,
                          uint32_t args_off, uint32_t args_cnt,
                          uint32_t ret_idx, int32_t dst) -> bool {
        if (!callee) {
            fault(ExecFault::BadCallTarget,
                  sim::strprintf("call to %#lx which is not a function "
                                 "entry",
                                 (unsigned long)target_addr));
            return false;
        }
        uint32_t caller_base = _frames.back().regBase;
        if (!push_frame(*callee, ret_idx, dst)) {
            fault(ExecFault::StackOverflow, "module stack exhausted");
            return false;
        }
        uint32_t callee_base = _frames.back().regBase;
        uint32_t n = std::min(args_cnt, uint32_t(callee->numParams));
        for (uint32_t i = 0; i < n; i++) {
            int32_t r = _argPool[args_off + i];
            _regStack[callee_base + i] =
                r < 0 ? 0 : _regStack[caller_base + uint32_t(r)];
        }
        pc = size_t((callee->entryAddr - _img->codeBase) / mInstBytes);
        if (_tier)
            profileAnchor(uint32_t(pc));
        return true;
    };

    while (true) {
        // Hot anchors with a formed trace dispatch into the
        // superinstruction runner (never while recording: the recorder
        // must observe the original instruction stream).
        if (_tier && !_rec.active) {
            while (pc < _traceIdx.size() && _traceIdx[pc] >= 0)
                pc = runTraceBlock(uint32_t(_traceIdx[pc]), result);
            if (pc == SIZE_MAX)
                break; // runner faulted; result already filled in
        }
        if (pc >= code_len) {
            fault(ExecFault::BadInstruction,
                  sim::strprintf("pc %#lx outside code",
                                 (unsigned long)byte_addr(pc)));
            break;
        }
        if (_tier && _rec.active && !traceableOp(code[pc].op)) {
            // A call or return ends the recorded path before it runs
            // (an extern may reenter this Executor; its dispatches
            // must not interleave into this recording).
            if (endRecording(false, uint32_t(pc))) {
                code = _decoded.data();
                code_len = _decoded.size();
            }
        }
        const DInst &m = code[pc];
        const MOp op = m.op;
        // The budget counts modeled machine instructions and is never
        // overshot: a fused/spliced dispatch that would exceed it
        // faults before executing.
        if (result.instsExecuted + m.cost > _fuel) {
            fault(ExecFault::FuelExhausted, "instruction budget spent");
            break;
        }
        result.instsExecuted += m.cost;
        clock.advance(m.cost);

        uint64_t *regs = _regStack.data() + _frames.back().regBase;
        auto reg = [&](int32_t r) -> uint64_t {
            return r < 0 ? 0 : regs[uint32_t(r)];
        };
        auto set = [&](int32_t r, uint64_t v) {
            if (r >= 0)
                regs[uint32_t(r)] = v;
        };

        size_t next_pc = pc + 1;
        bool stop = false;

        switch (m.op) {
          case MOp::ConstI:
            set(m.dst, m.imm);
            break;
          case MOp::Mov:
            set(m.dst, reg(m.a));
            break;
          case MOp::Add:
            set(m.dst, reg(m.a) + reg(m.b));
            break;
          case MOp::Sub:
            set(m.dst, reg(m.a) - reg(m.b));
            break;
          case MOp::Mul:
            set(m.dst, reg(m.a) * reg(m.b));
            break;
          case MOp::UDiv:
          case MOp::URem: {
            uint64_t d = reg(m.b);
            if (d == 0) {
                fault(ExecFault::DivideByZero, "division by zero");
                stop = true;
                break;
            }
            set(m.dst, m.op == MOp::UDiv ? reg(m.a) / d
                                         : reg(m.a) % d);
            break;
          }
          case MOp::And:
            set(m.dst, reg(m.a) & reg(m.b));
            break;
          case MOp::Or:
            set(m.dst, reg(m.a) | reg(m.b));
            break;
          case MOp::Xor:
            set(m.dst, reg(m.a) ^ reg(m.b));
            break;
          case MOp::Shl:
            set(m.dst, reg(m.a) << (reg(m.b) & 63));
            break;
          case MOp::LShr:
            set(m.dst, reg(m.a) >> (reg(m.b) & 63));
            break;
          case MOp::AShr:
            set(m.dst,
                uint64_t(int64_t(reg(m.a)) >> (reg(m.b) & 63)));
            break;
          case MOp::ICmp: {
            uint64_t a = reg(m.a), b = reg(m.b);
            int64_t sa = int64_t(a), sb = int64_t(b);
            bool v = false;
            switch (m.pred) {
              case vir::CmpPred::Eq:
                v = a == b;
                break;
              case vir::CmpPred::Ne:
                v = a != b;
                break;
              case vir::CmpPred::Ult:
                v = a < b;
                break;
              case vir::CmpPred::Ule:
                v = a <= b;
                break;
              case vir::CmpPred::Ugt:
                v = a > b;
                break;
              case vir::CmpPred::Uge:
                v = a >= b;
                break;
              case vir::CmpPred::Slt:
                v = sa < sb;
                break;
              case vir::CmpPred::Sle:
                v = sa <= sb;
                break;
              case vir::CmpPred::Sgt:
                v = sa > sb;
                break;
              case vir::CmpPred::Sge:
                v = sa >= sb;
                break;
            }
            set(m.dst, v ? 1 : 0);
            break;
          }
          case MOp::SandboxAddr: {
            // Fused ghost/SVA masking sequence; bit-identical to the
            // unfused 13-instruction form (see peephole.cc).
            uint64_t a = reg(m.a);
            uint64_t masked =
                a | (uint64_t(a >= hw::ghostBase) << 39);
            uint64_t keep = uint64_t(
                !(masked >= hw::svaBase && masked < hw::svaEnd));
            set(m.dst, masked * keep);
            break;
          }
          case MOp::Load: {
            uint64_t v = 0;
            if (!_mem.read(reg(m.a), unsigned(widthBytes(m.width)),
                           v)) {
                fault(ExecFault::MemFault,
                      sim::strprintf("load fault at %#lx",
                                     (unsigned long)reg(m.a)));
                stop = true;
                break;
            }
            clock.advance(1);
            set(m.dst, v);
            break;
          }
          case MOp::Store:
            if (!_mem.write(reg(m.a), unsigned(widthBytes(m.width)),
                            reg(m.b))) {
                fault(ExecFault::MemFault,
                      sim::strprintf("store fault at %#lx",
                                     (unsigned long)reg(m.a)));
                stop = true;
                break;
            }
            clock.advance(1);
            break;
          case MOp::Memcpy: {
            uint64_t len = reg(m.c);
            if (!_mem.copy(reg(m.a), reg(m.b), len)) {
                fault(ExecFault::MemFault, "memcpy fault");
                stop = true;
                break;
            }
            clock.advance(len / _ctx.costs().bulkBytesPerCycle + 1);
            break;
          }
          case MOp::FrameAddr:
            set(m.dst, _frames.back().framePtr + m.imm);
            break;
          case MOp::Jump:
            next_pc = m.target;
            break;
          case MOp::JumpIfZero:
            if (reg(m.a) == 0)
                next_pc = m.target;
            break;
          case MOp::CallDirect:
            if (!enter_call(m.fn, m.imm, m.argsOff, m.argsCnt,
                            uint32_t(next_pc), m.dst))
                stop = true;
            if (!stop)
                continue;
            break;
          case MOp::CallInd:
          case MOp::CallIndChecked: {
            uint64_t target = reg(m.a);
            if (m.op == MOp::CallIndChecked) {
                clock.advance(_ctx.costs().cfiPerTransfer);
                // Mask the target out of user space (paper: the CFI
                // check "masks the target address to ensure that it is
                // not a user-space address").
                target |= hw::kernelBase;
                const DInst *at_target =
                    _img->contains(target)
                        ? &code[size_t((target - _img->codeBase) /
                                       mInstBytes)]
                        : nullptr;
                if (!at_target || at_target->op != MOp::CfiLabel ||
                    at_target->imm != cfiLabelValue) {
                    fault(ExecFault::CfiViolation,
                          sim::strprintf("indirect call to %#lx "
                                         "without label",
                                         (unsigned long)target));
                    stop = true;
                    break;
                }
            }
            if (!enter_call(funcAt(target), target, m.argsOff,
                            m.argsCnt, uint32_t(next_pc), m.dst))
                stop = true;
            if (!stop)
                continue;
            break;
          }
          case MOp::CallExt: {
            if (!m.ext) {
                fault(ExecFault::UnknownExtern,
                      "unresolved symbol " + _img->code[pc].callee);
                stop = true;
                break;
            }
            ext_args.clear();
            ext_args.reserve(m.argsCnt);
            for (uint32_t i = 0; i < m.argsCnt; i++)
                ext_args.push_back(reg(_argPool[m.argsOff + i]));
            clock.advance(2);
            const ExternFn *ext = m.ext;
            const int32_t ext_dst = m.dst;
            uint64_t v = (*ext)(ext_args);
            // The extern may have re-entered this Executor, growing
            // the register stack or splicing a new trace generation
            // that reallocated the decoded array (m dangles past this
            // point); refresh every pointer into them.
            code = _decoded.data();
            code_len = _decoded.size();
            regs = _regStack.data() + _frames.back().regBase;
            set(ext_dst, v);
            break;
          }
          case MOp::Ret:
          case MOp::CheckRet: {
            uint64_t value = m.a >= 0 ? reg(m.a) : 0;
            if (do_return(value, m.op == MOp::CheckRet))
                stop = true;
            if (!stop)
                continue;
            break;
          }
          case MOp::CfiLabel:
            // Executes as a no-op (an x86 prefetch-style label).
            break;
        }

        if (stop)
            break;
        if (_tier) {
            if (_rec.active) {
                TraceStep s;
                s.idx = uint32_t(pc);
                // m is only dereferenced for jump ops, which cannot
                // have invalidated the decoded array this dispatch.
                s.taken = op == MOp::Jump ||
                          (op == MOp::JumpIfZero &&
                           next_pc == m.target);
                _rec.steps.push_back(s);
                bool formed = false;
                if (next_pc == _rec.anchorIdx)
                    formed = endRecording(true, 0);
                else if (_rec.steps.size() >= _traceMaxInsts)
                    formed = endRecording(false, uint32_t(next_pc));
                if (formed) {
                    code = _decoded.data();
                    code_len = _decoded.size();
                }
            } else if ((op == MOp::Jump || op == MOp::JumpIfZero) &&
                       next_pc < pc) {
                // Taken backward branch: a loop back edge.
                profileAnchor(uint32_t(next_pc));
            }
        }
        pc = next_pc;
    }

    // A recording interrupted by a fault or the entry function's
    // return dies with the run (never spliced, never blacklisted).
    _rec.active = false;
    _frames.resize(frame_floor);
    _regStack.resize(reg_floor);
    sim::StatSet::add(_hInsts, result.instsExecuted);
    return result;
}

} // namespace vg::cc
