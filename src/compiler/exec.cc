#include "compiler/exec.hh"

#include "hw/layout.hh"
#include "sim/log.hh"

namespace vg::cc
{

const char *
faultName(ExecFault fault)
{
    switch (fault) {
      case ExecFault::None:
        return "none";
      case ExecFault::CfiViolation:
        return "cfi-violation";
      case ExecFault::MemFault:
        return "memory-fault";
      case ExecFault::BadInstruction:
        return "bad-instruction";
      case ExecFault::DivideByZero:
        return "divide-by-zero";
      case ExecFault::FuelExhausted:
        return "fuel-exhausted";
      case ExecFault::UnknownExtern:
        return "unknown-extern";
      case ExecFault::StackOverflow:
        return "stack-overflow";
      case ExecFault::BadCallTarget:
        return "bad-call-target";
    }
    return "?";
}

Executor::Executor(const MachineImage &image, MemPort &mem,
                   const ExternTable &externs, sim::SimContext &ctx,
                   uint64_t stack_base, uint64_t stack_size)
    : _image(image), _mem(mem), _externs(externs), _ctx(ctx),
      _stackBase(stack_base), _stackSize(stack_size)
{
    for (const auto &[name, info] : _image.functions)
        _byAddr[info.entryAddr] = &info;
}

const FuncInfo *
Executor::funcAt(uint64_t entry_addr) const
{
    auto it = _byAddr.find(entry_addr);
    return it == _byAddr.end() ? nullptr : it->second;
}

ExecResult
Executor::call(const std::string &name, const std::vector<uint64_t> &args)
{
    auto it = _image.functions.find(name);
    if (it == _image.functions.end()) {
        ExecResult r;
        r.fault = ExecFault::BadCallTarget;
        r.detail = "no such function " + name;
        return r;
    }
    return run(it->second, args);
}

ExecResult
Executor::callAddr(uint64_t entry_addr, const std::vector<uint64_t> &args)
{
    const FuncInfo *info = funcAt(entry_addr);
    if (!info) {
        ExecResult r;
        r.fault = ExecFault::BadCallTarget;
        r.detail = sim::strprintf("no function at %#lx",
                                  (unsigned long)entry_addr);
        return r;
    }
    return run(*info, args);
}

ExecResult
Executor::run(const FuncInfo &entry_fn, const std::vector<uint64_t> &args)
{
    ExecResult result;
    uint64_t sp = _stackBase + _stackSize;
    std::vector<Frame> stack;

    auto push_frame = [&](const FuncInfo &fn,
                          const std::vector<uint64_t> &fn_args,
                          uint64_t ret_addr, int caller_dst) -> bool {
        if (fn.frameBytes + 4096 > sp - _stackBase)
            return false;
        sp -= fn.frameBytes;
        Frame f;
        f.regs.assign(size_t(std::max(fn.numRegs, 1)), 0);
        for (size_t i = 0;
             i < fn_args.size() && i < size_t(fn.numParams); i++)
            f.regs[i] = fn_args[i];
        f.framePtr = sp;
        f.returnAddr = ret_addr;
        f.callerDst = caller_dst;
        stack.push_back(std::move(f));
        return true;
    };

    if (!push_frame(entry_fn, args, 0, -1)) {
        result.fault = ExecFault::StackOverflow;
        return result;
    }

    uint64_t pc = entry_fn.entryAddr;
    const FuncInfo *cur_fn = &entry_fn;

    auto fault = [&](ExecFault kind, const std::string &detail) {
        result.fault = kind;
        result.detail = detail;
        _ctx.stats().add(std::string("exec.fault.") + faultName(kind));
    };

    // Return from the current frame; true if the whole run finished.
    auto do_return = [&](uint64_t value, bool checked) -> bool {
        Frame done = std::move(stack.back());
        stack.pop_back();
        sp += cur_fn->frameBytes;
        if (stack.empty()) {
            result.ok = true;
            result.value = value;
            return true;
        }
        if (checked) {
            // Validate the CFI label at the return site.
            const MInst *site = _image.at(done.returnAddr);
            _ctx.clock().advance(_ctx.costs().cfiPerTransfer);
            if (!site || site->op != MOp::CfiLabel ||
                site->imm != cfiLabelValue) {
                fault(ExecFault::CfiViolation,
                      "return to unlabeled site");
                return true;
            }
        }
        if (done.callerDst >= 0)
            stack.back().regs[size_t(done.callerDst)] = value;
        pc = done.returnAddr;
        // Re-derive the enclosing function for frame accounting.
        const FuncInfo *enclosing = nullptr;
        for (const auto &[addr, info] : _byAddr) {
            if (addr <= pc)
                enclosing = info;
            else
                break;
        }
        cur_fn = enclosing;
        return false;
    };

    auto enter_call = [&](uint64_t target, const std::vector<uint64_t> &a,
                          uint64_t ret_addr, int dst,
                          bool checked) -> bool {
        if (checked) {
            _ctx.clock().advance(_ctx.costs().cfiPerTransfer);
            // Mask the target out of user space (paper: the CFI check
            // "masks the target address to ensure that it is not a
            // user-space address").
            target |= hw::kernelBase;
            const MInst *at_target = _image.at(target);
            if (!at_target || at_target->op != MOp::CfiLabel ||
                at_target->imm != cfiLabelValue) {
                fault(ExecFault::CfiViolation,
                      sim::strprintf("indirect call to %#lx without "
                                     "label",
                                     (unsigned long)target));
                return false;
            }
        }
        const FuncInfo *callee = funcAt(target);
        if (!callee) {
            fault(ExecFault::BadCallTarget,
                  sim::strprintf("call to %#lx which is not a function "
                                 "entry",
                                 (unsigned long)target));
            return false;
        }
        if (!push_frame(*callee, a, ret_addr, dst)) {
            fault(ExecFault::StackOverflow, "module stack exhausted");
            return false;
        }
        pc = callee->entryAddr;
        cur_fn = callee;
        return true;
    };

    while (true) {
        if (result.instsExecuted >= _fuel) {
            fault(ExecFault::FuelExhausted, "instruction budget spent");
            break;
        }
        const MInst *m = _image.at(pc);
        if (!m) {
            fault(ExecFault::BadInstruction,
                  sim::strprintf("pc %#lx outside code",
                                 (unsigned long)pc));
            break;
        }
        result.instsExecuted++;
        _ctx.clock().advance(1);

        Frame &frame = stack.back();
        auto reg = [&](int r) -> uint64_t {
            return r < 0 ? 0 : frame.regs[size_t(r)];
        };
        auto set = [&](int r, uint64_t v) {
            if (r >= 0)
                frame.regs[size_t(r)] = v;
        };

        uint64_t next_pc = pc + mInstBytes;
        bool stop = false;

        switch (m->op) {
          case MOp::ConstI:
            set(m->dst, m->imm);
            break;
          case MOp::Mov:
            set(m->dst, reg(m->a));
            break;
          case MOp::Add:
            set(m->dst, reg(m->a) + reg(m->b));
            break;
          case MOp::Sub:
            set(m->dst, reg(m->a) - reg(m->b));
            break;
          case MOp::Mul:
            set(m->dst, reg(m->a) * reg(m->b));
            break;
          case MOp::UDiv:
          case MOp::URem: {
            uint64_t d = reg(m->b);
            if (d == 0) {
                fault(ExecFault::DivideByZero, "division by zero");
                stop = true;
                break;
            }
            set(m->dst, m->op == MOp::UDiv ? reg(m->a) / d
                                           : reg(m->a) % d);
            break;
          }
          case MOp::And:
            set(m->dst, reg(m->a) & reg(m->b));
            break;
          case MOp::Or:
            set(m->dst, reg(m->a) | reg(m->b));
            break;
          case MOp::Xor:
            set(m->dst, reg(m->a) ^ reg(m->b));
            break;
          case MOp::Shl:
            set(m->dst, reg(m->a) << (reg(m->b) & 63));
            break;
          case MOp::LShr:
            set(m->dst, reg(m->a) >> (reg(m->b) & 63));
            break;
          case MOp::AShr:
            set(m->dst,
                uint64_t(int64_t(reg(m->a)) >> (reg(m->b) & 63)));
            break;
          case MOp::ICmp: {
            uint64_t a = reg(m->a), b = reg(m->b);
            int64_t sa = int64_t(a), sb = int64_t(b);
            bool v = false;
            switch (m->pred) {
              case vir::CmpPred::Eq:
                v = a == b;
                break;
              case vir::CmpPred::Ne:
                v = a != b;
                break;
              case vir::CmpPred::Ult:
                v = a < b;
                break;
              case vir::CmpPred::Ule:
                v = a <= b;
                break;
              case vir::CmpPred::Ugt:
                v = a > b;
                break;
              case vir::CmpPred::Uge:
                v = a >= b;
                break;
              case vir::CmpPred::Slt:
                v = sa < sb;
                break;
              case vir::CmpPred::Sle:
                v = sa <= sb;
                break;
              case vir::CmpPred::Sgt:
                v = sa > sb;
                break;
              case vir::CmpPred::Sge:
                v = sa >= sb;
                break;
            }
            set(m->dst, v ? 1 : 0);
            break;
          }
          case MOp::Load: {
            uint64_t v = 0;
            if (!_mem.read(reg(m->a), unsigned(widthBytes(m->width)),
                           v)) {
                fault(ExecFault::MemFault,
                      sim::strprintf("load fault at %#lx",
                                     (unsigned long)reg(m->a)));
                stop = true;
                break;
            }
            _ctx.clock().advance(1);
            set(m->dst, v);
            break;
          }
          case MOp::Store:
            if (!_mem.write(reg(m->a), unsigned(widthBytes(m->width)),
                            reg(m->b))) {
                fault(ExecFault::MemFault,
                      sim::strprintf("store fault at %#lx",
                                     (unsigned long)reg(m->a)));
                stop = true;
                break;
            }
            _ctx.clock().advance(1);
            break;
          case MOp::Memcpy: {
            uint64_t len = reg(m->c);
            if (!_mem.copy(reg(m->a), reg(m->b), len)) {
                fault(ExecFault::MemFault, "memcpy fault");
                stop = true;
                break;
            }
            _ctx.clock().advance(len / _ctx.costs().bulkBytesPerCycle +
                                 1);
            break;
          }
          case MOp::FrameAddr:
            set(m->dst, frame.framePtr + m->imm);
            break;
          case MOp::Jump:
            next_pc = m->imm;
            break;
          case MOp::JumpIfZero:
            if (reg(m->a) == 0)
                next_pc = m->imm;
            break;
          case MOp::CallDirect: {
            std::vector<uint64_t> call_args;
            call_args.reserve(m->args.size());
            for (int r : m->args)
                call_args.push_back(reg(r));
            if (!enter_call(m->imm, call_args, next_pc, m->dst, false))
                stop = true;
            else
                next_pc = pc; // pc already updated by enter_call
            if (!stop)
                continue;
            break;
          }
          case MOp::CallInd:
          case MOp::CallIndChecked: {
            std::vector<uint64_t> call_args;
            call_args.reserve(m->args.size());
            for (int r : m->args)
                call_args.push_back(reg(r));
            bool checked = m->op == MOp::CallIndChecked;
            if (!enter_call(reg(m->a), call_args, next_pc, m->dst,
                            checked))
                stop = true;
            if (!stop)
                continue;
            break;
          }
          case MOp::CallExt: {
            auto it = _externs.fns.find(m->callee);
            if (it == _externs.fns.end()) {
                fault(ExecFault::UnknownExtern,
                      "unresolved symbol " + m->callee);
                stop = true;
                break;
            }
            std::vector<uint64_t> call_args;
            call_args.reserve(m->args.size());
            for (int r : m->args)
                call_args.push_back(reg(r));
            _ctx.clock().advance(2);
            set(m->dst, it->second(call_args));
            break;
          }
          case MOp::Ret:
          case MOp::CheckRet: {
            uint64_t value = reg(m->a >= 0 ? m->a : -1);
            // VIR Ret carries its value in `a`; lowered Ret keeps it.
            value = m->a >= 0 ? reg(m->a) : 0;
            if (do_return(value, m->op == MOp::CheckRet))
                stop = true;
            if (!stop)
                continue;
            break;
          }
          case MOp::CfiLabel:
            // Executes as a no-op (an x86 prefetch-style label).
            break;
        }

        if (stop)
            break;
        pc = next_pc;
    }

    _ctx.stats().add("exec.insts", result.instsExecuted);
    return result;
}

} // namespace vg::cc
