/**
 * @file
 * The trusted translator: the only way code enters the kernel.
 *
 * Pipeline (S 4.2, S 5): parse VIR text -> verify -> sandbox pass (IR)
 * -> lower to machine code -> sandbox-mask fusion peephole (machine)
 * -> CFI pass (machine) -> layout -> machine-code safety verifier
 * (McodeVerifier: refuse images whose sandbox/CFI instrumentation
 * cannot be statically proven; VgConfig::verifyMcode) -> information
 * flow verifier (IflowVerifier: refuse images that can carry ghost
 * data to an OS-visible channel unsealed; VgConfig::verifyIflow) ->
 * sign the translation with the VM's HMAC key -> cache. Translations are looked
 * up by the SHA-256 of their source, so recompilation of unchanged
 * modules is free and tampered caches are detected via the signature.
 * Rejected translations are never signed and never cached.
 */

#ifndef VG_COMPILER_TRANSLATOR_HH
#define VG_COMPILER_TRANSLATOR_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "compiler/codegen.hh"
#include "compiler/iflow.hh"
#include "compiler/mcode.hh"
#include "compiler/mverify.hh"
#include "compiler/passes.hh"
#include "compiler/trace.hh"
#include "crypto/hmac.hh"
#include "sim/context.hh"
#include "vir/module.hh"

namespace vg::cc
{

/** Result of a translation request. */
struct TranslateResult
{
    bool ok = false;
    std::string error;
    std::shared_ptr<const MachineImage> image;
    PassStats sandboxStats;
    PassStats cfiStats;
    PassStats fuseStats;
    bool fromCache = false;

    /** Machine-code verifier report (populated when verifyMcode is on
     *  and the translation was not served from cache). */
    McodeVerifyResult mverify;

    /** Information-flow verifier report (populated when verifyIflow is
     *  on and the translation was not served from cache). */
    IflowResult iflow;
};

/** Ahead-of-time translator with a signed translation cache. */
class Translator
{
  public:
    /**
     * @param signing_key HMAC key owned by the SVA VM
     * @param ctx         simulation context (instrumentation flags)
     */
    Translator(const std::vector<uint8_t> &signing_key,
               sim::SimContext &ctx);

    /** Translate VIR text; code is placed at @p code_base. */
    TranslateResult translateText(const std::string &text,
                                  uint64_t code_base);

    /** Translate an already-parsed module (consumed by the passes). */
    TranslateResult translateModule(vir::Module mod, uint64_t code_base);

    /**
     * Verify an image's signature; the SVA VM refuses to execute
     * images that fail (S 4.5: no unsigned native code).
     */
    bool verifySignature(const MachineImage &image) const;

    /**
     * Splice one recorded hot trace into @p base (which must be a
     * signed translation): lay the trace block out through the same
     * builder, re-run the machine-code verifier over the whole spliced
     * image (VgConfig::verifyMcode; a splice the verifier cannot
     * re-prove is refused, never signed and never cached), re-sign, and
     * register the result in the translation cache under a key derived
     * from the base image's signature — its translation generation —
     * plus the trace descriptor. Repeated formation of the same trace
     * on the same base is therefore served from cache.
     */
    TranslateResult spliceTrace(const MachineImage &base,
                                const TraceRequest &req);

    /** Number of cache hits (stats / tests). */
    uint64_t cacheHits() const { return _cacheHits; }

    /**
     * Test-only: a hook run on each freshly laid-out image before the
     * machine-code verifier and signing. The fault-injection sweeps use
     * it to model a miscompiling pass pipeline and prove the verifier
     * (not the passes) is what keeps bad code out. Pass nullptr to
     * clear.
     */
    void
    setPostLayoutHook(std::function<void(MachineImage &)> hook)
    {
        _postLayoutHook = std::move(hook);
    }

  private:
    crypto::Digest sign(const MachineImage &image) const;

    std::vector<uint8_t> _signingKey;
    /** Precomputed HMAC pad states for _signingKey. */
    crypto::HmacSha256 _signer;
    sim::SimContext &_ctx;
    std::map<std::string, std::shared_ptr<const MachineImage>> _cache;
    uint64_t _cacheHits = 0;
    std::function<void(MachineImage &)> _postLayoutHook;
};

} // namespace vg::cc

#endif // VG_COMPILER_TRANSLATOR_HH
