/**
 * @file
 * IflowVerifier implementation.
 *
 * Structure mirrors mverify.cc: function extents are recovered from
 * the sorted FuncInfo entry addresses, each function runs a worklist
 * forward dataflow at instruction granularity, and trace blocks are
 * pseudo-functions whose entry state is the home function's fixpoint
 * at the anchor. On top of that sits an interprocedural fixpoint:
 *
 *   repeat until no summary changes:
 *       for each non-trace function, in address order:
 *           run the intra-function dataflow from its current entry
 *           summary; direct calls push argument taint into callee
 *           entry summaries and pull callee return taint into the
 *           call result.
 *
 * Everything is monotone over a finite lattice (taint bits and
 * provenance bits only ever get set; pointer kinds only ever degrade
 * toward the conservative join; constants only ever become unknown),
 * so the loop terminates. Findings, stats and the exported facts are
 * collected in one final deterministic pass over the stable fixpoint,
 * never from a transient optimistic state.
 */

#include "compiler/iflow.hh"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "compiler/passes.hh"
#include "hw/layout.hh"
#include "sva/iflow_meta.hh"

namespace vg::cc
{

using sva::IfChannel;
using sva::IfExternInfo;
using sva::IfRole;

const char *
iflowRuleId(IfRule rule)
{
    switch (rule) {
    case IfRule::DirectLeak: return "VG-IF-01";
    case IfRule::SpillLeak: return "VG-IF-02";
    case IfRule::CallLeak: return "VG-IF-03";
    case IfRule::UnsealedSwap: return "VG-IF-04";
    case IfRule::ArithLeak: return "VG-IF-05";
    }
    return "VG-IF-??";
}

std::string
IflowFinding::render(uint64_t entryAddr) const
{
    char buf[96];
    if (entryAddr && addr >= entryAddr)
        std::snprintf(buf, sizeof(buf), "+0x%llx",
                      (unsigned long long)(addr - entryAddr));
    else
        std::snprintf(buf, sizeof(buf), " @ 0x%llx",
                      (unsigned long long)addr);
    std::string s = function + buf;
    s += ": [";
    s += iflowRuleId(rule);
    s += "] ";
    s += message;
    return s;
}

std::string
IflowResult::message() const
{
    std::string s;
    for (const IflowFinding &f : findings) {
        if (!s.empty())
            s += '\n';
        s += f.render();
    }
    return s;
}

namespace
{

/** Provenance trail bits carried alongside the taint bit. */
constexpr uint8_t kViaSpill = 1; ///< passed through a frame slot
constexpr uint8_t kViaCall = 2;  ///< crossed a call/return boundary
constexpr uint8_t kViaArith = 4; ///< transformed by arithmetic

struct Taint
{
    bool t = false;
    uint8_t prov = 0;

    /** this |= other; returns true when this changed. */
    bool
    join(const Taint &o)
    {
        bool changed = (o.t && !t) || (o.prov & ~prov);
        t |= o.t;
        prov |= o.prov;
        return changed;
    }
};

/** What a register's value points at, if anything. */
enum class Ptr : uint8_t
{
    None,  ///< unknown / kernel-visible memory
    Frame, ///< the function's private call frame
    Ghost, ///< the ghost region (unmasked)
    Sink,  ///< an OS-visible sink window (e.g. swap staging)
};

struct AbsVal
{
    Taint taint;
    Ptr ptr = Ptr::None;
    bool offKnown = false; ///< Frame: offset is exactly `off`
    uint64_t off = 0;
    IfChannel channel = IfChannel::None; ///< Sink: which channel
    bool constKnown = false;
    uint64_t cval = 0;

    /** Lattice join; returns true when this changed. */
    bool
    join(const AbsVal &o)
    {
        bool changed = taint.join(o.taint);
        if (ptr != o.ptr) {
            // Differing kinds degrade conservatively: a maybe-sink is
            // a sink, a maybe-ghost pointer is a ghost pointer, and a
            // maybe-frame pointer is NOT a frame pointer (treating it
            // as private would hide a leak through the other kind).
            Ptr joined;
            if (ptr == Ptr::Sink || o.ptr == Ptr::Sink)
                joined = Ptr::Sink;
            else if (ptr == Ptr::Ghost || o.ptr == Ptr::Ghost)
                joined = Ptr::Ghost;
            else
                joined = Ptr::None;
            if (joined == Ptr::Sink) {
                IfChannel ch =
                    ptr == Ptr::Sink ? channel : o.channel;
                if (channel != ch) {
                    channel = ch;
                    changed = true;
                }
            }
            if (joined != ptr) {
                ptr = joined;
                changed = true;
            }
            if (offKnown) {
                offKnown = false;
                changed = true;
            }
        } else {
            if (ptr == Ptr::Frame &&
                (offKnown != o.offKnown || off != o.off) && offKnown) {
                offKnown = false;
                changed = true;
            }
            if (ptr == Ptr::Sink && channel != o.channel) {
                // Two different sink windows: keep ours (any channel
                // still reports); no lattice growth issue since the
                // kinds match.
            }
        }
        if (constKnown && (!o.constKnown || o.cval != cval)) {
            constKnown = false;
            changed = true;
        }
        return changed;
    }
};

/** Field-sensitive model of the function's private frame. */
struct FrameState
{
    std::map<uint64_t, Taint> slots;
    Taint blob; ///< taint stored at statically unknown offsets

    bool
    join(const FrameState &o)
    {
        bool changed = blob.join(o.blob);
        for (const auto &[off, t] : o.slots)
            changed |= slots[off].join(t);
        return changed;
    }
};

struct State
{
    std::vector<AbsVal> regs;
    FrameState frame;

    bool
    join(const State &o)
    {
        bool changed = frame.join(o.frame);
        for (size_t i = 0; i < regs.size() && i < o.regs.size(); i++)
            changed |= regs[i].join(o.regs[i]);
        return changed;
    }
};

/** Per-function interprocedural summary. */
struct FuncSummary
{
    std::vector<Taint> paramTaint;   ///< join over all observed calls
    std::vector<uint8_t> paramGhost; ///< arg may be a ghost pointer
    Taint ret;                       ///< join over all return values
};

struct FuncRange
{
    const FuncInfo *info = nullptr;
    size_t begin = 0;
    size_t end = 0;
};

/** The destination register an instruction writes, or -1 (mirrors
 *  mverify's defReg; kept local to avoid exporting internals). */
int
defReg(const MInst &m)
{
    switch (m.op) {
    case MOp::Store:
    case MOp::Memcpy:
    case MOp::Jump:
    case MOp::JumpIfZero:
    case MOp::Ret:
    case MOp::CheckRet:
    case MOp::CfiLabel: return -1;
    default: return m.dst;
    }
}

const char *
channelNoun(IfChannel c)
{
    switch (c) {
    case IfChannel::Nic: return "a NIC descriptor payload";
    case IfChannel::Disk: return "a raw disk write";
    case IfChannel::Swap: return "the swap channel";
    case IfChannel::Stat: return "a kernel stat counter";
    case IfChannel::Log: return "the kernel log";
    case IfChannel::Kmem: return "kernel-visible memory";
    case IfChannel::Extern: return "an unannotated extern";
    case IfChannel::None: break;
    }
    return "an OS-visible channel";
}

/** Pick the rule that best describes a leak: the swap channel is its
 *  own rule; otherwise the most specific provenance wins. */
IfRule
ruleFor(IfChannel channel, uint8_t prov)
{
    if (channel == IfChannel::Swap)
        return IfRule::UnsealedSwap;
    if (prov & kViaCall)
        return IfRule::CallLeak;
    if (prov & kViaSpill)
        return IfRule::SpillLeak;
    if (prov & kViaArith)
        return IfRule::ArithLeak;
    return IfRule::DirectLeak;
}

std::string
provTrail(uint8_t prov)
{
    if (!prov)
        return "";
    std::string s = " (taint crossed";
    bool first = true;
    auto add = [&](const char *what) {
        if (!first)
            s += ",";
        s += " ";
        s += what;
        first = false;
    };
    if (prov & kViaCall)
        add("a call boundary");
    if (prov & kViaSpill)
        add("a frame spill");
    if (prov & kViaArith)
        add("arithmetic");
    s += ")";
    return s;
}

/**
 * The whole-image analysis. One instance per verify() call; holds the
 * recovered ranges, the interprocedural summaries and, during the
 * reporting pass, the findings and exported facts.
 */
class Analysis
{
  public:
    explicit Analysis(const MachineImage &img) : _img(img) {}

    IflowResult
    run(IflowFacts *facts)
    {
        recoverRanges();
        findAddressTaken();
        for (const FuncRange &r : _funcs)
            if (r.info)
                _summaries[r.info->name] = FuncSummary{
                    std::vector<Taint>((size_t)std::max(
                        r.info->numParams, 0)),
                    std::vector<uint8_t>((size_t)std::max(
                        r.info->numParams, 0)),
                    Taint{}};

        // Interprocedural fixpoint over the summaries.
        bool changed = true;
        while (changed) {
            changed = false;
            for (const FuncRange &r : _funcs) {
                if (!r.info || _traceAt.count(r.info->entryAddr))
                    continue;
                Flow flow = analyze(r, entryState(r), true);
                changed |= _summariesChanged;
                _summariesChanged = false;
                (void)flow;
            }
        }

        // Final deterministic pass: findings, facts, stats.
        IflowResult result;
        _collect = &result;
        if (facts) {
            facts->taintedRegsAt.assign(_img.code.size(), {});
            facts->visibleStoreAt.assign(_img.code.size(), 0);
            _facts = facts;
        }
        std::map<std::string, Flow> flows;
        for (const FuncRange &r : _funcs) {
            if (!r.info || _traceAt.count(r.info->entryAddr))
                continue;
            flows[r.info->name] = analyze(r, entryState(r), false);
            result.functionsChecked++;
            result.instsChecked += r.end - r.begin;
        }
        for (const FuncRange &r : _funcs) {
            if (!r.info)
                continue;
            auto tIt = _traceAt.find(r.info->entryAddr);
            if (tIt == _traceAt.end())
                continue;
            analyzeTrace(r, *tIt->second, flows);
            result.functionsChecked++;
            result.instsChecked += r.end - r.begin;
        }
        _collect = nullptr;
        _facts = nullptr;
        std::sort(result.findings.begin(), result.findings.end(),
                  [](const IflowFinding &a, const IflowFinding &b) {
                      return a.addr != b.addr ? a.addr < b.addr
                                              : a.message < b.message;
                  });
        return result;
    }

  private:
    struct Flow
    {
        std::vector<State> in;
        std::vector<bool> reached;
    };

    void
    recoverRanges()
    {
        _funcs.reserve(_img.functions.size());
        for (const auto &[name, fi] : _img.functions) {
            (void)name;
            FuncRange r;
            r.info = &fi;
            _funcs.push_back(r);
        }
        std::sort(_funcs.begin(), _funcs.end(),
                  [](const FuncRange &a, const FuncRange &b) {
                      return a.info->entryAddr < b.info->entryAddr;
                  });
        for (size_t i = 0; i < _funcs.size(); i++) {
            FuncRange &r = _funcs[i];
            if (!_img.contains(r.info->entryAddr)) {
                r.info = nullptr;
                continue;
            }
            r.begin = (size_t)((r.info->entryAddr - _img.codeBase) /
                               mInstBytes);
            r.end =
                i + 1 < _funcs.size() &&
                        _img.contains(_funcs[i + 1].info->entryAddr)
                    ? (size_t)((_funcs[i + 1].info->entryAddr -
                                _img.codeBase) /
                               mInstBytes)
                    : _img.code.size();
        }
        for (const TraceInfo &t : _img.traces)
            _traceAt[t.entryAddr] = &t;
        for (const FuncRange &r : _funcs)
            if (r.info)
                _rangeByName[r.info->name] = &r;
        for (const FuncRange &r : _funcs)
            if (r.info)
                _funcByEntry[r.info->entryAddr] = r.info;
    }

    /** Functions whose entry address appears as a ConstI immediate
     *  (funcaddr lowering) — the possible targets of indirect calls. */
    void
    findAddressTaken()
    {
        for (const MInst &m : _img.code) {
            if (m.op != MOp::ConstI)
                continue;
            auto it = _funcByEntry.find(m.imm);
            if (it != _funcByEntry.end() &&
                !_traceAt.count(it->second->entryAddr))
                _addressTaken.insert(it->second->name);
        }
    }

    State
    entryState(const FuncRange &r) const
    {
        State s;
        s.regs.assign((size_t)std::max(r.info->numRegs, 0), AbsVal{});
        auto it = _summaries.find(r.info->name);
        if (it == _summaries.end())
            return s;
        const FuncSummary &sum = it->second;
        for (size_t p = 0;
             p < sum.paramTaint.size() && p < s.regs.size(); p++) {
            s.regs[p].taint = sum.paramTaint[p];
            if (sum.paramGhost[p])
                s.regs[p].ptr = Ptr::Ghost;
        }
        return s;
    }

    uint64_t addrOf(size_t idx) const
    {
        return _img.codeBase + idx * mInstBytes;
    }

    void
    report(IfRule rule, const FuncRange &r, size_t idx,
           std::string msg)
    {
        if (!_collect)
            return;
        IflowFinding f;
        f.rule = rule;
        f.function = r.info->name;
        f.addr = addrOf(idx);
        f.message = std::move(msg);
        _collect->findings.push_back(std::move(f));
    }

    void
    leak(const FuncRange &r, size_t idx, IfChannel channel,
         uint8_t prov, const std::string &what)
    {
        report(ruleFor(channel, prov), r, idx,
               what + " carries ghost-derived data into " +
                   std::string(channelNoun(channel)) +
                   " without declassification" + provTrail(prov));
    }

    /** Propagate argument taint into a named callee's summary and
     *  return its current return taint (via-call stamped). */
    Taint
    callInto(const std::string &callee, const MInst &m,
             const State &s)
    {
        auto it = _summaries.find(callee);
        if (it == _summaries.end())
            return Taint{};
        FuncSummary &sum = it->second;
        for (size_t j = 0;
             j < m.args.size() && j < sum.paramTaint.size(); j++) {
            int a = m.args[j];
            if (a < 0 || (size_t)a >= s.regs.size())
                continue;
            Taint crossed = s.regs[(size_t)a].taint;
            if (crossed.t)
                crossed.prov |= kViaCall;
            _summariesChanged |= sum.paramTaint[j].join(crossed);
            if (s.regs[(size_t)a].ptr == Ptr::Ghost &&
                !sum.paramGhost[j]) {
                sum.paramGhost[j] = 1;
                _summariesChanged = true;
            }
        }
        Taint ret = sum.ret;
        if (ret.t)
            ret.prov |= kViaCall;
        return ret;
    }

    /** Join of the taint a load from the frame can observe. */
    Taint
    frameLoad(const FrameState &f, const AbsVal &addr) const
    {
        Taint t = f.blob;
        if (addr.offKnown) {
            auto it = f.slots.find(addr.off);
            if (it != f.slots.end())
                t.join(it->second);
        } else {
            for (const auto &[off, slot] : f.slots) {
                (void)off;
                t.join(slot);
            }
        }
        if (t.t)
            t.prov |= kViaSpill;
        return t;
    }

    /**
     * The transfer function. @p r is the enclosing extent, @p idx the
     * absolute instruction index; updates @p s in place, reporting
     * findings/facts when in the collection pass. @p summarize gates
     * interprocedural summary propagation (fixpoint phase only) —
     * during the reporting pass summaries are already stable and
     * trace blocks must not perturb them.
     */
    void
    transfer(const FuncRange &r, size_t idx, State &s,
             const std::vector<int> &maskGen, bool summarize)
    {
        const MInst &m = _img.code[idx];
        const int numRegs = (int)s.regs.size();
        AbsVal scratch;
        auto reg = [&](int rn) -> AbsVal & {
            if (rn < 0 || rn >= numRegs) {
                scratch = AbsVal{};
                return scratch;
            }
            return s.regs[(size_t)rn];
        };

        if (_facts) {
            auto &list = _facts->taintedRegsAt[idx];
            list.clear();
            for (int rn = 0; rn < numRegs; rn++)
                if (s.regs[(size_t)rn].taint.t)
                    list.push_back(rn);
        }

        // A matched unfused mask sequence behaves like SandboxAddr at
        // its final instruction: dst := sandbox(src). Masking is
        // address-formation glue, not laundering — taint passes
        // through without the via-arith stamp, and a ghost pointer
        // comes out relocated into the kernel half (Ptr::None).
        int seqSrc = maskGen.empty() ? -1 : maskGen[idx - r.begin];
        if (m.op == MOp::SandboxAddr || seqSrc >= 0) {
            int srcReg = m.op == MOp::SandboxAddr ? m.a : seqSrc;
            AbsVal v = reg(srcReg);
            if (v.ptr == Ptr::Ghost)
                v.ptr = Ptr::None;
            if (v.constKnown)
                v.cval = hw::sandboxAddress(v.cval);
            v.offKnown = v.ptr == Ptr::Frame && v.offKnown;
            reg(defReg(m)) = v;
            return;
        }

        switch (m.op) {
        case MOp::ConstI: {
            AbsVal v;
            v.constKnown = true;
            v.cval = m.imm;
            if (m.imm >= hw::ghostBase && m.imm < hw::ghostEnd)
                v.ptr = Ptr::Ghost;
            reg(m.dst) = v;
            break;
        }
        case MOp::FrameAddr: {
            AbsVal v;
            v.ptr = Ptr::Frame;
            v.offKnown = true;
            v.off = m.imm;
            reg(m.dst) = v;
            break;
        }
        case MOp::Mov:
            reg(m.dst) = reg(m.a);
            break;
        case MOp::Add:
        case MOp::Sub:
        case MOp::Mul:
        case MOp::UDiv:
        case MOp::URem:
        case MOp::And:
        case MOp::Or:
        case MOp::Xor:
        case MOp::Shl:
        case MOp::LShr:
        case MOp::AShr:
        case MOp::ICmp: {
            AbsVal a = reg(m.a);
            AbsVal b = reg(m.b);
            AbsVal v;
            v.taint = a.taint;
            v.taint.join(b.taint);
            if (v.taint.t)
                v.taint.prov |= kViaArith;
            // Pointer arithmetic: Add/Sub keep the pointed-at kind so
            // indexed ghost loads and sink-window stores stay visible.
            if (m.op == MOp::Add || m.op == MOp::Sub) {
                const AbsVal &p = a.ptr != Ptr::None ? a : b;
                const AbsVal &q = a.ptr != Ptr::None ? b : a;
                if (p.ptr != Ptr::None) {
                    v.ptr = p.ptr;
                    v.channel = p.channel;
                    if (p.ptr == Ptr::Frame && p.offKnown &&
                        q.constKnown) {
                        v.offKnown = true;
                        v.off = m.op == MOp::Add ? p.off + q.cval
                                                 : p.off - q.cval;
                    }
                }
                if (a.constKnown && b.constKnown) {
                    v.constKnown = true;
                    v.cval = m.op == MOp::Add ? a.cval + b.cval
                                              : a.cval - b.cval;
                    if (v.cval >= hw::ghostBase &&
                        v.cval < hw::ghostEnd)
                        v.ptr = Ptr::Ghost;
                }
            }
            reg(m.dst) = v;
            break;
        }
        case MOp::Load: {
            AbsVal addr = reg(m.a);
            AbsVal v;
            if (addr.ptr == Ptr::Ghost) {
                v.taint.t = true; // a source: ghost memory read
            } else if (addr.ptr == Ptr::Frame) {
                v.taint = frameLoad(s.frame, addr);
            }
            reg(m.dst) = v;
            break;
        }
        case MOp::Store: {
            AbsVal addr = reg(m.a);
            AbsVal val = reg(m.b);
            if (_facts)
                _facts->visibleStoreAt[idx] =
                    addr.ptr == Ptr::None || addr.ptr == Ptr::Sink;
            if (addr.ptr == Ptr::Frame) {
                if (addr.offKnown)
                    s.frame.slots[addr.off] = val.taint;
                else
                    s.frame.blob.join(val.taint);
            } else if (addr.ptr == Ptr::Ghost) {
                // Writing into ghost memory is the app's own business.
            } else if (val.taint.t) {
                IfChannel ch = addr.ptr == Ptr::Sink
                                   ? addr.channel
                                   : IfChannel::Kmem;
                leak(r, idx, ch, val.taint.prov,
                     "store of register %" + std::to_string(m.b));
            }
            break;
        }
        case MOp::Memcpy: {
            AbsVal dst = reg(m.a);
            AbsVal src = reg(m.b);
            AbsVal len = reg(m.c);
            Taint data;
            if (src.ptr == Ptr::Ghost) {
                data.t = true;
            } else if (src.ptr == Ptr::Frame) {
                data = frameLoad(s.frame, src);
            }
            data.join(len.taint); // a ghost-derived length leaks too
            if (dst.ptr == Ptr::Frame) {
                s.frame.blob.join(data);
            } else if (dst.ptr != Ptr::Ghost && data.t) {
                IfChannel ch = dst.ptr == Ptr::Sink ? dst.channel
                                                    : IfChannel::Kmem;
                leak(r, idx, ch, data.prov,
                     "memcpy from register %" + std::to_string(m.b));
            }
            break;
        }
        case MOp::CallExt: {
            const IfExternInfo *info = sva::iflowExternInfo(m.callee);
            AbsVal v;
            if (!info) {
                // Default deny: unknown externs publish their args.
                for (size_t j = 0; j < m.args.size(); j++) {
                    const AbsVal &a = reg(m.args[j]);
                    if (a.taint.t)
                        leak(r, idx, IfChannel::Extern, a.taint.prov,
                             "argument " + std::to_string(j) +
                                 " of extern '" + m.callee + "'");
                }
            } else {
                switch (info->role) {
                case IfRole::SourceData:
                    v.taint.t = true;
                    break;
                case IfRole::SourcePtr:
                    v.ptr = Ptr::Ghost;
                    break;
                case IfRole::Declassifier:
                    // Result is sanctioned ciphertext: clean.
                    break;
                case IfRole::SinkPtr:
                    v.ptr = Ptr::Sink;
                    v.channel = info->channel;
                    [[fallthrough]];
                case IfRole::Sink:
                    for (size_t j = 0; j < m.args.size(); j++) {
                        const AbsVal &a = reg(m.args[j]);
                        if (a.taint.t)
                            leak(r, idx, info->channel, a.taint.prov,
                                 "argument " + std::to_string(j) +
                                     " of '" + m.callee + "'");
                    }
                    break;
                }
            }
            reg(defReg(m)) = v;
            break;
        }
        case MOp::CallDirect: {
            AbsVal v;
            auto it = _funcByEntry.find(m.imm);
            if (it != _funcByEntry.end()) {
                if (summarize)
                    v.taint = callInto(it->second->name, m, s);
                else
                    v.taint = calleeRet(it->second->name);
            }
            reg(defReg(m)) = v;
            break;
        }
        case MOp::CallInd:
        case MOp::CallIndChecked: {
            AbsVal v;
            for (const std::string &callee : _addressTaken) {
                if (summarize)
                    v.taint.join(callInto(callee, m, s));
                else
                    v.taint.join(calleeRet(callee));
            }
            reg(defReg(m)) = v;
            break;
        }
        case MOp::Ret:
        case MOp::CheckRet:
            if (summarize && m.a >= 0 && m.a < numRegs) {
                auto it = _summaries.find(r.info->name);
                if (it != _summaries.end())
                    _summariesChanged |=
                        it->second.ret.join(reg(m.a).taint);
            }
            break;
        case MOp::Jump:
        case MOp::JumpIfZero:
        case MOp::CfiLabel:
            break;
        default:
            break;
        }
    }

    Taint
    calleeRet(const std::string &name) const
    {
        auto it = _summaries.find(name);
        if (it == _summaries.end())
            return Taint{};
        Taint t = it->second.ret;
        if (t.t)
            t.prov |= kViaCall;
        return t;
    }

    /** Precompute the unfused mask-sequence generators for an extent
     *  (same criteria as mverify: no jump may enter the interior). */
    std::vector<int>
    maskGenFor(const FuncRange &r) const
    {
        const size_t n = r.end - r.begin;
        std::vector<int> gen(n, -1);
        std::vector<bool> isJumpTarget(n, false);
        auto targetIdx = [&](const MInst &m) -> size_t {
            if (!_img.contains(m.imm))
                return SIZE_MAX;
            size_t idx =
                (size_t)((m.imm - _img.codeBase) / mInstBytes);
            if (idx < r.begin || idx >= r.end)
                return SIZE_MAX;
            return idx;
        };
        for (size_t i = r.begin; i < r.end; i++) {
            const MInst &m = _img.code[i];
            if (m.op != MOp::Jump && m.op != MOp::JumpIfZero)
                continue;
            size_t t = targetIdx(m);
            if (t != SIZE_MAX)
                isJumpTarget[t - r.begin] = true;
        }
        for (size_t i = 0; i < n; i++) {
            int dst = -1;
            if (i + sandboxMaskSeqLen <= n &&
                matchSandboxMaskSeq(_img.code, r.begin + i, dst) >=
                    0) {
                bool enterable = false;
                for (size_t k = 1; k < sandboxMaskSeqLen; k++)
                    enterable |= isJumpTarget[i + k];
                if (!enterable) {
                    // Record the sequence's SOURCE register at its
                    // final instruction; transfer() reads it there.
                    int src = matchSandboxMaskSeq(
                        _img.code, r.begin + i, dst);
                    gen[i + sandboxMaskSeqLen - 1] = src;
                }
            }
        }
        return gen;
    }

    /** Intra-function worklist fixpoint from @p entry. Reports
     *  findings/facts only when _collect/_facts are armed and
     *  @p summarize is false (the stable reporting pass). */
    Flow
    analyze(const FuncRange &r, const State &entry, bool summarize)
    {
        const size_t n = r.end - r.begin;
        Flow flow;
        flow.in.assign(n, State{});
        flow.reached.assign(n, false);
        if (n == 0)
            return flow;

        std::vector<int> maskGen = maskGenFor(r);

        auto targetIdx = [&](const MInst &m) -> size_t {
            if (!_img.contains(m.imm))
                return SIZE_MAX;
            size_t idx =
                (size_t)((m.imm - _img.codeBase) / mInstBytes);
            if (idx < r.begin || idx >= r.end)
                return SIZE_MAX;
            return idx;
        };
        auto successors = [&](size_t i, size_t succ[2]) -> int {
            const MInst &m = _img.code[r.begin + i];
            int cnt = 0;
            if (m.op == MOp::Ret || m.op == MOp::CheckRet)
                return 0;
            if (m.op == MOp::Jump || m.op == MOp::JumpIfZero) {
                size_t t = targetIdx(m);
                if (t != SIZE_MAX)
                    succ[cnt++] = t - r.begin;
                if (m.op == MOp::Jump)
                    return cnt;
            }
            if (i + 1 < n)
                succ[cnt++] = i + 1;
            return cnt;
        };

        flow.in[0] = entry;
        flow.reached[0] = true;

        // Fixpoint phase: no findings/facts. Collection is deferred
        // to a replay over the stable in-states below.
        IflowResult *savedCollect = _collect;
        IflowFacts *savedFacts = _facts;
        _collect = nullptr;
        _facts = nullptr;

        std::vector<size_t> work{0};
        std::vector<bool> inWork(n, false);
        inWork[0] = true;
        while (!work.empty()) {
            size_t i = work.back();
            work.pop_back();
            inWork[i] = false;
            State state = flow.in[i];
            transfer(r, r.begin + i, state, maskGen, summarize);
            size_t succ[2];
            int cnt = successors(i, succ);
            for (int k = 0; k < cnt; k++) {
                size_t sIdx = succ[k];
                bool changed;
                if (!flow.reached[sIdx]) {
                    flow.in[sIdx] = state;
                    flow.reached[sIdx] = true;
                    changed = true;
                } else {
                    changed = flow.in[sIdx].join(state);
                }
                if (changed && !inWork[sIdx]) {
                    inWork[sIdx] = true;
                    work.push_back(sIdx);
                }
            }
        }

        _collect = savedCollect;
        _facts = savedFacts;
        if (_collect || _facts) {
            // Replay each reached instruction at its fixpoint
            // in-state, in address order, to emit findings and facts
            // deterministically.
            for (size_t i = 0; i < n; i++) {
                if (!flow.reached[i])
                    continue;
                State state = flow.in[i];
                transfer(r, r.begin + i, state, maskGen, false);
            }
        }
        return flow;
    }

    /** Analyze one trace pseudo-function: entry state is the home's
     *  fixpoint at the anchor; side exits must not carry taint the
     *  interpreter path never saw at the landing. */
    void
    analyzeTrace(const FuncRange &r, const TraceInfo &trace,
                 const std::map<std::string, Flow> &homeFlows)
    {
        auto hIt = _rangeByName.find(trace.home);
        auto fIt = homeFlows.find(trace.home);
        State entry;
        entry.regs.assign((size_t)std::max(r.info->numRegs, 0),
                          AbsVal{});
        const FuncRange *home = nullptr;
        const Flow *homeFlow = nullptr;
        if (hIt != _rangeByName.end() && fIt != homeFlows.end()) {
            home = hIt->second;
            homeFlow = &fIt->second;
            if (_img.contains(trace.anchorAddr)) {
                size_t a = (size_t)((trace.anchorAddr -
                                     _img.codeBase) /
                                    mInstBytes);
                if (a >= home->begin && a < home->end &&
                    homeFlow->reached[a - home->begin]) {
                    entry = homeFlow->in[a - home->begin];
                    entry.regs.resize(
                        (size_t)std::max(r.info->numRegs, 0));
                }
            }
        }

        Flow flow = analyze(r, entry, false);

        // VG-IF-05 (laundering via the trace tier): a side exit whose
        // taint state is strictly richer than the interpreter path at
        // the landing smuggles ghost data into code verified without
        // it. Honest splices replay home instructions, so their exit
        // taint is one path's contribution to the home join and can
        // never exceed it.
        if (!home || !homeFlow)
            return;
        const size_t n = r.end - r.begin;
        for (size_t i = 0; i < n; i++) {
            if (!flow.reached[i])
                continue;
            const MInst &m = _img.code[r.begin + i];
            if (m.op != MOp::Jump && m.op != MOp::JumpIfZero)
                continue;
            if (!_img.contains(m.imm))
                continue;
            size_t t =
                (size_t)((m.imm - _img.codeBase) / mInstBytes);
            if (t >= r.begin && t < r.end)
                continue; // stays inside the trace
            if (t < home->begin || t >= home->end ||
                !homeFlow->reached[t - home->begin])
                continue;
            const State &landing = homeFlow->in[t - home->begin];
            size_t lim = std::min(flow.in[i].regs.size(),
                                  landing.regs.size());
            for (size_t rn = 0; rn < lim; rn++) {
                if (flow.in[i].regs[rn].taint.t &&
                    !landing.regs[rn].taint.t) {
                    report(IfRule::ArithLeak, r, r.begin + i,
                           "side exit carries ghost taint in "
                           "register %" +
                               std::to_string(rn) +
                               " that the interpreter path never "
                               "verified at the landing");
                    break;
                }
            }
        }
    }

    const MachineImage &_img;
    std::vector<FuncRange> _funcs;
    std::map<uint64_t, const TraceInfo *> _traceAt;
    std::map<std::string, const FuncRange *> _rangeByName;
    std::map<uint64_t, const FuncInfo *> _funcByEntry;
    std::set<std::string> _addressTaken;
    std::map<std::string, FuncSummary> _summaries;
    bool _summariesChanged = false;
    IflowResult *_collect = nullptr;
    IflowFacts *_facts = nullptr;
};

} // namespace

IflowResult
IflowVerifier::verify(const MachineImage &image,
                      IflowFacts *facts) const
{
    Analysis a(image);
    return a.run(facts);
}

} // namespace vg::cc
