/**
 * @file
 * Machine-level CFI instrumentation (S 4.3.1, S 5).
 *
 * One conservative label is used for all function entries and return
 * sites (matching the paper's precision, which avoids link-time call
 * graph construction). Returns and indirect calls are rewritten into
 * checked forms that the processor model enforces; the checked indirect
 * call also masks its target out of user space.
 */

#include "compiler/passes.hh"
#include "sim/log.hh"

namespace vg::cc
{

PassStats
cfiPass(std::vector<MInst> &code)
{
    PassStats stats;
    std::vector<MInst> out;
    out.reserve(code.size() * 2);
    std::vector<uint64_t> remap(code.size(), 0);

    auto label = []() {
        MInst l;
        l.op = MOp::CfiLabel;
        l.imm = cfiLabelValue;
        return l;
    };

    // Function entry label.
    out.push_back(label());
    stats.instsAdded++;

    for (size_t i = 0; i < code.size(); i++) {
        remap[i] = out.size();
        MInst m = code[i];
        bool is_call = false;
        switch (m.op) {
          case MOp::Ret:
            m.op = MOp::CheckRet;
            stats.sitesInstrumented++;
            break;
          case MOp::CallInd:
            m.op = MOp::CallIndChecked;
            stats.sitesInstrumented++;
            is_call = true;
            break;
          case MOp::CallDirect:
          case MOp::CallExt:
            is_call = true;
            break;
          default:
            break;
        }
        out.push_back(std::move(m));
        if (is_call) {
            // Return-site label directly after the call.
            out.push_back(label());
            stats.instsAdded++;
        }
    }

    // Remap local jump targets through the insertion map.
    for (MInst &m : out) {
        if (m.op == MOp::Jump || m.op == MOp::JumpIfZero) {
            if (m.imm >= remap.size())
                sim::panic("cfiPass: jump target %lu out of range",
                           (unsigned long)m.imm);
            m.imm = remap[m.imm];
        }
    }

    code = std::move(out);
    return stats;
}

} // namespace vg::cc
