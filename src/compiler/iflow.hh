/**
 * @file
 * Load-time information-flow (taint) verifier for ghost confidentiality.
 *
 * The McodeVerifier proves the OS *cannot reach into* ghost memory
 * (sandboxing + CFI). IflowVerifier proves the complementary property:
 * translated code never *carries ghost data out* to an OS-visible
 * channel in the clear. It is an interprocedural, flow-sensitive taint
 * analysis over the laid-out MInst array:
 *
 *  - sources: loads through pointers that provably point into the
 *    ghost region (a constant in [ghostBase, ghostEnd), or the result
 *    of a ghost-pointer intrinsic, propagated through Mov/Add/Sub) and
 *    the results of ghost-reading intrinsics (sva_ghost_read). A
 *    sandbox-masked pointer is never a ghost pointer — the mask
 *    relocates ghost addresses out of the ghost half — so in sandboxed
 *    images the intrinsics are the only taint entry and the analysis
 *    composes with VG-SB instead of double-reporting it.
 *  - sinks: OS-visible channels described by sva/iflow_meta.hh —
 *    NIC/disk/swap/stat/log externs (any tainted argument), stores and
 *    memcpys whose destination is kernel-visible memory or a sink
 *    window. Unknown externs are sinks by default.
 *  - declassifiers: the seal/HMAC crypto intrinsics. Their result is
 *    clean by fiat; nothing else launders taint.
 *
 * Abstract values track taint plus a provenance trail (spilled through
 * the frame, crossed a call boundary, transformed by arithmetic) and a
 * pointer kind (frame slot / ghost / sink window / kernel-visible),
 * so the five rules below give a precise story for each leak shape.
 * Frame slots are modeled field-sensitively per function; frames are
 * private (the executor allocates them outside kernel-visible memory),
 * so a tainted spill is only a leak if it is later loaded and sinked.
 *
 * The interprocedural part is a whole-image fixpoint over per-function
 * entry/return taint summaries: direct calls propagate argument taint
 * into the callee's entry state and the callee's return taint back
 * into the call result (both stamped with the via-call provenance);
 * checked indirect calls join over every address-taken function.
 * Trace blocks are analyzed like mverify's VG-TR mode: entry state is
 * the home function's fixpoint at the anchor, and a side exit must not
 * carry *more* taint than the interpreter path at the landing.
 */

#ifndef VG_COMPILER_IFLOW_HH
#define VG_COMPILER_IFLOW_HH

#include <cstdint>
#include <string>
#include <vector>

#include "compiler/mcode.hh"
#include "sim/config.hh"

namespace vg::cc
{

/** Information-flow rules (stable ids VG-IF-01..05). */
enum class IfRule : uint8_t
{
    DirectLeak,   ///< VG-IF-01: ghost value reaches a sink directly
    SpillLeak,    ///< VG-IF-02: leak via a frame-spilled temporary
    CallLeak,     ///< VG-IF-03: leak through a call/return boundary
    UnsealedSwap, ///< VG-IF-04: unsealed write to the swap channel
    ArithLeak,    ///< VG-IF-05: taint laundered through arithmetic
};

/** Stable rule identifier, e.g. "VG-IF-01". */
const char *iflowRuleId(IfRule rule);

/** One structured diagnostic, rendered like McodeFinding. */
struct IflowFinding
{
    IfRule rule = IfRule::DirectLeak;
    std::string function;
    uint64_t addr = 0; ///< absolute code address of the offending inst
    std::string message;

    /** "func+0x10: [VG-IF-01] ..." (offset relative to entry). */
    std::string render(uint64_t entryAddr = 0) const;
};

struct IflowResult
{
    std::vector<IflowFinding> findings;
    uint64_t functionsChecked = 0;
    uint64_t instsChecked = 0;

    bool ok() const { return findings.empty(); }

    /** All findings rendered one per line. */
    std::string message() const;
};

/**
 * Concrete per-instruction facts exported for the fault-injection
 * harness (minject): which registers provably carry ghost taint on
 * entry to each instruction, and which Stores write through an
 * OS-visible (non-frame, non-ghost) pointer. Indexed by instruction
 * position in image.code.
 */
struct IflowFacts
{
    std::vector<std::vector<int>> taintedRegsAt;
    std::vector<uint8_t> visibleStoreAt;
};

/** The verifier. Stateless; verify() is const and reentrant. */
class IflowVerifier
{
  public:
    IflowVerifier() = default;

    /** Analyze @p image; when @p facts is non-null it is filled with
     *  the per-instruction taint facts of the final fixpoint. */
    IflowResult verify(const MachineImage &image,
                       IflowFacts *facts = nullptr) const;
};

} // namespace vg::cc

#endif // VG_COMPILER_IFLOW_HH
