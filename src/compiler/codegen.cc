#include "compiler/codegen.hh"

#include "sim/log.hh"

namespace vg::cc
{

namespace
{

MOp
lowerBinop(vir::Opcode op)
{
    switch (op) {
      case vir::Opcode::Add:
        return MOp::Add;
      case vir::Opcode::Sub:
        return MOp::Sub;
      case vir::Opcode::Mul:
        return MOp::Mul;
      case vir::Opcode::UDiv:
        return MOp::UDiv;
      case vir::Opcode::URem:
        return MOp::URem;
      case vir::Opcode::And:
        return MOp::And;
      case vir::Opcode::Or:
        return MOp::Or;
      case vir::Opcode::Xor:
        return MOp::Xor;
      case vir::Opcode::Shl:
        return MOp::Shl;
      case vir::Opcode::LShr:
        return MOp::LShr;
      case vir::Opcode::AShr:
        return MOp::AShr;
      default:
        sim::panic("lowerBinop: not a binop");
    }
}

} // namespace

LoweredFunc
lowerFunction(const vir::Function &fn)
{
    LoweredFunc out;
    out.name = fn.name;
    out.numParams = fn.numParams;
    out.numRegs = fn.numRegs;

    // First pass: emit, recording each block's start index and leaving
    // jump imms as *block* indices.
    std::vector<uint64_t> block_start(fn.blocks.size(), 0);

    for (size_t bi = 0; bi < fn.blocks.size(); bi++) {
        block_start[bi] = out.code.size();
        for (const vir::Inst &inst : fn.blocks[bi].insts) {
            MInst m;
            m.width = inst.width;
            m.pred = inst.pred;
            m.dst = inst.dst;
            m.a = inst.a;
            m.b = inst.b;
            m.c = inst.c;
            m.imm = inst.imm;
            m.args = inst.args;

            switch (inst.op) {
              case vir::Opcode::ConstI:
                m.op = MOp::ConstI;
                out.code.push_back(m);
                break;
              case vir::Opcode::Mov:
                m.op = MOp::Mov;
                out.code.push_back(m);
                break;
              case vir::Opcode::Add:
              case vir::Opcode::Sub:
              case vir::Opcode::Mul:
              case vir::Opcode::UDiv:
              case vir::Opcode::URem:
              case vir::Opcode::And:
              case vir::Opcode::Or:
              case vir::Opcode::Xor:
              case vir::Opcode::Shl:
              case vir::Opcode::LShr:
              case vir::Opcode::AShr:
                m.op = lowerBinop(inst.op);
                out.code.push_back(m);
                break;
              case vir::Opcode::ICmp:
                m.op = MOp::ICmp;
                out.code.push_back(m);
                break;
              case vir::Opcode::Load:
                m.op = MOp::Load;
                out.code.push_back(m);
                break;
              case vir::Opcode::Store:
                m.op = MOp::Store;
                out.code.push_back(m);
                break;
              case vir::Opcode::Memcpy:
                m.op = MOp::Memcpy;
                out.code.push_back(m);
                break;
              case vir::Opcode::Alloca: {
                // 8-byte align each allocation within the frame.
                uint64_t size = (inst.imm + 7) & ~uint64_t(7);
                m.op = MOp::FrameAddr;
                m.imm = out.frameBytes;
                out.frameBytes += size;
                out.code.push_back(m);
                break;
              }
              case vir::Opcode::Br:
                m.op = MOp::Jump;
                m.imm = uint64_t(inst.target0);
                out.code.push_back(m);
                break;
              case vir::Opcode::CondBr:
                // if (a == 0) goto else; goto then;
                m.op = MOp::JumpIfZero;
                m.imm = uint64_t(inst.target1);
                out.code.push_back(m);
                {
                    MInst j;
                    j.op = MOp::Jump;
                    j.imm = uint64_t(inst.target0);
                    out.code.push_back(j);
                }
                break;
              case vir::Opcode::Call:
                m.op = MOp::CallExt; // may become CallDirect at layout
                m.callee = inst.callee;
                out.code.push_back(m);
                break;
              case vir::Opcode::CallInd:
                m.op = MOp::CallInd;
                out.code.push_back(m);
                break;
              case vir::Opcode::FuncAddr:
                m.op = MOp::ConstI;
                m.callee = inst.callee; // relocated at layout
                out.code.push_back(m);
                break;
              case vir::Opcode::Ret:
                m.op = MOp::Ret;
                out.code.push_back(m);
                break;
            }
        }
    }

    // Second pass: convert block-index jump targets into local
    // instruction indices.
    for (MInst &m : out.code) {
        if (m.op == MOp::Jump || m.op == MOp::JumpIfZero) {
            if (m.imm >= block_start.size())
                sim::panic("lowerFunction: bad block target %lu",
                           (unsigned long)m.imm);
            m.imm = block_start[m.imm];
        }
    }
    return out;
}

MachineImage
layoutImage(const std::string &module_name, std::vector<LoweredFunc> funcs,
            uint64_t code_base)
{
    MachineImage image;
    image.moduleName = module_name;
    image.codeBase = code_base;

    // Assign entry addresses.
    uint64_t offset = 0;
    for (const LoweredFunc &f : funcs) {
        FuncInfo info;
        info.name = f.name;
        info.entryAddr = code_base + offset * mInstBytes;
        info.frameBytes = f.frameBytes;
        info.numParams = f.numParams;
        info.numRegs = f.numRegs;
        image.functions[f.name] = info;
        offset += f.code.size();
    }

    // Concatenate code, resolving local jumps and symbolic references.
    for (const LoweredFunc &f : funcs) {
        uint64_t base = image.functions[f.name].entryAddr;
        for (MInst m : f.code) {
            if (m.op == MOp::Jump || m.op == MOp::JumpIfZero) {
                m.imm = base + m.imm * mInstBytes;
            } else if (m.op == MOp::CallExt) {
                auto it = image.functions.find(m.callee);
                if (it != image.functions.end()) {
                    m.op = MOp::CallDirect;
                    m.imm = it->second.entryAddr;
                    m.callee.clear();
                }
            } else if (m.op == MOp::ConstI && !m.callee.empty()) {
                auto it = image.functions.find(m.callee);
                if (it == image.functions.end())
                    sim::panic("layoutImage: funcaddr of unknown %s",
                               m.callee.c_str());
                m.imm = it->second.entryAddr;
                m.callee.clear();
            }
            image.code.push_back(std::move(m));
        }
    }
    return image;
}

} // namespace vg::cc
