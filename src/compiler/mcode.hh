/**
 * @file
 * "Native" machine code model.
 *
 * The code generator lowers VIR into a linear array of MachineInsts —
 * our stand-in for x86-64. Code addresses are byte addresses: each
 * instruction occupies 4 bytes of the code region, so address
 * arithmetic (and CFI label probing at arbitrary addresses) behaves
 * like real machine code.
 *
 * CFI instrumentation appears here exactly as in the paper's machine-
 * level pass: CfiLabel pseudo-instructions mark valid control-flow
 * targets (function entries and return sites), returns become CheckRet
 * (validate the label at the return site), and indirect calls become
 * CallIndChecked (mask the target out of user space, then validate the
 * label at the target).
 */

#ifndef VG_COMPILER_MCODE_HH
#define VG_COMPILER_MCODE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "crypto/sha256.hh"
#include "vir/inst.hh"

namespace vg::cc
{

/** Machine opcodes. */
enum class MOp : uint8_t
{
    ConstI,
    Mov,
    Add,
    Sub,
    Mul,
    UDiv,
    URem,
    And,
    Or,
    Xor,
    Shl,
    LShr,
    AShr,
    ICmp,
    Load,
    Store,
    Memcpy,
    FrameAddr,       ///< dst = frame base + imm (lowered alloca)
    Jump,            ///< unconditional; imm = code address
    JumpIfZero,      ///< if a == 0 jump to imm
    CallDirect,      ///< imm = callee code address
    CallExt,         ///< callee = external symbol name
    CallInd,         ///< target address in a (uninstrumented)
    CallIndChecked,  ///< CFI: mask target, require CfiLabel at target
    Ret,             ///< uninstrumented return
    CheckRet,        ///< CFI: require CfiLabel at the return site
    CfiLabel,        ///< imm = label value; executes as a no-op
    SandboxAddr,     ///< dst = sandboxed a (fused ghost/SVA mask sequence)
};

/**
 * Length of the straight-line masking sequence sandboxPass emits per
 * memory operand. The machine-level peephole (fuseSandboxPass)
 * recognizes exactly this many instructions and folds them into one
 * SandboxAddr, which models the same number of machine instructions
 * (identical simulated cycles and instruction counts) in one dispatch.
 */
constexpr unsigned sandboxMaskSeqLen = 13;

/** The single conservative CFI label value (S 5: one label for all
 *  call sites and function entries). */
constexpr uint64_t cfiLabelValue = 0x00CF1CF1;

/** One machine instruction. */
struct MInst
{
    MOp op = MOp::ConstI;
    vir::Width width = vir::Width::I64;
    vir::CmpPred pred = vir::CmpPred::Eq;

    int dst = -1;
    int a = -1;
    int b = -1;
    int c = -1;

    uint64_t imm = 0;

    /** External symbol for CallExt. */
    std::string callee;

    /** Argument registers for calls. */
    std::vector<int> args;
};

/** Bytes of code-space each MInst occupies. */
constexpr uint64_t mInstBytes = 4;

/** Per-function metadata in a compiled image. */
struct FuncInfo
{
    std::string name;
    uint64_t entryAddr = 0;  ///< absolute code address
    uint64_t frameBytes = 0; ///< stack frame for lowered allocas
    int numParams = 0;
    int numRegs = 0;
};

/**
 * Metadata for one spliced trace block.
 *
 * A trace block is ordinary machine code appended to the image by the
 * trace tier: a verbatim copy of one hot path through @ref home, with
 * on-trace branches rewritten to fall through and off-trace directions
 * turned into side-exit jumps back into the home function. The block is
 * registered as a pseudo-function (so the machine-code verifier proves
 * it like any other function) and this record carries what the verifier
 * and the executor's superinstruction runner additionally need: which
 * function it was cut from, where the hot path was anchored, and which
 * instructions are pure dispatch glue that models zero machine cost.
 */
struct TraceInfo
{
    std::string name;     ///< pseudo-function name ("home$tr0")
    std::string home;     ///< function the trace was recorded in
    uint64_t anchorAddr = 0; ///< loop head / entry the trace covers
    uint64_t entryAddr = 0;  ///< first instruction of the block
    uint32_t length = 0;     ///< block length in instructions
    uint32_t guards = 0;     ///< conditional side-exit guard count
    /** Offsets (within the block) of dispatch-glue instructions the
     *  trace runner models at zero cost; their count is the per-pass
     *  folded dispatch saving. */
    std::vector<uint32_t> freeOffs;

    uint32_t foldSavings() const { return uint32_t(freeOffs.size()); }
};

/** A compiled, relocated, signed translation of one module. */
struct MachineImage
{
    std::string moduleName;
    uint64_t codeBase = 0;
    std::vector<MInst> code;
    std::map<std::string, FuncInfo> functions;

    /** Spliced trace blocks, in splice order (empty until the trace
     *  tier forms traces; covered by the signature). */
    std::vector<TraceInfo> traces;

    /** Translation signature (HMAC by the VM's translation key). */
    crypto::Digest signature{};

    /** True when the sandbox/CFI passes ran on this image. */
    bool instrumented = false;

    uint64_t
    codeEnd() const
    {
        return codeBase + code.size() * mInstBytes;
    }

    /** True if @p addr is a valid instruction address in this image. */
    bool
    contains(uint64_t addr) const
    {
        return addr >= codeBase && addr < codeEnd() &&
               (addr - codeBase) % mInstBytes == 0;
    }

    const MInst *
    at(uint64_t addr) const
    {
        if (!contains(addr))
            return nullptr;
        return &code[(addr - codeBase) / mInstBytes];
    }

    /** Deterministic serialization used for signing. */
    std::vector<uint8_t> serializeForSigning() const;
};

} // namespace vg::cc

#endif // VG_COMPILER_MCODE_HH
