/**
 * @file
 * Load-time machine-code safety verifier.
 *
 * Virtual Ghost's guarantees rest on the instrumentation passes
 * (sandbox_pass, cfi_pass, peephole) emitting correct code. McodeVerifier
 * removes them from the TCB: it recovers a per-function CFG from the
 * linear MInst array and statically proves, before any translation is
 * installed, that
 *
 *  - every Load/Store/Memcpy address register is dominated by a
 *    SandboxAddr (or the equivalent unfused 13-instruction mask
 *    sequence) with no clobbering redefinition between mask and use
 *    (rule group VG-SB),
 *  - no raw Ret or CallInd survives — only CheckRet/CallIndChecked —
 *    and a CfiLabel sits at every function entry and return site, with
 *    cfiLabelValue never forged as a non-label immediate (VG-CFI),
 *  - all Jump/JumpIfZero/CallDirect immediates land on instruction
 *    boundaries inside the image, calls target function entries, and
 *    control cannot fall off the end of a function (VG-ST).
 *
 * The sandbox rules run under a forward may-be-unmasked dataflow
 * analysis: the state is the set of registers proven masked, the meet
 * over CFG join points is set intersection, SandboxAddr (or the final
 * Mul of a matched unfused sequence) generates, Mov propagates, and any
 * other definition kills. A finding is a structured diagnostic (rule,
 * severity, function, absolute code address, message) so vg_lint and
 * the translator gate can render it uniformly.
 */

#ifndef VG_COMPILER_MVERIFY_HH
#define VG_COMPILER_MVERIFY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "compiler/mcode.hh"
#include "sim/config.hh"

namespace vg::cc
{

/** Verifier rules. Grouped: VG-SB (sandbox), VG-CFI, VG-ST
 *  (structure), VG-TR (trace blocks / side exits). */
enum class MRule : uint8_t
{
    UnmaskedAccess,     ///< VG-SB-01: memory address not provably masked
    RawRet,             ///< VG-CFI-01: uninstrumented Ret
    RawIndirectCall,    ///< VG-CFI-02: uninstrumented CallInd
    MissingEntryLabel,  ///< VG-CFI-03: function entry lacks CfiLabel
    MissingReturnLabel, ///< VG-CFI-04: call not followed by CfiLabel
    LabelForgery,       ///< VG-CFI-05: cfiLabelValue as non-label imm
    BadBranchTarget,    ///< VG-ST-01: jump off boundary / out of function
    BadCallTarget,      ///< VG-ST-02: direct call not at a function entry
    BadRegister,        ///< VG-ST-03: operand register out of range
    FallsOffEnd,        ///< VG-ST-04: control can run past function end
    SideExitEscape,     ///< VG-TR-01: side exit leaves the home function
    SideExitWeakerState,///< VG-TR-02: masked state at a side exit weaker
                        ///< than the interpreter path at the landing
    TraceBadOp,         ///< VG-TR-03: call/return inside a trace block
};

/** Stable rule identifier, e.g. "VG-SB-01". */
const char *ruleId(MRule rule);

enum class MSeverity : uint8_t
{
    Warning,
    Error,
};

/** One structured diagnostic. */
struct McodeFinding
{
    MRule rule = MRule::UnmaskedAccess;
    MSeverity severity = MSeverity::Error;
    std::string function;
    uint64_t addr = 0; ///< absolute code address of the offending inst
    std::string message;

    /** "func+0x10: [VG-SB-01] ..." (offset relative to function entry). */
    std::string render(uint64_t entryAddr = 0) const;
};

/** What the verifier must prove; derived from the build configuration.
 *  Structural rules (VG-ST) are always checked. */
struct McodePolicy
{
    bool requireSandbox = true; ///< enforce VG-SB rules
    bool requireCfi = true;     ///< enforce VG-CFI rules

    static McodePolicy
    fromConfig(const sim::VgConfig &cfg)
    {
        McodePolicy p;
        p.requireSandbox = cfg.sandboxMemory;
        p.requireCfi = cfg.cfi;
        return p;
    }
};

struct McodeVerifyResult
{
    std::vector<McodeFinding> findings;
    uint64_t functionsChecked = 0;
    uint64_t instsChecked = 0;

    bool ok() const { return findings.empty(); }

    /** All findings rendered one per line. */
    std::string message() const;
};

/** The verifier. Stateless apart from its policy; verify() is const and
 *  reentrant, so one instance can serve many images. */
class McodeVerifier
{
  public:
    explicit McodeVerifier(McodePolicy policy = {}) : _policy(policy) {}

    McodeVerifyResult verify(const MachineImage &image) const;

  private:
    McodePolicy _policy;
};

} // namespace vg::cc

#endif // VG_COMPILER_MVERIFY_HH
