/**
 * @file
 * Miscompile injection implementation.
 *
 * Every kind is expressed as an in-place rewrite of existing
 * instructions (never an insertion) so code addresses, function extents
 * and jump targets stay put — the injected image is exactly what a
 * buggy pass would have laid out, and the verifier gets no structural
 * side-channel hinting that something was edited.
 */

#include "compiler/minject.hh"

#include <algorithm>

#include "compiler/iflow.hh"
#include "compiler/passes.hh"
#include "sva/iflow_meta.hh"

namespace vg::cc
{

namespace
{

struct Range
{
    const FuncInfo *info;
    size_t begin;
    size_t end;
};

std::vector<Range>
funcRanges(const MachineImage &image)
{
    std::vector<Range> out;
    for (const auto &[name, fi] : image.functions) {
        (void)name;
        if (!image.contains(fi.entryAddr))
            continue;
        out.push_back(
            {&fi, (size_t)((fi.entryAddr - image.codeBase) / mInstBytes),
             image.code.size()});
    }
    std::sort(out.begin(), out.end(), [](const Range &a, const Range &b) {
        return a.begin < b.begin;
    });
    for (size_t i = 0; i + 1 < out.size(); i++)
        out[i].end = out[i + 1].begin;
    return out;
}

const Range *
rangeOf(const std::vector<Range> &ranges, size_t idx)
{
    for (const Range &r : ranges)
        if (idx >= r.begin && idx < r.end)
            return &r;
    return nullptr;
}

bool
isCallOp(MOp op)
{
    return op == MOp::CallDirect || op == MOp::CallExt ||
           op == MOp::CallInd || op == MOp::CallIndChecked;
}

/** The register a mask-producing instruction at @p idx defines, or -1
 *  when code[idx] is neither a SandboxAddr nor the final Mul of an
 *  unfused masking sequence. */
int
maskDefReg(const MachineImage &image, size_t idx)
{
    const MInst &m = image.code[idx];
    if (m.op == MOp::SandboxAddr)
        return m.dst;
    if (m.op == MOp::Mul && idx + 1 >= sandboxMaskSeqLen) {
        int dst = -1;
        if (matchSandboxMaskSeq(image.code,
                                idx - (sandboxMaskSeqLen - 1), dst) >= 0)
            return dst;
    }
    return -1;
}

/** Indices of all mask-producing instructions. */
std::vector<size_t>
maskDefSites(const MachineImage &image)
{
    std::vector<size_t> out;
    for (size_t i = 0; i < image.code.size(); i++)
        if (maskDefReg(image, i) >= 0)
            out.push_back(i);
    return out;
}

/** First instruction after @p d that uses register @p r as a memory
 *  address, or SIZE_MAX. */
size_t
findAddrConsumer(const MachineImage &image, size_t d, size_t end, int r)
{
    for (size_t j = d + 1; j < end; j++) {
        const MInst &m = image.code[j];
        if ((m.op == MOp::Load || m.op == MOp::Store) && m.a == r)
            return j;
        if (m.op == MOp::Memcpy && (m.a == r || m.b == r))
            return j;
    }
    return SIZE_MAX;
}

/** Rewrite code[idx] into a semantic no-op: a jump to the next
 *  instruction. Uses no registers, so it perturbs only the property
 *  under test. */
void
overwriteWithNop(MachineImage &image, size_t idx)
{
    MInst nop;
    nop.op = MOp::Jump;
    nop.imm = idx + 1 < image.code.size()
                  ? image.codeBase + (idx + 1) * mInstBytes
                  : image.codeBase + idx * mInstBytes;
    image.code[idx] = std::move(nop);
}

/** A trace block's extent as instruction indices, or {0,0} when its
 *  entry is not inside the image. */
std::pair<size_t, size_t>
traceRange(const MachineImage &image, const TraceInfo &t)
{
    if (!image.contains(t.entryAddr))
        return {0, 0};
    size_t b = (size_t)((t.entryAddr - image.codeBase) / mInstBytes);
    size_t e = std::min(b + t.length, image.code.size());
    return {b, e};
}

/** Indices of side-exit jumps (targets leaving the block) in all trace
 *  blocks. */
std::vector<size_t>
traceSideExitSites(const MachineImage &image)
{
    std::vector<size_t> out;
    for (const TraceInfo &t : image.traces) {
        auto [b, e] = traceRange(image, t);
        for (size_t i = b; i < e; i++) {
            const MInst &m = image.code[i];
            if (m.op != MOp::Jump && m.op != MOp::JumpIfZero)
                continue;
            uint64_t lo = image.codeBase + b * mInstBytes;
            uint64_t hi = image.codeBase + e * mInstBytes;
            if (m.imm < lo || m.imm >= hi)
                out.push_back(i);
        }
    }
    return out;
}

/** Taint facts of the pre-injection image; the iflow kinds pick their
 *  sites from the verifier's own fixpoint so every site is detectable
 *  by construction. */
IflowFacts
iflowFactsFor(const MachineImage &image)
{
    IflowFacts facts;
    IflowVerifier verifier;
    verifier.verify(image, &facts);
    return facts;
}

bool
taintedAt(const IflowFacts &facts, size_t i, int reg)
{
    if (i >= facts.taintedRegsAt.size())
        return false;
    const std::vector<int> &list = facts.taintedRegsAt[i];
    return std::find(list.begin(), list.end(), reg) != list.end();
}

/** Lowest-numbered tainted register at @p i other than @p exclude,
 *  or -1. */
int
taintedOtherAt(const IflowFacts &facts, size_t i, int exclude)
{
    if (i >= facts.taintedRegsAt.size())
        return -1;
    for (int r : facts.taintedRegsAt[i])
        if (r != exclude)
            return r;
    return -1;
}

bool
isDeclassifierCall(const MInst &m)
{
    if (m.op != MOp::CallExt)
        return false;
    const sva::IfExternInfo *info = sva::iflowExternInfo(m.callee);
    return info && info->role == sva::IfRole::Declassifier;
}

/** For a Store at @p i, the index of the declassifier call that most
 *  recently defined its value register (with the call's raw input
 *  register still tainted at the store), or SIZE_MAX. */
size_t
sealedStoreSource(const MachineImage &image, const IflowFacts &facts,
                  const std::vector<Range> &ranges, size_t i)
{
    const MInst &st = image.code[i];
    if (st.op != MOp::Store)
        return SIZE_MAX;
    if (i >= facts.visibleStoreAt.size() || !facts.visibleStoreAt[i])
        return SIZE_MAX;
    const Range *r = rangeOf(ranges, i);
    if (!r)
        return SIZE_MAX;
    for (size_t j = i; j-- > r->begin;) {
        const MInst &m = image.code[j];
        bool defsValue = m.dst == st.b &&
                         (m.op == MOp::ConstI || m.op == MOp::Mov ||
                          m.op == MOp::FrameAddr ||
                          m.op == MOp::Load ||
                          m.op == MOp::SandboxAddr ||
                          isCallOp(m.op) ||
                          (m.op >= MOp::Add && m.op <= MOp::ICmp));
        if (!defsValue)
            continue;
        if (isDeclassifierCall(m) && !m.args.empty() &&
            taintedAt(facts, i, m.args[0]))
            return j;
        return SIZE_MAX; // most recent def is not a sanctioned seal
    }
    return SIZE_MAX;
}

} // namespace

const std::vector<Miscompile> &
allMiscompiles()
{
    static const std::vector<Miscompile> kinds = {
        Miscompile::DropMask,         Miscompile::ClobberMask,
        Miscompile::StripEntryLabel,  Miscompile::StripReturnLabel,
        Miscompile::RawRet,           Miscompile::RawIndirectCall,
        Miscompile::BadJumpTarget,    Miscompile::ForgeLabel,
        Miscompile::TraceExitHijack,  Miscompile::TraceDropMask,
        Miscompile::TraceStripHeadLabel,
        Miscompile::IflowDropSeal,    Miscompile::IflowRawStore,
        Miscompile::IflowStatLeak,    Miscompile::IflowTraceSmuggle,
    };
    return kinds;
}

const char *
miscompileName(Miscompile kind)
{
    switch (kind) {
    case Miscompile::DropMask: return "drop-mask";
    case Miscompile::ClobberMask: return "clobber-mask";
    case Miscompile::StripEntryLabel: return "strip-entry-label";
    case Miscompile::StripReturnLabel: return "strip-return-label";
    case Miscompile::RawRet: return "raw-ret";
    case Miscompile::RawIndirectCall: return "raw-callind";
    case Miscompile::BadJumpTarget: return "bad-jump-target";
    case Miscompile::ForgeLabel: return "forge-label";
    case Miscompile::TraceExitHijack: return "trace-exit-hijack";
    case Miscompile::TraceDropMask: return "trace-drop-mask";
    case Miscompile::TraceStripHeadLabel: return "trace-strip-head-label";
    case Miscompile::IflowDropSeal: return "iflow-drop-seal";
    case Miscompile::IflowRawStore: return "iflow-raw-store";
    case Miscompile::IflowStatLeak: return "iflow-stat-leak";
    case Miscompile::IflowTraceSmuggle: return "iflow-trace-smuggle";
    }
    return "?";
}

bool
parseMiscompile(const std::string &name, Miscompile &kind)
{
    for (Miscompile k : allMiscompiles()) {
        if (name == miscompileName(k)) {
            kind = k;
            return true;
        }
    }
    return false;
}

std::vector<size_t>
miscompileSites(const MachineImage &image, Miscompile kind)
{
    std::vector<size_t> out;
    const std::vector<Range> ranges = funcRanges(image);

    switch (kind) {
    case Miscompile::DropMask: return maskDefSites(image);

    case Miscompile::ClobberMask:
        for (size_t d : maskDefSites(image)) {
            const Range *r = rangeOf(ranges, d);
            if (!r)
                continue;
            int reg = maskDefReg(image, d);
            size_t j = findAddrConsumer(image, d, r->end, reg);
            if (j == SIZE_MAX)
                continue;
            // Either there is room between mask and use for clobbering
            // arithmetic, or we can redirect the mask's destination —
            // which needs a second register to exist.
            if (j > d + 1 || r->info->numRegs >= 2)
                out.push_back(d);
        }
        return out;

    case Miscompile::StripEntryLabel:
        for (const Range &r : ranges)
            if (r.begin < r.end &&
                image.code[r.begin].op == MOp::CfiLabel)
                out.push_back(r.begin);
        return out;

    case Miscompile::StripReturnLabel:
        for (size_t i = 1; i < image.code.size(); i++)
            if (image.code[i].op == MOp::CfiLabel &&
                isCallOp(image.code[i - 1].op))
                out.push_back(i);
        return out;

    case Miscompile::RawRet:
        for (size_t i = 0; i < image.code.size(); i++)
            if (image.code[i].op == MOp::CheckRet)
                out.push_back(i);
        return out;

    case Miscompile::RawIndirectCall:
        for (size_t i = 0; i < image.code.size(); i++)
            if (image.code[i].op == MOp::CallIndChecked)
                out.push_back(i);
        return out;

    case Miscompile::BadJumpTarget:
        for (size_t i = 0; i < image.code.size(); i++)
            if (image.code[i].op == MOp::Jump ||
                image.code[i].op == MOp::JumpIfZero)
                out.push_back(i);
        return out;

    case Miscompile::ForgeLabel:
        for (size_t i = 0; i < image.code.size(); i++)
            if (image.code[i].op == MOp::ConstI &&
                image.code[i].imm != cfiLabelValue)
                out.push_back(i);
        return out;

    case Miscompile::TraceExitHijack: return traceSideExitSites(image);

    case Miscompile::TraceDropMask:
        for (const TraceInfo &t : image.traces) {
            auto [b, e] = traceRange(image, t);
            for (size_t d : maskDefSites(image)) {
                if (d < b || d >= e)
                    continue;
                int reg = maskDefReg(image, d);
                if (findAddrConsumer(image, d, e, reg) != SIZE_MAX)
                    out.push_back(d);
            }
        }
        return out;

    case Miscompile::TraceStripHeadLabel:
        for (const TraceInfo &t : image.traces) {
            auto [b, e] = traceRange(image, t);
            if (b < e && image.code[b].op == MOp::CfiLabel)
                out.push_back(b);
        }
        return out;

    case Miscompile::IflowDropSeal: {
        const IflowFacts facts = iflowFactsFor(image);
        for (size_t i = 0; i < image.code.size(); i++) {
            const MInst &m = image.code[i];
            if (isDeclassifierCall(m) && m.dst >= 0 &&
                !m.args.empty() && taintedAt(facts, i, m.args[0]))
                out.push_back(i);
        }
        return out;
    }

    case Miscompile::IflowRawStore: {
        const IflowFacts facts = iflowFactsFor(image);
        for (size_t i = 0; i < image.code.size(); i++)
            if (sealedStoreSource(image, facts, ranges, i) !=
                SIZE_MAX)
                out.push_back(i);
        return out;
    }

    case Miscompile::IflowStatLeak: {
        const IflowFacts facts = iflowFactsFor(image);
        for (size_t i = 0; i < image.code.size(); i++) {
            const MInst &m = image.code[i];
            if (m.op != MOp::CallExt || m.args.empty())
                continue;
            const sva::IfExternInfo *info =
                sva::iflowExternInfo(m.callee);
            if (!info || info->role != sva::IfRole::Sink ||
                info->channel != sva::IfChannel::Stat)
                continue;
            if (taintedOtherAt(facts, i, m.args[0]) >= 0)
                out.push_back(i);
        }
        return out;
    }

    case Miscompile::IflowTraceSmuggle: {
        const IflowFacts facts = iflowFactsFor(image);
        for (const TraceInfo &t : image.traces) {
            auto [b, e] = traceRange(image, t);
            for (size_t i = b; i < e; i++) {
                const MInst &m = image.code[i];
                if (m.op != MOp::Store)
                    continue;
                if (i >= facts.visibleStoreAt.size() ||
                    !facts.visibleStoreAt[i])
                    continue;
                if (!taintedAt(facts, i, m.b) &&
                    taintedOtherAt(facts, i, m.b) >= 0)
                    out.push_back(i);
            }
        }
        return out;
    }
    }
    return out;
}

bool
injectMiscompile(MachineImage &image, Miscompile kind, size_t siteIdx)
{
    const std::vector<size_t> sites = miscompileSites(image, kind);
    if (siteIdx >= sites.size())
        return false;
    const size_t i = sites[siteIdx];
    MInst &m = image.code[i];

    switch (kind) {
    case Miscompile::DropMask: {
        // The mask degenerates into a plain move of the unmasked (or
        // partially masked) source — addresses flow through unchecked.
        MInst mov;
        mov.op = MOp::Mov;
        mov.dst = m.dst;
        mov.a = m.a;
        image.code[i] = std::move(mov);
        return true;
    }

    case Miscompile::ClobberMask: {
        const std::vector<Range> ranges = funcRanges(image);
        const Range *r = rangeOf(ranges, i);
        int reg = maskDefReg(image, i);
        size_t j = findAddrConsumer(image, i, r->end, reg);
        if (j > i + 1) {
            MInst add;
            add.op = MOp::Add;
            add.dst = reg;
            add.a = reg;
            add.b = reg;
            image.code[i + 1] = std::move(add);
        } else {
            // No gap: make the mask write somewhere else entirely, so
            // the consumer reads a never-masked register.
            m.dst = reg > 0 ? reg - 1 : reg + 1;
        }
        return true;
    }

    case Miscompile::StripEntryLabel:
    case Miscompile::StripReturnLabel:
        overwriteWithNop(image, i);
        return true;

    case Miscompile::RawRet:
        m.op = MOp::Ret;
        return true;

    case Miscompile::RawIndirectCall:
        m.op = MOp::CallInd;
        return true;

    case Miscompile::BadJumpTarget:
        m.imm += 2;
        return true;

    case Miscompile::ForgeLabel:
        m.imm = cfiLabelValue;
        return true;

    case Miscompile::TraceExitHijack: {
        // Redirect the side exit to another function's entry — a valid
        // code address, but one the interpreter path never verified as
        // a landing for this trace. Fall back to past-the-end when the
        // image has nothing else to aim at.
        uint64_t target = image.codeEnd();
        const TraceInfo *owner = nullptr;
        for (const TraceInfo &t : image.traces) {
            auto [b, e] = traceRange(image, t);
            if (i >= b && i < e)
                owner = &t;
        }
        for (const auto &[name, fi] : image.functions) {
            if (owner && (name == owner->name || name == owner->home))
                continue;
            if (image.contains(fi.entryAddr)) {
                target = fi.entryAddr;
                break;
            }
        }
        m.imm = target;
        return true;
    }

    case Miscompile::TraceDropMask: {
        MInst mov;
        mov.op = MOp::Mov;
        mov.dst = m.dst;
        mov.a = m.a;
        image.code[i] = std::move(mov);
        return true;
    }

    case Miscompile::TraceStripHeadLabel:
        overwriteWithNop(image, i);
        return true;

    case Miscompile::IflowDropSeal: {
        // The "seal" becomes an identity move: the raw ghost value
        // flows onward under the name the sealed result would have
        // had. Sandboxing and CFI are untouched.
        MInst mov;
        mov.op = MOp::Mov;
        mov.dst = m.dst;
        mov.a = m.args.empty() ? m.a : m.args[0];
        image.code[i] = std::move(mov);
        return true;
    }

    case Miscompile::IflowRawStore: {
        const IflowFacts facts = iflowFactsFor(image);
        const std::vector<Range> ranges = funcRanges(image);
        size_t d = sealedStoreSource(image, facts, ranges, i);
        if (d == SIZE_MAX)
            return false;
        // The store keeps its (masked) address but writes the seal
        // call's raw input instead of its ciphertext output.
        m.b = image.code[d].args[0];
        return true;
    }

    case Miscompile::IflowStatLeak: {
        const IflowFacts facts = iflowFactsFor(image);
        int reg = taintedOtherAt(facts, i, m.args[0]);
        if (reg < 0)
            return false;
        // The stat counter is fed a live ghost-derived register
        // instead of the innocuous value the source asked for.
        m.args[0] = reg;
        return true;
    }

    case Miscompile::IflowTraceSmuggle: {
        const IflowFacts facts = iflowFactsFor(image);
        int reg = taintedOtherAt(facts, i, m.b);
        if (reg < 0)
            return false;
        // Inside the fused superinstruction block, the store's value
        // operand is swapped for a register carrying ghost taint the
        // interpreter path never writes here.
        m.b = reg;
        return true;
    }
    }
    return false;
}

} // namespace vg::cc
