/**
 * @file
 * IR-level load/store sandboxing (S 4.3.1, S 5).
 *
 * For each memory operand %a the pass emits, branch-free:
 *
 *   %g  = const ghostBase
 *   %c1 = icmp uge %a, %g          ; 1 if ghost-or-higher
 *   %s  = const 39
 *   %m  = shl %c1, %s              ; 2^39 or 0
 *   %a' = or %a, %m                ; pushed out of the ghost region
 *   %sb = const svaBase
 *   %se = const svaEnd
 *   %c2 = icmp uge %a', %sb
 *   %c3 = icmp ult %a', %se
 *   %in = and %c2, %c3             ; 1 if inside SVA internal memory
 *   %k1 = const 1
 *   %kp = xor %in, %k1             ; keep flag
 *   %a''= mul %a', %kp             ; SVA-internal accesses -> address 0
 *
 * and rewrites the memory instruction to use %a''. Memcpy gets the
 * same treatment on both its source and destination operands — one
 * range check per operand per call, matching the paper's O(1) memcpy
 * instrumentation.
 */

#include "compiler/passes.hh"
#include "hw/layout.hh"

namespace vg::cc
{

namespace
{

/** Emit the masking sequence for register @p addr; returns the masked
 *  register. Appends instructions to @p out. */
int
emitMask(vir::Function &fn, std::vector<vir::Inst> &out, int addr,
         PassStats &stats)
{
    using vir::Inst;
    using vir::Opcode;

    auto fresh = [&]() { return fn.numRegs++; };
    auto push = [&](Inst inst) {
        out.push_back(inst);
        stats.instsAdded++;
    };
    auto constI = [&](uint64_t v) {
        Inst i;
        i.op = Opcode::ConstI;
        i.dst = fresh();
        i.imm = v;
        push(i);
        return i.dst;
    };
    auto binop = [&](Opcode op, int a, int b) {
        Inst i;
        i.op = op;
        i.dst = fresh();
        i.a = a;
        i.b = b;
        push(i);
        return i.dst;
    };
    auto icmp = [&](vir::CmpPred pred, int a, int b) {
        Inst i;
        i.op = Opcode::ICmp;
        i.pred = pred;
        i.dst = fresh();
        i.a = a;
        i.b = b;
        push(i);
        return i.dst;
    };

    int ghost_base = constI(hw::ghostBase);
    int is_high = icmp(vir::CmpPred::Uge, addr, ghost_base);
    int shift = constI(39);
    int or_mask = binop(Opcode::Shl, is_high, shift);
    int masked = binop(Opcode::Or, addr, or_mask);

    int sva_base = constI(hw::svaBase);
    int sva_end = constI(hw::svaEnd);
    int ge_sva = icmp(vir::CmpPred::Uge, masked, sva_base);
    int lt_end = icmp(vir::CmpPred::Ult, masked, sva_end);
    int in_sva = binop(Opcode::And, ge_sva, lt_end);
    int one = constI(1);
    int keep = binop(Opcode::Xor, in_sva, one);
    int final_addr = binop(Opcode::Mul, masked, keep);

    stats.sitesInstrumented++;
    return final_addr;
}

} // namespace

PassStats
sandboxPass(vir::Module &mod)
{
    PassStats stats;
    for (auto &fn : mod.functions) {
        for (auto &bb : fn.blocks) {
            std::vector<vir::Inst> out;
            out.reserve(bb.insts.size());
            for (auto inst : bb.insts) {
                switch (inst.op) {
                  case vir::Opcode::Load:
                  case vir::Opcode::Store:
                    inst.a = emitMask(fn, out, inst.a, stats);
                    break;
                  case vir::Opcode::Memcpy:
                    inst.a = emitMask(fn, out, inst.a, stats);
                    inst.b = emitMask(fn, out, inst.b, stats);
                    break;
                  default:
                    break;
                }
                out.push_back(std::move(inst));
            }
            bb.insts = std::move(out);
        }
    }
    return stats;
}

PassStats
mmapMaskPass(vir::Module &mod, const std::vector<std::string> &mmap_like)
{
    PassStats stats;
    auto is_mmap = [&](const std::string &name) {
        for (const auto &m : mmap_like) {
            if (m == name)
                return true;
        }
        return false;
    };

    for (auto &fn : mod.functions) {
        for (auto &bb : fn.blocks) {
            std::vector<vir::Inst> out;
            out.reserve(bb.insts.size());
            for (auto &inst : bb.insts) {
                bool instrument = inst.op == vir::Opcode::Call &&
                                  is_mmap(inst.callee) && inst.dst >= 0;
                int dst = inst.dst;
                out.push_back(inst);
                if (instrument) {
                    // dst = sandbox(dst): same sequence, then copy the
                    // masked value back into the original register so
                    // downstream uses see the safe pointer.
                    int masked = emitMask(fn, out, dst, stats);
                    vir::Inst mv;
                    mv.op = vir::Opcode::Mov;
                    mv.dst = dst;
                    mv.a = masked;
                    out.push_back(mv);
                    stats.instsAdded++;
                }
            }
            bb.insts = std::move(out);
        }
    }
    return stats;
}

} // namespace vg::cc
