#include "compiler/translator.hh"

#include <chrono>

#include "crypto/hmac.hh"
#include "vir/text.hh"
#include "vir/verifier.hh"

namespace vg::cc
{

Translator::Translator(const std::vector<uint8_t> &signing_key,
                       sim::SimContext &ctx)
    : _signingKey(signing_key),
      _signer(signing_key, ctx.config().cryptoFastPath), _ctx(ctx)
{}

crypto::Digest
Translator::sign(const MachineImage &image) const
{
    return _signer.mac(image.serializeForSigning());
}

bool
Translator::verifySignature(const MachineImage &image) const
{
    MachineImage unsigned_copy = image;
    unsigned_copy.signature = crypto::Digest{};
    crypto::Digest expect =
        _signer.mac(unsigned_copy.serializeForSigning());
    return crypto::digestEqual(expect, image.signature);
}

TranslateResult
Translator::translateText(const std::string &text, uint64_t code_base)
{
    // Cache key: hash of source + base + instrumentation flags.
    crypto::Sha256 h;
    h.update(text.data(), text.size());
    h.update(&code_base, sizeof(code_base));
    uint8_t flags = uint8_t((_ctx.config().sandboxMemory ? 1 : 0) |
                            (_ctx.config().cfi ? 2 : 0) |
                            (_ctx.config().fuseSandboxMasks ? 4 : 0));
    h.update(&flags, 1);
    std::string key = crypto::toHex(h.final());

    auto it = _cache.find(key);
    if (it != _cache.end()) {
        TranslateResult r;
        r.ok = true;
        r.image = it->second;
        r.fromCache = true;
        _cacheHits++;
        _ctx.stats().add("translator.cache_hits");
        return r;
    }

    vir::ParseResult parsed = vir::parse(text);
    if (!parsed.ok) {
        TranslateResult r;
        r.error = "parse error: " + parsed.error;
        return r;
    }

    TranslateResult r = translateModule(std::move(parsed.module),
                                        code_base);
    if (r.ok)
        _cache[key] = r.image;
    return r;
}

TranslateResult
Translator::spliceTrace(const MachineImage &base, const TraceRequest &req)
{
    TranslateResult result;
    if (!_ctx.config().traceTier) {
        result.error = "trace tier is disabled";
        return result;
    }

    // Generation key: the base signature identifies the exact signed
    // translation (source, base address, flags, signing key) the trace
    // extends; the descriptor pins the recorded path.
    crypto::Sha256 h;
    h.update("trace-splice", 12);
    h.update(base.signature.data(), base.signature.size());
    h.update(req.home.data(), req.home.size());
    h.update(&req.anchorAddr, sizeof(req.anchorAddr));
    h.update(&req.contAddr, sizeof(req.contAddr));
    uint8_t loop = req.loop ? 1 : 0;
    h.update(&loop, 1);
    for (const TraceStep &s : req.steps) {
        h.update(&s.idx, sizeof(s.idx));
        h.update(&s.taken, sizeof(s.taken));
    }
    std::string key = crypto::toHex(h.final());

    auto it = _cache.find(key);
    if (it != _cache.end()) {
        result.ok = true;
        result.image = it->second;
        result.fromCache = true;
        _cacheHits++;
        _ctx.stats().add("translator.cache_hits");
        return result;
    }

    SpliceBuildResult built =
        buildSplicedImage(base, req, _ctx.config().cfi);
    if (!built.ok) {
        result.error = "trace splice rejected: " + built.error;
        _ctx.stats().add("translator.splice_rejected");
        return result;
    }
    auto image =
        std::make_shared<MachineImage>(std::move(built.image));

    if (_postLayoutHook)
        _postLayoutHook(*image);

    // Same gate as a fresh translation: the trace builder is untrusted,
    // so nothing spliced is signed (or installed) unless the verifier
    // re-proves the whole image — including the new block's side exits.
    if (_ctx.config().verifyMcode) {
        auto t0 = std::chrono::steady_clock::now();
        McodeVerifier verifier(McodePolicy::fromConfig(_ctx.config()));
        result.mverify = verifier.verify(*image);
        auto wall = std::chrono::steady_clock::now() - t0;
        sim::StatSet &stats = _ctx.stats();
        stats.add("mverify.functions", result.mverify.functionsChecked);
        stats.add("mverify.insts", result.mverify.instsChecked);
        stats.add("mverify.findings", result.mverify.findings.size());
        stats.add("mverify.wall_ns",
                  (uint64_t)std::chrono::duration_cast<
                      std::chrono::nanoseconds>(wall)
                      .count());
        if (!result.mverify.ok()) {
            result.error = "mcode verifier rejected spliced image '" +
                           image->moduleName + "':\n" +
                           result.mverify.message();
            stats.add("translator.mverify_rejected");
            return result;
        }
    }

    // Trace adoption re-runs the information-flow verifier over the
    // whole spliced image: a superinstruction block that smuggles
    // ghost taint past a sink (or carries taint out a side exit the
    // interpreter path never saw) is refused, never signed and never
    // cached.
    if (_ctx.config().verifyIflow) {
        auto t0 = std::chrono::steady_clock::now();
        IflowVerifier verifier;
        result.iflow = verifier.verify(*image);
        auto wall = std::chrono::steady_clock::now() - t0;
        sim::StatSet &stats = _ctx.stats();
        stats.add("iflow.functions", result.iflow.functionsChecked);
        stats.add("iflow.insts", result.iflow.instsChecked);
        stats.add("iflow.findings", result.iflow.findings.size());
        stats.add("iflow.wall_ns",
                  (uint64_t)std::chrono::duration_cast<
                      std::chrono::nanoseconds>(wall)
                      .count());
        if (!result.iflow.ok()) {
            result.error = "iflow verifier rejected spliced image '" +
                           image->moduleName + "':\n" +
                           result.iflow.message();
            stats.add("translator.iflow_rejected");
            return result;
        }
    }

    image->signature = sign(*image);
    _cache[key] = image;

    _ctx.stats().add("translator.traces_spliced");

    result.ok = true;
    result.image = std::move(image);
    return result;
}

TranslateResult
Translator::translateModule(vir::Module mod, uint64_t code_base)
{
    TranslateResult result;

    vir::VerifyResult verified = vir::verify(mod);
    if (!verified.ok()) {
        result.error = "verifier rejected module:\n" + verified.message();
        _ctx.stats().add("translator.rejected");
        return result;
    }

    bool instrumented = _ctx.config().anyInstrumentation();
    if (_ctx.config().sandboxMemory)
        result.sandboxStats = sandboxPass(mod);

    std::vector<LoweredFunc> lowered;
    lowered.reserve(mod.functions.size());
    for (const auto &fn : mod.functions) {
        LoweredFunc lf = lowerFunction(fn);
        if (_ctx.config().sandboxMemory &&
            _ctx.config().fuseSandboxMasks) {
            PassStats s = fuseSandboxPass(lf.code);
            result.fuseStats.sitesInstrumented += s.sitesInstrumented;
            result.fuseStats.instsRemoved += s.instsRemoved;
        }
        if (_ctx.config().cfi) {
            PassStats s = cfiPass(lf.code);
            result.cfiStats.sitesInstrumented += s.sitesInstrumented;
            result.cfiStats.instsAdded += s.instsAdded;
        }
        lowered.push_back(std::move(lf));
    }

    auto image = std::make_shared<MachineImage>(
        layoutImage(mod.name, std::move(lowered), code_base));
    image->instrumented = instrumented;

    if (_postLayoutHook)
        _postLayoutHook(*image);

    // The load-time gate: nothing gets signed (and therefore nothing
    // gets installed) unless the verifier can prove the instrumentation
    // invariants on the final bytes. This is what makes the passes
    // above untrusted.
    if (_ctx.config().verifyMcode) {
        auto t0 = std::chrono::steady_clock::now();
        McodeVerifier verifier(McodePolicy::fromConfig(_ctx.config()));
        result.mverify = verifier.verify(*image);
        auto wall = std::chrono::steady_clock::now() - t0;
        sim::StatSet &stats = _ctx.stats();
        stats.add("mverify.functions", result.mverify.functionsChecked);
        stats.add("mverify.insts", result.mverify.instsChecked);
        stats.add("mverify.findings", result.mverify.findings.size());
        stats.add("mverify.wall_ns",
                  (uint64_t)std::chrono::duration_cast<
                      std::chrono::nanoseconds>(wall)
                      .count());
        if (!result.mverify.ok()) {
            result.error = "mcode verifier rejected module '" +
                           image->moduleName + "':\n" +
                           result.mverify.message();
            stats.add("translator.mverify_rejected");
            return result;
        }
    }

    // The confidentiality gate: prove ghost-derived data cannot reach
    // an OS-visible channel unsealed. Same contract as verifyMcode —
    // findings mean no signature, no cache entry, no install.
    if (_ctx.config().verifyIflow) {
        auto t0 = std::chrono::steady_clock::now();
        IflowVerifier verifier;
        result.iflow = verifier.verify(*image);
        auto wall = std::chrono::steady_clock::now() - t0;
        sim::StatSet &stats = _ctx.stats();
        stats.add("iflow.functions", result.iflow.functionsChecked);
        stats.add("iflow.insts", result.iflow.instsChecked);
        stats.add("iflow.findings", result.iflow.findings.size());
        stats.add("iflow.wall_ns",
                  (uint64_t)std::chrono::duration_cast<
                      std::chrono::nanoseconds>(wall)
                      .count());
        if (!result.iflow.ok()) {
            result.error = "iflow verifier rejected module '" +
                           image->moduleName + "':\n" +
                           result.iflow.message();
            stats.add("translator.iflow_rejected");
            return result;
        }
    }

    image->signature = sign(*image);

    _ctx.stats().add("translator.modules");
    _ctx.stats().add("translator.insts_emitted", image->code.size());

    result.ok = true;
    result.image = std::move(image);
    return result;
}

} // namespace vg::cc
