/**
 * @file
 * Per-physical-frame metadata tracked by the Virtual Ghost VM.
 *
 * Every MMU check in S 4.3.2 reduces to consulting and maintaining this
 * table: what a frame is currently used for, and how many leaf PTEs
 * reference it. The OS can request mappings only through SVA-OS
 * intrinsics, which keep this table authoritative.
 */

#ifndef VG_SVA_FRAME_META_HH
#define VG_SVA_FRAME_META_HH

#include <cstdint>
#include <vector>

#include "hw/layout.hh"

namespace vg::sva
{

/** What a physical frame is being used for. */
enum class FrameType : uint8_t
{
    Free,      ///< owned by the OS allocator, unmapped
    Data,      ///< ordinary kernel/user data page
    Ghost,     ///< ghost memory — invisible to the OS
    PageTable, ///< declared page-table page (level in `level`)
    Code,      ///< translated native code / application text
    SvaInternal, ///< Virtual Ghost VM private state
};

/** Name for diagnostics. */
const char *frameTypeName(FrameType t);

/** Metadata for one frame. */
struct FrameMeta
{
    FrameType type = FrameType::Free;
    uint8_t level = 0;      ///< page-table level when type==PageTable
    uint32_t mapCount = 0;  ///< leaf PTEs referencing this frame
    uint64_t owner = 0;     ///< owning process id for Ghost frames
};

/** The frame table. */
class FrameTable
{
  public:
    explicit FrameTable(uint64_t frames) : _meta(frames) {}

    FrameMeta &
    operator[](hw::Frame f)
    {
        return _meta.at(f);
    }

    const FrameMeta &
    operator[](hw::Frame f) const
    {
        return _meta.at(f);
    }

    uint64_t size() const { return _meta.size(); }

    /** Count frames of a given type (tests/telemetry). */
    uint64_t
    count(FrameType t) const
    {
        uint64_t n = 0;
        for (const auto &m : _meta)
            n += m.type == t ? 1 : 0;
        return n;
    }

  private:
    std::vector<FrameMeta> _meta;
};

} // namespace vg::sva

#endif // VG_SVA_FRAME_META_HH
