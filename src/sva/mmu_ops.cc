/**
 * @file
 * Checked MMU intrinsics (S 4.3.2).
 *
 * The kernel cannot write page tables directly (page-table frames are
 * locked against ordinary stores by the instrumented memory path); it
 * must use these operations, each of which validates the update against
 * the frame-type table:
 *
 *  - no mapping may ever target a Ghost or SvaInternal frame,
 *  - no mapping may be established *at* a ghost virtual address,
 *  - page-table frames may only be referenced from parent tables (no
 *    writable aliases),
 *  - Code frames may only be mapped read-only, and an existing code
 *    mapping may not be redirected to a different frame or made
 *    writable.
 */

#include "sva/vm.hh"

#include "sim/log.hh"

namespace vg::sva
{

using hw::pte::frameNum;

bool
SvaVm::declarePtPage(hw::Frame frame, int level, SvaError *err)
{
    _ctx.chargeMmuUpdate();
    if (!_mem.validFrame(frame))
        return failOp(err, "declarePtPage: bad frame");
    if (level < 1 || level > 4)
        return failOp(err, "declarePtPage: bad level");
    FrameMeta &meta = _frames[frame];
    if (meta.type != FrameType::Free || meta.mapCount != 0) {
        return failOp(err, sim::strprintf(
                               "declarePtPage: frame %lu is %s/%u, not "
                               "a free unmapped frame",
                               (unsigned long)frame,
                               frameTypeName(meta.type), meta.mapCount));
    }
    if (!frameRetypeSafe(frame, "declarePtPage", err))
        return false;
    _mem.zeroFrame(frame);
    meta.type = FrameType::PageTable;
    meta.level = uint8_t(level);
    _iommu.protectFrame(frame);
    return true;
}

bool
SvaVm::undeclarePtPage(hw::Frame frame, SvaError *err)
{
    _ctx.chargeMmuUpdate();
    if (!_mem.validFrame(frame))
        return failOp(err, "undeclarePtPage: bad frame");
    FrameMeta &meta = _frames[frame];
    if (meta.type != FrameType::PageTable)
        return failOp(err, "undeclarePtPage: not a page-table page");
    // A table being retired must not still contain live entries.
    for (uint64_t i = 0; i < hw::pageSize / 8; i++) {
        if (_mem.read64(frame * hw::pageSize + i * 8) &
            hw::pte::present) {
            return failOp(err,
                          "undeclarePtPage: table still has live "
                          "entries");
        }
    }
    if (!frameRetypeSafe(frame, "undeclarePtPage", err))
        return false;
    _mem.zeroFrame(frame);
    meta.type = FrameType::Free;
    meta.level = 0;
    _iommu.unprotectFrame(frame);
    return true;
}

bool
SvaVm::installTable(hw::Frame parent, int parent_level, hw::Vaddr va,
                    hw::Frame child, SvaError *err)
{
    _ctx.chargeMmuUpdate();
    if (!_mem.validFrame(parent) || !_mem.validFrame(child))
        return failOp(err, "installTable: bad frame");
    if (_ctx.config().mmuChecks && hw::isGhostAddr(va))
        return failOp(err, "installTable: ghost virtual address");
    const FrameMeta &pm = _frames[parent];
    const FrameMeta &cm = _frames[child];
    if (pm.type != FrameType::PageTable || pm.level != parent_level ||
        parent_level < 2) {
        return failOp(err, "installTable: parent is not a page table "
                           "of the stated level");
    }
    if (cm.type != FrameType::PageTable ||
        cm.level != parent_level - 1) {
        return failOp(err, "installTable: child is not a declared "
                           "page table of the next level");
    }
    uint64_t idx = hw::ptIndex(va, hw::PtLevel(parent_level));
    hw::Paddr slot = parent * hw::pageSize + idx * 8;
    if (_mem.read64(slot) & hw::pte::present)
        return failOp(err, "installTable: slot already populated");
    _mem.write64(slot, hw::pte::make(child, true, true, false));
    return true;
}

bool
SvaVm::uninstallTable(hw::Frame parent, int parent_level, hw::Vaddr va,
                      SvaError *err)
{
    _ctx.chargeMmuUpdate();
    if (!_mem.validFrame(parent))
        return failOp(err, "uninstallTable: bad parent frame");
    const FrameMeta &pm = _frames[parent];
    if (pm.type != FrameType::PageTable || pm.level != parent_level ||
        parent_level < 2)
        return failOp(err, "uninstallTable: parent is not a page "
                           "table of the stated level");
    uint64_t idx = hw::ptIndex(va, hw::PtLevel(parent_level));
    hw::Paddr slot = parent * hw::pageSize + idx * 8;
    hw::Pte entry = _mem.read64(slot);
    if (!(entry & hw::pte::present))
        return failOp(err, "uninstallTable: slot empty");
    hw::Frame child = hw::pte::frameNum(entry);
    FrameMeta &cm = _frames[child];
    if (cm.type != FrameType::PageTable ||
        cm.level != parent_level - 1)
        return failOp(err, "uninstallTable: slot does not reference a "
                           "child table");
    for (uint64_t i = 0; i < hw::pageSize / 8; i++) {
        if (_mem.read64(child * hw::pageSize + i * 8) &
            hw::pte::present)
            return failOp(err, "uninstallTable: child table still has "
                               "live entries");
    }
    if (!frameRetypeSafe(child, "uninstallTable", err))
        return false;
    _mem.write64(slot, 0);
    _mem.zeroFrame(child);
    cm.type = FrameType::Free;
    cm.level = 0;
    _iommu.unprotectFrame(child);
    return true;
}

bool
SvaVm::walkToLeafSlot(hw::Frame root, hw::Vaddr va, hw::Paddr &slot,
                      SvaError *err)
{
    if (_frames[root].type != FrameType::PageTable ||
        _frames[root].level != 4)
        return failOp(err, "walk: root is not a declared L4 table");

    hw::Frame table = root;
    for (int level = 4; level >= 2; level--) {
        uint64_t idx = hw::ptIndex(va, hw::PtLevel(level));
        hw::Pte entry = _mem.read64(table * hw::pageSize + idx * 8);
        if (!(entry & hw::pte::present))
            return failOp(err, sim::strprintf(
                                   "walk: missing level-%d table for "
                                   "va %#lx",
                                   level - 1, (unsigned long)va));
        table = frameNum(entry);
        if (_frames[table].type != FrameType::PageTable)
            return failOp(err, "walk: intermediate entry does not "
                               "reference a page-table frame");
    }
    slot = table * hw::pageSize + hw::ptIndex(va, hw::PtLevel::L1) * 8;
    return true;
}

bool
SvaVm::mapPage(hw::Frame root, hw::Vaddr va, hw::Frame target,
               bool writable, bool user, bool no_exec, SvaError *err)
{
    _ctx.chargeMmuUpdate();
    if (!_mem.validFrame(target))
        return failOp(err, "mapPage: bad target frame");
    if (_ctx.config().mmuChecks && hw::isGhostAddr(va))
        return failOp(err, "mapPage: the OS may not map ghost "
                           "virtual addresses");
    if (hw::isSvaAddr(va))
        return failOp(err, "mapPage: SVA internal virtual address");

    const FrameMeta &tm = _frames[target];
    if (_ctx.config().mmuChecks) {
        switch (tm.type) {
          case FrameType::Ghost:
            return failOp(err, "mapPage: target is a ghost frame");
          case FrameType::SvaInternal:
            return failOp(err, "mapPage: target is SVA internal");
          case FrameType::PageTable:
            return failOp(err, "mapPage: page-table frames may not be "
                               "mapped (no writable aliases)");
          case FrameType::Code:
            if (writable)
                return failOp(err, "mapPage: code frames are never "
                                   "writable");
            break;
          default:
            break;
        }
    }

    hw::Paddr slot = 0;
    if (!walkToLeafSlot(root, va, slot, err))
        return false;

    hw::Pte old = _mem.read64(slot);
    if (old & hw::pte::present) {
        hw::Frame old_frame = frameNum(old);
        if (_ctx.config().mmuChecks &&
            _frames[old_frame].type == FrameType::Code) {
            return failOp(err, "mapPage: refusing to redirect a code "
                               "mapping (S 4.5)");
        }
        if (_frames[old_frame].mapCount > 0)
            _frames[old_frame].mapCount--;
    }

    _mem.write64(slot, hw::pte::make(target, writable, user, no_exec));
    _frames[target].mapCount++;
    if (_frames[target].type == FrameType::Free)
        _frames[target].type = FrameType::Data;
    invalidateEverywhere(va);
    return true;
}

bool
SvaVm::unmapPage(hw::Frame root, hw::Vaddr va, SvaError *err)
{
    _ctx.chargeMmuUpdate();
    if (_ctx.config().mmuChecks && hw::isGhostAddr(va))
        return failOp(err, "unmapPage: ghost virtual address");

    hw::Paddr slot = 0;
    if (!walkToLeafSlot(root, va, slot, err))
        return false;
    hw::Pte old = _mem.read64(slot);
    if (!(old & hw::pte::present))
        return failOp(err, "unmapPage: not mapped");
    hw::Frame old_frame = frameNum(old);
    // Shoot the translation down everywhere *before* the frame may be
    // released: no CPU may keep reading through a dead mapping.
    _mem.write64(slot, 0);
    invalidateEverywhere(va);
    if (_frames[old_frame].mapCount > 0)
        _frames[old_frame].mapCount--;
    if (_frames[old_frame].type == FrameType::Data &&
        _frames[old_frame].mapCount == 0) {
        if (!frameRetypeSafe(old_frame, "unmapPage", err))
            return false;
        _frames[old_frame].type = FrameType::Free;
    }
    return true;
}

bool
SvaVm::protectPage(hw::Frame root, hw::Vaddr va, bool writable,
                   bool no_exec, SvaError *err)
{
    _ctx.chargeMmuUpdate();
    if (_ctx.config().mmuChecks && hw::isGhostAddr(va))
        return failOp(err, "protectPage: ghost virtual address");

    hw::Paddr slot = 0;
    if (!walkToLeafSlot(root, va, slot, err))
        return false;
    hw::Pte old = _mem.read64(slot);
    if (!(old & hw::pte::present))
        return failOp(err, "protectPage: not mapped");
    hw::Frame frame = frameNum(old);
    if (_ctx.config().mmuChecks &&
        _frames[frame].type == FrameType::Code && writable) {
        return failOp(err, "protectPage: code pages can never become "
                           "writable (S 4.5)");
    }
    _mem.write64(slot, hw::pte::make(frame, writable,
                                     (old & hw::pte::user) != 0,
                                     no_exec));
    invalidateEverywhere(va);
    return true;
}

bool
SvaVm::loadRoot(hw::Frame root, SvaError *err)
{
    _ctx.chargeMmuUpdate();
    if (!_mem.validFrame(root))
        return failOp(err, "loadRoot: bad frame");
    if (_frames[root].type != FrameType::PageTable ||
        _frames[root].level != 4)
        return failOp(err, "loadRoot: not a declared L4 root");
    curMmu().setRoot(root * hw::pageSize);
    return true;
}

} // namespace vg::sva
