/**
 * @file
 * Ghost memory management (S 3.2) and secure swapping (S 3.3).
 *
 * allocgm(): the OS donates frames (it remains the physical-memory
 * owner); the VM verifies each frame is fully unmapped, zeroes it,
 * types it Ghost (which locks it against kernel loads/stores, MMU
 * mapping, and DMA), and maps it at the requested ghost virtual
 * address in the owning process's tree. freegm() reverses this,
 * zeroing before return so no data leaks.
 *
 * Swapping: the VM encrypts+MACs the page under its own swap key with
 * the (pid, va) bound in as associated data, so the OS can neither
 * read the plaintext, forge contents, nor replay a page into the wrong
 * slot of the wrong process.
 */

#include <cstring>
#include <functional>

#include "sim/log.hh"
#include "sva/vm.hh"

namespace vg::sva
{

crypto::AesKey
SvaVm::swapKey() const
{
    // The key is a pure function of the private key, so derive it once
    // and cache; install()/boot() invalidate when the key changes.
    if (_swapKeyValid)
        return _swapKey;
    crypto::Sha256 h(_ctx.config().cryptoFastPath);
    h.update("vg-swap-key", 11);
    std::vector<uint8_t> priv = _privateKey.d.toBytes();
    h.update(priv.data(), priv.size());
    crypto::Digest d = h.final();
    crypto::AesKey key{};
    std::memcpy(key.data(), d.data(), key.size());
    _swapKey = key;
    _swapKeyValid = true;
    _sealKeyGen++;
    return key;
}

namespace
{

/** Associated data binding a swapped page to (pid, va, generation).
 *  The generation is VM-trusted monotonic state: a stale blob from an
 *  earlier swap-out of the same slot carries a dead generation and
 *  fails MAC verification. */
std::vector<uint8_t>
swapAad(uint64_t pid, hw::Vaddr va, uint64_t gen)
{
    std::vector<uint8_t> aad(24);
    std::memcpy(aad.data(), &pid, 8);
    std::memcpy(aad.data() + 8, &va, 8);
    std::memcpy(aad.data() + 16, &gen, 8);
    return aad;
}

} // namespace

bool
SvaVm::mapGhostPage(hw::Frame root, hw::Vaddr va, hw::Frame frame,
                    SvaError *err)
{
    if (_frames[root].type != FrameType::PageTable ||
        _frames[root].level != 4)
        return failOp(err, "ghost map: root is not a declared L4");

    // Walk, creating intermediate tables from OS-donated frames; the
    // created tables belong to SVA and cover only ghost VAs.
    hw::Frame table = root;
    for (int level = 4; level >= 2; level--) {
        uint64_t idx = hw::ptIndex(va, hw::PtLevel(level));
        hw::Paddr slot = table * hw::pageSize + idx * 8;
        hw::Pte entry = _mem.read64(slot);
        if (!(entry & hw::pte::present)) {
            if (!_frameProvider)
                return failOp(err, "ghost map: no frame provider");
            std::optional<hw::Frame> pt = _frameProvider();
            if (!pt)
                return failOp(err, "ghost map: out of frames");
            FrameMeta &meta = _frames[*pt];
            if (meta.type != FrameType::Free || meta.mapCount != 0)
                return failOp(err, "ghost map: donated table frame "
                                   "still in use");
            _mem.zeroFrame(*pt);
            meta.type = FrameType::PageTable;
            meta.level = uint8_t(level - 1);
            _iommu.protectFrame(*pt);
            _mem.write64(slot, hw::pte::make(*pt, true, true, false));
            entry = _mem.read64(slot);
        }
        table = hw::pte::frameNum(entry);
    }

    hw::Paddr slot = table * hw::pageSize +
                     hw::ptIndex(va, hw::PtLevel::L1) * 8;
    if (_mem.read64(slot) & hw::pte::present)
        return failOp(err, "ghost map: va already mapped");
    _mem.write64(slot, hw::pte::make(frame, true, true, true));
    _frames[frame].mapCount++;
    invalidateEverywhere(va);
    return true;
}

bool
SvaVm::allocGhostMemory(uint64_t pid, hw::Frame root, hw::Vaddr va,
                        uint64_t npages, SvaError *err)
{
    _ctx.clock().advance(_ctx.costs().ghostAllocCall);
    if (npages == 0)
        return failOp(err, "allocgm: zero pages");
    if (hw::pageOffset(va) != 0)
        return failOp(err, "allocgm: unaligned va");
    if (!hw::isGhostAddr(va) ||
        !hw::isGhostAddr(va + npages * hw::pageSize - 1))
        return failOp(err, "allocgm: range outside the ghost "
                           "partition");
    if (!_frameProvider)
        return failOp(err, "allocgm: no frame provider");

    for (uint64_t i = 0; i < npages; i++) {
        hw::Vaddr page_va = va + i * hw::pageSize;
        std::optional<hw::Frame> frame = _frameProvider();
        if (!frame)
            return failOp(err, "allocgm: OS out of frames");
        FrameMeta &meta = _frames[*frame];
        // The OS must have removed every mapping to this frame.
        if (meta.type != FrameType::Free || meta.mapCount != 0) {
            return failOp(err, sim::strprintf(
                                   "allocgm: frame %lu still %s/%u",
                                   (unsigned long)*frame,
                                   frameTypeName(meta.type),
                                   meta.mapCount));
        }
        if (!frameRetypeSafe(*frame, "allocgm", err))
            return false;
        _mem.zeroFrame(*frame);
        meta.type = FrameType::Ghost;
        meta.owner = pid;
        _iommu.protectFrame(*frame);
        if (!mapGhostPage(root, page_va, *frame, err))
            return false;
        _ghostPages[pid].push_back({*frame, page_va});
        _ctx.clock().advance(_ctx.costs().ghostAllocPerPage);
    }
    sim::StatSet::add(_hGhostAllocated, npages);
    return true;
}

namespace
{

/** Internal leaf-slot walk that permits ghost VAs (VM-private). */
bool
ghostLeafSlot(hw::PhysMem &mem, const FrameTable &frames, hw::Frame root,
              hw::Vaddr va, hw::Paddr &slot)
{
    if (frames[root].type != FrameType::PageTable ||
        frames[root].level != 4)
        return false;
    hw::Frame table = root;
    for (int level = 4; level >= 2; level--) {
        uint64_t idx = hw::ptIndex(va, hw::PtLevel(level));
        hw::Pte entry = mem.read64(table * hw::pageSize + idx * 8);
        if (!(entry & hw::pte::present))
            return false;
        table = hw::pte::frameNum(entry);
    }
    slot = table * hw::pageSize + hw::ptIndex(va, hw::PtLevel::L1) * 8;
    return true;
}

} // namespace

bool
SvaVm::freeGhostMemory(uint64_t pid, hw::Frame root, hw::Vaddr va,
                       uint64_t npages, SvaError *err)
{
    _ctx.clock().advance(_ctx.costs().ghostAllocCall);
    if (!hw::isGhostAddr(va))
        return failOp(err, "freegm: not a ghost address");

    for (uint64_t i = 0; i < npages; i++) {
        hw::Vaddr page_va = va + i * hw::pageSize;
        hw::Paddr slot = 0;
        if (!ghostLeafSlot(_mem, _frames, root, page_va, slot))
            return failOp(err, "freegm: page not mapped");
        hw::Pte entry = _mem.read64(slot);
        if (!(entry & hw::pte::present))
            return failOp(err, "freegm: page not present");
        hw::Frame frame = hw::pte::frameNum(entry);
        FrameMeta &meta = _frames[frame];
        if (meta.type != FrameType::Ghost || meta.owner != pid)
            return failOp(err, "freegm: page is not this process's "
                               "ghost memory");

        _mem.write64(slot, 0);
        invalidateEverywhere(page_va);
        if (!frameRetypeSafe(frame, "freegm", err))
            return false;
        _mem.zeroFrame(frame); // no data leaks back to the OS
        meta.type = FrameType::Free;
        meta.owner = 0;
        if (meta.mapCount > 0)
            meta.mapCount--;
        _iommu.unprotectFrame(frame);
        if (_frameReceiver)
            _frameReceiver(frame);

        auto &pages = _ghostPages[pid];
        for (auto it = pages.begin(); it != pages.end(); ++it) {
            if (it->second == page_va) {
                pages.erase(it);
                break;
            }
        }
        _ctx.clock().advance(_ctx.costs().ghostAllocPerPage);
    }
    sim::StatSet::add(_hGhostFreed, npages);
    return true;
}

bool
SvaVm::validateGhostPage(uint64_t pid, hw::Frame root, hw::Vaddr va,
                         const char *op, hw::Paddr &slot,
                         hw::Frame &frame, SvaError *err)
{
    if (!ghostLeafSlot(_mem, _frames, root, va, slot))
        return failOp(err, std::string(op) + ": page not mapped");
    hw::Pte entry = _mem.read64(slot);
    frame = hw::pte::frameNum(entry);
    const FrameMeta &meta = _frames[frame];
    if (!(entry & hw::pte::present) || meta.type != FrameType::Ghost ||
        meta.owner != pid)
        return failOp(err, std::string(op) +
                               ": not this process's ghost page");
    return true;
}

bool
SvaVm::detachGhostFrame(uint64_t pid, hw::Vaddr va, hw::Paddr slot,
                        hw::Frame frame, const char *op, SvaError *err)
{
    // Unmap, scrub, and hand the frame back to the OS.
    _mem.write64(slot, 0);
    invalidateEverywhere(va);
    if (!frameRetypeSafe(frame, op, err))
        return false;
    FrameMeta &meta = _frames[frame];
    _mem.zeroFrame(frame);
    meta.type = FrameType::Free;
    meta.owner = 0;
    if (meta.mapCount > 0)
        meta.mapCount--;
    _iommu.unprotectFrame(frame);
    if (_frameReceiver)
        _frameReceiver(frame);

    auto &pages = _ghostPages[pid];
    for (auto it = pages.begin(); it != pages.end(); ++it) {
        if (it->second == va) {
            pages.erase(it);
            break;
        }
    }
    sim::StatSet::add(_hGhostSwappedOut);
    return true;
}

std::optional<crypto::SealedBlob>
SvaVm::swapOutGhostPage(uint64_t pid, hw::Frame root, hw::Vaddr va,
                        SvaError *err)
{
    hw::Paddr slot = 0;
    hw::Frame frame = 0;
    if (!validateGhostPage(pid, root, va, "swapout", slot, frame, err))
        return std::nullopt;

    std::vector<uint8_t> plain(hw::pageSize);
    _mem.readBytes(frame * hw::pageSize, plain.data(), plain.size());
    _ctx.clock().advance(_ctx.costs().sealSetup);
    _ctx.chargeAes(plain.size());
    _ctx.chargeSha(plain.size());
    uint64_t gen = _nextSwapGen++;
    _swapGens[{pid, va}] = gen;
    crypto::SealedBlob blob =
        crypto::seal(swapKey(), _rng, plain, swapAad(pid, va, gen),
                     _ctx.config().cryptoFastPath);

    if (!detachGhostFrame(pid, va, slot, frame, "swapout", err))
        return std::nullopt;
    return blob;
}

std::vector<crypto::SealedBlob>
SvaVm::swapOutGhostBatch(uint64_t pid, hw::Frame root,
                         const std::vector<hw::Vaddr> &vas,
                         SvaError *err)
{
    // Validate the whole batch up front: a bad va evicts nothing.
    std::vector<hw::Paddr> slots(vas.size());
    std::vector<hw::Frame> framesOf(vas.size());
    for (size_t i = 0; i < vas.size(); i++)
        if (!validateGhostPage(pid, root, vas[i], "swapout", slots[i],
                               framesOf[i], err))
            return {};

    // Gather plaintexts and bind each page's fresh generation into its
    // AAD; seal the lot in one pipelined pass. Setup cost is charged
    // once per batch — the per-byte crypto work is identical to the
    // per-page path, as are the resulting blobs.
    std::vector<crypto::SealInput> batch(vas.size());
    for (size_t i = 0; i < vas.size(); i++) {
        batch[i].plain.resize(hw::pageSize);
        _mem.readBytes(framesOf[i] * hw::pageSize,
                       batch[i].plain.data(), hw::pageSize);
        uint64_t gen = _nextSwapGen++;
        _swapGens[{pid, vas[i]}] = gen;
        batch[i].aad = swapAad(pid, vas[i], gen);
    }
    _ctx.clock().advance(_ctx.costs().sealSetup);
    for (size_t i = 0; i < vas.size(); i++) {
        _ctx.chargeAes(hw::pageSize);
        _ctx.chargeSha(hw::pageSize);
    }
    std::vector<crypto::SealedBlob> blobs = crypto::sealBatch(
        swapKey(), _rng, batch, _ctx.config().cryptoFastPath);

    for (size_t i = 0; i < vas.size(); i++)
        if (!detachGhostFrame(pid, vas[i], slots[i], framesOf[i],
                              "swapout", err))
            return {};
    sim::StatSet::add(_hGhostSwapBatches);
    return blobs;
}

bool
SvaVm::swapInGhostPage(uint64_t pid, hw::Frame root, hw::Vaddr va,
                       const crypto::SealedBlob &blob, SvaError *err)
{
    auto genIt = _swapGens.find({pid, va});
    if (genIt == _swapGens.end())
        return failOp(err, "swapin: no swapped page recorded for this "
                           "slot (replayed to the wrong slot?)");
    bool ok = false;
    _ctx.clock().advance(_ctx.costs().sealSetup);
    _ctx.chargeAes(blob.ciphertext.size());
    _ctx.chargeSha(blob.ciphertext.size());
    std::vector<uint8_t> plain = crypto::unseal(
        swapKey(), blob, ok, swapAad(pid, va, genIt->second),
        _ctx.config().cryptoFastPath);
    if (!ok || plain.size() != hw::pageSize)
        return failOp(err, "swapin: page fails verification (tampered, "
                           "stale, or replayed to the wrong slot)");

    if (!_frameProvider)
        return failOp(err, "swapin: no frame provider");
    std::optional<hw::Frame> frame = _frameProvider();
    if (!frame)
        return failOp(err, "swapin: OS out of frames");
    FrameMeta &meta = _frames[*frame];
    if (meta.type != FrameType::Free || meta.mapCount != 0)
        return failOp(err, "swapin: donated frame still in use");
    if (!frameRetypeSafe(*frame, "swapin", err))
        return false;

    meta.type = FrameType::Ghost;
    meta.owner = pid;
    _iommu.protectFrame(*frame);
    _mem.writeBytes(*frame * hw::pageSize, plain.data(), plain.size());
    if (!mapGhostPage(root, va, *frame, err))
        return false;
    _ghostPages[pid].push_back({*frame, va});
    _swapGens.erase(genIt); // slot is live again; the blob is dead
    sim::StatSet::add(_hGhostSwappedIn);
    return true;
}

bool
SvaVm::ghostPageTestClearRef(uint64_t pid, hw::Frame root, hw::Vaddr va)
{
    hw::Paddr slot = 0;
    hw::Frame frame = 0;
    SvaError err;
    if (!validateGhostPage(pid, root, va, "refclear", slot, frame,
                           &err))
        return false;
    hw::Pte entry = _mem.read64(slot);
    if (!(entry & hw::pte::accessed))
        return false;
    _ctx.chargeMmuUpdate();
    _mem.write64(slot, entry & ~hw::pte::accessed);
    invalidateEverywhere(va); // next touch re-walks and re-sets A
    return true;
}

bool
SvaVm::ghostPageReferenced(uint64_t pid, hw::Frame root,
                           hw::Vaddr va) const
{
    hw::Paddr slot = 0;
    if (!ghostLeafSlot(_mem, _frames, root, va, slot))
        return false;
    hw::Pte entry = _mem.read64(slot);
    if (!(entry & hw::pte::present))
        return false;
    const FrameMeta &meta = _frames[hw::pte::frameNum(entry)];
    if (meta.type != FrameType::Ghost || meta.owner != pid)
        return false;
    return (entry & hw::pte::accessed) != 0;
}

uint64_t
SvaVm::swapGeneration(uint64_t pid, hw::Vaddr va) const
{
    auto it = _swapGens.find({pid, va});
    return it == _swapGens.end() ? 0 : it->second;
}

void
SvaVm::releaseGhostMemory(uint64_t pid, hw::Frame root)
{
    // Swapped-out pages die with the process: their generations are
    // dropped, so any blob the OS kept can never verify again.
    for (auto g = _swapGens.begin(); g != _swapGens.end();) {
        if (g->first.first == pid)
            g = _swapGens.erase(g);
        else
            ++g;
    }

    auto it = _ghostPages.find(pid);
    if (it != _ghostPages.end()) {
        // Copy: freeGhostMemory edits the vector.
        std::vector<std::pair<hw::Frame, hw::Vaddr>> pages = it->second;
        for (const auto &[frame, va] : pages) {
            SvaError err;
            freeGhostMemory(pid, root, va, 1, &err);
        }
        _ghostPages.erase(pid);
    }

    // Retire the (now empty) ghost page-table subtree. The 512 GB
    // ghost partition occupies exactly one L4 slot.
    if (!_mem.validFrame(root) ||
        _frames[root].type != FrameType::PageTable ||
        _frames[root].level != 4)
        return;

    // Depth-first free of a table subtree; tables are VM-owned.
    std::function<void(hw::Frame, int)> free_subtree =
        [&](hw::Frame table, int level) {
            for (uint64_t i = 0; i < hw::pageSize / 8; i++) {
                hw::Pte entry =
                    _mem.read64(table * hw::pageSize + i * 8);
                if (!(entry & hw::pte::present))
                    continue;
                hw::Frame child = hw::pte::frameNum(entry);
                if (level > 2 &&
                    _frames[child].type == FrameType::PageTable)
                    free_subtree(child, level - 1);
                if (_frames[child].type == FrameType::PageTable) {
                    _mem.zeroFrame(child);
                    _frames[child].type = FrameType::Free;
                    _frames[child].level = 0;
                    _iommu.unprotectFrame(child);
                    if (_frameReceiver)
                        _frameReceiver(child);
                }
                _mem.write64(table * hw::pageSize + i * 8, 0);
            }
        };

    uint64_t l4_idx = hw::ptIndex(hw::ghostBase, hw::PtLevel::L4);
    hw::Paddr slot = root * hw::pageSize + l4_idx * 8;
    hw::Pte entry = _mem.read64(slot);
    if (entry & hw::pte::present) {
        hw::Frame l3 = hw::pte::frameNum(entry);
        if (_frames[l3].type == FrameType::PageTable) {
            free_subtree(l3, 3);
            _mem.zeroFrame(l3);
            _frames[l3].type = FrameType::Free;
            _frames[l3].level = 0;
            _iommu.unprotectFrame(l3);
            if (_frameReceiver)
                _frameReceiver(l3);
        }
        _mem.write64(slot, 0);
    }
    flushEverywhere();
}

uint64_t
SvaVm::ghostPageCount(uint64_t pid) const
{
    auto it = _ghostPages.find(pid);
    return it == _ghostPages.end() ? 0 : it->second.size();
}

std::vector<hw::Vaddr>
SvaVm::ghostPagesOf(uint64_t pid) const
{
    std::vector<hw::Vaddr> out;
    auto it = _ghostPages.find(pid);
    if (it == _ghostPages.end())
        return out;
    out.reserve(it->second.size());
    for (const auto &[frame, va] : it->second)
        out.push_back(va);
    return out;
}

} // namespace vg::sva
