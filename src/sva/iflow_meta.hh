#pragma once
/**
 * @file
 * Information-flow roles of the extern/intrinsic surface, shared by
 * the compiler-side IflowVerifier and the kernel-side implementations
 * (module_api.cc). Header-only so the compiler layer can consume it
 * without a link dependency on the sva subsystem.
 *
 * The lattice is deliberately small:
 *
 *   sources       — produce ghost-derived data (sva_ghost_read) or
 *                   pointers into the ghost region (sva_ghost_ptr).
 *   declassifiers — the seal/HMAC crypto intrinsics; their result is
 *                   ciphertext/MAC output and is clean by fiat.
 *   sinks         — OS-visible channels. Any tainted argument reaching
 *                   one is a leak. Externs NOT listed here are treated
 *                   as sinks on the Extern channel (default deny): an
 *                   unknown kernel entry point must be assumed to
 *                   publish its arguments.
 */

#include <cstddef>
#include <string>

namespace vg::sva
{

enum class IfRole : unsigned char {
    SourceData,   ///< returns a ghost-derived 64-bit value
    SourcePtr,    ///< returns a pointer into the ghost region
    Declassifier, ///< seal/HMAC: result is sanctioned ciphertext
    Sink,         ///< OS-visible channel; tainted args are leaks
    SinkPtr,      ///< returns a pointer into an OS-visible window
};

enum class IfChannel : unsigned char {
    None, ///< not a channel (sources/declassifiers)
    Nic,  ///< NIC descriptor payloads
    Disk, ///< raw disk writes / exfil files
    Swap, ///< swap-slot stores (must carry sealed bytes only)
    Stat, ///< kernel stat counters
    Log,  ///< console/klog output
    Kmem, ///< plain stores into kernel-visible memory
    Extern, ///< unknown extern (default-deny sink)
};

struct IfExternInfo {
    IfRole role;
    IfChannel channel;
};

struct IfExternEntry {
    const char *name;
    IfExternInfo info;
    const char *desc;
};

/** The annotated extern table, in dump order. */
inline const IfExternEntry *
iflowExternTable(size_t &count)
{
    static const IfExternEntry table[] = {
        {"sva_ghost_read",
         {IfRole::SourceData, IfChannel::None},
         "read a 64-bit word from the caller's ghost memory"},
        {"sva_ghost_ptr",
         {IfRole::SourcePtr, IfChannel::None},
         "return a pointer into the caller's ghost region"},
        {"sva_seal",
         {IfRole::Declassifier, IfChannel::None},
         "seal a word under the app's ghost key (AES-CTR model)"},
        {"sva_hmac",
         {IfRole::Declassifier, IfChannel::None},
         "MAC a word under the app's ghost key"},
        {"k_nic_tx",
         {IfRole::Sink, IfChannel::Nic},
         "queue a word as a NIC descriptor payload"},
        {"k_disk_write",
         {IfRole::Sink, IfChannel::Disk},
         "write a word to a raw disk block"},
        {"k_swap_store",
         {IfRole::Sink, IfChannel::Swap},
         "store a word into a swap slot (sealed bytes only)"},
        {"k_swap_slot_ptr",
         {IfRole::SinkPtr, IfChannel::Swap},
         "return a pointer into the swap staging window"},
        {"k_stat_add",
         {IfRole::Sink, IfChannel::Stat},
         "add a value to a kernel stat counter"},
        {"klog",
         {IfRole::Sink, IfChannel::Log},
         "log a 64-bit value to the console"},
        {"klog_bytes",
         {IfRole::Sink, IfChannel::Log},
         "hex-dump kernel-visible memory to the console"},
        {"k_exfil",
         {IfRole::Sink, IfChannel::Disk},
         "append kernel-visible bytes to the attacker's file"},
        {"k_exfil_fd",
         {IfRole::Sink, IfChannel::Disk},
         "write victim-side data to a process fd"},
    };
    count = sizeof(table) / sizeof(table[0]);
    return table;
}

/**
 * Look up an extern's information-flow role. Returns nullptr for
 * unknown externs — callers must treat those as Sink/Extern.
 */
inline const IfExternInfo *
iflowExternInfo(const std::string &name)
{
    size_t n = 0;
    const IfExternEntry *table = iflowExternTable(n);
    for (size_t i = 0; i < n; i++)
        if (name == table[i].name)
            return &table[i].info;
    return nullptr;
}

inline const char *
iflowChannelName(IfChannel c)
{
    switch (c) {
      case IfChannel::None: return "none";
      case IfChannel::Nic: return "nic";
      case IfChannel::Disk: return "disk";
      case IfChannel::Swap: return "swap";
      case IfChannel::Stat: return "stat";
      case IfChannel::Log: return "log";
      case IfChannel::Kmem: return "kmem";
      case IfChannel::Extern: return "extern";
    }
    return "?";
}

} // namespace vg::sva
