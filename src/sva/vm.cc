#include "sva/vm.hh"

#include <cstring>

#include "crypto/sha256.hh"
#include "sim/log.hh"

namespace vg::sva
{

const char *
frameTypeName(FrameType t)
{
    switch (t) {
      case FrameType::Free:
        return "free";
      case FrameType::Data:
        return "data";
      case FrameType::Ghost:
        return "ghost";
      case FrameType::PageTable:
        return "pagetable";
      case FrameType::Code:
        return "code";
      case FrameType::SvaInternal:
        return "sva-internal";
    }
    return "?";
}

/** Base of the region where translated module code is placed. */
static constexpr uint64_t kModuleCodeBase = 0xffffff9000000000ull;

SvaVm::SvaVm(sim::SimContext &ctx, hw::PhysMem &mem, hw::Mmu &mmu,
             hw::Iommu &iommu, hw::Tpm &tpm)
    : _ctx(ctx), _mem(mem), _mmu(mmu), _iommu(iommu), _tpm(tpm),
      _frames(mem.numFrames()), _rng(tpm.entropy(32)),
      _nextCodeBase(kModuleCodeBase),
      _hViolations(ctx.stats().handle("sva.violations")),
      _hRemoteInvlpgs(ctx.stats().handle("sva.remote_invlpgs")),
      _hRemoteParks(ctx.stats().handle("sva.remote_parks")),
      _hIcSaves(ctx.stats().handle("sva.ic_saves")),
      _hIcLoads(ctx.stats().handle("sva.ic_loads")),
      _hIpush(ctx.stats().handle("sva.ipush")),
      _hGetKey(ctx.stats().handle("sva.getkey")),
      _hRandomBytes(ctx.stats().handle("sva.random_bytes")),
      _hGhostAllocated(ctx.stats().handle("sva.ghost_pages_allocated")),
      _hGhostFreed(ctx.stats().handle("sva.ghost_pages_freed")),
      _hGhostSwappedOut(
          ctx.stats().handle("sva.ghost_pages_swapped_out")),
      _hGhostSwappedIn(ctx.stats().handle("sva.ghost_pages_swapped_in")),
      _hGhostSwapBatches(ctx.stats().handle("sva.ghost_swap_batches"))
{}

void
SvaVm::attachCpus(hw::CpuSet &cpus)
{
    _cpus = &cpus;
    _cpuState.assign(cpus.count(), VmState{});
    if (cpus.count() > 1) {
        _hCpuShootdowns.resize(cpus.count());
        for (unsigned c = 0; c < cpus.count(); c++) {
            _hCpuShootdowns[c] = _ctx.stats().handle(
                "cpu" + std::to_string(c) + ".sva.shootdowns_rx");
        }
    }
}

void
SvaVm::invalidateEverywhere(hw::Vaddr va)
{
    curMmu().invalidatePage(va);
    if (!_cpus)
        return;
    unsigned self = _ctx.activeCpu();
    for (unsigned c = 0; c < _cpus->count(); c++) {
        if (c == self)
            continue;
        hw::Mmu &m = (*_cpus)[c].mmu();
        if (!m.tlbHolds(va))
            continue;
        m.invalidatePage(va);
        _ctx.clock().advance(_ctx.costs().ipiSend);
        _ctx.clockOf(c).advance(_ctx.costs().ipiReceive);
        sim::StatSet::add(_hRemoteInvlpgs);
        if (c < _hCpuShootdowns.size() && _hCpuShootdowns[c])
            sim::StatSet::add(_hCpuShootdowns[c]);
    }
}

void
SvaVm::flushEverywhere()
{
    curMmu().flushTlb();
    if (!_cpus)
        return;
    unsigned self = _ctx.activeCpu();
    for (unsigned c = 0; c < _cpus->count(); c++) {
        if (c == self)
            continue;
        hw::Mmu &m = (*_cpus)[c].mmu();
        if (!m.anyValidTlbEntry())
            continue;
        m.flushTlb();
        _ctx.clock().advance(_ctx.costs().ipiSend);
        _ctx.clockOf(c).advance(_ctx.costs().ipiReceive);
        sim::StatSet::add(_hRemoteInvlpgs);
        if (c < _hCpuShootdowns.size() && _hCpuShootdowns[c])
            sim::StatSet::add(_hCpuShootdowns[c]);
    }
}

bool
SvaVm::anyTlbHoldsFrame(hw::Frame frame)
{
    if (_cpus) {
        for (unsigned c = 0; c < _cpus->count(); c++)
            if ((*_cpus)[c].mmu().tlbReferencesFrame(frame))
                return true;
        return false;
    }
    return _mmu.tlbReferencesFrame(frame);
}

bool
SvaVm::frameRetypeSafe(hw::Frame frame, const char *op, SvaError *err)
{
    if (!_ctx.config().mmuChecks)
        return true;
    if (!anyTlbHoldsFrame(frame))
        return true;
    return failOp(err, sim::strprintf(
                           "%s: frame %lu may still be reachable "
                           "through a stale TLB translation on some "
                           "CPU; shoot it down first",
                           op, (unsigned long)frame));
}

bool
SvaVm::failOp(SvaError *err, const std::string &message)
{
    _violations++;
    sim::StatSet::add(_hViolations);
    sim::debug("sva check failed: %s", message.c_str());
    if (err)
        err->message = message;
    return false;
}

// --------------------------------------------------------------------
// Install / boot
// --------------------------------------------------------------------

void
SvaVm::install(size_t rsa_bits)
{
    crypto::CtrDrbg keygen_rng(_tpm.entropy(48));
    _privateKey = crypto::rsaGenerate(keygen_rng, rsa_bits);
    _swapKeyValid = false; // swapKey() derives from the private key
    _publicKey = _privateKey.publicKey();
    _sealedPrivateKey = _tpm.seal(_privateKey.serialize());
    _translationKey = _rng.generate(32);
    _installed = true;
    _ctx.stats().add("sva.installs");
}

void
SvaVm::boot()
{
    if (!_installed)
        sim::fatal("SvaVm::boot before install");
    bool ok = false;
    std::vector<uint8_t> priv = _tpm.unseal(_sealedPrivateKey, ok);
    if (!ok)
        sim::fatal("SvaVm::boot: sealed private key fails to verify "
                   "(tampered persistent state)");
    _privateKey = crypto::RsaPrivateKey::deserialize(priv, ok);
    _swapKeyValid = false;
    if (!ok)
        sim::fatal("SvaVm::boot: corrupt private key");
    _publicKey = _privateKey.publicKey();
    _translator = std::make_unique<cc::Translator>(_translationKey, _ctx);
    _booted = true;
}

void
SvaVm::reserveSvaFrame(hw::Frame frame)
{
    FrameMeta &meta = _frames[frame];
    if (meta.type != FrameType::Free)
        sim::panic("reserveSvaFrame: frame %lu not free",
                   (unsigned long)frame);
    meta.type = FrameType::SvaInternal;
    _mem.zeroFrame(frame);
    _iommu.protectFrame(frame);
}

// --------------------------------------------------------------------
// Threads / Interrupt Contexts
// --------------------------------------------------------------------

void
SvaVm::registerKernelEntry(uint64_t entry)
{
    _kernelEntries.insert(entry);
}

SvaThread *
SvaVm::newThread(uint64_t pid, uint64_t kernel_entry,
                 uint64_t clone_from_tid, SvaError *err)
{
    if (kernel_entry != 0 &&
        _kernelEntries.find(kernel_entry) == _kernelEntries.end()) {
        failOp(err, sim::strprintf("sva.newstate: %#lx is not a "
                                   "registered kernel entry point",
                                   (unsigned long)kernel_entry));
        return nullptr;
    }

    uint64_t tid = _nextTid++;
    SvaThread &t = _threads[tid];
    t.id = tid;
    t.processId = pid;
    t.kernelEntry = kernel_entry;
    if (clone_from_tid != 0) {
        SvaThread *src = thread(clone_from_tid);
        if (!src) {
            _threads.erase(tid);
            failOp(err, "sva.newstate: clone source does not exist");
            return nullptr;
        }
        t.ic = src->ic;
    }
    _ctx.stats().add("sva.threads_created");
    return &t;
}

SvaThread *
SvaVm::thread(uint64_t tid)
{
    auto it = _threads.find(tid);
    return it == _threads.end() ? nullptr : &it->second;
}

void
SvaVm::releaseIcPoolSlots(SvaThread &t)
{
    for (unsigned cpu : t.icStackPoolCpu) {
        if (cpu < _cpuState.size() && _cpuState[cpu].savedIcInUse > 0)
            _cpuState[cpu].savedIcInUse--;
    }
    t.icStackPoolCpu.clear();
}

void
SvaVm::destroyThread(uint64_t tid)
{
    SvaThread *t = thread(tid);
    if (t)
        releaseIcPoolSlots(*t);
    _threads.erase(tid);
}

bool
SvaVm::icontextSave(uint64_t tid, SvaError *err)
{
    SvaThread *t = thread(tid);
    if (!t)
        return failOp(err, "icontext.save: no such thread");
    // Double-save/load race guard (S 4.6): while the thread's state is
    // live in another CPU's register file, its IC is not the authority
    // and manipulating it from here would fork the register state.
    // The kernel must park the thread first (parkRemoteThread).
    unsigned self = _ctx.activeCpu();
    if (t->liveCpu >= 0 && unsigned(t->liveCpu) != self) {
        return failOp(err, sim::strprintf(
                               "icontext.save: thread %lu is live on "
                               "cpu%d, not cpu%u",
                               (unsigned long)tid, t->liveCpu, self));
    }
    // Saved-IC buffers come from a bounded per-CPU pool inside SVA
    // memory; refusing past the cap stops the kernel driving the VM
    // into unbounded allocation via signal storms.
    VmState &vs = _cpuState[self < _cpuState.size() ? self : 0];
    if (vs.savedIcInUse >= VmState::savedIcPoolSize)
        return failOp(err, "icontext.save: per-CPU saved-IC pool "
                           "exhausted");
    vs.savedIcInUse++;
    t->icStackPoolCpu.push_back(self < _cpuState.size() ? self : 0);
    t->icStack.push_back(t->ic);
    // Copying the IC within VM-internal memory is real work, but it
    // is VM code, not instrumented kernel code.
    _ctx.clock().advance(1300);
    sim::StatSet::add(_hIcSaves);
    return true;
}

bool
SvaVm::icontextLoad(uint64_t tid, SvaError *err)
{
    SvaThread *t = thread(tid);
    if (!t)
        return failOp(err, "icontext.load: no such thread");
    if (t->icStack.empty())
        return failOp(err, "icontext.load: empty IC stack");
    unsigned self = _ctx.activeCpu();
    if (t->liveCpu >= 0 && unsigned(t->liveCpu) != self) {
        return failOp(err, sim::strprintf(
                               "icontext.load: thread %lu is live on "
                               "cpu%d, not cpu%u",
                               (unsigned long)tid, t->liveCpu, self));
    }
    t->ic = t->icStack.back();
    t->icStack.pop_back();
    if (!t->icStackPoolCpu.empty()) {
        unsigned pool = t->icStackPoolCpu.back();
        t->icStackPoolCpu.pop_back();
        if (pool < _cpuState.size() &&
            _cpuState[pool].savedIcInUse > 0)
            _cpuState[pool].savedIcInUse--;
    }
    _ctx.clock().advance(1200);
    sim::StatSet::add(_hIcLoads);
    return true;
}

void
SvaVm::permitFunction(uint64_t pid, uint64_t handler)
{
    _ctx.clock().advance(90); // VM-internal list update
    _permitted[pid].insert(handler);
}

bool
SvaVm::ipushFunction(uint64_t tid, uint64_t handler, uint64_t arg,
                     SvaError *err)
{
    SvaThread *t = thread(tid);
    if (!t)
        return failOp(err, "ipush.function: no such thread");
    // The permit-list check is the Virtual Ghost protection (S 4.6.1);
    // the baseline kernel pushes whatever the OS asks for.
    if (_ctx.config().protectInterruptContext) {
        auto it = _permitted.find(t->processId);
        if (it == _permitted.end() ||
            it->second.find(handler) == it->second.end()) {
            return failOp(
                err, sim::strprintf("ipush.function: %#lx is not a "
                                    "permitted handler for pid %lu",
                                    (unsigned long)handler,
                                    (unsigned long)t->processId));
        }
    }
    t->pushedCalls.push_back({handler, arg});
    sim::StatSet::add(_hIpush);
    _ctx.clock().advance(400);
    return true;
}

bool
SvaVm::reinitIcontext(uint64_t tid, uint64_t pc, uint64_t sp,
                      hw::Frame root, SvaError *err)
{
    SvaThread *t = thread(tid);
    if (!t)
        return failOp(err, "reinit.icontext: no such thread");
    // Old image's ghost memory must become unreachable (S 4.6.2).
    releaseGhostMemory(t->processId, root);
    t->ic = InterruptContext{};
    t->ic.pc = pc;
    t->ic.sp = sp;
    t->ic.userMode = true;
    t->ic.valid = true;
    releaseIcPoolSlots(*t);
    t->icStack.clear();
    t->pushedCalls.clear();
    // Handler registrations belong to the old program text.
    _permitted.erase(t->processId);
    _ctx.stats().add("sva.reinits");
    _ctx.clock().advance(120);
    return true;
}

void
SvaVm::syscallEnter(uint64_t tid)
{
    _ctx.chargeSyscallGate();
    SvaThread *t = thread(tid);
    if (t) {
        t->ic.valid = true;
        t->liveCpu = -1; // state now lives in the saved IC
    }
    unsigned self = _ctx.activeCpu();
    if (self < _cpuState.size())
        _cpuState[self].currentTid = tid;
    // The kernel must never observe application register state: the
    // gate scrubs the CPU's visible register file (S 4.6).
    if (_cpus && _ctx.config().protectInterruptContext)
        _cpus->active().zeroRegs();
}

void
SvaVm::syscallExit(uint64_t tid)
{
    SvaThread *t = thread(tid);
    unsigned self = _ctx.activeCpu();
    if (t) {
        t->liveCpu = static_cast<int>(self);
        // Returning to user mode reloads the register file from the
        // thread's IC on this CPU.
        if (_cpus) {
            hw::Cpu &cpu = _cpus->active();
            cpu.regs = t->ic.regs;
            cpu.pc = t->ic.pc;
            cpu.sp = t->ic.sp;
        }
    }
    // Exit-path cost is folded into chargeSyscallGate().
}

void
SvaVm::noteDispatch(uint64_t tid)
{
    unsigned self = _ctx.activeCpu();
    if (self < _cpuState.size())
        _cpuState[self].currentTid = tid;
    SvaThread *t = thread(tid);
    if (!t)
        return;
    // A thread resumed on a different CPU than it last ran on: its
    // live-state claim migrates (its registers travel via the IC, so
    // there is nothing left on the old CPU). Never fires on
    // single-CPU machines.
    if (t->liveCpu >= 0 && unsigned(t->liveCpu) != self)
        t->liveCpu = static_cast<int>(self);
}

void
SvaVm::parkRemoteThread(uint64_t tid)
{
    SvaThread *t = thread(tid);
    if (!t)
        return;
    unsigned self = _ctx.activeCpu();
    if (t->liveCpu < 0 || unsigned(t->liveCpu) == self)
        return;
    unsigned target = unsigned(t->liveCpu);
    // IPI the owning CPU; its gate saves the live register state into
    // the thread's IC (modelled: the IC already mirrors it) and the
    // thread stops being register-live anywhere.
    _ctx.clock().advance(_ctx.costs().ipiSend);
    if (target < _ctx.vcpuCount())
        _ctx.clockOf(target).advance(_ctx.costs().ipiReceive);
    t->liveCpu = -1;
    if (target < _cpuState.size() &&
        _cpuState[target].currentTid == tid)
        _cpuState[target].currentTid = 0;
    sim::StatSet::add(_hRemoteParks);
}

// --------------------------------------------------------------------
// Keys
// --------------------------------------------------------------------

namespace
{

std::vector<uint8_t>
appSigningPayload(const AppBinary &binary)
{
    std::vector<uint8_t> payload;
    payload.insert(payload.end(), binary.name.begin(), binary.name.end());
    payload.push_back(0);
    payload.insert(payload.end(), binary.codeIdentity.begin(),
                   binary.codeIdentity.end());
    payload.push_back(0);
    payload.insert(payload.end(), binary.keySection.begin(),
                   binary.keySection.end());
    return payload;
}

} // namespace

AppBinary
SvaVm::packageApp(const std::string &name,
                  const std::string &code_identity,
                  const crypto::AesKey &app_key)
{
    if (!_booted)
        sim::fatal("packageApp before boot");
    AppBinary binary;
    binary.name = name;
    binary.codeIdentity = code_identity;
    std::vector<uint8_t> key_bytes(app_key.begin(), app_key.end());
    binary.keySection = crypto::rsaEncrypt(_publicKey, _rng, key_bytes);
    binary.signature = crypto::rsaSign(_privateKey,
                                       appSigningPayload(binary));
    return binary;
}

bool
SvaVm::validateAppBinary(const AppBinary &binary, SvaError *err)
{
    _ctx.clock().advance(_ctx.costs().rsaPubOp);
    if (!crypto::rsaVerify(_publicKey, appSigningPayload(binary),
                           binary.signature)) {
        return failOp(err, "application binary signature invalid: "
                           "refusing to prepare native code (S 4.5)");
    }
    return true;
}

bool
SvaVm::bindProcessToApp(uint64_t pid, const AppBinary &binary,
                        SvaError *err)
{
    if (!validateAppBinary(binary, err))
        return false;
    bool ok = false;
    _ctx.clock().advance(_ctx.costs().rsaPrivOp);
    std::vector<uint8_t> key_bytes =
        crypto::rsaDecrypt(_privateKey, binary.keySection, ok);
    if (!ok || key_bytes.size() != 16)
        return failOp(err, "application key section corrupt");
    crypto::AesKey key{};
    std::memcpy(key.data(), key_bytes.data(), key.size());
    _processKeys[pid] = key;
    _processApp[pid] = binary.name;
    if (!_appCounterIdx.count(binary.name))
        _appCounterIdx[binary.name] = _nextCounterIdx++;
    return true;
}

uint64_t
SvaVm::counterIncrement(uint64_t pid)
{
    auto it = _processApp.find(pid);
    if (it == _processApp.end())
        return 0;
    _ctx.clock().advance(_ctx.costs().getKeyCall);
    return _tpm.monotonicIncrement(_appCounterIdx[it->second]);
}

uint64_t
SvaVm::counterRead(uint64_t pid)
{
    auto it = _processApp.find(pid);
    if (it == _processApp.end())
        return 0;
    _ctx.clock().advance(_ctx.costs().getKeyCall / 2);
    return _tpm.monotonicRead(_appCounterIdx[it->second]);
}

std::optional<crypto::AesKey>
SvaVm::getKey(uint64_t pid)
{
    _ctx.clock().advance(_ctx.costs().getKeyCall);
    auto it = _processKeys.find(pid);
    if (it == _processKeys.end())
        return std::nullopt;
    sim::StatSet::add(_hGetKey);
    return it->second;
}

void
SvaVm::unbindProcess(uint64_t pid)
{
    _processKeys.erase(pid);
    _processApp.erase(pid);
    _permitted.erase(pid);
}

// --------------------------------------------------------------------
// Randomness
// --------------------------------------------------------------------

void
SvaVm::secureRandom(void *out, size_t len)
{
    _ctx.clock().advance(((len + 15) / 16) * _ctx.costs().rngPer16Bytes);
    _rng.generate(out, len);
    sim::StatSet::add(_hRandomBytes, len);
}

// --------------------------------------------------------------------
// Translator
// --------------------------------------------------------------------

cc::TranslateResult
SvaVm::translateKernelModule(const std::string &text)
{
    if (!_booted)
        sim::fatal("translateKernelModule before boot");
    cc::TranslateResult r = _translator->translateText(text,
                                                       _nextCodeBase);
    if (r.ok && !r.fromCache) {
        uint64_t size = r.image->code.size() * cc::mInstBytes;
        _nextCodeBase += (size + hw::pageSize - 1) &
                         ~(hw::pageSize - 1);
        _nextCodeBase += hw::pageSize; // guard page between modules
    }
    return r;
}

bool
SvaVm::verifyImage(const cc::MachineImage &image) const
{
    if (!_booted)
        return false;
    if (!_ctx.config().signedTranslations)
        return true;
    return _translator->verifySignature(image);
}

} // namespace vg::sva
