/**
 * @file
 * The Virtual Ghost VM (SVA-OS runtime).
 *
 * This is the paper's primary contribution: a thin hardware abstraction
 * layer that runs at the *same* privilege level as the kernel but is
 * protected from it by compiler instrumentation. It owns:
 *
 *  - the frame-type table backing all MMU checks (S 4.3.2),
 *  - ghost memory management: allocgm/freegm and secure swapping
 *    (S 3.2, S 3.3),
 *  - Interrupt Context save/load/push/reinit and thread state
 *    (S 4.6),
 *  - the key-management chain TPM => VG keypair => application keys
 *    (S 4.4), including application binary signature validation,
 *  - the trusted random number instruction (S 4.7),
 *  - the trusted translator: the only way code enters the kernel
 *    (S 4.2, S 4.5).
 *
 * The kernel talks to hardware exclusively through this API.
 */

#ifndef VG_SVA_VM_HH
#define VG_SVA_VM_HH

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "compiler/translator.hh"
#include "crypto/drbg.hh"
#include "crypto/rsa.hh"
#include "crypto/sealed.hh"
#include "hw/cpu.hh"
#include "hw/iommu.hh"
#include "hw/mmu.hh"
#include "hw/phys_mem.hh"
#include "hw/tpm.hh"
#include "sva/frame_meta.hh"
#include "sva/icontext.hh"

namespace vg::sva
{

/** A signed application binary (S 4.4/S 4.5): the object format is
 *  extended with an encrypted application-key section, and the whole
 *  binary is signed at install time. */
struct AppBinary
{
    std::string name;
    /** Stand-in for the program text the loader hashes. */
    std::string codeIdentity;
    /** Application AES key, RSA-encrypted to the VG public key. */
    std::vector<uint8_t> keySection;
    /** VG signature over name || identity || keySection. */
    std::vector<uint8_t> signature;
};

/** Outcome and diagnostics of a checked SVA-OS operation. */
struct SvaError
{
    std::string message;
};

/**
 * Per-CPU SVA VM state (S 4.6 keeps one interrupt-context area per
 * processor): which thread's state the CPU currently carries, and a
 * bounded pool of saved-IC buffers inside SVA memory that
 * sva.icontext.save draws from.
 */
struct VmState
{
    /** Thread currently executing on this CPU (0 = idle). */
    uint64_t currentTid = 0;

    /** Saved-IC buffers from this CPU's pool currently in use. */
    uint64_t savedIcInUse = 0;

    /** Pool capacity per CPU (fixed allocation in SVA memory). */
    static constexpr uint64_t savedIcPoolSize = 64;
};

/** The Virtual Ghost virtual machine. */
class SvaVm
{
  public:
    SvaVm(sim::SimContext &ctx, hw::PhysMem &mem, hw::Mmu &mmu,
          hw::Iommu &iommu, hw::Tpm &tpm);

    /**
     * Attach the machine's vCPU set. Afterwards every MMU-facing
     * intrinsic drives the *active* CPU's MMU and cross-CPU TLB
     * shootdowns become real. Without attachment (single-MMU rigs,
     * historical tests) the VM drives the MMU passed at construction
     * and behaves exactly as the single-CPU model always has.
     */
    void attachCpus(hw::CpuSet &cpus);

    /** MMU of the currently executing vCPU (construction MMU when no
     *  CPU set is attached). */
    hw::Mmu &
    curMmu()
    {
        return _cpus ? _cpus->active().mmu() : _mmu;
    }

    /** MMU of a specific vCPU. */
    hw::Mmu &
    mmuOf(unsigned cpu)
    {
        return _cpus ? (*_cpus)[cpu].mmu() : _mmu;
    }

    /** Number of vCPUs the VM manages state for (1 when unattached). */
    unsigned vcpuCount() const { return _cpus ? _cpus->count() : 1; }

    /** True if any vCPU's TLB may still hold a translation into
     *  @p frame — the retype-safety oracle. */
    bool anyTlbHoldsFrame(hw::Frame frame);

    /** Per-CPU VM state (valid indices: [0, vcpuCount())). */
    const VmState &vmState(unsigned cpu) const { return _cpuState[cpu]; }

    // ----------------------------------------------------------------
    // Install / boot (S 4.4)
    // ----------------------------------------------------------------

    /** First-boot installation: generate the VG RSA key pair and seal
     *  the private key under the TPM storage key. @p rsa_bits is kept
     *  small by default so simulations stay fast. */
    void install(size_t rsa_bits = 512);

    /** Boot: unseal the private key and initialize the translator. */
    void boot();

    const crypto::RsaPublicKey &publicKey() const { return _publicKey; }

    // ----------------------------------------------------------------
    // Frame accounting
    // ----------------------------------------------------------------

    FrameTable &frames() { return _frames; }
    const FrameTable &frames() const { return _frames; }

    /** The OS supplies/receives frames for ghost allocation through
     *  these callbacks (the OS stays the owner of physical memory). */
    void setFrameProvider(std::function<std::optional<hw::Frame>()> p)
    {
        _frameProvider = std::move(p);
    }
    void setFrameReceiver(std::function<void(hw::Frame)> r)
    {
        _frameReceiver = std::move(r);
    }

    /** Reserve a frame as SVA internal memory (boot-time). */
    void reserveSvaFrame(hw::Frame frame);

    // ----------------------------------------------------------------
    // MMU intrinsics (S 4.3.2) — every one is checked
    // ----------------------------------------------------------------

    /** Declare @p frame as a page-table page of @p level (1..4).
     *  Zeroes it and locks it against direct kernel writes. */
    bool declarePtPage(hw::Frame frame, int level, SvaError *err);

    /** Return a page-table page to ordinary use (must be unlinked). */
    bool undeclarePtPage(hw::Frame frame, SvaError *err);

    /** Link page-table page @p child under @p parent at the slot
     *  covering @p va. Parent must be level @p parent_level. */
    bool installTable(hw::Frame parent, int parent_level, hw::Vaddr va,
                      hw::Frame child, SvaError *err);

    /** Unlink and retire the (empty) child table under @p parent at
     *  the slot covering @p va; the child frame returns to Free and
     *  can be reclaimed by the OS. */
    bool uninstallTable(hw::Frame parent, int parent_level,
                        hw::Vaddr va, SvaError *err);

    /** Install a leaf mapping va -> target in the tree rooted at
     *  @p root. Rejected for ghost VAs, ghost/SVA/PT/code target
     *  frames (code may map read-only+exec via @p exec_only). */
    bool mapPage(hw::Frame root, hw::Vaddr va, hw::Frame target,
                 bool writable, bool user, bool no_exec, SvaError *err);

    /** Remove a leaf mapping. Rejected for ghost VAs. */
    bool unmapPage(hw::Frame root, hw::Vaddr va, SvaError *err);

    /** Change protections on an existing leaf. Code pages can never
     *  become writable. */
    bool protectPage(hw::Frame root, hw::Vaddr va, bool writable,
                     bool no_exec, SvaError *err);

    /** Load a new address-space root ("mov cr3"), checked. */
    bool loadRoot(hw::Frame root, SvaError *err);

    // ----------------------------------------------------------------
    // Ghost memory (S 3.2, Table 1; S 3.3 swapping)
    // ----------------------------------------------------------------

    /** allocgm(): map @p npages zeroed ghost frames at @p va for the
     *  process owning @p root. */
    bool allocGhostMemory(uint64_t pid, hw::Frame root, hw::Vaddr va,
                          uint64_t npages, SvaError *err);

    /** freegm(): unmap, zero, and return the frames to the OS. */
    bool freeGhostMemory(uint64_t pid, hw::Frame root, hw::Vaddr va,
                         uint64_t npages, SvaError *err);

    /** Encrypt+MAC a ghost page so the OS may swap it out; the frame is
     *  zeroed and returned to the OS. */
    std::optional<crypto::SealedBlob> swapOutGhostPage(uint64_t pid,
                                                       hw::Frame root,
                                                       hw::Vaddr va,
                                                       SvaError *err);

    /**
     * Batched swap-out: validate and read every page in @p vas, seal
     * the whole eviction batch through one scatter-gather AES-CTR +
     * pipelined-HMAC pass (key schedule and MAC-state setup amortised
     * across the batch), then unmap/scrub/return the frames. Blobs are
     * returned in input order and are bit-identical to calling
     * swapOutGhostPage() on each va in sequence; only the fixed seal
     * setup cost is charged once per batch instead of once per page.
     * Returns an empty vector (with @p err set) if any page fails
     * validation — no page is evicted in that case.
     */
    std::vector<crypto::SealedBlob>
    swapOutGhostBatch(uint64_t pid, hw::Frame root,
                      const std::vector<hw::Vaddr> &vas, SvaError *err);

    /** Verify and restore a swapped ghost page. */
    bool swapInGhostPage(uint64_t pid, hw::Frame root, hw::Vaddr va,
                         const crypto::SealedBlob &blob, SvaError *err);

    /**
     * Second-chance reference bit (sva.ghost.refclear): atomically
     * test and clear the hardware-set accessed bit on @p pid's ghost
     * page at @p va. Returns true if the page was referenced since the
     * last clear (the eviction clock gives it a second chance).
     * Clearing invalidates the translation everywhere so the next
     * touch re-walks and re-sets the bit.
     */
    bool ghostPageTestClearRef(uint64_t pid, hw::Frame root,
                               hw::Vaddr va);

    /** Read-only probe of the reference bit (observability; no charge,
     *  no state change). */
    bool ghostPageReferenced(uint64_t pid, hw::Frame root,
                             hw::Vaddr va) const;

    /** Swap generation bound into the AAD of @p pid's page at @p va
     *  while it is swapped out; 0 when the slot holds no swapped page.
     *  Monotonic across the machine, so a stale blob from an earlier
     *  swap-out of the same page carries a dead generation and fails
     *  MAC verification. */
    uint64_t swapGeneration(uint64_t pid, hw::Vaddr va) const;

    /** How many times the swap key has been (re)derived — advances
     *  when the key chain rotates via install()/boot(). */
    uint64_t sealKeyGeneration() const { return _sealKeyGen; }

    /** Release every ghost frame owned by @p pid (process exit /
     *  execve reinit). The frames are zeroed and returned to the OS. */
    void releaseGhostMemory(uint64_t pid, hw::Frame root);

    /** Ghost pages currently owned by @p pid. */
    uint64_t ghostPageCount(uint64_t pid) const;

    /** Virtual addresses of @p pid's resident ghost pages (the OS
     *  sees only addresses, never contents — it needs them to pick
     *  swap victims). */
    std::vector<hw::Vaddr> ghostPagesOf(uint64_t pid) const;

    // ----------------------------------------------------------------
    // Interrupt Context and thread state (S 4.6)
    // ----------------------------------------------------------------

    /** sva.newstate(): create a thread whose kernel continuation is
     *  @p kernel_entry; the new IC is cloned from @p clone_from if
     *  nonzero. Kernel entry points must be pre-registered. */
    SvaThread *newThread(uint64_t pid, uint64_t kernel_entry,
                         uint64_t clone_from_tid, SvaError *err);

    /** Register a permissible kernel-continuation entry point. */
    void registerKernelEntry(uint64_t entry);

    SvaThread *thread(uint64_t tid);

    /** Destroy a thread's SVA state. */
    void destroyThread(uint64_t tid);

    /** sva.icontext.save(): push a copy of the live IC. */
    bool icontextSave(uint64_t tid, SvaError *err);

    /** sva.icontext.load(): pop the saved IC back (sigreturn). */
    bool icontextLoad(uint64_t tid, SvaError *err);

    /** sva.permitFunction(): application registers a valid handler. */
    void permitFunction(uint64_t pid, uint64_t handler);

    /** sva.ipush.function(): make the interrupted thread run
     *  @p handler on resume — only if registered (S 4.6.1). */
    bool ipushFunction(uint64_t tid, uint64_t handler, uint64_t arg,
                       SvaError *err);

    /** sva.reinit.icontext(): execve path — reset IC to a fresh image
     *  and drop the old image's ghost memory (S 4.6.2). */
    bool reinitIcontext(uint64_t tid, uint64_t pc, uint64_t sp,
                        hw::Frame root, SvaError *err);

    /** Syscall/trap gate: save IC into SVA memory and zero registers
     *  (cost-accounted; S 4.6). */
    void syscallEnter(uint64_t tid);
    void syscallExit(uint64_t tid);

    /** Scheduler notification: thread @p tid was dispatched on the
     *  active vCPU. Updates per-CPU current-thread tracking and
     *  migrates the thread's live-CPU claim if it was resumed on a
     *  different processor than it last ran on. */
    void noteDispatch(uint64_t tid);

    /**
     * Park a thread that is live on a *remote* CPU so its IC can be
     * manipulated from this one (signal delivery to a running
     * thread). Models the IPI: charges the initiator and the target
     * CPU, and moves the thread's state fully into its saved IC.
     * No-op if the thread is not live elsewhere.
     */
    void parkRemoteThread(uint64_t tid);

    // ----------------------------------------------------------------
    // Keys (S 4.4)
    // ----------------------------------------------------------------

    /** Trusted install tool: package an application with its key. */
    AppBinary packageApp(const std::string &name,
                         const std::string &code_identity,
                         const crypto::AesKey &app_key);

    /** Loader-side validation; false => refuse to start the app. */
    bool validateAppBinary(const AppBinary &binary, SvaError *err);

    /** Associate a validated binary with a process (exec time). */
    bool bindProcessToApp(uint64_t pid, const AppBinary &binary,
                          SvaError *err);

    /** sva.getKey(): the application retrieves its key. */
    std::optional<crypto::AesKey> getKey(uint64_t pid);

    /** Drop a process's key binding (exit). */
    void unbindProcess(uint64_t pid);

    /**
     * Rollback protection (paper S 10 future work): each application
     * (by binary name) owns a TPM monotonic counter the OS cannot
     * rewind. Applications bind fresh file versions to the counter
     * so replayed old ciphertexts fail verification.
     */
    uint64_t counterIncrement(uint64_t pid);

    /** Current counter value for @p pid's application (0 if none). */
    uint64_t counterRead(uint64_t pid);

    // ----------------------------------------------------------------
    // Trusted randomness (S 4.7)
    // ----------------------------------------------------------------

    void secureRandom(void *out, size_t len);

    // ----------------------------------------------------------------
    // Translator (S 4.2 / S 4.5)
    // ----------------------------------------------------------------

    /** Translate a kernel module shipped as VIR text; assigns a code
     *  base in the module code region. */
    cc::TranslateResult translateKernelModule(const std::string &text);

    /** Refuse-unsigned check used before any execution. */
    bool verifyImage(const cc::MachineImage &image) const;

    /** The trusted translator. Exposed so tests can install
     *  fault-injection hooks (Translator::setPostLayoutHook) and prove
     *  the mcode verifier gates module loading. */
    cc::Translator &translator() { return *_translator; }

    sim::SimContext &ctx() { return _ctx; }
    hw::Mmu &mmu() { return curMmu(); }
    hw::PhysMem &mem() { return _mem; }
    hw::Iommu &iommu() { return _iommu; }

    /** Count of rejected checked operations (attack telemetry). */
    uint64_t violationCount() const { return _violations; }

  private:
    bool failOp(SvaError *err, const std::string &message);
    bool walkToLeafSlot(hw::Frame root, hw::Vaddr va, hw::Paddr &slot,
                        SvaError *err);
    bool mapGhostPage(hw::Frame root, hw::Vaddr va, hw::Frame frame,
                      SvaError *err);
    crypto::AesKey swapKey() const;

    /** Resolve @p va to its leaf slot + frame and check it really is
     *  @p pid's resident ghost page. */
    bool validateGhostPage(uint64_t pid, hw::Frame root, hw::Vaddr va,
                           const char *op, hw::Paddr &slot,
                           hw::Frame &frame, SvaError *err);

    /** Unmap, shootdown, scrub, and hand @p frame back to the OS
     *  (shared tail of the per-page and batched swap-out paths). */
    bool detachGhostFrame(uint64_t pid, hw::Vaddr va, hw::Paddr slot,
                          hw::Frame frame, const char *op,
                          SvaError *err);

    /**
     * TLB shootdown (sva.invlpg.remote): invalidate @p va on the
     * active CPU and on every remote CPU whose TLB holds the page.
     * Remote invalidations charge an IPI send on the initiator's
     * clock and an IPI receive on each target's clock. Degenerates to
     * a local invlpg on single-CPU machines.
     */
    void invalidateEverywhere(hw::Vaddr va);

    /** Full-TLB analogue of invalidateEverywhere() (used when a whole
     *  address-space region is being retired). Remote CPUs with an
     *  empty TLB need no IPI. */
    void flushEverywhere();

    /** Refuse a frame release/retype while some vCPU's TLB may still
     *  reach the frame (returns false and records a violation via
     *  failOp). Correct intrinsic sequences always invalidate first,
     *  so this is a backstop against stale-TLB retype attacks. */
    bool frameRetypeSafe(hw::Frame frame, const char *op,
                         SvaError *err);

    /** Return every pool slot held by @p t's saved-IC stack. */
    void releaseIcPoolSlots(SvaThread &t);

    sim::SimContext &_ctx;
    /** Cached swap key; derived once per private key (see swapKey()). */
    mutable crypto::AesKey _swapKey{};
    mutable bool _swapKeyValid = false;
    hw::PhysMem &_mem;
    hw::Mmu &_mmu;
    hw::Iommu &_iommu;
    hw::Tpm &_tpm;

    /** Machine vCPU set; null on single-MMU rigs (see attachCpus). */
    hw::CpuSet *_cpus = nullptr;
    /** Per-CPU VM state, sized at attach (one entry unattached). */
    std::vector<VmState> _cpuState{VmState{}};

    FrameTable _frames;
    crypto::CtrDrbg _rng;

    crypto::RsaPublicKey _publicKey;
    crypto::RsaPrivateKey _privateKey;
    crypto::SealedBlob _sealedPrivateKey;
    bool _installed = false;
    bool _booted = false;

    std::vector<uint8_t> _translationKey;
    std::unique_ptr<cc::Translator> _translator;
    uint64_t _nextCodeBase;

    std::function<std::optional<hw::Frame>()> _frameProvider;
    std::function<void(hw::Frame)> _frameReceiver;

    std::map<uint64_t, SvaThread> _threads;
    uint64_t _nextTid = 1;
    std::set<uint64_t> _kernelEntries;
    std::map<uint64_t, std::set<uint64_t>> _permitted; // pid -> fns
    std::map<uint64_t, crypto::AesKey> _processKeys;   // pid -> key
    std::map<uint64_t, std::string> _processApp;       // pid -> name
    std::map<std::string, uint32_t> _appCounterIdx;    // name -> TPM idx
    uint32_t _nextCounterIdx = 1;
    std::map<uint64_t, std::vector<std::pair<hw::Frame, hw::Vaddr>>>
        _ghostPages; // pid -> (frame, va)

    /** Swap generation per swapped-out (pid, va); entries exist only
     *  while the page is out. Trusted state: the OS cannot rewind it,
     *  so replaying an older blob of the same slot fails MAC. */
    std::map<std::pair<uint64_t, uint64_t>, uint64_t> _swapGens;
    uint64_t _nextSwapGen = 1;

    /** Count of swap-key derivations (key-chain rotation telemetry). */
    mutable uint64_t _sealKeyGen = 0;

    uint64_t _violations = 0;

    sim::StatHandle _hViolations;
    sim::StatHandle _hRemoteInvlpgs;
    sim::StatHandle _hRemoteParks;
    /** Per-CPU shootdowns *received*; empty on single-CPU machines. */
    std::vector<sim::StatHandle> _hCpuShootdowns;
    sim::StatHandle _hIcSaves;
    sim::StatHandle _hIcLoads;
    sim::StatHandle _hIpush;
    sim::StatHandle _hGetKey;
    sim::StatHandle _hRandomBytes;
    sim::StatHandle _hGhostAllocated;
    sim::StatHandle _hGhostFreed;
    sim::StatHandle _hGhostSwappedOut;
    sim::StatHandle _hGhostSwappedIn;
    sim::StatHandle _hGhostSwapBatches;
};

} // namespace vg::sva

#endif // VG_SVA_VM_HH
