/**
 * @file
 * Interrupt Context and Thread State (S 4.6).
 *
 * The Interrupt Context is the interrupted user program's register
 * state. Virtual Ghost saves it inside SVA VM internal memory (via the
 * IST mechanism), zeroes the registers the kernel would otherwise see,
 * and only lets the kernel manipulate it through checked intrinsics:
 * sva.icontext.save/load (signal dispatch), sva.ipush.function
 * (call a *registered* handler), sva.reinit.icontext (execve), and
 * sva.newstate (thread creation).
 */

#ifndef VG_SVA_ICONTEXT_HH
#define VG_SVA_ICONTEXT_HH

#include <array>
#include <cstdint>
#include <set>
#include <vector>

namespace vg::sva
{

/** Saved user-mode register state. */
struct InterruptContext
{
    /** General-purpose registers; [0..5] carry syscall arguments. */
    std::array<uint64_t, 16> regs{};
    uint64_t pc = 0;
    uint64_t sp = 0;
    uint64_t flags = 0;
    bool userMode = true;
    bool valid = false;
};

/**
 * Pending signal-handler invocation pushed by sva.ipush.function.
 * The application runtime consumes these when the thread resumes to
 * user mode.
 */
struct PushedCall
{
    uint64_t handler = 0;
    uint64_t arg = 0;
};

/** Per-thread state owned by the SVA VM. */
struct SvaThread
{
    uint64_t id = 0;
    uint64_t processId = 0;

    /** Live Interrupt Context (top = current entry). */
    InterruptContext ic;

    /**
     * Saved-IC stack used by signal dispatch: sva.icontext.save pushes,
     * sva.icontext.load pops (paper: per-thread stack inside SVA
     * memory, unlike original SVA which used the kernel stack).
     */
    std::vector<InterruptContext> icStack;

    /** Pending checked handler invocations. */
    std::vector<PushedCall> pushedCalls;

    /** Kernel continuation entry (validated at sva.newstate). */
    uint64_t kernelEntry = 0;

    bool liveOnCpu = false;
};

} // namespace vg::sva

#endif // VG_SVA_ICONTEXT_HH
