/**
 * @file
 * Interrupt Context and Thread State (S 4.6).
 *
 * The Interrupt Context is the interrupted user program's register
 * state. Virtual Ghost saves it inside SVA VM internal memory (via the
 * IST mechanism), zeroes the registers the kernel would otherwise see,
 * and only lets the kernel manipulate it through checked intrinsics:
 * sva.icontext.save/load (signal dispatch), sva.ipush.function
 * (call a *registered* handler), sva.reinit.icontext (execve), and
 * sva.newstate (thread creation).
 */

#ifndef VG_SVA_ICONTEXT_HH
#define VG_SVA_ICONTEXT_HH

#include <array>
#include <cstdint>
#include <set>
#include <vector>

namespace vg::sva
{

/** Saved user-mode register state. */
struct InterruptContext
{
    /** General-purpose registers; [0..5] carry syscall arguments. */
    std::array<uint64_t, 16> regs{};
    uint64_t pc = 0;
    uint64_t sp = 0;
    uint64_t flags = 0;
    bool userMode = true;
    bool valid = false;
};

/**
 * Pending signal-handler invocation pushed by sva.ipush.function.
 * The application runtime consumes these when the thread resumes to
 * user mode.
 */
struct PushedCall
{
    uint64_t handler = 0;
    uint64_t arg = 0;
};

/** Per-thread state owned by the SVA VM. */
struct SvaThread
{
    uint64_t id = 0;
    uint64_t processId = 0;

    /** Live Interrupt Context (top = current entry). */
    InterruptContext ic;

    /**
     * Saved-IC stack used by signal dispatch: sva.icontext.save pushes,
     * sva.icontext.load pops (paper: per-thread stack inside SVA
     * memory, unlike original SVA which used the kernel stack).
     */
    std::vector<InterruptContext> icStack;

    /** Pending checked handler invocations. */
    std::vector<PushedCall> pushedCalls;

    /** Which CPU's saved-IC pool backs each icStack entry (parallel
     *  to icStack); lets the VM return buffers to the right per-CPU
     *  pool even when a thread migrates between save and load. */
    std::vector<unsigned> icStackPoolCpu;

    /** Kernel continuation entry (validated at sva.newstate). */
    uint64_t kernelEntry = 0;

    /**
     * Which vCPU's register file currently holds this thread's live
     * user state, or -1 when the state lives only in the saved IC
     * (i.e. the thread is inside the kernel or descheduled). A bool
     * cannot express "live on *which* CPU": the SMP double-load guard
     * needs to refuse icontext.save/load issued from a *different*
     * CPU while the thread is live elsewhere.
     */
    int liveCpu = -1;
};

} // namespace vg::sva

#endif // VG_SVA_ICONTEXT_HH
