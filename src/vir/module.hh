/**
 * @file
 * VIR containers: basic blocks, functions, modules.
 */

#ifndef VG_VIR_MODULE_HH
#define VG_VIR_MODULE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "vir/inst.hh"

namespace vg::vir
{

/** A straight-line run of instructions ending in a terminator. */
struct BasicBlock
{
    std::string name;
    std::vector<Inst> insts;
};

/** A VIR function. */
struct Function
{
    std::string name;
    int numParams = 0;
    int numRegs = 0;
    std::vector<BasicBlock> blocks;

    /** Index of block @p name, or -1. */
    int
    blockIndex(const std::string &block_name) const
    {
        for (size_t i = 0; i < blocks.size(); i++) {
            if (blocks[i].name == block_name)
                return int(i);
        }
        return -1;
    }

    /** Total instruction count across all blocks. */
    size_t
    instCount() const
    {
        size_t n = 0;
        for (const auto &bb : blocks)
            n += bb.insts.size();
        return n;
    }
};

/** A translation unit: what a kernel module ships as. */
struct Module
{
    std::string name;
    std::vector<Function> functions;

    Function *
    function(const std::string &fn_name)
    {
        for (auto &f : functions) {
            if (f.name == fn_name)
                return &f;
        }
        return nullptr;
    }

    const Function *
    function(const std::string &fn_name) const
    {
        for (const auto &f : functions) {
            if (f.name == fn_name)
                return &f;
        }
        return nullptr;
    }
};

} // namespace vg::vir

#endif // VG_VIR_MODULE_HH
