/**
 * @file
 * Structural verifier for VIR modules.
 *
 * The trusted translator refuses to compile a module that fails
 * verification — malformed "bitcode" must never reach code generation,
 * since the instrumentation passes rely on structural invariants.
 */

#ifndef VG_VIR_VERIFIER_HH
#define VG_VIR_VERIFIER_HH

#include <string>
#include <vector>

#include "vir/module.hh"

namespace vg::vir
{

/** Result of verification: empty error list means the module is OK. */
struct VerifyResult
{
    std::vector<std::string> errors;

    bool ok() const { return errors.empty(); }

    /** All errors joined with newlines. */
    std::string message() const;
};

/** Check structural invariants of @p mod. */
VerifyResult verify(const Module &mod);

} // namespace vg::vir

#endif // VG_VIR_VERIFIER_HH
