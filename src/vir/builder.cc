#include "vir/builder.hh"

#include "sim/log.hh"

namespace vg::vir
{

Function &
IrBuilder::beginFunction(const std::string &name, int num_params)
{
    _mod.functions.push_back({});
    _fn = &_mod.functions.back();
    _fn->name = name;
    _fn->numParams = num_params;
    _fn->numRegs = num_params;
    _blockIndex = -1;
    return *_fn;
}

int
IrBuilder::newReg()
{
    if (!_fn)
        sim::panic("IrBuilder: no current function");
    return _fn->numRegs++;
}

int
IrBuilder::makeBlock(const std::string &name)
{
    if (!_fn)
        sim::panic("IrBuilder: no current function");
    _fn->blocks.push_back({name, {}});
    return int(_fn->blocks.size()) - 1;
}

void
IrBuilder::setInsertPoint(int index)
{
    if (!_fn || index < 0 || size_t(index) >= _fn->blocks.size())
        sim::panic("IrBuilder: bad insert point %d", index);
    _blockIndex = index;
}

void
IrBuilder::append(Inst inst)
{
    if (!_fn || _blockIndex < 0)
        sim::panic("IrBuilder: no insert point");
    _fn->blocks[size_t(_blockIndex)].insts.push_back(std::move(inst));
}

int
IrBuilder::constI(uint64_t value)
{
    Inst i;
    i.op = Opcode::ConstI;
    i.dst = newReg();
    i.imm = value;
    append(i);
    return i.dst;
}

int
IrBuilder::mov(int a)
{
    Inst i;
    i.op = Opcode::Mov;
    i.dst = newReg();
    i.a = a;
    append(i);
    return i.dst;
}

int
IrBuilder::binop(Opcode op, int a, int b)
{
    Inst i;
    i.op = op;
    i.dst = newReg();
    i.a = a;
    i.b = b;
    append(i);
    return i.dst;
}

int
IrBuilder::icmp(CmpPred pred, int a, int b)
{
    Inst i;
    i.op = Opcode::ICmp;
    i.pred = pred;
    i.dst = newReg();
    i.a = a;
    i.b = b;
    append(i);
    return i.dst;
}

int
IrBuilder::load(int addr, Width width)
{
    Inst i;
    i.op = Opcode::Load;
    i.width = width;
    i.dst = newReg();
    i.a = addr;
    append(i);
    return i.dst;
}

void
IrBuilder::store(int addr, int value, Width width)
{
    Inst i;
    i.op = Opcode::Store;
    i.width = width;
    i.a = addr;
    i.b = value;
    append(i);
}

void
IrBuilder::memcpy(int dst_addr, int src_addr, int len)
{
    Inst i;
    i.op = Opcode::Memcpy;
    i.a = dst_addr;
    i.b = src_addr;
    i.c = len;
    append(i);
}

int
IrBuilder::alloca(uint64_t bytes)
{
    Inst i;
    i.op = Opcode::Alloca;
    i.dst = newReg();
    i.imm = bytes;
    append(i);
    return i.dst;
}

void
IrBuilder::br(int target)
{
    Inst i;
    i.op = Opcode::Br;
    i.target0 = target;
    append(i);
}

void
IrBuilder::condBr(int cond, int then_target, int else_target)
{
    Inst i;
    i.op = Opcode::CondBr;
    i.a = cond;
    i.target0 = then_target;
    i.target1 = else_target;
    append(i);
}

int
IrBuilder::call(const std::string &callee, const std::vector<int> &args)
{
    Inst i;
    i.op = Opcode::Call;
    i.dst = newReg();
    i.callee = callee;
    i.args = args;
    append(i);
    return i.dst;
}

int
IrBuilder::callInd(int target, const std::vector<int> &args)
{
    Inst i;
    i.op = Opcode::CallInd;
    i.dst = newReg();
    i.a = target;
    i.args = args;
    append(i);
    return i.dst;
}

int
IrBuilder::funcAddr(const std::string &callee)
{
    Inst i;
    i.op = Opcode::FuncAddr;
    i.dst = newReg();
    i.callee = callee;
    append(i);
    return i.dst;
}

void
IrBuilder::ret(int value)
{
    Inst i;
    i.op = Opcode::Ret;
    i.a = value;
    append(i);
}

} // namespace vg::vir
