#include "vir/inst.hh"

namespace vg::vir
{

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::ConstI:
        return "const";
      case Opcode::Mov:
        return "mov";
      case Opcode::Add:
        return "add";
      case Opcode::Sub:
        return "sub";
      case Opcode::Mul:
        return "mul";
      case Opcode::UDiv:
        return "udiv";
      case Opcode::URem:
        return "urem";
      case Opcode::And:
        return "and";
      case Opcode::Or:
        return "or";
      case Opcode::Xor:
        return "xor";
      case Opcode::Shl:
        return "shl";
      case Opcode::LShr:
        return "lshr";
      case Opcode::AShr:
        return "ashr";
      case Opcode::ICmp:
        return "icmp";
      case Opcode::Load:
        return "load";
      case Opcode::Store:
        return "store";
      case Opcode::Memcpy:
        return "memcpy";
      case Opcode::Alloca:
        return "alloca";
      case Opcode::Br:
        return "br";
      case Opcode::CondBr:
        return "condbr";
      case Opcode::Call:
        return "call";
      case Opcode::CallInd:
        return "callind";
      case Opcode::FuncAddr:
        return "funcaddr";
      case Opcode::Ret:
        return "ret";
    }
    return "?";
}

const char *
predName(CmpPred pred)
{
    switch (pred) {
      case CmpPred::Eq:
        return "eq";
      case CmpPred::Ne:
        return "ne";
      case CmpPred::Ult:
        return "ult";
      case CmpPred::Ule:
        return "ule";
      case CmpPred::Ugt:
        return "ugt";
      case CmpPred::Uge:
        return "uge";
      case CmpPred::Slt:
        return "slt";
      case CmpPred::Sle:
        return "sle";
      case CmpPred::Sgt:
        return "sgt";
      case CmpPred::Sge:
        return "sge";
    }
    return "?";
}

const char *
widthName(Width w)
{
    switch (w) {
      case Width::I8:
        return "i8";
      case Width::I16:
        return "i16";
      case Width::I32:
        return "i32";
      default:
        return "i64";
    }
}

} // namespace vg::vir
