#include "vir/verifier.hh"

#include <set>
#include <sstream>

#include "sim/log.hh"

namespace vg::vir
{

std::string
VerifyResult::message() const
{
    std::ostringstream os;
    for (const auto &e : errors)
        os << e << "\n";
    return os.str();
}

namespace
{

/** Per-instruction register and target validation. */
void
checkInst(const Function &fn, const BasicBlock &bb, size_t idx,
          const Inst &inst, std::vector<std::string> &errors)
{
    auto err = [&](const std::string &what) {
        errors.push_back(sim::strprintf(
            "%s/%s[%zu] %s: %s", fn.name.c_str(), bb.name.c_str(), idx,
            opcodeName(inst.op), what.c_str()));
    };

    auto check_reg = [&](int reg, const char *role, bool required) {
        if (reg < 0) {
            if (required)
                err(std::string("missing ") + role + " register");
            return;
        }
        if (reg >= fn.numRegs)
            err(sim::strprintf("%s register %%%d out of range (%d regs)",
                               role, reg, fn.numRegs));
    };

    auto check_target = [&](int target, const char *role) {
        if (target < 0 || size_t(target) >= fn.blocks.size())
            err(sim::strprintf("bad %s block index %d", role, target));
    };

    switch (inst.op) {
      case Opcode::ConstI:
        check_reg(inst.dst, "dst", true);
        break;
      case Opcode::Mov:
        check_reg(inst.dst, "dst", true);
        check_reg(inst.a, "src", true);
        break;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::UDiv:
      case Opcode::URem:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::LShr:
      case Opcode::AShr:
      case Opcode::ICmp:
        check_reg(inst.dst, "dst", true);
        check_reg(inst.a, "lhs", true);
        check_reg(inst.b, "rhs", true);
        break;
      case Opcode::Load:
        check_reg(inst.dst, "dst", true);
        check_reg(inst.a, "addr", true);
        break;
      case Opcode::Store:
        check_reg(inst.a, "addr", true);
        check_reg(inst.b, "value", true);
        break;
      case Opcode::Memcpy:
        check_reg(inst.a, "dst-addr", true);
        check_reg(inst.b, "src-addr", true);
        check_reg(inst.c, "len", true);
        break;
      case Opcode::Alloca:
        check_reg(inst.dst, "dst", true);
        if (inst.imm == 0 || inst.imm > (1 << 20))
            err("alloca size must be in (0, 1 MB]");
        break;
      case Opcode::Br:
        check_target(inst.target0, "branch");
        break;
      case Opcode::CondBr:
        check_reg(inst.a, "cond", true);
        check_target(inst.target0, "then");
        check_target(inst.target1, "else");
        break;
      case Opcode::Call:
        check_reg(inst.dst, "dst", true);
        if (inst.callee.empty())
            err("call without callee symbol");
        for (int arg : inst.args)
            check_reg(arg, "arg", true);
        break;
      case Opcode::CallInd:
        check_reg(inst.dst, "dst", true);
        check_reg(inst.a, "target", true);
        for (int arg : inst.args)
            check_reg(arg, "arg", true);
        break;
      case Opcode::FuncAddr:
        check_reg(inst.dst, "dst", true);
        if (inst.callee.empty())
            err("funcaddr without callee symbol");
        break;
      case Opcode::Ret:
        check_reg(inst.a, "value", false);
        break;
    }

    bool last = idx + 1 == bb.insts.size();
    if (isTerminator(inst.op) && !last)
        err("terminator in the middle of a block");
    if (!isTerminator(inst.op) && last)
        err("block does not end in a terminator");
}

/** The register @p inst writes, or -1. */
int
defRegOf(const Inst &inst)
{
    switch (inst.op) {
      case Opcode::Store:
      case Opcode::Memcpy:
      case Opcode::Br:
      case Opcode::CondBr:
      case Opcode::Ret:
        return -1;
      default:
        return inst.dst;
    }
}

/** Registers @p inst reads, in operand order. */
void
usedRegsOf(const Inst &inst, std::vector<int> &out)
{
    out.clear();
    switch (inst.op) {
      case Opcode::ConstI:
      case Opcode::Alloca:
      case Opcode::FuncAddr:
      case Opcode::Br:
        break;
      case Opcode::Mov:
        out.push_back(inst.a);
        break;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::UDiv:
      case Opcode::URem:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::LShr:
      case Opcode::AShr:
      case Opcode::ICmp:
        out.push_back(inst.a);
        out.push_back(inst.b);
        break;
      case Opcode::Load:
      case Opcode::CondBr:
        out.push_back(inst.a);
        break;
      case Opcode::Store:
        out.push_back(inst.a);
        out.push_back(inst.b);
        break;
      case Opcode::Memcpy:
        out.push_back(inst.a);
        out.push_back(inst.b);
        out.push_back(inst.c);
        break;
      case Opcode::Call:
        break;
      case Opcode::CallInd:
        out.push_back(inst.a);
        break;
      case Opcode::Ret:
        if (inst.a >= 0)
            out.push_back(inst.a);
        break;
    }
    for (int arg : inst.args)
        out.push_back(arg);
}

/**
 * Forward definite-definition dataflow over the block CFG: a register
 * use is legal only when a definition dominates it (parameters count as
 * defined at entry). The abstract state is the set of registers defined
 * on *every* path, so the meet at join points is intersection;
 * unreachable blocks are skipped. Errors come out in block order then
 * instruction order, after the structural errors for the function, so
 * diagnostics are stable across runs.
 *
 * Only called for functions whose registers are all in range.
 */
void
checkDominance(const Function &fn, std::vector<std::string> &errors)
{
    const size_t nb = fn.blocks.size();
    const size_t nr = size_t(fn.numRegs);
    std::vector<std::vector<char>> in(nb);
    std::vector<char> reached(nb, 0);

    in[0].assign(nr, 0);
    for (int p = 0; p < fn.numParams; p++)
        in[0][size_t(p)] = 1;
    reached[0] = 1;

    auto successors = [&](size_t b, int out[2]) -> int {
        if (fn.blocks[b].insts.empty())
            return 0;
        const Inst &last = fn.blocks[b].insts.back();
        int cnt = 0;
        auto push = [&](int t) {
            if (t >= 0 && size_t(t) < nb)
                out[cnt++] = t;
        };
        if (last.op == Opcode::Br)
            push(last.target0);
        else if (last.op == Opcode::CondBr) {
            push(last.target0);
            push(last.target1);
        }
        return cnt;
    };

    std::vector<size_t> work{0};
    std::vector<int> uses;
    while (!work.empty()) {
        size_t b = work.back();
        work.pop_back();
        std::vector<char> state = in[b];
        for (const Inst &inst : fn.blocks[b].insts) {
            int d = defRegOf(inst);
            if (d >= 0)
                state[size_t(d)] = 1;
        }
        int succ[2];
        int cnt = successors(b, succ);
        for (int k = 0; k < cnt; k++) {
            size_t s = size_t(succ[k]);
            bool changed = false;
            if (!reached[s]) {
                in[s] = state;
                reached[s] = 1;
                changed = true;
            } else {
                for (size_t r = 0; r < nr; r++) {
                    if (in[s][r] && !state[r]) {
                        in[s][r] = 0;
                        changed = true;
                    }
                }
            }
            if (changed)
                work.push_back(s);
        }
    }

    for (size_t b = 0; b < nb; b++) {
        if (!reached[b])
            continue;
        std::vector<char> cur = in[b];
        const BasicBlock &bb = fn.blocks[b];
        for (size_t i = 0; i < bb.insts.size(); i++) {
            const Inst &inst = bb.insts[i];
            usedRegsOf(inst, uses);
            for (int reg : uses) {
                if (reg >= 0 && !cur[size_t(reg)])
                    errors.push_back(sim::strprintf(
                        "%s/%s[%zu] %s: register %%%d used before any "
                        "dominating definition",
                        fn.name.c_str(), bb.name.c_str(), i,
                        opcodeName(inst.op), reg));
            }
            int d = defRegOf(inst);
            if (d >= 0)
                cur[size_t(d)] = 1;
        }
    }
}

} // namespace

VerifyResult
verify(const Module &mod)
{
    VerifyResult result;
    std::set<std::string> names;

    for (const auto &fn : mod.functions) {
        const size_t before = result.errors.size();
        if (fn.name.empty()) {
            result.errors.push_back("function with empty name");
            continue;
        }
        if (!names.insert(fn.name).second)
            result.errors.push_back("duplicate function " + fn.name);
        if (fn.numParams > fn.numRegs)
            result.errors.push_back(fn.name +
                                    ": more params than registers");
        if (fn.blocks.empty()) {
            result.errors.push_back(fn.name + ": no basic blocks");
            continue;
        }
        std::set<std::string> block_names;
        for (const auto &bb : fn.blocks) {
            if (!block_names.insert(bb.name).second)
                result.errors.push_back(fn.name + ": duplicate block " +
                                        bb.name);
            if (bb.insts.empty()) {
                result.errors.push_back(fn.name + "/" + bb.name +
                                        ": empty block");
                continue;
            }
            for (size_t i = 0; i < bb.insts.size(); i++)
                checkInst(fn, bb, i, bb.insts[i], result.errors);
        }
        // Dominance needs in-range registers (the bitsets index by
        // register number), so it only runs on structurally clean
        // functions; its errors follow the structural ones, keeping
        // the overall ordering stable.
        if (result.errors.size() == before)
            checkDominance(fn, result.errors);
    }
    return result;
}

} // namespace vg::vir
