#include "vir/verifier.hh"

#include <set>
#include <sstream>

#include "sim/log.hh"

namespace vg::vir
{

std::string
VerifyResult::message() const
{
    std::ostringstream os;
    for (const auto &e : errors)
        os << e << "\n";
    return os.str();
}

namespace
{

/** Per-instruction register and target validation. */
void
checkInst(const Function &fn, const BasicBlock &bb, size_t idx,
          const Inst &inst, std::vector<std::string> &errors)
{
    auto err = [&](const std::string &what) {
        errors.push_back(sim::strprintf(
            "%s/%s[%zu] %s: %s", fn.name.c_str(), bb.name.c_str(), idx,
            opcodeName(inst.op), what.c_str()));
    };

    auto check_reg = [&](int reg, const char *role, bool required) {
        if (reg < 0) {
            if (required)
                err(std::string("missing ") + role + " register");
            return;
        }
        if (reg >= fn.numRegs)
            err(sim::strprintf("%s register %%%d out of range (%d regs)",
                               role, reg, fn.numRegs));
    };

    auto check_target = [&](int target, const char *role) {
        if (target < 0 || size_t(target) >= fn.blocks.size())
            err(sim::strprintf("bad %s block index %d", role, target));
    };

    switch (inst.op) {
      case Opcode::ConstI:
        check_reg(inst.dst, "dst", true);
        break;
      case Opcode::Mov:
        check_reg(inst.dst, "dst", true);
        check_reg(inst.a, "src", true);
        break;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::UDiv:
      case Opcode::URem:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::LShr:
      case Opcode::AShr:
      case Opcode::ICmp:
        check_reg(inst.dst, "dst", true);
        check_reg(inst.a, "lhs", true);
        check_reg(inst.b, "rhs", true);
        break;
      case Opcode::Load:
        check_reg(inst.dst, "dst", true);
        check_reg(inst.a, "addr", true);
        break;
      case Opcode::Store:
        check_reg(inst.a, "addr", true);
        check_reg(inst.b, "value", true);
        break;
      case Opcode::Memcpy:
        check_reg(inst.a, "dst-addr", true);
        check_reg(inst.b, "src-addr", true);
        check_reg(inst.c, "len", true);
        break;
      case Opcode::Alloca:
        check_reg(inst.dst, "dst", true);
        if (inst.imm == 0 || inst.imm > (1 << 20))
            err("alloca size must be in (0, 1 MB]");
        break;
      case Opcode::Br:
        check_target(inst.target0, "branch");
        break;
      case Opcode::CondBr:
        check_reg(inst.a, "cond", true);
        check_target(inst.target0, "then");
        check_target(inst.target1, "else");
        break;
      case Opcode::Call:
        check_reg(inst.dst, "dst", true);
        if (inst.callee.empty())
            err("call without callee symbol");
        for (int arg : inst.args)
            check_reg(arg, "arg", true);
        break;
      case Opcode::CallInd:
        check_reg(inst.dst, "dst", true);
        check_reg(inst.a, "target", true);
        for (int arg : inst.args)
            check_reg(arg, "arg", true);
        break;
      case Opcode::FuncAddr:
        check_reg(inst.dst, "dst", true);
        if (inst.callee.empty())
            err("funcaddr without callee symbol");
        break;
      case Opcode::Ret:
        check_reg(inst.a, "value", false);
        break;
    }

    bool last = idx + 1 == bb.insts.size();
    if (isTerminator(inst.op) && !last)
        err("terminator in the middle of a block");
    if (!isTerminator(inst.op) && last)
        err("block does not end in a terminator");
}

} // namespace

VerifyResult
verify(const Module &mod)
{
    VerifyResult result;
    std::set<std::string> names;

    for (const auto &fn : mod.functions) {
        if (fn.name.empty()) {
            result.errors.push_back("function with empty name");
            continue;
        }
        if (!names.insert(fn.name).second)
            result.errors.push_back("duplicate function " + fn.name);
        if (fn.numParams > fn.numRegs)
            result.errors.push_back(fn.name +
                                    ": more params than registers");
        if (fn.blocks.empty()) {
            result.errors.push_back(fn.name + ": no basic blocks");
            continue;
        }
        std::set<std::string> block_names;
        for (const auto &bb : fn.blocks) {
            if (!block_names.insert(bb.name).second)
                result.errors.push_back(fn.name + ": duplicate block " +
                                        bb.name);
            if (bb.insts.empty()) {
                result.errors.push_back(fn.name + "/" + bb.name +
                                        ": empty block");
                continue;
            }
            for (size_t i = 0; i < bb.insts.size(); i++)
                checkInst(fn, bb, i, bb.insts[i], result.errors);
        }
    }
    return result;
}

} // namespace vg::vir
