/**
 * @file
 * Convenience builder for constructing VIR in C++ (the way our kernel
 * module sources — including the rootkit of S 7 — are authored when not
 * shipped as text).
 */

#ifndef VG_VIR_BUILDER_HH
#define VG_VIR_BUILDER_HH

#include <string>
#include <vector>

#include "vir/module.hh"

namespace vg::vir
{

/** Appends instructions to a function under construction. */
class IrBuilder
{
  public:
    explicit IrBuilder(Module &mod) : _mod(mod) {}

    /** Start a new function; parameters occupy %0..%num_params-1. */
    Function &beginFunction(const std::string &name, int num_params);

    /** Allocate a fresh virtual register in the current function. */
    int newReg();

    /** Create a new basic block and return its index. */
    int makeBlock(const std::string &name);

    /** Direct subsequent instructions into block @p index. */
    void setInsertPoint(int index);

    int currentBlock() const { return _blockIndex; }

    // --- Instruction helpers (each returns the dst register) ---------
    int constI(uint64_t value);
    int mov(int a);
    int binop(Opcode op, int a, int b);
    int add(int a, int b) { return binop(Opcode::Add, a, b); }
    int sub(int a, int b) { return binop(Opcode::Sub, a, b); }
    int mul(int a, int b) { return binop(Opcode::Mul, a, b); }
    int andOp(int a, int b) { return binop(Opcode::And, a, b); }
    int orOp(int a, int b) { return binop(Opcode::Or, a, b); }
    int xorOp(int a, int b) { return binop(Opcode::Xor, a, b); }
    int shl(int a, int b) { return binop(Opcode::Shl, a, b); }
    int lshr(int a, int b) { return binop(Opcode::LShr, a, b); }
    int icmp(CmpPred pred, int a, int b);
    int load(int addr, Width width = Width::I64);
    void store(int addr, int value, Width width = Width::I64);
    void memcpy(int dst_addr, int src_addr, int len);
    int alloca(uint64_t bytes);
    void br(int target);
    void condBr(int cond, int then_target, int else_target);
    int call(const std::string &callee, const std::vector<int> &args);
    int callInd(int target, const std::vector<int> &args);
    int funcAddr(const std::string &callee);
    void ret(int value = -1);
    void retVoid() { ret(-1); }

  private:
    void append(Inst inst);

    Module &_mod;
    Function *_fn = nullptr;
    int _blockIndex = -1;
};

} // namespace vg::vir

#endif // VG_VIR_BUILDER_HH
