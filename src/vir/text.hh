/**
 * @file
 * Textual VIR: printer and parser.
 *
 * This is the module interchange format — the equivalent of LLVM
 * bitcode in the paper's system. Kernel modules (including hostile
 * ones) are shipped as VIR text; the trusted translator parses,
 * verifies, instruments and lowers them. Native code cannot be loaded
 * at all.
 *
 * Grammar (line oriented; ';' starts a comment):
 *
 *   module "name"
 *   func @sym(NPARAMS) {
 *   label:
 *     %d = const IMM            ; IMM decimal or 0x hex
 *     %d = mov %a
 *     %d = add %a, %b           ; sub mul udiv urem and or xor
 *                               ; shl lshr ashr likewise
 *     %d = icmp PRED %a, %b     ; eq ne ult ule ugt uge slt sle sgt sge
 *     %d = load.WIDTH %a        ; WIDTH in {i8,i16,i32,i64}
 *     store.WIDTH %a, %b        ; mem[%a] = %b
 *     memcpy %a, %b, %c         ; dst, src, len
 *     %d = alloca IMM
 *     br label
 *     condbr %a, label1, label2
 *     %d = call @sym(%a, %b)
 *     %d = callind %a(%b)
 *     %d = funcaddr @sym
 *     ret [%a]
 *   }
 */

#ifndef VG_VIR_TEXT_HH
#define VG_VIR_TEXT_HH

#include <string>

#include "vir/module.hh"

namespace vg::vir
{

/** Render @p mod in the textual format. */
std::string print(const Module &mod);

/** Parse result. */
struct ParseResult
{
    bool ok = false;
    std::string error;
    Module module;
};

/** Parse textual VIR. */
ParseResult parse(const std::string &text);

} // namespace vg::vir

#endif // VG_VIR_TEXT_HH
