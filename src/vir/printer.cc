#include <sstream>

#include "vir/text.hh"

namespace vg::vir
{

namespace
{

void
printInst(std::ostringstream &os, const Function &fn, const Inst &inst)
{
    auto reg = [](int r) {
        return "%" + std::to_string(r);
    };
    auto label = [&](int t) {
        return fn.blocks[size_t(t)].name;
    };

    os << "  ";
    switch (inst.op) {
      case Opcode::ConstI:
        os << reg(inst.dst) << " = const " << inst.imm;
        break;
      case Opcode::Mov:
        os << reg(inst.dst) << " = mov " << reg(inst.a);
        break;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::UDiv:
      case Opcode::URem:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::LShr:
      case Opcode::AShr:
        os << reg(inst.dst) << " = " << opcodeName(inst.op) << " "
           << reg(inst.a) << ", " << reg(inst.b);
        break;
      case Opcode::ICmp:
        os << reg(inst.dst) << " = icmp " << predName(inst.pred) << " "
           << reg(inst.a) << ", " << reg(inst.b);
        break;
      case Opcode::Load:
        os << reg(inst.dst) << " = load." << widthName(inst.width) << " "
           << reg(inst.a);
        break;
      case Opcode::Store:
        os << "store." << widthName(inst.width) << " " << reg(inst.a)
           << ", " << reg(inst.b);
        break;
      case Opcode::Memcpy:
        os << "memcpy " << reg(inst.a) << ", " << reg(inst.b) << ", "
           << reg(inst.c);
        break;
      case Opcode::Alloca:
        os << reg(inst.dst) << " = alloca " << inst.imm;
        break;
      case Opcode::Br:
        os << "br " << label(inst.target0);
        break;
      case Opcode::CondBr:
        os << "condbr " << reg(inst.a) << ", " << label(inst.target0)
           << ", " << label(inst.target1);
        break;
      case Opcode::Call:
      case Opcode::CallInd: {
        os << reg(inst.dst) << " = ";
        if (inst.op == Opcode::Call)
            os << "call @" << inst.callee << "(";
        else
            os << "callind " << reg(inst.a) << "(";
        for (size_t i = 0; i < inst.args.size(); i++) {
            if (i)
                os << ", ";
            os << reg(inst.args[i]);
        }
        os << ")";
        break;
      }
      case Opcode::FuncAddr:
        os << reg(inst.dst) << " = funcaddr @" << inst.callee;
        break;
      case Opcode::Ret:
        os << "ret";
        if (inst.a >= 0)
            os << " " << reg(inst.a);
        break;
    }
    os << "\n";
}

} // namespace

std::string
print(const Module &mod)
{
    std::ostringstream os;
    os << "module \"" << mod.name << "\"\n";
    for (const auto &fn : mod.functions) {
        os << "\nfunc @" << fn.name << "(" << fn.numParams << ") {\n";
        for (const auto &bb : fn.blocks) {
            os << bb.name << ":\n";
            for (const auto &inst : bb.insts)
                printInst(os, fn, inst);
        }
        os << "}\n";
    }
    return os.str();
}

} // namespace vg::vir
