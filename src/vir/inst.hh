/**
 * @file
 * Instruction set of the virtual IR ("VIR").
 *
 * VIR stands in for the LLVM IR of the paper's SVA virtual instruction
 * set: a typed, register-based mid-level IR that all kernel modules are
 * shipped in. The trusted compiler's instrumentation passes (sandboxing
 * and CFI) transform VIR / its machine lowering exactly as the paper's
 * passes transform LLVM IR and x86-64 machine code.
 *
 * The IR is register-based rather than SSA: a function owns a flat
 * virtual register file %0..%N-1, parameters arrive in %0..%k-1, and
 * instructions name register operands. This keeps the verifier,
 * instrumentation and code generator small without losing anything the
 * reproduction needs.
 */

#ifndef VG_VIR_INST_HH
#define VG_VIR_INST_HH

#include <cstdint>
#include <string>
#include <vector>

namespace vg::vir
{

/** Value/access width. */
enum class Width : uint8_t
{
    I8,
    I16,
    I32,
    I64,
};

/** Byte size of a width. */
constexpr uint64_t
widthBytes(Width w)
{
    switch (w) {
      case Width::I8:
        return 1;
      case Width::I16:
        return 2;
      case Width::I32:
        return 4;
      default:
        return 8;
    }
}

/** VIR opcodes. */
enum class Opcode : uint8_t
{
    ConstI,   ///< dst = imm
    Mov,      ///< dst = a
    Add,      ///< dst = a + b
    Sub,      ///< dst = a - b
    Mul,      ///< dst = a * b
    UDiv,     ///< dst = a / b (unsigned; b==0 traps)
    URem,     ///< dst = a % b (unsigned; b==0 traps)
    And,      ///< dst = a & b
    Or,       ///< dst = a | b
    Xor,      ///< dst = a ^ b
    Shl,      ///< dst = a << (b & 63)
    LShr,     ///< dst = a >> (b & 63) logical
    AShr,     ///< dst = a >> (b & 63) arithmetic
    ICmp,     ///< dst = pred(a, b) ? 1 : 0
    Load,     ///< dst = mem[a] (width bytes)
    Store,    ///< mem[a] = b (width bytes)
    Memcpy,   ///< mem[a..a+c) = mem[b..b+c)
    Alloca,   ///< dst = frame address of imm fresh bytes
    Br,       ///< jump to block target0
    CondBr,   ///< if a != 0 goto target0 else target1
    Call,     ///< dst = callee(args); direct, by symbol name
    CallInd,  ///< dst = (*a)(args); indirect through a register
    FuncAddr, ///< dst = code address of function `callee`
    Ret,      ///< return a (or nothing if a < 0)
};

/** ICmp predicates. */
enum class CmpPred : uint8_t
{
    Eq,
    Ne,
    Ult,
    Ule,
    Ugt,
    Uge,
    Slt,
    Sle,
    Sgt,
    Sge,
};

/** One VIR instruction. Register operands are indices; -1 = unused. */
struct Inst
{
    Opcode op = Opcode::ConstI;
    Width width = Width::I64;
    CmpPred pred = CmpPred::Eq;

    int dst = -1;
    int a = -1;
    int b = -1;
    int c = -1;

    uint64_t imm = 0;

    /** Symbol for Call / FuncAddr. */
    std::string callee;

    /** Argument registers for Call / CallInd. */
    std::vector<int> args;

    /** Block indices for Br / CondBr. */
    int target0 = -1;
    int target1 = -1;
};

/** True if @p op ends a basic block. */
constexpr bool
isTerminator(Opcode op)
{
    return op == Opcode::Br || op == Opcode::CondBr || op == Opcode::Ret;
}

/** Mnemonic for an opcode (printer/parser). */
const char *opcodeName(Opcode op);

/** Mnemonic for a predicate. */
const char *predName(CmpPred pred);

/** Mnemonic for a width suffix ("i8".."i64"). */
const char *widthName(Width w);

} // namespace vg::vir

#endif // VG_VIR_INST_HH
