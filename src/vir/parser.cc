#include <cctype>
#include <sstream>

#include "vir/text.hh"

namespace vg::vir
{

namespace
{

/** Cursor over one line of VIR text. */
class LineParser
{
  public:
    explicit LineParser(const std::string &line) : _line(line) {}

    void
    skipSpace()
    {
        while (_pos < _line.size() &&
               std::isspace(uint8_t(_line[_pos])))
            _pos++;
    }

    bool
    atEnd()
    {
        skipSpace();
        return _pos >= _line.size();
    }

    /** Consume a literal string if present. */
    bool
    eat(const std::string &token)
    {
        skipSpace();
        if (_line.compare(_pos, token.size(), token) == 0) {
            _pos += token.size();
            return true;
        }
        return false;
    }

    /** Parse an identifier [A-Za-z0-9_.]+. */
    bool
    ident(std::string &out)
    {
        skipSpace();
        size_t start = _pos;
        while (_pos < _line.size() &&
               (std::isalnum(uint8_t(_line[_pos])) ||
                _line[_pos] == '_' || _line[_pos] == '.'))
            _pos++;
        if (_pos == start)
            return false;
        out = _line.substr(start, _pos - start);
        return true;
    }

    /** Parse %N. */
    bool
    reg(int &out)
    {
        skipSpace();
        if (_pos >= _line.size() || _line[_pos] != '%')
            return false;
        _pos++;
        size_t start = _pos;
        while (_pos < _line.size() && std::isdigit(uint8_t(_line[_pos])))
            _pos++;
        if (_pos == start)
            return false;
        out = std::stoi(_line.substr(start, _pos - start));
        return true;
    }

    /** Parse a decimal or 0x-hex immediate. */
    bool
    immediate(uint64_t &out)
    {
        skipSpace();
        size_t start = _pos;
        int base = 10;
        if (_line.compare(_pos, 2, "0x") == 0) {
            base = 16;
            _pos += 2;
            start = _pos;
        }
        while (_pos < _line.size() &&
               (std::isdigit(uint8_t(_line[_pos])) ||
                (base == 16 && std::isxdigit(uint8_t(_line[_pos])))))
            _pos++;
        if (_pos == start)
            return false;
        out = std::stoull(_line.substr(start, _pos - start), nullptr,
                          base);
        return true;
    }

  private:
    const std::string &_line;
    size_t _pos = 0;
};

/** Strip comments and surrounding whitespace. */
std::string
cleanLine(const std::string &raw)
{
    std::string line = raw;
    size_t comment = line.find(';');
    if (comment != std::string::npos)
        line.resize(comment);
    size_t begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos)
        return "";
    size_t end = line.find_last_not_of(" \t\r");
    return line.substr(begin, end - begin + 1);
}

struct Parser
{
    ParseResult result;
    Function *fn = nullptr;
    int line_no = 0;

    void
    fail(const std::string &what)
    {
        if (result.error.empty())
            result.error =
                "line " + std::to_string(line_no) + ": " + what;
    }

    void
    trackRegs(const Inst &inst)
    {
        auto grow = [&](int r) {
            if (r >= fn->numRegs)
                fn->numRegs = r + 1;
        };
        grow(inst.dst);
        grow(inst.a);
        grow(inst.b);
        grow(inst.c);
        for (int arg : inst.args)
            grow(arg);
    }

    bool
    parseArgs(LineParser &lp, Inst &inst)
    {
        if (!lp.eat("("))
            return false;
        if (lp.eat(")"))
            return true;
        while (true) {
            int r;
            if (!lp.reg(r))
                return false;
            inst.args.push_back(r);
            if (lp.eat(")"))
                return true;
            if (!lp.eat(","))
                return false;
        }
    }

    /** Parse "opcode operands" after an optional "%d =" prefix. */
    bool
    parseInst(const std::string &line)
    {
        LineParser lp(line);
        Inst inst;

        int dst = -1;
        {
            // Look ahead for "%d =".
            LineParser probe(line);
            int r;
            if (probe.reg(r) && probe.eat("=")) {
                dst = r;
                lp.reg(r);
                lp.eat("=");
            }
        }

        std::string op;
        if (!lp.ident(op)) {
            fail("expected opcode");
            return false;
        }

        // Split width suffix for load/store.
        Width width = Width::I64;
        size_t dot = op.find('.');
        std::string base_op = op;
        if (dot != std::string::npos) {
            base_op = op.substr(0, dot);
            std::string w = op.substr(dot + 1);
            if (w == "i8")
                width = Width::I8;
            else if (w == "i16")
                width = Width::I16;
            else if (w == "i32")
                width = Width::I32;
            else if (w == "i64")
                width = Width::I64;
            else {
                fail("bad width suffix ." + w);
                return false;
            }
        }

        inst.dst = dst;
        inst.width = width;

        auto need_reg = [&](int &out) {
            if (!lp.reg(out)) {
                fail("expected register operand");
                return false;
            }
            return true;
        };
        auto need_comma = [&]() {
            if (!lp.eat(",")) {
                fail("expected ','");
                return false;
            }
            return true;
        };

        static const std::pair<const char *, Opcode> binops[] = {
            {"add", Opcode::Add},   {"sub", Opcode::Sub},
            {"mul", Opcode::Mul},   {"udiv", Opcode::UDiv},
            {"urem", Opcode::URem}, {"and", Opcode::And},
            {"or", Opcode::Or},     {"xor", Opcode::Xor},
            {"shl", Opcode::Shl},   {"lshr", Opcode::LShr},
            {"ashr", Opcode::AShr},
        };

        if (base_op == "const") {
            inst.op = Opcode::ConstI;
            if (!lp.immediate(inst.imm)) {
                fail("expected immediate");
                return false;
            }
        } else if (base_op == "mov") {
            inst.op = Opcode::Mov;
            if (!need_reg(inst.a))
                return false;
        } else if (base_op == "icmp") {
            inst.op = Opcode::ICmp;
            std::string pred;
            if (!lp.ident(pred)) {
                fail("expected icmp predicate");
                return false;
            }
            static const std::pair<const char *, CmpPred> preds[] = {
                {"eq", CmpPred::Eq},   {"ne", CmpPred::Ne},
                {"ult", CmpPred::Ult}, {"ule", CmpPred::Ule},
                {"ugt", CmpPred::Ugt}, {"uge", CmpPred::Uge},
                {"slt", CmpPred::Slt}, {"sle", CmpPred::Sle},
                {"sgt", CmpPred::Sgt}, {"sge", CmpPred::Sge},
            };
            bool found = false;
            for (const auto &[name, p] : preds) {
                if (pred == name) {
                    inst.pred = p;
                    found = true;
                    break;
                }
            }
            if (!found) {
                fail("bad predicate " + pred);
                return false;
            }
            if (!need_reg(inst.a) || !need_comma() || !need_reg(inst.b))
                return false;
        } else if (base_op == "load") {
            inst.op = Opcode::Load;
            if (!need_reg(inst.a))
                return false;
        } else if (base_op == "store") {
            inst.op = Opcode::Store;
            if (!need_reg(inst.a) || !need_comma() || !need_reg(inst.b))
                return false;
        } else if (base_op == "memcpy") {
            inst.op = Opcode::Memcpy;
            if (!need_reg(inst.a) || !need_comma() ||
                !need_reg(inst.b) || !need_comma() || !need_reg(inst.c))
                return false;
        } else if (base_op == "alloca") {
            inst.op = Opcode::Alloca;
            if (!lp.immediate(inst.imm)) {
                fail("expected alloca size");
                return false;
            }
        } else if (base_op == "br") {
            inst.op = Opcode::Br;
            std::string label;
            if (!lp.ident(label)) {
                fail("expected branch label");
                return false;
            }
            inst.callee = label; // resolved to an index later
        } else if (base_op == "condbr") {
            inst.op = Opcode::CondBr;
            if (!need_reg(inst.a) || !need_comma())
                return false;
            std::string l0, l1;
            if (!lp.ident(l0) || !lp.eat(",") || !lp.ident(l1)) {
                fail("expected two labels");
                return false;
            }
            inst.callee = l0 + "," + l1;
        } else if (base_op == "call") {
            inst.op = Opcode::Call;
            if (!lp.eat("@")) {
                fail("expected @symbol");
                return false;
            }
            if (!lp.ident(inst.callee)) {
                fail("expected callee name");
                return false;
            }
            if (!parseArgs(lp, inst)) {
                fail("bad argument list");
                return false;
            }
        } else if (base_op == "callind") {
            inst.op = Opcode::CallInd;
            if (!need_reg(inst.a))
                return false;
            if (!parseArgs(lp, inst)) {
                fail("bad argument list");
                return false;
            }
        } else if (base_op == "funcaddr") {
            inst.op = Opcode::FuncAddr;
            if (!lp.eat("@")) {
                fail("expected @symbol");
                return false;
            }
            if (!lp.ident(inst.callee)) {
                fail("expected function name");
                return false;
            }
        } else if (base_op == "ret") {
            inst.op = Opcode::Ret;
            int r;
            if (lp.reg(r))
                inst.a = r;
        } else {
            bool found = false;
            for (const auto &[name, opcode] : binops) {
                if (base_op == name) {
                    inst.op = opcode;
                    found = true;
                    break;
                }
            }
            if (!found) {
                fail("unknown opcode " + base_op);
                return false;
            }
            if (!need_reg(inst.a) || !need_comma() || !need_reg(inst.b))
                return false;
        }

        if (fn->blocks.empty()) {
            fail("instruction before any block label");
            return false;
        }
        trackRegs(inst);
        fn->blocks.back().insts.push_back(std::move(inst));
        return true;
    }

    /** Resolve label names stashed in `callee` into block indices. */
    bool
    resolveLabels()
    {
        for (auto &bb : fn->blocks) {
            for (auto &inst : bb.insts) {
                if (inst.op == Opcode::Br) {
                    inst.target0 = fn->blockIndex(inst.callee);
                    if (inst.target0 < 0) {
                        fail("unknown label " + inst.callee);
                        return false;
                    }
                    inst.callee.clear();
                } else if (inst.op == Opcode::CondBr) {
                    size_t comma = inst.callee.find(',');
                    std::string l0 = inst.callee.substr(0, comma);
                    std::string l1 = inst.callee.substr(comma + 1);
                    inst.target0 = fn->blockIndex(l0);
                    inst.target1 = fn->blockIndex(l1);
                    if (inst.target0 < 0 || inst.target1 < 0) {
                        fail("unknown label in condbr");
                        return false;
                    }
                    inst.callee.clear();
                }
            }
        }
        return true;
    }
};

} // namespace

ParseResult
parse(const std::string &text)
{
    Parser p;
    std::istringstream is(text);
    std::string raw;

    while (std::getline(is, raw)) {
        p.line_no++;
        std::string line = cleanLine(raw);
        if (line.empty())
            continue;

        if (line.rfind("module", 0) == 0) {
            size_t q1 = line.find('"');
            size_t q2 = line.rfind('"');
            if (q1 != std::string::npos && q2 > q1)
                p.result.module.name = line.substr(q1 + 1, q2 - q1 - 1);
            continue;
        }

        if (line.rfind("func", 0) == 0) {
            LineParser lp(line);
            lp.eat("func");
            if (!lp.eat("@")) {
                p.fail("expected @name after func");
                break;
            }
            std::string name;
            if (!lp.ident(name)) {
                p.fail("expected function name");
                break;
            }
            uint64_t nparams = 0;
            if (!lp.eat("(") || !lp.immediate(nparams) || !lp.eat(")")) {
                p.fail("expected (NPARAMS)");
                break;
            }
            if (!lp.eat("{")) {
                p.fail("expected '{'");
                break;
            }
            p.result.module.functions.push_back({});
            p.fn = &p.result.module.functions.back();
            p.fn->name = name;
            p.fn->numParams = int(nparams);
            p.fn->numRegs = int(nparams);
            continue;
        }

        if (line == "}") {
            if (!p.fn) {
                p.fail("'}' outside function");
                break;
            }
            if (!p.resolveLabels())
                break;
            p.fn = nullptr;
            continue;
        }

        if (!p.fn) {
            p.fail("statement outside function: " + line);
            break;
        }

        if (line.back() == ':') {
            std::string label = line.substr(0, line.size() - 1);
            p.fn->blocks.push_back({label, {}});
            continue;
        }

        if (!p.parseInst(line))
            break;
    }

    if (p.fn && p.result.error.empty())
        p.fail("unterminated function " + p.fn->name);

    p.result.ok = p.result.error.empty();
    return p.result;
}

} // namespace vg::vir
