/**
 * @file
 * Postmark: the mail-server file-system benchmark (Table 5).
 *
 * Phases: create a pool of base files, run create/delete and
 * read/append transactions against the pool, then delete everything.
 * Paper parameters: 500 base files of 500 B - 9.77 KB, 512 B blocks,
 * read/append and create/delete biases of 5, buffered I/O, 500,000
 * transactions.
 */

#ifndef VG_APPS_POSTMARK_HH
#define VG_APPS_POSTMARK_HH

#include <cstdint>
#include <vector>

#include "kernel/kernel.hh"

namespace vg::apps
{

/** Postmark parameters (defaults match the paper). */
struct PostmarkConfig
{
    uint64_t baseFiles = 500;
    uint64_t minSize = 500;
    uint64_t maxSize = 10000; // ~9.77 KB
    uint64_t blockSize = 512;
    int readBias = 5;   ///< of 10: read vs append
    int createBias = 5; ///< of 10: create vs delete
    uint64_t transactions = 500000;
    uint64_t seed = 42;
};

/** Results. */
struct PostmarkResult
{
    uint64_t transactions = 0;
    uint64_t filesCreated = 0;
    uint64_t filesDeleted = 0;
    uint64_t bytesRead = 0;
    uint64_t bytesWritten = 0;
    sim::Cycles cycles = 0;
    /** Per-transaction latency samples (cycles), one per phase-2
     *  transaction. */
    std::vector<uint64_t> transactionCycles;

    double
    seconds() const
    {
        return sim::Clock::toSec(cycles);
    }
};

/** Run Postmark in the calling process. */
PostmarkResult postmark(kern::UserApi &api,
                        const PostmarkConfig &config);

} // namespace vg::apps

#endif // VG_APPS_POSTMARK_HH
