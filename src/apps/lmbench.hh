/**
 * @file
 * LMBench-style micro-operation drivers (Table 2, Tables 3/4).
 *
 * Each driver runs the operation for a number of iterations inside a
 * simulated process and reports the mean latency in simulated
 * microseconds, exactly mirroring lat_syscall, lat_sig, lat_proc,
 * lat_select and the create/delete file benchmarks.
 */

#ifndef VG_APPS_LMBENCH_HH
#define VG_APPS_LMBENCH_HH

#include <cstdint>

#include "kernel/kernel.hh"

namespace vg::apps
{

/** Latency of the null syscall (getpid), usec/op. */
double latNullSyscall(kern::UserApi &api, uint64_t iters);

/** Latency of open()+close() of an existing file, usec/op. */
double latOpenClose(kern::UserApi &api, uint64_t iters);

/** Latency of mmap()+munmap() of 64 KB, usec/op. */
double latMmap(kern::UserApi &api, uint64_t iters);

/** Latency of a hardware page fault (touch fresh page), usec/fault. */
double latPageFault(kern::UserApi &api, uint64_t iters);

/** Latency of installing a signal handler, usec/op. */
double latSignalInstall(kern::UserApi &api, uint64_t iters);

/** Latency of delivering a signal to a handler, usec/op. */
double latSignalDelivery(kern::UserApi &api, uint64_t iters);

/** fork() + child exit + wait, usec/op. */
double latForkExit(kern::UserApi &api, uint64_t iters);

/** fork() + child execve + wait, usec/op. */
double latForkExec(kern::UserApi &api, uint64_t iters);

/** select() on @p nfds file descriptors with zero timeout, usec/op. */
double latSelect(kern::UserApi &api, uint64_t iters,
                 uint64_t nfds = 100);

/** Create @p count files of @p size bytes; returns files/second. */
double rateCreateFiles(kern::UserApi &api, uint64_t count,
                       uint64_t size);

/** Delete the files created by rateCreateFiles; files/second. */
double rateDeleteFiles(kern::UserApi &api, uint64_t count);

} // namespace vg::apps

#endif // VG_APPS_LMBENCH_HH
