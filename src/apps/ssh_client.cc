/**
 * @file
 * ssh: the client. In ghosting mode (S 6) every sensitive allocation —
 * the decrypted authentication key, the session key, and the received
 * plaintext — lives in ghost memory via the ghost heap; only protocol
 * ciphertext passes through traditional memory.
 */

#include <cstring>

#include "apps/ssh_common.hh"

namespace vg::apps
{

SshResult
sshFetch(kern::UserApi &api, const std::string &path, bool ghosting,
         bool keep_data, uint16_t port)
{
    SshResult result;
    ghost::GhostRuntime runtime(api);
    if (!runtime.appKey())
        return result;

    // Load and decrypt the authentication key. Ghosting mode parks
    // the plaintext in ghost memory and re-reads it from there, so
    // the OS never holds it; the extra copies are the ghosting cost.
    std::vector<uint8_t> auth_raw;
    if (!runtime.readSecureFile(authKeyPath, auth_raw))
        return result;
    if (ghosting) {
        hw::Vaddr key_ghost = runtime.stashSecret(auth_raw);
        if (key_ghost == 0)
            return result;
        auth_raw = runtime.fetchSecret(key_ghost, auth_raw.size());
    }
    bool ok = false;
    crypto::RsaPrivateKey auth =
        crypto::RsaPrivateKey::deserialize(auth_raw, ok);
    if (!ok)
        return result;

    std::vector<uint8_t> seed(32);
    api.secureRandom(seed.data(), seed.size());
    crypto::CtrDrbg rng(seed);

    int fd = api.connect(port);
    if (fd < 0)
        return result;

    // Handshake.
    if (!sendStr(api, fd, "VGSSH-1"))
        return result;
    std::vector<uint8_t> challenge;
    if (!recvMsg(api, fd, challenge))
        return result;
    if (!sendMsg(api, fd, appRsaSign(api, auth, challenge)))
        return result;
    std::string verdict;
    if (!recvStr(api, fd, verdict) || verdict != "OK")
        return result;

    // Session key: generated from the trusted RNG, optionally stored
    // in ghost memory, and wrapped to the server's host public key
    // (which we learn from the authorized file's pair — the public
    // half of the host key is world-readable).
    std::vector<uint8_t> host_raw;
    if (!runtime.readFile(hostKeyPath, host_raw))
        return result;
    crypto::RsaPrivateKey host_pair =
        crypto::RsaPrivateKey::deserialize(host_raw, ok);
    if (!ok)
        return result;

    crypto::AesKey session{};
    api.secureRandom(session.data(), session.size());
    if (ghosting) {
        hw::Vaddr kva = runtime.stashSecret(
            std::vector<uint8_t>(session.begin(), session.end()));
        auto back = runtime.fetchSecret(kva, session.size());
        std::memcpy(session.data(), back.data(), session.size());
    }
    std::vector<uint8_t> key_bytes(session.begin(), session.end());
    if (!sendMsg(api, fd,
                 appRsaEncrypt(api, host_pair.publicKey(), rng,
                               key_bytes)))
        return result;

    // Fetch the file.
    if (!sendStr(api, fd, "GET " + path))
        return result;
    std::string size_line;
    if (!recvStr(api, fd, size_line) ||
        size_line.rfind("SIZE ", 0) != 0)
        return result;
    uint64_t total = std::stoull(size_line.substr(5));

    uint64_t received = 0;
    hw::Vaddr ghost_buf = 0;
    uint64_t ghost_buf_len = 0;
    while (received < total) {
        std::vector<uint8_t> frame;
        if (!recvMsg(api, fd, frame))
            break;
        crypto::SealedBlob blob =
            crypto::SealedBlob::deserialize(frame, ok);
        if (!ok)
            break;
        std::vector<uint8_t> plain = appUnseal(api, session, blob, ok);
        if (!ok)
            break;
        if (ghosting) {
            // Plaintext goes straight into ghost memory.
            if (plain.size() > ghost_buf_len) {
                if (ghost_buf)
                    runtime.heap().gfree(ghost_buf);
                ghost_buf = runtime.heap().gmalloc(plain.size());
                ghost_buf_len = plain.size();
            }
            if (ghost_buf == 0 ||
                !runtime.heap().write(ghost_buf, plain.data(),
                                      plain.size()))
                break;
        }
        if (keep_data)
            result.data.insert(result.data.end(), plain.begin(),
                               plain.end());
        received += plain.size();
    }
    sendStr(api, fd, "BYE");
    api.close(fd);

    result.bytes = received;
    result.ok = received == total;
    return result;
}

} // namespace vg::apps
