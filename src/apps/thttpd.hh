/**
 * @file
 * thttpd — a tiny/turbo HTTP server — and an ApacheBench-style load
 * generator, for the Figure 2 experiment.
 */

#ifndef VG_APPS_THTTPD_HH
#define VG_APPS_THTTPD_HH

#include <string>
#include <vector>

#include "kernel/kernel.hh"

namespace vg::apps
{

/** thttpd configuration. */
struct ThttpdConfig
{
    uint16_t port = 80;
    /** Serve this many requests, then exit (0 = forever). */
    uint64_t maxRequests = 0;
};

/** Serve files from the filesystem over HTTP/1.0. */
int thttpd(kern::UserApi &api, const ThttpdConfig &config);

/** ApacheBench-style results. */
struct AbResult
{
    uint64_t requests = 0;
    uint64_t failures = 0;
    uint64_t bytes = 0;
    /** Simulated cycles spent across the run. */
    uint64_t cycles = 0;
    /** Per-request latency samples (cycles), one per GET. */
    std::vector<uint64_t> requestCycles;

    double
    bandwidthKBps(double cycles_per_usec) const
    {
        if (cycles == 0)
            return 0.0;
        double secs = double(cycles) / (cycles_per_usec * 1e6);
        return double(bytes) / 1024.0 / secs;
    }
};

/** Issue @p requests GETs for @p path against @p port. */
AbResult apacheBench(kern::UserApi &api, const std::string &path,
                     uint64_t requests, uint16_t port = 80);

} // namespace vg::apps

#endif // VG_APPS_THTTPD_HH
