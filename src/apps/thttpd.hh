/**
 * @file
 * thttpd — a tiny/turbo HTTP server — and an ApacheBench-style load
 * generator, for the Figure 2 experiment.
 */

#ifndef VG_APPS_THTTPD_HH
#define VG_APPS_THTTPD_HH

#include <string>
#include <vector>

#include "kernel/kernel.hh"

namespace vg::apps
{

/** thttpd configuration. */
struct ThttpdConfig
{
    uint16_t port = 80;
    /** Serve this many requests, then exit (0 = forever). */
    uint64_t maxRequests = 0;
};

/** Serve files from the filesystem over HTTP/1.0. */
int thttpd(kern::UserApi &api, const ThttpdConfig &config);

/** thttpdMulti configuration. */
struct ThttpdMultiConfig
{
    uint16_t port = 80;
    /** Serve this many requests, then exit (0 = forever). */
    uint64_t maxRequests = 0;
    /** Connection-slot cap: above this, new connections wait in the
     *  listen queue until a slot frees. */
    unsigned maxConcurrent = 512;
    /** Exit when idle this long with no open connections (covers
     *  clients that die without issuing maxRequests). */
    uint64_t idleTimeoutUs = 200000;
};

/**
 * Event-driven thttpd: one process multiplexing many connections over
 * select(), the fleet-serving variant. Connection state lives in a
 * slot table recycled through a LIFO free-list with an fd -> slot
 * index, so accepting, servicing and retiring a connection are all
 * O(1) in the number of live connections — no per-accept scan.
 * Adoption of each new connection in the kernel is likewise an O(1)
 * conn-table id lookup (kernel.conn_table_* stats).
 */
int thttpdMulti(kern::UserApi &api, const ThttpdMultiConfig &config);

/** ApacheBench-style results. */
struct AbResult
{
    uint64_t requests = 0;
    uint64_t failures = 0;
    uint64_t bytes = 0;
    /** Simulated cycles spent across the run. */
    uint64_t cycles = 0;
    /** Per-request latency samples (cycles), one per GET. */
    std::vector<uint64_t> requestCycles;

    double
    bandwidthKBps(double cycles_per_usec) const
    {
        if (cycles == 0)
            return 0.0;
        double secs = double(cycles) / (cycles_per_usec * 1e6);
        return double(bytes) / 1024.0 / secs;
    }
};

/** Issue @p requests GETs for @p path against @p port. */
AbResult apacheBench(kern::UserApi &api, const std::string &path,
                     uint64_t requests, uint16_t port = 80);

/**
 * Closed-loop concurrent ApacheBench: keep up to @p concurrency
 * connections open simultaneously (connect + send the GET up front,
 * then reap responses in FIFO order, replacing each retired
 * connection with a fresh one until @p requests have been issued).
 * Per-request latency spans connect() to last response byte, so
 * server-side queueing under load shows up in the tail.
 */
AbResult apacheBenchConcurrent(kern::UserApi &api,
                               const std::string &path,
                               uint64_t requests, unsigned concurrency,
                               uint16_t port = 80);

} // namespace vg::apps

#endif // VG_APPS_THTTPD_HH
