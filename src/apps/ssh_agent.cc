/**
 * @file
 * ssh-agent: holds private authentication keys — and the secret string
 * the S 7 experiments target — in ghost memory, and signs challenges
 * for clients over the agent socket. The agent never outputs the
 * secret; the only way it leaves the process is through an attack.
 */

#include <cstring>

#include "apps/ssh_common.hh"

namespace vg::apps
{

namespace
{

uint64_t g_agent_secret_addr = 0;

} // namespace

uint64_t
agentSecretAddress()
{
    return g_agent_secret_addr;
}

int
sshAgent(kern::UserApi &api, const AgentConfig &config)
{
    g_agent_secret_addr = 0; // fresh run (harness synchronization)
    ghost::GhostRuntime runtime(api);

    // Load the authentication key (decrypted with the app key).
    std::vector<uint8_t> auth_raw;
    bool have_key = runtime.readSecureFile(authKeyPath, auth_raw);

    std::vector<uint8_t> secret(config.secret.begin(),
                                config.secret.end());

    if (config.useGhostMemory) {
        // Heap objects (keys and the secret) go into ghost memory,
        // exactly as the modified malloc() of S 6 arranges.
        hw::Vaddr va = runtime.stashSecret(secret);
        if (va == 0)
            return 1;
        g_agent_secret_addr = va;
        if (have_key) {
            hw::Vaddr kva = runtime.stashSecret(auth_raw);
            auth_raw = runtime.fetchSecret(kva, auth_raw.size());
        }
    } else {
        // Baseline configuration: the secret lives in traditional
        // memory where the OS can reach it.
        hw::Vaddr va = api.mmap(hw::pageSize);
        if (va == 0 || !api.copyToUser(va, secret.data(),
                                       secret.size()))
            return 1;
        g_agent_secret_addr = va;
    }

    crypto::RsaPrivateKey auth;
    if (have_key) {
        bool ok = false;
        auth = crypto::RsaPrivateKey::deserialize(auth_raw, ok);
        have_key = ok;
    }

    // Idle window: the attack harness mounts its rootkit while the
    // agent performs routine syscalls.
    int fd_idle = api.open("/dev_null_agent", true);
    hw::Vaddr idle_buf = api.mmap(hw::pageSize);
    api.copyToUser(idle_buf, "idle", 4);
    for (int i = 0; i < config.idleSpins; i++) {
        // read() — the syscall the rootkit interposes.
        api.lseek(fd_idle, 0, 0);
        api.read(fd_idle, idle_buf, 4);
        api.yield();
    }
    api.close(fd_idle);

    // Serve sign requests.
    int ls = api.socket();
    if (api.bind(ls, agentPort) != 0 || api.listen(ls) != 0)
        return 2;
    for (int served = 0; served < config.maxRequests; served++) {
        int conn = api.accept(ls);
        if (conn < 0)
            break;
        std::string request;
        while (recvStr(api, conn, request)) {
            if (request == "PING") {
                sendStr(api, conn, "PONG");
            } else if (request.rfind("SIGN ", 0) == 0 && have_key) {
                std::vector<uint8_t> challenge(request.begin() + 5,
                                               request.end());
                sendMsg(api, conn, appRsaSign(api, auth, challenge));
            } else if (request == "QUIT") {
                api.close(conn);
                api.close(ls);
                return 0;
            } else {
                sendStr(api, conn, "ERR");
            }
        }
        api.close(conn);
    }
    api.close(ls);
    return 0;
}

} // namespace vg::apps
