#include "apps/ssh_common.hh"

#include <cstring>

namespace vg::apps
{

bool
sendMsg(kern::UserApi &api, int fd, const std::vector<uint8_t> &payload)
{
    // One writev-style send for header + payload: one gate crossing
    // and one wire frame per message instead of two.
    std::vector<uint8_t> frame(4 + payload.size());
    uint32_t len = uint32_t(payload.size());
    std::memcpy(frame.data(), &len, 4);
    if (!payload.empty())
        std::memcpy(frame.data() + 4, payload.data(), payload.size());
    return api.sendHost(fd, frame.data(), frame.size()) ==
           int64_t(frame.size());
}

namespace
{

bool
recvExact(kern::UserApi &api, int fd, uint8_t *out, uint64_t len)
{
    uint64_t got = 0;
    while (got < len) {
        int64_t n = api.recvHost(fd, out + got, len - got);
        if (n <= 0)
            return false;
        got += uint64_t(n);
    }
    return true;
}

} // namespace

bool
recvMsg(kern::UserApi &api, int fd, std::vector<uint8_t> &out)
{
    uint8_t hdr[4];
    if (!recvExact(api, fd, hdr, 4))
        return false;
    uint32_t len = 0;
    std::memcpy(&len, hdr, 4);
    if (len > (64u << 20))
        return false; // absurd frame
    out.resize(len);
    if (len == 0)
        return true;
    return recvExact(api, fd, out.data(), len);
}

bool
sendStr(kern::UserApi &api, int fd, const std::string &s)
{
    return sendMsg(api, fd, std::vector<uint8_t>(s.begin(), s.end()));
}

bool
recvStr(kern::UserApi &api, int fd, std::string &out)
{
    std::vector<uint8_t> payload;
    if (!recvMsg(api, fd, payload))
        return false;
    out.assign(payload.begin(), payload.end());
    return true;
}

crypto::SealedBlob
appSeal(kern::UserApi &api, const crypto::AesKey &key,
        crypto::CtrDrbg &rng, const std::vector<uint8_t> &plain)
{
    api.kernel().ctx().chargeAes(plain.size());
    api.kernel().ctx().chargeSha(plain.size());
    return crypto::seal(key, rng, plain, {},
                        api.kernel().ctx().config().cryptoFastPath);
}

std::vector<uint8_t>
appUnseal(kern::UserApi &api, const crypto::AesKey &key,
          const crypto::SealedBlob &blob, bool &ok)
{
    api.kernel().ctx().chargeAes(blob.ciphertext.size());
    api.kernel().ctx().chargeSha(blob.ciphertext.size());
    return crypto::unseal(key, blob, ok, {},
                          api.kernel().ctx().config().cryptoFastPath);
}

std::vector<uint8_t>
appRsaSign(kern::UserApi &api, const crypto::RsaPrivateKey &key,
           const std::vector<uint8_t> &message)
{
    api.kernel().ctx().clock().advance(
        api.kernel().ctx().costs().rsaPrivOp);
    return crypto::rsaSign(key, message,
                           api.kernel().ctx().config().cryptoFastPath);
}

bool
appRsaVerify(kern::UserApi &api, const crypto::RsaPublicKey &key,
             const std::vector<uint8_t> &message,
             const std::vector<uint8_t> &signature)
{
    api.kernel().ctx().clock().advance(
        api.kernel().ctx().costs().rsaPubOp);
    return crypto::rsaVerify(key, message, signature,
                             api.kernel().ctx().config().cryptoFastPath);
}

std::vector<uint8_t>
appRsaEncrypt(kern::UserApi &api, const crypto::RsaPublicKey &key,
              crypto::CtrDrbg &rng, const std::vector<uint8_t> &message)
{
    api.kernel().ctx().clock().advance(
        api.kernel().ctx().costs().rsaPubOp);
    return crypto::rsaEncrypt(key, rng, message,
                              api.kernel().ctx().config().cryptoFastPath);
}

std::vector<uint8_t>
appRsaDecrypt(kern::UserApi &api, const crypto::RsaPrivateKey &key,
              const std::vector<uint8_t> &cipher, bool &ok)
{
    api.kernel().ctx().clock().advance(
        api.kernel().ctx().costs().rsaPrivOp);
    return crypto::rsaDecrypt(key, cipher, ok,
                              api.kernel().ctx().config().cryptoFastPath);
}

} // namespace vg::apps
