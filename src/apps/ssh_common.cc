#include "apps/ssh_common.hh"

#include <cstring>

namespace vg::apps
{

bool
sendMsg(kern::UserApi &api, int fd, const std::vector<uint8_t> &payload)
{
    uint32_t len = uint32_t(payload.size());
    uint8_t hdr[4];
    std::memcpy(hdr, &len, 4);
    if (api.sendHost(fd, hdr, 4) != 4)
        return false;
    if (payload.empty())
        return true;
    return api.sendHost(fd, payload.data(), payload.size()) ==
           int64_t(payload.size());
}

namespace
{

bool
recvExact(kern::UserApi &api, int fd, uint8_t *out, uint64_t len)
{
    uint64_t got = 0;
    while (got < len) {
        int64_t n = api.recvHost(fd, out + got, len - got);
        if (n <= 0)
            return false;
        got += uint64_t(n);
    }
    return true;
}

} // namespace

bool
recvMsg(kern::UserApi &api, int fd, std::vector<uint8_t> &out)
{
    uint8_t hdr[4];
    if (!recvExact(api, fd, hdr, 4))
        return false;
    uint32_t len = 0;
    std::memcpy(&len, hdr, 4);
    if (len > (64u << 20))
        return false; // absurd frame
    out.resize(len);
    if (len == 0)
        return true;
    return recvExact(api, fd, out.data(), len);
}

bool
sendStr(kern::UserApi &api, int fd, const std::string &s)
{
    return sendMsg(api, fd, std::vector<uint8_t>(s.begin(), s.end()));
}

bool
recvStr(kern::UserApi &api, int fd, std::string &out)
{
    std::vector<uint8_t> payload;
    if (!recvMsg(api, fd, payload))
        return false;
    out.assign(payload.begin(), payload.end());
    return true;
}

crypto::SealedBlob
appSeal(kern::UserApi &api, const crypto::AesKey &key,
        crypto::CtrDrbg &rng, const std::vector<uint8_t> &plain)
{
    api.kernel().ctx().chargeAes(plain.size());
    api.kernel().ctx().chargeSha(plain.size());
    return crypto::seal(key, rng, plain, {},
                        api.kernel().ctx().config().cryptoFastPath);
}

std::vector<uint8_t>
appUnseal(kern::UserApi &api, const crypto::AesKey &key,
          const crypto::SealedBlob &blob, bool &ok)
{
    api.kernel().ctx().chargeAes(blob.ciphertext.size());
    api.kernel().ctx().chargeSha(blob.ciphertext.size());
    return crypto::unseal(key, blob, ok, {},
                          api.kernel().ctx().config().cryptoFastPath);
}

std::vector<uint8_t>
appRsaSign(kern::UserApi &api, const crypto::RsaPrivateKey &key,
           const std::vector<uint8_t> &message)
{
    api.kernel().ctx().clock().advance(
        api.kernel().ctx().costs().rsaPrivOp);
    return crypto::rsaSign(key, message,
                           api.kernel().ctx().config().cryptoFastPath);
}

bool
appRsaVerify(kern::UserApi &api, const crypto::RsaPublicKey &key,
             const std::vector<uint8_t> &message,
             const std::vector<uint8_t> &signature)
{
    api.kernel().ctx().clock().advance(
        api.kernel().ctx().costs().rsaPubOp);
    return crypto::rsaVerify(key, message, signature,
                             api.kernel().ctx().config().cryptoFastPath);
}

std::vector<uint8_t>
appRsaEncrypt(kern::UserApi &api, const crypto::RsaPublicKey &key,
              crypto::CtrDrbg &rng, const std::vector<uint8_t> &message)
{
    api.kernel().ctx().clock().advance(
        api.kernel().ctx().costs().rsaPubOp);
    return crypto::rsaEncrypt(key, rng, message,
                              api.kernel().ctx().config().cryptoFastPath);
}

std::vector<uint8_t>
appRsaDecrypt(kern::UserApi &api, const crypto::RsaPrivateKey &key,
              const std::vector<uint8_t> &cipher, bool &ok)
{
    api.kernel().ctx().clock().advance(
        api.kernel().ctx().costs().rsaPrivOp);
    return crypto::rsaDecrypt(key, cipher, ok,
                              api.kernel().ctx().config().cryptoFastPath);
}

} // namespace vg::apps
