#include "apps/thttpd.hh"

#include <cstring>
#include <deque>
#include <map>

namespace vg::apps
{

namespace
{

/** Buffered socket line reader (one recv per ~512 bytes, as a real
 *  server buffers, rather than one syscall per byte). */
class LineReader
{
  public:
    LineReader(kern::UserApi &api, int fd) : _api(api), _fd(fd) {}

    bool
    readLine(std::string &line)
    {
        line.clear();
        while (line.size() < 4096) {
            if (_pos == _len) {
                int64_t n = _api.recvHost(_fd, _buf, sizeof(_buf));
                if (n <= 0)
                    return false;
                _pos = 0;
                _len = size_t(n);
            }
            char c = _buf[_pos++];
            if (c == '\n') {
                if (!line.empty() && line.back() == '\r')
                    line.pop_back();
                return true;
            }
            line.push_back(c);
        }
        return false;
    }

  private:
    kern::UserApi &_api;
    int _fd;
    char _buf[512];
    size_t _pos = 0;
    size_t _len = 0;
};

bool
sendAll(kern::UserApi &api, int fd, const void *data, uint64_t len)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    uint64_t sent = 0;
    while (sent < len) {
        int64_t n = api.sendHost(fd, p + sent, len - sent);
        if (n <= 0)
            return false;
        sent += uint64_t(n);
    }
    return true;
}

} // namespace

int
thttpd(kern::UserApi &api, const ThttpdConfig &config)
{
    int ls = api.socket();
    if (api.bind(ls, config.port) != 0 || api.listen(ls) != 0)
        return 1;

    uint64_t served = 0;
    while (config.maxRequests == 0 || served < config.maxRequests) {
        int conn = api.accept(ls);
        if (conn < 0)
            break;

        LineReader reader(api, conn);
        std::string request_line;
        if (!reader.readLine(request_line)) {
            api.close(conn);
            continue;
        }
        // Drain headers until the blank line.
        std::string header;
        while (reader.readLine(header) && !header.empty()) {
        }

        std::string path = "/";
        if (request_line.rfind("GET ", 0) == 0) {
            size_t sp = request_line.find(' ', 4);
            path = request_line.substr(4, sp - 4);
        }

        kern::FileStat st;
        if (api.stat(path, st) != 0) {
            const char *resp = "HTTP/1.0 404 Not Found\r\n"
                               "Content-Length: 0\r\n\r\n";
            sendAll(api, conn, resp, std::strlen(resp));
            api.close(conn);
            served++;
            continue;
        }

        std::string hdr = "HTTP/1.0 200 OK\r\nContent-Length: " +
                          std::to_string(st.size) + "\r\n\r\n";
        sendAll(api, conn, hdr.data(), hdr.size());

        int fd = api.open(path);
        // sendfile(): the kernel streams bcache pages onto the NIC
        // ring directly — no mmap staging area to demand-fault, no
        // copy out to user space and back in.
        uint64_t remaining = st.size;
        while (remaining > 0) {
            int64_t n = api.sendfile(conn, fd, remaining);
            if (n <= 0)
                break;
            remaining -= uint64_t(n);
        }
        api.close(fd);
        api.close(conn);
        served++;
    }
    api.close(ls);
    return 0;
}

int
thttpdMulti(kern::UserApi &api, const ThttpdMultiConfig &config)
{
    int ls = api.socket();
    if (api.bind(ls, config.port) != 0 || api.listen(ls) != 0)
        return 1;

    /** One connection slot: fd plus the partially-read request. */
    struct Conn
    {
        int fd = -1;
        std::string request;
    };
    std::vector<Conn> slots;
    std::vector<size_t> freeSlots; // LIFO slot free-list
    /** fd -> slot index (ordered so the service order — and hence
     *  every simulated run — is deterministic). */
    std::map<int, size_t> fdSlot;

    uint64_t served = 0;

    auto closeSlot = [&](size_t si) {
        api.close(slots[si].fd);
        fdSlot.erase(slots[si].fd);
        slots[si].fd = -1;
        slots[si].request.clear();
        freeSlots.push_back(si);
    };

    // Serve the complete request buffered in slot @p si, then retire
    // the connection (HTTP/1.0: one request per connection).
    auto serve = [&](size_t si) {
        Conn &c = slots[si];
        std::string path = "/";
        if (c.request.rfind("GET ", 0) == 0) {
            size_t sp = c.request.find(' ', 4);
            path = c.request.substr(4, sp - 4);
        }
        kern::FileStat st;
        if (api.stat(path, st) != 0) {
            const char *resp = "HTTP/1.0 404 Not Found\r\n"
                               "Content-Length: 0\r\n\r\n";
            sendAll(api, c.fd, resp, std::strlen(resp));
        } else {
            std::string hdr = "HTTP/1.0 200 OK\r\nContent-Length: " +
                              std::to_string(st.size) + "\r\n\r\n";
            sendAll(api, c.fd, hdr.data(), hdr.size());
            int fd = api.open(path);
            uint64_t remaining = st.size;
            while (remaining > 0) {
                int64_t n = api.sendfile(c.fd, fd, remaining);
                if (n <= 0)
                    break;
                remaining -= uint64_t(n);
            }
            api.close(fd);
        }
        served++;
        closeSlot(si);
    };

    char buf[2048];
    while (config.maxRequests == 0 || served < config.maxRequests) {
        bool acceptMore = fdSlot.size() < config.maxConcurrent;
        std::vector<int> fds;
        fds.reserve(fdSlot.size() + 1);
        if (acceptMore)
            fds.push_back(ls);
        for (auto &[fd, si] : fdSlot)
            fds.push_back(fd);

        if (api.select(fds, config.idleTimeoutUs) <= 0) {
            if (fdSlot.empty())
                break; // idle and empty: the clients are gone
            continue;
        }

        // Accept every pending connection a slot is free for. The
        // kernel-side adoption is an O(1) conn-table id lookup; the
        // slot grab is an O(1) free-list pop.
        while (fdSlot.size() < config.maxConcurrent &&
               api.select({ls}, 0) > 0) {
            int conn = api.accept(ls);
            if (conn < 0)
                break;
            size_t si;
            if (!freeSlots.empty()) {
                si = freeSlots.back();
                freeSlots.pop_back();
            } else {
                si = slots.size();
                slots.emplace_back();
            }
            slots[si].fd = conn;
            fdSlot[conn] = si;
        }

        // Service every readable connection: pull what arrived, and
        // once the blank line lands, serve and retire the slot.
        std::vector<size_t> ready;
        ready.reserve(fdSlot.size());
        for (auto &[fd, si] : fdSlot)
            if (api.select({fd}, 0) > 0)
                ready.push_back(si);
        for (size_t si : ready) {
            int64_t n = api.recvHost(slots[si].fd, buf, sizeof(buf));
            if (n <= 0) {
                closeSlot(si); // peer gave up mid-request
                continue;
            }
            slots[si].request.append(buf, size_t(n));
            if (slots[si].request.find("\r\n\r\n") != std::string::npos)
                serve(si);
        }
    }

    while (!fdSlot.empty())
        closeSlot(fdSlot.begin()->second);
    api.close(ls);
    return 0;
}

AbResult
apacheBench(kern::UserApi &api, const std::string &path,
            uint64_t requests, uint16_t port)
{
    AbResult result;
    sim::Stopwatch sw(api.kernel().ctx().clock());

    std::vector<uint8_t> buf(64 * 1024);
    for (uint64_t i = 0; i < requests; i++) {
        uint64_t req_t0 = api.kernel().ctx().clock().now();
        int fd = api.connect(port);
        if (fd < 0) {
            result.failures++;
            continue;
        }
        std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
        if (api.sendHost(fd, req.data(), req.size()) !=
            int64_t(req.size())) {
            result.failures++;
            api.close(fd);
            continue;
        }
        // Read the status line + headers + body until EOF.
        uint64_t got = 0;
        bool headers_done = false;
        std::string head;
        while (true) {
            int64_t n = api.recvHost(fd, buf.data(), buf.size());
            if (n <= 0)
                break;
            if (!headers_done) {
                head.append(reinterpret_cast<char *>(buf.data()),
                            size_t(n));
                size_t hdr_end = head.find("\r\n\r\n");
                if (hdr_end != std::string::npos) {
                    headers_done = true;
                    got += head.size() - hdr_end - 4;
                }
            } else {
                got += uint64_t(n);
            }
        }
        api.close(fd);
        result.requests++;
        result.bytes += got;
        result.requestCycles.push_back(
            api.kernel().ctx().clock().now() - req_t0);
    }
    result.cycles = sw.elapsed();
    return result;
}

AbResult
apacheBenchConcurrent(kern::UserApi &api, const std::string &path,
                      uint64_t requests, unsigned concurrency,
                      uint16_t port)
{
    AbResult result;
    sim::Stopwatch sw(api.kernel().ctx().clock());
    if (concurrency == 0)
        concurrency = 1;

    struct Open
    {
        int fd;
        uint64_t t0;
    };
    std::deque<Open> open;
    uint64_t issued = 0;
    const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";

    // Connect and push the GET; the response is reaped later, so up
    // to @p concurrency requests are in flight at once.
    auto openOne = [&]() {
        uint64_t t0 = api.kernel().ctx().clock().now();
        issued++;
        int fd = api.connect(port);
        if (fd < 0) {
            result.failures++;
            return;
        }
        if (api.sendHost(fd, req.data(), req.size()) !=
            int64_t(req.size())) {
            result.failures++;
            api.close(fd);
            return;
        }
        open.push_back({fd, t0});
    };

    std::vector<uint8_t> buf(64 * 1024);
    while (issued < requests && open.size() < concurrency)
        openOne();

    while (!open.empty()) {
        Open o = open.front();
        open.pop_front();
        uint64_t got = 0;
        bool headers_done = false;
        std::string head;
        while (true) {
            int64_t n = api.recvHost(o.fd, buf.data(), buf.size());
            if (n <= 0)
                break;
            if (!headers_done) {
                head.append(reinterpret_cast<char *>(buf.data()),
                            size_t(n));
                size_t hdr_end = head.find("\r\n\r\n");
                if (hdr_end != std::string::npos) {
                    headers_done = true;
                    got += head.size() - hdr_end - 4;
                }
            } else {
                got += uint64_t(n);
            }
        }
        api.close(o.fd);
        result.requests++;
        result.bytes += got;
        result.requestCycles.push_back(
            api.kernel().ctx().clock().now() - o.t0);
        // Keep the pipe full: replace the retired connection.
        while (issued < requests && open.size() < concurrency)
            openOne();
    }
    result.cycles = sw.elapsed();
    return result;
}

} // namespace vg::apps
