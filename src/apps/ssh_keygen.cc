/**
 * @file
 * ssh-keygen: generates RSA authentication keys. The private key file
 * is encrypted with the shared application key (S 6), so the hostile
 * OS — which has full access to the disk — sees only ciphertext; the
 * public half is installed for sshd in the clear.
 */

#include "apps/ssh_common.hh"

namespace vg::apps
{

int
sshKeygen(kern::UserApi &api, size_t bits)
{
    ghost::GhostRuntime runtime(api);
    if (!runtime.appKey())
        return 1; // no application key bound: refuse to run

    // Deterministic-per-boot keygen entropy from the trusted RNG.
    std::vector<uint8_t> seed(32);
    api.secureRandom(seed.data(), seed.size());
    crypto::CtrDrbg rng(seed);

    // Generating the key pair is real compute.
    api.kernel().ctx().clock().advance(
        20 * api.kernel().ctx().costs().rsaPrivOp);
    crypto::RsaPrivateKey auth = crypto::rsaGenerate(rng, bits);

    api.mkdir("/home");
    api.mkdir("/etc");

    // Private key: sealed under the app key before the OS sees it.
    if (!runtime.writeSecureFile(authKeyPath, auth.serialize()))
        return 2;

    // Public key: plaintext, like id_rsa.pub.
    if (!runtime.writeFile(authPubPath, auth.publicKey().serialize()))
        return 3;

    // "Install" the public key on the server side (authorized_keys).
    if (!runtime.writeFile(authorizedPath,
                           auth.publicKey().serialize()))
        return 4;

    return 0;
}

} // namespace vg::apps
