#include "apps/postmark.hh"

#include <vector>

#include "crypto/drbg.hh"

namespace vg::apps
{

namespace
{

std::string
fileName(uint64_t id)
{
    return "/pm/f" + std::to_string(id);
}

} // namespace

PostmarkResult
postmark(kern::UserApi &api, const PostmarkConfig &config)
{
    PostmarkResult result;
    crypto::CtrDrbg rng({uint8_t(config.seed), uint8_t(config.seed >> 8),
                         'p', 'm'});

    api.mkdir("/pm");
    sim::Stopwatch sw(api.kernel().ctx().clock());

    hw::Vaddr buf = api.mmap(config.maxSize + hw::pageSize);
    std::vector<uint8_t> junk(config.maxSize, 0x6d);
    api.copyToUser(buf, junk.data(), junk.size());

    std::vector<uint64_t> pool;
    uint64_t next_id = 0;

    auto create_file = [&]() {
        uint64_t size = config.minSize +
                        rng.nextBounded(config.maxSize -
                                        config.minSize + 1);
        uint64_t id = next_id++;
        int fd = api.open(fileName(id), true);
        if (fd < 0)
            return;
        uint64_t written = 0;
        while (written < size) {
            uint64_t n = std::min(config.blockSize, size - written);
            if (api.write(fd, buf, n) != int64_t(n))
                break;
            written += n;
        }
        api.close(fd);
        pool.push_back(id);
        result.filesCreated++;
        result.bytesWritten += written;
    };

    auto delete_file = [&]() {
        if (pool.empty())
            return;
        uint64_t idx = rng.nextBounded(pool.size());
        uint64_t id = pool[idx];
        pool[idx] = pool.back();
        pool.pop_back();
        api.unlink(fileName(id));
        result.filesDeleted++;
    };

    auto read_file = [&]() {
        if (pool.empty())
            return;
        uint64_t id = pool[rng.nextBounded(pool.size())];
        int fd = api.open(fileName(id));
        if (fd < 0)
            return;
        int64_t n;
        while ((n = api.read(fd, buf, config.blockSize)) > 0)
            result.bytesRead += uint64_t(n);
        api.close(fd);
    };

    auto append_file = [&]() {
        if (pool.empty())
            return;
        uint64_t id = pool[rng.nextBounded(pool.size())];
        int fd = api.open(fileName(id));
        if (fd < 0)
            return;
        api.lseek(fd, 0, 2);
        uint64_t n = config.blockSize;
        if (api.write(fd, buf, n) == int64_t(n))
            result.bytesWritten += n;
        api.close(fd);
    };

    // Phase 1: build the base pool.
    for (uint64_t i = 0; i < config.baseFiles; i++)
        create_file();

    // Phase 2: transactions.
    result.transactionCycles.reserve(config.transactions);
    for (uint64_t t = 0; t < config.transactions; t++) {
        uint64_t t0 = api.kernel().ctx().clock().now();
        if (rng.nextBounded(10) < uint64_t(config.createBias)) {
            if (rng.nextBounded(2) == 0)
                create_file();
            else
                delete_file();
        } else {
            if (rng.nextBounded(10) < uint64_t(config.readBias))
                read_file();
            else
                append_file();
        }
        result.transactions++;
        result.transactionCycles.push_back(
            api.kernel().ctx().clock().now() - t0);
    }

    // Phase 3: delete everything left.
    while (!pool.empty())
        delete_file();
    api.fsync(0);

    result.cycles = sw.elapsed();
    return result;
}

} // namespace vg::apps
