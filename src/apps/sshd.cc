/**
 * @file
 * sshd: the (non-ghosting) vgssh file server used for the S 8.3
 * bandwidth experiments and by the ghosting ssh client.
 *
 * Per connection:
 *   1. receive "VGSSH-1" banner,
 *   2. send a random 16-byte challenge,
 *   3. receive the client's RSA signature over the challenge and check
 *      it against /etc/authorized,
 *   4. receive the AES session key, encrypted to our host key,
 *   5. serve "GET <path>" requests: size, then sealed 32 KB chunks.
 */

#include <cstring>

#include "apps/ssh_common.hh"

namespace vg::apps
{

namespace
{

/** Load (or create at first boot) the server host key. */
bool
loadHostKey(kern::UserApi &api, ghost::GhostRuntime &runtime,
            crypto::RsaPrivateKey &out)
{
    std::vector<uint8_t> raw;
    if (runtime.readFile(hostKeyPath, raw)) {
        bool ok = false;
        out = crypto::RsaPrivateKey::deserialize(raw, ok);
        if (ok)
            return true;
    }
    std::vector<uint8_t> seed(32);
    api.secureRandom(seed.data(), seed.size());
    crypto::CtrDrbg rng(seed);
    api.kernel().ctx().clock().advance(
        20 * api.kernel().ctx().costs().rsaPrivOp);
    out = crypto::rsaGenerate(rng, 384);
    api.mkdir("/etc");
    return runtime.writeFile(hostKeyPath, out.serialize());
}

/** One client session; false only on protocol violations. */
bool
serveConnection(kern::UserApi &api, ghost::GhostRuntime & /*runtime*/,
                const crypto::RsaPrivateKey &host_key,
                const crypto::RsaPublicKey &authorized, int conn,
                crypto::CtrDrbg &rng)
{
    std::string banner;
    if (!recvStr(api, conn, banner) || banner != "VGSSH-1")
        return false;

    std::vector<uint8_t> challenge(16);
    // The OS-provided randomness: under VG this routes to the VM.
    api.osRandom(challenge.data(), challenge.size());
    if (!sendMsg(api, conn, challenge))
        return false;

    std::vector<uint8_t> signature;
    if (!recvMsg(api, conn, signature))
        return false;
    if (!appRsaVerify(api, authorized, challenge, signature)) {
        sendStr(api, conn, "DENIED");
        return false;
    }
    if (!sendStr(api, conn, "OK"))
        return false;

    std::vector<uint8_t> wrapped_key;
    if (!recvMsg(api, conn, wrapped_key))
        return false;
    bool ok = false;
    std::vector<uint8_t> key_bytes =
        appRsaDecrypt(api, host_key, wrapped_key, ok);
    if (!ok || key_bytes.size() != 16)
        return false;
    crypto::AesKey session{};
    std::memcpy(session.data(), key_bytes.data(), session.size());

    // Request loop.
    while (true) {
        std::string request;
        if (!recvStr(api, conn, request) || request == "BYE")
            break;
        if (request.rfind("GET ", 0) != 0) {
            sendStr(api, conn, "ERR");
            continue;
        }
        std::string path = request.substr(4);
        kern::FileStat st;
        if (api.stat(path, st) != 0) {
            sendStr(api, conn, "NOENT");
            continue;
        }
        sendStr(api, conn, "SIZE " + std::to_string(st.size));

        int fd = api.open(path);
        if (fd < 0) {
            sendStr(api, conn, "ERR");
            continue;
        }
        constexpr uint64_t chunk = 32 * 1024;
        hw::Vaddr buf = api.mmap(chunk);
        std::vector<uint8_t> host_buf(chunk);
        uint64_t remaining = st.size;
        while (remaining > 0) {
            uint64_t n = std::min(remaining, chunk);
            if (api.read(fd, buf, n) != int64_t(n))
                break;
            api.copyFromUser(buf, host_buf.data(), n);
            std::vector<uint8_t> plain(host_buf.begin(),
                                       host_buf.begin() + long(n));
            crypto::SealedBlob blob = appSeal(api, session, rng, plain);
            if (!sendMsg(api, conn, blob.serialize()))
                break;
            remaining -= n;
        }
        api.munmap(buf, chunk);
        api.close(fd);
    }
    return true;
}

} // namespace

int
sshd(kern::UserApi &api, const SshdConfig &config)
{
    ghost::GhostRuntime runtime(api);

    crypto::RsaPrivateKey host_key;
    if (!loadHostKey(api, runtime, host_key))
        return 1;

    std::vector<uint8_t> pub_raw;
    if (!runtime.readFile(authorizedPath, pub_raw))
        return 2;
    bool ok = false;
    crypto::RsaPublicKey authorized =
        crypto::RsaPublicKey::deserialize(pub_raw, ok);
    if (!ok)
        return 3;

    std::vector<uint8_t> seed(32);
    api.secureRandom(seed.data(), seed.size());
    crypto::CtrDrbg rng(seed);

    int ls = api.socket();
    if (api.bind(ls, config.port) != 0 || api.listen(ls) != 0)
        return 4;

    int served = 0;
    while (config.maxConnections == 0 ||
           served < config.maxConnections) {
        int conn = api.accept(ls);
        if (conn < 0)
            break;
        // Like OpenSSH, fork a per-connection child; session setup
        // (privilege separation, pty plumbing, environment) is a
        // large burst of kernel work.
        uint64_t child = api.fork([&, conn](kern::UserApi &capi) {
            capi.kernel().ctx().chargeKernelWork(140000, 60000, 13000);
            bool ok = serveConnection(capi, runtime, host_key,
                                      authorized, conn, rng);
            capi.close(conn);
            return ok ? 0 : 1;
        });
        int status = 0;
        api.waitpid(child, status);
        api.close(conn);
        served++;
    }
    api.close(ls);
    return 0;
}

} // namespace vg::apps
