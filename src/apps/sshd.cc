/**
 * @file
 * sshd: the (non-ghosting) vgssh file server used for the S 8.3
 * bandwidth experiments and by the ghosting ssh client.
 *
 * Per connection:
 *   1. receive "VGSSH-1" banner,
 *   2. send a random 16-byte challenge,
 *   3. receive the client's RSA signature over the challenge and check
 *      it against /etc/authorized,
 *   4. receive the AES session key, encrypted to our host key,
 *   5. serve "GET <path>" requests: size, then sealed 32 KB chunks.
 */

#include <algorithm>
#include <cstring>

#include "apps/ssh_common.hh"

namespace vg::apps
{

namespace
{

/** Load (or create at first boot) the server host key. */
bool
loadHostKey(kern::UserApi &api, ghost::GhostRuntime &runtime,
            crypto::RsaPrivateKey &out)
{
    std::vector<uint8_t> raw;
    if (runtime.readFile(hostKeyPath, raw)) {
        bool ok = false;
        out = crypto::RsaPrivateKey::deserialize(raw, ok);
        if (ok)
            return true;
    }
    std::vector<uint8_t> seed(32);
    api.secureRandom(seed.data(), seed.size());
    crypto::CtrDrbg rng(seed);
    api.kernel().ctx().clock().advance(
        20 * api.kernel().ctx().costs().rsaPrivOp);
    out = crypto::rsaGenerate(rng, 384);
    api.mkdir("/etc");
    return runtime.writeFile(hostKeyPath, out.serialize());
}

/** One client session; false only on protocol violations. */
bool
serveConnection(kern::UserApi &api, ghost::GhostRuntime & /*runtime*/,
                const crypto::RsaPrivateKey &host_key,
                const crypto::RsaPublicKey &authorized, int conn,
                crypto::CtrDrbg &rng)
{
    std::string banner;
    if (!recvStr(api, conn, banner) || banner != "VGSSH-1")
        return false;

    std::vector<uint8_t> challenge(16);
    // The OS-provided randomness: under VG this routes to the VM.
    api.osRandom(challenge.data(), challenge.size());
    if (!sendMsg(api, conn, challenge))
        return false;

    std::vector<uint8_t> signature;
    if (!recvMsg(api, conn, signature))
        return false;
    if (!appRsaVerify(api, authorized, challenge, signature)) {
        sendStr(api, conn, "DENIED");
        return false;
    }
    if (!sendStr(api, conn, "OK"))
        return false;

    std::vector<uint8_t> wrapped_key;
    if (!recvMsg(api, conn, wrapped_key))
        return false;
    bool ok = false;
    std::vector<uint8_t> key_bytes =
        appRsaDecrypt(api, host_key, wrapped_key, ok);
    if (!ok || key_bytes.size() != 16)
        return false;
    crypto::AesKey session{};
    std::memcpy(session.data(), key_bytes.data(), session.size());

    // Request loop.
    while (true) {
        std::string request;
        if (!recvStr(api, conn, request) || request == "BYE")
            break;
        if (request.rfind("GET ", 0) != 0) {
            sendStr(api, conn, "ERR");
            continue;
        }
        std::string path = request.substr(4);
        kern::FileStat st;
        if (api.stat(path, st) != 0) {
            sendStr(api, conn, "NOENT");
            continue;
        }
        sendStr(api, conn, "SIZE " + std::to_string(st.size));

        int fd = api.open(path);
        if (fd < 0) {
            sendStr(api, conn, "ERR");
            continue;
        }
        constexpr uint64_t chunk = 32 * 1024;
        // Read straight from the buffer cache: no mmap staging area to
        // demand-fault and no extra user copy per chunk.
        std::vector<uint8_t> host_buf(chunk);
        uint64_t remaining = st.size;
        while (remaining > 0) {
            uint64_t n = std::min(remaining, chunk);
            if (api.readHost(fd, host_buf.data(), n) != int64_t(n))
                break;
            std::vector<uint8_t> plain(host_buf.begin(),
                                       host_buf.begin() + long(n));
            crypto::SealedBlob blob = appSeal(api, session, rng, plain);
            if (!sendMsg(api, conn, blob.serialize()))
                break;
            remaining -= n;
        }
        api.close(fd);
    }
    return true;
}

} // namespace

int
sshd(kern::UserApi &api, const SshdConfig &config)
{
    ghost::GhostRuntime runtime(api);

    crypto::RsaPrivateKey host_key;
    if (!loadHostKey(api, runtime, host_key))
        return 1;

    std::vector<uint8_t> pub_raw;
    if (!runtime.readFile(authorizedPath, pub_raw))
        return 2;
    bool ok = false;
    crypto::RsaPublicKey authorized =
        crypto::RsaPublicKey::deserialize(pub_raw, ok);
    if (!ok)
        return 3;

    std::vector<uint8_t> seed(32);
    api.secureRandom(seed.data(), seed.size());
    crypto::CtrDrbg rng(seed);

    int ls = api.socket();
    if (api.bind(ls, config.port) != 0 || api.listen(ls) != 0)
        return 4;

    // Pre-forked worker pool: each worker pays the session
    // infrastructure setup (privilege separation, pty plumbing,
    // environment) ONCE, then sleeps in accept() until the accept
    // queue's softirq wakes it. Per accepted connection only the
    // per-session state (login record, channel open) is charged.
    unsigned nworkers = config.workers;
    if (nworkers == 0)
        nworkers = config.maxConnections
                       ? std::min(unsigned(config.maxConnections), 4u)
                       : 4u;
    // Split the connection quota across the pool (0 = forever).
    std::vector<uint64_t> workers;
    for (unsigned w = 0; w < nworkers; w++) {
        int quota = 0;
        if (config.maxConnections) {
            quota = config.maxConnections / int(nworkers) +
                    (w < unsigned(config.maxConnections) % nworkers);
            if (quota == 0)
                continue;
        }
        workers.push_back(api.fork([&, quota](kern::UserApi &capi) {
            capi.kernel().ctx().chargeKernelWork(140000, 60000, 13000);
            int served = 0;
            while (quota == 0 || served < quota) {
                int conn = capi.accept(ls);
                if (conn < 0)
                    break;
                capi.kernel().ctx().chargeKernelWork(14000, 6000, 1300);
                serveConnection(capi, runtime, host_key, authorized,
                                conn, rng);
                capi.close(conn);
                served++;
            }
            return 0;
        }));
    }
    int status = 0;
    for (uint64_t w : workers)
        api.waitpid(w, status);
    api.close(ls);
    return 0;
}

} // namespace vg::apps
