#include "apps/lmbench.hh"

#include <vector>

namespace vg::apps
{

namespace
{

double
usecPerOp(sim::Cycles cycles, uint64_t iters)
{
    return sim::Clock::toUsec(cycles) / double(iters);
}

} // namespace

double
latNullSyscall(kern::UserApi &api, uint64_t iters)
{
    sim::Stopwatch sw(api.kernel().ctx().clock());
    for (uint64_t i = 0; i < iters; i++)
        api.getpid();
    return usecPerOp(sw.elapsed(), iters);
}

double
latOpenClose(kern::UserApi &api, uint64_t iters)
{
    int fd0 = api.open("/lat_open_file", true);
    api.close(fd0);

    sim::Stopwatch sw(api.kernel().ctx().clock());
    for (uint64_t i = 0; i < iters; i++) {
        int fd = api.open("/lat_open_file");
        api.close(fd);
    }
    double usec = usecPerOp(sw.elapsed(), iters);
    api.unlink("/lat_open_file");
    return usec;
}

double
latMmap(kern::UserApi &api, uint64_t iters)
{
    constexpr uint64_t len = 64 * 1024;
    sim::Stopwatch sw(api.kernel().ctx().clock());
    for (uint64_t i = 0; i < iters; i++) {
        hw::Vaddr va = api.mmap(len);
        api.munmap(va, len);
    }
    return usecPerOp(sw.elapsed(), iters);
}

double
latPageFault(kern::UserApi &api, uint64_t iters)
{
    // lat_pagefault: fault file-backed pages in from a cold cache, so
    // the device is on the fault path (as in LMBench, which faults an
    // mmap'd file).
    int fd = api.open("/lat_pf_file", true);
    constexpr uint64_t chunk = 8 * hw::pageSize;
    hw::Vaddr wbuf = api.mmap(chunk);
    std::vector<uint8_t> junk(chunk, 0x50);
    api.copyToUser(wbuf, junk.data(), junk.size());
    uint64_t total = iters * hw::pageSize;
    for (uint64_t off = 0; off < total; off += chunk)
        api.write(fd, wbuf, std::min(chunk, total - off));
    api.fsync(fd);
    api.munmap(wbuf, chunk);
    api.kernel().dropCaches();

    hw::Vaddr va = api.mmapFile(fd, total);
    sim::Stopwatch sw(api.kernel().ctx().clock());
    for (uint64_t i = 0; i < iters; i++) {
        uint64_t v = 0;
        api.peek(va + i * hw::pageSize, 8, v);
    }
    double usec = usecPerOp(sw.elapsed(), iters);
    api.munmap(va, total);
    api.close(fd);
    api.unlink("/lat_pf_file");
    return usec;
}

double
latSignalInstall(kern::UserApi &api, uint64_t iters)
{
    sim::Stopwatch sw(api.kernel().ctx().clock());
    for (uint64_t i = 0; i < iters; i++)
        api.installSignalHandler(30, [](int) {}, true);
    return usecPerOp(sw.elapsed(), iters);
}

double
latSignalDelivery(kern::UserApi &api, uint64_t iters)
{
    volatile uint64_t hits = 0;
    api.installSignalHandler(
        31, [&hits](int) { hits = hits + 1; }, true);
    sim::Stopwatch sw(api.kernel().ctx().clock());
    for (uint64_t i = 0; i < iters; i++)
        api.kill(api.pid(), 31); // delivered at syscall exit
    return usecPerOp(sw.elapsed(), iters);
}

double
latForkExit(kern::UserApi &api, uint64_t iters)
{
    // Give the parent a small working set for fork to copy, like
    // lmbench's lat_proc.
    hw::Vaddr ws = api.mmap(16 * hw::pageSize);
    for (int i = 0; i < 16; i++)
        api.poke(ws + uint64_t(i) * hw::pageSize, 8, uint64_t(i));

    sim::Stopwatch sw(api.kernel().ctx().clock());
    for (uint64_t i = 0; i < iters; i++) {
        uint64_t child =
            api.fork([](kern::UserApi &capi) {
                capi.exit(0);
                return 0;
            });
        int status = 0;
        api.waitpid(child, status);
    }
    double usec = usecPerOp(sw.elapsed(), iters);
    api.munmap(ws, 16 * hw::pageSize);
    return usec;
}

double
latForkExec(kern::UserApi &api, uint64_t iters)
{
    hw::Vaddr ws = api.mmap(16 * hw::pageSize);
    for (int i = 0; i < 16; i++)
        api.poke(ws + uint64_t(i) * hw::pageSize, 8, uint64_t(i));

    sim::Stopwatch sw(api.kernel().ctx().clock());
    for (uint64_t i = 0; i < iters; i++) {
        uint64_t child = api.fork([](kern::UserApi &capi) {
            return capi.execve(nullptr, [](kern::UserApi &napi) {
                napi.getpid();
                return 0;
            });
        });
        int status = 0;
        api.waitpid(child, status);
    }
    double usec = usecPerOp(sw.elapsed(), iters);
    api.munmap(ws, 16 * hw::pageSize);
    return usec;
}

double
latSelect(kern::UserApi &api, uint64_t iters, uint64_t nfds)
{
    std::vector<int> fds;
    for (uint64_t i = 0; i < nfds; i++)
        fds.push_back(api.open("/sel" + std::to_string(i), true));

    sim::Stopwatch sw(api.kernel().ctx().clock());
    for (uint64_t i = 0; i < iters; i++)
        api.select(fds, 0);
    double usec = usecPerOp(sw.elapsed(), iters);

    for (uint64_t i = 0; i < nfds; i++) {
        api.close(fds[i]);
        api.unlink("/sel" + std::to_string(i));
    }
    return usec;
}

double
rateCreateFiles(kern::UserApi &api, uint64_t count, uint64_t size)
{
    hw::Vaddr buf = api.mmap((size + hw::pageSize) & ~(hw::pageSize - 1));
    std::vector<uint8_t> junk(size, 0x61);
    if (size > 0)
        api.copyToUser(buf, junk.data(), junk.size());

    sim::Stopwatch sw(api.kernel().ctx().clock());
    for (uint64_t i = 0; i < count; i++) {
        int fd = api.open("/cr" + std::to_string(i), true);
        if (size > 0)
            api.write(fd, buf, size);
        api.close(fd);
    }
    sim::Cycles elapsed = sw.elapsed();
    return double(count) / sim::Clock::toSec(elapsed);
}

double
rateDeleteFiles(kern::UserApi &api, uint64_t count)
{
    sim::Stopwatch sw(api.kernel().ctx().clock());
    for (uint64_t i = 0; i < count; i++)
        api.unlink("/cr" + std::to_string(i));
    return double(count) / sim::Clock::toSec(sw.elapsed());
}

} // namespace vg::apps
