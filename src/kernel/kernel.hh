/**
 * @file
 * The mini-FreeBSD kernel.
 *
 * A monolithic kernel ported to the SVA-OS API: every MMU update,
 * Interrupt Context manipulation and module load goes through the
 * Virtual Ghost VM, and all of its memory traffic is cost-accounted
 * through Kmem with sandbox-masking semantics.
 *
 * Execution model: each simulated process runs on a host thread; a
 * strict baton (one runnable thread at a time, handed over under a
 * mutex) keeps simulated time coherent. The boot thread runs the
 * scheduler loop in run().
 */

#ifndef VG_KERNEL_KERNEL_HH
#define VG_KERNEL_KERNEL_HH

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "hw/cpu.hh"
#include "hw/nic.hh"
#include "hw/timer.hh"
#include "kernel/bcache.hh"
#include "kernel/fs.hh"
#include "kernel/kalloc.hh"
#include "kernel/kmem.hh"
#include "kernel/proc.hh"
#include "kernel/swap.hh"
#include "sva/vm.hh"

namespace vg::kern
{

/** Syscall numbers (subset of FreeBSD's table). */
enum class Sys : int
{
    getpid = 20,
    open = 5,
    close = 6,
    read = 3,
    write = 4,
    lseek = 19,
    unlink = 10,
    mkdir = 136,
    stat = 188,
    fsync = 95,
    mmap = 477,
    munmap = 73,
    fork = 2,
    execve = 59,
    exit = 1,
    wait4 = 7,
    kill = 37,
    sigaction = 416,
    sigreturn = 417,
    select = 93,
    socket = 97,
    bind = 104,
    listen = 106,
    accept = 30,
    connect = 98,
    getrandom = 563,
    sendfile = 393,
};

/**
 * One pending bottom-half wakeup on a vCPU's completion queue: when
 * the vCPU's clock reaches dueAt, the softirq runs there (charged as a
 * device interrupt, coalesced per VgConfig::irqCoalesceUs) and wakes
 * every process blocked on the channel.
 */
struct Softirq
{
    uint64_t dueAt = 0;
    const void *channel = nullptr;
};

/**
 * Established-connection registry. Every connected socket pair gets a
 * connection id at handshake time; the id indexes an O(1) hash table
 * (accept adopts by id, close erases by id) and ids are recycled
 * through a LIFO free-list so the id space — and the table — stay
 * dense under thousands of churn-heavy connections. No per-accept or
 * per-close scan of the connection population ever happens.
 */
struct ConnTable
{
    /** id -> server-side endpoint of the established connection. */
    std::unordered_map<uint64_t, std::weak_ptr<Socket>> conns;

    /** Recycled ids, reused LIFO before nextId grows. */
    std::vector<uint64_t> freeIds;

    uint64_t nextId = 1;

    /** High-water mark of concurrently established connections. */
    uint64_t peak = 0;

    uint64_t size() const { return conns.size(); }
};

/** Loaded kernel module state. */
struct KernelModule
{
    std::string name;
    std::shared_ptr<const cc::MachineImage> image;
    std::unique_ptr<cc::Executor> executor;
};

class Kernel;

/** Thrown by UserApi::exit() to unwind a process host thread. */
struct ProcessExit
{
    int code;
};

/**
 * The system-call and runtime interface handed to application code.
 * Application functions receive a UserApi bound to their process; all
 * kernel interaction flows through it.
 */
class UserApi
{
  public:
    UserApi(Kernel &kernel, Process &proc)
        : _kernel(kernel), _proc(proc)
    {}

    uint64_t pid() const { return _proc.pid; }

    /** The null syscall (gate + trivial body). */
    int getpid();

    // --- files --------------------------------------------------------
    int open(const std::string &path, bool create = false);
    int close(int fd);
    /** read()/write() move data between the file and *user memory*. */
    int64_t read(int fd, hw::Vaddr buf, uint64_t len);
    int64_t write(int fd, hw::Vaddr buf, uint64_t len);
    int64_t lseek(int fd, int64_t off, int whence);
    int unlink(const std::string &path);
    int mkdir(const std::string &path);
    int stat(const std::string &path, FileStat &out);
    int fsync(int fd);

    // --- memory -------------------------------------------------------
    /** Anonymous demand-zero mapping; returns the va (0 on failure). */
    hw::Vaddr mmap(uint64_t len);

    /** File-backed mapping of @p len bytes of @p fd from offset 0;
     *  pages fault in from the filesystem on first touch. */
    hw::Vaddr mmapFile(int fd, uint64_t len);

    int munmap(hw::Vaddr va, uint64_t len);

    /** User-privilege access to user memory (page faults handled). */
    bool peek(hw::Vaddr va, unsigned bytes, uint64_t &out);
    bool poke(hw::Vaddr va, unsigned bytes, uint64_t val);
    bool copyToUser(hw::Vaddr va, const void *src, uint64_t len);
    bool copyFromUser(hw::Vaddr va, void *dst, uint64_t len);

    // --- ghost memory (Table 1) ----------------------------------------
    /** allocgm() wrapper: map npages of ghost memory; returns va. */
    hw::Vaddr allocGhost(uint64_t npages);
    bool freeGhost(hw::Vaddr va, uint64_t npages);
    bool ghostWrite(hw::Vaddr va, const void *src, uint64_t len);
    bool ghostRead(hw::Vaddr va, void *dst, uint64_t len);

    /** sva.getKey(): the application key, delivered by the VM. */
    std::optional<crypto::AesKey> getKey();

    /** Trusted randomness (sva instruction, S 4.7). */
    void secureRandom(void *out, size_t len);

    /** The OS's /dev/random — under a hostile kernel this may be
     *  rigged; under VG config it is routed to the VM generator. */
    void osRandom(void *out, size_t len);

    // --- processes ------------------------------------------------------
    /** fork(): copies the address space; the child runs child_main. */
    uint64_t fork(std::function<int(UserApi &)> child_main);

    /** execve(): replace the program image. A ghosting application
     *  passes its signed binary, which the VM validates before the
     *  new image may run (S 4.5); pass nullptr for an ordinary app. */
    int execve(const sva::AppBinary *binary,
               std::function<int(UserApi &)> new_main);

    [[noreturn]] void exit(int code);
    int waitpid(uint64_t pid, int &status);
    int kill(uint64_t pid, int signum);

    /** signal()/sigaction(): register a handler. The ghost runtime
     *  wrapper registers the handler token with sva.permitFunction
     *  first (S 4.6.1); a non-ghosting app leaves it unregistered. */
    uint64_t installSignalHandler(int signum,
                                  std::function<void(int)> handler,
                                  bool permit_with_sva);

    // --- sockets ---------------------------------------------------------
    int socket();
    int bind(int fd, uint16_t port);
    int listen(int fd);
    int accept(int fd);
    int connect(uint16_t port);
    int64_t send(int fd, hw::Vaddr buf, uint64_t len);
    int64_t recv(int fd, hw::Vaddr buf, uint64_t len);
    /** Host-buffer variants (zero user-page staging) for servers that
     *  keep data in traditional memory. */
    int64_t sendHost(int fd, const void *buf, uint64_t len);
    int64_t recvHost(int fd, void *buf, uint64_t len);

    /** Host-buffer file read (zero user-page staging), the file-side
     *  twin of recvHost. */
    int64_t readHost(int fd, void *buf, uint64_t len);

    /** sendfile(): stream @p len bytes of @p in_fd (from its current
     *  offset) straight from the buffer cache onto @p out_fd's
     *  socket. Under asyncIo with the sandbox/IOMMU proof in force the
     *  bcache block is handed to the NIC ring without the intermediate
     *  kmem copy; otherwise the copy is charged. */
    int64_t sendfile(int out_fd, int in_fd, uint64_t len);

    int select(const std::vector<int> &read_fds, uint64_t timeout_us);

    // --- misc -------------------------------------------------------------
    /** Burn user-mode compute (advances simulated time, may preempt). */
    void compute(uint64_t insts);

    /** Yield the CPU voluntarily. */
    void yield();

    /** Append to the system console. */
    void log(const std::string &text);

    Kernel &kernel() { return _kernel; }
    Process &proc() { return _proc; }

  private:
    /** Syscall prologue: gate cost + dispatcher work. */
    void sysEnter();

    /** Syscall epilogue: gate exit, pending signal delivery,
     *  preemption, kill handling. */
    void sysExit();

    Kernel &_kernel;
    Process &_proc;
};

/** The kernel proper. */
class Kernel
{
    friend class UserApi;

  public:
    Kernel(sim::SimContext &ctx, hw::PhysMem &mem, hw::CpuSet &cpus,
           hw::Iommu &iommu, hw::Tpm &tpm, hw::Disk &disk,
           hw::Nic &nic_a, hw::Nic &nic_b, sva::SvaVm &vm);
    ~Kernel();

    /** Boot: wire SVA callbacks, mkfs, init console. */
    void boot();

    /** Create a process (Embryo -> Runnable). */
    uint64_t spawn(const std::string &name,
                   std::function<int(UserApi &)> main_fn);

    /** Run the scheduler until every process has exited. */
    void run();

    /** Load an (untrusted) kernel module shipped as VIR text.
     *  Returns false (with @p err) if translation or the signature
     *  check refuses it. */
    bool loadModule(const std::string &name, const std::string &text,
                    std::string *err);

    /** Let a module replace a syscall handler (the rootkit uses this
     *  for read(); S 7). The handler VIR function receives the same
     *  arguments as the native handler. */
    bool interposeSyscall(Sys sys, const std::string &module_name,
                          const std::string &function_name);

    /** Remove a syscall interposition. */
    void clearInterposition(Sys sys);

    /** Invoke a function in a loaded module from kernel context (how
     *  a module's load-time init / ioctl entry points run). */
    cc::ExecResult callModuleFunction(const std::string &module_name,
                                      const std::string &function_name,
                                      const std::vector<uint64_t> &args);

    /** Entry address of a function in a loaded module (0 if absent). */
    uint64_t moduleFunctionAddr(const std::string &module_name,
                                const std::string &function_name);

    Fs &fs() { return *_fs; }
    sva::SvaVm &vm() { return _vm; }
    Kmem &kmem() { return *_kmem; }
    sim::SimContext &ctx() { return _ctx; }
    hw::Console &console() { return _console; }
    Process *process(uint64_t pid);

    /** Exit codes of reaped processes (pid -> code). */
    const std::map<uint64_t, int> &exitCodes() const
    {
        return _exitCodes;
    }

    /** Rig the OS /dev/random (hostile-kernel Iago experiments). */
    void setRngRigged(bool rigged) { _rngRigged = rigged; }

    /** Flush and empty the buffer cache (cold-cache experiments). */
    void dropCaches() { _bcache->dropAll(); }

    /**
     * Memory-pressure path (S 3.3): swap up to @p max_pages of
     * @p pid's ghost memory out. The VM encrypts+MACs each page; the
     * OS stores only ciphertext in the disk's swap area and gets the
     * frames back. Under VgConfig::swapFastPath pages are sealed in
     * batches and written back through the disk's request queue with
     * one doorbell per batch. Returns pages swapped.
     */
    uint64_t swapOutGhost(uint64_t pid, uint64_t max_pages);

    /** Swap a ghost page back in on demand (ghost fault path).
     *  Returns false if it was never swapped or fails verification. */
    bool swapInGhost(uint64_t pid, hw::Vaddr page_va);

    /** Number of ghost pages currently swapped out for @p pid. */
    uint64_t swappedGhostPages(uint64_t pid) const;

    /**
     * Frame-pressure relief: pick up to @p want_pages second-chance
     * clock victims across every process and swap them out (batched
     * under swapFastPath). Returns pages actually reclaimed.
     */
    uint64_t reclaimGhostFrames(uint64_t want_pages);

    /** Reclaim until at least @p need frames (plus a fixed headroom)
     *  are free; no-op when the allocator already has them. */
    void ensureGhostHeadroom(uint64_t need);

    /** Hostile-OS view of a swapped page: read its ciphertext blob
     *  back from the swap area (the OS sees bytes, never plaintext). */
    std::optional<crypto::SealedBlob> readSwappedBlob(uint64_t pid,
                                                      hw::Vaddr page_va);

    /** First disk block of (pid, va)'s swap slot — the surface a
     *  hostile OS tampers with via Disk::rawBlock. */
    std::optional<uint64_t> swapSlotBlock(uint64_t pid,
                                          hw::Vaddr page_va) const;

    /** The swap area (null before boot). */
    SwapArea *swapArea() { return _swap.get(); }

    /** The second-chance eviction clock over resident ghost pages. */
    const GhostClock &ghostClock() const { return _ghostClock; }

    /** Free frames remaining in the kernel allocator. */
    uint64_t freeFrames() const { return _frames->freeCount(); }

    /** Resolve a user access through @p proc's tables, demand-zero
     *  faulting as needed (the user-mode memory path). */
    bool handleUserAccess(Process &proc, hw::Vaddr va,
                          hw::Access access, hw::Paddr &pa);

    // --- connection table ----------------------------------------------
    /** Register an established connection: assign @p server_sock a
     *  connection id (recycled from the free-list when possible) and
     *  insert it into the hash table. Returns the id. */
    uint64_t connRegister(const std::shared_ptr<Socket> &server_sock);

    /** Drop @p sock's registration (no-op if it was never registered
     *  or its peer already tore the connection down). */
    void connUnregister(Socket &sock);

    /** O(1) lookup of a registered connection by id. */
    std::shared_ptr<Socket> connLookup(uint64_t conn_id);

    /** Exit-path reap: unregister every still-registered socket in
     *  @p proc's fd table (close() normally does this; exit without
     *  close must not leak registry slots). */
    void connReapProcess(Process &proc);

    /** The live registry (vg_lint --dump-fleet, fleet LB telemetry). */
    const ConnTable &connTable() const { return _connTable; }

    /** Enqueue a bottom-half wakeup on @p cpu's completion queue. */
    void postSoftirq(unsigned cpu, uint64_t due_at, const void *channel);

    /** Per-CPU completion queue (for tests and --dump-rings). */
    const std::deque<Softirq> &softirqQueue(unsigned cpu) const
    {
        return _softirq[cpu % _softirq.size()];
    }

    /** Cycle of the last device interrupt taken on @p cpu (the
     *  coalescing holdoff anchor; 0 if none yet). */
    uint64_t lastIrqAt(unsigned cpu) const
    {
        return _lastIrqAt[cpu % _lastIrqAt.size()];
    }

  private:
    // --- scheduling ---------------------------------------------------
    void schedulerLoop();
    /** SMP scheduler: per-CPU run queues, deterministic round-robin
     *  interleaving across vCPUs, idle balancing (VgConfig::smpScheduler,
     *  the default; identical to runLegacy() at vcpus == 1). */
    void runSmp();
    /** The original single-CPU loop, kept verbatim for differential
     *  testing (VgConfig::smpScheduler = false; requires vcpus == 1). */
    void runLegacy();
    void switchTo(Process &proc);
    void backToScheduler(Process &proc);
    void blockCurrent(Process &proc, const void *channel);
    void blockCurrentTimed(Process &proc, const void *channel,
                           uint64_t wake_time);
    unsigned wakeup(const void *channel);
    /** Deliver due completion-queue entries on @p cpu (bottom half:
     *  IRQ trap at most once per coalescing window, softirq dispatch
     *  per batch, wakeups). Returns the earliest still-pending dueAt
     *  on that queue (0 when empty). */
    uint64_t serviceSoftirqs(unsigned cpu);
    /** Earliest pending softirq dueAt across every vCPU (0 if none) —
     *  folded into the all-idle virtual-time advance. */
    uint64_t earliestSoftirq() const;
    void yieldCurrent(Process &proc);
    void deliverPushedCalls(Process &proc, UserApi &api);
    void executeUserContextCode(Process &proc, uint64_t code_addr,
                                uint64_t arg);
    void setupModuleExterns();

    // --- VM helpers -----------------------------------------------------
    bool ensureTables(Process &proc, hw::Vaddr va);
    bool materializePage(Process &proc, hw::Vaddr va);
    bool copyOnWrite(Process &proc, hw::Vaddr page);
    void buildAddressSpace(Process &proc);
    void teardownAddressSpace(Process &proc);
    void copyAddressSpace(Process &parent, Process &child);

    // --- syscall internals ---------------------------------------------
    int64_t doRead(Process &proc, int fd, hw::Vaddr buf, uint64_t len);
    int64_t doWrite(Process &proc, int fd, hw::Vaddr buf, uint64_t len);
    std::shared_ptr<OpenFile> file(Process &proc, int fd);
    int64_t socketSend(Process &proc, Socket &sock, const uint8_t *data,
                       uint64_t len);
    /** Ring-based transmit used by socketSend/doSendfile under
     *  asyncIo: posts one descriptor per segment, rings the doorbell
     *  once per batch, queues peer segments with completion-time
     *  readyAt stamps and arms the RX softirq. @p zero_copy skips the
     *  kmem staging-copy charge (sendfile with the sandbox proof).
     *  Returns bytes actually segmented (stops at window-full). */
    uint64_t ringTransmit(Socket &sock, const std::shared_ptr<Socket> &peer,
                          const uint8_t *data, uint64_t len,
                          bool zero_copy);
    int64_t socketRecv(Process &proc, Socket &sock, uint8_t *data,
                       uint64_t len);
    int64_t doSendfile(Process &proc, int out_fd, int in_fd,
                       uint64_t len);
    void postSignal(Process &target, int signum);

    /** Dispatch through a module interposition if one is installed;
     *  returns true if handled (result in @p result). */
    bool moduleDispatch(Sys sys, const std::vector<uint64_t> &args,
                        int64_t &result);

    /** Seal + evict @p pages of @p pid and store them in the swap
     *  area: batched under swapFastPath, one page at a time on the
     *  reference path. Victim set and order are caller-decided, so
     *  both modes evict identically. */
    uint64_t swapOutPages(uint64_t pid, Process &proc,
                          std::vector<hw::Vaddr> pages);

    /** Residency-tracking hooks for the eviction clock. */
    void noteGhostAlloc(uint64_t pid, hw::Vaddr va, uint64_t npages);
    void noteGhostFree(uint64_t pid, hw::Vaddr va, uint64_t npages);

    /** MMU of the vCPU the current process is executing on. */
    hw::Mmu &curMmu() { return _cpus.active().mmu(); }

    /** Preemption timer of the active vCPU. */
    hw::Timer &curTimer() { return _cpus.active().timer(); }

    sim::SimContext &_ctx;
    hw::PhysMem &_mem;
    hw::CpuSet &_cpus;
    hw::Iommu &_iommu;
    hw::Tpm &_tpm;
    hw::Disk &_disk;
    hw::Nic &_nicA;
    hw::Nic &_nicB;
    sva::SvaVm &_vm;
    hw::Console _console;

    std::unique_ptr<FrameAllocator> _frames;
    std::unique_ptr<Kmem> _kmem;
    std::unique_ptr<BufferCache> _bcache;
    std::unique_ptr<Fs> _fs;

    std::map<uint64_t, std::unique_ptr<Process>> _procs;
    std::map<uint64_t, int> _exitCodes;
    uint64_t _nextPid = 1;
    /** Round-robin home-CPU assignment for new processes. */
    unsigned _nextCpuAssign = 0;

    std::map<uint16_t, std::shared_ptr<Socket>> _listeners;

    /** Established-connection registry (O(1) accept/close). */
    ConnTable _connTable;

    /** Per-CPU softirq completion queues (asyncIo) and the cycle each
     *  CPU last took a device interrupt (coalescing anchor). */
    std::vector<std::deque<Softirq>> _softirq;
    std::vector<uint64_t> _lastIrqAt;

    /** On-disk swap area for sealed ghost pages (carved from the disk
     *  tail at boot) and the machine-wide eviction clock. */
    std::unique_ptr<SwapArea> _swap;
    GhostClock _ghostClock;

    std::map<std::string, KernelModule> _modules;

    /** One interposed syscall handler, resolved at registration time
     *  so the per-syscall dispatch does no string-keyed lookups. */
    struct Interposition
    {
        std::string moduleName;
        std::string functionName;
        KernelModule *module = nullptr;   ///< into _modules (stable)
        const cc::FuncInfo *fn = nullptr; ///< into the module image
    };
    std::map<int, Interposition> _interposed;
    cc::ExternTable _moduleExterns;

    // Baton machinery.
    std::mutex _mtx;
    std::condition_variable _schedCv;
    Process *_current = nullptr;
    bool _schedulerTurn = true;
    bool _shuttingDown = false;
    bool _rngRigged = false;
    uint64_t _osRngState = 0x123456789abcdefull;

    // Hot-path counters, interned once at construction.
    sim::StatHandle _hPageFaults;
    sim::StatHandle _hPagesMaterialized;
    sim::StatHandle _hCowFaults;
    sim::StatHandle _hFilePageIns;
    sim::StatHandle _hProcessExits;
    sim::StatHandle _hSpawns;
    sim::StatHandle _hForks;
    sim::StatHandle _hExecs;
    sim::StatHandle _hSignalsDelivered;
    sim::StatHandle _hNetBytesSent;
    sim::StatHandle _hDeviceIrqs;
    sim::StatHandle _hIrqsCoalesced;
    sim::StatHandle _hSoftirqWakes;
    sim::StatHandle _hZeroCopySends;
    sim::StatHandle _hGhostFaults;
    sim::StatHandle _hGhostReclaimed;
    sim::StatHandle _hConnInserts;
    sim::StatHandle _hConnErases;
    sim::StatHandle _hConnLookups;
    sim::StatHandle _hConnPeak;

    friend struct ModuleExternBinder;
};

} // namespace vg::kern

#endif // VG_KERNEL_KERNEL_HH
