/**
 * @file
 * Physical frame allocator.
 *
 * The OS owns physical memory (Virtual Ghost deliberately leaves
 * resource management to the untrusted kernel); ghost frames are
 * *donated* to the SVA VM through its frame-provider callback and
 * come back through the receiver.
 */

#ifndef VG_KERNEL_KALLOC_HH
#define VG_KERNEL_KALLOC_HH

#include <deque>
#include <optional>

#include "hw/layout.hh"
#include "sim/context.hh"

namespace vg::kern
{

/** Free-list frame allocator. */
class FrameAllocator
{
  public:
    /** Manage frames [first, first+count). */
    FrameAllocator(hw::Frame first, uint64_t count,
                   sim::SimContext &ctx)
        : _ctx(ctx)
    {
        for (uint64_t i = 0; i < count; i++)
            _free.push_back(first + i);
        _total = count;
    }

    /** Allocate one frame; nullopt when exhausted. */
    std::optional<hw::Frame>
    alloc()
    {
        _ctx.chargeKernelWork(12, 4, 1);
        if (_free.empty())
            return std::nullopt;
        hw::Frame f = _free.front();
        _free.pop_front();
        return f;
    }

    /** Return a frame to the pool. */
    void
    free(hw::Frame f)
    {
        _ctx.chargeKernelWork(8, 3, 1);
        _free.push_back(f);
    }

    uint64_t freeCount() const { return _free.size(); }
    uint64_t totalCount() const { return _total; }

  private:
    sim::SimContext &_ctx;
    std::deque<hw::Frame> _free;
    uint64_t _total = 0;
};

} // namespace vg::kern

#endif // VG_KERNEL_KALLOC_HH
