#include "kernel/system.hh"

namespace vg::kern
{

System::System(const SystemConfig &config)
    : _config(config), _ctx(config.vg), _mem(config.memFrames),
      _cpus(_mem, _ctx), _iommu(_mem, _ctx), _tpm(config.tpmSeed),
      _disk(config.diskBlocks, _iommu, _ctx), _nicA(_iommu, _ctx),
      _nicB(_iommu, _ctx),
      _vm(_ctx, _mem, _cpus[0].mmu(), _iommu, _tpm),
      _kernel(_ctx, _mem, _cpus, _iommu, _tpm, _disk, _nicA, _nicB, _vm)
{
    _vm.attachCpus(_cpus);
    _nicA.connectTo(&_nicB);
    _nicB.connectTo(&_nicA);
}

void
System::boot()
{
    if (_booted)
        return;
    _vm.install(_config.rsaBits);
    _vm.boot();
    _kernel.boot();
    _booted = true;
}

} // namespace vg::kern
