#include "kernel/kmem.hh"

#include <cstring>

#include "hw/layout.hh"
#include "sim/log.hh"

namespace vg::kern
{

Kmem::Kmem(sim::SimContext &ctx, hw::PhysMem &mem, hw::Mmu &mmu,
           sva::SvaVm &vm)
    : _ctx(ctx), _mem(mem), _mmu(mmu), _vm(vm)
{}

bool
Kmem::resolve(hw::Vaddr va, hw::Access access, hw::Paddr &pa)
{
    if (va == 0)
        return false; // rewritten SVA-internal access: fault

    if (va >= hw::kernelBase) {
        // Kernel half: direct map (kernelBase + pa), wrapped to the
        // installed RAM size so arbitrary masked aliases still read
        // *something* from the kernel's own address space, as the
        // paper observes for deflected rootkit reads.
        pa = (va - hw::kernelBase) % _mem.sizeBytes();
        return true;
    }

    // User (or ghost, when unmasked module-port access) address: walk
    // the current tree with kernel privilege.
    auto r = _mmu.translate(va, access, hw::Privilege::Kernel);
    if (!r.ok)
        return false;
    pa = r.paddr;
    return true;
}

bool
Kmem::storePermitted(hw::Paddr pa)
{
    hw::Frame frame = pa >> hw::pageShift;
    if (frame >= _vm.frames().size())
        return false;
    switch (_vm.frames()[frame].type) {
      case sva::FrameType::PageTable:
      case sva::FrameType::Code:
      case sva::FrameType::Ghost:
      case sva::FrameType::SvaInternal:
        return false;
      default:
        return true;
    }
}

bool
Kmem::read(uint64_t va, unsigned bytes, uint64_t &out)
{
    hw::Paddr pa = 0;
    if (!resolve(va, hw::Access::Read, pa))
        return false;
    out = 0;
    switch (bytes) {
      case 1:
        out = _mem.read8(pa);
        break;
      case 2:
        out = _mem.read16(pa);
        break;
      case 4:
        out = _mem.read32(pa);
        break;
      case 8:
        out = _mem.read64(pa);
        break;
      default:
        return false;
    }
    return true;
}

bool
Kmem::write(uint64_t va, unsigned bytes, uint64_t val)
{
    hw::Paddr pa = 0;
    if (!resolve(va, hw::Access::Write, pa))
        return false;
    if (!storePermitted(pa)) {
        _ctx.stats().add("kmem.blocked_stores");
        return false;
    }
    switch (bytes) {
      case 1:
        _mem.write8(pa, uint8_t(val));
        break;
      case 2:
        _mem.write16(pa, uint16_t(val));
        break;
      case 4:
        _mem.write32(pa, uint32_t(val));
        break;
      case 8:
        _mem.write64(pa, val);
        break;
      default:
        return false;
    }
    return true;
}

bool
Kmem::copy(uint64_t dst, uint64_t src, uint64_t len)
{
    for (uint64_t off = 0; off < len; off++) {
        uint64_t byte = 0;
        if (!read(src + off, 1, byte))
            return false;
        if (!write(dst + off, 1, byte))
            return false;
    }
    return true;
}

bool
Kmem::kread(hw::Vaddr va, unsigned bytes, uint64_t &out)
{
    hw::Vaddr masked = hw::sandboxAddress(va);
    if (masked != va) {
        _deflections++;
        _ctx.stats().add("kmem.deflections");
    }
    _ctx.chargeKernelWork(2, 1, 0);
    return read(masked, bytes, out);
}

bool
Kmem::kwrite(hw::Vaddr va, unsigned bytes, uint64_t val)
{
    hw::Vaddr masked = hw::sandboxAddress(va);
    if (masked != va) {
        _deflections++;
        _ctx.stats().add("kmem.deflections");
    }
    _ctx.chargeKernelWork(2, 1, 0);
    return write(masked, bytes, val);
}

bool
Kmem::copyIn(hw::Vaddr user_va, void *dst, uint64_t len)
{
    _ctx.chargeKernelBulk(len);
    uint8_t *out = static_cast<uint8_t *>(dst);
    uint64_t off = 0;
    while (off < len) {
        hw::Vaddr va = hw::sandboxAddress(user_va + off);
        if (va != user_va + off) {
            _deflections++;
            _ctx.stats().add("kmem.deflections");
        }
        uint64_t chunk = std::min<uint64_t>(
            len - off, hw::pageSize - hw::pageOffset(va));
        hw::Paddr pa = 0;
        if (!resolve(va, hw::Access::Read, pa))
            return false;
        _mem.readBytes(pa, out + off, chunk);
        off += chunk;
    }
    return true;
}

bool
Kmem::copyOut(hw::Vaddr user_va, const void *src, uint64_t len)
{
    _ctx.chargeKernelBulk(len);
    const uint8_t *in = static_cast<const uint8_t *>(src);
    uint64_t off = 0;
    while (off < len) {
        hw::Vaddr va = hw::sandboxAddress(user_va + off);
        if (va != user_va + off) {
            _deflections++;
            _ctx.stats().add("kmem.deflections");
        }
        uint64_t chunk = std::min<uint64_t>(
            len - off, hw::pageSize - hw::pageOffset(va));
        hw::Paddr pa = 0;
        if (!resolve(va, hw::Access::Write, pa))
            return false;
        if (!storePermitted(pa)) {
            _ctx.stats().add("kmem.blocked_stores");
            return false;
        }
        _mem.writeBytes(pa, in + off, chunk);
        off += chunk;
    }
    return true;
}

} // namespace vg::kern
