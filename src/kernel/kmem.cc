#include "kernel/kmem.hh"

#include <algorithm>
#include <cstring>

#include "hw/layout.hh"
#include "sim/log.hh"

namespace vg::kern
{

Kmem::Kmem(sim::SimContext &ctx, hw::PhysMem &mem, hw::Mmu &mmu,
           sva::SvaVm &vm)
    : _ctx(ctx), _mem(mem), _mmu(mmu), _vm(vm),
      _hDeflections(ctx.stats().handle("kmem.deflections")),
      _hBlockedStores(ctx.stats().handle("kmem.blocked_stores")),
      _hTlbHits(ctx.stats().handle("mmu.tlb_hits"))
{
    if (ctx.vcpuCount() > 1) {
        _hCpuTlbHits.resize(ctx.vcpuCount());
        for (unsigned c = 0; c < ctx.vcpuCount(); c++) {
            _hCpuTlbHits[c] = ctx.stats().handle(
                "cpu" + std::to_string(c) + ".mmu.tlb_hits");
        }
    }
}

bool
Kmem::resolve(hw::Vaddr va, hw::Access access, hw::Paddr &pa)
{
    if (va == 0)
        return false; // rewritten SVA-internal access: fault

    if (va >= hw::kernelBase) {
        // Kernel half: direct map (kernelBase + pa), wrapped to the
        // installed RAM size so arbitrary masked aliases still read
        // *something* from the kernel's own address space, as the
        // paper observes for deflected rootkit reads.
        pa = (va - hw::kernelBase) % _mem.sizeBytes();
        return true;
    }

    // User (or ghost, when unmasked module-port access) address: walk
    // the current tree with kernel privilege.
    auto r = curMmu().translate(va, access, hw::Privilege::Kernel);
    if (!r.ok)
        return false;
    pa = r.paddr;
    return true;
}

bool
Kmem::resolveCached(hw::Vaddr va, hw::Access access, hw::Paddr &pa)
{
    if (!_ctx.config().kmemFastPath)
        return resolve(va, access, pa);

    if (va == 0)
        return false;

    if (va >= hw::kernelBase) {
        pa = (va - hw::kernelBase) % _mem.sizeBytes();
        return true;
    }

    // Cache hit requires the access to come from the vCPU that filled
    // the cache AND that vCPU's Mmu generation to be unchanged since
    // the fill, which guarantees its TLB still holds this page with
    // this PTE: translate() would have charged exactly one tlbHit.
    // Remote shootdowns bump the owning vCPU's generation, so a stale
    // ghost translation can never be served after a cross-CPU
    // invalidation.
    hw::Mmu &mmu = curMmu();
    unsigned cpu = _ctx.activeCpu();
    if (_tc.valid && _tc.cpu == cpu && _tc.gen == mmu.generation() &&
        _tc.vpage == hw::pageOf(va) &&
        hw::Mmu::allowed(_tc.pte, access, hw::Privilege::Kernel)) {
        _ctx.clock().advance(_ctx.costs().tlbHit);
        sim::StatSet::add(_hTlbHits);
        bumpCpuTlbHits(1);
        pa = _tc.paBase + hw::pageOffset(va);
        return true;
    }

    auto r = mmu.translate(va, access, hw::Privilege::Kernel);
    if (!r.ok)
        return false;
    _tc.valid = true;
    _tc.cpu = cpu;
    _tc.gen = mmu.generation(); // post-walk: counts our own eviction
    _tc.vpage = hw::pageOf(va);
    _tc.paBase = r.paddr - hw::pageOffset(va);
    _tc.pte = r.pte;
    pa = r.paddr;
    return true;
}

bool
Kmem::storePermitted(hw::Paddr pa)
{
    hw::Frame frame = pa >> hw::pageShift;
    if (frame >= _vm.frames().size())
        return false;
    switch (_vm.frames()[frame].type) {
      case sva::FrameType::PageTable:
      case sva::FrameType::Code:
      case sva::FrameType::Ghost:
      case sva::FrameType::SvaInternal:
        return false;
      default:
        return true;
    }
}

bool
Kmem::read(uint64_t va, unsigned bytes, uint64_t &out)
{
    hw::Paddr pa = 0;
    if (!resolveCached(va, hw::Access::Read, pa))
        return false;
    out = 0;
    switch (bytes) {
      case 1:
        out = _mem.read8(pa);
        break;
      case 2:
        out = _mem.read16(pa);
        break;
      case 4:
        out = _mem.read32(pa);
        break;
      case 8:
        out = _mem.read64(pa);
        break;
      default:
        return false;
    }
    return true;
}

bool
Kmem::write(uint64_t va, unsigned bytes, uint64_t val)
{
    hw::Paddr pa = 0;
    if (!resolveCached(va, hw::Access::Write, pa))
        return false;
    if (!storePermitted(pa)) {
        sim::StatSet::add(_hBlockedStores);
        return false;
    }
    switch (bytes) {
      case 1:
        _mem.write8(pa, uint8_t(val));
        break;
      case 2:
        _mem.write16(pa, uint16_t(val));
        break;
      case 4:
        _mem.write32(pa, uint32_t(val));
        break;
      case 8:
        _mem.write64(pa, val);
        break;
      default:
        return false;
    }
    return true;
}

bool
Kmem::copyBytewise(uint64_t dst, uint64_t src, uint64_t len)
{
    for (uint64_t off = 0; off < len; off++) {
        uint64_t byte = 0;
        if (!read(src + off, 1, byte))
            return false;
        if (!write(dst + off, 1, byte))
            return false;
    }
    return true;
}

bool
Kmem::copy(uint64_t dst, uint64_t src, uint64_t len)
{
    if (!_ctx.config().kmemFastPath)
        return copyBytewise(dst, src, len);

    uint64_t off = 0;
    while (off < len) {
        hw::Vaddr s = src + off;
        hw::Vaddr d = dst + off;
        uint64_t chunk = std::min(
            {len - off, hw::pageSize - hw::pageOffset(s),
             hw::pageSize - hw::pageOffset(d)});

        // The chunk's first byte goes through the real machinery so
        // walks, faults, and the blocked-store bump land in reference
        // order (src read before dst write).
        hw::Paddr spa = 0, dpa = 0;
        if (!resolveCached(s, hw::Access::Read, spa))
            return false;
        if (!resolveCached(d, hw::Access::Write, dpa))
            return false;
        if (!storePermitted(dpa)) {
            sim::StatSet::add(_hBlockedStores);
            return false;
        }
        _mem.write8(dpa, _mem.read8(spa));

        uint64_t rest = chunk - 1;
        if (rest > 0) {
            bool sXlat = s < hw::kernelBase;
            bool dXlat = d < hw::kernelBase;
            // The remaining bytes are uniform TLB hits in the
            // reference loop except in two cases, which take the byte
            // loop (itself cost-identical via resolveCached):
            //  - src and dst pages share a direct-mapped TLB set, so
            //    the reference loop walk-thrashes every byte;
            //  - the physical ranges overlap, so the reference
            //    forward copy propagates freshly written bytes.
            bool thrash = sXlat && dXlat &&
                          hw::pageOf(s) != hw::pageOf(d) &&
                          hw::Mmu::tlbIndex(s) == hw::Mmu::tlbIndex(d);
            bool overlap =
                spa < dpa + chunk && dpa < spa + chunk;
            if (thrash || overlap) {
                if (!copyBytewise(d + 1, s + 1, rest))
                    return false;
            } else {
                uint64_t hits =
                    (sXlat ? rest : 0) + (dXlat ? rest : 0);
                if (hits > 0) {
                    _ctx.clock().advance(hits * _ctx.costs().tlbHit);
                    sim::StatSet::add(_hTlbHits, hits);
                    bumpCpuTlbHits(hits);
                }
                uint8_t buf[hw::pageSize];
                _mem.readBytes(spa + 1, buf, rest);
                _mem.writeBytes(dpa + 1, buf, rest);
            }
        }
        off += chunk;
    }
    return true;
}

bool
Kmem::kread(hw::Vaddr va, unsigned bytes, uint64_t &out)
{
    hw::Vaddr masked = hw::sandboxAddress(va);
    if (masked != va) {
        _deflections++;
        sim::StatSet::add(_hDeflections);
    }
    _ctx.chargeKernelWork(2, 1, 0);
    return read(masked, bytes, out);
}

bool
Kmem::kwrite(hw::Vaddr va, unsigned bytes, uint64_t val)
{
    hw::Vaddr masked = hw::sandboxAddress(va);
    if (masked != va) {
        _deflections++;
        sim::StatSet::add(_hDeflections);
    }
    _ctx.chargeKernelWork(2, 1, 0);
    return write(masked, bytes, val);
}

bool
Kmem::copyIn(hw::Vaddr user_va, void *dst, uint64_t len)
{
    _ctx.chargeKernelBulk(len);
    uint8_t *out = static_cast<uint8_t *>(dst);
    uint64_t off = 0;
    while (off < len) {
        hw::Vaddr va = hw::sandboxAddress(user_va + off);
        if (va != user_va + off) {
            _deflections++;
            sim::StatSet::add(_hDeflections);
        }
        uint64_t chunk = std::min<uint64_t>(
            len - off, hw::pageSize - hw::pageOffset(va));
        hw::Paddr pa = 0;
        if (!resolveCached(va, hw::Access::Read, pa))
            return false;
        _mem.readBytes(pa, out + off, chunk);
        off += chunk;
    }
    return true;
}

bool
Kmem::copyOut(hw::Vaddr user_va, const void *src, uint64_t len)
{
    _ctx.chargeKernelBulk(len);
    const uint8_t *in = static_cast<const uint8_t *>(src);
    uint64_t off = 0;
    while (off < len) {
        hw::Vaddr va = hw::sandboxAddress(user_va + off);
        if (va != user_va + off) {
            _deflections++;
            sim::StatSet::add(_hDeflections);
        }
        uint64_t chunk = std::min<uint64_t>(
            len - off, hw::pageSize - hw::pageOffset(va));
        hw::Paddr pa = 0;
        if (!resolveCached(va, hw::Access::Write, pa))
            return false;
        if (!storePermitted(pa)) {
            sim::StatSet::add(_hBlockedStores);
            return false;
        }
        _mem.writeBytes(pa, in + off, chunk);
        off += chunk;
    }
    return true;
}

} // namespace vg::kern
