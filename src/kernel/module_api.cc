/**
 * @file
 * The kernel API exported to loaded modules (the extern table the
 * simulated CPU resolves CallExt against).
 *
 * This is the surface the S 7 rootkit uses: logging, native-handler
 * chaining, victim-process manipulation (mmap into another process,
 * rewriting its signal-handler table, sending signals) and file
 * exfiltration. All of it is ordinary kernel functionality — the
 * point of the paper is that even with these powers, a module cannot
 * read ghost memory or hijack application control flow under VG.
 */

#include "kernel/kernel.hh"
#include "sim/log.hh"

namespace vg::kern
{

void
Kernel::setupModuleExterns()
{
    // klog(value): log a 64-bit value the module computed (e.g. data
    // it believes it stole).
    _moduleExterns.fns["klog"] =
        [this](const std::vector<uint64_t> &args) {
            _console.write(sim::strprintf(
                "[module] value=0x%lx\n",
                args.empty() ? 0ul : (unsigned long)args[0]));
            return uint64_t(0);
        };

    // klog_bytes(va, len): hex-dump kernel-visible memory.
    _moduleExterns.fns["klog_bytes"] =
        [this](const std::vector<uint64_t> &args) {
            if (args.size() < 2)
                return uint64_t(0);
            std::string line = "[module] bytes=";
            for (uint64_t i = 0; i < args[1] && i < 64; i++) {
                uint64_t b = 0;
                if (!_kmem->read(args[0] + i, 1, b))
                    break;
                line += sim::strprintf("%02x", unsigned(b));
            }
            _console.write(line + "\n");
            return uint64_t(0);
        };

    // k_read_native(fd, buf, len, pid): chain to the native read()
    // handler so the rootkit's interposition stays invisible.
    _moduleExterns.fns["k_read_native"] =
        [this](const std::vector<uint64_t> &args) {
            if (args.size() < 4)
                return uint64_t(-1);
            Process *proc = process(args[3]);
            if (!proc)
                return uint64_t(-1);
            return uint64_t(
                doRead(*proc, int(args[0]), args[1], args[2]));
        };

    // k_mmap_in_proc(pid, len): map anonymous memory inside a victim
    // process (the OS can always do this).
    _moduleExterns.fns["k_mmap_in_proc"] =
        [this](const std::vector<uint64_t> &args) {
            if (args.size() < 2)
                return uint64_t(0);
            Process *proc = process(args[0]);
            if (!proc)
                return uint64_t(0);
            uint64_t npages =
                (args[1] + hw::pageSize - 1) / hw::pageSize;
            hw::Vaddr va = proc->mmapCursor;
            proc->mmapCursor += (npages + 1) * hw::pageSize;
            proc->areas[va] = {va, npages};
            return uint64_t(va);
        };

    // k_install_handler(pid, signum, addr): rewrite the victim's
    // signal-handler table to point at arbitrary "code".
    _moduleExterns.fns["k_install_handler"] =
        [this](const std::vector<uint64_t> &args) {
            if (args.size() < 3)
                return uint64_t(-1);
            Process *proc = process(args[0]);
            if (!proc)
                return uint64_t(-1);
            proc->sigHandlers[int(args[1])] = args[2];
            return uint64_t(0);
        };

    // k_send_signal(pid, signum).
    _moduleExterns.fns["k_send_signal"] =
        [this](const std::vector<uint64_t> &args) {
            if (args.size() < 2)
                return uint64_t(-1);
            Process *proc = process(args[0]);
            if (!proc || !proc->alive())
                return uint64_t(-1);
            postSignal(*proc, int(args[1]));
            return uint64_t(0);
        };

    // k_exfil(va, len): append kernel-visible bytes at va to the
    // attacker's /exfil file.
    _moduleExterns.fns["k_exfil"] =
        [this](const std::vector<uint64_t> &args) {
            if (args.size() < 2)
                return uint64_t(-1);
            std::vector<uint8_t> data;
            for (uint64_t i = 0; i < args[1]; i++) {
                uint64_t b = 0;
                if (!_kmem->read(args[0] + i, 1, b))
                    break;
                data.push_back(uint8_t(b));
            }
            Ino ino = 0;
            if (_fs->lookup("/exfil", ino) != FsStatus::Ok &&
                _fs->create("/exfil", ino) != FsStatus::Ok)
                return uint64_t(-1);
            FileStat st;
            _fs->stat(ino, st);
            _fs->write(ino, st.size, data.data(), data.size());
            return uint64_t(data.size());
        };

    // k_open_exfil_in(pid): create /exfil and inject an open fd for
    // it into the victim's descriptor table (the OS owns that table).
    _moduleExterns.fns["k_open_exfil_in"] =
        [this](const std::vector<uint64_t> &args) {
            if (args.empty())
                return uint64_t(-1);
            Process *proc = process(args[0]);
            if (!proc)
                return uint64_t(-1);
            Ino ino = 0;
            if (_fs->lookup("/exfil", ino) != FsStatus::Ok &&
                _fs->create("/exfil", ino) != FsStatus::Ok)
                return uint64_t(-1);
            auto of = std::make_shared<OpenFile>();
            of->kind = OpenFile::Kind::File;
            of->ino = ino;
            int fd = proc->nextFd++;
            proc->fds[fd] = of;
            return uint64_t(fd);
        };

    // k_exfil_fd(pid, fd, va, len): write victim-side data to an fd
    // of a process (used by exploit code running in user context).
    _moduleExterns.fns["k_exfil_fd"] =
        [this](const std::vector<uint64_t> &args) {
            if (args.size() < 4)
                return uint64_t(-1);
            Process *proc = process(args[0]);
            if (!proc)
                return uint64_t(-1);
            return uint64_t(
                doWrite(*proc, int(args[1]), args[2], args[3]));
        };

    // ---- Information-flow surface (sva/iflow_meta.hh) ----
    //
    // Deterministic models of the ghost-data intrinsics and the
    // OS-visible channels the IflowVerifier reasons about. The values
    // only need to be stable and data-dependent — modules built on
    // them run under the executor in tests and fixtures.

    // SplitMix64-style mixer shared by the models below.
    auto mix = [](uint64_t x) {
        x += 0x9e3779b97f4a7c15ull;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        return x ^ (x >> 31);
    };

    // sva_ghost_read(va): a 64-bit word of the caller's ghost memory
    // (modeled as a keyed mix of the address).
    _moduleExterns.fns["sva_ghost_read"] =
        [this, mix](const std::vector<uint64_t> &args) {
            _ctx.stats().add("kernel.module_ghost_reads");
            return mix(args.empty() ? 0 : args[0]);
        };

    // sva_ghost_ptr(): a pointer into the caller's ghost region.
    _moduleExterns.fns["sva_ghost_ptr"] =
        [this](const std::vector<uint64_t> &args) {
            (void)args;
            _ctx.stats().add("kernel.module_ghost_ptrs");
            return hw::ghostBase + 0x1000;
        };

    // sva_seal(w) / sva_hmac(w): the sanctioned declassifiers. The
    // model is a keyed mix — what matters to the verifier is the
    // annotation, not the cipher.
    _moduleExterns.fns["sva_seal"] =
        [this, mix](const std::vector<uint64_t> &args) {
            _ctx.stats().add("kernel.module_seals");
            return mix((args.empty() ? 0 : args[0]) ^
                       0x5ea15ea15ea15ea1ull);
        };
    _moduleExterns.fns["sva_hmac"] =
        [this, mix](const std::vector<uint64_t> &args) {
            _ctx.stats().add("kernel.module_hmacs");
            return mix((args.empty() ? 0 : args[0]) ^
                       0x4d4143004d414300ull);
        };

    // k_nic_tx(w): queue a word as a NIC descriptor payload.
    _moduleExterns.fns["k_nic_tx"] =
        [this](const std::vector<uint64_t> &args) {
            (void)args;
            _ctx.stats().add("kernel.module_nic_tx_words");
            return uint64_t(0);
        };

    // k_disk_write(block, w): write a word to a raw disk block.
    _moduleExterns.fns["k_disk_write"] =
        [this](const std::vector<uint64_t> &args) {
            (void)args;
            _ctx.stats().add("kernel.module_disk_writes");
            return uint64_t(0);
        };

    // k_swap_store(slot, w): store a word into a swap slot.
    _moduleExterns.fns["k_swap_store"] =
        [this](const std::vector<uint64_t> &args) {
            (void)args;
            _ctx.stats().add("kernel.module_swap_stores");
            return uint64_t(0);
        };

    // k_swap_slot_ptr(slot): a pointer into the swap staging window.
    _moduleExterns.fns["k_swap_slot_ptr"] =
        [this](const std::vector<uint64_t> &args) {
            _ctx.stats().add("kernel.module_swap_slot_ptrs");
            return hw::kernelBase + 0x200000 +
                   ((args.empty() ? 0 : args[0]) & 0xff) *
                       hw::pageSize;
        };

    // k_stat_add(v): bump a kernel stat counter by v.
    _moduleExterns.fns["k_stat_add"] =
        [this](const std::vector<uint64_t> &args) {
            _ctx.stats().add("kernel.module_stat_adds",
                             args.empty() ? 0 : args[0]);
            return uint64_t(0);
        };
}

} // namespace vg::kern
