/**
 * @file
 * Process, open-file and socket structures for the mini-FreeBSD kernel.
 */

#ifndef VG_KERNEL_PROC_HH
#define VG_KERNEL_PROC_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "hw/layout.hh"
#include "kernel/fs.hh"

namespace vg::kern
{

class UserApi;

/** Process lifecycle states. */
enum class ProcState
{
    Embryo,
    Runnable,
    Running,
    Blocked,
    Zombie,
    Dead,
};

/** One in-flight or delivered stream segment. A segment becomes
 *  readable once simulated time reaches readyAt (the wire is modelled
 *  as a pipelined link: senders only spend CPU time; receivers wait
 *  for arrival, overlapping other work meanwhile). */
struct Segment
{
    std::vector<uint8_t> data;
    uint64_t offset = 0;  ///< bytes already consumed
    uint64_t readyAt = 0; ///< simulated arrival time (cycles)
};

/** A TCP-lite socket endpoint. */
struct Socket
{
    enum class State
    {
        Closed,
        Listening,
        Connected,
    };

    State state = State::Closed;
    uint16_t localPort = 0;

    /** Connection-table id (nonzero once the established connection is
     *  registered; ids are recycled through a free-list so the table
     *  stays dense under thousands of churn-heavy connections). */
    uint64_t connId = 0;

    /** Pending connections on a listening socket. */
    std::deque<std::shared_ptr<Socket>> acceptQueue;

    /** Received / in-flight stream segments. */
    std::deque<Segment> rxBuf;

    /** Bytes buffered (including in flight) for flow control. */
    uint64_t pendingBytes = 0;

    /** Connected peer (weak to break the cycle). */
    std::weak_ptr<Socket> peer;

    /** Flow steering (aRFS): the vCPU whose softirq queue should take
     *  RX-completion bottom halves for this socket. The reader sets it
     *  to its home CPU before blocking so wakes land locally. */
    unsigned irqSteer = 0;

    bool peerClosed = false;

    bool
    readReady() const
    {
        if (state == State::Listening)
            return !acceptQueue.empty();
        return !rxBuf.empty() || peerClosed;
    }
};

/** An open file description (shared across fds after fork/dup). */
struct OpenFile
{
    enum class Kind
    {
        File,
        Socket,
    };

    Kind kind = Kind::File;
    Ino ino = 0;
    uint64_t offset = 0;
    std::shared_ptr<Socket> sock;
};

/** A contiguous user address-space reservation. */
struct VmArea
{
    hw::Vaddr start = 0;
    uint64_t npages = 0;
    /** File backing (mmap of a file); 0 = anonymous demand-zero. */
    Ino backingIno = 0;
    uint64_t backingOff = 0;
};

/** Record of one installTable() so teardown can retire the chain. */
struct TableLink
{
    hw::Frame parent = 0;
    int parentLevel = 0;
    hw::Vaddr va = 0;
    hw::Frame child = 0;
};

/** One process. */
class Process
{
  public:
    uint64_t pid = 0;
    uint64_t tid = 0; ///< SVA thread id
    uint64_t parent = 0;
    std::string name;
    ProcState state = ProcState::Embryo;
    int exitCode = 0;
    bool killRequested = false;

    /** Home vCPU: the CPU this process is dispatched on (idle
     *  balancing may migrate it). Always 0 on single-CPU machines. */
    unsigned cpu = 0;

    /** Causal wake stamp: the waker's clock when this process became
     *  Runnable. The home CPU's clock advances to at least this value
     *  before the process resumes (no-op when vcpus == 1). */
    uint64_t readyStamp = 0;

    /** Address-space root (L4) frame and owned table links. */
    hw::Frame rootFrame = 0;
    std::vector<TableLink> ptLinks;

    /** One materialized user page. */
    struct UserPage
    {
        hw::Frame frame = 0;
        bool cow = false; ///< shared copy-on-write after fork
    };

    /** Materialized user pages: va -> page state. */
    std::map<hw::Vaddr, UserPage> userPages;

    /** Reserved areas (mmap/stack/heap), keyed by start va. */
    std::map<hw::Vaddr, VmArea> areas;
    hw::Vaddr mmapCursor = 0x0000100000000000ull;

    /** Ghost allocation cursor within the ghost partition. */
    hw::Vaddr ghostCursor = hw::ghostBase;

    /** File descriptor table. */
    std::map<int, std::shared_ptr<OpenFile>> fds;
    int nextFd = 3;

    /** signum -> handler token (user "text" address). */
    std::map<int, uint64_t> sigHandlers;

    /** handler token -> host function implementing the handler. */
    std::map<uint64_t, std::function<void(int)>> handlerFns;
    uint64_t nextHandlerToken = 0x0000000000401000ull;

    /** Application main, run on the process host thread. */
    std::function<int(UserApi &)> mainFn;

    // --- host-thread scheduling machinery ----------------------------
    std::thread hostThread;
    std::condition_variable cv;
    bool batonHeld = false;
    const void *waitChannel = nullptr;
    /** Additional channels (select() waits on several sockets). */
    std::vector<const void *> multiWait;
    /** Nonzero: wake at this simulated time even without a wakeup(). */
    uint64_t wakeTime = 0;

    bool
    alive() const
    {
        return state != ProcState::Zombie && state != ProcState::Dead;
    }
};

} // namespace vg::kern

#endif // VG_KERNEL_PROC_HH
