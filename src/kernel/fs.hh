/**
 * @file
 * VGFS: a UFS-style filesystem on the simulated SSD.
 *
 * On-disk layout (4 KB blocks):
 *   block 0              superblock
 *   blocks [1, 1+B)      data-block bitmap
 *   blocks [.., ..+I)    inode table (32 inodes per block)
 *   remainder            data blocks
 *
 * Inodes have 10 direct, one single-indirect and one double-indirect
 * block pointer (max file size ~ 4 GB + change). Directories are files
 * of fixed 64-byte entries. All metadata traffic goes through the
 * buffer cache and charges instrumented kernel work, which is what
 * makes file create/delete expensive under Virtual Ghost (Tables 3/4).
 */

#ifndef VG_KERNEL_FS_HH
#define VG_KERNEL_FS_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "kernel/bcache.hh"

namespace vg::kern
{

/** Inode number; 0 is invalid, 1 is the root directory. */
using Ino = uint32_t;

/** File types. */
enum class FileType : uint16_t
{
    Free = 0,
    Regular = 1,
    Directory = 2,
};

/** stat() result. */
struct FileStat
{
    Ino ino = 0;
    FileType type = FileType::Free;
    uint64_t size = 0;
    uint16_t nlink = 0;
};

/** Error codes (subset of errno). */
enum class FsStatus
{
    Ok,
    NotFound,
    Exists,
    NotDir,
    IsDir,
    NoSpace,
    NotEmpty,
    Invalid,
};

const char *fsStatusName(FsStatus status);

/** The filesystem. */
class Fs
{
  public:
    Fs(BufferCache &cache, sim::SimContext &ctx, uint64_t disk_blocks);

    /** Format the device (destroys everything). */
    void mkfs();

    /** Attach to an already-formatted device. */
    bool mount();

    // --- Path operations ---------------------------------------------
    /** Resolve an absolute path. */
    FsStatus lookup(const std::string &path, Ino &out);

    /** Create a regular file (parent directories must exist). */
    FsStatus create(const std::string &path, Ino &out);

    FsStatus mkdir(const std::string &path, Ino &out);

    /** Remove a file (or an empty directory). */
    FsStatus unlink(const std::string &path);

    /** List names in a directory. */
    FsStatus readdir(Ino dir, std::vector<std::string> &names);

    // --- Inode operations --------------------------------------------
    FsStatus stat(Ino ino, FileStat &out);

    /** Read up to @p len bytes at @p off; returns bytes read. */
    int64_t read(Ino ino, uint64_t off, void *buf, uint64_t len);

    /** Write @p len bytes at @p off, growing the file; bytes written
     *  or -1 on no-space. */
    int64_t write(Ino ino, uint64_t off, const void *buf, uint64_t len);

    /** Truncate to zero length, freeing data blocks. */
    FsStatus truncate(Ino ino);

    /** Flush the buffer cache. */
    void sync();

    uint64_t freeDataBlocks() const { return _freeBlocks; }

  private:
    struct Super
    {
        uint64_t magic;
        uint64_t nblocks;
        uint64_t bitmapStart;
        uint64_t bitmapBlocks;
        uint64_t inodeStart;
        uint64_t inodeBlocks;
        uint64_t dataStart;
    };

    struct DiskInode
    {
        uint16_t type;
        uint16_t nlink;
        uint32_t pad;
        uint64_t size;
        uint64_t direct[10];
        uint64_t indirect;
        uint64_t dindirect;
        uint64_t reserved[2];
    };
    static_assert(sizeof(DiskInode) == 128, "inode must be 128 bytes");

    struct DirEnt
    {
        uint32_t ino;
        uint16_t nameLen;
        char name[58];
    };
    static_assert(sizeof(DirEnt) == 64, "dirent must be 64 bytes");

    static constexpr uint64_t inodesPerBlock = 4096 / 128;
    static constexpr uint64_t ptrsPerBlock = 4096 / 8;
    static constexpr uint64_t magicValue = 0x56474653'2e313030ull;

    DiskInode loadInode(Ino ino);
    void storeInode(Ino ino, const DiskInode &inode);
    Ino allocInode(FileType type);
    void freeInode(Ino ino);

    std::optional<uint64_t> allocBlock();
    void freeBlock(uint64_t block);

    /** Map a file byte offset to a data block, allocating if asked. */
    std::optional<uint64_t> bmap(DiskInode &inode, uint64_t file_block,
                                 bool allocate);
    void freeFileBlocks(DiskInode &inode);

    FsStatus dirLookup(Ino dir, const std::string &name, Ino &out);
    FsStatus dirAdd(Ino dir, const std::string &name, Ino target);
    FsStatus dirRemove(Ino dir, const std::string &name);
    bool dirEmpty(Ino dir);

    /** Split "/a/b/c" into parent path and final name. */
    static bool splitPath(const std::string &path, std::string &parent,
                          std::string &name);
    FsStatus resolve(const std::string &path, Ino &out);

    BufferCache &_cache;
    sim::SimContext &_ctx;
    sim::StatHandle _hCreates;
    sim::StatHandle _hUnlinks;
    sim::StatHandle _hBytesRead;
    sim::StatHandle _hBytesWritten;
    Super _super{};
    uint64_t _freeBlocks = 0;
    bool _mounted = false;
};

} // namespace vg::kern

#endif // VG_KERNEL_FS_HH
