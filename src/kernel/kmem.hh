/**
 * @file
 * Instrumented kernel memory access.
 *
 * The core FreeBSD-port substitution (see DESIGN.md): the C++ body of
 * the kernel stands in for code the paper compiles through the SVA
 * translator, so every access it makes to simulated memory flows
 * through this layer, which applies the *same* semantics the sandboxing
 * pass enforces on compiled modules:
 *
 *  - operand addresses are passed through sandboxAddress() (ghost
 *    addresses deflect to their masked alias; SVA-internal addresses
 *    collapse to 0 and fault),
 *  - stores are additionally refused when they physically land in
 *    frames the VM owns (page tables, code, ghost, SVA) — modelling
 *    that SVA never hands the kernel writable mappings of those,
 *  - every access charges the cost model (masking cycles under VG).
 *
 * Kmem also implements the cc::MemPort interface, so loaded kernel
 * modules executing on the simulated CPU share exactly this view.
 */

#ifndef VG_KERNEL_KMEM_HH
#define VG_KERNEL_KMEM_HH

#include "compiler/exec.hh"
#include "hw/cpu.hh"
#include "hw/mmu.hh"
#include "hw/phys_mem.hh"
#include "sim/context.hh"
#include "sva/vm.hh"

namespace vg::kern
{

/** The kernel's (instrumented) window onto simulated memory. */
class Kmem : public cc::MemPort
{
  public:
    Kmem(sim::SimContext &ctx, hw::PhysMem &mem, hw::Mmu &mmu,
         sva::SvaVm &vm);

    /** Attach the machine's vCPU set: translations go through the
     *  *active* CPU's MMU and the last-translation cache is keyed on
     *  the owning vCPU (+ that vCPU's generation counter), so remote
     *  shootdowns invalidate it exactly like local ones. */
    void attachCpus(hw::CpuSet &cpus) { _cpus = &cpus; }

    // ----------------------------------------------------------------
    // cc::MemPort — used by kernel-module code on the simulated CPU.
    // The sandboxing of *module* code happens in its own compiled
    // instructions; this port resolves the (already masked) virtual
    // address. Direct (unmasked) ghost accesses can only come from the
    // native path below, never from instrumented module code.
    // ----------------------------------------------------------------
    bool read(uint64_t va, unsigned bytes, uint64_t &out) override;
    bool write(uint64_t va, unsigned bytes, uint64_t val) override;
    bool copy(uint64_t dst, uint64_t src, uint64_t len) override;

    // ----------------------------------------------------------------
    // Native kernel accessors (the C++ kernel body). These apply the
    // sandbox masking themselves, as compiled instrumentation would.
    // ----------------------------------------------------------------

    /** Kernel load; returns 0 and counts a deflection for ghost
     *  operands, faults (returns false) for SVA-internal operands. */
    bool kread(hw::Vaddr va, unsigned bytes, uint64_t &out);

    /** Kernel store with identical masking semantics. */
    bool kwrite(hw::Vaddr va, unsigned bytes, uint64_t val);

    /** copyin()/copyout() between user VAs and kernel buffers, through
     *  the current address space with *kernel* privilege (as on x86
     *  without SMAP) but sandbox-masked. Bulk-charged. */
    bool copyIn(hw::Vaddr user_va, void *dst, uint64_t len);
    bool copyOut(hw::Vaddr user_va, const void *src, uint64_t len);

    /** Number of sandbox deflections observed (attack telemetry). */
    uint64_t deflections() const { return _deflections; }

  private:
    /** Resolve a (pre-masked) virtual address to a physical address.
     *  Kernel-half addresses use the direct map; user/ghost addresses
     *  walk the current page tables. */
    bool resolve(hw::Vaddr va, hw::Access access, hw::Paddr &pa);

    /**
     * resolve() fronted by the last-translation cache. Cost-identical:
     * the cache only hits when the MMU's TLB entry for the page is
     * provably still installed with the same PTE (checked via the Mmu
     * generation counter), so the tlbHit charge and mmu.tlb_hits bump
     * match what Mmu::translate would have done. Any doubt falls back
     * to the real translate(). Gated on VgConfig::kmemFastPath.
     */
    bool resolveCached(hw::Vaddr va, hw::Access access, hw::Paddr &pa);

    /** Reference byte-at-a-time copy (also the fast path's fallback
     *  for TLB-set-thrashing and physically overlapping chunks). */
    bool copyBytewise(uint64_t dst, uint64_t src, uint64_t len);

    /** True if the kernel may store to the frame containing @p pa. */
    bool storePermitted(hw::Paddr pa);

    /** MMU of the currently executing vCPU (construction MMU when no
     *  CPU set is attached). */
    hw::Mmu &
    curMmu()
    {
        return _cpus ? _cpus->active().mmu() : _mmu;
    }

    /** Last successful user/ghost-half translation. Valid only while
     *  the owning vCPU's Mmu generation is unchanged — a shootdown
     *  from *any* CPU bumps the target's generation, so remote
     *  invalidations kill the cache exactly like local ones. */
    struct TransCache
    {
        bool valid = false;
        /** vCPU whose TLB backed the fill (cache hits require the
         *  access to come from the same vCPU). */
        unsigned cpu = 0;
        uint64_t gen = 0;
        hw::Vaddr vpage = 0;
        hw::Paddr paBase = 0;
        hw::Pte pte = 0;
    };

    sim::SimContext &_ctx;
    hw::PhysMem &_mem;
    hw::Mmu &_mmu;
    sva::SvaVm &_vm;
    hw::CpuSet *_cpus = nullptr;
    uint64_t _deflections = 0;
    TransCache _tc;
    sim::StatHandle _hDeflections;
    sim::StatHandle _hBlockedStores;
    /** Same registry slot Mmu bumps; used for the synthetic per-byte
     *  TLB-hit charges of chunked copies. */
    sim::StatHandle _hTlbHits;
    /** Per-CPU mirrors of mmu.tlb_hits (cpuN.mmu.tlb_hits), bumped
     *  with the rollup so per-CPU sums stay exact; empty on
     *  single-CPU machines. */
    std::vector<sim::StatHandle> _hCpuTlbHits;

    /** Bump the active CPU's tlb-hit mirror alongside the rollup. */
    void
    bumpCpuTlbHits(uint64_t n)
    {
        if (!_hCpuTlbHits.empty())
            sim::StatSet::add(_hCpuTlbHits[_ctx.activeCpu()], n);
    }
};

} // namespace vg::kern

#endif // VG_KERNEL_KMEM_HH
