/**
 * @file
 * System-call implementations (UserApi) and the signal-delivery and
 * user-context-execution paths.
 *
 * Every syscall passes through the SVA gate (Interrupt Context saved
 * into VM memory, registers zeroed — cost-accounted) and a dispatcher
 * that first consults module interpositions, so a loaded rootkit can
 * replace handlers exactly as in S 7 of the paper.
 */

#include <cstring>

#include "kernel/kernel.hh"
#include "sim/log.hh"

namespace vg::kern
{

namespace
{

/** Signal numbers we model. */
constexpr int sigKill = 9;
constexpr int sigTerm = 15;

} // namespace

// --------------------------------------------------------------------
// Gate
// --------------------------------------------------------------------

void
UserApi::sysEnter()
{
    _kernel._vm.syscallEnter(_proc.tid);
    // Trap decode, syscall-table indirection, argument fetch.
    _kernel._ctx.chargeKernelWork(26, 9, 3);
}

void
UserApi::sysExit()
{
    _kernel._vm.syscallExit(_proc.tid);
    _kernel.deliverPushedCalls(_proc, *this);

    if (_proc.killRequested)
        exit(137);

    if (_kernel.curTimer().due()) {
        _kernel.curTimer().acknowledge();
        _kernel._ctx.chargeTrap();
        _kernel.yieldCurrent(_proc);
    }
}

void
Kernel::deliverPushedCalls(Process &proc, UserApi &api)
{
    (void)api;
    sva::SvaThread *t = _vm.thread(proc.tid);
    if (!t)
        return;
    while (!t->pushedCalls.empty()) {
        sva::PushedCall call = t->pushedCalls.front();
        t->pushedCalls.erase(t->pushedCalls.begin());

        // Kernel-side dispatch bookkeeping (sendsig()-style frame
        // setup) is instrumented kernel work.
        _ctx.chargeKernelWork(300, 120, 25);
        auto fn = proc.handlerFns.find(call.handler);
        if (fn != proc.handlerFns.end()) {
            // Legitimate handler: runs as application code.
            fn->second(int(call.arg));
        } else {
            // The OS pushed something that is not a registered
            // handler — only reachable on the baseline kernel.
            executeUserContextCode(proc, call.handler, call.arg);
        }
        // sigreturn(): restore the saved Interrupt Context.
        sva::SvaError err;
        _vm.icontextLoad(proc.tid, &err);
        sim::StatSet::add(_hSignalsDelivered);
    }
}

namespace
{

/** MemPort that accesses memory with *user* privilege through a
 *  process's address space — how injected "user context" exploit code
 *  sees memory. Ghost pages are user-accessible by design; the
 *  protection against this path is that VG never lets it run. */
class UserPort : public cc::MemPort
{
  public:
    UserPort(Kernel &kernel, Process &proc)
        : _kernel(kernel), _proc(proc)
    {}

    bool
    read(uint64_t va, unsigned bytes, uint64_t &out) override
    {
        hw::Paddr pa = 0;
        if (!_kernel.handleUserAccess(_proc, va, hw::Access::Read, pa))
            return false;
        out = 0;
        for (unsigned i = 0; i < bytes; i++)
            out |= uint64_t(_kernel.vm().mem().read8(pa + i))
                   << (8 * i);
        return true;
    }

    bool
    write(uint64_t va, unsigned bytes, uint64_t val) override
    {
        hw::Paddr pa = 0;
        if (!_kernel.handleUserAccess(_proc, va, hw::Access::Write,
                                      pa))
            return false;
        for (unsigned i = 0; i < bytes; i++)
            _kernel.vm().mem().write8(pa + i, uint8_t(val >> (8 * i)));
        return true;
    }

    bool
    copy(uint64_t dst, uint64_t src, uint64_t len) override
    {
        for (uint64_t i = 0; i < len; i++) {
            uint64_t b = 0;
            if (!read(src + i, 1, b) || !write(dst + i, 1, b))
                return false;
        }
        return true;
    }

  private:
    Kernel &_kernel;
    Process &_proc;
};

} // namespace

void
Kernel::executeUserContextCode(Process &proc, uint64_t code_addr,
                               uint64_t arg)
{
    // The extern table must be fully populated before the Executor is
    // constructed: extern callees are interned at predecode time.
    UserPort port(*this, proc);
    cc::ExternTable externs;
    externs.fns["u_write"] =
        [this, &proc](const std::vector<uint64_t> &args) {
            if (args.size() < 3)
                return uint64_t(0);
            int64_t n = doWrite(proc, int(args[0]), args[1],
                                args[2]);
            return uint64_t(n);
        };
    externs.fns["u_log"] =
        [this](const std::vector<uint64_t> &args) {
            _console.write(sim::strprintf(
                "[user-exploit] value=%#lx\n",
                args.empty() ? 0ul : (unsigned long)args[0]));
            return uint64_t(0);
        };

    // Find the module image containing this address.
    for (auto &[name, module] : _modules) {
        if (!module.image->contains(code_addr))
            continue;
        cc::Executor exec(*module.image, port, externs, _ctx,
                          0xffffffb800000000ull, 1 << 20);
        cc::ExecResult r = exec.callAddr(code_addr, {arg});
        _ctx.stats().add("kernel.user_context_injections");
        if (!r.ok)
            sim::debug("injected code fault: %s", r.detail.c_str());
        return;
    }
    _ctx.stats().add("kernel.unresolvable_handlers");
}

// --------------------------------------------------------------------
// Files
// --------------------------------------------------------------------

std::shared_ptr<OpenFile>
Kernel::file(Process &proc, int fd)
{
    _ctx.chargeKernelWork(8, 4, 1); // fd table lookup
    auto it = proc.fds.find(fd);
    return it == proc.fds.end() ? nullptr : it->second;
}

int
UserApi::open(const std::string &path, bool create)
{
    sysEnter();
    Kernel &k = _kernel;
    k._ctx.chargeKernelWork(140, 70, 16); // vnode locks, name cache

    int result = -1;
    Ino ino = 0;
    FsStatus s = k._fs->lookup(path, ino);
    if (s == FsStatus::NotFound && create)
        s = k._fs->create(path, ino);
    if (s == FsStatus::Ok) {
        auto of = std::make_shared<OpenFile>();
        of->kind = OpenFile::Kind::File;
        of->ino = ino;
        int fd = _proc.nextFd++;
        _proc.fds[fd] = of;
        result = fd;
    }
    sysExit();
    return result;
}

int
UserApi::close(int fd)
{
    sysEnter();
    _kernel._ctx.chargeKernelWork(60, 24, 8);
    int result = -1;
    auto it = _proc.fds.find(fd);
    if (it != _proc.fds.end()) {
        auto of = it->second;
        if (of->kind == OpenFile::Kind::Socket && of->sock) {
            // Tear down the connection.
            if (auto peer = of->sock->peer.lock()) {
                peer->peerClosed = true;
                _kernel.wakeup(peer.get());
            }
            if (of->sock->state == Socket::State::Listening)
                _kernel._listeners.erase(of->sock->localPort);
            _kernel.connUnregister(*of->sock);
            of->sock->state = Socket::State::Closed;
        }
        _proc.fds.erase(it);
        result = 0;
    }
    sysExit();
    return result;
}

int64_t
Kernel::doRead(Process &proc, int fd, hw::Vaddr buf, uint64_t len)
{
    auto of = file(proc, fd);
    if (!of)
        return -1;
    if (of->kind == OpenFile::Kind::Socket) {
        std::vector<uint8_t> tmp(len);
        int64_t n = socketRecv(proc, *of->sock, tmp.data(), len);
        if (n > 0 && !_kmem->copyOut(buf, tmp.data(), uint64_t(n)))
            return -1;
        return n;
    }
    std::vector<uint8_t> tmp(len);
    int64_t n = _fs->read(of->ino, of->offset, tmp.data(), len);
    if (n < 0)
        return -1;
    of->offset += uint64_t(n);
    if (n > 0 && !_kmem->copyOut(buf, tmp.data(), uint64_t(n)))
        return -1;
    return n;
}

int64_t
Kernel::doWrite(Process &proc, int fd, hw::Vaddr buf, uint64_t len)
{
    auto of = file(proc, fd);
    if (!of)
        return -1;
    std::vector<uint8_t> tmp(len);
    if (!_kmem->copyIn(buf, tmp.data(), len))
        return -1;
    if (of->kind == OpenFile::Kind::Socket)
        return socketSend(proc, *of->sock, tmp.data(), len);
    int64_t n = _fs->write(of->ino, of->offset, tmp.data(), len);
    if (n > 0)
        of->offset += uint64_t(n);
    return n;
}

int64_t
UserApi::read(int fd, hw::Vaddr buf, uint64_t len)
{
    sysEnter();
    int64_t result;
    // Page in the destination before the kernel writes it (the real
    // kernel faults during copyout; we front-load it).
    for (hw::Vaddr va = hw::pageOf(buf); va < buf + len;
         va += hw::pageSize) {
        hw::Paddr pa;
        _kernel.handleUserAccess(_proc, va, hw::Access::Write, pa);
    }
    std::vector<uint64_t> args = {uint64_t(fd), buf, len, _proc.pid};
    if (!_kernel.moduleDispatch(Sys::read, args, result))
        result = _kernel.doRead(_proc, fd, buf, len);
    sysExit();
    return result;
}

int64_t
UserApi::write(int fd, hw::Vaddr buf, uint64_t len)
{
    sysEnter();
    int64_t result;
    std::vector<uint64_t> args = {uint64_t(fd), buf, len, _proc.pid};
    if (!_kernel.moduleDispatch(Sys::write, args, result))
        result = _kernel.doWrite(_proc, fd, buf, len);
    sysExit();
    return result;
}

int64_t
UserApi::lseek(int fd, int64_t off, int whence)
{
    sysEnter();
    _kernel._ctx.chargeKernelWork(30, 12, 4);
    int64_t result = -1;
    auto of = _kernel.file(_proc, fd);
    if (of && of->kind == OpenFile::Kind::File) {
        FileStat st;
        _kernel._fs->stat(of->ino, st);
        int64_t base = whence == 0   ? 0
                       : whence == 1 ? int64_t(of->offset)
                                     : int64_t(st.size);
        int64_t pos = base + off;
        if (pos >= 0) {
            of->offset = uint64_t(pos);
            result = pos;
        }
    }
    sysExit();
    return result;
}

int
UserApi::unlink(const std::string &path)
{
    sysEnter();
    _kernel._ctx.chargeKernelWork(120, 48, 12);
    FsStatus s = _kernel._fs->unlink(path);
    sysExit();
    return s == FsStatus::Ok ? 0 : -1;
}

int
UserApi::mkdir(const std::string &path)
{
    sysEnter();
    _kernel._ctx.chargeKernelWork(110, 44, 12);
    Ino ino = 0;
    FsStatus s = _kernel._fs->mkdir(path, ino);
    sysExit();
    return s == FsStatus::Ok ? 0 : -1;
}

int
UserApi::stat(const std::string &path, FileStat &out)
{
    sysEnter();
    _kernel._ctx.chargeKernelWork(90, 36, 10);
    Ino ino = 0;
    FsStatus s = _kernel._fs->lookup(path, ino);
    if (s == FsStatus::Ok)
        s = _kernel._fs->stat(ino, out);
    sysExit();
    return s == FsStatus::Ok ? 0 : -1;
}

int
UserApi::fsync(int fd)
{
    sysEnter();
    _kernel._ctx.chargeKernelWork(50, 20, 6);
    int result = -1;
    auto of = _kernel.file(_proc, fd);
    if (of) {
        _kernel._fs->sync();
        result = 0;
    }
    sysExit();
    return result;
}

// --------------------------------------------------------------------
// Memory
// --------------------------------------------------------------------

hw::Vaddr
UserApi::mmap(uint64_t len)
{
    sysEnter();
    _kernel._ctx.chargeKernelWork(160, 88, 21); // vm_map entry insert
    hw::Vaddr result = 0;
    uint64_t npages = (len + hw::pageSize - 1) / hw::pageSize;
    if (npages > 0) {
        hw::Vaddr va = _proc.mmapCursor;
        _proc.mmapCursor += (npages + 1) * hw::pageSize; // guard gap
        _proc.areas[va] = {va, npages};
        result = va;
    }
    sysExit();
    return result;
}

hw::Vaddr
UserApi::mmapFile(int fd, uint64_t len)
{
    sysEnter();
    _kernel._ctx.chargeKernelWork(200, 80, 20); // vnode pager setup
    hw::Vaddr result = 0;
    auto of = _kernel.file(_proc, fd);
    uint64_t npages = (len + hw::pageSize - 1) / hw::pageSize;
    if (of && of->kind == OpenFile::Kind::File && npages > 0) {
        hw::Vaddr va = _proc.mmapCursor;
        _proc.mmapCursor += (npages + 1) * hw::pageSize;
        VmArea area;
        area.start = va;
        area.npages = npages;
        area.backingIno = of->ino;
        area.backingOff = 0;
        _proc.areas[va] = area;
        result = va;
    }
    sysExit();
    return result;
}

int
UserApi::munmap(hw::Vaddr va, uint64_t len)
{
    sysEnter();
    _kernel._ctx.chargeKernelWork(120, 48, 12);
    int result = -1;
    auto it = _proc.areas.find(va);
    uint64_t npages = (len + hw::pageSize - 1) / hw::pageSize;
    if (it != _proc.areas.end() && it->second.npages == npages) {
        sva::SvaError err;
        for (uint64_t i = 0; i < npages; i++) {
            hw::Vaddr page = va + i * hw::pageSize;
            auto pg = _proc.userPages.find(page);
            if (pg != _proc.userPages.end()) {
                hw::Frame frame = pg->second.frame;
                if (_kernel._vm.unmapPage(_proc.rootFrame, page,
                                          &err) &&
                    _kernel._vm.frames()[frame].mapCount == 0)
                    _kernel._frames->free(frame);
                _proc.userPages.erase(pg);
            }
        }
        _proc.areas.erase(it);
        result = 0;
    }
    sysExit();
    return result;
}

bool
UserApi::peek(hw::Vaddr va, unsigned bytes, uint64_t &out)
{
    hw::Paddr pa = 0;
    if (!_kernel.handleUserAccess(_proc, va, hw::Access::Read, pa))
        return false;
    out = 0;
    for (unsigned i = 0; i < bytes; i++)
        out |= uint64_t(_kernel._mem.read8(pa + i)) << (8 * i);
    return true;
}

bool
UserApi::poke(hw::Vaddr va, unsigned bytes, uint64_t val)
{
    hw::Paddr pa = 0;
    if (!_kernel.handleUserAccess(_proc, va, hw::Access::Write, pa))
        return false;
    for (unsigned i = 0; i < bytes; i++)
        _kernel._mem.write8(pa + i, uint8_t(val >> (8 * i)));
    return true;
}

bool
UserApi::copyToUser(hw::Vaddr va, const void *src, uint64_t len)
{
    const uint8_t *in = static_cast<const uint8_t *>(src);
    uint64_t off = 0;
    while (off < len) {
        hw::Paddr pa = 0;
        if (!_kernel.handleUserAccess(_proc, va + off,
                                      hw::Access::Write, pa))
            return false;
        uint64_t chunk = std::min<uint64_t>(
            len - off, hw::pageSize - hw::pageOffset(va + off));
        _kernel._mem.writeBytes(pa, in + off, chunk);
        off += chunk;
    }
    _kernel._ctx.chargeUserWork(len / 16 + 1);
    return true;
}

bool
UserApi::copyFromUser(hw::Vaddr va, void *dst, uint64_t len)
{
    uint8_t *out = static_cast<uint8_t *>(dst);
    uint64_t off = 0;
    while (off < len) {
        hw::Paddr pa = 0;
        if (!_kernel.handleUserAccess(_proc, va + off, hw::Access::Read,
                                      pa))
            return false;
        uint64_t chunk = std::min<uint64_t>(
            len - off, hw::pageSize - hw::pageOffset(va + off));
        _kernel._mem.readBytes(pa, out + off, chunk);
        off += chunk;
    }
    _kernel._ctx.chargeUserWork(len / 16 + 1);
    return true;
}

// --------------------------------------------------------------------
// Ghost memory
// --------------------------------------------------------------------

hw::Vaddr
UserApi::allocGhost(uint64_t npages)
{
    sysEnter(); // allocgm is a VM call but still crosses the gate
    hw::Vaddr va = _proc.ghostCursor;
    // Frame pressure: make room (plus page-table headroom) before the
    // VM starts pulling frames from the allocator.
    _kernel.ensureGhostHeadroom(npages + npages / 512 + 3);
    sva::SvaError err;
    bool ok = _kernel._vm.allocGhostMemory(_proc.pid, _proc.rootFrame,
                                           va, npages, &err);
    if (ok) {
        _proc.ghostCursor += npages * hw::pageSize;
        _kernel.noteGhostAlloc(_proc.pid, va, npages);
    }
    sysExit();
    return ok ? va : 0;
}

bool
UserApi::freeGhost(hw::Vaddr va, uint64_t npages)
{
    sysEnter();
    sva::SvaError err;
    bool ok = _kernel._vm.freeGhostMemory(_proc.pid, _proc.rootFrame,
                                          va, npages, &err);
    if (ok)
        _kernel.noteGhostFree(_proc.pid, va, npages);
    sysExit();
    return ok;
}

bool
UserApi::ghostWrite(hw::Vaddr va, const void *src, uint64_t len)
{
    // Application-side access: user privilege; a fault on a
    // swapped-out ghost page goes to the OS, which asks the VM to
    // verify and restore it (S 3.3).
    const uint8_t *in = static_cast<const uint8_t *>(src);
    uint64_t off = 0;
    while (off < len) {
        auto r = _kernel.curMmu().translate(va + off, hw::Access::Write,
                                            hw::Privilege::User);
        if (!r.ok) {
            _kernel._ctx.chargeTrap();
            if (!_kernel.swapInGhost(_proc.pid,
                                     hw::pageOf(va + off)))
                return false;
            r = _kernel.curMmu().translate(va + off, hw::Access::Write,
                                           hw::Privilege::User);
        }
        if (!r.ok)
            return false;
        uint64_t chunk = std::min<uint64_t>(
            len - off, hw::pageSize - hw::pageOffset(va + off));
        _kernel._mem.writeBytes(r.paddr, in + off, chunk);
        off += chunk;
    }
    _kernel._ctx.chargeUserWork(len / 16 + 1);
    return true;
}

bool
UserApi::ghostRead(hw::Vaddr va, void *dst, uint64_t len)
{
    uint8_t *out = static_cast<uint8_t *>(dst);
    uint64_t off = 0;
    while (off < len) {
        auto r = _kernel.curMmu().translate(va + off, hw::Access::Read,
                                            hw::Privilege::User);
        if (!r.ok) {
            _kernel._ctx.chargeTrap();
            if (!_kernel.swapInGhost(_proc.pid,
                                     hw::pageOf(va + off)))
                return false;
            r = _kernel.curMmu().translate(va + off, hw::Access::Read,
                                           hw::Privilege::User);
        }
        if (!r.ok)
            return false;
        uint64_t chunk = std::min<uint64_t>(
            len - off, hw::pageSize - hw::pageOffset(va + off));
        _kernel._mem.readBytes(r.paddr, out + off, chunk);
        off += chunk;
    }
    _kernel._ctx.chargeUserWork(len / 16 + 1);
    return true;
}

std::optional<crypto::AesKey>
UserApi::getKey()
{
    return _kernel._vm.getKey(_proc.pid);
}

void
UserApi::secureRandom(void *out, size_t len)
{
    _kernel._vm.secureRandom(out, len);
}

void
UserApi::osRandom(void *out, size_t len)
{
    sysEnter();
    _kernel._ctx.chargeKernelWork(40, 16, 4);
    uint8_t *p = static_cast<uint8_t *>(out);
    if (_kernel._ctx.config().secureRng) {
        // VG routes randomness requests to the trusted generator.
        _kernel._vm.secureRandom(out, len);
    } else if (_kernel._rngRigged) {
        // Hostile kernel: predictable bytes (Iago attack on
        // /dev/random, S 2.2.5).
        std::memset(p, 0x41, len);
    } else {
        for (size_t i = 0; i < len; i++) {
            _kernel._osRngState =
                _kernel._osRngState * 6364136223846793005ull +
                1442695040888963407ull;
            p[i] = uint8_t(_kernel._osRngState >> 33);
        }
    }
    sysExit();
}

// --------------------------------------------------------------------
// Processes
// --------------------------------------------------------------------

uint64_t
UserApi::fork(std::function<int(UserApi &)> child_main)
{
    sysEnter();
    Kernel &k = _kernel;
    // proc-table entry, uarea, fd table duplication.
    k._ctx.chargeKernelWork(2200, 900, 180);

    uint64_t child_pid = k._nextPid++;
    auto child_owner = std::make_unique<Process>();
    Process &child = *child_owner;
    child.pid = child_pid;
    child.parent = _proc.pid;
    child.name = _proc.name + "+";
    child.mainFn = std::move(child_main);
    child.state = ProcState::Runnable;
    child.cpu = k._nextCpuAssign++ % k._ctx.vcpuCount();
    child.sigHandlers = _proc.sigHandlers;
    child.handlerFns = _proc.handlerFns;
    child.nextHandlerToken = _proc.nextHandlerToken;
    child.fds = _proc.fds; // shared open-file descriptions
    child.nextFd = _proc.nextFd;

    sva::SvaError err;
    sva::SvaThread *t = k._vm.newThread(child_pid,
                                        0xffffff8000100000ull,
                                        _proc.tid, &err);
    if (!t)
        sim::panic("fork: %s", err.message.c_str());
    child.tid = t->id;

    k.buildAddressSpace(child);
    k.copyAddressSpace(_proc, child);

    Process *cp = &child;
    cp->hostThread = std::thread([&k, cp]() {
        {
            std::unique_lock<std::mutex> lk(k._mtx);
            cp->cv.wait(lk, [&]() { return cp->batonHeld; });
        }
        UserApi api(k, *cp);
        int code = 0;
        try {
            code = cp->mainFn ? cp->mainFn(api) : 0;
        } catch (const ProcessExit &e) {
            code = e.code;
        }
        k.teardownAddressSpace(*cp);
        k._vm.unbindProcess(cp->pid);
        k._vm.destroyThread(cp->tid);
        k.connReapProcess(*cp);
        cp->fds.clear();
        cp->state = ProcState::Zombie;
        k._exitCodes[cp->pid] = code;
        cp->exitCode = code;
        sim::StatSet::add(k._hProcessExits);
        k.wakeup(reinterpret_cast<const void *>(uintptr_t(cp->pid)));
        std::unique_lock<std::mutex> lk(k._mtx);
        cp->batonHeld = false;
        k._schedulerTurn = true;
        k._current = nullptr;
        k._schedCv.notify_all();
    });

    k._procs[child_pid] = std::move(child_owner);
    sim::StatSet::add(k._hForks);
    sysExit();
    return child_pid;
}

int
UserApi::execve(const sva::AppBinary *binary,
                std::function<int(UserApi &)> new_main)
{
    sysEnter();
    Kernel &k = _kernel;
    // Image load: vnode lookup, ELF headers, argument copy.
    k._ctx.chargeKernelWork(5200, 2500, 500);
    // Map a fresh text+stack image (demand-paged) — charge the copy
    // of the program image from the buffer cache.
    k._ctx.chargeKernelBulk(32 * 1024);

    if (binary) {
        sva::SvaError err;
        if (!k._vm.bindProcessToApp(_proc.pid, *binary, &err)) {
            // Validation failure prevents startup (S 4.4).
            sysExit();
            return -1;
        }
    }

    // Reset the address space and Interrupt Context. The old image's
    // ghost memory dies here: clock entries and swap slots go with it.
    sva::SvaError err;
    k._ghostClock.removePid(_proc.pid);
    if (k._swap)
        k._swap->releaseAll(_proc.pid);
    k._vm.reinitIcontext(_proc.tid, 0x400000, 0x7fffffff0000ull,
                         _proc.rootFrame, &err);
    for (const auto &[va, page] : _proc.userPages) {
        if (k._vm.unmapPage(_proc.rootFrame, va, &err) &&
            k._vm.frames()[page.frame].mapCount == 0)
            k._frames->free(page.frame);
    }
    _proc.userPages.clear();
    _proc.areas.clear();
    _proc.mmapCursor = 0x0000100000000000ull;
    _proc.ghostCursor = hw::ghostBase;
    _proc.sigHandlers.clear();
    _proc.handlerFns.clear();
    sim::StatSet::add(k._hExecs);
    sysExit();

    // Run the new image; when it finishes, the process exits.
    int code = new_main(*this);
    exit(code);
}

void
UserApi::exit(int code)
{
    _kernel._ctx.chargeKernelWork(400, 160, 40);
    throw ProcessExit{code};
}

int
UserApi::waitpid(uint64_t pid, int &status)
{
    sysEnter();
    Kernel &k = _kernel;
    k._ctx.chargeKernelWork(80, 32, 10);
    int result = -1;
    while (true) {
        Process *child = k.process(pid);
        if (!child) {
            auto it = k._exitCodes.find(pid);
            if (it != k._exitCodes.end()) {
                status = it->second;
                result = 0;
            }
            break;
        }
        if (child->state == ProcState::Zombie) {
            status = child->exitCode;
            if (child->hostThread.joinable())
                child->hostThread.join();
            child->state = ProcState::Dead;
            result = 0;
            break;
        }
        k.blockCurrent(_proc,
                       reinterpret_cast<const void *>(uintptr_t(pid)));
    }
    sysExit();
    return result;
}

void
Kernel::postSignal(Process &target, int signum)
{
    auto handler = target.sigHandlers.find(signum);
    if (handler != target.sigHandlers.end()) {
        sva::SvaError err;
        // If the victim's register state lives in another vCPU's
        // register file, park it (IPI) before touching its IC —
        // icontextSave refuses to manipulate state it does not hold.
        _vm.parkRemoteThread(target.tid);
        _vm.icontextSave(target.tid, &err);
        if (!_vm.ipushFunction(target.tid, handler->second,
                               uint64_t(signum), &err)) {
            // Refused by the VM: undo the save; the signal is dropped
            // and the victim continues untouched (S 7).
            _vm.icontextLoad(target.tid, &err);
            _ctx.stats().add("kernel.signals_refused");
        }
    } else if (signum == sigKill || signum == sigTerm) {
        target.killRequested = true;
        // Abort whatever sleep the victim is in.
        if (target.state == ProcState::Blocked) {
            target.state = ProcState::Runnable;
            target.waitChannel = nullptr;
            target.multiWait.clear();
            target.wakeTime = 0;
        }
    }
    wakeup(&target);
    wakeup(reinterpret_cast<const void *>(uintptr_t(target.pid)));
}

int
UserApi::kill(uint64_t pid, int signum)
{
    sysEnter();
    _kernel._ctx.chargeKernelWork(90, 36, 10);
    int result = -1;
    Process *target = _kernel.process(pid);
    if (target && target->alive()) {
        _kernel.postSignal(*target, signum);
        result = 0;
    }
    sysExit();
    return result;
}

uint64_t
UserApi::installSignalHandler(int signum,
                              std::function<void(int)> handler,
                              bool permit_with_sva)
{
    sysEnter();
    _kernel._ctx.chargeKernelWork(70, 18, 5); // sigaction bookkeeping
    uint64_t token = _proc.nextHandlerToken;
    _proc.nextHandlerToken += 0x100;
    _proc.handlerFns[token] = std::move(handler);
    _proc.sigHandlers[signum] = token;
    if (permit_with_sva)
        _kernel._vm.permitFunction(_proc.pid, token);
    sysExit();
    return token;
}

// --------------------------------------------------------------------
// Sockets
// --------------------------------------------------------------------

namespace
{

/** Socket receive buffer cap (flow-control window). */
constexpr uint64_t sockWindow = 256 * 1024;

} // namespace

int
UserApi::socket()
{
    sysEnter();
    _kernel._ctx.chargeKernelWork(120, 48, 14);
    auto of = std::make_shared<OpenFile>();
    of->kind = OpenFile::Kind::Socket;
    of->sock = std::make_shared<Socket>();
    int fd = _proc.nextFd++;
    _proc.fds[fd] = of;
    sysExit();
    return fd;
}

int
UserApi::bind(int fd, uint16_t port)
{
    sysEnter();
    _kernel._ctx.chargeKernelWork(60, 24, 8);
    int result = -1;
    auto of = _kernel.file(_proc, fd);
    if (of && of->kind == OpenFile::Kind::Socket) {
        of->sock->localPort = port;
        result = 0;
    }
    sysExit();
    return result;
}

int
UserApi::listen(int fd)
{
    sysEnter();
    _kernel._ctx.chargeKernelWork(60, 24, 8);
    int result = -1;
    auto of = _kernel.file(_proc, fd);
    if (of && of->kind == OpenFile::Kind::Socket &&
        of->sock->localPort != 0) {
        of->sock->state = Socket::State::Listening;
        _kernel._listeners[of->sock->localPort] = of->sock;
        result = 0;
    }
    sysExit();
    return result;
}

int
UserApi::accept(int fd)
{
    sysEnter();
    Kernel &k = _kernel;
    k._ctx.chargeKernelWork(150, 60, 16);
    int result = -1;
    auto of = k.file(_proc, fd);
    if (of && of->kind == OpenFile::Kind::Socket &&
        of->sock->state == Socket::State::Listening) {
        Socket &lsock = *of->sock;
        while (lsock.acceptQueue.empty())
            k.blockCurrent(_proc, &lsock);
        auto conn = lsock.acceptQueue.front();
        lsock.acceptQueue.pop_front();
        // Adopt the established connection by id — an O(1) hash
        // lookup, independent of how many connections are live.
        if (conn->connId != 0) {
            if (auto adopted = k.connLookup(conn->connId))
                conn = adopted;
        }
        auto conn_of = std::make_shared<OpenFile>();
        conn_of->kind = OpenFile::Kind::Socket;
        conn_of->sock = conn;
        int nfd = _proc.nextFd++;
        _proc.fds[nfd] = conn_of;
        result = nfd;
    }
    sysExit();
    return result;
}

int
UserApi::connect(uint16_t port)
{
    sysEnter();
    Kernel &k = _kernel;
    k._ctx.chargeKernelWork(400, 160, 40); // handshake processing
    int result = -1;
    auto it = k._listeners.find(port);
    if (it != k._listeners.end() &&
        it->second->state == Socket::State::Listening) {
        // Model the three-way handshake on the wire; each leg is a
        // synchronous round trip, so the client waits it out.
        for (int leg = 0; leg < 3; leg++) {
            hw::Nic &tx = leg % 2 == 0 ? k._nicA : k._nicB;
            hw::Nic &rx = leg % 2 == 0 ? k._nicB : k._nicA;
            uint64_t ready = tx.send(std::vector<uint8_t>(64, 0));
            rx.receive();
            if (ready > k._ctx.clock().now())
                k._ctx.clock().advance(ready - k._ctx.clock().now());
        }

        auto client = std::make_shared<Socket>();
        auto server = std::make_shared<Socket>();
        client->state = Socket::State::Connected;
        server->state = Socket::State::Connected;
        client->peer = server;
        server->peer = client;
        server->localPort = port;
        // Register the established connection: O(1) hash insert with a
        // free-listed id, no scan of the connection population.
        k.connRegister(server);
        client->connId = server->connId;
        it->second->acceptQueue.push_back(server);
        k.wakeup(it->second.get());

        auto of = std::make_shared<OpenFile>();
        of->kind = OpenFile::Kind::Socket;
        of->sock = client;
        int fd = _proc.nextFd++;
        _proc.fds[fd] = of;
        result = fd;
    }
    sysExit();
    return result;
}

uint64_t
Kernel::ringTransmit(Socket &sock, const std::shared_ptr<Socket> &peer,
                     const uint8_t *data, uint64_t len, bool zero_copy)
{
    (void)sock;
    // Post a descriptor per segment — same segmentation as the legacy
    // path — for as much of @p len as the peer window and the TX ring
    // allow, then cross the device boundary once for the whole batch.
    std::vector<uint64_t> chunks;
    uint64_t queued = 0;
    uint64_t win = peer->pendingBytes;
    while (queued < len && win < sockWindow) {
        uint64_t chunk = std::min<uint64_t>(
            {len - queued, hw::Nic::mtu - 64, sockWindow - win});
        hw::RingDesc d;
        d.len = uint32_t(chunk + 64);
        d.cookie = reinterpret_cast<uint64_t>(peer.get());
        if (zero_copy)
            d.host = data + queued; // bcache buffer handed to the ring
        if (!_nicA.txPost(d))
            break; // ring full: flush this batch, then continue
        chunks.push_back(chunk);
        queued += chunk;
        win += chunk;
    }
    if (chunks.empty())
        return 0;
    _nicA.txDoorbell();
    std::vector<hw::RingCompletion> comps = _nicA.txReapAll();

    uint64_t sent = 0;
    unsigned steer = peer->irqSteer % _softirq.size();
    for (size_t i = 0; i < chunks.size() && i < comps.size(); i++) {
        uint64_t ready_at = comps[i].doneAt;
        _nicB.receive();
        _ctx.chargeKernelWork(240, 96, 24);
        Segment seg;
        seg.data.assign(data + sent, data + sent + chunks[i]);
        seg.readyAt = ready_at;
        peer->rxBuf.push_back(std::move(seg));
        peer->pendingBytes += chunks[i];
        sent += chunks[i];
        // RX interrupt: steered at the consumer's vCPU (flow
        // steering); the bottom half there wakes a reader that went
        // to sleep on the queue. A reader that is awake (or wakes via
        // the send-side notify below) reaps inline, NAPI-style, and
        // the IRQ is acked without a trap charge.
        _nicB.irq().wireTo(steer);
        _nicB.irq().raise(ready_at);
        postSoftirq(steer, ready_at, peer.get());
    }
    return sent;
}

int64_t
Kernel::socketSend(Process &proc, Socket &sock, const uint8_t *data,
                   uint64_t len)
{
    if (sock.state != Socket::State::Connected)
        return -1;
    auto peer = sock.peer.lock();
    if (!peer || peer->peerClosed)
        return -1;

    bool async = _ctx.config().asyncIo;
    uint64_t sent = 0;
    while (sent < len) {
        // Flow control: block while the peer's window is full.
        while (peer->pendingBytes >= sockWindow) {
            if (sock.peerClosed)
                return int64_t(sent);
            blockCurrent(proc, &sock);
        }
        if (async) {
            sent += ringTransmit(sock, peer, data + sent, len - sent,
                                 /*zero_copy=*/false);
            continue;
        }
        uint64_t chunk = std::min<uint64_t>(
            {len - sent, hw::Nic::mtu - 64,
             sockWindow - peer->pendingBytes});
        // Per-packet kernel processing on both sides; wire time is
        // pipelined through the link schedule.
        uint64_t ready_at =
            _nicA.send(std::vector<uint8_t>(size_t(chunk + 64), 0));
        _nicB.receive();
        _ctx.chargeKernelWork(240, 96, 24);
        Segment seg;
        seg.data.assign(data + sent, data + sent + chunk);
        seg.readyAt = ready_at;
        peer->rxBuf.push_back(std::move(seg));
        peer->pendingBytes += chunk;
        sent += chunk;
        wakeup(peer.get());
    }
    sim::StatSet::add(_hNetBytesSent, len);
    return int64_t(sent);
}

int64_t
Kernel::socketRecv(Process &proc, Socket &sock, uint8_t *data,
                   uint64_t len)
{
    if (sock.state != Socket::State::Connected)
        return -1;
    // Steer RX completions at this reader's home vCPU so the softirq
    // bottom half (and its wake) lands on the CPU that will run us.
    sock.irqSteer = proc.cpu;
    while (true) {
        if (!sock.rxBuf.empty()) {
            // If the head segment is still on the wire, sleep until
            // it lands (other processes run meanwhile). Keep the timed
            // block even under asyncIo: the segment's softirq may have
            // already fired on another vCPU's (earlier) clock.
            uint64_t ready_at = sock.rxBuf.front().readyAt;
            if (ready_at <= _ctx.clock().now())
                break;
            blockCurrentTimed(proc, &sock, ready_at);
            continue;
        }
        if (sock.peerClosed)
            return 0; // EOF
        if (proc.killRequested)
            return -1;
        // Empty buffer: any future send posts a softirq at this
        // socket's channel, so an untimed block cannot be lost.
        blockCurrent(proc, &sock);
    }

    uint64_t n = 0;
    while (n < len && !sock.rxBuf.empty()) {
        Segment &seg = sock.rxBuf.front();
        if (seg.readyAt > _ctx.clock().now())
            break; // later segments still in flight
        uint64_t avail = seg.data.size() - seg.offset;
        uint64_t take = std::min(len - n, avail);
        std::memcpy(data + n, seg.data.data() + seg.offset, take);
        seg.offset += take;
        n += take;
        sock.pendingBytes -= take;
        if (seg.offset == seg.data.size())
            sock.rxBuf.pop_front();
    }
    _ctx.chargeKernelWork(120, 48, 12);
    // Window opened: wake a blocked sender.
    if (auto peer = sock.peer.lock())
        wakeup(peer.get());
    return int64_t(n);
}

int64_t
UserApi::send(int fd, hw::Vaddr buf, uint64_t len)
{
    sysEnter();
    int64_t result = -1;
    auto of = _kernel.file(_proc, fd);
    if (of && of->kind == OpenFile::Kind::Socket) {
        std::vector<uint8_t> tmp(len);
        if (_kernel._kmem->copyIn(buf, tmp.data(), len))
            result = _kernel.socketSend(_proc, *of->sock, tmp.data(),
                                        len);
    }
    sysExit();
    return result;
}

int64_t
UserApi::recv(int fd, hw::Vaddr buf, uint64_t len)
{
    sysEnter();
    int64_t result = -1;
    auto of = _kernel.file(_proc, fd);
    if (of && of->kind == OpenFile::Kind::Socket) {
        std::vector<uint8_t> tmp(len);
        int64_t n = _kernel.socketRecv(_proc, *of->sock, tmp.data(),
                                       len);
        if (n >= 0 &&
            (n == 0 ||
             _kernel._kmem->copyOut(buf, tmp.data(), uint64_t(n))))
            result = n;
    }
    sysExit();
    return result;
}

int64_t
UserApi::sendHost(int fd, const void *buf, uint64_t len)
{
    sysEnter();
    _kernel._ctx.chargeKernelBulk(len); // copyin from "user"
    int64_t result = -1;
    auto of = _kernel.file(_proc, fd);
    if (of && of->kind == OpenFile::Kind::Socket)
        result = _kernel.socketSend(
            _proc, *of->sock, static_cast<const uint8_t *>(buf), len);
    sysExit();
    return result;
}

int64_t
UserApi::recvHost(int fd, void *buf, uint64_t len)
{
    sysEnter();
    int64_t result = -1;
    auto of = _kernel.file(_proc, fd);
    if (of && of->kind == OpenFile::Kind::Socket) {
        result = _kernel.socketRecv(_proc, *of->sock,
                                    static_cast<uint8_t *>(buf), len);
        if (result > 0)
            _kernel._ctx.chargeKernelBulk(uint64_t(result));
    }
    sysExit();
    return result;
}

int64_t
UserApi::readHost(int fd, void *buf, uint64_t len)
{
    sysEnter();
    int64_t result = -1;
    Kernel &k = _kernel;
    auto of = k.file(_proc, fd);
    if (of) {
        if (of->kind == OpenFile::Kind::Socket) {
            result = k.socketRecv(_proc, *of->sock,
                                  static_cast<uint8_t *>(buf), len);
            if (result > 0)
                k._ctx.chargeKernelBulk(uint64_t(result));
        } else {
            int64_t n =
                k._fs->read(of->ino, of->offset, buf, len);
            if (n >= 0) {
                of->offset += uint64_t(n);
                if (n > 0)
                    k._ctx.chargeKernelBulk(uint64_t(n)); // copyout
                result = n;
            }
        }
    }
    sysExit();
    return result;
}

int64_t
Kernel::doSendfile(Process &proc, int out_fd, int in_fd, uint64_t len)
{
    auto out = file(proc, out_fd);
    auto in = file(proc, in_fd);
    if (!out || out->kind != OpenFile::Kind::Socket || !out->sock)
        return -1;
    if (!in || in->kind != OpenFile::Kind::File)
        return -1;

    // Zero-copy proof obligation: handing a bcache buffer straight to
    // the NIC ring is safe when kernel memory accesses are already
    // sandboxed away from ghost frames, or when no sandbox is in force
    // at all (native). Without a proof, fall back to the staging copy.
    const sim::VgConfig &cfg = _ctx.config();
    bool zero_copy =
        cfg.asyncIo && (!cfg.sandboxMemory || cfg.verifyMcode);

    std::vector<uint8_t> scratch(64 * 1024);
    uint64_t sent = 0;
    while (sent < len) {
        uint64_t want = std::min<uint64_t>(len - sent, scratch.size());
        int64_t got = _fs->read(in->ino, in->offset, scratch.data(),
                                want);
        if (got < 0)
            return sent ? int64_t(sent) : -1;
        if (got == 0)
            break; // EOF
        in->offset += uint64_t(got);
        _ctx.chargeKernelWork(90, 36, 9); // splice bookkeeping
        if (zero_copy)
            sim::StatSet::add(_hZeroCopySends);
        else
            _ctx.chargeKernelBulk(uint64_t(got)); // staging copy
        int64_t n = socketSend(proc, *out->sock, scratch.data(),
                               uint64_t(got));
        if (n < 0)
            return sent ? int64_t(sent) : -1;
        sent += uint64_t(n);
        if (uint64_t(n) < uint64_t(got))
            break;
    }
    return int64_t(sent);
}

int64_t
UserApi::sendfile(int out_fd, int in_fd, uint64_t len)
{
    sysEnter();
    int64_t result;
    std::vector<uint64_t> args = {uint64_t(out_fd), uint64_t(in_fd),
                                  len, _proc.pid};
    if (!_kernel.moduleDispatch(Sys::sendfile, args, result))
        result = _kernel.doSendfile(_proc, out_fd, in_fd, len);
    sysExit();
    return result;
}

int
UserApi::select(const std::vector<int> &read_fds, uint64_t timeout_us)
{
    sysEnter();
    Kernel &k = _kernel;
    uint64_t deadline =
        k._ctx.clock().now() +
        sim::Cycles(double(timeout_us) * sim::Clock::cyclesPerUsec);

    int ready = 0;
    while (true) {
        ready = 0;
        std::vector<const void *> channels;
        for (int fd : read_fds) {
            // Per-descriptor poll work: this is what LMBench's select
            // benchmark measures.
            k._ctx.chargeKernelWork(28, 6, 1);
            auto of = k.file(_proc, fd);
            if (!of)
                continue;
            if (of->kind == OpenFile::Kind::File) {
                ready++;
            } else if (of->sock) {
                if (of->sock->readReady())
                    ready++;
                else
                    channels.push_back(of->sock.get());
            }
        }
        if (ready > 0 || timeout_us == 0 ||
            k._ctx.clock().now() >= deadline)
            break;
        _proc.multiWait = channels;
        k.blockCurrentTimed(_proc, nullptr, deadline);
        _proc.multiWait.clear();
    }
    sysExit();
    return ready;
}

// --------------------------------------------------------------------
// Misc
// --------------------------------------------------------------------

int
UserApi::getpid()
{
    sysEnter();
    // The null syscall: the gate plus a trivial body.
    _kernel._ctx.chargeKernelWork(6, 2, 1);
    sysExit();
    return int(_proc.pid);
}

void
UserApi::compute(uint64_t insts)
{
    _kernel._ctx.chargeUserWork(insts);
    if (_kernel.curTimer().due()) {
        _kernel.curTimer().acknowledge();
        _kernel._ctx.chargeTrap();
        _kernel.yieldCurrent(_proc);
    }
}

void
UserApi::yield()
{
    _kernel.yieldCurrent(_proc);
}

void
UserApi::log(const std::string &text)
{
    _kernel._console.write(text);
}

} // namespace vg::kern
