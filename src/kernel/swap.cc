#include "kernel/swap.hh"

#include <cstring>

#include "sim/log.hh"

namespace vg::kern
{

SwapArea::SwapArea(hw::Disk &disk, sim::SimContext &ctx,
                   uint64_t first_block, uint64_t num_blocks)
    : _disk(disk), _ctx(ctx), _firstBlock(first_block),
      _slots(num_blocks / blocksPerSlot),
      _hPagesStored(ctx.stats().handle("swap.pages_stored")),
      _hPagesLoaded(ctx.stats().handle("swap.pages_loaded")),
      _hWriteBatches(ctx.stats().handle("swap.write_batches")),
      _hReadClusters(ctx.stats().handle("swap.read_clusters"))
{
    if (first_block + num_blocks > disk.numBlocks())
        sim::fatal("SwapArea: [%lu, %lu) exceeds the disk",
                   (unsigned long)first_block,
                   (unsigned long)(first_block + num_blocks));
}

uint64_t
SwapArea::storeBatch(const std::vector<StoreReq> &reqs)
{
    if (reqs.empty())
        return 0;
    if (reqs.size() > freeSlots())
        return 0; // caller must check freeSlots() before evicting

    // Slot assignment + serialization. Staging buffers must survive
    // until the doorbell (the functional copy happens there).
    struct Staged
    {
        uint32_t slot;
        std::vector<uint8_t> bytes; // padded to blocksPerSlot blocks
    };
    std::vector<Staged> staged;
    staged.reserve(reqs.size());
    for (const StoreReq &req : reqs) {
        // Rotating first-fit keeps assignment deterministic and cheap.
        uint32_t slot = _nextFree;
        while (_slots[slot].used)
            slot = (slot + 1) % _slots.size();
        _nextFree = (slot + 1) % _slots.size();

        std::vector<uint8_t> bytes = req.blob->serialize();
        _staged.erase({req.pid, req.va}); // fresh data supersedes any
                                          // stale prefetch
        SwapSlot &s = _slots[slot];
        s.pid = req.pid;
        s.va = req.va;
        s.gen = req.gen;
        s.len = uint32_t(bytes.size());
        s.used = true;
        _index[{req.pid, req.va}] = slot;
        bytes.resize(blocksPerSlot * hw::Disk::blockSize, 0);
        staged.push_back({slot, std::move(bytes)});
        // Slot-table update: a few kernel memory operations.
        _ctx.chargeKernelWork(8, 4, 0);
    }

    bool ring = _ctx.config().swapFastPath && _ctx.config().asyncIo;
    if (ring) {
        // Batched async writeback: one descriptor per block, one
        // doorbell per batch, no stall — the NCQ queue owns the media
        // latency from here.
        for (const Staged &st : staged) {
            for (uint64_t b = 0; b < blocksPerSlot; b++) {
                hw::RingDesc d;
                d.block = slotToBlock(st.slot) + b;
                d.host = st.bytes.data() + b * hw::Disk::blockSize;
                d.len = hw::Disk::blockSize;
                d.write = true;
                if (!_disk.submit(d)) {
                    // Queue packed: push what's posted, drain, retry.
                    _disk.doorbell();
                    _disk.reapAll();
                    if (!_disk.submit(d)) {
                        _disk.writeBlock(d.block, d.host);
                        continue;
                    }
                }
            }
        }
        _disk.doorbell();
        _disk.reapAll();
    } else {
        for (const Staged &st : staged)
            for (uint64_t b = 0; b < blocksPerSlot; b++)
                _disk.writeBlock(slotToBlock(st.slot) + b,
                                 st.bytes.data() +
                                     b * hw::Disk::blockSize);
    }

    _lastBatchPages = reqs.size();
    sim::StatSet::add(_hPagesStored, reqs.size());
    sim::StatSet::add(_hWriteBatches);
    return reqs.size();
}

std::optional<crypto::SealedBlob>
SwapArea::read(uint64_t pid, hw::Vaddr va)
{
    auto it = _index.find({pid, va});
    if (it == _index.end())
        return std::nullopt;
    const SwapSlot &s = _slots[it->second];

    std::vector<uint8_t> bytes;
    bool ring = _ctx.config().swapFastPath && _ctx.config().asyncIo;
    auto staged = _staged.find({pid, va});
    if (staged != _staged.end()) {
        // A previous cluster already pulled this slot off the media —
        // consume the staged ciphertext, stalling only if its disk
        // read has not completed yet.
        auto &clk = _ctx.clock();
        if (staged->second.readyAt > clk.now())
            clk.advance(staged->second.readyAt - clk.now());
        bytes = std::move(staged->second.bytes);
        _staged.erase(staged);
    } else if (ring) {
        // Swap-in cluster: the faulting slot plus the owner's next
        // slots (va order, not already staged) ride one doorbell. In
        // the deep queue their latencies overlap, so the neighbours
        // are ready essentially when the demanded slot is.
        struct Target
        {
            hw::Vaddr va;
            uint32_t slot;
            std::vector<uint8_t> buf;
        };
        std::vector<Target> targets;
        targets.push_back({va, it->second, {}});
        for (auto n = std::next(it);
             n != _index.end() && n->first.first == pid &&
             targets.size() < readaheadSlots;
             ++n)
            if (!_staged.count(n->first))
                targets.push_back({n->first.second, n->second, {}});

        for (Target &t : targets) {
            t.buf.resize(blocksPerSlot * hw::Disk::blockSize);
            for (uint64_t b = 0; b < blocksPerSlot; b++) {
                hw::RingDesc d;
                d.block = slotToBlock(t.slot) + b;
                d.hostOut = t.buf.data() + b * hw::Disk::blockSize;
                d.len = hw::Disk::blockSize;
                if (!_disk.submit(d)) {
                    _disk.doorbell();
                    _disk.reapAll();
                    if (!_disk.submit(d)) {
                        _disk.readBlock(d.block, d.hostOut);
                        continue;
                    }
                }
            }
        }
        uint64_t done = _disk.doorbell();
        _disk.reapAll();
        auto &clk = _ctx.clock();
        if (done > clk.now())
            clk.advance(done - clk.now());

        bytes = std::move(targets.front().buf);
        for (size_t i = 1; i < targets.size(); i++) {
            _staged[{pid, targets[i].va}] =
                StagedRead{std::move(targets[i].buf), done};
            _ctx.chargeKernelWork(4, 2, 0); // stage-table insert
        }
        if (targets.size() > 1)
            sim::StatSet::add(_hReadClusters);
    } else {
        bytes.resize(blocksPerSlot * hw::Disk::blockSize);
        for (uint64_t b = 0; b < blocksPerSlot; b++)
            _disk.readBlock(slotToBlock(it->second) + b,
                            bytes.data() + b * hw::Disk::blockSize);
    }

    bytes.resize(s.len);
    bool ok = false;
    crypto::SealedBlob blob = crypto::SealedBlob::deserialize(bytes, ok);
    if (!ok)
        return std::nullopt;
    sim::StatSet::add(_hPagesLoaded);
    return blob;
}

void
SwapArea::release(uint64_t pid, hw::Vaddr va)
{
    auto it = _index.find({pid, va});
    if (it == _index.end())
        return;
    _slots[it->second] = SwapSlot{};
    _index.erase(it);
    _staged.erase({pid, va});
    _ctx.chargeKernelWork(6, 3, 0);
}

void
SwapArea::releaseAll(uint64_t pid)
{
    for (auto it = _index.begin(); it != _index.end();) {
        if (it->first.first == pid) {
            _slots[it->second] = SwapSlot{};
            it = _index.erase(it);
        } else {
            ++it;
        }
    }
    for (auto it = _staged.begin(); it != _staged.end();) {
        if (it->first.first == pid)
            it = _staged.erase(it);
        else
            ++it;
    }
}

bool
SwapArea::contains(uint64_t pid, hw::Vaddr va) const
{
    return _index.count({pid, va}) != 0;
}

uint64_t
SwapArea::countFor(uint64_t pid) const
{
    uint64_t n = 0;
    for (const auto &[key, slot] : _index)
        n += key.first == pid ? 1 : 0;
    return n;
}

std::optional<uint64_t>
SwapArea::slotBlock(uint64_t pid, hw::Vaddr va) const
{
    auto it = _index.find({pid, va});
    if (it == _index.end())
        return std::nullopt;
    return slotToBlock(it->second);
}

// --------------------------------------------------------------------
// GhostClock
// --------------------------------------------------------------------

void
GhostClock::insert(uint64_t pid, hw::Vaddr va)
{
    Page p{pid, va};
    if (_pos.count(p))
        return;
    // New pages join just behind the hand: the full sweep passes them
    // last, matching the classic clock's insertion point.
    auto it = _ring.insert(
        _hand == _ring.end() ? _ring.end() : _hand, p);
    _pos[p] = it;
    if (_hand == _ring.end())
        _hand = it;
}

void
GhostClock::remove(uint64_t pid, hw::Vaddr va)
{
    auto it = _pos.find({pid, va});
    if (it == _pos.end())
        return;
    if (_hand == it->second)
        advanceHand();
    if (_hand == it->second) // it was the only element
        _hand = _ring.end();
    _ring.erase(it->second);
    _pos.erase(it);
}

void
GhostClock::removePid(uint64_t pid)
{
    for (auto it = _ring.begin(); it != _ring.end();) {
        if (it->first == pid) {
            if (_hand == it)
                advanceHand();
            if (_hand == it)
                _hand = _ring.end();
            _pos.erase(*it);
            it = _ring.erase(it);
        } else {
            ++it;
        }
    }
    if (_ring.empty())
        _hand = _ring.end();
}

void
GhostClock::advanceHand()
{
    if (_ring.empty()) {
        _hand = _ring.end();
        return;
    }
    ++_hand;
    if (_hand == _ring.end())
        _hand = _ring.begin();
}

std::optional<GhostClock::Page>
GhostClock::handPage() const
{
    if (_hand == _ring.end())
        return std::nullopt;
    return *_hand;
}

std::vector<GhostClock::Page>
GhostClock::pickVictims(
    uint64_t want,
    const std::function<bool(uint64_t, hw::Vaddr)> &referenced)
{
    std::vector<Page> victims;
    if (_ring.empty() || want == 0)
        return victims;
    // Two full sweeps bound the scan: the first clears reference bits,
    // so the second meets every surviving page unreferenced.
    size_t scans = 2 * _ring.size();
    while (victims.size() < want && scans-- > 0 && !_ring.empty()) {
        if (_hand == _ring.end())
            _hand = _ring.begin();
        Page p = *_hand;
        if (referenced(p.first, p.second)) {
            advanceHand(); // second chance
            continue;
        }
        auto dead = _hand;
        advanceHand();
        if (_hand == dead)
            _hand = _ring.end();
        _ring.erase(dead);
        _pos.erase(p);
        victims.push_back(p);
    }
    return victims;
}

} // namespace vg::kern
