#include "kernel/bcache.hh"

#include <algorithm>

namespace vg::kern
{

BufferCache::BufferCache(hw::Disk &disk, sim::SimContext &ctx,
                         uint64_t capacity_blocks)
    : _disk(disk), _ctx(ctx), _capacity(capacity_blocks),
      _hHits(ctx.stats().handle("bcache.hits")),
      _hMisses(ctx.stats().handle("bcache.misses")),
      _hZeroFills(ctx.stats().handle("bcache.zero_fills")),
      _hWritebacks(ctx.stats().handle("bcache.writebacks"))
{}

Buf *
BufferCache::get(uint64_t block_no)
{
    // Hash lookup + LRU maintenance: a handful of instrumented
    // kernel memory operations.
    _ctx.chargeKernelWork(10, 5, 1);

    auto it = _index.find(block_no);
    if (it != _index.end()) {
        _hits++;
        sim::StatSet::add(_hHits);
        _lru.splice(_lru.begin(), _lru, it->second);
        return &*_lru.begin();
    }

    _misses++;
    sim::StatSet::add(_hMisses);
    evictIfNeeded();

    Buf buf;
    buf.blockNo = block_no;
    buf.data.resize(hw::Disk::blockSize);
    _disk.readBlock(block_no, buf.data.data());
    _lru.push_front(std::move(buf));
    _index[block_no] = _lru.begin();
    return &*_lru.begin();
}

Buf *
BufferCache::getZeroed(uint64_t block_no)
{
    _ctx.chargeKernelWork(10, 5, 1);
    auto it = _index.find(block_no);
    if (it != _index.end()) {
        _hits++;
        sim::StatSet::add(_hHits);
        _lru.splice(_lru.begin(), _lru, it->second);
        Buf *buf = &*_lru.begin();
        std::fill(buf->data.begin(), buf->data.end(), 0);
        buf->dirty = true;
        return buf;
    }
    _misses++;
    sim::StatSet::add(_hMisses);
    evictIfNeeded();
    Buf buf;
    buf.blockNo = block_no;
    buf.data.assign(hw::Disk::blockSize, 0);
    buf.dirty = true;
    _lru.push_front(std::move(buf));
    _index[block_no] = _lru.begin();
    sim::StatSet::add(_hZeroFills);
    return &*_lru.begin();
}

void
BufferCache::dropAll()
{
    sync();
    _lru.clear();
    _index.clear();
}

void
BufferCache::evictIfNeeded()
{
    while (_lru.size() >= _capacity) {
        Buf &victim = _lru.back();
        if (victim.dirty)
            writeback(victim);
        _index.erase(victim.blockNo);
        _lru.pop_back();
    }
}

void
BufferCache::writeback(Buf &buf)
{
    _disk.writeBlock(buf.blockNo, buf.data.data());
    buf.dirty = false;
    sim::StatSet::add(_hWritebacks);
}

void
BufferCache::sync()
{
    for (Buf &buf : _lru) {
        if (buf.dirty)
            writeback(buf);
    }
}

void
BufferCache::invalidate(uint64_t block_no)
{
    auto it = _index.find(block_no);
    if (it == _index.end())
        return;
    _lru.erase(it->second);
    _index.erase(it);
}

} // namespace vg::kern
