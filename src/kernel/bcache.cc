#include "kernel/bcache.hh"

#include <algorithm>

namespace vg::kern
{

BufferCache::BufferCache(hw::Disk &disk, sim::SimContext &ctx,
                         uint64_t capacity_blocks)
    : _disk(disk), _ctx(ctx), _capacity(capacity_blocks),
      _hHits(ctx.stats().handle("bcache.hits")),
      _hMisses(ctx.stats().handle("bcache.misses")),
      _hZeroFills(ctx.stats().handle("bcache.zero_fills")),
      _hWritebacks(ctx.stats().handle("bcache.writebacks"))
{}

Buf *
BufferCache::get(uint64_t block_no)
{
    // Hash lookup + LRU maintenance: a handful of instrumented
    // kernel memory operations.
    _ctx.chargeKernelWork(10, 5, 1);

    auto it = _index.find(block_no);
    if (it != _index.end()) {
        _hits++;
        sim::StatSet::add(_hHits);
        _lru.splice(_lru.begin(), _lru, it->second);
        return &*_lru.begin();
    }

    _misses++;
    sim::StatSet::add(_hMisses);
    evictIfNeeded();

    Buf buf;
    buf.blockNo = block_no;
    buf.data.resize(hw::Disk::blockSize);
    _lru.push_front(std::move(buf));
    _index[block_no] = _lru.begin();
    Buf *nb = &*_lru.begin();
    if (_ctx.config().asyncIo)
        ringRead(*nb);
    else
        _disk.readBlock(block_no, nb->data.data());
    return nb;
}

void
BufferCache::ringRead(Buf &buf)
{
    hw::RingDesc d;
    d.block = buf.blockNo;
    d.hostOut = buf.data.data();
    d.len = hw::Disk::blockSize;
    if (!_disk.submit(d)) {
        // Ring packed with unreaped writeback slots: drain and retry.
        _disk.reapAll();
        if (!_disk.submit(d)) {
            _disk.readBlock(buf.blockNo, buf.data.data());
            return;
        }
    }
    uint64_t done = _disk.doorbell();
    _disk.reapAll();
    // The caller needs the bytes now: stall to the completion. The
    // win stays with writebacks, which never stall.
    auto &clk = _ctx.clock();
    if (done > clk.now())
        clk.advance(done - clk.now());
}

Buf *
BufferCache::getZeroed(uint64_t block_no)
{
    _ctx.chargeKernelWork(10, 5, 1);
    auto it = _index.find(block_no);
    if (it != _index.end()) {
        _hits++;
        sim::StatSet::add(_hHits);
        _lru.splice(_lru.begin(), _lru, it->second);
        Buf *buf = &*_lru.begin();
        std::fill(buf->data.begin(), buf->data.end(), 0);
        buf->dirty = true;
        return buf;
    }
    _misses++;
    sim::StatSet::add(_hMisses);
    evictIfNeeded();
    Buf buf;
    buf.blockNo = block_no;
    buf.data.assign(hw::Disk::blockSize, 0);
    buf.dirty = true;
    _lru.push_front(std::move(buf));
    _index[block_no] = _lru.begin();
    sim::StatSet::add(_hZeroFills);
    return &*_lru.begin();
}

void
BufferCache::dropAll()
{
    sync();
    _lru.clear();
    _index.clear();
}

void
BufferCache::evictIfNeeded()
{
    while (_lru.size() >= _capacity) {
        Buf &victim = _lru.back();
        if (victim.dirty)
            writeback(victim);
        _index.erase(victim.blockNo);
        _lru.pop_back();
    }
}

void
BufferCache::writeback(Buf &buf)
{
    if (_ctx.config().asyncIo) {
        // Fire-and-forget through the disk request queue: the bytes
        // cross into the device at the doorbell; the CPU does not
        // stall for the media latency. sync() is the barrier.
        hw::RingDesc d;
        d.block = buf.blockNo;
        d.host = buf.data.data();
        d.len = hw::Disk::blockSize;
        d.write = true;
        if (!_disk.submit(d)) {
            _disk.reapAll();
            if (!_disk.submit(d)) {
                _disk.writeBlock(buf.blockNo, buf.data.data());
                buf.dirty = false;
                sim::StatSet::add(_hWritebacks);
                return;
            }
        }
        uint64_t done = _disk.doorbell();
        _disk.reapAll();
        _flushDone = std::max(_flushDone, done);
    } else {
        _disk.writeBlock(buf.blockNo, buf.data.data());
    }
    buf.dirty = false;
    sim::StatSet::add(_hWritebacks);
}

void
BufferCache::sync()
{
    for (Buf &buf : _lru) {
        if (buf.dirty)
            writeback(buf);
    }
    // Durability barrier: an fsync-style caller must not return before
    // the queued writebacks hit the media. Deep NCQ means the whole
    // batch completes one request-latency after the last doorbell.
    auto &clk = _ctx.clock();
    if (_ctx.config().asyncIo && _flushDone > clk.now())
        clk.advance(_flushDone - clk.now());
}

void
BufferCache::invalidate(uint64_t block_no)
{
    auto it = _index.find(block_no);
    if (it == _index.end())
        return;
    _lru.erase(it->second);
    _index.erase(it);
}

} // namespace vg::kern
