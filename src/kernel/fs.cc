#include "kernel/fs.hh"

#include <cstring>

#include "sim/log.hh"

namespace vg::kern
{

const char *
fsStatusName(FsStatus status)
{
    switch (status) {
      case FsStatus::Ok:
        return "ok";
      case FsStatus::NotFound:
        return "not-found";
      case FsStatus::Exists:
        return "exists";
      case FsStatus::NotDir:
        return "not-a-directory";
      case FsStatus::IsDir:
        return "is-a-directory";
      case FsStatus::NoSpace:
        return "no-space";
      case FsStatus::NotEmpty:
        return "not-empty";
      case FsStatus::Invalid:
        return "invalid";
    }
    return "?";
}

Fs::Fs(BufferCache &cache, sim::SimContext &ctx, uint64_t disk_blocks)
    : _cache(cache), _ctx(ctx),
      _hCreates(ctx.stats().handle("fs.creates")),
      _hUnlinks(ctx.stats().handle("fs.unlinks")),
      _hBytesRead(ctx.stats().handle("fs.bytes_read")),
      _hBytesWritten(ctx.stats().handle("fs.bytes_written"))
{
    // Size the regions: ~1 inode per 8 data blocks, min 64 inodes.
    uint64_t inode_blocks =
        std::max<uint64_t>(2, disk_blocks / (8 * inodesPerBlock));
    uint64_t bitmap_blocks = (disk_blocks + 8 * 4096 - 1) / (8 * 4096);

    _super.magic = magicValue;
    _super.nblocks = disk_blocks;
    _super.bitmapStart = 1;
    _super.bitmapBlocks = bitmap_blocks;
    _super.inodeStart = 1 + bitmap_blocks;
    _super.inodeBlocks = inode_blocks;
    _super.dataStart = _super.inodeStart + inode_blocks;
}

void
Fs::mkfs()
{
    // Zero metadata regions.
    for (uint64_t b = 0; b < _super.dataStart; b++) {
        Buf *buf = _cache.get(b);
        std::memset(buf->data.data(), 0, buf->data.size());
        _cache.markDirty(buf);
    }

    // Superblock.
    Buf *sb = _cache.get(0);
    std::memcpy(sb->data.data(), &_super, sizeof(_super));
    _cache.markDirty(sb);

    _freeBlocks = _super.nblocks - _super.dataStart;
    _mounted = true;

    // Root directory (inode 1).
    DiskInode root{};
    root.type = uint16_t(FileType::Directory);
    root.nlink = 1;
    storeInode(1, root);
    _cache.sync();
}

bool
Fs::mount()
{
    Buf *sb = _cache.get(0);
    Super on_disk{};
    std::memcpy(&on_disk, sb->data.data(), sizeof(on_disk));
    if (on_disk.magic != magicValue)
        return false;
    _super = on_disk;

    // Count free blocks from the bitmap.
    _freeBlocks = 0;
    for (uint64_t b = _super.dataStart; b < _super.nblocks; b++) {
        Buf *bm = _cache.get(_super.bitmapStart + b / (8 * 4096));
        uint64_t bit = b % (8 * 4096);
        if (!(bm->data[bit / 8] & (1 << (bit % 8))))
            _freeBlocks++;
    }
    _mounted = true;
    return true;
}

// --------------------------------------------------------------------
// Inode table
// --------------------------------------------------------------------

Fs::DiskInode
Fs::loadInode(Ino ino)
{
    _ctx.chargeKernelWork(16, 8, 1);
    Buf *buf = _cache.get(_super.inodeStart + ino / inodesPerBlock);
    DiskInode inode{};
    std::memcpy(&inode,
                buf->data.data() + (ino % inodesPerBlock) * 128,
                sizeof(inode));
    return inode;
}

void
Fs::storeInode(Ino ino, const DiskInode &inode)
{
    _ctx.chargeKernelWork(16, 8, 1);
    Buf *buf = _cache.get(_super.inodeStart + ino / inodesPerBlock);
    std::memcpy(buf->data.data() + (ino % inodesPerBlock) * 128,
                &inode, sizeof(inode));
    _cache.markDirty(buf);
}

Ino
Fs::allocInode(FileType type)
{
    uint64_t max_ino = _super.inodeBlocks * inodesPerBlock;
    for (Ino ino = 1; ino < max_ino; ino++) {
        DiskInode inode = loadInode(ino);
        if (inode.type == uint16_t(FileType::Free)) {
            DiskInode fresh{};
            fresh.type = uint16_t(type);
            fresh.nlink = 1;
            storeInode(ino, fresh);
            return ino;
        }
    }
    return 0;
}

void
Fs::freeInode(Ino ino)
{
    DiskInode inode{};
    storeInode(ino, inode);
}

// --------------------------------------------------------------------
// Block allocation
// --------------------------------------------------------------------

std::optional<uint64_t>
Fs::allocBlock()
{
    _ctx.chargeKernelWork(30, 16, 2);
    for (uint64_t b = _super.dataStart; b < _super.nblocks; b++) {
        Buf *bm = _cache.get(_super.bitmapStart + b / (8 * 4096));
        uint64_t bit = b % (8 * 4096);
        uint8_t &byte = bm->data[bit / 8];
        if (!(byte & (1 << (bit % 8)))) {
            byte |= uint8_t(1 << (bit % 8));
            _cache.markDirty(bm);
            _freeBlocks--;
            // Fresh blocks are zero-filled in the cache; no read.
            _cache.getZeroed(b);
            return b;
        }
    }
    return std::nullopt;
}

void
Fs::freeBlock(uint64_t block)
{
    _ctx.chargeKernelWork(12, 6, 1);
    Buf *bm = _cache.get(_super.bitmapStart + block / (8 * 4096));
    uint64_t bit = block % (8 * 4096);
    bm->data[bit / 8] &= uint8_t(~(1 << (bit % 8)));
    _cache.markDirty(bm);
    _freeBlocks++;
}

// --------------------------------------------------------------------
// Block mapping
// --------------------------------------------------------------------

std::optional<uint64_t>
Fs::bmap(DiskInode &inode, uint64_t file_block, bool allocate)
{
    _ctx.chargeKernelWork(8, 4, 1);

    auto get_slot = [&](uint64_t *slot) -> std::optional<uint64_t> {
        if (*slot == 0) {
            if (!allocate)
                return std::nullopt;
            auto fresh = allocBlock();
            if (!fresh)
                return std::nullopt;
            *slot = *fresh;
        }
        return *slot;
    };

    if (file_block < 10)
        return get_slot(&inode.direct[file_block]);

    file_block -= 10;
    if (file_block < ptrsPerBlock) {
        auto ind = get_slot(&inode.indirect);
        if (!ind)
            return std::nullopt;
        Buf *buf = _cache.get(*ind);
        uint64_t *slots = reinterpret_cast<uint64_t *>(buf->data.data());
        uint64_t before = slots[file_block];
        auto result = get_slot(&slots[file_block]);
        if (slots[file_block] != before)
            _cache.markDirty(buf);
        return result;
    }

    file_block -= ptrsPerBlock;
    if (file_block < ptrsPerBlock * ptrsPerBlock) {
        auto dind = get_slot(&inode.dindirect);
        if (!dind)
            return std::nullopt;
        Buf *l1 = _cache.get(*dind);
        uint64_t *l1_slots =
            reinterpret_cast<uint64_t *>(l1->data.data());
        uint64_t idx1 = file_block / ptrsPerBlock;
        uint64_t before1 = l1_slots[idx1];
        auto mid = get_slot(&l1_slots[idx1]);
        if (l1_slots[idx1] != before1)
            _cache.markDirty(l1);
        if (!mid)
            return std::nullopt;
        Buf *l2 = _cache.get(*mid);
        uint64_t *l2_slots =
            reinterpret_cast<uint64_t *>(l2->data.data());
        uint64_t idx2 = file_block % ptrsPerBlock;
        uint64_t before2 = l2_slots[idx2];
        auto result = get_slot(&l2_slots[idx2]);
        if (l2_slots[idx2] != before2)
            _cache.markDirty(l2);
        return result;
    }
    return std::nullopt; // beyond max file size
}

void
Fs::freeFileBlocks(DiskInode &inode)
{
    for (uint64_t i = 0; i < 10; i++) {
        if (inode.direct[i]) {
            freeBlock(inode.direct[i]);
            inode.direct[i] = 0;
        }
    }
    if (inode.indirect) {
        Buf *buf = _cache.get(inode.indirect);
        uint64_t *slots = reinterpret_cast<uint64_t *>(buf->data.data());
        for (uint64_t i = 0; i < ptrsPerBlock; i++) {
            if (slots[i])
                freeBlock(slots[i]);
        }
        freeBlock(inode.indirect);
        inode.indirect = 0;
    }
    if (inode.dindirect) {
        Buf *l1 = _cache.get(inode.dindirect);
        std::vector<uint64_t> l1_copy(ptrsPerBlock);
        std::memcpy(l1_copy.data(), l1->data.data(), 4096);
        for (uint64_t i = 0; i < ptrsPerBlock; i++) {
            if (!l1_copy[i])
                continue;
            Buf *l2 = _cache.get(l1_copy[i]);
            uint64_t *slots =
                reinterpret_cast<uint64_t *>(l2->data.data());
            for (uint64_t j = 0; j < ptrsPerBlock; j++) {
                if (slots[j])
                    freeBlock(slots[j]);
            }
            freeBlock(l1_copy[i]);
        }
        freeBlock(inode.dindirect);
        inode.dindirect = 0;
    }
    inode.size = 0;
}

// --------------------------------------------------------------------
// Directories
// --------------------------------------------------------------------

FsStatus
Fs::dirLookup(Ino dir, const std::string &name, Ino &out)
{
    DiskInode inode = loadInode(dir);
    if (inode.type != uint16_t(FileType::Directory))
        return FsStatus::NotDir;

    uint64_t entries = inode.size / sizeof(DirEnt);
    for (uint64_t i = 0; i < entries; i++) {
        // Each entry scanned is instrumented kernel work.
        _ctx.chargeKernelWork(7, 4, 0);
        DirEnt ent{};
        auto block = bmap(inode, i * sizeof(DirEnt) / 4096, false);
        if (!block)
            return FsStatus::Invalid;
        Buf *buf = _cache.get(*block);
        std::memcpy(&ent,
                    buf->data.data() + (i * sizeof(DirEnt)) % 4096,
                    sizeof(ent));
        if (ent.ino != 0 && ent.nameLen == name.size() &&
            std::memcmp(ent.name, name.data(), name.size()) == 0) {
            out = ent.ino;
            return FsStatus::Ok;
        }
    }
    return FsStatus::NotFound;
}

FsStatus
Fs::dirAdd(Ino dir, const std::string &name, Ino target)
{
    if (name.empty() || name.size() > 58)
        return FsStatus::Invalid;
    DiskInode inode = loadInode(dir);
    if (inode.type != uint16_t(FileType::Directory))
        return FsStatus::NotDir;

    DirEnt ent{};
    ent.ino = target;
    ent.nameLen = uint16_t(name.size());
    std::memcpy(ent.name, name.data(), name.size());

    // Reuse a free slot if there is one.
    uint64_t entries = inode.size / sizeof(DirEnt);
    for (uint64_t i = 0; i < entries; i++) {
        _ctx.chargeKernelWork(6, 3, 0);
        auto block = bmap(inode, i * sizeof(DirEnt) / 4096, false);
        if (!block)
            return FsStatus::Invalid;
        Buf *buf = _cache.get(*block);
        DirEnt *slot = reinterpret_cast<DirEnt *>(
            buf->data.data() + (i * sizeof(DirEnt)) % 4096);
        if (slot->ino == 0) {
            *slot = ent;
            _cache.markDirty(buf);
            return FsStatus::Ok;
        }
    }

    // Append.
    auto block = bmap(inode, entries * sizeof(DirEnt) / 4096, true);
    if (!block)
        return FsStatus::NoSpace;
    Buf *buf = _cache.get(*block);
    std::memcpy(buf->data.data() + (entries * sizeof(DirEnt)) % 4096,
                &ent, sizeof(ent));
    _cache.markDirty(buf);
    inode.size += sizeof(DirEnt);
    storeInode(dir, inode);
    return FsStatus::Ok;
}

FsStatus
Fs::dirRemove(Ino dir, const std::string &name)
{
    DiskInode inode = loadInode(dir);
    if (inode.type != uint16_t(FileType::Directory))
        return FsStatus::NotDir;

    uint64_t entries = inode.size / sizeof(DirEnt);
    for (uint64_t i = 0; i < entries; i++) {
        _ctx.chargeKernelWork(6, 3, 0);
        auto block = bmap(inode, i * sizeof(DirEnt) / 4096, false);
        if (!block)
            return FsStatus::Invalid;
        Buf *buf = _cache.get(*block);
        DirEnt *slot = reinterpret_cast<DirEnt *>(
            buf->data.data() + (i * sizeof(DirEnt)) % 4096);
        if (slot->ino != 0 && slot->nameLen == name.size() &&
            std::memcmp(slot->name, name.data(), name.size()) == 0) {
            slot->ino = 0;
            _cache.markDirty(buf);
            return FsStatus::Ok;
        }
    }
    return FsStatus::NotFound;
}

bool
Fs::dirEmpty(Ino dir)
{
    DiskInode inode = loadInode(dir);
    uint64_t entries = inode.size / sizeof(DirEnt);
    for (uint64_t i = 0; i < entries; i++) {
        auto block = bmap(inode, i * sizeof(DirEnt) / 4096, false);
        if (!block)
            return true;
        Buf *buf = _cache.get(*block);
        const DirEnt *slot = reinterpret_cast<const DirEnt *>(
            buf->data.data() + (i * sizeof(DirEnt)) % 4096);
        if (slot->ino != 0)
            return false;
    }
    return true;
}

// --------------------------------------------------------------------
// Paths
// --------------------------------------------------------------------

bool
Fs::splitPath(const std::string &path, std::string &parent,
              std::string &name)
{
    if (path.empty() || path[0] != '/')
        return false;
    size_t last = path.find_last_of('/');
    name = path.substr(last + 1);
    if (name.empty())
        return false;
    parent = last == 0 ? "/" : path.substr(0, last);
    return true;
}

FsStatus
Fs::resolve(const std::string &path, Ino &out)
{
    if (path.empty() || path[0] != '/')
        return FsStatus::Invalid;
    Ino cur = 1;
    size_t pos = 1;
    while (pos < path.size()) {
        size_t next = path.find('/', pos);
        if (next == std::string::npos)
            next = path.size();
        std::string comp = path.substr(pos, next - pos);
        if (!comp.empty()) {
            FsStatus s = dirLookup(cur, comp, cur);
            if (s != FsStatus::Ok)
                return s;
        }
        pos = next + 1;
    }
    out = cur;
    return FsStatus::Ok;
}

FsStatus
Fs::lookup(const std::string &path, Ino &out)
{
    return resolve(path, out);
}

FsStatus
Fs::create(const std::string &path, Ino &out)
{
    std::string parent_path, name;
    if (!splitPath(path, parent_path, name))
        return FsStatus::Invalid;
    Ino parent = 0;
    FsStatus s = resolve(parent_path, parent);
    if (s != FsStatus::Ok)
        return s;
    Ino existing = 0;
    if (dirLookup(parent, name, existing) == FsStatus::Ok)
        return FsStatus::Exists;

    Ino ino = allocInode(FileType::Regular);
    if (ino == 0)
        return FsStatus::NoSpace;
    s = dirAdd(parent, name, ino);
    if (s != FsStatus::Ok) {
        freeInode(ino);
        return s;
    }
    sim::StatSet::add(_hCreates);
    out = ino;
    return FsStatus::Ok;
}

FsStatus
Fs::mkdir(const std::string &path, Ino &out)
{
    std::string parent_path, name;
    if (!splitPath(path, parent_path, name))
        return FsStatus::Invalid;
    Ino parent = 0;
    FsStatus s = resolve(parent_path, parent);
    if (s != FsStatus::Ok)
        return s;
    Ino existing = 0;
    if (dirLookup(parent, name, existing) == FsStatus::Ok)
        return FsStatus::Exists;

    Ino ino = allocInode(FileType::Directory);
    if (ino == 0)
        return FsStatus::NoSpace;
    s = dirAdd(parent, name, ino);
    if (s != FsStatus::Ok) {
        freeInode(ino);
        return s;
    }
    out = ino;
    return FsStatus::Ok;
}

FsStatus
Fs::unlink(const std::string &path)
{
    std::string parent_path, name;
    if (!splitPath(path, parent_path, name))
        return FsStatus::Invalid;
    Ino parent = 0;
    FsStatus s = resolve(parent_path, parent);
    if (s != FsStatus::Ok)
        return s;
    Ino ino = 0;
    s = dirLookup(parent, name, ino);
    if (s != FsStatus::Ok)
        return s;

    DiskInode inode = loadInode(ino);
    if (inode.type == uint16_t(FileType::Directory) && !dirEmpty(ino))
        return FsStatus::NotEmpty;

    s = dirRemove(parent, name);
    if (s != FsStatus::Ok)
        return s;
    freeFileBlocks(inode);
    freeInode(ino);
    sim::StatSet::add(_hUnlinks);
    return FsStatus::Ok;
}

FsStatus
Fs::readdir(Ino dir, std::vector<std::string> &names)
{
    DiskInode inode = loadInode(dir);
    if (inode.type != uint16_t(FileType::Directory))
        return FsStatus::NotDir;
    uint64_t entries = inode.size / sizeof(DirEnt);
    for (uint64_t i = 0; i < entries; i++) {
        _ctx.chargeKernelWork(6, 3, 0);
        auto block = bmap(inode, i * sizeof(DirEnt) / 4096, false);
        if (!block)
            break;
        Buf *buf = _cache.get(*block);
        const DirEnt *ent = reinterpret_cast<const DirEnt *>(
            buf->data.data() + (i * sizeof(DirEnt)) % 4096);
        if (ent->ino != 0)
            names.emplace_back(ent->name, ent->nameLen);
    }
    return FsStatus::Ok;
}

FsStatus
Fs::stat(Ino ino, FileStat &out)
{
    DiskInode inode = loadInode(ino);
    if (inode.type == uint16_t(FileType::Free))
        return FsStatus::NotFound;
    out.ino = ino;
    out.type = FileType(inode.type);
    out.size = inode.size;
    out.nlink = inode.nlink;
    return FsStatus::Ok;
}

int64_t
Fs::read(Ino ino, uint64_t off, void *buf, uint64_t len)
{
    DiskInode inode = loadInode(ino);
    if (inode.type == uint16_t(FileType::Free))
        return -1;
    if (off >= inode.size)
        return 0;
    len = std::min(len, inode.size - off);
    _ctx.chargeKernelBulk(len);

    uint8_t *out = static_cast<uint8_t *>(buf);
    uint64_t done = 0;
    while (done < len) {
        uint64_t pos = off + done;
        auto block = bmap(inode, pos / 4096, false);
        uint64_t chunk = std::min(len - done, 4096 - pos % 4096);
        if (!block) {
            std::memset(out + done, 0, chunk); // hole
        } else {
            Buf *b = _cache.get(*block);
            std::memcpy(out + done, b->data.data() + pos % 4096, chunk);
        }
        done += chunk;
    }
    sim::StatSet::add(_hBytesRead, len);
    return int64_t(len);
}

int64_t
Fs::write(Ino ino, uint64_t off, const void *buf, uint64_t len)
{
    DiskInode inode = loadInode(ino);
    if (inode.type == uint16_t(FileType::Free))
        return -1;
    _ctx.chargeKernelBulk(len);

    const uint8_t *in = static_cast<const uint8_t *>(buf);
    uint64_t done = 0;
    while (done < len) {
        uint64_t pos = off + done;
        auto block = bmap(inode, pos / 4096, true);
        if (!block)
            return done ? int64_t(done) : -1;
        uint64_t chunk = std::min(len - done, 4096 - pos % 4096);
        Buf *b = _cache.get(*block);
        std::memcpy(b->data.data() + pos % 4096, in + done, chunk);
        _cache.markDirty(b);
        done += chunk;
    }
    if (off + len > inode.size)
        inode.size = off + len;
    storeInode(ino, inode);
    sim::StatSet::add(_hBytesWritten, len);
    return int64_t(len);
}

FsStatus
Fs::truncate(Ino ino)
{
    DiskInode inode = loadInode(ino);
    if (inode.type == uint16_t(FileType::Free))
        return FsStatus::NotFound;
    freeFileBlocks(inode);
    storeInode(ino, inode);
    return FsStatus::Ok;
}

void
Fs::sync()
{
    _cache.sync();
}

} // namespace vg::kern
