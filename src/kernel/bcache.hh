/**
 * @file
 * Write-back buffer cache over the block device.
 *
 * Postmark and the LMBench file benchmarks run with buffered I/O; the
 * cache means their cost is dominated by instrumented kernel metadata
 * work rather than device time, which is what produces the paper's
 * ~4.5-5x file-operation overheads under Virtual Ghost.
 */

#ifndef VG_KERNEL_BCACHE_HH
#define VG_KERNEL_BCACHE_HH

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "hw/disk.hh"
#include "sim/context.hh"

namespace vg::kern
{

/** One cached block. */
struct Buf
{
    uint64_t blockNo = 0;
    bool dirty = false;
    std::vector<uint8_t> data;
};

/** LRU write-back cache. */
class BufferCache
{
  public:
    BufferCache(hw::Disk &disk, sim::SimContext &ctx,
                uint64_t capacity_blocks = 4096);

    /** Get a block, reading from disk on a miss. The pointer stays
     *  valid until the next cache operation. */
    Buf *get(uint64_t block_no);

    /** Get a block that is about to be fully overwritten: on a miss
     *  the buffer is created zeroed *without* touching the device
     *  (freshly allocated data blocks never need a read). */
    Buf *getZeroed(uint64_t block_no);

    /** Drop every clean block and write back dirty ones (cold-cache
     *  experiments). */
    void dropAll();

    /** Mark a buffer dirty (after mutating its data). */
    void markDirty(Buf *buf) { buf->dirty = true; }

    /** Write every dirty block back to the device. Under asyncIo the
     *  writebacks are queued through the disk ring and this acts as
     *  the durability barrier: it stalls to the last completion. */
    void sync();

    /** Drop a block without writeback (e.g. freed block). */
    void invalidate(uint64_t block_no);

    uint64_t hits() const { return _hits; }
    uint64_t misses() const { return _misses; }

    /** Simulated time the last ring writeback completes (0 = none). */
    uint64_t flushBarrier() const { return _flushDone; }

  private:
    void evictIfNeeded();
    void writeback(Buf &buf);
    void ringRead(Buf &buf);

    hw::Disk &_disk;
    sim::SimContext &_ctx;
    uint64_t _flushDone = 0;
    uint64_t _capacity;
    std::list<Buf> _lru; // front = most recent
    std::unordered_map<uint64_t, std::list<Buf>::iterator> _index;
    uint64_t _hits = 0;
    uint64_t _misses = 0;
    sim::StatHandle _hHits;
    sim::StatHandle _hMisses;
    sim::StatHandle _hZeroFills;
    sim::StatHandle _hWritebacks;
};

} // namespace vg::kern

#endif // VG_KERNEL_BCACHE_HH
