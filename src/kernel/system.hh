/**
 * @file
 * Whole-machine facade: hardware + Virtual Ghost VM + kernel.
 *
 * This is the top-level object examples, tests and benchmarks create.
 * Construction and boot() perform the full paper stack bring-up:
 * TPM-backed VM install/boot, IOMMU wiring, kernel boot (mkfs), and
 * the loopback network pair.
 */

#ifndef VG_KERNEL_SYSTEM_HH
#define VG_KERNEL_SYSTEM_HH

#include <memory>

#include "kernel/kernel.hh"

namespace vg::kern
{

/** Machine sizing knobs. */
struct SystemConfig
{
    sim::VgConfig vg = sim::VgConfig::full();
    uint64_t memFrames = 24 * 1024;      ///< 96 MB RAM
    uint64_t diskBlocks = 64 * 1024;     ///< 256 MB SSD
    size_t rsaBits = 384;                ///< VG key size (sim-friendly)
    std::vector<uint8_t> tpmSeed = {'v', 'g', 't', 'p', 'm'};
};

/** A booted simulated machine. */
class System
{
  public:
    explicit System(const SystemConfig &config = SystemConfig());

    /** Install (first boot) + boot the whole stack. */
    void boot();

    sim::SimContext &ctx() { return _ctx; }
    hw::PhysMem &mem() { return _mem; }
    hw::CpuSet &cpus() { return _cpus; }
    /** Boot CPU's MMU (the only MMU when vcpus == 1). */
    hw::Mmu &mmu() { return _cpus[0].mmu(); }
    hw::Iommu &iommu() { return _iommu; }
    hw::Tpm &tpm() { return _tpm; }
    hw::Disk &disk() { return _disk; }
    /** Loopback NIC pair (A is the kernel's TX side). */
    hw::Nic &nicA() { return _nicA; }
    hw::Nic &nicB() { return _nicB; }
    sva::SvaVm &vm() { return _vm; }
    Kernel &kernel() { return _kernel; }

    /** Shorthand: spawn + run until all processes exit. */
    int
    runProcess(const std::string &name,
               std::function<int(UserApi &)> main_fn)
    {
        uint64_t pid = _kernel.spawn(name, std::move(main_fn));
        _kernel.run();
        auto it = _kernel.exitCodes().find(pid);
        return it == _kernel.exitCodes().end() ? -1 : it->second;
    }

  private:
    SystemConfig _config;
    sim::SimContext _ctx;
    hw::PhysMem _mem;
    hw::CpuSet _cpus;
    hw::Iommu _iommu;
    hw::Tpm _tpm;
    hw::Disk _disk;
    hw::Nic _nicA;
    hw::Nic _nicB;
    sva::SvaVm _vm;
    Kernel _kernel;
    bool _booted = false;
};

} // namespace vg::kern

#endif // VG_KERNEL_SYSTEM_HH
