/**
 * @file
 * Ghost paging subsystem: the on-disk swap area and the second-chance
 * eviction clock.
 *
 * The swap area is carved from the tail of the disk and sits *behind*
 * the NCQ request queue: on the fast path an eviction batch is posted
 * as a run of write descriptors and the doorbell rings once per batch,
 * so the CPU never stalls for media latency (the paper's OS-managed
 * swap of ghost pages it can never read, made batched and
 * asynchronous). The reference path (VgConfig::swapFastPath = 0) does
 * one synchronous writeBlock round-trip per block. Either way the OS
 * stores only ciphertext: sealing happened in the VM before the bytes
 * got here, and the slot table records only (pid, va, generation,
 * length) — bookkeeping, not secrets.
 *
 * The clock tracks every *resident* ghost page machine-wide. Victims
 * are picked second-chance: a page whose hardware reference bit is set
 * gets the bit cleared and survives one sweep; unreferenced pages are
 * evicted. Victim choice is identical in both swapFastPath modes —
 * batching only groups the writeback, never the policy.
 */

#ifndef VG_KERNEL_SWAP_HH
#define VG_KERNEL_SWAP_HH

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <optional>
#include <vector>

#include "crypto/sealed.hh"
#include "hw/disk.hh"

namespace vg::kern
{

/** One swap slot: blocksPerSlot contiguous disk blocks holding a
 *  serialized sealed page, plus untrusted OS bookkeeping. */
struct SwapSlot
{
    uint64_t pid = 0;
    hw::Vaddr va = 0;
    /** Mirror of the VM's swap generation (observability only — the
     *  authoritative copy is VM-trusted state the OS cannot edit). */
    uint64_t gen = 0;
    uint32_t len = 0; ///< serialized blob bytes
    bool used = false;
};

/** The on-disk swap area. */
class SwapArea
{
  public:
    /** serialize() of a sealed 4 KB page is nonce+mac+page = 4144
     *  bytes, so one slot spans two disk blocks. */
    static constexpr uint64_t blocksPerSlot = 2;

    /** One page headed for the swap area. */
    struct StoreReq
    {
        uint64_t pid = 0;
        hw::Vaddr va = 0;
        uint64_t gen = 0;
        const crypto::SealedBlob *blob = nullptr;
    };

    SwapArea(hw::Disk &disk, sim::SimContext &ctx, uint64_t first_block,
             uint64_t num_blocks);

    /**
     * Store a batch of sealed pages. With swapFastPath (and asyncIo)
     * the blocks are posted to the disk's request queue and the
     * doorbell rings once for the whole batch — fire-and-forget, the
     * bytes cross at the doorbell. Otherwise each block is a
     * synchronous writeBlock. Returns pages stored (all of them, or 0
     * if the area is out of slots — check freeSlots() first).
     */
    uint64_t storeBatch(const std::vector<StoreReq> &reqs);

    /**
     * Read back the sealed blob for (pid, va) without freeing the
     * slot; the slot is released only after the VM accepts the page
     * (a failed verification must not lose the ciphertext). Stalls
     * for the disk read — the faulting process needs the bytes.
     *
     * Fast path (swapFastPath + asyncIo): swap-in clustering. The
     * faulting slot and up to readaheadSlots-1 of the owner's next
     * slots (va order) ride one doorbell; their media latencies
     * overlap in the deep queue, and the neighbours' *sealed bytes*
     * are staged so a later demand read costs no disk stall. Staging
     * is ciphertext-only bookkeeping: nothing is unsealed or mapped
     * until demanded, so pages_loaded / swap-in / fault counts stay
     * demand-driven and identical to the reference path.
     */
    std::optional<crypto::SealedBlob> read(uint64_t pid, hw::Vaddr va);

    /** Slots per demand-read cluster on the fast path (the faulting
     *  slot plus up to this many minus one staged neighbours). */
    static constexpr unsigned readaheadSlots = 8;

    /** Free the slot for (pid, va) (after a successful swap-in). */
    void release(uint64_t pid, hw::Vaddr va);

    /** Drop every slot owned by @p pid (process exit). */
    void releaseAll(uint64_t pid);

    bool contains(uint64_t pid, hw::Vaddr va) const;
    uint64_t countFor(uint64_t pid) const;

    /** First disk block of (pid, va)'s slot; nullopt if absent. The
     *  hostile-OS surface: anyone with the block number can read or
     *  flip bits in the ciphertext via Disk::rawBlock. */
    std::optional<uint64_t> slotBlock(uint64_t pid, hw::Vaddr va) const;

    uint64_t slotCount() const { return _slots.size(); }
    uint64_t usedSlots() const { return _index.size(); }
    uint64_t freeSlots() const { return slotCount() - usedSlots(); }
    uint64_t firstBlock() const { return _firstBlock; }
    /** Pages in the most recent storeBatch() (observability). */
    uint64_t lastBatchPages() const { return _lastBatchPages; }
    const std::vector<SwapSlot> &slots() const { return _slots; }

  private:
    uint64_t slotToBlock(uint32_t slot) const
    {
        return _firstBlock + uint64_t(slot) * blocksPerSlot;
    }

    /** Sealed bytes prefetched by a read cluster, awaiting demand. */
    struct StagedRead
    {
        std::vector<uint8_t> bytes;
        uint64_t readyAt = 0; ///< completion cycle of its disk read
    };

    hw::Disk &_disk;
    sim::SimContext &_ctx;
    uint64_t _firstBlock;
    std::vector<SwapSlot> _slots;
    /** (pid, va) -> slot index. */
    std::map<std::pair<uint64_t, uint64_t>, uint32_t> _index;
    /** (pid, va) -> prefetched ciphertext (fast path only). */
    std::map<std::pair<uint64_t, uint64_t>, StagedRead> _staged;
    uint32_t _nextFree = 0; ///< rotating free-slot search start
    uint64_t _lastBatchPages = 0;

    sim::StatHandle _hPagesStored;
    sim::StatHandle _hPagesLoaded;
    sim::StatHandle _hWriteBatches;
    sim::StatHandle _hReadClusters;
};

/**
 * Second-chance clock over every resident ghost page in the machine.
 * Pure policy: knows nothing about disks or crypto — the caller
 * supplies the test-and-clear of the hardware reference bit.
 */
class GhostClock
{
  public:
    using Page = std::pair<uint64_t, hw::Vaddr>; // (pid, va)

    /** Track a page that just became resident. */
    void insert(uint64_t pid, hw::Vaddr va);

    /** Stop tracking (evicted or freed); idempotent. */
    void remove(uint64_t pid, hw::Vaddr va);

    /** Drop every page of @p pid (process exit). */
    void removePid(uint64_t pid);

    /**
     * Pick up to @p want eviction victims. @p referenced must
     * test-and-clear the page's reference bit (the VM intrinsic);
     * pages that were referenced survive one sweep, everything else is
     * removed from the clock and returned in hand order.
     */
    std::vector<Page>
    pickVictims(uint64_t want,
                const std::function<bool(uint64_t, hw::Vaddr)> &referenced);

    size_t size() const { return _ring.size(); }

    /** Page currently under the hand (observability; nullopt when
     *  the clock is empty). */
    std::optional<Page> handPage() const;

  private:
    void advanceHand();

    std::list<Page> _ring;
    std::map<Page, std::list<Page>::iterator> _pos;
    std::list<Page>::iterator _hand = _ring.end();
};

} // namespace vg::kern

#endif // VG_KERNEL_SWAP_HH
