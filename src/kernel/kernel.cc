#include "kernel/kernel.hh"

#include <algorithm>
#include <cstring>

#include "sim/interleave.hh"
#include "sim/log.hh"

namespace vg::kern
{

Kernel::Kernel(sim::SimContext &ctx, hw::PhysMem &mem, hw::CpuSet &cpus,
               hw::Iommu &iommu, hw::Tpm &tpm, hw::Disk &disk,
               hw::Nic &nic_a, hw::Nic &nic_b, sva::SvaVm &vm)
    : _ctx(ctx), _mem(mem), _cpus(cpus), _iommu(iommu), _tpm(tpm),
      _disk(disk), _nicA(nic_a), _nicB(nic_b), _vm(vm),
      _hPageFaults(ctx.stats().handle("kernel.page_faults")),
      _hPagesMaterialized(
          ctx.stats().handle("kernel.pages_materialized")),
      _hCowFaults(ctx.stats().handle("kernel.cow_faults")),
      _hFilePageIns(ctx.stats().handle("kernel.file_page_ins")),
      _hProcessExits(ctx.stats().handle("kernel.process_exits")),
      _hSpawns(ctx.stats().handle("kernel.spawns")),
      _hForks(ctx.stats().handle("kernel.forks")),
      _hExecs(ctx.stats().handle("kernel.execs")),
      _hSignalsDelivered(
          ctx.stats().handle("kernel.signals_delivered")),
      _hNetBytesSent(ctx.stats().handle("net.bytes_sent")),
      _hDeviceIrqs(ctx.stats().handle("kernel.device_irqs")),
      _hIrqsCoalesced(ctx.stats().handle("kernel.irqs_coalesced")),
      _hSoftirqWakes(ctx.stats().handle("kernel.softirq_wakes")),
      _hZeroCopySends(ctx.stats().handle("kernel.zero_copy_sends")),
      _hGhostFaults(ctx.stats().handle("kernel.ghost_faults")),
      _hGhostReclaimed(ctx.stats().handle("kernel.ghost_reclaimed")),
      _hConnInserts(ctx.stats().handle("kernel.conn_table_inserts")),
      _hConnErases(ctx.stats().handle("kernel.conn_table_erases")),
      _hConnLookups(ctx.stats().handle("kernel.conn_table_lookups")),
      _hConnPeak(ctx.stats().handle("kernel.conn_table_peak"))
{
    _softirq.resize(ctx.vcpuCount());
    _lastIrqAt.assign(ctx.vcpuCount(), 0);
}

Kernel::~Kernel()
{
    for (auto &[pid, proc] : _procs) {
        if (proc->hostThread.joinable()) {
            // Should not happen if run() completed; detach defensively.
            proc->hostThread.detach();
        }
    }
}

void
Kernel::boot()
{
    // Frame 0 is never handed out (null catcher); the rest go to the
    // kernel allocator.
    _frames = std::make_unique<FrameAllocator>(1, _mem.numFrames() - 1,
                                               _ctx);
    _kmem = std::make_unique<Kmem>(_ctx, _mem, _cpus[0].mmu(), _vm);
    _kmem->attachCpus(_cpus);
    _bcache = std::make_unique<BufferCache>(_disk, _ctx);
    // The swap area is carved from the disk tail; the filesystem gets
    // the rest. Swap blocks bypass the buffer cache — they sit behind
    // the disk's request queue directly.
    uint64_t swap_blocks = _disk.numBlocks() / 8;
    _fs = std::make_unique<Fs>(*_bcache, _ctx,
                               _disk.numBlocks() - swap_blocks);
    _fs->mkfs();
    _swap = std::make_unique<SwapArea>(
        _disk, _ctx, _disk.numBlocks() - swap_blocks, swap_blocks);

    // Ghost memory frames are donated from / returned to our allocator.
    _vm.setFrameProvider([this]() { return _frames->alloc(); });
    _vm.setFrameReceiver([this](hw::Frame f) { _frames->free(f); });

    // The generic kernel-thread entry point handed to sva.newstate.
    _vm.registerKernelEntry(0xffffff8000100000ull);

    // Preemption quantum: 10 ms, armed on every vCPU's local timer.
    // Device interrupt lines are attached to every vCPU; MSI-X
    // affinity (IrqLine::wireTo) decides where a given raise lands.
    for (unsigned c = 0; c < _cpus.count(); c++) {
        _cpus[c].timer().setInterval(
            sim::Cycles(10000 * sim::Clock::cyclesPerUsec));
        _cpus[c].attachIrq(&_nicA.irq());
        _cpus[c].attachIrq(&_nicB.irq());
        _cpus[c].attachIrq(&_disk.irq());
    }

    setupModuleExterns();
    _ctx.stats().add("kernel.boots");
}

Process *
Kernel::process(uint64_t pid)
{
    auto it = _procs.find(pid);
    return it == _procs.end() ? nullptr : it->second.get();
}

// --------------------------------------------------------------------
// Connection table
// --------------------------------------------------------------------

uint64_t
Kernel::connRegister(const std::shared_ptr<Socket> &server_sock)
{
    // Hash insert + free-list pop: O(1) regardless of how many
    // connections the machine is carrying.
    _ctx.chargeKernelWork(30, 12, 2);
    uint64_t id;
    if (!_connTable.freeIds.empty()) {
        id = _connTable.freeIds.back();
        _connTable.freeIds.pop_back();
    } else {
        id = _connTable.nextId++;
    }
    server_sock->connId = id;
    _connTable.conns.emplace(id, server_sock);
    sim::StatSet::add(_hConnInserts);
    if (_connTable.conns.size() > _connTable.peak) {
        _connTable.peak = _connTable.conns.size();
        *_hConnPeak = _connTable.peak;
    }
    return id;
}

void
Kernel::connUnregister(Socket &sock)
{
    if (sock.connId == 0)
        return;
    _ctx.chargeKernelWork(25, 10, 2);
    auto it = _connTable.conns.find(sock.connId);
    // Erase only the entry this endpoint owns: ids are recycled, so a
    // stale id could otherwise tear down someone else's registration.
    if (it != _connTable.conns.end() &&
        it->second.lock().get() == &sock) {
        _connTable.conns.erase(it);
        _connTable.freeIds.push_back(sock.connId);
        sim::StatSet::add(_hConnErases);
    }
    sock.connId = 0;
}

std::shared_ptr<Socket>
Kernel::connLookup(uint64_t conn_id)
{
    _ctx.chargeKernelWork(20, 8, 1);
    sim::StatSet::add(_hConnLookups);
    auto it = _connTable.conns.find(conn_id);
    return it == _connTable.conns.end() ? nullptr : it->second.lock();
}

void
Kernel::connReapProcess(Process &proc)
{
    for (auto &[fd, of] : proc.fds)
        if (of && of->kind == OpenFile::Kind::Socket && of->sock)
            connUnregister(*of->sock);
}

// --------------------------------------------------------------------
// Address spaces
// --------------------------------------------------------------------

void
Kernel::buildAddressSpace(Process &proc)
{
    auto root = _frames->alloc();
    if (!root)
        sim::fatal("out of frames building address space");
    sva::SvaError err;
    if (!_vm.declarePtPage(*root, 4, &err))
        sim::panic("declare root failed: %s", err.message.c_str());
    proc.rootFrame = *root;
}

bool
Kernel::ensureTables(Process &proc, hw::Vaddr va)
{
    hw::Frame table = proc.rootFrame;
    for (int level = 4; level >= 2; level--) {
        uint64_t idx = hw::ptIndex(va, hw::PtLevel(level));
        hw::Pte entry = _mem.read64(table * hw::pageSize + idx * 8);
        _ctx.chargeKernelWork(4, 2, 0);
        if (entry & hw::pte::present) {
            table = hw::pte::frameNum(entry);
            continue;
        }
        auto child = _frames->alloc();
        if (!child)
            return false;
        sva::SvaError err;
        if (!_vm.declarePtPage(*child, level - 1, &err) ||
            !_vm.installTable(table, level, va, *child, &err)) {
            sim::panic("ensureTables: %s", err.message.c_str());
        }
        proc.ptLinks.push_back({table, level, va, *child});
        table = *child;
    }
    return true;
}

bool
Kernel::materializePage(Process &proc, hw::Vaddr va)
{
    hw::Vaddr page = hw::pageOf(va);

    // Must fall inside a reserved area.
    const VmArea *hit = nullptr;
    for (const auto &[start, area] : proc.areas) {
        if (page >= area.start &&
            page < area.start + area.npages * hw::pageSize) {
            hit = &area;
            break;
        }
    }
    if (!hit)
        return false;

    if (!ensureTables(proc, page))
        return false;
    auto frame = _frames->alloc();
    if (!frame)
        return false;

    if (hit->backingIno != 0) {
        // File-backed fault: page in from the filesystem (buffer
        // cache / device charges apply).
        _mem.zeroFrame(*frame);
        uint8_t page_buf[hw::pageSize];
        uint64_t off = hit->backingOff + (page - hit->start);
        _ctx.chargeKernelWork(800, 350, 70); // vnode pager
        int64_t n = _fs->read(hit->backingIno, off, page_buf,
                              hw::pageSize);
        if (n > 0)
            _mem.writeBytes(*frame * hw::pageSize, page_buf,
                            uint64_t(n));
        sim::StatSet::add(_hFilePageIns);
    } else {
        // Demand-zero: the kernel zeroes the page before mapping.
        _mem.zeroFrame(*frame);
    }
    _ctx.chargeKernelBulk(hw::pageSize);

    sva::SvaError err;
    if (!_vm.mapPage(proc.rootFrame, page, *frame, true, true, true,
                     &err)) {
        _frames->free(*frame);
        return false;
    }
    proc.userPages[page] = {*frame, false};
    sim::StatSet::add(_hPagesMaterialized);
    return true;
}

bool
Kernel::copyOnWrite(Process &proc, hw::Vaddr page)
{
    auto it = proc.userPages.find(page);
    if (it == proc.userPages.end() || !it->second.cow)
        return false;

    _ctx.chargeTrap();
    _ctx.chargeKernelWork(180, 75, 18); // fault decode + vm_object walk
    sim::StatSet::add(_hCowFaults);
    sva::SvaError err;

    hw::Frame old_frame = it->second.frame;
    if (_vm.frames()[old_frame].mapCount > 1) {
        // Shared: copy into a private frame.
        auto fresh = _frames->alloc();
        if (!fresh)
            return false;
        _mem.writeBytes(*fresh * hw::pageSize, _mem.framePtr(old_frame),
                        hw::pageSize);
        _ctx.chargeKernelBulk(hw::pageSize);
        if (!_vm.mapPage(proc.rootFrame, page, *fresh, true, true,
                         true, &err)) {
            _frames->free(*fresh);
            return false;
        }
        it->second = {*fresh, false};
    } else {
        // Sole owner left: just upgrade the protection.
        if (!_vm.protectPage(proc.rootFrame, page, true, true, &err))
            return false;
        it->second.cow = false;
    }
    return true;
}

bool
Kernel::handleUserAccess(Process &proc, hw::Vaddr va, hw::Access access,
                         hw::Paddr &pa)
{
    for (int attempt = 0; attempt < 3; attempt++) {
        auto r = curMmu().translate(va, access, hw::Privilege::User);
        if (r.ok) {
            pa = r.paddr;
            return true;
        }
        if (attempt == 2)
            return false;
        if (r.fault == hw::FaultKind::NotPresent) {
            // Page-fault path: trap into the kernel, demand-zero or
            // page in from the backing file.
            _ctx.chargeTrap();
            _ctx.chargeKernelWork(120, 45, 12); // decode + vm lookup
            sim::StatSet::add(_hPageFaults);
            if (!materializePage(proc, va))
                return false;
        } else if (r.fault == hw::FaultKind::Protection &&
                   access == hw::Access::Write) {
            if (!copyOnWrite(proc, hw::pageOf(va)))
                return false;
        } else {
            return false;
        }
    }
    return false;
}

void
Kernel::teardownAddressSpace(Process &proc)
{
    sva::SvaError err;
    _ghostClock.removePid(proc.pid);
    if (_swap)
        _swap->releaseAll(proc.pid);
    _vm.releaseGhostMemory(proc.pid, proc.rootFrame);
    for (const auto &[va, page] : proc.userPages) {
        if (_vm.unmapPage(proc.rootFrame, va, &err) &&
            _vm.frames()[page.frame].mapCount == 0)
            _frames->free(page.frame);
    }
    proc.userPages.clear();
    // Retire page-table pages child-level first (reverse creation).
    for (auto it = proc.ptLinks.rbegin(); it != proc.ptLinks.rend();
         ++it) {
        if (_vm.uninstallTable(it->parent, it->parentLevel, it->va,
                               &err))
            _frames->free(it->child);
    }
    proc.ptLinks.clear();
    if (proc.rootFrame) {
        if (_vm.undeclarePtPage(proc.rootFrame, &err))
            _frames->free(proc.rootFrame);
        proc.rootFrame = 0;
    }
}

void
Kernel::copyAddressSpace(Process &parent, Process &child)
{
    child.areas = parent.areas;
    child.mmapCursor = parent.mmapCursor;
    sva::SvaError err;
    for (auto &[va, page] : parent.userPages) {
        // Copy-on-write sharing, as FreeBSD's fork does: both sides
        // lose write permission; the first writer gets a private
        // copy. All the work is page-table manipulation — discrete,
        // instrumented kernel memory operations.
        _ctx.chargeKernelWork(220, 95, 22); // vm_map/vm_object entry
        if (!ensureTables(child, va))
            sim::panic("fork: out of frames for tables");
        if (!_vm.protectPage(parent.rootFrame, va, false, true, &err))
            sim::panic("fork: protect failed: %s",
                       err.message.c_str());
        page.cow = true;
        if (!_vm.mapPage(child.rootFrame, va, page.frame, false, true,
                         true, &err))
            sim::panic("fork: mapPage failed: %s", err.message.c_str());
        child.userPages[va] = {page.frame, true};
    }
}

// --------------------------------------------------------------------
// Scheduling (baton passing)
// --------------------------------------------------------------------

uint64_t
Kernel::spawn(const std::string &name,
              std::function<int(UserApi &)> main_fn)
{
    uint64_t pid = _nextPid++;
    auto proc = std::make_unique<Process>();
    Process &p = *proc;
    p.pid = pid;
    p.name = name;
    p.mainFn = std::move(main_fn);
    p.state = ProcState::Runnable;
    p.cpu = _nextCpuAssign++ % _ctx.vcpuCount();

    sva::SvaError err;
    sva::SvaThread *t =
        _vm.newThread(pid, 0xffffff8000100000ull, 0, &err);
    if (!t)
        sim::panic("spawn: %s", err.message.c_str());
    p.tid = t->id;

    buildAddressSpace(p);

    p.hostThread = std::thread([this, &p]() {
        {
            std::unique_lock<std::mutex> lk(_mtx);
            p.cv.wait(lk, [&]() { return p.batonHeld; });
        }
        UserApi api(*this, p);
        int code = 0;
        try {
            code = p.mainFn ? p.mainFn(api) : 0;
        } catch (const ProcessExit &e) {
            code = e.code;
        }
        // Exit path (runs holding the baton).
        teardownAddressSpace(p);
        _vm.unbindProcess(p.pid);
        _vm.destroyThread(p.tid);
        connReapProcess(p);
        p.fds.clear();
        p.state = ProcState::Zombie;
        _exitCodes[p.pid] = code;
        p.exitCode = code;
        sim::StatSet::add(_hProcessExits);
        wakeup(reinterpret_cast<const void *>(uintptr_t(p.pid)));
        std::unique_lock<std::mutex> lk(_mtx);
        p.batonHeld = false;
        _schedulerTurn = true;
        _current = nullptr;
        _schedCv.notify_all();
    });

    _procs[pid] = std::move(proc);
    sim::StatSet::add(_hSpawns);
    return pid;
}

void
Kernel::switchTo(Process &proc)
{
    std::unique_lock<std::mutex> lk(_mtx);
    proc.state = ProcState::Running;
    proc.batonHeld = true;
    _current = &proc;
    _schedulerTurn = false;
    // Execute on the process's home vCPU. Causality: this CPU cannot
    // resume the process before the waker (possibly on another CPU)
    // produced the wakeup, so its clock catches up to the wake stamp.
    _ctx.setActiveCpu(proc.cpu);
    if (proc.readyStamp)
        _ctx.clockOf(proc.cpu).advanceTo(sim::Cycles(proc.readyStamp));
    proc.readyStamp = 0;
    _ctx.chargeContextSwitch();
    sva::SvaError err;
    if (proc.rootFrame)
        _vm.loadRoot(proc.rootFrame, &err);
    _vm.noteDispatch(proc.tid);
    proc.cv.notify_all();
    _schedCv.wait(lk, [&]() { return _schedulerTurn; });
}

void
Kernel::backToScheduler(Process &proc)
{
    // Hand the baton to the scheduler and wait for it to come back.
    std::unique_lock<std::mutex> lk(_mtx);
    proc.batonHeld = false;
    _schedulerTurn = true;
    _current = nullptr;
    _schedCv.notify_all();
    proc.cv.wait(lk, [&]() { return proc.batonHeld; });
    proc.state = ProcState::Running;
}

void
Kernel::blockCurrent(Process &proc, const void *channel)
{
    proc.state = ProcState::Blocked;
    proc.waitChannel = channel;
    backToScheduler(proc);
    proc.wakeTime = 0;
    // A fatal signal aborts the sleep and unwinds to the exit path
    // (RAII cleans up kernel state on the way out).
    if (proc.killRequested)
        throw ProcessExit{137};
}

void
Kernel::blockCurrentTimed(Process &proc, const void *channel,
                          uint64_t wake_time)
{
    proc.wakeTime = wake_time;
    blockCurrent(proc, channel);
}

unsigned
Kernel::wakeup(const void *channel)
{
    unsigned woke = 0;
    for (auto &[pid, proc] : _procs) {
        if (proc->state != ProcState::Blocked)
            continue;
        bool hit = proc->waitChannel == channel;
        for (const void *c : proc->multiWait)
            hit = hit || c == channel;
        if (hit) {
            proc->state = ProcState::Runnable;
            proc->waitChannel = nullptr;
            proc->multiWait.clear();
            proc->wakeTime = 0;
            // Stamp the waker's clock: the sleeper's CPU must not
            // observe the wakeup earlier than it was produced.
            proc->readyStamp =
                std::max(proc->readyStamp, uint64_t(_ctx.clock().now()));
            woke++;
        }
    }
    return woke;
}

void
Kernel::postSoftirq(unsigned cpu, uint64_t due_at, const void *channel)
{
    _softirq[cpu % _softirq.size()].push_back(Softirq{due_at, channel});
}

uint64_t
Kernel::earliestSoftirq() const
{
    uint64_t min_due = 0;
    for (const auto &q : _softirq)
        for (const Softirq &s : q)
            if (min_due == 0 || s.dueAt < min_due)
                min_due = s.dueAt;
    return min_due;
}

uint64_t
Kernel::serviceSoftirqs(unsigned cpu)
{
    std::deque<Softirq> &q = _softirq[cpu];
    if (q.empty())
        return 0;
    uint64_t now = _ctx.clockOf(cpu).now();

    // Deliver eagerly, in post order. An idle vCPU's local clock can
    // sit arbitrarily far behind the completion time, so gating on it
    // would hold every sleeper hostage to the busiest CPU; waking
    // early is safe because a reader re-checks its segment's arrival
    // time and puts itself back to sleep until then.
    std::vector<const void *> due;
    for (const Softirq &s : q)
        due.push_back(s.channel);
    q.clear();

    if (!due.empty()) {
        unsigned prev_cpu = _ctx.activeCpu();
        _ctx.setActiveCpu(cpu);
        unsigned woke = 0;
        const void *last = nullptr;
        for (const void *ch : due) {
            if (ch == last)
                continue; // adjacent completions for one queue
            woke += wakeup(ch);
            last = ch;
        }
        if (woke > 0) {
            // NAPI discipline: the interrupt is armed only while
            // someone is blocked on the queue. Within the coalescing
            // holdoff the still-running bottom half reaps further
            // completions without a fresh trap.
            uint64_t window =
                uint64_t(double(_ctx.config().irqCoalesceUs) *
                         sim::Clock::cyclesPerUsec);
            if (_lastIrqAt[cpu] == 0 || now - _lastIrqAt[cpu] > window) {
                _ctx.chargeTrap();
                sim::StatSet::add(_hDeviceIrqs);
            } else {
                sim::StatSet::add(_hIrqsCoalesced);
            }
            _lastIrqAt[cpu] = now;
            _ctx.clockOf(cpu).advance(_ctx.costs().softirqDispatch);
            sim::StatSet::add(_hSoftirqWakes, woke);
        }
        _ctx.setActiveCpu(prev_cpu);
        // The bottom half has drained this CPU's queues: acknowledge
        // device lines steered here whose completions were due.
        for (hw::IrqLine *line : _cpus[cpu].irqLines())
            if (line->pending() && line->cpu() == cpu &&
                line->pendingAt() <= now)
                line->ack();
    }

    uint64_t min_due = 0;
    for (const Softirq &s : q)
        if (min_due == 0 || s.dueAt < min_due)
            min_due = s.dueAt;
    return min_due;
}

void
Kernel::yieldCurrent(Process &proc)
{
    proc.state = ProcState::Runnable;
    backToScheduler(proc);
}

void
Kernel::run()
{
    if (_ctx.config().smpScheduler) {
        runSmp();
    } else {
        if (_ctx.vcpuCount() != 1)
            sim::panic("run: the legacy scheduler supports exactly one "
                       "vCPU (vcpus=%u)", _ctx.vcpuCount());
        runLegacy();
    }
}

void
Kernel::runLegacy()
{
    uint64_t rr_cursor = 0;
    while (true) {
        // Run due bottom halves first so their wakeups join the queue.
        serviceSoftirqs(0);

        // Collect runnable processes.
        std::vector<Process *> runnable;
        bool any_alive = false;
        for (auto &[pid, proc] : _procs) {
            if (proc->alive())
                any_alive = true;
            if (proc->state == ProcState::Runnable)
                runnable.push_back(proc.get());
        }

        if (!any_alive)
            break;

        if (runnable.empty()) {
            // Look for a timed sleeper or a pending device completion
            // to advance virtual time to.
            uint64_t min_wake = 0;
            for (auto &[pid, proc] : _procs) {
                if (proc->state == ProcState::Blocked &&
                    proc->wakeTime != 0 &&
                    (min_wake == 0 || proc->wakeTime < min_wake))
                    min_wake = proc->wakeTime;
            }
            uint64_t soft = earliestSoftirq();
            if (soft != 0 && (min_wake == 0 || soft < min_wake))
                min_wake = soft;
            if (min_wake == 0)
                sim::panic("scheduler: all processes blocked "
                           "(deadlock)");
            if (min_wake > _ctx.clock().now())
                _ctx.clock().advance(min_wake - _ctx.clock().now());
            for (auto &[pid, proc] : _procs) {
                if (proc->state == ProcState::Blocked &&
                    proc->wakeTime != 0 &&
                    proc->wakeTime <= _ctx.clock().now()) {
                    proc->state = ProcState::Runnable;
                    proc->waitChannel = nullptr;
                    proc->wakeTime = 0;
                }
            }
            continue;
        }

        Process *next = runnable[rr_cursor % runnable.size()];
        rr_cursor++;
        switchTo(*next);

        // Join processes that have fully exited.
        for (auto &[pid, proc] : _procs) {
            if (proc->state == ProcState::Zombie &&
                proc->hostThread.joinable()) {
                proc->hostThread.join();
                proc->state = ProcState::Zombie; // reaped via waitpid
            }
        }
    }

    for (auto &[pid, proc] : _procs) {
        if (proc->hostThread.joinable())
            proc->hostThread.join();
    }
}

void
Kernel::runSmp()
{
    unsigned ncpus = _ctx.vcpuCount();
    sim::RoundRobinInterleaver ilv(ncpus);
    std::vector<uint64_t> cursors(ncpus, 0);
    while (true) {
        // Run due bottom halves on every vCPU first so their wakeups
        // are visible when the run queues are built. Delivery order is
        // CPU-index order, then post order — deterministic under the
        // interleaver.
        for (unsigned c = 0; c < ncpus; c++)
            serviceSoftirqs(c);

        // Build per-CPU run queues in pid order.
        std::vector<std::vector<Process *>> queues(ncpus);
        bool any_alive = false;
        for (auto &[pid, proc] : _procs) {
            if (proc->alive())
                any_alive = true;
            if (proc->state == ProcState::Runnable)
                queues[proc->cpu % ncpus].push_back(proc.get());
        }

        if (!any_alive)
            break;

        // Idle balancing: an idle CPU pulls the youngest process off
        // the longest queue holding at least two. Deterministic (idle
        // CPUs scanned in index order, ties to the lowest donor), so
        // runs stay bit-reproducible.
        for (unsigned c = 0; c < ncpus; c++) {
            if (!queues[c].empty())
                continue;
            unsigned busiest = c;
            size_t best = 1;
            for (unsigned o = 0; o < ncpus; o++) {
                if (queues[o].size() > best) {
                    busiest = o;
                    best = queues[o].size();
                }
            }
            if (busiest == c)
                continue;
            Process *mig = queues[busiest].back();
            queues[busiest].pop_back();
            mig->cpu = c;
            queues[c].push_back(mig);
            _ctx.stats().add("kernel.migrations");
        }

        std::vector<uint8_t> has_work(ncpus, 0);
        for (unsigned c = 0; c < ncpus; c++)
            has_work[c] = queues[c].empty() ? 0 : 1;
        int cpu = ilv.next(has_work);

        if (cpu < 0) {
            // Everyone blocked: advance every vCPU's clock to the
            // earliest timed wake or pending device completion (never
            // backwards), then release the sleepers that are due on
            // their home CPU.
            uint64_t min_wake = 0;
            for (auto &[pid, proc] : _procs) {
                if (proc->state == ProcState::Blocked &&
                    proc->wakeTime != 0 &&
                    (min_wake == 0 || proc->wakeTime < min_wake))
                    min_wake = proc->wakeTime;
            }
            uint64_t soft = earliestSoftirq();
            if (soft != 0 && (min_wake == 0 || soft < min_wake))
                min_wake = soft;
            if (min_wake == 0)
                sim::panic("scheduler: all processes blocked "
                           "(deadlock)");
            for (unsigned c = 0; c < ncpus; c++)
                _ctx.clockOf(c).advanceTo(sim::Cycles(min_wake));
            for (auto &[pid, proc] : _procs) {
                if (proc->state == ProcState::Blocked &&
                    proc->wakeTime != 0 &&
                    proc->wakeTime <=
                        _ctx.clockOf(proc->cpu % ncpus).now()) {
                    proc->state = ProcState::Runnable;
                    proc->waitChannel = nullptr;
                    proc->wakeTime = 0;
                }
            }
            continue;
        }

        std::vector<Process *> &q = queues[cpu];
        Process *next = q[cursors[cpu] % q.size()];
        cursors[cpu]++;
        switchTo(*next);

        // Join processes that have fully exited.
        for (auto &[pid, proc] : _procs) {
            if (proc->state == ProcState::Zombie &&
                proc->hostThread.joinable()) {
                proc->hostThread.join();
                proc->state = ProcState::Zombie; // reaped via waitpid
            }
        }
    }

    for (auto &[pid, proc] : _procs) {
        if (proc->hostThread.joinable())
            proc->hostThread.join();
    }
}

// --------------------------------------------------------------------
// Modules
// --------------------------------------------------------------------

bool
Kernel::loadModule(const std::string &name, const std::string &text,
                   std::string *err)
{
    cc::TranslateResult tr = _vm.translateKernelModule(text);
    if (!tr.ok) {
        if (err)
            *err = tr.error;
        return false;
    }
    // The VM refuses to execute unsigned translations; check up front.
    if (!_vm.verifyImage(*tr.image)) {
        if (err)
            *err = "image signature verification failed";
        return false;
    }

    KernelModule module;
    module.name = name;
    module.image = tr.image;
    // Module stacks live in the kernel half.
    uint64_t stack_base = 0xffffffb000000000ull;
    module.executor = std::make_unique<cc::Executor>(
        *module.image, *_kmem, _moduleExterns, _ctx, stack_base,
        1 << 20);
    // Trace tier: hot paths are spliced through the VM's translator,
    // which re-proves and re-signs every spliced image before the
    // executor adopts it — unverified spliced code is never run.
    module.executor->enableTraceTier(_vm.translator());
    _modules[name] = std::move(module);
    _ctx.stats().add("kernel.modules_loaded");
    return true;
}

bool
Kernel::interposeSyscall(Sys sys, const std::string &module_name,
                         const std::string &function_name)
{
    auto it = _modules.find(module_name);
    if (it == _modules.end())
        return false;
    auto fit = it->second.image->functions.find(function_name);
    if (fit == it->second.image->functions.end())
        return false;
    // Resolve module and function once; moduleDispatch then runs the
    // handler with no string-keyed lookup on the syscall path.
    _interposed[int(sys)] = {module_name, function_name, &it->second,
                             &fit->second};
    _ctx.stats().add("kernel.syscalls_interposed");
    return true;
}

void
Kernel::clearInterposition(Sys sys)
{
    _interposed.erase(int(sys));
}

uint64_t
Kernel::swapOutPages(uint64_t pid, Process &proc,
                     std::vector<hw::Vaddr> pages)
{
    if (!_swap)
        return 0;
    // Never seal a page the swap area cannot hold: the victims are
    // clamped *before* eviction so nothing is lost.
    if (pages.size() > _swap->freeSlots())
        pages.resize(_swap->freeSlots());

    uint64_t swapped = 0;
    if (_ctx.config().swapFastPath) {
        unsigned batch = std::max(1u, _ctx.config().swapBatchPages);
        for (size_t i = 0; i < pages.size(); i += batch) {
            std::vector<hw::Vaddr> chunk(
                pages.begin() + i,
                pages.begin() +
                    std::min(pages.size(), i + batch));
            sva::SvaError err;
            std::vector<crypto::SealedBlob> blobs =
                _vm.swapOutGhostBatch(pid, proc.rootFrame, chunk,
                                      &err);
            if (blobs.empty()) {
                // A stale va poisons the whole batch; salvage the
                // valid pages one at a time.
                for (hw::Vaddr va : chunk) {
                    auto blob = _vm.swapOutGhostPage(
                        pid, proc.rootFrame, va, &err);
                    if (!blob)
                        continue;
                    SwapArea::StoreReq req{
                        pid, va, _vm.swapGeneration(pid, va),
                        &*blob};
                    _swap->storeBatch({req});
                    _ghostClock.remove(pid, va);
                    swapped++;
                }
                continue;
            }
            std::vector<SwapArea::StoreReq> reqs(chunk.size());
            for (size_t j = 0; j < chunk.size(); j++)
                reqs[j] = {pid, chunk[j],
                           _vm.swapGeneration(pid, chunk[j]),
                           &blobs[j]};
            _swap->storeBatch(reqs);
            for (hw::Vaddr va : chunk)
                _ghostClock.remove(pid, va);
            swapped += chunk.size();
        }
    } else {
        for (hw::Vaddr va : pages) {
            sva::SvaError err;
            auto blob =
                _vm.swapOutGhostPage(pid, proc.rootFrame, va, &err);
            if (!blob)
                continue;
            SwapArea::StoreReq req{pid, va,
                                   _vm.swapGeneration(pid, va),
                                   &*blob};
            _swap->storeBatch({req});
            _ghostClock.remove(pid, va);
            swapped++;
        }
    }
    _ctx.stats().add("kernel.ghost_swapouts", swapped);
    return swapped;
}

uint64_t
Kernel::swapOutGhost(uint64_t pid, uint64_t max_pages)
{
    Process *proc = process(pid);
    if (!proc)
        return 0;
    std::vector<hw::Vaddr> pages = _vm.ghostPagesOf(pid);
    if (pages.size() > max_pages)
        pages.resize(max_pages);
    return swapOutPages(pid, *proc, std::move(pages));
}

uint64_t
Kernel::reclaimGhostFrames(uint64_t want_pages)
{
    if (!_swap || _ghostClock.size() == 0)
        return 0;
    want_pages = std::min(want_pages, _swap->freeSlots());
    std::vector<GhostClock::Page> victims = _ghostClock.pickVictims(
        want_pages, [this](uint64_t pid, hw::Vaddr va) {
            Process *p = process(pid);
            return p && _vm.ghostPageTestClearRef(pid, p->rootFrame,
                                                  va);
        });
    // Contiguous same-pid runs swap out together (one batch shares
    // one address space); victim order is preserved.
    uint64_t reclaimed = 0;
    size_t i = 0;
    while (i < victims.size()) {
        size_t j = i;
        while (j < victims.size() &&
               victims[j].first == victims[i].first)
            j++;
        Process *p = process(victims[i].first);
        if (p) {
            std::vector<hw::Vaddr> vas;
            vas.reserve(j - i);
            for (size_t k = i; k < j; k++)
                vas.push_back(victims[k].second);
            reclaimed +=
                swapOutPages(victims[i].first, *p, std::move(vas));
        }
        i = j;
    }
    sim::StatSet::add(_hGhostReclaimed, reclaimed);
    return reclaimed;
}

/** Frames kept free beyond the immediate need: swap-in and ghost
 *  mapping may consume a few extra frames for page tables. */
static constexpr uint64_t kGhostHeadroom = 16;

void
Kernel::ensureGhostHeadroom(uint64_t need)
{
    if (!_swap)
        return;
    uint64_t want = need + kGhostHeadroom;
    uint64_t have = _frames->freeCount();
    if (have >= want)
        return;
    reclaimGhostFrames(want - have);
}

bool
Kernel::swapInGhost(uint64_t pid, hw::Vaddr page_va)
{
    Process *proc = process(pid);
    if (!proc || !_swap || !_swap->contains(pid, page_va))
        return false;
    sim::StatSet::add(_hGhostFaults);
    // The restore needs a frame; under pressure the clock makes room
    // first (the faulting page is non-resident, never its own victim).
    ensureGhostHeadroom(1);
    std::optional<crypto::SealedBlob> blob = _swap->read(pid, page_va);
    if (!blob)
        return false;
    sva::SvaError err;
    if (!_vm.swapInGhostPage(pid, proc->rootFrame, page_va, *blob,
                             &err)) {
        sim::warn("ghost swap-in refused: %s", err.message.c_str());
        return false;
    }
    _swap->release(pid, page_va);
    _ghostClock.insert(pid, page_va);
    _ctx.stats().add("kernel.ghost_swapins");
    return true;
}

uint64_t
Kernel::swappedGhostPages(uint64_t pid) const
{
    return _swap ? _swap->countFor(pid) : 0;
}

std::optional<crypto::SealedBlob>
Kernel::readSwappedBlob(uint64_t pid, hw::Vaddr page_va)
{
    if (!_swap)
        return std::nullopt;
    return _swap->read(pid, page_va);
}

std::optional<uint64_t>
Kernel::swapSlotBlock(uint64_t pid, hw::Vaddr page_va) const
{
    if (!_swap)
        return std::nullopt;
    return _swap->slotBlock(pid, page_va);
}

void
Kernel::noteGhostAlloc(uint64_t pid, hw::Vaddr va, uint64_t npages)
{
    for (uint64_t i = 0; i < npages; i++)
        _ghostClock.insert(pid, va + i * hw::pageSize);
}

void
Kernel::noteGhostFree(uint64_t pid, hw::Vaddr va, uint64_t npages)
{
    for (uint64_t i = 0; i < npages; i++)
        _ghostClock.remove(pid, va + i * hw::pageSize);
}

cc::ExecResult
Kernel::callModuleFunction(const std::string &module_name,
                           const std::string &function_name,
                           const std::vector<uint64_t> &args)
{
    auto it = _modules.find(module_name);
    if (it == _modules.end()) {
        cc::ExecResult r;
        r.fault = cc::ExecFault::BadCallTarget;
        r.detail = "no such module " + module_name;
        return r;
    }
    return it->second.executor->call(function_name, args);
}

uint64_t
Kernel::moduleFunctionAddr(const std::string &module_name,
                           const std::string &function_name)
{
    auto it = _modules.find(module_name);
    if (it == _modules.end())
        return 0;
    auto fit = it->second.image->functions.find(function_name);
    if (fit == it->second.image->functions.end())
        return 0;
    return fit->second.entryAddr;
}

bool
Kernel::moduleDispatch(Sys sys, const std::vector<uint64_t> &args,
                       int64_t &result)
{
    auto it = _interposed.find(int(sys));
    if (it == _interposed.end())
        return false;
    cc::ExecResult r = it->second.module->executor->call(*it->second.fn,
                                                         args);
    if (!r.ok) {
        // A faulting handler terminates the kernel thread servicing
        // the syscall (S 4.5); the syscall itself fails.
        _ctx.stats().add("kernel.module_faults");
        sim::debug("module handler fault: %s (%s)",
                   faultName(r.fault), r.detail.c_str());
        result = -1;
        return true;
    }
    result = int64_t(r.value);
    return true;
}

} // namespace vg::kern
