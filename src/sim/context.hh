/**
 * @file
 * Aggregated simulation context.
 *
 * A SimContext bundles the per-CPU clocks, statistics, protection
 * configuration and cost model that every layer of the stack shares. It
 * also provides the charging helpers that translate functional events
 * into simulated cycles, so cost policy lives in exactly one place.
 *
 * SMP model: the machine owns one Clock per vCPU and the scheduler
 * marks which vCPU is currently executing via setActiveCpu(); all
 * charging helpers bill the active CPU's clock. With vcpus == 1 this
 * degenerates to the historical single-clock model bit-for-bit.
 */

#ifndef VG_SIM_CONTEXT_HH
#define VG_SIM_CONTEXT_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/clock.hh"
#include "sim/config.hh"
#include "sim/costs.hh"
#include "sim/stats.hh"

namespace vg::sim
{

/** Shared simulation state: time, stats, config and cost model. */
class SimContext
{
  public:
    explicit SimContext(VgConfig config = VgConfig::full())
        : _clocks(config.vcpus ? config.vcpus : 1), _config(config)
    {
        // Per-CPU counter namespaces (cpu0.kernel.insts, ...) exist
        // only on multi-CPU machines so single-CPU stat maps stay
        // literally identical to the historical model.
        if (_clocks.size() > 1) {
            _cpuHandles.resize(_clocks.size());
            for (unsigned c = 0; c < _clocks.size(); c++) {
                std::string p = "cpu" + std::to_string(c) + ".";
                auto &h = _cpuHandles[c];
                h[CiKernInsts] = _stats.handle(p + "kernel.insts");
                h[CiKernMemops] = _stats.handle(p + "kernel.memops");
                h[CiKernTransfers] =
                    _stats.handle(p + "kernel.transfers");
                h[CiKernBulkBytes] =
                    _stats.handle(p + "kernel.bulk_bytes");
                h[CiSvaSyscalls] = _stats.handle(p + "sva.syscalls");
                h[CiSvaTraps] = _stats.handle(p + "sva.traps");
                h[CiSvaContextSwitches] =
                    _stats.handle(p + "sva.context_switches");
                h[CiSvaMmuUpdates] =
                    _stats.handle(p + "sva.mmu_updates");
                h[CiUserInsts] = _stats.handle(p + "user.insts");
                h[CiAesBytes] = _stats.handle(p + "crypto.aes_bytes");
                h[CiShaBytes] = _stats.handle(p + "crypto.sha_bytes");
            }
        }
    }

    /** The active (currently executing) vCPU's clock. */
    Clock &clock() { return _clocks[_active]; }
    const Clock &clock() const { return _clocks[_active]; }

    /** Clock of a specific vCPU. */
    Clock &clockOf(unsigned cpu) { return _clocks[cpu]; }
    const Clock &clockOf(unsigned cpu) const { return _clocks[cpu]; }

    /** Number of vCPUs in the machine. */
    unsigned vcpuCount() const { return _clocks.size(); }

    /** Index of the currently executing vCPU. */
    unsigned activeCpu() const { return _active; }

    /** Mark vCPU @p cpu as the currently executing one. */
    void setActiveCpu(unsigned cpu) { _active = cpu; }

    StatSet &stats() { return _stats; }
    const VgConfig &config() const { return _config; }
    const CostModel &costs() const { return _costs; }
    CostModel &mutableCosts() { return _costs; }

    /** Replace the protection configuration (tests/ablation only).
     *  Note: vcpus is fixed at construction; changing it here has no
     *  effect on the clock count. */
    void setConfig(const VgConfig &config) { _config = config; }

    // --- Charging helpers ---------------------------------------------

    /**
     * Charge a block of kernel computation.
     *
     * @param insts   modelled instruction count (includes the memops)
     * @param memops  discrete loads/stores within those instructions
     * @param xfers   calls/returns/indirect branches executed
     */
    void
    chargeKernelWork(uint64_t insts, uint64_t memops = 0,
                     uint64_t xfers = 0)
    {
        Cycles c = insts * _costs.kernInst;
        if (_config.sandboxMemory)
            c += memops * _costs.sandboxPerMemop;
        if (_config.cfi)
            c += xfers * _costs.cfiPerTransfer;
        clock().advance(c);
        StatSet::add(_hKernInsts, insts);
        StatSet::add(_hKernMemops, memops);
        StatSet::add(_hKernTransfers, xfers);
        bumpCpu(CiKernInsts, insts);
        bumpCpu(CiKernMemops, memops);
        bumpCpu(CiKernTransfers, xfers);
    }

    /** Charge a bulk kernel copy (memcpy/copyin/copyout) of @p bytes. */
    void
    chargeKernelBulk(uint64_t bytes)
    {
        Cycles c = bytes / _costs.bulkBytesPerCycle + 4;
        if (_config.sandboxMemory)
            c += _costs.sandboxPerBulk;
        clock().advance(c);
        StatSet::add(_hKernBulkBytes, bytes);
        bumpCpu(CiKernBulkBytes, bytes);
    }

    /** Charge syscall entry + exit gate cost. */
    void
    chargeSyscallGate()
    {
        Cycles c = _costs.syscallGate;
        if (_config.protectInterruptContext)
            c += _costs.syscallGateVgExtra;
        clock().advance(c);
        StatSet::add(_hSvaSyscalls);
        bumpCpu(CiSvaSyscalls, 1);
    }

    /** Charge trap/interrupt delivery. */
    void
    chargeTrap()
    {
        Cycles c = _costs.trapEntry;
        if (_config.protectInterruptContext)
            c += _costs.trapVgExtra;
        clock().advance(c);
        StatSet::add(_hSvaTraps);
        bumpCpu(CiSvaTraps, 1);
    }

    /** Charge a context switch. */
    void
    chargeContextSwitch()
    {
        Cycles c = _costs.contextSwitch;
        if (_config.protectInterruptContext)
            c += _costs.contextSwitchVgExtra;
        clock().advance(c);
        StatSet::add(_hSvaContextSwitches);
        bumpCpu(CiSvaContextSwitches, 1);
    }

    /** Charge one page-table-entry update. */
    void
    chargeMmuUpdate()
    {
        Cycles c = _costs.mmuUpdate;
        if (_config.mmuChecks)
            c += _costs.mmuUpdateVgExtra;
        clock().advance(c);
        StatSet::add(_hSvaMmuUpdates);
        bumpCpu(CiSvaMmuUpdates, 1);
    }

    /** Charge application-side computation (uninstrumented). */
    void
    chargeUserWork(uint64_t insts)
    {
        clock().advance(insts * _costs.kernInst);
        StatSet::add(_hUserInsts, insts);
        bumpCpu(CiUserInsts, insts);
    }

    /** Charge application-side AES over @p bytes. */
    void
    chargeAes(uint64_t bytes)
    {
        clock().advance(bytes * _costs.aesPerByte);
        StatSet::add(_hAesBytes, bytes);
        bumpCpu(CiAesBytes, bytes);
    }

    /** Charge application-side SHA-256 over @p bytes. */
    void
    chargeSha(uint64_t bytes)
    {
        clock().advance(bytes * _costs.shaPerByte);
        StatSet::add(_hShaBytes, bytes);
        bumpCpu(CiShaBytes, bytes);
    }

  private:
    // Index of each interned rollup counter within a per-CPU namespace.
    enum CounterIdx {
        CiKernInsts,
        CiKernMemops,
        CiKernTransfers,
        CiKernBulkBytes,
        CiSvaSyscalls,
        CiSvaTraps,
        CiSvaContextSwitches,
        CiSvaMmuUpdates,
        CiUserInsts,
        CiAesBytes,
        CiShaBytes,
        CiCount,
    };

    void
    bumpCpu(CounterIdx idx, uint64_t delta)
    {
        if (!_cpuHandles.empty())
            StatSet::add(_cpuHandles[_active][idx], delta);
    }

    std::vector<Clock> _clocks;
    unsigned _active = 0;
    StatSet _stats;
    VgConfig _config;
    CostModel _costs;

    // Interned counters for the per-event charging helpers above; the
    // helpers run on every simulated kernel memory access, so they must
    // not pay a string-keyed map lookup per call.
    StatHandle _hKernInsts = _stats.handle("kernel.insts");
    StatHandle _hKernMemops = _stats.handle("kernel.memops");
    StatHandle _hKernTransfers = _stats.handle("kernel.transfers");
    StatHandle _hKernBulkBytes = _stats.handle("kernel.bulk_bytes");
    StatHandle _hSvaSyscalls = _stats.handle("sva.syscalls");
    StatHandle _hSvaTraps = _stats.handle("sva.traps");
    StatHandle _hSvaContextSwitches =
        _stats.handle("sva.context_switches");
    StatHandle _hSvaMmuUpdates = _stats.handle("sva.mmu_updates");
    StatHandle _hUserInsts = _stats.handle("user.insts");
    StatHandle _hAesBytes = _stats.handle("crypto.aes_bytes");
    StatHandle _hShaBytes = _stats.handle("crypto.sha_bytes");

    // Per-CPU counter handles, [cpu][CounterIdx]; empty when vcpus==1.
    std::vector<std::array<StatHandle, CiCount>> _cpuHandles;
};

} // namespace vg::sim

#endif // VG_SIM_CONTEXT_HH
