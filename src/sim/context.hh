/**
 * @file
 * Aggregated simulation context.
 *
 * A SimContext bundles the clock, statistics, protection configuration
 * and cost model that every layer of the stack shares. It also provides
 * the charging helpers that translate functional events into simulated
 * cycles, so cost policy lives in exactly one place.
 */

#ifndef VG_SIM_CONTEXT_HH
#define VG_SIM_CONTEXT_HH

#include <cstdint>

#include "sim/clock.hh"
#include "sim/config.hh"
#include "sim/costs.hh"
#include "sim/stats.hh"

namespace vg::sim
{

/** Shared simulation state: time, stats, config and cost model. */
class SimContext
{
  public:
    explicit SimContext(VgConfig config = VgConfig::full())
        : _config(config)
    {}

    Clock &clock() { return _clock; }
    const Clock &clock() const { return _clock; }
    StatSet &stats() { return _stats; }
    const VgConfig &config() const { return _config; }
    const CostModel &costs() const { return _costs; }
    CostModel &mutableCosts() { return _costs; }

    /** Replace the protection configuration (tests/ablation only). */
    void setConfig(const VgConfig &config) { _config = config; }

    // --- Charging helpers ---------------------------------------------

    /**
     * Charge a block of kernel computation.
     *
     * @param insts   modelled instruction count (includes the memops)
     * @param memops  discrete loads/stores within those instructions
     * @param xfers   calls/returns/indirect branches executed
     */
    void
    chargeKernelWork(uint64_t insts, uint64_t memops = 0,
                     uint64_t xfers = 0)
    {
        Cycles c = insts * _costs.kernInst;
        if (_config.sandboxMemory)
            c += memops * _costs.sandboxPerMemop;
        if (_config.cfi)
            c += xfers * _costs.cfiPerTransfer;
        _clock.advance(c);
        StatSet::add(_hKernInsts, insts);
        StatSet::add(_hKernMemops, memops);
        StatSet::add(_hKernTransfers, xfers);
    }

    /** Charge a bulk kernel copy (memcpy/copyin/copyout) of @p bytes. */
    void
    chargeKernelBulk(uint64_t bytes)
    {
        Cycles c = bytes / _costs.bulkBytesPerCycle + 4;
        if (_config.sandboxMemory)
            c += _costs.sandboxPerBulk;
        _clock.advance(c);
        StatSet::add(_hKernBulkBytes, bytes);
    }

    /** Charge syscall entry + exit gate cost. */
    void
    chargeSyscallGate()
    {
        Cycles c = _costs.syscallGate;
        if (_config.protectInterruptContext)
            c += _costs.syscallGateVgExtra;
        _clock.advance(c);
        StatSet::add(_hSvaSyscalls);
    }

    /** Charge trap/interrupt delivery. */
    void
    chargeTrap()
    {
        Cycles c = _costs.trapEntry;
        if (_config.protectInterruptContext)
            c += _costs.trapVgExtra;
        _clock.advance(c);
        StatSet::add(_hSvaTraps);
    }

    /** Charge a context switch. */
    void
    chargeContextSwitch()
    {
        Cycles c = _costs.contextSwitch;
        if (_config.protectInterruptContext)
            c += _costs.contextSwitchVgExtra;
        _clock.advance(c);
        StatSet::add(_hSvaContextSwitches);
    }

    /** Charge one page-table-entry update. */
    void
    chargeMmuUpdate()
    {
        Cycles c = _costs.mmuUpdate;
        if (_config.mmuChecks)
            c += _costs.mmuUpdateVgExtra;
        _clock.advance(c);
        StatSet::add(_hSvaMmuUpdates);
    }

    /** Charge application-side computation (uninstrumented). */
    void
    chargeUserWork(uint64_t insts)
    {
        _clock.advance(insts * _costs.kernInst);
        StatSet::add(_hUserInsts, insts);
    }

    /** Charge application-side AES over @p bytes. */
    void
    chargeAes(uint64_t bytes)
    {
        _clock.advance(bytes * _costs.aesPerByte);
        StatSet::add(_hAesBytes, bytes);
    }

    /** Charge application-side SHA-256 over @p bytes. */
    void
    chargeSha(uint64_t bytes)
    {
        _clock.advance(bytes * _costs.shaPerByte);
        StatSet::add(_hShaBytes, bytes);
    }

  private:
    Clock _clock;
    StatSet _stats;
    VgConfig _config;
    CostModel _costs;

    // Interned counters for the per-event charging helpers above; the
    // helpers run on every simulated kernel memory access, so they must
    // not pay a string-keyed map lookup per call.
    StatHandle _hKernInsts = _stats.handle("kernel.insts");
    StatHandle _hKernMemops = _stats.handle("kernel.memops");
    StatHandle _hKernTransfers = _stats.handle("kernel.transfers");
    StatHandle _hKernBulkBytes = _stats.handle("kernel.bulk_bytes");
    StatHandle _hSvaSyscalls = _stats.handle("sva.syscalls");
    StatHandle _hSvaTraps = _stats.handle("sva.traps");
    StatHandle _hSvaContextSwitches =
        _stats.handle("sva.context_switches");
    StatHandle _hSvaMmuUpdates = _stats.handle("sva.mmu_updates");
    StatHandle _hUserInsts = _stats.handle("user.insts");
    StatHandle _hAesBytes = _stats.handle("crypto.aes_bytes");
    StatHandle _hShaBytes = _stats.handle("crypto.sha_bytes");
};

} // namespace vg::sim

#endif // VG_SIM_CONTEXT_HH
