/**
 * @file
 * Virtual Ghost protection-feature configuration.
 *
 * Each flag enables one of the protection mechanisms described in the
 * paper. The benchmark harnesses compare a native() configuration (all
 * protections off, modelling the stock FreeBSD kernel baseline) against
 * full() (the complete Virtual Ghost system); the ablation bench toggles
 * features individually.
 */

#ifndef VG_SIM_CONFIG_HH
#define VG_SIM_CONFIG_HH

namespace vg::sim
{

/** Which Virtual Ghost protections are compiled into / enforced on the
 *  simulated kernel. */
struct VgConfig
{
    /** Load/store sandboxing instrumentation on kernel code (S 4.3.1). */
    bool sandboxMemory = true;

    /**
     * Fuse the sandbox masking sequence into one machine op during
     * lowering (modelling the paper's few-instruction native masking).
     * Semantics and simulated cost are identical to the unfused
     * sequence; disabling this exists for differential testing only.
     */
    bool fuseSandboxMasks = true;

    /** Control-flow integrity labels and checks on kernel code. */
    bool cfi = true;

    /**
     * Load-time machine-code verifier: statically prove, on every
     * translated image, that the sandboxing and CFI passes actually
     * instrumented the code (every load/store/memcpy address masked,
     * no raw returns or indirect calls, labels at all entries and
     * return sites) and refuse to install images that fail. Makes the
     * instrumentation passes untrusted: a miscompile is caught at load
     * time instead of silently voiding the protection story.
     */
    bool verifyMcode = true;

    /**
     * Load-time information-flow verifier: interprocedural taint
     * analysis over laid-out MCode proving that ghost-derived values
     * (loads through ghost pointers, ghost-reading intrinsics) only
     * reach OS-visible channels (NIC/disk/swap/stat/log externs, raw
     * stores into kernel-visible memory) after passing through a
     * seal/HMAC declassifier. Rules VG-IF-01..05; images with findings
     * are refused before signing/caching, same as verifyMcode.
     */
    bool verifyIflow = true;

    /**
     * Use the Kmem fast path: a last-translation cache in front of the
     * MMU plus page-chunked bulk copies. Semantics, simulated cost, and
     * every stat are identical to the reference per-access path;
     * disabling this exists for differential testing only.
     */
    bool kmemFastPath = true;

    /**
     * Use the crypto fast paths: T-table AES, one-shot SHA-256
     * finalize, Montgomery modExp, and cached seal-key derivation.
     * Outputs are bit-identical to the reference implementations;
     * disabling this exists for differential testing only.
     */
    bool cryptoFastPath = true;

    /** Run-time checks on MMU configuration intrinsics (S 4.3.2). */
    bool mmuChecks = true;

    /** IOMMU restrictions preventing DMA into ghost/SVA frames. */
    bool dmaProtection = true;

    /** Save Interrupt Contexts in SVA memory and zero registers on
     *  kernel entry (S 4.6). */
    bool protectInterruptContext = true;

    /** Refuse to execute unsigned native-code translations (S 4.5). */
    bool signedTranslations = true;

    /** Serve randomness from the trusted VM generator (S 4.7). */
    bool secureRng = true;

    /**
     * Trace-tier superinstruction execution in the Executor: hot loop
     * heads and function entries (detected by lightweight back-edge /
     * entry counters) are spliced into superinstruction trace blocks
     * appended to the image, re-proved by the machine-code verifier,
     * re-signed, and then run as threaded DInst blocks with folded
     * cycle-cost bookkeeping. Architectural state, instruction counts,
     * cycle costs and exec.* stats are bit-identical to the plain
     * interpreter; disabling this exists for differential testing and
     * as a perf ablation knob.
     */
    bool traceTier = true;

    /** Executions of a back edge / function entry before a trace is
     *  recorded there (trace-tier knob). */
    unsigned traceHotThreshold = 50;

    /** Maximum recorded instructions per trace; longer paths are cut
     *  into a linear trace at the cap (trace-tier knob). */
    unsigned traceMaxInsts = 512;

    /** Maximum traces spliced into one image (trace-tier knob). */
    unsigned traceMaxPerImage = 64;

    /**
     * Interrupt-driven, ring-based device stack: virtio-style TX/RX
     * descriptor rings on the NIC and a deep request queue on the
     * disk, doorbell/completion semantics, and per-CPU softirq-style
     * completion queues in the scheduler. Payload bytes, packet
     * segmentation and fs/disk/nic stat counts are identical to the
     * legacy synchronous paths (enforced by IoRingEquivalenceSweep);
     * only cost charging and wakeup mechanics differ. Disabling this
     * falls back to the synchronous request-response device model and
     * exists for differential testing and as a perf ablation knob.
     */
    bool asyncIo = true;

    /** Descriptor slots per device ring (TX, RX, and disk request
     *  queue). Posting to a full ring reaps completed slots first and,
     *  if none have completed, waits for the oldest in-flight
     *  descriptor (async-I/O knob). */
    unsigned ringSize = 256;

    /**
     * Interrupt-coalescing holdoff in simulated microseconds: after a
     * device IRQ is taken on a vCPU, further completions that come due
     * within this window are reaped by the still-running bottom half
     * (softirq charge only) instead of raising a fresh interrupt
     * (async-I/O knob).
     */
    unsigned irqCoalesceUs = 16;

    /**
     * Batched ghost-swap eviction pipeline: evictions picked by the
     * second-chance clock are sealed with a scatter-gather AES-CTR +
     * pipelined-HMAC batch (key schedule and MAC-state setup amortised
     * across the batch) and written back through the disk's NCQ ring
     * with one doorbell per batch. Page contents, sealed blobs and
     * work-done stat counts are identical to the per-page reference
     * path (enforced by SwapEquivalenceSweep); only cost charging and
     * writeback mechanics differ. Disabling this falls back to one
     * synchronous seal + disk round-trip per evicted page and exists
     * for differential testing and as a perf ablation knob.
     */
    bool swapFastPath = true;

    /** Maximum pages sealed and written back per eviction batch
     *  (ghost-swap knob). */
    unsigned swapBatchPages = 32;

    /**
     * Deterministic-schedule seed. Everything in the simulator that
     * draws a "random" decision (fleet machine-step order, traffic
     * arrival times, tenant placement, bench workload shuffles) forks
     * its PRNG stream from this value, so a whole run — including a
     * whole-fleet run across many machines — is a pure function of
     * (workload, config, seed) and replays bit-identically.
     */
    uint64_t seed = 42;

    /**
     * Number of simulated vCPUs. Each vCPU owns a TLB, a timer, and a
     * cycle clock; a deterministic interleaver in the scheduler decides
     * which vCPU runs next. With vcpus == 1 the machine is stat- and
     * time-identical to the historical single-CPU model.
     */
    unsigned vcpus = 1;

    /**
     * Use the SMP scheduler (per-CPU run queues, idle balancing,
     * cross-CPU preemption). At vcpus == 1 its behaviour is identical
     * to the legacy single-queue loop; disabling this exists for
     * differential testing only and requires vcpus == 1.
     */
    bool smpScheduler = true;

    /** True when any instrumentation that affects codegen is active. */
    bool
    anyInstrumentation() const
    {
        return sandboxMemory || cfi;
    }

    /** The baseline: a stock kernel with no Virtual Ghost features. */
    static VgConfig
    native()
    {
        VgConfig c;
        c.sandboxMemory = false;
        c.cfi = false;
        c.mmuChecks = false;
        c.dmaProtection = false;
        c.protectInterruptContext = false;
        c.signedTranslations = false;
        c.secureRng = false;
        return c;
    }

    /** The complete Virtual Ghost configuration. */
    static VgConfig full() { return VgConfig{}; }
};

} // namespace vg::sim

#endif // VG_SIM_CONFIG_HH
