/**
 * @file
 * Global simulated-time source.
 *
 * Every modelled hardware or software action advances a Clock by some
 * number of cycles; benchmark harnesses convert cycle deltas into
 * microseconds at the modelled core frequency (3.4 GHz, matching the
 * paper's i7-3770 testbed).
 */

#ifndef VG_SIM_CLOCK_HH
#define VG_SIM_CLOCK_HH

#include <cstdint>

namespace vg::sim
{

/** Cycle count type. */
using Cycles = uint64_t;

/**
 * A monotonically increasing cycle counter.
 *
 * The clock is a passive accumulator: components call advance() as they
 * model work. It also exposes the modelled frequency for time
 * conversions.
 */
class Clock
{
  public:
    /** Modelled core frequency in cycles per microsecond (3.4 GHz). */
    static constexpr double cyclesPerUsec = 3400.0;

    Clock() = default;

    /** Advance simulated time by @p n cycles. */
    void advance(Cycles n) { _now += n; }

    /**
     * Advance simulated time to absolute cycle @p t if it is in the
     * future; a no-op otherwise. Used for causal synchronisation
     * between per-CPU clocks (a waking CPU may not observe an event
     * before the CPU that produced it reached that point in time).
     */
    void
    advanceTo(Cycles t)
    {
        if (t > _now)
            _now = t;
    }

    /** Current simulated time in cycles. */
    Cycles now() const { return _now; }

    /** Reset simulated time to zero (for test isolation). */
    void reset() { _now = 0; }

    /** Convert a cycle delta into microseconds of simulated time. */
    static double
    toUsec(Cycles cycles)
    {
        return static_cast<double>(cycles) / cyclesPerUsec;
    }

    /** Convert a cycle delta into seconds of simulated time. */
    static double
    toSec(Cycles cycles)
    {
        return toUsec(cycles) / 1e6;
    }

  private:
    Cycles _now = 0;
};

/**
 * RAII stopwatch that measures elapsed simulated cycles on a Clock.
 */
class Stopwatch
{
  public:
    explicit Stopwatch(const Clock &clock)
        : _clock(clock), _start(clock.now())
    {}

    /** Cycles elapsed since construction (or the last restart()). */
    Cycles elapsed() const { return _clock.now() - _start; }

    /** Elapsed simulated microseconds. */
    double elapsedUsec() const { return Clock::toUsec(elapsed()); }

    /** Restart the measurement window. */
    void restart() { _start = _clock.now(); }

  private:
    const Clock &_clock;
    Cycles _start;
};

} // namespace vg::sim

#endif // VG_SIM_CLOCK_HH
