/**
 * @file
 * Deterministic vCPU interleaver.
 *
 * The simulated machine has N vCPUs but the simulation itself is
 * single-threaded: exactly one vCPU executes at a time and the
 * interleaver decides which one goes next. Round-robin rotation makes
 * every run bit-reproducible regardless of host scheduling — the same
 * workload always produces the same interleaving, the same stats and
 * the same per-CPU clocks.
 */

#ifndef VG_SIM_INTERLEAVE_HH
#define VG_SIM_INTERLEAVE_HH

#include <cstdint>
#include <vector>

namespace vg::sim
{

/**
 * Rotating round-robin picker over N vCPUs.
 *
 * next() returns the first CPU at or after the rotation cursor that
 * has work, then advances the cursor past it so every CPU with work
 * gets a turn before any CPU gets two. With n == 1 it always returns
 * CPU 0, matching the single-CPU model trivially.
 */
class RoundRobinInterleaver
{
  public:
    explicit RoundRobinInterleaver(unsigned n) : _n(n ? n : 1) {}

    /**
     * Pick the next vCPU to run.
     *
     * @param has_work  per-CPU flag, nonzero if that CPU has a
     *                  runnable task (size must be >= n)
     * @return chosen CPU index, or -1 if no CPU has work
     */
    int
    next(const std::vector<uint8_t> &has_work)
    {
        for (unsigned i = 0; i < _n; i++) {
            unsigned cpu = (_cursor + i) % _n;
            if (has_work[cpu]) {
                _cursor = (cpu + 1) % _n;
                return static_cast<int>(cpu);
            }
        }
        return -1;
    }

    /** Reset the rotation cursor (test isolation). */
    void reset() { _cursor = 0; }

  private:
    unsigned _n;
    unsigned _cursor = 0;
};

} // namespace vg::sim

#endif // VG_SIM_INTERLEAVE_HH
