/**
 * @file
 * Deterministic vCPU interleaver.
 *
 * The simulated machine has N vCPUs but the simulation itself is
 * single-threaded: exactly one vCPU executes at a time and the
 * interleaver decides which one goes next. Round-robin rotation makes
 * every run bit-reproducible regardless of host scheduling — the same
 * workload always produces the same interleaving, the same stats and
 * the same per-CPU clocks.
 */

#ifndef VG_SIM_INTERLEAVE_HH
#define VG_SIM_INTERLEAVE_HH

#include <cmath>
#include <cstdint>
#include <vector>

namespace vg::sim
{

/**
 * SplitMix64: the deterministic PRNG behind every seeded schedule in
 * the simulator (fleet machine-step order, traffic arrival draws,
 * tenant placement). Chosen because it is stateless-simple — one
 * 64-bit counter — so a stream can be forked into independent
 * sub-streams (sub(), used to hand each machine its own seed) without
 * the streams ever correlating.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(uint64_t seed) : _state(seed) {}

    uint64_t
    next()
    {
        uint64_t z = (_state += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform draw in [0, n). */
    uint64_t
    below(uint64_t n)
    {
        return n ? next() % n : 0;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return double(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Exponential draw with mean @p mean (Poisson interarrivals). */
    double
    exponential(double mean)
    {
        double u = uniform();
        if (u >= 1.0)
            u = 0.9999999999999999;
        return -mean * std::log(1.0 - u);
    }

    /** Fork an independent sub-stream (e.g. one per machine). */
    uint64_t
    sub(uint64_t idx) const
    {
        SplitMix64 fork(_state ^ (0xa0761d6478bd642full * (idx + 1)));
        return fork.next();
    }

  private:
    uint64_t _state;
};

/**
 * Rotating round-robin picker over N vCPUs.
 *
 * next() returns the first CPU at or after the rotation cursor that
 * has work, then advances the cursor past it so every CPU with work
 * gets a turn before any CPU gets two. With n == 1 it always returns
 * CPU 0, matching the single-CPU model trivially.
 */
class RoundRobinInterleaver
{
  public:
    explicit RoundRobinInterleaver(unsigned n) : _n(n ? n : 1) {}

    /**
     * Pick the next vCPU to run.
     *
     * @param has_work  per-CPU flag, nonzero if that CPU has a
     *                  runnable task (size must be >= n)
     * @return chosen CPU index, or -1 if no CPU has work
     */
    int
    next(const std::vector<uint8_t> &has_work)
    {
        for (unsigned i = 0; i < _n; i++) {
            unsigned cpu = (_cursor + i) % _n;
            if (has_work[cpu]) {
                _cursor = (cpu + 1) % _n;
                return static_cast<int>(cpu);
            }
        }
        return -1;
    }

    /** Reset the rotation cursor (test isolation). */
    void reset() { _cursor = 0; }

  private:
    unsigned _n;
    unsigned _cursor = 0;
};

/**
 * Cross-machine extension of the deterministic interleaver: a seeded
 * step schedule over N machines.
 *
 * Where RoundRobinInterleaver decides which *vCPU* of one machine runs
 * next, SeededInterleaver decides which *machine* of a fleet steps
 * next. Each round it draws a Fisher-Yates permutation of the machines
 * that have work from a SplitMix64 stream, so the whole-fleet step
 * order is a pure function of the seed: two fleet runs with the same
 * seed replay bit-identically, and a different seed exercises a
 * different (but equally reproducible) cross-machine ordering.
 */
class SeededInterleaver
{
  public:
    SeededInterleaver(uint64_t seed, unsigned n)
        : _rng(seed), _n(n ? n : 1)
    {}

    /**
     * Draw this round's machine-step order.
     *
     * @param has_work  per-machine flag, nonzero if that machine has
     *                  pending work (size must be >= n)
     * @return machine indices in execution order (machines without
     *         work are omitted; empty when the fleet is idle)
     */
    std::vector<unsigned>
    schedule(const std::vector<uint8_t> &has_work)
    {
        std::vector<unsigned> order;
        order.reserve(_n);
        for (unsigned m = 0; m < _n; m++)
            if (has_work[m])
                order.push_back(m);
        for (size_t i = order.size(); i > 1; i--)
            std::swap(order[i - 1], order[_rng.below(i)]);
        return order;
    }

    /** Derived seed for machine @p idx's private schedule streams. */
    uint64_t machineSeed(unsigned idx) const { return _rng.sub(idx); }

    /** The shared schedule stream (traffic draws, probe ordering). */
    SplitMix64 &rng() { return _rng; }

  private:
    SplitMix64 _rng;
    unsigned _n;
};

} // namespace vg::sim

#endif // VG_SIM_INTERLEAVE_HH
