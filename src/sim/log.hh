/**
 * @file
 * Logging and error-reporting helpers.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (simulator bugs), fatal() is for user/configuration errors,
 * warn() and inform() are non-fatal status channels.
 */

#ifndef VG_SIM_LOG_HH
#define VG_SIM_LOG_HH

#include <cstdarg>
#include <string>

namespace vg::sim
{

/** Verbosity levels for the status channels. */
enum class LogLevel
{
    Quiet,
    Warn,
    Inform,
    Debug,
};

/** Set the global verbosity; defaults to Warn. */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

/**
 * Report an unrecoverable internal error (a simulator bug) and abort.
 *
 * @param fmt printf-style format string.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user error (bad configuration or arguments)
 * and exit with status 1.
 *
 * @param fmt printf-style format string.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious but survivable condition. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operational status. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report detailed debugging output (only at LogLevel::Debug). */
void debug(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace vg::sim

#endif // VG_SIM_LOG_HH
