#include "sim/stats.hh"

#include <sstream>

namespace vg::sim
{

std::string
StatSet::dump() const
{
    std::ostringstream os;
    for (const auto &[name, value] : _counters)
        os << name << " " << value << "\n";
    return os.str();
}

} // namespace vg::sim
