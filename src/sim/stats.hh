/**
 * @file
 * Named statistic counters.
 *
 * A StatSet is a registry of named 64-bit counters used throughout the
 * simulation (kernel memory accesses, CFI checks, MMU updates, DMA
 * bytes, ...). Counters are created on first use and can be dumped or
 * snapshotted for differential measurement.
 */

#ifndef VG_SIM_STATS_HH
#define VG_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vg::sim
{

/** A registry of named monotonically increasing counters. */
class StatSet
{
  public:
    /** Increment the counter @p name by @p delta (creating it at 0). */
    void
    add(const std::string &name, uint64_t delta = 1)
    {
        _counters[name] += delta;
    }

    /** Current value of @p name (0 if never touched). */
    uint64_t
    get(const std::string &name) const
    {
        auto it = _counters.find(name);
        return it == _counters.end() ? 0 : it->second;
    }

    /** All counters in name order. */
    const std::map<std::string, uint64_t> &all() const { return _counters; }

    /** Reset every counter to zero. */
    void reset() { _counters.clear(); }

    /** Render the counters as one line per stat, "name value". */
    std::string dump() const;

  private:
    std::map<std::string, uint64_t> _counters;
};

} // namespace vg::sim

#endif // VG_SIM_STATS_HH
