/**
 * @file
 * Named statistic counters.
 *
 * A StatSet is a registry of named 64-bit counters used throughout the
 * simulation (kernel memory accesses, CFI checks, MMU updates, DMA
 * bytes, ...). Counters are created on first use and can be dumped or
 * snapshotted for differential measurement.
 *
 * Hot paths intern a counter once via handle() and bump it through the
 * returned StatHandle — a stable pointer into the registry — so no
 * string-keyed map lookup happens per event. Handles stay valid for
 * the life of the StatSet, across reset().
 */

#ifndef VG_SIM_STATS_HH
#define VG_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vg::sim
{

/** Interned counter: bump via StatSet::add(handle) with no lookup. */
using StatHandle = uint64_t *;

/** A registry of named monotonically increasing counters. */
class StatSet
{
  public:
    /** Increment the counter @p name by @p delta (creating it at 0). */
    void
    add(const std::string &name, uint64_t delta = 1)
    {
        _counters[name] += delta;
    }

    /**
     * Intern @p name, creating the counter at 0. The handle is a
     * stable pointer (std::map references never move) valid until the
     * StatSet is destroyed; reset() zeroes it in place.
     */
    StatHandle handle(const std::string &name)
    {
        return &_counters[name];
    }

    /** Increment an interned counter: one add, no lookup. */
    static void
    add(StatHandle h, uint64_t delta = 1)
    {
        *h += delta;
    }

    /** Current value of @p name (0 if never touched). */
    uint64_t
    get(const std::string &name) const
    {
        auto it = _counters.find(name);
        return it == _counters.end() ? 0 : it->second;
    }

    /** All counters in name order. */
    const std::map<std::string, uint64_t> &all() const { return _counters; }

    /** Reset every counter to zero (interned handles stay valid). */
    void
    reset()
    {
        for (auto &[name, value] : _counters)
            value = 0;
    }

    /** Render the counters as one line per stat, "name value". */
    std::string dump() const;

  private:
    std::map<std::string, uint64_t> _counters;
};

} // namespace vg::sim

#endif // VG_SIM_STATS_HH
