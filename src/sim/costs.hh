/**
 * @file
 * Cycle cost model.
 *
 * All timing in the simulation comes from these constants multiplied by
 * event counts that the functional model actually executes (kernel
 * instructions and memory operations, CFI checks, MMU updates, DMA
 * bytes, crypto bytes, ...). The defaults are calibrated so that the
 * *native* configuration lands near the absolute LMBench latencies the
 * paper reports for stock FreeBSD on a 3.4 GHz i7-3770, and the Virtual
 * Ghost deltas reproduce the paper's relative overheads. EXPERIMENTS.md
 * documents the calibration.
 */

#ifndef VG_SIM_COSTS_HH
#define VG_SIM_COSTS_HH

#include <cstdint>

#include "sim/clock.hh"

namespace vg::sim
{

/** Per-event cycle costs. */
struct CostModel
{
    // --- Kernel computation ------------------------------------------
    /** Base cost of one modelled kernel instruction. */
    Cycles kernInst = 1;

    /** Extra cycles per discrete kernel load/store when the sandboxing
     *  pass is active (cmp + branch + or, plus pipeline effects). */
    Cycles sandboxPerMemop = 7;

    /** Extra cycles per kernel call/return or indirect call when CFI is
     *  active (label fetch + compare + masking). */
    Cycles cfiPerTransfer = 9;

    /** Fixed extra cycles per bulk operation (memcpy/copyin/copyout)
     *  when sandboxing is active: memcpy() is range-checked once, not
     *  per word (S 5), so bulk cost is O(1). */
    Cycles sandboxPerBulk = 12;

    /** Bulk kernel copy throughput, bytes per cycle (rep movsb-ish). */
    uint64_t bulkBytesPerCycle = 16;

    // --- Kernel entry/exit -------------------------------------------
    /** Native trap/syscall entry+exit microcode and stack switch. */
    Cycles syscallGate = 220;

    /** Extra gate cost under VG: Interrupt Context save into SVA
     *  memory, register zeroing, and IST redirection (S 4.6). */
    Cycles syscallGateVgExtra = 620;

    /** Native hardware page-fault / interrupt delivery cost. */
    Cycles trapEntry = 400;

    /** Extra trap delivery cost under VG (IC save in SVA memory). */
    Cycles trapVgExtra = 12000;

    /** Native context-switch cost (register file + CR3 reload). */
    Cycles contextSwitch = 500;

    /** Extra context-switch cost under VG (Thread State in SVA memory,
     *  ghost partition remap). */
    Cycles contextSwitchVgExtra = 650;

    // --- MMU ----------------------------------------------------------
    /** Native cost of one page-table-entry update. */
    Cycles mmuUpdate = 45;

    /** Extra cost of the VG checks on one PTE update (frame type
     *  lookup, ghost range checks). */
    Cycles mmuUpdateVgExtra = 170;

    /** TLB miss page-walk cost per level. */
    Cycles pageWalkPerLevel = 20;

    /** TLB hit cost. */
    Cycles tlbHit = 1;

    /** Cost on the initiating CPU of sending a shootdown IPI and
     *  waiting for the acknowledgement (write ICR + spin). */
    Cycles ipiSend = 2000;

    /** Cost on the target CPU of taking the shootdown IPI (interrupt
     *  delivery, invlpg, EOI). */
    Cycles ipiReceive = 2600;

    // --- Devices -------------------------------------------------------
    /** SSD access latency per request (queue + flash). */
    Cycles ssdRequest = 85000; // ~25 us

    /** SSD streaming throughput, bytes per cycle (~500 MB/s). */
    uint64_t ssdBytesPerCycle = 0; // 0 => use ratio below
    /** SSD cycles per 4 KB block transferred. */
    Cycles ssdPerBlock = 27000; // ~8 us per 4 KB => ~500 MB/s

    /** NIC per-packet processing cost on the legacy synchronous path
     *  (descriptor + IRQ amortised into every send). */
    Cycles nicPerPacket = 3400; // ~1 us

    /** NIC per-byte cost modelling gigabit wire rate (~125 MB/s). */
    Cycles nicCyclesPer64Bytes = 1740; // 3400 c/us / 125 B/us * 64

    // --- Async ring stack (VgConfig::asyncIo) --------------------------
    /** Preparing one ring descriptor (slot write + index update). */
    Cycles ringDescriptor = 180;

    /** Ringing a device doorbell: one uncached MMIO write. The
     *  trusted boundary is crossed once per doorbell, not once per
     *  packet, so a batch of descriptors shares this cost. */
    Cycles ringDoorbell = 600;

    /** Running one softirq bottom-half batch (reap completion ring,
     *  schedule wakeups). The device *interrupt* itself is charged as
     *  a trap, at most once per coalescing window. */
    Cycles softirqDispatch = 700;

    // --- Crypto (application-side, software implementation) -----------
    /** AES-128 software cost per byte (T-table implementation). */
    Cycles aesPerByte = 18;

    /** SHA-256 software cost per byte. */
    Cycles shaPerByte = 13;

    /** Fixed setup cost of one seal/unseal operation: AES key
     *  schedule, CTR block setup, HMAC ipad/opad state clone. The
     *  batched swap pipeline pays this once per batch instead of once
     *  per page. */
    Cycles sealSetup = 3600;

    /** One RSA private-key operation (modexp at our key sizes). */
    Cycles rsaPrivOp = 170000; // ~50 us

    /** One RSA public-key operation (small exponent). */
    Cycles rsaPubOp = 17000; // ~5 us

    // --- SVA / VG services ---------------------------------------------
    /** allocgm()/freegm() fixed cost per call (validation, map). */
    Cycles ghostAllocCall = 900;

    /** Per-page cost inside allocgm/freegm (unmap check + zero). */
    Cycles ghostAllocPerPage = 650;

    /** sva.getKey() retrieval cost. */
    Cycles getKeyCall = 1200;

    /** Trusted RNG instruction cost per 16 bytes. */
    Cycles rngPer16Bytes = 320;
};

} // namespace vg::sim

#endif // VG_SIM_COSTS_HH
