#include "fleet/machine.hh"

#include <algorithm>
#include <cstring>
#include <deque>
#include <set>

#include "apps/thttpd.hh"

namespace vg::fleet
{

uint8_t
ghostPatternByte(const crypto::AesKey &key, uint64_t page, uint64_t i)
{
    return uint8_t(key[page % key.size()] ^ key[(page + 5) % key.size()] ^
                   uint8_t(i * 131));
}

Machine::Machine(unsigned id, const kern::SystemConfig &config)
    : _id(id), _sys(std::make_unique<kern::System>(config))
{}

void
Machine::boot()
{
    _sys->boot();
}

void
Machine::plantContent(const Tenant &t, uint64_t file_bytes)
{
    // Tenant content lives under "/t/": make sure the directory
    // exists (idempotent — Exists is fine on every call but the
    // first).
    kern::Ino dir = 0;
    size_t slash = t.path.find_last_of('/');
    if (slash != std::string::npos && slash > 0)
        _sys->kernel().fs().mkdir(t.path.substr(0, slash), dir);
    kern::Ino ino = 0;
    _sys->kernel().fs().create(t.path, ino);
    // Content is public static data; the byte value keys off the
    // tenant id so a cross-tenant mixup would be visible.
    std::vector<uint8_t> data(file_bytes, uint8_t(0x20 + t.id % 0x5f));
    _sys->kernel().fs().write(ino, 0, data.data(), data.size());
}

void
Machine::provisionTenant(const Tenant &t)
{
    _binaries.erase(t.id);
    _binaries.emplace(
        t.id, _sys->vm().packageApp(t.name, "fleet-app-v1", t.key));
    _tenantGen[t.id] = t.keyGeneration;
}

void
Machine::dropTenant(unsigned tenant_id)
{
    _binaries.erase(tenant_id);
    _tenantGen.erase(tenant_id);
}

uint64_t
Machine::now() const
{
    uint64_t t = 0;
    const sim::SimContext &ctx = _sys->ctx();
    for (unsigned c = 0; c < ctx.vcpuCount(); c++)
        t = std::max<uint64_t>(t, ctx.clockOf(c).now());
    return t;
}

std::map<std::string, uint64_t>
Machine::statsSnapshot() const
{
    return _sys->ctx().stats().all();
}

EpochResult
Machine::serveEpoch(const std::vector<MachineRequest> &batch,
                    const TenantDirectory &dir, const EpochKnobs &knobs)
{
    EpochResult out;
    if (batch.empty())
        return out;
    _epochs++;

    kern::System &sys = *_sys;
    unsigned vcpus = std::max(1u, sys.ctx().vcpuCount());

    // Round-robin the batch across per-vCPU client workers; each
    // worker drives the server instance on its own port.
    std::vector<std::vector<MachineRequest>> share(vcpus);
    for (size_t i = 0; i < batch.size(); i++)
        share[i % vcpus].push_back(batch[i]);

    // Tenants with traffic this epoch run their ghost worker. Sorted
    // set => deterministic fork order.
    std::set<unsigned> epoch_tenants;
    if (knobs.tenantGhostWork)
        for (const MachineRequest &r : batch)
            if (_binaries.count(r.tenant))
                epoch_tenants.insert(r.tenant);

    out.served.resize(batch.size());
    for (size_t j = 0; j < batch.size(); j++) {
        out.served[j].id = batch[j].id;
        out.served[j].tenant = batch[j].tenant;
        out.served[j].arrivalUs = batch[j].arrivalUs;
    }

    uint64_t t0 = now();
    sys.runProcess("epoch", [&](kern::UserApi &api) {
        // --- per-tenant ghost workers --------------------------------
        std::vector<uint64_t> tenant_pids;
        for (unsigned tid : epoch_tenants) {
            const sva::AppBinary *bin = &_binaries.at(tid);
            const crypto::AesKey want = dir.tenant(tid).key;
            unsigned pages = knobs.ghostPagesPerTenant;
            tenant_pids.push_back(api.fork([bin, want, pages](
                                               kern::UserApi &capi) {
                return capi.execve(bin, [&](kern::UserApi &napi) {
                    auto key = napi.getKey();
                    if (!key || *key != want)
                        return 1;
                    // Ghost working-set churn: allocate, fill with the
                    // key-derived pattern, yield so sibling tenants
                    // pile pressure on the frame allocator, then read
                    // everything back (faulting swapped pages in
                    // through the sealed swap path) and verify.
                    hw::Vaddr va = napi.allocGhost(pages);
                    if (!va)
                        return 2;
                    std::vector<uint8_t> page(hw::pageSize);
                    for (unsigned p = 0; p < pages; p++) {
                        for (uint64_t i = 0; i < hw::pageSize; i++)
                            page[i] = ghostPatternByte(*key, p, i);
                        if (!napi.ghostWrite(va + p * hw::pageSize,
                                             page.data(), page.size()))
                            return 3;
                    }
                    napi.yield();
                    std::vector<uint8_t> back(hw::pageSize);
                    for (unsigned p = 0; p < pages; p++) {
                        if (!napi.ghostRead(va + p * hw::pageSize,
                                            back.data(), back.size()))
                            return 4;
                        for (uint64_t i = 0; i < hw::pageSize; i++)
                            if (back[i] != ghostPatternByte(*key, p, i))
                                return 5;
                    }
                    return 0;
                });
            }));
        }

        // --- servers: one event-driven thttpdMulti per vCPU ----------
        std::vector<uint64_t> servers;
        for (unsigned i = 0; i < vcpus; i++) {
            if (share[i].empty())
                continue;
            uint64_t reqs = share[i].size();
            unsigned slots = knobs.serverSlots;
            servers.push_back(api.fork([i, reqs,
                                        slots](kern::UserApi &capi) {
                apps::ThttpdMultiConfig cfg;
                cfg.port = uint16_t(80 + i);
                cfg.maxRequests = reqs;
                cfg.maxConcurrent = slots;
                return apps::thttpdMulti(capi, cfg);
            }));
        }
        for (int i = 0; i < 4; i++)
            api.yield();

        // --- clients: pipelined request issue per vCPU ----------------
        std::vector<uint64_t> clients;
        for (unsigned i = 0; i < vcpus; i++) {
            if (share[i].empty())
                continue;
            const std::vector<MachineRequest> *myshare = &share[i];
            // Result slots for this worker: batch indices i, i+vcpus,..
            clients.push_back(api.fork([i, vcpus, myshare, &dir, &knobs,
                                        &out](kern::UserApi &capi) {
                uint16_t port = uint16_t(80 + i);
                struct Open
                {
                    int fd;
                    size_t idx; ///< index into *myshare
                    uint64_t t0;
                };
                std::deque<Open> open;
                size_t next = 0;
                auto clock_now = [&]() {
                    return capi.kernel().ctx().clock().now();
                };
                auto openOne = [&]() {
                    const MachineRequest &r = (*myshare)[next];
                    size_t idx = next++;
                    uint64_t rt0 = clock_now();
                    int fd = capi.connect(port);
                    if (fd < 0)
                        return;
                    std::string req =
                        "GET " + dir.tenant(r.tenant).path +
                        " HTTP/1.0\r\n\r\n";
                    if (capi.sendHost(fd, req.data(), req.size()) !=
                        int64_t(req.size())) {
                        capi.close(fd);
                        return;
                    }
                    open.push_back({fd, idx, rt0});
                };
                while (next < myshare->size() &&
                       open.size() < knobs.concurrency)
                    openOne();
                std::vector<uint8_t> buf(64 * 1024);
                while (!open.empty()) {
                    Open o = open.front();
                    open.pop_front();
                    uint64_t got = 0;
                    bool headers_done = false;
                    std::string head;
                    while (true) {
                        int64_t n = capi.recvHost(o.fd, buf.data(),
                                                  buf.size());
                        if (n <= 0)
                            break;
                        if (!headers_done) {
                            head.append(
                                reinterpret_cast<char *>(buf.data()),
                                size_t(n));
                            size_t he = head.find("\r\n\r\n");
                            if (he != std::string::npos) {
                                headers_done = true;
                                got += head.size() - he - 4;
                            }
                        } else {
                            got += uint64_t(n);
                        }
                    }
                    capi.close(o.fd);
                    const MachineRequest &r = (*myshare)[o.idx];
                    ServedRequest &sr = out.served[o.idx * vcpus + i];
                    sr.id = r.id;
                    sr.tenant = r.tenant;
                    sr.bytes = got;
                    sr.ok = headers_done && got > 0;
                    sr.serviceCycles = clock_now() - o.t0;
                    if (next < myshare->size())
                        openOne();
                }
                return 0;
            }));
        }

        int status;
        for (uint64_t cli : clients)
            api.waitpid(cli, status);
        for (uint64_t srv : servers)
            api.waitpid(srv, status);
        for (uint64_t tp : tenant_pids) {
            api.waitpid(tp, status);
            if (status != 0)
                out.tenantFailures++;
        }
        return 0;
    });
    out.elapsedCycles = now() - t0;
    return out;
}

} // namespace vg::fleet
