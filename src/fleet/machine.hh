/**
 * @file
 * One fleet machine: a whole simulated Virtual Ghost system plus the
 * epoch-granular serving driver the fabric steps it by.
 *
 * Each machine is an independent clock/stat domain (its own
 * SimContext, PhysMem, CpuSet, SvaVm, kernel, disk, NICs). The fleet
 * advances a machine by handing it one *epoch batch* of requests:
 * serveEpoch() runs a single kernel session that forks one
 * event-driven thttpdMulti server per vCPU, a ghost worker per tenant
 * that has traffic this epoch (execve of the tenant's signed binary,
 * key delivery via sva.getKey, ghost working-set churn — the thing
 * that drives PR 8's swap under fleet-induced memory pressure), and
 * pipelined client workers that hold many connections open
 * concurrently. Everything inside the machine is deterministic, so a
 * machine's entire life is a pure function of the batches it is fed.
 */

#ifndef VG_FLEET_MACHINE_HH
#define VG_FLEET_MACHINE_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fleet/tenant.hh"
#include "kernel/system.hh"

namespace vg::fleet
{

/** Deterministic per-tenant ghost fill byte (key-derived, so the
 *  disclosure tests can recompute what a tenant wrote and scan a lost
 *  machine's disk and RAM for it). */
uint8_t ghostPatternByte(const crypto::AesKey &key, uint64_t page,
                         uint64_t i);

/** One request as routed to a machine. */
struct MachineRequest
{
    uint64_t id = 0;       ///< fleet-global request id
    unsigned tenant = 0;
    uint64_t arrivalUs = 0; ///< fleet-time arrival (for latency math)
};

/** One request's in-machine outcome. */
struct ServedRequest
{
    uint64_t id = 0;
    unsigned tenant = 0;
    uint64_t arrivalUs = 0; ///< copied through from the request
    uint64_t bytes = 0;
    bool ok = false;
    /** connect() to last response byte, on the issuing client's
     *  clock. */
    uint64_t serviceCycles = 0;
};

/** One epoch's outcome. */
struct EpochResult
{
    std::vector<ServedRequest> served;
    /** Machine-time cycles the epoch took (max over vCPU clocks). */
    uint64_t elapsedCycles = 0;
    /** Ghost-tenant worker failures (key refused, data corrupt). */
    uint64_t tenantFailures = 0;
};

/** Per-epoch serving knobs (from FleetConfig). */
struct EpochKnobs
{
    /** Client pipeline depth per vCPU worker. */
    unsigned concurrency = 64;
    /** Server connection-slot cap. */
    unsigned serverSlots = 256;
    /** Ghost pages each tenant worker allocates and churns. */
    unsigned ghostPagesPerTenant = 16;
    /** Run the per-tenant ghost workers at all. */
    bool tenantGhostWork = true;
};

class Machine
{
  public:
    Machine(unsigned id, const kern::SystemConfig &config);

    unsigned id() const { return _id; }
    kern::System &sys() { return *_sys; }
    const kern::System &sys() const { return *_sys; }

    /** Boot the stack (once). */
    void boot();

    /** Plant @p t's content file (every machine replicates every
     *  tenant's static content; only keys are per-machine state). */
    void plantContent(const Tenant &t, uint64_t file_bytes);

    /** Provision (or re-provision after a key-chain advance) @p t:
     *  package its signed binary with the current tenant key. */
    void provisionTenant(const Tenant &t);

    /** Failover cleanup on the surviving side: nothing to scrub — the
     *  lost machine holds only sealed ghost state — but the stale
     *  binary must go so the old generation cannot be re-exec'd. */
    void dropTenant(unsigned tenant_id);

    /** Tenants currently provisioned (their key generations). */
    const std::map<unsigned, uint64_t> &provisioned() const
    {
        return _tenantGen;
    }

    /** Serve one epoch batch. */
    EpochResult serveEpoch(const std::vector<MachineRequest> &batch,
                           const TenantDirectory &dir,
                           const EpochKnobs &knobs);

    /** Machine time (max over vCPU clocks), cycles. */
    uint64_t now() const;

    /** Full stat rollup (the per-machine bench/equivalence surface). */
    std::map<std::string, uint64_t> statsSnapshot() const;

    uint64_t epochsServed() const { return _epochs; }

  private:
    unsigned _id;
    std::unique_ptr<kern::System> _sys;
    /** Tenant id -> signed binary packaged with that tenant's key. */
    std::map<unsigned, sva::AppBinary> _binaries;
    /** Tenant id -> key generation the binary was packaged at. */
    std::map<unsigned, uint64_t> _tenantGen;
    uint64_t _epochs = 0;
};

} // namespace vg::fleet

#endif // VG_FLEET_MACHINE_HH
