/**
 * @file
 * Fleet-scale serving: the orchestrator that ties fabric, load
 * balancer, traffic generator and tenant directory together.
 *
 * Fleet::run() advances fleet time in fixed epochs. Each epoch it
 * health-probes every machine over the fabric (ejecting and draining
 * failures), pulls the epoch's arrivals from the traffic generator,
 * routes them through the L4 balancer, then steps the machines with
 * queued work in the order drawn by the seeded cross-machine
 * interleaver. A request's end-to-end latency is its queue wait
 * (fleet-time arrival to service start, which grows when a machine
 * falls behind), plus the fabric hop, plus its measured in-machine
 * service time. Every component draws from streams forked off one
 * seed, so two runs with the same (config, seed) produce
 * bit-identical request logs, latency streams and per-machine stat
 * rollups — the property FleetEquivalenceSweep enforces.
 */

#ifndef VG_FLEET_FLEET_HH
#define VG_FLEET_FLEET_HH

#include <deque>
#include <string>

#include "fleet/fabric.hh"
#include "fleet/lb.hh"
#include "fleet/traffic.hh"

namespace vg::fleet
{

/** Whole-fleet configuration. */
struct FleetConfig
{
    unsigned machines = 4;
    unsigned tenants = 16;
    /** Per-machine sizing + protection config (vg.vcpus = per-machine
     *  vCPUs, vg.seed = the fleet seed). */
    kern::SystemConfig system;

    LbPolicy policy = LbPolicy::ConsistentHash;

    TrafficMode mode = TrafficMode::OpenLoop;
    uint64_t requests = 1000;
    double openLoopRps = 20000.0;
    unsigned closedLoopUsers = 256;
    uint64_t thinkTimeUs = 500;

    /** Fleet-time slice per scheduling round. */
    uint64_t epochUs = 2000;

    /** Tenant content size (every machine replicates it). */
    uint64_t fileBytes = 4096;

    EpochKnobs knobs;

    /** Hard cap on scheduling rounds (runaway-workload backstop). */
    uint64_t maxEpochs = 200000;
};

/** Whole-fleet run outcome. */
struct FleetResult
{
    uint64_t served = 0;
    uint64_t failures = 0;
    uint64_t dropped = 0; ///< no healthy machine to route to
    uint64_t bytes = 0;
    uint64_t fleetTimeUs = 0;
    uint64_t epochs = 0;
    uint64_t tenantFailures = 0;

    /** Per-request end-to-end latency (µs), in completion order. */
    std::vector<uint64_t> latencyUs;

    /**
     * Deterministic request stream: one line per completed request
     * ("id tenant machine lat_us bytes ok") in completion order —
     * the bit-compared surface of FleetEquivalenceSweep.
     */
    std::vector<std::string> requestLog;

    /** Per-machine full stat rollups at end of run. */
    std::vector<std::map<std::string, uint64_t>> machineStats;

    /** Per-machine served-request counts. */
    std::vector<uint64_t> machineServed;

    double
    throughputRps() const
    {
        return fleetTimeUs > 0
                   ? double(served) * 1e6 / double(fleetTimeUs)
                   : 0.0;
    }
};

class Fleet
{
  public:
    explicit Fleet(const FleetConfig &config);

    /** Boot machines, plant content, provision tenants. */
    void provision();

    /** Run the configured workload to completion. provision() is
     *  called automatically if it has not been. */
    FleetResult run();

    /**
     * Failure injection: at epoch @p at_epoch, sever @p machine's
     * fabric link. The next health probe ejects it from the LB,
     * drains its connections, requeues its pending requests and
     * migrates its primary tenants (key-chain advance + re-provision
     * on the new primary).
     */
    void scheduleFailure(unsigned machine, uint64_t at_epoch);

    Fabric &fabric() { return *_fabric; }
    LoadBalancer &lb() { return *_lb; }
    TenantDirectory &tenants() { return *_tenants; }
    const FleetConfig &config() const { return _config; }

  private:
    void handleEjection(unsigned m,
                        std::vector<std::deque<MachineRequest>> &queues,
                        std::deque<MachineRequest> &backlog);

    FleetConfig _config;
    std::unique_ptr<Fabric> _fabric;
    std::unique_ptr<LoadBalancer> _lb;
    std::unique_ptr<TenantDirectory> _tenants;
    std::unique_ptr<TrafficGen> _traffic;
    bool _provisioned = false;
    uint64_t _failEpoch = UINT64_MAX;
    unsigned _failMachine = 0;
};

} // namespace vg::fleet

#endif // VG_FLEET_FLEET_HH
