/**
 * @file
 * Simulated L4 load balancer.
 *
 * Routes flows to machines under one of two policies:
 *
 *  - ConsistentHash: a hash ring with `vnodes` virtual nodes per
 *    machine. A flow key always lands on the same machine while the
 *    ring is stable, and ejecting a machine only moves the flows that
 *    hashed to its vnodes (classic consistent-hashing churn bound).
 *
 *  - LeastConn: route each flow to the healthy machine with the
 *    fewest active connections (lowest index breaks ties), tracked by
 *    connOpened()/connClosed() accounting.
 *
 * Health checks are external: the fleet driver probes each machine
 * over the fabric and calls eject() on failure, which removes the
 * machine from routing. Draining the ejected machine's connections
 * and migrating its tenants is the driver's job (see Fleet::run).
 */

#ifndef VG_FLEET_LB_HH
#define VG_FLEET_LB_HH

#include <cstdint>
#include <vector>

namespace vg::fleet
{

/** Routing policies. */
enum class LbPolicy
{
    ConsistentHash,
    LeastConn,
};

const char *lbPolicyName(LbPolicy policy);

class LoadBalancer
{
  public:
    LoadBalancer(LbPolicy policy, unsigned machines, uint64_t seed,
                 unsigned vnodes = 64);

    LbPolicy policy() const { return _policy; }
    unsigned machineCount() const
    {
        return unsigned(_healthy.size());
    }

    // --- health -------------------------------------------------------
    void eject(unsigned m);
    void restore(unsigned m);
    bool healthy(unsigned m) const { return _healthy[m] != 0; }
    unsigned healthyCount() const;

    // --- routing ------------------------------------------------------
    /** Pick a machine for @p flow_key; -1 when no machine is healthy. */
    int route(uint64_t flow_key);

    /** Connection accounting (drives LeastConn and telemetry). */
    void connOpened(unsigned m) { _active[m]++; }
    void connClosed(unsigned m)
    {
        if (_active[m] > 0)
            _active[m]--;
    }
    /** Drop every active connection on @p m (drain on eject). */
    uint64_t drain(unsigned m);

    uint64_t activeConns(unsigned m) const { return _active[m]; }
    uint64_t routedTotal(unsigned m) const { return _routed[m]; }

    /** 64-bit finalizer used for flow keys (SplitMix64's mixer). */
    static uint64_t mix(uint64_t x);

  private:
    struct VNode
    {
        uint64_t point;
        unsigned machine;
    };

    LbPolicy _policy;
    std::vector<VNode> _ring; ///< sorted by point
    std::vector<uint8_t> _healthy;
    std::vector<uint64_t> _active;
    std::vector<uint64_t> _routed;
};

} // namespace vg::fleet

#endif // VG_FLEET_LB_HH
