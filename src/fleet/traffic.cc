#include "fleet/traffic.hh"

#include <algorithm>

namespace vg::fleet
{

const char *
trafficModeName(TrafficMode mode)
{
    return mode == TrafficMode::OpenLoop ? "open-loop" : "closed-loop";
}

TrafficGen::TrafficGen(TrafficMode mode, uint64_t requests,
                       unsigned tenants, uint64_t seed, double rps,
                       unsigned users, uint64_t think_us)
    : _mode(mode), _requests(requests), _tenants(std::max(1u, tenants)),
      _rng(seed), _gapMeanUs(rps > 0 ? 1e6 / rps : 1000.0),
      _thinkUs(think_us)
{
    if (_mode == TrafficMode::ClosedLoop) {
        // Stagger user start times across one mean think interval so
        // the first wave is not one synchronized burst.
        _userReadyUs.resize(std::max(1u, users));
        for (auto &t : _userReadyUs)
            t = _rng.below(_thinkUs + 1);
    } else {
        _nextArrivalUs = uint64_t(_rng.exponential(_gapMeanUs));
    }
}

FleetRequest
TrafficGen::makeRequest(uint64_t arrival_us)
{
    FleetRequest r;
    r.id = ++_issued;
    r.tenant = unsigned(_rng.below(_tenants));
    r.arrivalUs = arrival_us;
    return r;
}

std::vector<FleetRequest>
TrafficGen::arrivalsUntil(uint64_t until_us)
{
    std::vector<FleetRequest> out;
    if (_mode == TrafficMode::OpenLoop) {
        while (_issued < _requests && _nextArrivalUs < until_us) {
            out.push_back(makeRequest(_nextArrivalUs));
            _nextArrivalUs += uint64_t(_rng.exponential(_gapMeanUs));
        }
        return out;
    }

    // Closed loop: every user whose ready time has come issues one
    // request; it will not be ready again until completed() is fed.
    for (unsigned u = 0;
         u < _userReadyUs.size() && _issued < _requests; u++) {
        if (_userReadyUs[u] >= until_us)
            continue;
        FleetRequest r = makeRequest(_userReadyUs[u]);
        _reqUser[r.id] = u;
        // Parked until the response comes back.
        _userReadyUs[u] = UINT64_MAX;
        out.push_back(r);
    }
    return out;
}

void
TrafficGen::completed(uint64_t id, uint64_t completion_us)
{
    if (_mode != TrafficMode::ClosedLoop)
        return;
    auto it = _reqUser.find(id);
    if (it == _reqUser.end())
        return;
    _userReadyUs[it->second] = completion_us + _thinkUs;
    _reqUser.erase(it);
}

} // namespace vg::fleet
