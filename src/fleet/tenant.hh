/**
 * @file
 * Per-tenant ghost-key management at fleet scale.
 *
 * Every tenant is one ghosting application replicated across the
 * fleet: it owns a content path, a home (primary) machine, and a
 * key chain rooted in the fleet master key. Tenant keys are derived —
 * HMAC-SHA256(master, "vg-tenant-key" || id || generation) truncated
 * to an AES-128 key — never stored, so advancing the generation
 * (failover, scheduled rotation) revokes every previously-derived key
 * without touching the other tenants. The directory is the control
 * plane's view; the keys themselves only ever live inside each
 * machine's SvaVm once the tenant is provisioned there.
 */

#ifndef VG_FLEET_TENANT_HH
#define VG_FLEET_TENANT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/aes.hh"

namespace vg::fleet
{

/** One ghost tenant. */
struct Tenant
{
    unsigned id = 0;
    std::string name; ///< "tenant-007"
    std::string path; ///< served content, e.g. "/t/007.bin"

    /** Primary machine (consistent-hash anchor; failover moves it). */
    unsigned primary = 0;

    /** Key-chain position. Bumped on migration: every key derived for
     *  the pre-migration generation is dead fleet-wide. */
    uint64_t keyGeneration = 1;

    /** The current derived application key. */
    crypto::AesKey key{};

    uint64_t migrations = 0;
    uint64_t requestsServed = 0;
    uint64_t bytesServed = 0;
};

/** The fleet control plane's tenant table. */
class TenantDirectory
{
  public:
    TenantDirectory(const crypto::AesKey &master, unsigned tenants);

    unsigned count() const { return unsigned(_tenants.size()); }
    Tenant &tenant(unsigned id) { return _tenants[id]; }
    const Tenant &tenant(unsigned id) const { return _tenants[id]; }
    const std::vector<Tenant> &all() const { return _tenants; }
    std::vector<Tenant> &all() { return _tenants; }

    /** Derive tenant @p id's key at @p generation from the master. */
    crypto::AesKey deriveKey(unsigned id, uint64_t generation) const;

    /** Failover: move @p id's primary to @p new_machine, advance the
     *  key chain and re-derive. The old generation's key is dead. */
    void migrate(unsigned id, unsigned new_machine);

  private:
    std::vector<uint8_t> _master;
    std::vector<Tenant> _tenants;
};

} // namespace vg::fleet

#endif // VG_FLEET_TENANT_HH
