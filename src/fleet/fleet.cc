#include "fleet/fleet.hh"

#include <algorithm>
#include <cstdio>

#include "sim/clock.hh"

namespace vg::fleet
{

namespace
{

/** Cycles -> whole microseconds, rounding up (a request is not done
 *  until its last cycle has run). */
uint64_t
ceilUs(uint64_t cycles)
{
    double us = double(cycles) / sim::Clock::cyclesPerUsec;
    uint64_t w = uint64_t(us);
    return double(w) < us ? w + 1 : w;
}

/** Wire encoding of a dispatch batch (64 bytes per request models an
 *  L4 forwarding header; content does not matter to the fabric). */
std::vector<uint8_t>
batchFrame(size_t requests)
{
    return std::vector<uint8_t>(std::max<size_t>(1, requests) * 64,
                                0xd1);
}

} // namespace

Fleet::Fleet(const FleetConfig &config) : _config(config)
{
    _fabric = std::make_unique<Fabric>(_config.machines,
                                       _config.system);
    _lb = std::make_unique<LoadBalancer>(_config.policy,
                                         _config.machines,
                                         _config.system.vg.seed);

    // Master key from the seeded stream: the whole key hierarchy —
    // master, per-tenant, per-generation — replays with the run.
    sim::SplitMix64 krng(_config.system.vg.seed ^ 0x6d61737465726bull);
    crypto::AesKey master;
    for (size_t i = 0; i < master.size(); i += 8) {
        uint64_t w = krng.next();
        for (size_t j = 0; j < 8 && i + j < master.size(); j++)
            master[i + j] = uint8_t(w >> (8 * j));
    }
    _tenants = std::make_unique<TenantDirectory>(master,
                                                 _config.tenants);
    for (Tenant &t : _tenants->all())
        t.primary = t.id % _config.machines;

    _traffic = std::make_unique<TrafficGen>(
        _config.mode, _config.requests, _config.tenants,
        _fabric->interleaver().machineSeed(0xffffu),
        _config.openLoopRps, _config.closedLoopUsers,
        _config.thinkTimeUs);
}

void
Fleet::provision()
{
    if (_provisioned)
        return;
    _provisioned = true;
    _fabric->bootAll();
    // Replicated serving model: every machine carries every tenant's
    // static content and a binary packaged (on that machine's SvaVm)
    // with the tenant's current key. Ghost state is never replicated
    // — it exists only where the tenant's processes ran.
    for (unsigned m = 0; m < _fabric->machineCount(); m++) {
        Machine &mach = _fabric->machine(m);
        for (const Tenant &t : _tenants->all()) {
            mach.plantContent(t, _config.fileBytes);
            mach.provisionTenant(t);
        }
    }
}

void
Fleet::scheduleFailure(unsigned machine, uint64_t at_epoch)
{
    _failMachine = machine;
    _failEpoch = at_epoch;
}

void
Fleet::handleEjection(
    unsigned m, std::vector<std::deque<MachineRequest>> &queues,
    std::deque<MachineRequest> &backlog)
{
    // Drain: connections die with the machine; queued requests are
    // requeued for re-routing next epoch.
    _lb->drain(m);
    while (!queues[m].empty()) {
        backlog.push_back(queues[m].front());
        queues[m].pop_front();
    }
    // Tenant failover: every tenant whose primary was the lost
    // machine migrates — key-chain advance, so any key the lost
    // machine ever held is dead — and every surviving machine is
    // re-provisioned at the new generation.
    for (Tenant &t : _tenants->all()) {
        if (t.primary != m)
            continue;
        unsigned to = m;
        for (unsigned step = 1; step <= _fabric->machineCount();
             step++) {
            unsigned cand = (m + step) % _fabric->machineCount();
            if (_lb->healthy(cand)) {
                to = cand;
                break;
            }
        }
        _tenants->migrate(t.id, to);
        for (unsigned s = 0; s < _fabric->machineCount(); s++) {
            if (!_lb->healthy(s))
                continue;
            _fabric->machine(s).provisionTenant(_tenants->tenant(t.id));
        }
    }
}

FleetResult
Fleet::run()
{
    provision();

    const unsigned M = _fabric->machineCount();
    FleetResult res;
    res.machineServed.assign(M, 0);

    std::vector<std::deque<MachineRequest>> queues(M);
    std::deque<MachineRequest> backlog;
    std::vector<uint64_t> busyUntil(M, 0);
    uint64_t now = 0;

    auto flowKey = [&](const MachineRequest &r) {
        // Consistent hash keys on the tenant (cache/ghost affinity);
        // least-conn keys per request (the key is ignored anyway).
        return _config.policy == LbPolicy::ConsistentHash
                   ? uint64_t(r.tenant) + 1
                   : r.id;
    };

    for (uint64_t epoch = 0; epoch < _config.maxEpochs; epoch++) {
        res.epochs = epoch + 1;
        if (epoch == _failEpoch)
            _fabric->injectLinkFailure(_failMachine);

        // Health checks: probe over the fabric, eject on failure.
        for (unsigned m = 0; m < M; m++) {
            if (_lb->healthy(m) && !_fabric->pingMachine(m)) {
                _lb->eject(m);
                handleEjection(m, queues, backlog);
            }
        }

        uint64_t epoch_end = now + _config.epochUs;

        // Route this epoch's work: drained/requeued requests first,
        // then fresh arrivals.
        auto routeOne = [&](const MachineRequest &r) {
            int m = _lb->route(flowKey(r));
            if (m < 0) {
                res.dropped++;
                _traffic->completed(r.id, epoch_end);
                return;
            }
            queues[unsigned(m)].push_back(r);
            _lb->connOpened(unsigned(m));
        };
        while (!backlog.empty()) {
            MachineRequest r = backlog.front();
            backlog.pop_front();
            routeOne(r);
        }
        for (const FleetRequest &fr :
             _traffic->arrivalsUntil(epoch_end))
            routeOne({fr.id, fr.tenant, fr.arrivalUs});

        // Step machines with work in the seeded cross-machine order.
        std::vector<uint8_t> has_work(M, 0);
        for (unsigned m = 0; m < M; m++)
            has_work[m] = queues[m].empty() ? 0 : 1;
        std::vector<unsigned> order =
            _fabric->interleaver().schedule(has_work);

        for (unsigned m : order) {
            std::vector<MachineRequest> batch(queues[m].begin(),
                                              queues[m].end());
            queues[m].clear();

            // Dispatch hop over the fabric rings.
            double hop_us =
                _fabric->sendToMachine(m, batchFrame(batch.size()));
            if (hop_us < 0) {
                // Link died between probe and dispatch: requeue.
                for (const MachineRequest &r : batch) {
                    _lb->connClosed(m);
                    backlog.push_back(r);
                }
                continue;
            }
            _fabric->receiveAtMachine(m);

            uint64_t start = std::max(now, busyUntil[m]);
            EpochResult er = _fabric->machine(m).serveEpoch(
                batch, *_tenants, _config.knobs);
            uint64_t elapsed_us = ceilUs(er.elapsedCycles);
            busyUntil[m] = start + elapsed_us;
            res.tenantFailures += er.tenantFailures;

            // Completion notification back to the LB node.
            _fabric->sendToLb(m, batchFrame(1));
            _fabric->receiveAtLb(m);

            uint64_t completion_us = start + elapsed_us;
            for (const ServedRequest &sr : er.served) {
                // Queue wait: fleet-time arrival to service start.
                // (Arrivals mid-epoch can postdate the start stamp.)
                uint64_t wait_us = start > sr.arrivalUs
                                       ? start - sr.arrivalUs
                                       : 0;
                uint64_t lat_us = wait_us + uint64_t(hop_us) +
                                  ceilUs(sr.serviceCycles);
                res.latencyUs.push_back(lat_us);
                char line[128];
                std::snprintf(line, sizeof(line),
                              "req=%llu tenant=%u mach=%u lat_us=%llu "
                              "bytes=%llu ok=%d",
                              (unsigned long long)sr.id, sr.tenant, m,
                              (unsigned long long)lat_us,
                              (unsigned long long)sr.bytes,
                              sr.ok ? 1 : 0);
                res.requestLog.push_back(line);
                if (sr.ok) {
                    res.served++;
                    res.bytes += sr.bytes;
                    res.machineServed[m]++;
                    Tenant &t = _tenants->tenant(sr.tenant);
                    t.requestsServed++;
                    t.bytesServed += sr.bytes;
                } else {
                    res.failures++;
                }
                _lb->connClosed(m);
                _traffic->completed(sr.id, completion_us);
            }
        }

        now = epoch_end;

        bool queues_empty = backlog.empty();
        for (unsigned m = 0; m < M && queues_empty; m++)
            queues_empty = queues[m].empty();
        if (_traffic->done() && queues_empty)
            break;
        // Nothing routable left and none healthy: bail out.
        if (_lb->healthyCount() == 0 && _traffic->done())
            break;
    }

    uint64_t busiest = now;
    for (unsigned m = 0; m < M; m++)
        busiest = std::max(busiest, busyUntil[m]);
    res.fleetTimeUs = busiest;

    res.machineStats.reserve(M);
    for (unsigned m = 0; m < M; m++)
        res.machineStats.push_back(
            _fabric->machine(m).statsSnapshot());
    return res;
}

} // namespace vg::fleet
