/**
 * @file
 * The multi-machine fabric.
 *
 * Instantiates N independent machines and wires each one to a central
 * load-balancer node over a dedicated NIC pair speaking the existing
 * hw::DescRing protocol (post / doorbell / completion / reap — the
 * same rings PR 7 put on the in-machine devices). The LB node is its
 * own clock/stat domain: fabric hops charge descriptor work on the
 * sender and wire time on the link schedule, exactly like any other
 * NIC transfer, and the per-hop wire latency feeds the fleet's
 * end-to-end request latency.
 *
 * Cross-machine determinism: the fabric owns a SeededInterleaver —
 * the machine-level extension of the per-vCPU round-robin interleaver
 * — which draws each round's machine-step order from a SplitMix64
 * stream seeded by VgConfig::seed. Machines are internally
 * deterministic, so the whole fleet replays bit-identically from
 * (workload, config, seed).
 */

#ifndef VG_FLEET_FABRIC_HH
#define VG_FLEET_FABRIC_HH

#include <memory>
#include <vector>

#include "fleet/machine.hh"
#include "sim/interleave.hh"

namespace vg::fleet
{

class Fabric
{
  public:
    /** Build @p machines machines from @p config and wire each to the
     *  LB node with a connected NIC pair. */
    Fabric(unsigned machines, const kern::SystemConfig &config);

    unsigned machineCount() const
    {
        return unsigned(_machines.size());
    }
    Machine &machine(unsigned m) { return *_machines[m]; }
    const Machine &machine(unsigned m) const { return *_machines[m]; }

    /** Boot every machine. */
    void bootAll();

    /** The LB node's clock/stat domain. */
    sim::SimContext &lbCtx() { return *_lbCtx; }

    /** The seeded cross-machine step scheduler. */
    sim::SeededInterleaver &interleaver() { return *_interleaver; }

    /**
     * Push @p frame from the LB node to machine @p m over the
     * DescRing pair (one posted descriptor + doorbell + reap).
     * Returns the hop's wire time in microseconds, or a negative
     * value when the link is down (failure injection).
     */
    double sendToMachine(unsigned m, const std::vector<uint8_t> &frame);

    /** Machine -> LB direction of the same protocol. */
    double sendToLb(unsigned m, const std::vector<uint8_t> &frame);

    /** Drain one frame off machine @p m's fabric RX queue. */
    std::vector<uint8_t> receiveAtMachine(unsigned m);

    /** Drain one frame off the LB side of machine @p m's pair. */
    std::vector<uint8_t> receiveAtLb(unsigned m);

    /**
     * Health probe: round-trip a probe frame LB -> machine -> LB.
     * False when the link is down or the echo does not come back —
     * the signal the fleet driver turns into an LB ejection.
     */
    bool pingMachine(unsigned m);

    /** Failure injection: sever machine @p m's fabric link. */
    void injectLinkFailure(unsigned m) { _linkDown[m] = 1; }
    void clearLinkFailure(unsigned m) { _linkDown[m] = 0; }
    bool linkDown(unsigned m) const { return _linkDown[m] != 0; }

    /** Fabric telemetry (vg_lint --dump-fleet). */
    uint64_t framesToMachine(unsigned m) const { return _framesTo[m]; }
    uint64_t framesToLb(unsigned m) const { return _framesFrom[m]; }
    const hw::Nic &lbNic(unsigned m) const { return *_lbNics[m]; }
    const hw::Nic &machNic(unsigned m) const { return *_machNics[m]; }

  private:
    double ringSend(hw::Nic &tx, sim::SimContext &tx_ctx,
                    const std::vector<uint8_t> &frame);
    static std::vector<uint8_t> ringReceive(hw::Nic &rx);

    /** LB node hardware: its own context, memory and IOMMU. */
    std::unique_ptr<sim::SimContext> _lbCtx;
    std::unique_ptr<hw::PhysMem> _lbMem;
    std::unique_ptr<hw::Iommu> _lbIommu;

    std::vector<std::unique_ptr<Machine>> _machines;
    /** Per machine: the LB-side and machine-side fabric endpoints. */
    std::vector<std::unique_ptr<hw::Nic>> _lbNics;
    std::vector<std::unique_ptr<hw::Nic>> _machNics;
    std::vector<uint8_t> _linkDown;
    std::vector<uint64_t> _framesTo;
    std::vector<uint64_t> _framesFrom;

    std::unique_ptr<sim::SeededInterleaver> _interleaver;
};

} // namespace vg::fleet

#endif // VG_FLEET_FABRIC_HH
