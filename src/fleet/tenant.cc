#include "fleet/tenant.hh"

#include <cstdio>
#include <cstring>

#include "crypto/hmac.hh"

namespace vg::fleet
{

TenantDirectory::TenantDirectory(const crypto::AesKey &master,
                                 unsigned tenants)
    : _master(master.begin(), master.end())
{
    _tenants.resize(tenants);
    for (unsigned i = 0; i < tenants; i++) {
        Tenant &t = _tenants[i];
        t.id = i;
        char buf[32];
        std::snprintf(buf, sizeof(buf), "tenant-%03u", i);
        t.name = buf;
        std::snprintf(buf, sizeof(buf), "/t/%03u.bin", i);
        t.path = buf;
        t.key = deriveKey(i, t.keyGeneration);
    }
}

crypto::AesKey
TenantDirectory::deriveKey(unsigned id, uint64_t generation) const
{
    // HKDF-style expand: domain label || tenant id || generation,
    // MACed under the master. Truncation of HMAC-SHA256 to 128 bits
    // is the standard KDF output cut.
    uint8_t info[13 + 8 + 8];
    std::memcpy(info, "vg-tenant-key", 13);
    uint64_t id64 = id;
    for (int i = 0; i < 8; i++) {
        info[13 + i] = uint8_t(id64 >> (8 * i));
        info[21 + i] = uint8_t(generation >> (8 * i));
    }
    crypto::Digest d = crypto::hmacSha256(_master, info, sizeof(info));
    crypto::AesKey key;
    std::memcpy(key.data(), d.data(), key.size());
    return key;
}

void
TenantDirectory::migrate(unsigned id, unsigned new_machine)
{
    Tenant &t = _tenants[id];
    t.primary = new_machine;
    t.keyGeneration++;
    t.key = deriveKey(id, t.keyGeneration);
    t.migrations++;
}

} // namespace vg::fleet
