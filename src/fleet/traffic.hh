/**
 * @file
 * Fleet traffic generator.
 *
 * Produces the request arrival process the load balancer routes:
 *
 *  - Open loop: Poisson arrivals — exponential interarrival gaps
 *    drawn from the seeded SplitMix64 stream at a configured rate.
 *    Arrival times never react to fleet latency, so overload shows up
 *    as queueing delay in the tail percentiles (the honest open-loop
 *    property closed-loop generators hide).
 *
 *  - Closed loop: a population of users, each issuing its next
 *    request a think-time after its previous response lands. Load
 *    self-limits at (users / round-trip), the classic closed-loop
 *    behaviour.
 *
 * Every draw comes from one seeded stream, so the whole arrival
 * process — ids, tenants, times — replays bit-identically.
 */

#ifndef VG_FLEET_TRAFFIC_HH
#define VG_FLEET_TRAFFIC_HH

#include <cstdint>
#include <map>
#include <vector>

#include "sim/interleave.hh"

namespace vg::fleet
{

/** Arrival modes. */
enum class TrafficMode
{
    OpenLoop,
    ClosedLoop,
};

const char *trafficModeName(TrafficMode mode);

/** One generated request. */
struct FleetRequest
{
    uint64_t id = 0;
    unsigned tenant = 0;
    uint64_t arrivalUs = 0;
};

class TrafficGen
{
  public:
    /**
     * @param mode      arrival process
     * @param requests  total requests to issue
     * @param tenants   tenant population (uniform pick per request)
     * @param seed      stream seed (forked from the fleet seed)
     * @param rps       open-loop arrival rate (requests/sec)
     * @param users     closed-loop user population
     * @param think_us  closed-loop think time between requests
     */
    TrafficGen(TrafficMode mode, uint64_t requests, unsigned tenants,
               uint64_t seed, double rps, unsigned users,
               uint64_t think_us);

    /** Pull every request arriving before @p until_us. */
    std::vector<FleetRequest> arrivalsUntil(uint64_t until_us);

    /** Closed-loop feedback: request @p id completed at
     *  @p completion_us (no-op in open loop). */
    void completed(uint64_t id, uint64_t completion_us);

    /** True once every request has been issued. */
    bool done() const { return _issued >= _requests; }

    uint64_t issued() const { return _issued; }
    uint64_t total() const { return _requests; }
    TrafficMode mode() const { return _mode; }

  private:
    FleetRequest makeRequest(uint64_t arrival_us);

    TrafficMode _mode;
    uint64_t _requests;
    unsigned _tenants;
    sim::SplitMix64 _rng;
    double _gapMeanUs; ///< open-loop mean interarrival
    uint64_t _thinkUs;

    uint64_t _issued = 0;
    uint64_t _nextArrivalUs = 0; ///< open loop: next arrival time

    /** Closed loop: each user's next-issue time. */
    std::vector<uint64_t> _userReadyUs;
    /** Closed loop: in-flight request id -> issuing user. */
    std::map<uint64_t, unsigned> _reqUser;
};

} // namespace vg::fleet

#endif // VG_FLEET_TRAFFIC_HH
