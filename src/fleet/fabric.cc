#include "fleet/fabric.hh"

#include <algorithm>

#include "sim/clock.hh"

namespace vg::fleet
{

namespace
{

/** LB node sizing: a switch-class box, not a server — a small frame
 *  pool is plenty for descriptor staging. */
constexpr uint64_t lbNodeFrames = 512;

} // namespace

Fabric::Fabric(unsigned machines, const kern::SystemConfig &config)
{
    // The LB node runs a single-queue context with the same protection
    // config (its clock costs mirror a machine's NIC path).
    sim::VgConfig lb_vg = config.vg;
    lb_vg.vcpus = 1;
    _lbCtx = std::make_unique<sim::SimContext>(lb_vg);
    _lbMem = std::make_unique<hw::PhysMem>(lbNodeFrames);
    _lbIommu = std::make_unique<hw::Iommu>(*_lbMem, *_lbCtx);

    _machines.reserve(machines);
    _lbNics.reserve(machines);
    _machNics.reserve(machines);
    for (unsigned m = 0; m < machines; m++) {
        _machines.push_back(std::make_unique<Machine>(m, config));
        Machine &mach = *_machines.back();
        _lbNics.push_back(std::make_unique<hw::Nic>(
            *_lbIommu, *_lbCtx, "fabric-lb"));
        _machNics.push_back(std::make_unique<hw::Nic>(
            mach.sys().iommu(), mach.sys().ctx(), "fabric"));
        _lbNics.back()->connectTo(_machNics.back().get());
        _machNics.back()->connectTo(_lbNics.back().get());
    }
    _linkDown.assign(machines, 0);
    _framesTo.assign(machines, 0);
    _framesFrom.assign(machines, 0);

    _interleaver = std::make_unique<sim::SeededInterleaver>(
        config.vg.seed, machines);
}

void
Fabric::bootAll()
{
    for (auto &m : _machines)
        m->boot();
}

double
Fabric::ringSend(hw::Nic &tx, sim::SimContext &tx_ctx,
                 const std::vector<uint8_t> &frame)
{
    // Fabric framing: an 8-byte little-endian payload length, then
    // the payload, chunked at the NIC MTU. The receive side
    // reassembles packets until the header's length is satisfied, so
    // one logical fabric frame survives any MTU.
    std::vector<uint8_t> wireframe(8 + frame.size());
    for (int i = 0; i < 8; i++)
        wireframe[size_t(i)] = uint8_t(frame.size() >> (8 * i));
    std::copy(frame.begin(), frame.end(), wireframe.begin() + 8);

    // Post one descriptor per MTU chunk, one doorbell for the batch —
    // the PR 7 ring protocol, across the fabric.
    uint64_t t0 = tx_ctx.clock().now();
    uint64_t off = 0;
    do {
        uint64_t n =
            std::min<uint64_t>(wireframe.size() - off, hw::Nic::mtu);
        hw::RingDesc d;
        d.cookie = off;
        d.host = wireframe.data() + off;
        d.len = uint32_t(n);
        if (!tx.txPost(d)) {
            tx.txReapAll();
            if (!tx.txPost(d))
                return -1.0;
        }
        off += n;
    } while (off < wireframe.size());
    uint64_t ready = tx.txDoorbell();
    tx.txReapAll();
    uint64_t now = tx_ctx.clock().now();
    uint64_t wire = ready > std::max(t0, now) ? ready - std::max(t0, now)
                                              : 0;
    return double(wire) / sim::Clock::cyclesPerUsec;
}

std::vector<uint8_t>
Fabric::ringReceive(hw::Nic &rx)
{
    // Reassemble one logical frame: packets arrive in order, the
    // first begins with the 8-byte length header.
    std::vector<uint8_t> acc = rx.receive();
    if (acc.size() < 8)
        return {};
    uint64_t want = 0;
    for (int i = 0; i < 8; i++)
        want |= uint64_t(acc[size_t(i)]) << (8 * i);
    while (acc.size() < 8 + want) {
        std::vector<uint8_t> next = rx.receive();
        if (next.empty())
            return {}; // truncated mid-frame: drop
        acc.insert(acc.end(), next.begin(), next.end());
    }
    return std::vector<uint8_t>(acc.begin() + 8, acc.end());
}

double
Fabric::sendToMachine(unsigned m, const std::vector<uint8_t> &frame)
{
    if (_linkDown[m])
        return -1.0;
    double us = ringSend(*_lbNics[m], *_lbCtx, frame);
    if (us >= 0)
        _framesTo[m]++;
    return us;
}

double
Fabric::sendToLb(unsigned m, const std::vector<uint8_t> &frame)
{
    if (_linkDown[m])
        return -1.0;
    double us =
        ringSend(*_machNics[m], _machines[m]->sys().ctx(), frame);
    if (us >= 0)
        _framesFrom[m]++;
    return us;
}

std::vector<uint8_t>
Fabric::receiveAtMachine(unsigned m)
{
    return ringReceive(*_machNics[m]);
}

std::vector<uint8_t>
Fabric::receiveAtLb(unsigned m)
{
    return ringReceive(*_lbNics[m]);
}

bool
Fabric::pingMachine(unsigned m)
{
    if (_linkDown[m])
        return false;
    static const std::vector<uint8_t> probe = {'p', 'i', 'n', 'g'};
    if (sendToMachine(m, probe) < 0)
        return false;
    std::vector<uint8_t> got = receiveAtMachine(m);
    if (got != probe)
        return false;
    if (sendToLb(m, got) < 0)
        return false;
    return receiveAtLb(m) == got;
}

} // namespace vg::fleet
