#include "fleet/lb.hh"

#include <algorithm>

#include "sim/interleave.hh"

namespace vg::fleet
{

const char *
lbPolicyName(LbPolicy policy)
{
    return policy == LbPolicy::ConsistentHash ? "consistent-hash"
                                              : "least-conn";
}

uint64_t
LoadBalancer::mix(uint64_t x)
{
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

LoadBalancer::LoadBalancer(LbPolicy policy, unsigned machines,
                           uint64_t seed, unsigned vnodes)
    : _policy(policy), _healthy(machines, 1), _active(machines, 0),
      _routed(machines, 0)
{
    // Place vnodes machines * vnodes points on the ring from the
    // seeded stream, so the ring layout replays with the run.
    sim::SplitMix64 rng(seed ^ 0x1bf5ull);
    _ring.reserve(size_t(machines) * vnodes);
    for (unsigned m = 0; m < machines; m++)
        for (unsigned v = 0; v < vnodes; v++)
            _ring.push_back({rng.next(), m});
    std::sort(_ring.begin(), _ring.end(),
              [](const VNode &a, const VNode &b) {
                  return a.point < b.point ||
                         (a.point == b.point && a.machine < b.machine);
              });
}

unsigned
LoadBalancer::healthyCount() const
{
    unsigned n = 0;
    for (uint8_t h : _healthy)
        n += h;
    return n;
}

void
LoadBalancer::eject(unsigned m)
{
    if (m < _healthy.size())
        _healthy[m] = 0;
}

void
LoadBalancer::restore(unsigned m)
{
    if (m < _healthy.size())
        _healthy[m] = 1;
}

uint64_t
LoadBalancer::drain(unsigned m)
{
    uint64_t n = _active[m];
    _active[m] = 0;
    return n;
}

int
LoadBalancer::route(uint64_t flow_key)
{
    if (healthyCount() == 0)
        return -1;

    if (_policy == LbPolicy::LeastConn) {
        int best = -1;
        for (unsigned m = 0; m < _healthy.size(); m++) {
            if (!_healthy[m])
                continue;
            if (best < 0 || _active[m] < _active[unsigned(best)])
                best = int(m);
        }
        _routed[unsigned(best)]++;
        return best;
    }

    // Consistent hash: first vnode at or after the key's point whose
    // machine is healthy, wrapping around the ring.
    uint64_t point = mix(flow_key);
    auto it = std::lower_bound(
        _ring.begin(), _ring.end(), point,
        [](const VNode &v, uint64_t p) { return v.point < p; });
    for (size_t step = 0; step < _ring.size(); step++) {
        if (it == _ring.end())
            it = _ring.begin();
        if (_healthy[it->machine]) {
            _routed[it->machine]++;
            return int(it->machine);
        }
        ++it;
    }
    return -1;
}

} // namespace vg::fleet
