#include "hw/nic.hh"

#include "sim/log.hh"

namespace vg::hw
{

Nic::Nic(Iommu &iommu, sim::SimContext &ctx)
    : _iommu(iommu), _ctx(ctx), _linkFreeAt(ctx.vcpuCount(), 0),
      _hTxPackets(ctx.stats().handle("nic.tx_packets")),
      _hTxBytes(ctx.stats().handle("nic.tx_bytes")),
      _hRxPackets(ctx.stats().handle("nic.rx_packets"))
{}

uint64_t
Nic::send(const std::vector<uint8_t> &packet)
{
    if (packet.size() > mtu)
        sim::panic("Nic::send: packet larger than MTU (%zu)",
                   packet.size());
    if (!_peer)
        sim::panic("Nic::send: no peer connected");

    // CPU cost: descriptor setup / doorbell only.
    _ctx.clock().advance(_ctx.costs().nicPerPacket);

    // Wire time is serialized per TX queue, overlapping CPU work.
    // Each vCPU owns its own queue (multi-queue NIC), so senders on
    // different CPUs do not serialize against each other.
    uint64_t &link_free =
        _linkFreeAt[_ctx.activeCpu() % _linkFreeAt.size()];
    uint64_t wire =
        (packet.size() * _ctx.costs().nicCyclesPer64Bytes) / 64 + 1;
    uint64_t start = std::max<uint64_t>(_ctx.clock().now(),
                                        link_free);
    link_free = start + wire;

    sim::StatSet::add(_hTxPackets);
    sim::StatSet::add(_hTxBytes, packet.size());
    _sent++;
    _peer->deliver(packet);
    return link_free;
}

void
Nic::deliver(std::vector<uint8_t> packet)
{
    _rx.push_back(std::move(packet));
    _received++;
    sim::StatSet::add(_hRxPackets);
}

std::vector<uint8_t>
Nic::receive()
{
    if (_rx.empty())
        return {};
    std::vector<uint8_t> p = std::move(_rx.front());
    _rx.pop_front();
    return p;
}

bool
Nic::sendFromDma(Paddr pa, uint64_t len)
{
    if (len > mtu)
        return false;
    std::vector<uint8_t> buf(len);
    if (!_iommu.dmaRead(pa, buf.data(), len))
        return false;
    send(buf);
    return true;
}

bool
Nic::receiveToDma(Paddr pa, uint64_t max_len, uint64_t &len_out)
{
    if (_rx.empty())
        return false;
    const std::vector<uint8_t> &p = _rx.front();
    uint64_t n = std::min<uint64_t>(p.size(), max_len);
    if (!_iommu.dmaWrite(pa, p.data(), n))
        return false;
    len_out = n;
    _rx.pop_front();
    return true;
}

} // namespace vg::hw
