#include "hw/nic.hh"

#include "sim/log.hh"

namespace vg::hw
{

Nic::Nic(Iommu &iommu, sim::SimContext &ctx, const char *name)
    : _iommu(iommu), _ctx(ctx), _linkFreeAt(ctx.vcpuCount(), 0),
      _tx(ctx.config().ringSize), _rx_ring(ctx.config().ringSize),
      _irq(std::string(name) + ".irq"),
      _hTxPackets(ctx.stats().handle("nic.tx_packets")),
      _hTxBytes(ctx.stats().handle("nic.tx_bytes")),
      _hRxPackets(ctx.stats().handle("nic.rx_packets")),
      _hRingBlocked(ctx.stats().handle("nic.ring_blocked_dma")),
      _hStale(ctx.stats().handle("nic.stale_completions"))
{}

uint64_t
Nic::wireSchedule(uint64_t bytes)
{
    // Wire time is serialized per TX queue, overlapping CPU work.
    // Each vCPU owns its own queue (multi-queue NIC), so senders on
    // different CPUs do not serialize against each other.
    uint64_t &link_free =
        _linkFreeAt[_ctx.activeCpu() % _linkFreeAt.size()];
    uint64_t wire = (bytes * _ctx.costs().nicCyclesPer64Bytes) / 64 + 1;
    uint64_t start = std::max<uint64_t>(_ctx.clock().now(), link_free);
    link_free = start + wire;
    return link_free;
}

uint64_t
Nic::send(const std::vector<uint8_t> &packet)
{
    if (packet.size() > mtu)
        sim::panic("Nic::send: packet larger than MTU (%zu)",
                   packet.size());
    if (!_peer)
        sim::panic("Nic::send: no peer connected");

    // CPU cost: descriptor setup / doorbell only.
    _ctx.clock().advance(_ctx.costs().nicPerPacket);

    uint64_t arrival = wireSchedule(packet.size());
    sim::StatSet::add(_hTxPackets);
    sim::StatSet::add(_hTxBytes, packet.size());
    _sent++;
    _peer->deliver(packet);
    return arrival;
}

bool
Nic::txPost(const RingDesc &d)
{
    if (d.len > mtu)
        sim::panic("Nic::txPost: descriptor larger than MTU (%u)",
                   unsigned(d.len));
    if (!_tx.post(d))
        return false;
    _ctx.clock().advance(_ctx.costs().ringDescriptor);
    return true;
}

uint64_t
Nic::txDoorbell()
{
    if (!_peer)
        sim::panic("Nic::txDoorbell: no peer connected");
    _ctx.clock().advance(_ctx.costs().ringDoorbell);
    uint64_t last = 0;
    _tx.processPosted([&](DescRing::Entry &e) {
        std::vector<uint8_t> packet(e.desc.len, 0);
        if (e.desc.useDma) {
            // Every ring slot's DMA goes through the IOMMU: a hostile
            // OS pointing a descriptor at a ghost frame is blocked
            // here, exactly like the legacy DMA path.
            if (!_iommu.dmaRead(e.desc.pa, packet.data(), e.desc.len)) {
                e.error = true;
                e.doneAt = _ctx.clock().now();
                e.state = DescRing::Slot::Done;
                _ringBlocked++;
                sim::StatSet::add(_hRingBlocked);
                return true;
            }
        } else if (e.desc.host) {
            std::copy(e.desc.host, e.desc.host + e.desc.len,
                      packet.begin());
        }
        e.doneAt = wireSchedule(packet.size());
        e.state = DescRing::Slot::Done;
        sim::StatSet::add(_hTxPackets);
        sim::StatSet::add(_hTxBytes, packet.size());
        _sent++;
        _peer->deliver(std::move(packet));
        last = e.doneAt;
        return true;
    });
    // MSI-X steering: the interrupt lands on the doorbelling vCPU.
    _irq.wireTo(_ctx.activeCpu());
    if (uint64_t at = _tx.earliestDone())
        _irq.raise(at);
    return last;
}

bool
Nic::txReapAt(uint32_t index, uint32_t gen)
{
    if (_tx.reapAt(index, gen))
        return true;
    _stale++;
    sim::StatSet::add(_hStale);
    return false;
}

bool
Nic::rxPost(const RingDesc &d)
{
    if (!_rx_ring.post(d))
        return false;
    _ctx.clock().advance(_ctx.costs().ringDescriptor);
    return true;
}

uint64_t
Nic::rxDoorbell()
{
    _ctx.clock().advance(_ctx.costs().ringDoorbell);
    uint64_t last = 0;
    _rx_ring.processPosted([&](DescRing::Entry &e) {
        if (_rx.empty())
            return false; // keep the buffer posted for later packets
        const std::vector<uint8_t> &p = _rx.front();
        uint64_t n = std::min<uint64_t>(p.size(), e.desc.len);
        if (e.desc.useDma &&
            !_iommu.dmaWrite(e.desc.pa, p.data(), n)) {
            e.error = true;
            e.doneAt = _ctx.clock().now();
            e.state = DescRing::Slot::Done;
            _ringBlocked++;
            sim::StatSet::add(_hRingBlocked);
            _rx.pop_front();
            return true;
        }
        if (!e.desc.useDma && e.desc.hostOut)
            std::copy(p.begin(), p.begin() + long(n), e.desc.hostOut);
        e.doneAt = _ctx.clock().now();
        e.state = DescRing::Slot::Done;
        _rx.pop_front();
        last = e.doneAt;
        return true;
    });
    _irq.wireTo(_ctx.activeCpu());
    if (uint64_t at = _rx_ring.earliestDone())
        _irq.raise(at);
    return last;
}

void
Nic::deliver(std::vector<uint8_t> packet)
{
    _rx.push_back(std::move(packet));
    _received++;
    sim::StatSet::add(_hRxPackets);
}

std::vector<uint8_t>
Nic::receive()
{
    if (_rx.empty())
        return {};
    std::vector<uint8_t> p = std::move(_rx.front());
    _rx.pop_front();
    return p;
}

bool
Nic::sendFromDma(Paddr pa, uint64_t len)
{
    if (len > mtu)
        return false;
    std::vector<uint8_t> buf(len);
    if (!_iommu.dmaRead(pa, buf.data(), len))
        return false;
    send(buf);
    return true;
}

bool
Nic::receiveToDma(Paddr pa, uint64_t max_len, uint64_t &len_out)
{
    if (_rx.empty())
        return false;
    const std::vector<uint8_t> &p = _rx.front();
    uint64_t n = std::min<uint64_t>(p.size(), max_len);
    if (!_iommu.dmaWrite(pa, p.data(), n))
        return false;
    len_out = n;
    _rx.pop_front();
    return true;
}

} // namespace vg::hw
