#include "hw/mmu.hh"

#include "sim/log.hh"

namespace vg::hw
{

Mmu::Mmu(PhysMem &mem, sim::SimContext &ctx, unsigned cpu_id)
    : _mem(mem), _ctx(ctx), _cpuId(cpu_id),
      _hTlbHits(ctx.stats().handle("mmu.tlb_hits")),
      _hTlbMisses(ctx.stats().handle("mmu.tlb_misses")),
      _hPermRewalks(ctx.stats().handle("mmu.tlb_perm_rewalks"))
{
    if (ctx.vcpuCount() > 1) {
        std::string p = "cpu" + std::to_string(cpu_id) + ".";
        _hCpuTlbHits = ctx.stats().handle(p + "mmu.tlb_hits");
        _hCpuTlbMisses = ctx.stats().handle(p + "mmu.tlb_misses");
        _hCpuPermRewalks =
            ctx.stats().handle(p + "mmu.tlb_perm_rewalks");
    }
}

void
Mmu::setRoot(Paddr root)
{
    if (pageOffset(root) != 0)
        sim::panic("Mmu::setRoot: unaligned root %#lx",
                   (unsigned long)root);
    _root = root;
    flushTlb();
}

void
Mmu::flushTlb()
{
    for (auto &e : _tlb)
        e.valid = false;
    _generation++;
}

size_t
Mmu::tlbIndex(Vaddr va)
{
    return (va >> pageShift) % tlbEntries;
}

void
Mmu::invalidatePage(Vaddr va)
{
    TlbEntry &e = _tlb[tlbIndex(va)];
    if (e.valid && e.vpage == pageOf(va)) {
        e.valid = false;
        _generation++;
    }
}

bool
Mmu::allowed(Pte e, Access access, Privilege priv)
{
    if (priv == Privilege::User && !(e & pte::user))
        return false;
    if (access == Access::Write && !(e & pte::writable))
        return false;
    if (access == Access::Exec && (e & pte::noExec))
        return false;
    return true;
}

TranslateResult
Mmu::walk(Vaddr va, Access access, Privilege priv, bool charge)
{
    TranslateResult res;
    res.faultVa = va;

    // Canonical-address check: bits 63..47 must all equal bit 47.
    uint64_t upper = va >> 47;
    if (upper != 0 && upper != 0x1ffff) {
        res.fault = FaultKind::NonCanonical;
        return res;
    }

    Paddr table = _root;
    Pte entry = 0;
    Paddr leafSlot = 0;
    for (int level = 4; level >= 1; level--) {
        if (!_mem.valid(table + pageSize - 1)) {
            res.fault = FaultKind::BadPhys;
            return res;
        }
        if (charge)
            _ctx.clock().advance(_ctx.costs().pageWalkPerLevel);
        uint64_t idx = ptIndex(va, static_cast<PtLevel>(level));
        leafSlot = table + idx * 8;
        entry = _mem.read64(leafSlot);
        if (!(entry & pte::present)) {
            res.fault = FaultKind::NotPresent;
            return res;
        }
        table = pte::frameAddr(entry);
    }

    // Reference bit for the ghost eviction clock. Only ghost leaves
    // carry it so the kernel-address fast paths stay byte-identical.
    if (isGhostAddr(va) && !(entry & pte::accessed)) {
        entry |= pte::accessed;
        _mem.write64(leafSlot, entry);
    }

    if (!allowed(entry, access, priv)) {
        res.fault = FaultKind::Protection;
        return res;
    }

    Paddr pa = pte::frameAddr(entry) + pageOffset(va);
    if (!_mem.valid(pa)) {
        res.fault = FaultKind::BadPhys;
        return res;
    }

    res.ok = true;
    res.paddr = pa;
    res.fault = FaultKind::None;
    res.pte = entry;

    TlbEntry &t = _tlb[tlbIndex(va)];
    if (t.valid && (t.vpage != pageOf(va) || t.pte != entry))
        _generation++; // evicting (or rewriting) a live entry
    t.valid = true;
    t.vpage = pageOf(va);
    t.pte = entry;
    return res;
}

TranslateResult
Mmu::translate(Vaddr va, Access access, Privilege priv)
{
    TlbEntry &t = _tlb[tlbIndex(va)];
    if (t.valid && t.vpage == pageOf(va)) {
        if (allowed(t.pte, access, priv)) {
            _ctx.clock().advance(_ctx.costs().tlbHit);
            sim::StatSet::add(_hTlbHits);
            if (_hCpuTlbHits)
                sim::StatSet::add(_hCpuTlbHits);
            TranslateResult res;
            res.ok = true;
            res.paddr = pte::frameAddr(t.pte) + pageOffset(va);
            res.faultVa = va;
            res.pte = t.pte;
            return res;
        }
        // Permission upgrade needed: re-walk (the PTE may have been
        // changed to allow it). Not a TLB miss — the entry is present.
        sim::StatSet::add(_hPermRewalks);
        if (_hCpuPermRewalks)
            sim::StatSet::add(_hCpuPermRewalks);
        return walk(va, access, priv, true);
    }
    sim::StatSet::add(_hTlbMisses);
    if (_hCpuTlbMisses)
        sim::StatSet::add(_hCpuTlbMisses);
    return walk(va, access, priv, true);
}

std::optional<Pte>
Mmu::probe(Vaddr va) const
{
    Paddr table = _root;
    Pte entry = 0;
    for (int level = 4; level >= 1; level--) {
        if (!_mem.valid(table + pageSize - 1))
            return std::nullopt;
        uint64_t idx = ptIndex(va, static_cast<PtLevel>(level));
        entry = _mem.read64(table + idx * 8);
        if (!(entry & pte::present))
            return std::nullopt;
        table = pte::frameAddr(entry);
    }
    return entry;
}

} // namespace vg::hw
