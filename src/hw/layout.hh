/**
 * @file
 * Virtual address-space layout (S 5 of the paper) and paging constants.
 *
 * The ghost memory partition occupies the unused 512 GB region
 * 0xffffff0000000000 - 0xffffff8000000000. The sandboxing
 * instrumentation ORs any kernel memory operand >= GHOST_BASE with
 * 2^39, which relocates ghost addresses into the (harmless) kernel
 * half without a branch-heavy bounds check.
 */

#ifndef VG_HW_LAYOUT_HH
#define VG_HW_LAYOUT_HH

#include <cstdint>

namespace vg::hw
{

/** Virtual and physical address types. */
using Vaddr = uint64_t;
using Paddr = uint64_t;

/** Physical frame number type. */
using Frame = uint64_t;

constexpr uint64_t pageSize = 4096;
constexpr uint64_t pageShift = 12;

/** End of user (traditional application) memory, exclusive. */
constexpr Vaddr userEnd = 0x0000800000000000ull;

/** Ghost partition: [ghostBase, ghostEnd). */
constexpr Vaddr ghostBase = 0xffffff0000000000ull;
constexpr Vaddr ghostEnd = 0xffffff8000000000ull;

/** Kernel half starts at the canonical upper boundary. */
constexpr Vaddr kernelBase = 0xffffff8000000000ull;

/**
 * SVA VM internal memory. The prototype leaves it inside the kernel
 * data segment and rewrites accesses to it to address 0 (S 5); we model
 * it as a dedicated kernel-half range.
 */
constexpr Vaddr svaBase = 0xffffffe000000000ull;
constexpr Vaddr svaEnd = 0xffffffe040000000ull;

/** The mask the sandboxing instrumentation ORs in: 2^39. */
constexpr uint64_t sandboxOrMask = uint64_t(1) << 39;

/** True if @p va lies in the ghost partition. */
constexpr bool
isGhostAddr(Vaddr va)
{
    return va >= ghostBase && va < ghostEnd;
}

/** True if @p va lies in SVA VM internal memory. */
constexpr bool
isSvaAddr(Vaddr va)
{
    return va >= svaBase && va < svaEnd;
}

/** True if @p va is a user-space address. */
constexpr bool
isUserAddr(Vaddr va)
{
    return va < userEnd;
}

/**
 * The load/store sandboxing transform (S 5): ghost-or-higher addresses
 * are ORed with 2^39 so they cannot land in [ghostBase, ghostEnd);
 * SVA-internal addresses are rewritten to 0.
 */
constexpr Vaddr
sandboxAddress(Vaddr va)
{
    if (isSvaAddr(va))
        return 0;
    if (va >= ghostBase)
        return va | sandboxOrMask;
    return va;
}

/** Page number of a virtual address. */
constexpr Vaddr
pageOf(Vaddr va)
{
    return va & ~(pageSize - 1);
}

/** Offset within a page. */
constexpr uint64_t
pageOffset(Vaddr va)
{
    return va & (pageSize - 1);
}

} // namespace vg::hw

#endif // VG_HW_LAYOUT_HH
