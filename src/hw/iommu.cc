#include "hw/iommu.hh"

namespace vg::hw
{

Iommu::Iommu(PhysMem &mem, sim::SimContext &ctx)
    : _mem(mem), _ctx(ctx),
      _hBlockedDma(ctx.stats().handle("iommu.blocked_dma")),
      _hDmaBytes(ctx.stats().handle("iommu.dma_bytes"))
{}

void
Iommu::protectFrame(Frame frame)
{
    _protected.insert(frame);
}

void
Iommu::unprotectFrame(Frame frame)
{
    _protected.erase(frame);
}

bool
Iommu::dmaAllowed(Frame frame) const
{
    if (!_ctx.config().dmaProtection)
        return true;
    return _protected.find(frame) == _protected.end();
}

bool
Iommu::rangeAllowed(Paddr pa, uint64_t len) const
{
    if (len == 0)
        return true;
    Frame first = pa >> pageShift;
    Frame last = (pa + len - 1) >> pageShift;
    for (Frame f = first; f <= last; f++) {
        if (!dmaAllowed(f))
            return false;
    }
    return true;
}

bool
Iommu::dmaWrite(Paddr pa, const void *buf, uint64_t len)
{
    if (!rangeAllowed(pa, len)) {
        _blocked++;
        sim::StatSet::add(_hBlockedDma);
        return false;
    }
    _mem.writeBytes(pa, buf, len);
    sim::StatSet::add(_hDmaBytes, len);
    return true;
}

bool
Iommu::dmaRead(Paddr pa, void *buf, uint64_t len)
{
    if (!rangeAllowed(pa, len)) {
        _blocked++;
        sim::StatSet::add(_hBlockedDma);
        return false;
    }
    _mem.readBytes(pa, buf, len);
    sim::StatSet::add(_hDmaBytes, len);
    return true;
}

} // namespace vg::hw
