/**
 * @file
 * Simulated physical memory.
 *
 * A flat array of 4 KB frames. PhysMem itself enforces nothing: the
 * protection story lives in the MMU (for CPU accesses), the IOMMU (for
 * DMA), and the kernel/SVA software layers above. This mirrors real
 * hardware, where RAM is dumb.
 */

#ifndef VG_HW_PHYS_MEM_HH
#define VG_HW_PHYS_MEM_HH

#include <cstdint>
#include <vector>

#include "hw/layout.hh"

namespace vg::hw
{

/** Byte-addressable simulated RAM. */
class PhysMem
{
  public:
    /** Construct with @p frames frames of 4 KB each. */
    explicit PhysMem(uint64_t frames);

    uint64_t numFrames() const { return _bytes.size() / pageSize; }
    uint64_t sizeBytes() const { return _bytes.size(); }

    /** True if @p pa addresses valid RAM. */
    bool valid(Paddr pa) const { return pa < _bytes.size(); }

    /** True if @p frame is a valid frame number. */
    bool validFrame(Frame frame) const { return frame < numFrames(); }

    uint8_t read8(Paddr pa) const;
    uint16_t read16(Paddr pa) const;
    uint32_t read32(Paddr pa) const;
    uint64_t read64(Paddr pa) const;

    void write8(Paddr pa, uint8_t v);
    void write16(Paddr pa, uint16_t v);
    void write32(Paddr pa, uint32_t v);
    void write64(Paddr pa, uint64_t v);

    /** Bulk copy out of RAM; panics on out-of-range. */
    void readBytes(Paddr pa, void *out, uint64_t len) const;

    /** Bulk copy into RAM; panics on out-of-range. */
    void writeBytes(Paddr pa, const void *in, uint64_t len);

    /** Zero an entire frame. */
    void zeroFrame(Frame frame);

    /** Raw pointer to a frame's storage (host-side fast path). */
    uint8_t *framePtr(Frame frame);
    const uint8_t *framePtr(Frame frame) const;

  private:
    void check(Paddr pa, uint64_t len) const;

    std::vector<uint8_t> _bytes;
};

} // namespace vg::hw

#endif // VG_HW_PHYS_MEM_HH
