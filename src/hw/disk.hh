/**
 * @file
 * Simulated SSD block device.
 *
 * Stores 4 KB blocks. Two access paths:
 *  - buffered path (readBlock/writeBlock) used by the kernel's buffer
 *    cache, which copies into kernel-heap buffers;
 *  - DMA path (dmaReadBlock/dmaWriteBlock) that moves data directly
 *    to/from simulated physical frames through the IOMMU — the path a
 *    hostile OS would use to try to read ghost frames via a device.
 *
 * Latency is charged per request plus per block, modelling the paper's
 * 256 GB SATA SSD.
 */

#ifndef VG_HW_DISK_HH
#define VG_HW_DISK_HH

#include <cstdint>
#include <vector>

#include "hw/iommu.hh"
#include "hw/phys_mem.hh"
#include "hw/ring.hh"
#include "sim/context.hh"

namespace vg::hw
{

/** Block-addressed storage device. */
class Disk
{
  public:
    static constexpr uint64_t blockSize = 4096;

    Disk(uint64_t blocks, Iommu &iommu, sim::SimContext &ctx);

    uint64_t numBlocks() const { return _data.size() / blockSize; }

    /** Read one block into a kernel buffer (charges device latency). */
    void readBlock(uint64_t block, void *out);

    /** Write one block from a kernel buffer. */
    void writeBlock(uint64_t block, const void *in);

    /** DMA a block into RAM at @p pa; false if the IOMMU blocks it. */
    bool dmaReadBlock(uint64_t block, Paddr pa);

    /** DMA a block out of RAM at @p pa; false if the IOMMU blocks it. */
    bool dmaWriteBlock(uint64_t block, Paddr pa);

    /** Raw peek for tests and for modelling offline (evil-maid) access:
     *  the OS has full read/write access to persistent storage. */
    uint8_t *rawBlock(uint64_t block);

    // --- Async request queue (VgConfig::asyncIo) ----------------------
    /** Post one request descriptor (charges descriptor setup). The
     *  descriptor names a block and either a host buffer or a DMA
     *  address. False when the queue is full. */
    bool submit(const RingDesc &d);

    /**
     * Ring the request doorbell. Data moves at submit time (the
     * simulator is functional); what the device models is *latency*:
     * each request completes at doorbell-time + ssdRequest +
     * ssdPerBlock, independently of its queue neighbours (deep NCQ —
     * flash channels do not serialize distinct requests). DMA
     * descriptors go through the IOMMU; blocked slots complete with
     * error and are counted. Returns the latest completion time.
     */
    uint64_t doorbell();

    /** Drain completions in doorbell order, freeing queue slots. */
    std::vector<RingCompletion> reapAll() { return _queue.reapAll(); }

    IrqLine &irq() { return _irq; }
    const DescRing &queue() const { return _queue; }
    uint64_t ringBlockedDma() const { return _ringBlocked; }

  private:
    void check(uint64_t block) const;
    void charge(uint64_t blocks);

    std::vector<uint8_t> _data;
    Iommu &_iommu;
    sim::SimContext &_ctx;
    DescRing _queue;
    IrqLine _irq;
    uint64_t _ringBlocked = 0;
    sim::StatHandle _hRequests;
    sim::StatHandle _hBlocks;
    sim::StatHandle _hRingBlocked;
};

} // namespace vg::hw

#endif // VG_HW_DISK_HH
