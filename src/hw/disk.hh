/**
 * @file
 * Simulated SSD block device.
 *
 * Stores 4 KB blocks. Two access paths:
 *  - buffered path (readBlock/writeBlock) used by the kernel's buffer
 *    cache, which copies into kernel-heap buffers;
 *  - DMA path (dmaReadBlock/dmaWriteBlock) that moves data directly
 *    to/from simulated physical frames through the IOMMU — the path a
 *    hostile OS would use to try to read ghost frames via a device.
 *
 * Latency is charged per request plus per block, modelling the paper's
 * 256 GB SATA SSD.
 */

#ifndef VG_HW_DISK_HH
#define VG_HW_DISK_HH

#include <cstdint>
#include <vector>

#include "hw/iommu.hh"
#include "hw/phys_mem.hh"
#include "sim/context.hh"

namespace vg::hw
{

/** Block-addressed storage device. */
class Disk
{
  public:
    static constexpr uint64_t blockSize = 4096;

    Disk(uint64_t blocks, Iommu &iommu, sim::SimContext &ctx);

    uint64_t numBlocks() const { return _data.size() / blockSize; }

    /** Read one block into a kernel buffer (charges device latency). */
    void readBlock(uint64_t block, void *out);

    /** Write one block from a kernel buffer. */
    void writeBlock(uint64_t block, const void *in);

    /** DMA a block into RAM at @p pa; false if the IOMMU blocks it. */
    bool dmaReadBlock(uint64_t block, Paddr pa);

    /** DMA a block out of RAM at @p pa; false if the IOMMU blocks it. */
    bool dmaWriteBlock(uint64_t block, Paddr pa);

    /** Raw peek for tests and for modelling offline (evil-maid) access:
     *  the OS has full read/write access to persistent storage. */
    uint8_t *rawBlock(uint64_t block);

  private:
    void check(uint64_t block) const;
    void charge(uint64_t blocks);

    std::vector<uint8_t> _data;
    Iommu &_iommu;
    sim::SimContext &_ctx;
    sim::StatHandle _hRequests;
    sim::StatHandle _hBlocks;
};

} // namespace vg::hw

#endif // VG_HW_DISK_HH
