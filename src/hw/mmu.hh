/**
 * @file
 * Simulated MMU with a 4-level page-table walker and a small TLB.
 */

#ifndef VG_HW_MMU_HH
#define VG_HW_MMU_HH

#include <array>
#include <cstdint>
#include <optional>

#include "hw/pagetable.hh"
#include "hw/phys_mem.hh"
#include "sim/context.hh"

namespace vg::hw
{

/** Why a translation failed. */
enum class FaultKind
{
    None,
    NotPresent,
    Protection,
    NonCanonical,
    BadPhys,
};

/** Result of a translation attempt. */
struct TranslateResult
{
    bool ok = false;
    Paddr paddr = 0;
    FaultKind fault = FaultKind::None;
    Vaddr faultVa = 0;
    /** Leaf PTE on success (lets callers cache perms with the paddr). */
    Pte pte = 0;
};

/** The memory-management unit: CR3, TLB, walker. */
class Mmu
{
  public:
    /** @p cpu_id is the owning vCPU; stats gain a per-CPU namespace
     *  (cpuN.mmu.*) on multi-CPU machines. */
    Mmu(PhysMem &mem, sim::SimContext &ctx, unsigned cpu_id = 0);

    /** Index of the vCPU that owns this MMU/TLB. */
    unsigned cpuId() const { return _cpuId; }

    /** Load a new root table ("mov cr3"); flushes the TLB. */
    void setRoot(Paddr root);

    Paddr root() const { return _root; }

    /** Translate @p va for @p access at @p priv. Charges TLB/walk
     *  cycles against the simulation clock. */
    TranslateResult translate(Vaddr va, Access access, Privilege priv);

    /** Invalidate one page's TLB entry ("invlpg"). */
    void invalidatePage(Vaddr va);

    /** Flush the whole TLB. */
    void flushTlb();

    /**
     * Walk the tables without charging time or touching the TLB
     * (used by SVA checks and by tests to inspect mappings).
     */
    std::optional<Pte> probe(Vaddr va) const;

    /**
     * Monotonic count of events that may have removed or replaced a
     * TLB entry: CR3 loads, TLB flushes, invlpg of a live entry, and
     * walks that evict a live entry. While the generation is
     * unchanged, any entry a caller observed via translate() is still
     * installed with the same PTE, so translation caches layered above
     * the MMU (see Kmem) stay exact: a cached hit charges the same
     * tlbHit cost the TLB hit would have.
     */
    uint64_t generation() const { return _generation; }

    /**
     * Whether this TLB currently holds a live entry for @p va's page.
     * Used by the shootdown protocol to decide which remote CPUs need
     * an invalidation IPI.
     */
    bool
    tlbHolds(Vaddr va) const
    {
        const TlbEntry &e = _tlb[tlbIndex(va)];
        return e.valid && e.vpage == pageOf(va);
    }

    /**
     * Whether any live TLB entry translates into physical frame
     * @p frame. This is the retype-safety oracle: a frame must not be
     * released or retyped while some TLB can still reach it.
     */
    bool
    tlbReferencesFrame(uint64_t frame) const
    {
        for (const auto &e : _tlb)
            if (e.valid && pte::frameAddr(e.pte) == frame * pageSize)
                return true;
        return false;
    }

    /** Whether any TLB entry at all is live (empty TLBs need no
     *  shootdown on a full flush). */
    bool
    anyValidTlbEntry() const
    {
        for (const auto &e : _tlb)
            if (e.valid)
                return true;
        return false;
    }

    /** Whether PTE @p e permits @p access at @p priv. */
    static bool allowed(Pte e, Access access, Privilege priv);

    static constexpr size_t tlbEntries = 64;

    /** Direct-mapped TLB set for @p va (two live pages sharing a set
     *  evict each other on alternating access). */
    static size_t tlbIndex(Vaddr va);

  private:
    struct TlbEntry
    {
        bool valid = false;
        Vaddr vpage = 0;
        Pte pte = 0;
    };

    TranslateResult walk(Vaddr va, Access access, Privilege priv,
                         bool charge);

    PhysMem &_mem;
    sim::SimContext &_ctx;
    unsigned _cpuId = 0;
    Paddr _root = 0;
    std::array<TlbEntry, tlbEntries> _tlb;
    uint64_t _generation = 0;
    sim::StatHandle _hTlbHits;
    sim::StatHandle _hTlbMisses;
    sim::StatHandle _hPermRewalks;
    // Per-CPU namespaced mirrors; null on single-CPU machines.
    sim::StatHandle _hCpuTlbHits = nullptr;
    sim::StatHandle _hCpuTlbMisses = nullptr;
    sim::StatHandle _hCpuPermRewalks = nullptr;
};

} // namespace vg::hw

#endif // VG_HW_MMU_HH
