/**
 * @file
 * Trusted Platform Module model.
 *
 * Holds a storage key fused at "manufacture". The Virtual Ghost VM
 * seals its RSA private key under the TPM storage key at install time
 * and unseals it at boot (S 4.4); the OS never sees either key. The
 * TPM also provides a hardware entropy source used to seed the trusted
 * DRBG.
 */

#ifndef VG_HW_TPM_HH
#define VG_HW_TPM_HH

#include <cstdint>
#include <map>
#include <vector>

#include "crypto/drbg.hh"
#include "crypto/sealed.hh"

namespace vg::hw
{

/** Minimal TPM: a sealed-storage root of trust plus entropy. */
class Tpm
{
  public:
    /** Manufacture a TPM with deterministic seed material (tests) or
     *  arbitrary entropy. */
    explicit Tpm(const std::vector<uint8_t> &seed);

    /** Seal @p data under the storage key. */
    crypto::SealedBlob seal(const std::vector<uint8_t> &data);

    /** Unseal; @p ok false on MAC failure (tampered blob). */
    std::vector<uint8_t> unseal(const crypto::SealedBlob &blob, bool &ok);

    /** Draw @p len bytes of entropy. */
    std::vector<uint8_t> entropy(size_t len);

    /** Increment monotonic counter @p idx and return the new value
     *  (TPM counters never go backwards — the root of rollback
     *  protection). */
    uint64_t monotonicIncrement(uint32_t idx);

    /** Read monotonic counter @p idx. */
    uint64_t monotonicRead(uint32_t idx) const;

  private:
    crypto::AesKey _storageKey{};
    crypto::CtrDrbg _rng;
    std::map<uint32_t, uint64_t> _counters;
};

} // namespace vg::hw

#endif // VG_HW_TPM_HH
