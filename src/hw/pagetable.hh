/**
 * @file
 * Page-table-entry format for the simulated 4-level MMU.
 *
 * x86-64-style: 48-bit virtual addresses, 9 index bits per level, 4 KB
 * pages. Page tables live *inside* simulated physical memory — the OS
 * builds them there (through SVA-OS intrinsics) and the MMU walks them
 * there, so MMU-based attacks and SVA's checks operate on the same real
 * state.
 */

#ifndef VG_HW_PAGETABLE_HH
#define VG_HW_PAGETABLE_HH

#include <cstdint>

#include "hw/layout.hh"

namespace vg::hw
{

/** A raw page-table entry. */
using Pte = uint64_t;

namespace pte
{

constexpr Pte present = 1ull << 0;
constexpr Pte writable = 1ull << 1;
constexpr Pte user = 1ull << 2;
/** Hardware-set reference bit: the MMU sets it on the leaf entry when
 *  a ghost translation is installed; the eviction clock reads and
 *  clears it (second-chance). Only maintained for ghost addresses. */
constexpr Pte accessed = 1ull << 5;
constexpr Pte noExec = 1ull << 63;

/** Physical frame address field (bits 12..51). */
constexpr Pte addrMask = 0x000ffffffffff000ull;

constexpr Paddr
frameAddr(Pte e)
{
    return e & addrMask;
}

constexpr Frame
frameNum(Pte e)
{
    return (e & addrMask) >> pageShift;
}

constexpr Pte
make(Frame frame, bool w, bool u, bool nx)
{
    Pte e = (frame << pageShift) | present;
    if (w)
        e |= writable;
    if (u)
        e |= user;
    if (nx)
        e |= noExec;
    return e;
}

} // namespace pte

/** Page-table level, 1 (leaf) through 4 (root). */
enum class PtLevel : int
{
    L1 = 1,
    L2 = 2,
    L3 = 3,
    L4 = 4,
};

/** Index into the table at @p level for virtual address @p va. */
constexpr uint64_t
ptIndex(Vaddr va, PtLevel level)
{
    int shift = 12 + 9 * (static_cast<int>(level) - 1);
    return (va >> shift) & 0x1ff;
}

/** Kinds of memory access, for permission checks. */
enum class Access
{
    Read,
    Write,
    Exec,
};

/** CPU privilege for an access. */
enum class Privilege
{
    User,
    Kernel,
};

} // namespace vg::hw

#endif // VG_HW_PAGETABLE_HH
