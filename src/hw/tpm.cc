#include "hw/tpm.hh"

#include <cstring>

#include "crypto/sha256.hh"

namespace vg::hw
{

Tpm::Tpm(const std::vector<uint8_t> &seed) : _rng(seed)
{
    // Derive the storage key from the seed, domain-separated from the
    // entropy stream.
    crypto::Sha256 h;
    h.update("tpm-storage-key", 15);
    h.update(seed.data(), seed.size());
    crypto::Digest d = h.final();
    std::memcpy(_storageKey.data(), d.data(), _storageKey.size());
}

crypto::SealedBlob
Tpm::seal(const std::vector<uint8_t> &data)
{
    return crypto::seal(_storageKey, _rng, data);
}

std::vector<uint8_t>
Tpm::unseal(const crypto::SealedBlob &blob, bool &ok)
{
    return crypto::unseal(_storageKey, blob, ok);
}

std::vector<uint8_t>
Tpm::entropy(size_t len)
{
    return _rng.generate(len);
}

uint64_t
Tpm::monotonicIncrement(uint32_t idx)
{
    return ++_counters[idx];
}

uint64_t
Tpm::monotonicRead(uint32_t idx) const
{
    auto it = _counters.find(idx);
    return it == _counters.end() ? 0 : it->second;
}

} // namespace vg::hw
