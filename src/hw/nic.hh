/**
 * @file
 * Simulated gigabit NIC pair.
 *
 * Two endpoints joined by a full-duplex link; each send charges
 * per-packet and per-byte costs modelling the paper's dedicated GbE
 * test network. Packets are bounded at an MTU; the TCP-lite layer in
 * the kernel segments streams into packets.
 */

#ifndef VG_HW_NIC_HH
#define VG_HW_NIC_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "hw/iommu.hh"
#include "hw/ring.hh"
#include "sim/context.hh"

namespace vg::hw
{

/** One network endpoint. */
class Nic
{
  public:
    static constexpr uint64_t mtu = 1500;

    Nic(Iommu &iommu, sim::SimContext &ctx, const char *name = "nic");

    /** Attach the peer endpoint (call once on each side). */
    void connectTo(Nic *peer) { _peer = peer; }

    /** Transmit a packet (<= MTU bytes). The sender is charged only
     *  CPU (descriptor) time; wire time is booked on the link
     *  schedule and returned as the packet's arrival time, so
     *  transmission pipelines with computation. */
    uint64_t send(const std::vector<uint8_t> &packet);

    /** Arrival time of the most recently sent packet (on the active
     *  CPU's TX queue). */
    uint64_t lastReadyAt() const
    {
        return _linkFreeAt[_ctx.activeCpu() % _linkFreeAt.size()];
    }

    /** True if a received packet is waiting. */
    bool hasPacket() const { return !_rx.empty(); }

    /** Pop the next received packet (empty if none). */
    std::vector<uint8_t> receive();

    /** DMA a packet payload out of RAM and transmit it; false if the
     *  IOMMU blocks the read. */
    bool sendFromDma(Paddr pa, uint64_t len);

    /** Receive into RAM via DMA; false if blocked or no packet. */
    bool receiveToDma(Paddr pa, uint64_t max_len, uint64_t &len_out);

    uint64_t packetsSent() const { return _sent; }
    uint64_t packetsReceived() const { return _received; }

    // --- Async ring interface (VgConfig::asyncIo) ---------------------
    /** Post one TX descriptor (charges descriptor setup). False when
     *  the TX ring is full — the driver must reap first. */
    bool txPost(const RingDesc &d);

    /** Ring the TX doorbell: one boundary crossing transmits every
     *  posted descriptor. DMA descriptors go through the IOMMU (a
     *  blocked slot completes with error and is counted); host-buffer
     *  descriptors are the zero-copy bcache->NIC path. Returns the
     *  arrival time of the last packet put on the wire. */
    uint64_t txDoorbell();

    /** Drain TX completions in doorbell order, freeing slots. */
    std::vector<RingCompletion> txReapAll() { return _tx.reapAll(); }

    /** Reap one completion by (index, generation); a stale replay is
     *  rejected and counted. */
    bool txReapAt(uint32_t index, uint32_t gen);

    /** Post one RX buffer descriptor (pa-based, IOMMU-checked). */
    bool rxPost(const RingDesc &d);

    /** Ring the RX doorbell: fill posted RX descriptors from queued
     *  packets through the IOMMU. Blocked slots complete with error. */
    uint64_t rxDoorbell();

    std::vector<RingCompletion> rxReapAll() { return _rx_ring.reapAll(); }

    IrqLine &irq() { return _irq; }
    const DescRing &txRing() const { return _tx; }
    const DescRing &rxRing() const { return _rx_ring; }
    /** Ring-slot DMA attempts the IOMMU refused. */
    uint64_t ringBlockedDma() const { return _ringBlocked; }
    /** Stale completion-index replays rejected. */
    uint64_t staleCompletions() const { return _stale; }

  private:
    void deliver(std::vector<uint8_t> packet);
    /** Book @p bytes on the active CPU's TX wire queue; returns the
     *  arrival time. */
    uint64_t wireSchedule(uint64_t bytes);

    Iommu &_iommu;
    sim::SimContext &_ctx;
    Nic *_peer = nullptr;
    std::deque<std::vector<uint8_t>> _rx;
    uint64_t _sent = 0;
    uint64_t _received = 0;
    /** Per-TX-queue link-idle times (cycles). A multi-queue NIC: each
     *  vCPU owns a TX ring, so concurrent senders on different CPUs do
     *  not serialize on one wire schedule. Single-entry (identical to
     *  the historical single-queue model) when vcpus == 1. */
    std::vector<uint64_t> _linkFreeAt;
    DescRing _tx;
    DescRing _rx_ring;
    IrqLine _irq;
    uint64_t _ringBlocked = 0;
    uint64_t _stale = 0;
    sim::StatHandle _hTxPackets;
    sim::StatHandle _hTxBytes;
    sim::StatHandle _hRxPackets;
    sim::StatHandle _hRingBlocked;
    sim::StatHandle _hStale;
};

} // namespace vg::hw

#endif // VG_HW_NIC_HH
