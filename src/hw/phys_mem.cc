#include "hw/phys_mem.hh"

#include <cstring>

#include "sim/log.hh"

namespace vg::hw
{

PhysMem::PhysMem(uint64_t frames)
{
    if (frames == 0)
        sim::fatal("PhysMem: must have at least one frame");
    _bytes.assign(frames * pageSize, 0);
}

void
PhysMem::check(Paddr pa, uint64_t len) const
{
    if (pa + len > _bytes.size() || pa + len < pa)
        sim::panic("PhysMem access out of range: pa=%#lx len=%#lx",
                   (unsigned long)pa, (unsigned long)len);
}

uint8_t
PhysMem::read8(Paddr pa) const
{
    check(pa, 1);
    return _bytes[pa];
}

uint16_t
PhysMem::read16(Paddr pa) const
{
    check(pa, 2);
    uint16_t v;
    std::memcpy(&v, &_bytes[pa], 2);
    return v;
}

uint32_t
PhysMem::read32(Paddr pa) const
{
    check(pa, 4);
    uint32_t v;
    std::memcpy(&v, &_bytes[pa], 4);
    return v;
}

uint64_t
PhysMem::read64(Paddr pa) const
{
    check(pa, 8);
    uint64_t v;
    std::memcpy(&v, &_bytes[pa], 8);
    return v;
}

void
PhysMem::write8(Paddr pa, uint8_t v)
{
    check(pa, 1);
    _bytes[pa] = v;
}

void
PhysMem::write16(Paddr pa, uint16_t v)
{
    check(pa, 2);
    std::memcpy(&_bytes[pa], &v, 2);
}

void
PhysMem::write32(Paddr pa, uint32_t v)
{
    check(pa, 4);
    std::memcpy(&_bytes[pa], &v, 4);
}

void
PhysMem::write64(Paddr pa, uint64_t v)
{
    check(pa, 8);
    std::memcpy(&_bytes[pa], &v, 8);
}

void
PhysMem::readBytes(Paddr pa, void *out, uint64_t len) const
{
    if (len == 0)
        return;
    check(pa, len);
    std::memcpy(out, &_bytes[pa], len);
}

void
PhysMem::writeBytes(Paddr pa, const void *in, uint64_t len)
{
    if (len == 0)
        return;
    check(pa, len);
    std::memcpy(&_bytes[pa], in, len);
}

void
PhysMem::zeroFrame(Frame frame)
{
    if (!validFrame(frame))
        sim::panic("PhysMem::zeroFrame: bad frame %lu",
                   (unsigned long)frame);
    std::memset(&_bytes[frame * pageSize], 0, pageSize);
}

uint8_t *
PhysMem::framePtr(Frame frame)
{
    if (!validFrame(frame))
        sim::panic("PhysMem::framePtr: bad frame %lu",
                   (unsigned long)frame);
    return &_bytes[frame * pageSize];
}

const uint8_t *
PhysMem::framePtr(Frame frame) const
{
    if (!validFrame(frame))
        sim::panic("PhysMem::framePtr: bad frame %lu",
                   (unsigned long)frame);
    return &_bytes[frame * pageSize];
}

} // namespace vg::hw
