/**
 * @file
 * Programmable interval timer and console output device.
 */

#ifndef VG_HW_TIMER_HH
#define VG_HW_TIMER_HH

#include <cstdint>
#include <string>

#include "sim/clock.hh"

namespace vg::hw
{

/** Periodic timer driving scheduler preemption. */
class Timer
{
  public:
    explicit Timer(const sim::Clock &clock) : _clock(clock) {}

    /** Program the timer to fire every @p interval cycles. */
    void
    setInterval(sim::Cycles interval)
    {
        _interval = interval;
        _nextFire = _clock.now() + interval;
    }

    /** True if the timer has fired since the last acknowledge. */
    bool
    due() const
    {
        return _interval != 0 && _clock.now() >= _nextFire;
    }

    /** Acknowledge the interrupt and rearm. */
    void
    acknowledge()
    {
        if (_interval == 0)
            return;
        // Skip any missed periods wholesale.
        while (_nextFire <= _clock.now())
            _nextFire += _interval;
    }

  private:
    const sim::Clock &_clock;
    sim::Cycles _interval = 0;
    sim::Cycles _nextFire = 0;
};

/** Append-only console sink (system log / app stdout for tests). */
class Console
{
  public:
    void write(const std::string &text) { _output += text; }
    const std::string &output() const { return _output; }
    void clear() { _output.clear(); }

  private:
    std::string _output;
};

} // namespace vg::hw

#endif // VG_HW_TIMER_HH
