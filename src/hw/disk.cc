#include "hw/disk.hh"

#include <cstring>

#include "sim/log.hh"

namespace vg::hw
{

Disk::Disk(uint64_t blocks, Iommu &iommu, sim::SimContext &ctx)
    : _data(blocks * blockSize, 0), _iommu(iommu), _ctx(ctx),
      _hRequests(ctx.stats().handle("disk.requests")),
      _hBlocks(ctx.stats().handle("disk.blocks"))
{
    if (blocks == 0)
        sim::fatal("Disk: must have at least one block");
}

void
Disk::check(uint64_t block) const
{
    if (block >= numBlocks())
        sim::panic("Disk: block %lu out of range (%lu blocks)",
                   (unsigned long)block, (unsigned long)numBlocks());
}

void
Disk::charge(uint64_t blocks)
{
    _ctx.clock().advance(_ctx.costs().ssdRequest +
                         blocks * _ctx.costs().ssdPerBlock);
    sim::StatSet::add(_hRequests);
    sim::StatSet::add(_hBlocks, blocks);
}

void
Disk::readBlock(uint64_t block, void *out)
{
    check(block);
    charge(1);
    std::memcpy(out, &_data[block * blockSize], blockSize);
}

void
Disk::writeBlock(uint64_t block, const void *in)
{
    check(block);
    charge(1);
    std::memcpy(&_data[block * blockSize], in, blockSize);
}

bool
Disk::dmaReadBlock(uint64_t block, Paddr pa)
{
    check(block);
    charge(1);
    return _iommu.dmaWrite(pa, &_data[block * blockSize], blockSize);
}

bool
Disk::dmaWriteBlock(uint64_t block, Paddr pa)
{
    check(block);
    charge(1);
    uint8_t buf[blockSize];
    if (!_iommu.dmaRead(pa, buf, blockSize))
        return false;
    std::memcpy(&_data[block * blockSize], buf, blockSize);
    return true;
}

uint8_t *
Disk::rawBlock(uint64_t block)
{
    check(block);
    return &_data[block * blockSize];
}

} // namespace vg::hw
