#include "hw/disk.hh"

#include <cstring>

#include "sim/log.hh"

namespace vg::hw
{

Disk::Disk(uint64_t blocks, Iommu &iommu, sim::SimContext &ctx)
    : _data(blocks * blockSize, 0), _iommu(iommu), _ctx(ctx),
      _queue(ctx.config().ringSize), _irq("disk.irq"),
      _hRequests(ctx.stats().handle("disk.requests")),
      _hBlocks(ctx.stats().handle("disk.blocks")),
      _hRingBlocked(ctx.stats().handle("disk.ring_blocked_dma"))
{
    if (blocks == 0)
        sim::fatal("Disk: must have at least one block");
}

void
Disk::check(uint64_t block) const
{
    if (block >= numBlocks())
        sim::panic("Disk: block %lu out of range (%lu blocks)",
                   (unsigned long)block, (unsigned long)numBlocks());
}

void
Disk::charge(uint64_t blocks)
{
    _ctx.clock().advance(_ctx.costs().ssdRequest +
                         blocks * _ctx.costs().ssdPerBlock);
    sim::StatSet::add(_hRequests);
    sim::StatSet::add(_hBlocks, blocks);
}

void
Disk::readBlock(uint64_t block, void *out)
{
    check(block);
    charge(1);
    std::memcpy(out, &_data[block * blockSize], blockSize);
}

void
Disk::writeBlock(uint64_t block, const void *in)
{
    check(block);
    charge(1);
    std::memcpy(&_data[block * blockSize], in, blockSize);
}

bool
Disk::dmaReadBlock(uint64_t block, Paddr pa)
{
    check(block);
    charge(1);
    return _iommu.dmaWrite(pa, &_data[block * blockSize], blockSize);
}

bool
Disk::dmaWriteBlock(uint64_t block, Paddr pa)
{
    check(block);
    charge(1);
    uint8_t buf[blockSize];
    if (!_iommu.dmaRead(pa, buf, blockSize))
        return false;
    std::memcpy(&_data[block * blockSize], buf, blockSize);
    return true;
}

uint8_t *
Disk::rawBlock(uint64_t block)
{
    check(block);
    return &_data[block * blockSize];
}

bool
Disk::submit(const RingDesc &d)
{
    check(d.block);
    if (!_queue.post(d))
        return false;
    _ctx.clock().advance(_ctx.costs().ringDescriptor);
    return true;
}

uint64_t
Disk::doorbell()
{
    _ctx.clock().advance(_ctx.costs().ringDoorbell);
    uint64_t now = _ctx.clock().now();
    uint64_t last = 0;
    _queue.processPosted([&](DescRing::Entry &e) {
        uint8_t *blk = &_data[e.desc.block * blockSize];
        uint64_t n = std::min<uint64_t>(e.desc.len ? e.desc.len
                                                   : blockSize,
                                        blockSize);
        bool ok = true;
        if (e.desc.write) {
            if (e.desc.useDma) {
                uint8_t buf[blockSize];
                ok = _iommu.dmaRead(e.desc.pa, buf, n);
                if (ok)
                    std::memcpy(blk, buf, n);
            } else if (e.desc.host) {
                std::memcpy(blk, e.desc.host, n);
            }
        } else {
            if (e.desc.useDma)
                ok = _iommu.dmaWrite(e.desc.pa, blk, n);
            else if (e.desc.hostOut)
                std::memcpy(e.desc.hostOut, blk, n);
        }
        sim::StatSet::add(_hRequests);
        sim::StatSet::add(_hBlocks);
        if (!ok) {
            e.error = true;
            e.doneAt = now;
            e.state = DescRing::Slot::Done;
            _ringBlocked++;
            sim::StatSet::add(_hRingBlocked);
            return true;
        }
        // Deep NCQ: each request's latency stands alone.
        e.doneAt = now + _ctx.costs().ssdRequest + _ctx.costs().ssdPerBlock;
        e.state = DescRing::Slot::Done;
        last = std::max(last, e.doneAt);
        return true;
    });
    _irq.wireTo(_ctx.activeCpu());
    if (uint64_t at = _queue.earliestDone())
        _irq.raise(at);
    return last;
}

} // namespace vg::hw
