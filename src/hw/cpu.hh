/**
 * @file
 * Simulated vCPU and the machine's CPU set.
 *
 * Each vCPU owns the per-processor hardware the paper's design relies
 * on: a private TLB (via its own Mmu front-end over the shared page
 * tables), a local APIC timer driven by its own cycle clock, and a
 * modelled register file that the SVA layer zeroes on kernel entry
 * when interrupt-context protection is active.
 *
 * Only one vCPU executes at a time (the sim is single-threaded); the
 * scheduler marks the running CPU through SimContext::setActiveCpu()
 * and the deterministic interleaver in sim/interleave.hh decides who
 * goes next.
 */

#ifndef VG_HW_CPU_HH
#define VG_HW_CPU_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "hw/mmu.hh"
#include "hw/ring.hh"
#include "hw/timer.hh"
#include "sim/context.hh"

namespace vg::hw
{

/** One simulated processor: registers, private TLB, local timer. */
class Cpu
{
  public:
    Cpu(unsigned id, PhysMem &mem, sim::SimContext &ctx)
        : _id(id), _mmu(mem, ctx, id), _timer(ctx.clockOf(id))
    {}

    Cpu(const Cpu &) = delete;
    Cpu &operator=(const Cpu &) = delete;

    unsigned id() const { return _id; }
    Mmu &mmu() { return _mmu; }
    const Mmu &mmu() const { return _mmu; }
    Timer &timer() { return _timer; }

    /** Modelled general-purpose register file. The SVA layer zeroes
     *  it on kernel entry so the kernel never sees application
     *  register state (S 4.6). */
    std::array<uint64_t, 16> regs{};
    uint64_t pc = 0;
    uint64_t sp = 0;

    /** Zero the visible register file (kernel-entry scrub). */
    void
    zeroRegs()
    {
        regs.fill(0);
        pc = 0;
        sp = 0;
    }

    /** Wire a device interrupt line into this vCPU. Lines are shared
     *  machine-wide objects; a device re-steers its line to another
     *  vCPU by IrqLine::wireTo() (MSI-X affinity), so a line attached
     *  here is "deliverable" on this CPU only while its affinity
     *  points at it. */
    void attachIrq(IrqLine *line) { _irqs.push_back(line); }

    /** Device lines attached to this vCPU (for the kernel's IRQ scan
     *  and for `vg_lint --dump-rings`). */
    const std::vector<IrqLine *> &irqLines() const { return _irqs; }

    /** Earliest pending completion time among lines currently steered
     *  at this vCPU; 0 when none is raised. */
    uint64_t
    earliestIrq() const
    {
        uint64_t at = 0;
        for (const IrqLine *l : _irqs)
            if (l->pending() && l->cpu() == _id &&
                (at == 0 || l->pendingAt() < at))
                at = l->pendingAt();
        return at;
    }

  private:
    unsigned _id;
    Mmu _mmu;
    Timer _timer;
    std::vector<IrqLine *> _irqs;
};

/** The machine's vCPUs, sized from SimContext::vcpuCount(). */
class CpuSet
{
  public:
    CpuSet(PhysMem &mem, sim::SimContext &ctx) : _ctx(ctx)
    {
        for (unsigned i = 0; i < ctx.vcpuCount(); i++)
            _cpus.push_back(std::make_unique<Cpu>(i, mem, ctx));
    }

    unsigned count() const { return _cpus.size(); }

    Cpu &operator[](unsigned i) { return *_cpus[i]; }
    const Cpu &operator[](unsigned i) const { return *_cpus[i]; }

    /** The vCPU currently marked active in the SimContext. */
    Cpu &active() { return *_cpus[_ctx.activeCpu()]; }

  private:
    sim::SimContext &_ctx;
    std::vector<std::unique_ptr<Cpu>> _cpus;
};

} // namespace vg::hw

#endif // VG_HW_CPU_HH
