/**
 * @file
 * Virtio-style descriptor rings and device interrupt lines.
 *
 * A DescRing is the shared shape of the async device protocol
 * (VgConfig::asyncIo): the driver *posts* descriptors into ring slots,
 * *doorbells* the device (one trusted-boundary crossing per batch, not
 * per request), the device moves data and marks slots *done* with a
 * completion timestamp, and the driver *reaps* completions — normally
 * in doorbell order, but slots carry a generation counter so a hostile
 * OS replaying a stale completion index is detected rather than
 * double-freeing a slot.
 *
 * Data held in a descriptor is either a physical address (useDma), in
 * which case every access goes through the IOMMU exactly like the
 * legacy DMA paths — a descriptor aimed at a ghost frame is blocked
 * and counted — or a kernel host buffer, the simulator's stand-in for
 * a bcache page handed to the device without an intermediate copy.
 *
 * An IrqLine is the device-to-CPU interrupt wiring: raised at the
 * earliest pending completion time, steered (MSI-X style) to the vCPU
 * that rang the doorbell, and acknowledged by the softirq bottom half
 * that reaps the ring.
 */

#ifndef VG_HW_RING_HH
#define VG_HW_RING_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "hw/phys_mem.hh"

namespace vg::hw
{

/** One device interrupt line, wired into a vCPU. */
class IrqLine
{
  public:
    explicit IrqLine(std::string name) : _name(std::move(name)) {}

    /** Steer the line at vCPU @p cpu (MSI-X affinity). */
    void wireTo(unsigned cpu) { _cpu = cpu; }
    unsigned cpu() const { return _cpu; }

    /** Assert the line for a completion due at @p at (keeps the
     *  earliest pending time if already raised). */
    void
    raise(uint64_t at)
    {
        if (!_pending || at < _pendingAt)
            _pendingAt = at;
        _pending = true;
        _raises++;
    }

    /** Deassert (bottom half has reaped the ring). */
    void
    ack()
    {
        _pending = false;
        _pendingAt = 0;
    }

    bool pending() const { return _pending; }
    uint64_t pendingAt() const { return _pendingAt; }
    uint64_t raises() const { return _raises; }
    const std::string &name() const { return _name; }

  private:
    std::string _name;
    unsigned _cpu = 0;
    bool _pending = false;
    uint64_t _pendingAt = 0;
    uint64_t _raises = 0;
};

/** What the driver posts into a ring slot. */
struct RingDesc
{
    uint64_t cookie = 0;         ///< driver tag echoed in the completion
    Paddr pa = 0;                ///< DMA address (useDma descriptors)
    const uint8_t *host = nullptr; ///< kernel buffer (zero-copy path)
    uint8_t *hostOut = nullptr;  ///< kernel buffer for device->host moves
    uint32_t len = 0;
    uint64_t block = 0;          ///< disk request queues only
    bool write = false;          ///< disk request queues only
    bool useDma = false;
};

/** A reaped completion. */
struct RingCompletion
{
    uint64_t cookie = 0;
    uint64_t doneAt = 0;   ///< cycle the request finishes on the device
    bool error = false;    ///< IOMMU blocked the slot's DMA
    uint32_t index = 0;    ///< slot index (replay-detection handle)
    uint32_t gen = 0;      ///< slot generation at completion
};

/** Fixed-size descriptor ring with doorbell/completion protocol. */
class DescRing
{
  public:
    enum class Slot : uint8_t { Free, Posted, InFlight, Done };

    struct Entry
    {
        Slot state = Slot::Free;
        RingDesc desc;
        uint64_t doneAt = 0;
        bool error = false;
        uint32_t gen = 0;
    };

    explicit DescRing(unsigned size) : _slots(size ? size : 1) {}

    /** Post @p d at the head slot; false when the ring is full. */
    bool
    post(const RingDesc &d)
    {
        Entry &e = _slots[_head % _slots.size()];
        if (e.state != Slot::Free)
            return false;
        e.desc = d;
        e.state = Slot::Posted;
        e.error = false;
        _head++;
        return true;
    }

    /** Run the device over every posted slot. The callback fills
     *  doneAt/error and sets the state to Done, or returns false to
     *  stop and leave the slot posted (e.g. an RX buffer with no
     *  packet to fill yet). */
    template <typename Fn>
    void
    processPosted(Fn &&complete)
    {
        while (_doorbell != _head) {
            Entry &e = _slots[_doorbell % _slots.size()];
            e.state = Slot::InFlight;
            if (!complete(e)) {
                e.state = Slot::Posted;
                break;
            }
            if (e.state == Slot::Done)
                _done.push_back(RingCompletion{
                    e.desc.cookie, e.doneAt, e.error,
                    uint32_t(_doorbell % _slots.size()), e.gen});
            _doorbell++;
        }
    }

    /** Drain every completion in doorbell order, freeing the slots. */
    std::vector<RingCompletion>
    reapAll()
    {
        std::vector<RingCompletion> out(_done.begin(), _done.end());
        _done.clear();
        while (_tail != _doorbell) {
            Entry &e = _slots[_tail % _slots.size()];
            if (e.state != Slot::Done)
                break;
            e.state = Slot::Free;
            e.gen++;
            _tail++;
        }
        return out;
    }

    /**
     * Reap one completion by (index, generation) — the interface a
     * hostile OS abuses by replaying a stale pair. Returns false
     * (without touching the slot) when the pair does not name a
     * currently-Done slot.
     */
    bool
    reapAt(uint32_t index, uint32_t gen)
    {
        if (index >= _slots.size())
            return false;
        Entry &e = _slots[index];
        if (e.state != Slot::Done || e.gen != gen)
            return false;
        e.state = Slot::Free;
        e.gen++;
        while (_tail != _doorbell &&
               _slots[_tail % _slots.size()].state == Slot::Free)
            _tail++;
        return true;
    }

    unsigned size() const { return unsigned(_slots.size()); }
    uint64_t head() const { return _head; }
    uint64_t tail() const { return _tail; }
    /** Descriptors posted or in flight (not yet reaped). */
    unsigned inFlight() const { return unsigned(_head - _tail); }
    bool full() const { return inFlight() >= _slots.size(); }
    const Entry &slot(uint32_t i) const { return _slots[i]; }
    uint64_t pendingCompletions() const { return _done.size(); }

    /** Earliest completion time among unreaped Done slots (0 if none). */
    uint64_t
    earliestDone() const
    {
        uint64_t at = 0;
        for (const RingCompletion &c : _done)
            if (at == 0 || c.doneAt < at)
                at = c.doneAt;
        return at;
    }

  private:
    std::vector<Entry> _slots;
    std::deque<RingCompletion> _done;
    uint64_t _head = 0;     ///< next slot the driver posts
    uint64_t _doorbell = 0; ///< first slot the device has not seen
    uint64_t _tail = 0;     ///< first slot not yet reaped
};

} // namespace vg::hw

#endif // VG_HW_RING_HH
