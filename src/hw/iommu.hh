/**
 * @file
 * Simulated IOMMU.
 *
 * All device DMA flows through the IOMMU. SVA configures it (S 4.3.3):
 * frames holding ghost memory or SVA internal state are removed from
 * the DMA-able set, so a hostile OS cannot program a device to read or
 * write protected memory. The OS itself can only reach the IOMMU via
 * SVA I/O instructions; direct MMIO mapping of the IOMMU is prevented
 * by the MMU checks.
 */

#ifndef VG_HW_IOMMU_HH
#define VG_HW_IOMMU_HH

#include <cstdint>
#include <unordered_set>

#include "hw/phys_mem.hh"
#include "sim/context.hh"

namespace vg::hw
{

/** DMA remapping/protection unit. */
class Iommu
{
  public:
    Iommu(PhysMem &mem, sim::SimContext &ctx);

    /**
     * Mark @p frame as non-DMA-able (ghost/SVA frame). Only SVA calls
     * this.
     */
    void protectFrame(Frame frame);

    /** Allow DMA to @p frame again (frame returned to the OS). */
    void unprotectFrame(Frame frame);

    /** True if DMA may touch @p frame. */
    bool dmaAllowed(Frame frame) const;

    /**
     * DMA from device buffer into RAM. Returns false (and performs no
     * write) if any touched frame is protected while DMA protection is
     * enabled.
     */
    bool dmaWrite(Paddr pa, const void *buf, uint64_t len);

    /** DMA from RAM into device buffer; same protection rule. */
    bool dmaRead(Paddr pa, void *buf, uint64_t len);

    /** Number of blocked DMA attempts (attack telemetry). */
    uint64_t blockedCount() const { return _blocked; }

  private:
    bool rangeAllowed(Paddr pa, uint64_t len) const;

    PhysMem &_mem;
    sim::SimContext &_ctx;
    std::unordered_set<Frame> _protected;
    uint64_t _blocked = 0;
    sim::StatHandle _hBlockedDma;
    sim::StatHandle _hDmaBytes;
};

} // namespace vg::hw

#endif // VG_HW_IOMMU_HH
