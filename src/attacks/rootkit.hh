/**
 * @file
 * The S 7 rootkit: a malicious kernel module (after Joseph Kong's
 * "Designing BSD Rootkits") that a non-privileged user configures to
 * attack a victim process. Two attacks:
 *
 *  1. Direct memory access: replace the read() syscall handler with a
 *     module function that loads the victim's secret directly from its
 *     (ghost or traditional) address and logs it.
 *  2. Code injection via signal dispatch: open an exfiltration file in
 *     the victim's fd table, mmap a buffer into the victim, point the
 *     victim's signal-handler table at exploit code in the module, and
 *     send the signal; the exploit (running in the victim's user
 *     context) copies the secret into traditional memory and write()s
 *     it out.
 *
 * The module is shipped as VIR text and compiled by the trusted
 * translator like any other module — under Virtual Ghost that means
 * its loads/stores are sandboxed and sva.ipush.function refuses the
 * unregistered handler; on the baseline kernel both attacks succeed.
 */

#ifndef VG_ATTACKS_ROOTKIT_HH
#define VG_ATTACKS_ROOTKIT_HH

#include <cstdint>
#include <functional>
#include <string>

#include "kernel/kernel.hh"

namespace vg::attacks
{

/** Result of mounting an attack. */
struct AttackResult
{
    bool mounted = false;       ///< infrastructure steps succeeded
    bool dataStolen = false;    ///< the secret left the victim
    std::string detail;
    std::vector<uint8_t> loot;  ///< what the attacker obtained
};

/**
 * Attack 1: interpose read() with a handler that loads @p secret_len
 * bytes at @p secret_va and logs them, then chains to the native
 * handler. Call check1() after the victim performs a read() to see
 * what the attacker captured.
 */
bool mountAttack1(kern::Kernel &kernel, uint64_t secret_va,
                  std::string *err);

/** Inspect the console log for attack 1's capture; @p secret is the
 *  true secret, used to decide dataStolen. */
AttackResult checkAttack1(kern::Kernel &kernel,
                          const std::vector<uint8_t> &secret);

/** Remove attack 1's interposition. */
void unmountAttack1(kern::Kernel &kernel);

/**
 * Attack 2: full code-injection chain against @p victim_pid. The
 * secret (of @p secret_len bytes, at @p secret_va in the victim) is
 * exfiltrated to the file /exfil when it works.
 */
AttackResult mountAttack2(kern::Kernel &kernel, uint64_t victim_pid,
                          uint64_t secret_va, uint64_t secret_len);

/** Read /exfil and compare against the secret. */
AttackResult checkAttack2(kern::Kernel &kernel,
                          const std::vector<uint8_t> &secret);

/**
 * Attack 3: descriptor-ring redirection (the asyncIo surface). The
 * hostile OS posts a TX descriptor on @p tx_nic whose DMA address is
 * the frame holding the victim's @p secret, rings the doorbell, and
 * scrapes the peer @p rx_nic for whatever went over the wire. Under
 * Virtual Ghost the IOMMU refuses the slot's DMA: the completion
 * carries an error, nic.ring_blocked_dma counts the attempt, and no
 * packet is delivered.
 */
AttackResult mountAttack3(hw::Nic &tx_nic, hw::Nic &rx_nic,
                          hw::Paddr secret_pa,
                          const std::vector<uint8_t> &secret);

/** Which hostile edit attack 4 applies to the victim's swap slot. */
enum class SwapAttack
{
    StaleReplay, ///< re-serve an old sealed page after it was superseded
    BitFlip,     ///< flip a ciphertext bit in the current sealed page
};

/**
 * Attack 4: swap-store manipulation (the ghost-swap surface). The
 * hostile OS owns the swap area — it is ordinary disk blocks — so it
 * can scrape a victim's sealed page off the platter and later replay
 * it, or corrupt it in place:
 *
 *  - StaleReplay: snapshot the sealed blocks of @p ghost_va's current
 *    swap slot, call @p cycle_page (the test's stand-in for normal
 *    scheduler activity: the victim faults the page back in, updates
 *    it, and the kernel swaps it out again), then write the stale
 *    snapshot over the fresh slot. The old blob's MAC is valid — but
 *    it was sealed under the old swap generation, so swap-in refuses
 *    it.
 *  - BitFlip: flip one ciphertext bit of the current slot in place.
 *
 * Either way the attacker's loot is the scraped ciphertext; the
 * victim's next access to @p ghost_va must fail with a violation and
 * zero disclosure.
 */
AttackResult mountAttack4(kern::Kernel &kernel, hw::Disk &disk,
                          uint64_t victim_pid, uint64_t ghost_va,
                          SwapAttack mode,
                          const std::function<bool()> &cycle_page,
                          const std::vector<uint8_t> &secret);

} // namespace vg::attacks

#endif // VG_ATTACKS_ROOTKIT_HH
