#include "attacks/rootkit.hh"

#include <cstring>
#include <sstream>

#include "sim/log.hh"

namespace vg::attacks
{

namespace
{

/** Generate the attack-1 module: an evil read() handler that loads
 *  the secret qword-by-qword and logs each value, then chains. */
std::string
attack1Text(uint64_t secret_va, uint64_t qwords)
{
    std::ostringstream os;
    os << "module \"rootkit1\"\n\n";
    os << "func @evil_read(4) {\n";
    os << "entry:\n";
    int reg = 4;
    for (uint64_t i = 0; i < qwords; i++) {
        int addr = reg++;
        int val = reg++;
        int dummy = reg++;
        os << "  %" << addr << " = const " << (secret_va + i * 8)
           << "\n";
        os << "  %" << val << " = load.i64 %" << addr << "\n";
        os << "  %" << dummy << " = call @klog(%" << val << ")\n";
    }
    int result = reg++;
    os << "  %" << result
       << " = call @k_read_native(%0, %1, %2, %3)\n";
    os << "  ret %" << result << "\n";
    os << "}\n";
    return os.str();
}

/** Parse "[module] value=0x..." lines from the console. */
std::vector<uint64_t>
parseLoggedValues(const std::string &console)
{
    std::vector<uint64_t> values;
    size_t pos = 0;
    const std::string needle = "[module] value=0x";
    while ((pos = console.find(needle, pos)) != std::string::npos) {
        pos += needle.size();
        size_t end = console.find('\n', pos);
        values.push_back(std::stoull(
            console.substr(pos, end - pos), nullptr, 16));
    }
    return values;
}

} // namespace

bool
mountAttack1(kern::Kernel &kernel, uint64_t secret_va, std::string *err)
{
    // Two qwords cover a 16-byte secret.
    std::string text = attack1Text(secret_va, 2);
    if (!kernel.loadModule("rootkit1", text, err))
        return false;
    if (!kernel.interposeSyscall(kern::Sys::read, "rootkit1",
                                 "evil_read")) {
        if (err)
            *err = "interposition failed";
        return false;
    }
    return true;
}

AttackResult
checkAttack1(kern::Kernel &kernel, const std::vector<uint8_t> &secret)
{
    AttackResult result;
    result.mounted = true;
    std::vector<uint64_t> values =
        parseLoggedValues(kernel.console().output());
    for (uint64_t v : values) {
        for (int i = 0; i < 8; i++)
            result.loot.push_back(uint8_t(v >> (8 * i)));
    }
    // Did any 16-byte window of the loot match the secret?
    if (result.loot.size() >= secret.size()) {
        for (size_t off = 0;
             off + secret.size() <= result.loot.size(); off++) {
            if (std::equal(secret.begin(), secret.end(),
                           result.loot.begin() + long(off))) {
                result.dataStolen = true;
                break;
            }
        }
    }
    result.detail = result.dataStolen
                        ? "attack 1 read the secret from kernel code"
                        : "attack 1 captured only deflected junk";
    return result;
}

void
unmountAttack1(kern::Kernel &kernel)
{
    kernel.clearInterposition(kern::Sys::read);
}

AttackResult
mountAttack2(kern::Kernel &kernel, uint64_t victim_pid,
             uint64_t secret_va, uint64_t secret_len)
{
    AttackResult result;

    // Step 1: kernel-side preparation, via module functions so every
    // step is translated, instrumented code.
    {
        std::ostringstream os;
        os << "module \"rootkit2_prep\"\n\n";
        os << "func @prep_mmap(0) {\nentry:\n";
        os << "  %0 = const " << victim_pid << "\n";
        os << "  %1 = const 4096\n";
        os << "  %2 = call @k_mmap_in_proc(%0, %1)\n";
        os << "  ret %2\n}\n\n";
        os << "func @prep_fd(0) {\nentry:\n";
        os << "  %0 = const " << victim_pid << "\n";
        os << "  %1 = call @k_open_exfil_in(%0)\n";
        os << "  ret %1\n}\n";
        std::string err;
        if (!kernel.loadModule("rootkit2_prep", os.str(), &err)) {
            result.detail = "prep load failed: " + err;
            return result;
        }
    }

    cc::ExecResult mmap_r =
        kernel.callModuleFunction("rootkit2_prep", "prep_mmap", {});
    cc::ExecResult fd_r =
        kernel.callModuleFunction("rootkit2_prep", "prep_fd", {});
    if (!mmap_r.ok || !fd_r.ok || mmap_r.value == 0 ||
        int64_t(fd_r.value) < 0) {
        result.detail = "victim preparation failed";
        return result;
    }
    uint64_t buf_va = mmap_r.value;
    uint64_t fd = fd_r.value;

    // Step 2: the exploit "code" copied into the victim — shipped in
    // the module image, pointed at by the victim's signal table.
    uint64_t qwords = (secret_len + 7) / 8;
    {
        std::ostringstream os;
        os << "module \"rootkit2\"\n\n";
        os << "func @exploit(1) {\nentry:\n";
        int reg = 1;
        for (uint64_t i = 0; i < qwords; i++) {
            int src = reg++;
            int val = reg++;
            int dst = reg++;
            os << "  %" << src << " = const " << (secret_va + i * 8)
               << "\n";
            os << "  %" << val << " = load.i64 %" << src << "\n";
            os << "  %" << dst << " = const " << (buf_va + i * 8)
               << "\n";
            os << "  store.i64 %" << dst << ", %" << val << "\n";
        }
        int fd_reg = reg++;
        int buf_reg = reg++;
        int len_reg = reg++;
        int ret_reg = reg++;
        os << "  %" << fd_reg << " = const " << fd << "\n";
        os << "  %" << buf_reg << " = const " << buf_va << "\n";
        os << "  %" << len_reg << " = const " << secret_len << "\n";
        os << "  %" << ret_reg << " = call @u_write(%" << fd_reg
           << ", %" << buf_reg << ", %" << len_reg << ")\n";
        os << "  ret %" << ret_reg << "\n}\n\n";

        os << "func @setup(0) {\nentry:\n";
        os << "  %0 = const " << victim_pid << "\n";
        os << "  %1 = const 10\n"; // SIGUSR1
        os << "  %2 = funcaddr @exploit\n";
        os << "  %3 = call @k_install_handler(%0, %1, %2)\n";
        os << "  %4 = call @k_send_signal(%0, %1)\n";
        os << "  ret %4\n}\n";

        std::string err;
        if (!kernel.loadModule("rootkit2", os.str(), &err)) {
            result.detail = "exploit load failed: " + err;
            return result;
        }
    }

    cc::ExecResult setup_r =
        kernel.callModuleFunction("rootkit2", "setup", {});
    if (!setup_r.ok) {
        result.detail = "setup faulted: " + setup_r.detail;
        return result;
    }
    result.mounted = true;
    result.detail = "attack 2 armed (handler installed, signal sent)";
    return result;
}

AttackResult
checkAttack2(kern::Kernel &kernel, const std::vector<uint8_t> &secret)
{
    AttackResult result;
    result.mounted = true;
    kern::Ino ino = 0;
    if (kernel.fs().lookup("/exfil", ino) == kern::FsStatus::Ok) {
        kern::FileStat st;
        kernel.fs().stat(ino, st);
        result.loot.resize(st.size);
        if (st.size > 0)
            kernel.fs().read(ino, 0, result.loot.data(), st.size);
    }
    if (result.loot.size() >= secret.size() &&
        std::equal(secret.begin(), secret.end(), result.loot.begin()))
        result.dataStolen = true;
    result.detail = result.dataStolen
                        ? "attack 2 exfiltrated the secret to /exfil"
                        : "attack 2 obtained nothing";
    return result;
}

AttackResult
mountAttack3(hw::Nic &tx_nic, hw::Nic &rx_nic, hw::Paddr secret_pa,
             const std::vector<uint8_t> &secret)
{
    AttackResult result;

    // Discard unrelated queued traffic so the loot is only what this
    // descriptor moves.
    while (rx_nic.hasPacket())
        rx_nic.receive();

    hw::RingDesc d;
    d.pa = secret_pa;
    d.len = uint32_t(
        std::min<uint64_t>(secret.size() + 48, hw::Nic::mtu));
    d.useDma = true;
    if (!tx_nic.txPost(d)) {
        result.detail = "attack 3: TX ring full";
        return result;
    }
    result.mounted = true;
    tx_nic.txDoorbell();
    std::vector<hw::RingCompletion> comps = tx_nic.txReapAll();
    bool blocked = !comps.empty() && comps.front().error;

    while (rx_nic.hasPacket()) {
        std::vector<uint8_t> p = rx_nic.receive();
        result.loot.insert(result.loot.end(), p.begin(), p.end());
    }
    if (result.loot.size() >= secret.size()) {
        for (size_t off = 0;
             off + secret.size() <= result.loot.size(); off++) {
            if (std::equal(secret.begin(), secret.end(),
                           result.loot.begin() + long(off))) {
                result.dataStolen = true;
                break;
            }
        }
    }
    result.detail =
        result.dataStolen
            ? "attack 3 shipped the secret frame onto the wire"
            : blocked ? "attack 3 blocked: IOMMU refused the ring "
                        "descriptor's DMA"
                      : "attack 3 obtained nothing";
    return result;
}

namespace
{

/** Scrape the two sealed blocks of a swap slot off the platter. */
std::vector<uint8_t>
scrapeSlot(hw::Disk &disk, uint64_t first_block)
{
    std::vector<uint8_t> bytes;
    for (uint64_t b = 0; b < kern::SwapArea::blocksPerSlot; b++) {
        uint8_t *raw = disk.rawBlock(first_block + b);
        bytes.insert(bytes.end(), raw, raw + hw::Disk::blockSize);
    }
    return bytes;
}

/** Does any window of @p loot equal @p secret? */
bool
lootContains(const std::vector<uint8_t> &loot,
             const std::vector<uint8_t> &secret)
{
    if (secret.empty() || loot.size() < secret.size())
        return false;
    for (size_t off = 0; off + secret.size() <= loot.size(); off++) {
        if (std::equal(secret.begin(), secret.end(),
                       loot.begin() + long(off)))
            return true;
    }
    return false;
}

} // namespace

AttackResult
mountAttack4(kern::Kernel &kernel, hw::Disk &disk, uint64_t victim_pid,
             uint64_t ghost_va, SwapAttack mode,
             const std::function<bool()> &cycle_page,
             const std::vector<uint8_t> &secret)
{
    AttackResult result;

    auto block = kernel.swapSlotBlock(victim_pid, ghost_va);
    if (!block) {
        result.detail = "attack 4: victim page is not swapped out";
        return result;
    }
    // Loot = whatever the platter holds for the victim's page.
    result.loot = scrapeSlot(disk, *block);

    if (mode == SwapAttack::StaleReplay) {
        // Let the page cycle through memory and back to swap — the
        // slot now holds a fresh blob sealed under a new generation.
        if (!cycle_page || !cycle_page()) {
            result.detail = "attack 4: page cycle did not complete";
            return result;
        }
        auto fresh = kernel.swapSlotBlock(victim_pid, ghost_va);
        if (!fresh) {
            result.detail = "attack 4: page did not return to swap";
            return result;
        }
        // Replay: overwrite the fresh slot with the stale snapshot.
        for (uint64_t b = 0; b < kern::SwapArea::blocksPerSlot; b++)
            std::memcpy(disk.rawBlock(*fresh + b),
                        result.loot.data() + b * hw::Disk::blockSize,
                        hw::Disk::blockSize);
        result.detail = "attack 4 armed: stale sealed page replayed "
                        "over the fresh swap slot";
    } else {
        // Flip a ciphertext bit in place (offset 65 lands past the
        // 48-byte nonce+mac header).
        disk.rawBlock(*block)[65] ^= 0x01;
        result.detail =
            "attack 4 armed: ciphertext bit flipped on the platter";
    }

    result.mounted = true;
    result.dataStolen = lootContains(result.loot, secret);
    if (result.dataStolen)
        result.detail = "attack 4 read the secret from the swap store";
    return result;
}

} // namespace vg::attacks
